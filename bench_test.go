package mach_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design choices called out in DESIGN.md
// §4 and micro-benchmarks of the substrates. Benchmarks run micro-scale
// configurations so `go test -bench=.` finishes in minutes on one core;
// cmd/machbench runs the full evaluation and EXPERIMENTS.md records its
// results.
//
// Figure/table benches report, via b.ReportMetric:
//
//	steps_to_target   — time steps MACH needed for the target accuracy
//	saved_pct         — % of steps MACH saved vs the best basic baseline
//	final_acc         — MACH's final accuracy

import (
	"math/rand"
	"testing"

	"github.com/mach-fl/mach/internal/bench"
	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
	"github.com/mach-fl/mach/internal/tensor"
)

// microBench shrinks a CI preset further so a full strategy comparison runs
// in a few seconds per benchmark iteration.
func microBench(task bench.Task) bench.Config {
	cfg := bench.TaskPreset(task, bench.ScaleCI)
	cfg.Devices = 12
	cfg.Edges = 3
	cfg.Steps = 60
	cfg.SamplesPerDevice = 30
	cfg.TestSamples = 200
	cfg.LocalEpochs = 3
	cfg.Runs = 1
	cfg.SmoothWindow = 3
	cfg.TargetAccuracy = 0.5
	if task == bench.TaskCIFAR10 {
		cfg.TargetAccuracy = 0.3
		cfg.Steps = 80
	}
	return cfg
}

func reportComparison(b *testing.B, cmp *bench.Comparison) {
	b.Helper()
	machRes := cmp.Result(bench.StratMACH)
	if machRes == nil {
		b.Fatal("missing MACH result")
	}
	b.ReportMetric(float64(machRes.TimeToTarget), "steps_to_target")
	b.ReportMetric(cmp.SavedPercent(bench.Baselines()), "saved_pct")
	b.ReportMetric(machRes.FinalAccuracy, "final_acc")
}

// ---- Figure 3: time-to-accuracy over all learning tasks ----

func benchmarkFig3(b *testing.B, task bench.Task) {
	for i := 0; i < b.N; i++ {
		cfg := microBench(task)
		cfg.Seed = int64(i + 1)
		r, err := bench.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, r.Comparison)
	}
}

func BenchmarkFig3MNIST(b *testing.B)   { benchmarkFig3(b, bench.TaskMNIST) }
func BenchmarkFig3FMNIST(b *testing.B)  { benchmarkFig3(b, bench.TaskFMNIST) }
func BenchmarkFig3CIFAR10(b *testing.B) { benchmarkFig3(b, bench.TaskCIFAR10) }

// ---- Figure 4: time to target accuracy vs number of edges ----

func BenchmarkFig4EdgeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := microBench(bench.TaskMNIST)
		cfg.Seed = int64(i + 1)
		r, err := bench.RunEdgeSweep(cfg, []int{2, 3})
		if err != nil {
			b.Fatal(err)
		}
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(float64(last.TimeToTarget[bench.StratMACH]), "steps_to_target")
		b.ReportMetric(last.SavedPercent, "saved_pct")
	}
}

// ---- Figure 5: time to target accuracy vs participation proportion ----

func BenchmarkFig5Participation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := microBench(bench.TaskMNIST)
		cfg.Seed = int64(i + 1)
		r, err := bench.RunParticipationSweep(cfg, []float64{0.4, 0.7})
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := r.Points[0], r.Points[len(r.Points)-1]
		b.ReportMetric(float64(lo.TimeToTarget[bench.StratMACH]), "steps_at_p40")
		b.ReportMetric(float64(hi.TimeToTarget[bench.StratMACH]), "steps_at_p70")
	}
}

// ---- Table I: time steps under different local updating epochs ----

func BenchmarkTable1LocalEpochs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := microBench(bench.TaskMNIST)
		cfg.Seed = int64(i + 1)
		r, err := bench.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Report the full-target, I-epochs row (the paper's middle cell).
		for _, row := range r.Rows {
			if row.TargetLabel == "Target" && row.EpochsLabel == "I" {
				b.ReportMetric(float64(row.Steps[bench.StratMACH]), "steps_to_target")
				b.ReportMetric(row.SavedPercent, "saved_pct")
			}
		}
	}
}

// ---- Ablations (DESIGN.md §4) ----

// runStrategyVariant runs a single strategy on a micro environment and
// returns its final accuracy.
func runStrategyVariant(b *testing.B, cfg bench.Config, strat sampling.Strategy, agg hfl.Aggregation) float64 {
	b.Helper()
	env, err := cfg.BuildEnvironment(0)
	if err != nil {
		b.Fatal(err)
	}
	hcfg := cfg.HFLConfig(0)
	hcfg.Aggregation = agg
	eng, err := hfl.New(hcfg, cfg.Arch(), env.DeviceData, env.Test, env.Schedule, strat)
	if err != nil {
		b.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res.History.FinalAccuracy()
}

// BenchmarkAblationAggregation compares the three edge-aggregation rules
// under MACH sampling: the paper's literal Eq. (5), the unbiased
// update-space form, and plain FedAvg over participants.
func BenchmarkAblationAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := microBench(bench.TaskMNIST)
		cfg.Seed = int64(i + 1)
		for _, mode := range []struct {
			name string
			agg  hfl.Aggregation
		}{
			{"plain", hfl.AggPlain},
			{"inverse", hfl.AggInverseUpdate},
			{"literal_eq5", hfl.AggLiteralEq5},
		} {
			strat, err := sampling.NewMACH(cfg.Devices, cfg.MACH)
			if err != nil {
				b.Fatal(err)
			}
			acc := runStrategyVariant(b, cfg, strat, mode.agg)
			b.ReportMetric(acc, "final_acc_"+mode.name)
		}
	}
}

// BenchmarkAblationTransfer quantifies the transfer-function smoothing of
// Eq. (17): MACH with S(·) versus the raw Eq. (13) plug-in.
func BenchmarkAblationTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := microBench(bench.TaskMNIST)
		cfg.Seed = int64(i + 1)

		smooth, err := sampling.NewMACH(cfg.Devices, cfg.MACH)
		if err != nil {
			b.Fatal(err)
		}
		rawCfg := cfg.MACH
		rawCfg.RawEq13 = true
		raw, err := sampling.NewMACH(cfg.Devices, rawCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(runStrategyVariant(b, cfg, smooth, hfl.AggPlain), "final_acc_smoothed")
		b.ReportMetric(runStrategyVariant(b, cfg, raw, hfl.AggPlain), "final_acc_raw_eq13")
	}
}

// BenchmarkAblationDiscount compares the literal all-time max of Eq. (15)
// (discount 1) against the discounted max that tracks decaying norms.
func BenchmarkAblationDiscount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := microBench(bench.TaskMNIST)
		cfg.Seed = int64(i + 1)
		for _, d := range []struct {
			name     string
			discount float64
		}{
			{"literal_max", 1.0},
			{"discounted", 0.9},
		} {
			mc := cfg.MACH
			mc.Discount = d.discount
			strat, err := sampling.NewMACH(cfg.Devices, mc)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(runStrategyVariant(b, cfg, strat, hfl.AggPlain), "final_acc_"+d.name)
		}
	}
}

// BenchmarkAblationEstimator compares MACH's device-side UCB estimator
// against statistical sampling's edge-side last-observation estimator in the
// same environment — the cross-edge experience-sharing question of §I.
func BenchmarkAblationEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := microBench(bench.TaskMNIST)
		cfg.Seed = int64(i + 1)
		machStrat, err := sampling.NewMACH(cfg.Devices, cfg.MACH)
		if err != nil {
			b.Fatal(err)
		}
		ssStrat, err := sampling.NewStatistical(cfg.Devices, cfg.MACH.QMin)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(runStrategyVariant(b, cfg, machStrat, hfl.AggPlain), "final_acc_ucb_device")
		b.ReportMetric(runStrategyVariant(b, cfg, ssStrat, hfl.AggPlain), "final_acc_last_edge")
	}
}

// ---- Substrate micro-benchmarks ----

func BenchmarkTensorMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 64, 64)
	y := tensor.Randn(rng, 1, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkConvForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net, err := nn.NewCNN(nn.MNISTCNNConfig(16, 16), rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 8, 1, 16, 16)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	opt := nn.NewSGD(0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainStep(x, labels, opt)
	}
}

func BenchmarkMLPTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := nn.NewMLP("bench", 64, []int{32}, 10, rng)
	x := tensor.Randn(rng, 1, 8, 64)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	opt := nn.NewSGD(0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainStep(x, labels, opt)
	}
}

func BenchmarkScheduleGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mobility.GenerateSchedule(int64(i+1), 10, 100, 200, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMACHProbabilities(b *testing.B) {
	strat, err := sampling.NewMACH(100, sampling.DefaultMACHConfig())
	if err != nil {
		b.Fatal(err)
	}
	for m := 0; m < 100; m++ {
		strat.Observe(0, 0, m, []float64{float64(m) + 1})
	}
	strat.CloudRound(1)
	members := make([]int, 10)
	for i := range members {
		members[i] = i * 10
	}
	ctx := &sampling.EdgeContext{
		Step: 5, Capacity: 5, Members: members,
		RNG: rand.New(rand.NewSource(4)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strat.Probabilities(ctx)
	}
}

func BenchmarkNonIIDPartition(b *testing.B) {
	task, err := dataset.NewTask(dataset.MNISTLike(16, 16))
	if err != nil {
		b.Fatal(err)
	}
	cfg := dataset.PartitionConfig{
		Devices: 100, SamplesPerDevice: 80,
		TailRatio: 0.2, GlobalTailRatio: 0.6, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := dataset.Partition(task, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHFLTimeStep(b *testing.B) {
	cfg := microBench(bench.TaskMNIST)
	cfg.Steps = 1
	env, err := cfg.BuildEnvironment(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		strat, err := sampling.NewMACH(cfg.Devices, cfg.MACH)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := hfl.New(cfg.HFLConfig(i), cfg.Arch(), env.DeviceData, env.Test, env.Schedule, strat)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Extension: Oort-style utility selection (beyond the paper) ----

func BenchmarkExtensionOort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := microBench(bench.TaskMNIST)
		cfg.Seed = int64(i + 1)
		oort, err := sampling.NewOort(cfg.Devices, sampling.DefaultOortConfig())
		if err != nil {
			b.Fatal(err)
		}
		machStrat, err := sampling.NewMACH(cfg.Devices, cfg.MACH)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(runStrategyVariant(b, cfg, oort, hfl.AggPlain), "final_acc_oort")
		b.ReportMetric(runStrategyVariant(b, cfg, machStrat, hfl.AggPlain), "final_acc_mach")
	}
}
