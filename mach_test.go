package mach_test

import (
	"math/rand"
	"testing"

	mach "github.com/mach-fl/mach"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
)

// TestFacadeEndToEnd drives the whole library through the public facade
// exactly as the package documentation advertises.
func TestFacadeEndToEnd(t *testing.T) {
	task, err := mach.NewTask(mach.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	devices, err := mach.Partition(task, mach.PartitionConfig{
		Devices: 8, SamplesPerDevice: 30, TailRatio: 0.4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	test, err := task.Generate(rand.New(rand.NewSource(2)), 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := mach.GenerateSchedule(3, 2, 8, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	strategy, err := mach.NewMACH(8, mach.DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	arch := func(rng *rand.Rand) (*mach.Network, error) {
		return nn.NewMLP("facade", 16, []int{8}, 10, rng), nil
	}
	cfg := mach.EngineConfig{
		Steps:         20,
		CloudInterval: 5,
		LocalEpochs:   2,
		BatchSize:     4,
		LearningRate:  0.05,
		LRDecay:       1,
		Participation: 0.5,
		Seed:          4,
		Aggregation:   mach.AggPlain,
	}
	engine, err := mach.NewEngine(cfg, arch, devices, test, schedule, strategy)
	if err != nil {
		t.Fatal(err)
	}
	evals := 0
	result, err := engine.Run(mach.WithEvalHook(func(step int, acc, loss float64) { evals++ }))
	if err != nil {
		t.Fatal(err)
	}
	if result.StepsRun != 20 || result.History.Len() == 0 || evals == 0 {
		t.Fatalf("facade run incomplete: steps=%d evals=%d", result.StepsRun, evals)
	}
}

func TestFacadeStrategiesConstruct(t *testing.T) {
	if _, err := mach.NewMACHP(mach.DefaultMACHConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := mach.NewStatistical(4, 0.02); err != nil {
		t.Fatal(err)
	}
	var s mach.Strategy = mach.NewUniform()
	if s.Name() != "uniform" {
		t.Fatal("facade alias broken")
	}
	if mach.NewClassBalance().Unbiased() {
		t.Fatal("class-balance must be biased")
	}
}

func TestFacadeMobilityPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	stations := []mach.Station{{ID: 0, X: 0, Y: 0}, {ID: 1, X: 10, Y: 10}}
	trace, err := mach.GenerateMarkovTrace(rng, stations, 4, 15, mach.MarkovConfig{StayProb: 0.8, Neighbors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if trace.Devices() != 4 {
		t.Fatalf("trace covers %d devices", trace.Devices())
	}
	edgeOf, err := mach.ClusterStations(rng, stations, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := mach.BuildSchedule(trace, edgeOf, 2, 4, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeOortAndCommStats(t *testing.T) {
	oort, err := mach.NewOort(8, sampling.DefaultOortConfig())
	if err != nil {
		t.Fatal(err)
	}
	task, err := mach.NewTask(mach.FMNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	devices, err := mach.Partition(task, mach.PartitionConfig{
		Devices: 8, SamplesPerDevice: 20, TailRatio: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	test, err := task.Generate(rand.New(rand.NewSource(7)), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := mach.GenerateSchedule(8, 2, 8, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	arch := func(rng *rand.Rand) (*mach.Network, error) {
		return nn.NewMLP("facade-oort", 16, []int{8}, 10, rng), nil
	}
	cfg := mach.EngineConfig{
		Steps: 12, CloudInterval: 4, LocalEpochs: 2, BatchSize: 4,
		LearningRate: 0.05, LRDecay: 1, Participation: 0.5, Seed: 9,
	}
	engine, err := mach.NewEngine(cfg, arch, devices, test, schedule, oort)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Total() <= 0 {
		t.Fatal("no communication recorded")
	}
	if res.Comm.DeviceUplinkBytes != res.Comm.DeviceDownlinkBytes {
		t.Fatal("uplink/downlink mismatch without failures")
	}
	conf, err := engine.EvaluateConfusion()
	if err != nil {
		t.Fatal(err)
	}
	if conf.Total() != 100 {
		t.Fatalf("confusion total %d", conf.Total())
	}
}
