# Tier-1+ gate: vet + build + machlint + full tests + race detector on the
# concurrent packages. CI and every PR run this.
check:
	./scripts/check.sh

# Custom stdlib-only static analysis (see DESIGN.md §5.5). Exits nonzero on
# any finding; waive individual lines with a justified //machlint:allow.
lint:
	go run ./cmd/machlint ./...

# Regenerate the committed lint artifacts: the suppression ledger
# (lint_ledger.txt) and the allocfree heap-allocation budget
# (lint_allocs.txt). make check fails when either is stale.
lint-ledger:
	go run ./cmd/machlint -ledger ./... > lint_ledger.txt
	go run ./cmd/machlint -write-allocs ./...

test:
	go test ./...

race:
	go test -race ./...

# Engine micro-benchmark; writes BENCH_engine.json in the repo root.
bench-engine:
	go run ./cmd/machbench -exp engine

# Wire-format benchmark: measured bytes per codec scheme on a loopback
# deployment; writes BENCH_comm.json in the repo root.
bench-comm:
	go run ./cmd/machbench -exp comm

# Sampling control-plane scale benchmark: naive vs indexed decide across
# device populations up to 100k; writes BENCH_scale.json in the repo root.
bench-scale:
	go run ./cmd/machbench -exp scale

# Telemetry overhead benchmark: the control-plane workload with telemetry
# off / metrics only / full trace; writes BENCH_telemetry.json in the repo
# root.
bench-telemetry:
	go run ./cmd/machbench -exp telemetry

bench:
	go test -bench=. -benchmem ./...

.PHONY: check lint lint-ledger test race bench bench-engine bench-comm bench-scale bench-telemetry
