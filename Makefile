# Tier-1+ gate: vet + build + full tests + race detector on the concurrent
# packages. CI and every PR run this.
check:
	./scripts/check.sh

test:
	go test ./...

race:
	go test -race ./...

# Engine micro-benchmark; writes BENCH_engine.json in the repo root.
bench-engine:
	go run ./cmd/machbench -exp engine

bench:
	go test -bench=. -benchmem ./...

.PHONY: check test race bench bench-engine
