package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mach-fl/mach/internal/telemetry"
)

// writeSnapshotFile marshals a snapshot the way machsim -metrics-out does.
func writeSnapshotFile(t *testing.T, dir, name string, build func(tel *telemetry.Telemetry)) string {
	t.Helper()
	clock := int64(0)
	tel := telemetry.NewWithClock(func() int64 { clock += 1000; return clock })
	build(tel)
	var buf bytes.Buffer
	if err := tel.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	return path
}

// TestDiffFilesGolden pins machtop diff's end-to-end behavior on real
// snapshot files: the rendered table and the regression exit signal.
func TestDiffFilesGolden(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshotFile(t, dir, "old.json", func(tel *telemetry.Telemetry) {
		tel.Add(telemetry.CounterSteps, 100)
		tel.Observe(telemetry.HistStepNS, 1000)
		tel.SetGauge(telemetry.GaugeAccuracy, 0.80)
	})
	newPath := writeSnapshotFile(t, dir, "new.json", func(tel *telemetry.Telemetry) {
		tel.Add(telemetry.CounterSteps, 100)
		tel.Observe(telemetry.HistStepNS, 2000) // step latency doubled: regression
		tel.SetGauge(telemetry.GaugeAccuracy, 0.80)
	})

	var out bytes.Buffer
	err := diffFiles(&out, oldPath, newPath, 10)
	var reg errRegression
	if !errors.As(err, &reg) {
		t.Fatalf("diffFiles err = %v, want errRegression", err)
	}
	if int(reg) != 2 {
		t.Fatalf("regressions = %d, want 2 (step_ns mean and p99)\noutput:\n%s", int(reg), out.String())
	}
	for _, want := range []string{"hist/step_ns.mean", "!! REGRESSION", "+100.0%"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("diff output missing %q:\n%s", want, out.String())
		}
	}

	// Identical snapshots: no rows, no error.
	out.Reset()
	if err := diffFiles(&out, oldPath, oldPath, 10); err != nil {
		t.Fatalf("self-diff err = %v", err)
	}
	if !strings.Contains(out.String(), "0 metric(s) changed, 0 regression(s)") {
		t.Fatalf("self-diff output unexpected:\n%s", out.String())
	}
}

// TestRenderFrame smoke-tests the dashboard renderer against a snapshot with
// counters, span histograms and shard sections, including the rate math
// between two frames.
func TestRenderFrame(t *testing.T) {
	clock := int64(0)
	tel := telemetry.NewWithClock(func() int64 { clock += 1000; return clock })
	tel.Add(telemetry.CounterSteps, 20)
	tel.Add(telemetry.CounterRPCCalls, 80)
	tel.Add(telemetry.CounterCloudBytes, 3<<20)
	tel.SetGauge(telemetry.GaugeAccuracy, 0.91)
	tel.SetGauge(telemetry.GaugeLoss, 0.4)
	tel.Observe(telemetry.HistStepNS, 5_000_000)
	tel.Observe(telemetry.HistEdgeSampled, 12)
	tel.SetShardCount(2)
	tel.ObserveShardPhase(0, telemetry.ShardPhaseDecide, 100_000)
	tel.EnableSpans(true)
	tel.RecordSpan(telemetry.SpanRPCEdgeStep, 0, 3, 1, -1, 0, 2_000_000)
	prev := tel.Snapshot()
	tel.Add(telemetry.CounterSteps, 10)
	cur := tel.Snapshot()

	var out bytes.Buffer
	renderFrame(&out, "127.0.0.1:6060", cur, prev, 2.0)
	for _, want := range []string{
		"steps           30  (5.0/s)",
		"comm      cloud 3.00 MiB",
		"accuracy 0.9100",
		"span_rpc_edge_step", // span percentile row
		"step",               // engine hist row
		"shard",              // shard section header
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("frame missing %q:\n%s", want, out.String())
		}
	}
}

// TestCheckExposition accepts the real exposition and rejects junk.
func TestCheckExposition(t *testing.T) {
	tel := telemetry.New()
	tel.Add(telemetry.CounterSteps, 5)
	tel.Observe(telemetry.HistStepNS, 100)
	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, tel.Snapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	families, samples, err := checkExposition(buf.String())
	if err != nil {
		t.Fatalf("checkExposition rejected real exposition: %v", err)
	}
	if families == 0 || samples == 0 {
		t.Fatalf("families/samples = %d/%d, want > 0", families, samples)
	}
	if _, _, err := checkExposition("not_prefixed 1\n"); err == nil {
		t.Fatal("checkExposition accepted a non-mach_ sample")
	}
	if _, _, err := checkExposition(""); err == nil {
		t.Fatal("checkExposition accepted an empty exposition")
	}
}

// TestLoadSnapshotRoundTrip keeps machtop's snapshot reader compatible with
// the telemetry package's writer.
func TestLoadSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshotFile(t, dir, "snap.json", func(tel *telemetry.Telemetry) {
		tel.Add(telemetry.CounterEvals, 7)
	})
	s, err := loadSnapshot(path)
	if err != nil {
		t.Fatalf("loadSnapshot: %v", err)
	}
	if s.Counters["evals"] != 7 {
		t.Fatalf("evals = %d, want 7", s.Counters["evals"])
	}
	if _, err := loadSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loadSnapshot accepted a missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(bad); err == nil {
		t.Fatal("loadSnapshot accepted malformed JSON")
	}
	// The writer must emit something json.Valid agrees with, too.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("snapshot file is not valid JSON")
	}
}
