// Command machtop is the observability companion for a running machsim or
// machnode process: a live terminal dashboard over the debug server's
// /debug/telemetry snapshot, a one-shot scrape of the health and metrics
// endpoints (for scripts and smoke tests), and an offline diff of two saved
// snapshots that flags metric regressions.
//
// Usage:
//
//	machtop -addr 127.0.0.1:6060                 # live dashboard (2s refresh)
//	machtop -addr 127.0.0.1:6060 -once           # one frame, no screen clear
//	machtop scrape -addr 127.0.0.1:6060          # /healthz + /readyz + /metrics check
//	machtop diff old.json new.json               # exit 1 when a metric regressed
//
// Snapshots for diff come from `machsim -metrics-out` or from saving
// /debug/telemetry. The regression rules are telemetry.DiffSnapshots's:
// latency/byte/loss metrics must not grow, accuracy must not drop, beyond
// -threshold percent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/mach-fl/mach/internal/det"
	"github.com/mach-fl/mach/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "machtop:", err)
		os.Exit(1)
	}
}

// errRegression marks a diff that found regressions, so main exits 1 with
// the findings already printed.
type errRegression int

func (e errRegression) Error() string {
	return fmt.Sprintf("%d metric regression(s)", int(e))
}

func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "scrape":
			return runScrape(args[1:])
		case "diff":
			return runDiff(args[1:])
		}
	}
	return runWatch(args)
}

// runWatch is the live dashboard: poll /debug/telemetry and render a frame
// per interval, computing rates from consecutive snapshots.
func runWatch(args []string) error {
	fs := flag.NewFlagSet("machtop", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:6060", "debug server address (machsim/machnode -debug-addr)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "render a single frame and exit")
	count := fs.Int("count", 0, "stop after N frames (0 = forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	client := &http.Client{Timeout: 5 * time.Second}
	var prev *telemetry.Snapshot
	var prevAt time.Time
	for frame := 0; ; frame++ {
		cur, err := fetchSnapshot(client, *addr)
		if err != nil {
			return err
		}
		//machlint:allow walltime dashboard rate math needs real elapsed wall time between polls; display-only, never feeds the run
		now := time.Now()
		var elapsed float64
		if prev != nil {
			elapsed = now.Sub(prevAt).Seconds()
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderFrame(os.Stdout, *addr, cur, prev, elapsed)
		prev, prevAt = cur, now
		if *once || (*count > 0 && frame+1 >= *count) {
			return nil
		}
		time.Sleep(*interval)
	}
}

func fetchSnapshot(client *http.Client, addr string) (*telemetry.Snapshot, error) {
	resp, err := client.Get("http://" + addr + "/debug/telemetry")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //machlint:allow errdrop response body close failure cannot corrupt a read that already succeeded
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/telemetry: status %d", resp.StatusCode)
	}
	var s telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, fmt.Errorf("decode /debug/telemetry: %w", err)
	}
	return &s, nil
}

// renderFrame writes one dashboard frame. prev may be nil (first frame:
// rates show as totals only); elapsed is the wall seconds since prev.
func renderFrame(w io.Writer, addr string, cur, prev *telemetry.Snapshot, elapsed float64) {
	steps := cur.Counters["steps"]
	fmt.Fprintf(w, "machtop  %s\n\n", addr)

	rate := func(counter string) string {
		if prev == nil || elapsed <= 0 {
			return "-"
		}
		d := float64(cur.Counters[counter]-prev.Counters[counter]) / elapsed
		return fmt.Sprintf("%.1f/s", d)
	}
	sampledPerStep := "-"
	if h := cur.Histograms["edge_sampled"]; h.Count > 0 {
		sampledPerStep = fmt.Sprintf("%.1f", h.Mean)
	}
	fmt.Fprintf(w, "steps     %8d  (%s)   sampled/edge-step %s   evals %d   cloud rounds %d\n",
		steps, rate("steps"), sampledPerStep,
		cur.Counters["evals"], cur.Counters["cloud_rounds"])
	fmt.Fprintf(w, "rpc calls %8d  (%s)   devices trained %d\n",
		cur.Counters["rpc_calls"], rate("rpc_calls"), cur.Counters["devices_trained"])
	fmt.Fprintf(w, "comm      cloud %s   device up %s / down %s\n",
		fmtBytes(cur.Counters["cloud_bytes"]),
		fmtBytes(cur.Counters["device_uplink_bytes"]),
		fmtBytes(cur.Counters["device_downlink_bytes"]))
	if acc, ok := cur.Gauges["accuracy"]; ok {
		fmt.Fprintf(w, "model     accuracy %.4f   loss %.4f\n", acc, cur.Gauges["loss"])
	}

	// Latency percentiles: engine phases first, then every span family.
	fmt.Fprintf(w, "\n%-24s %10s %10s %10s %10s %8s\n", "latency", "p50", "p90", "p99", "p999", "count")
	for _, name := range latencyOrder(cur) {
		h := cur.Histograms[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-24s %10s %10s %10s %10s %8d\n", strings.TrimSuffix(name, "_ns"),
			fmtNS(h.P50), fmtNS(h.P90), fmtNS(h.P99), fmtNS(h.P999), h.Count)
	}

	if len(cur.Shards) > 0 {
		fmt.Fprintf(w, "\n%-8s %6s %12s %12s %12s\n", "shard", "queue", "decide p99", "train p99", "final p99")
		for _, sh := range cur.Shards {
			fmt.Fprintf(w, "%-8d %6d %12s %12s %12s\n", sh.Shard, sh.QueueDepth,
				fmtNS(sh.Phases["decide"].P99), fmtNS(sh.Phases["train"].P99), fmtNS(sh.Phases["finalize"].P99))
		}
	}
}

// latencyOrder lists the snapshot's duration histograms: the engine-level
// *_ns families in sorted order, then the span families in sorted order —
// stable across frames so rows do not jump.
func latencyOrder(s *telemetry.Snapshot) []string {
	var engine, spans []string
	for _, name := range det.SortedKeys(s.Histograms) {
		if !strings.HasSuffix(name, "_ns") {
			continue
		}
		if strings.HasPrefix(name, "span_") {
			spans = append(spans, name)
		} else {
			engine = append(engine, name)
		}
	}
	return append(engine, spans...)
}

func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// runScrape is the scriptable one-shot probe: check /healthz and /readyz,
// fetch /metrics, validate the exposition shape, and print a summary. Any
// failure is a non-zero exit, which is what check.sh keys on.
func runScrape(args []string) error {
	fs := flag.NewFlagSet("machtop scrape", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:6060", "debug server address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Second}

	get := func(path string) (int, string, error) {
		resp, err := client.Get("http://" + *addr + path)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close() //machlint:allow errdrop response body close failure cannot corrupt a read that already succeeded
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, "", err
		}
		return resp.StatusCode, string(body), nil
	}

	status, body, err := get("/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if status != http.StatusOK || strings.TrimSpace(body) != "ok" {
		return fmt.Errorf("healthz: status %d body %q", status, body)
	}
	readyStatus, readyBody, err := get("/readyz")
	if err != nil {
		return fmt.Errorf("readyz: %w", err)
	}
	status, body, err = get("/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("metrics: status %d", status)
	}
	families, samples, err := checkExposition(body)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	fmt.Printf("machtop scrape %s: healthz ok, readyz %d %s, metrics %d families / %d samples\n",
		*addr, readyStatus, strings.TrimSpace(readyBody), families, samples)
	return nil
}

// checkExposition validates the Prometheus text format loosely: every
// non-comment line must be "name{labels} value" with a mach_ prefix, and at
// least one family must be present.
func checkExposition(body string) (families, samples int, err error) {
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			families++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "mach_") {
			return 0, 0, fmt.Errorf("sample without mach_ prefix: %q", line)
		}
		if !strings.Contains(line, " ") {
			return 0, 0, fmt.Errorf("malformed sample line: %q", line)
		}
		samples++
	}
	if families == 0 || samples == 0 {
		return 0, 0, fmt.Errorf("empty exposition (%d families, %d samples)", families, samples)
	}
	return families, samples, nil
}

// runDiff compares two saved snapshots and prints the changed metrics,
// exiting non-zero when any regressed beyond the threshold.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("machtop diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0, "regression threshold in percent (0 = default 10)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: machtop diff [-threshold pct] old.json new.json")
	}
	return diffFiles(os.Stdout, fs.Arg(0), fs.Arg(1), *threshold)
}

// diffFiles is runDiff's testable core: load, diff, render, and surface
// regressions as errRegression.
func diffFiles(w io.Writer, oldPath, newPath string, threshold float64) error {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	deltas := telemetry.DiffSnapshots(oldSnap, newSnap, telemetry.DiffOptions{ThresholdPct: threshold})
	if err := telemetry.WriteSnapshotDiff(w, deltas); err != nil {
		return err
	}
	if n := telemetry.Regressions(deltas); n > 0 {
		return errRegression(n)
	}
	return nil
}

func loadSnapshot(path string) (*telemetry.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s telemetry.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}
