// Command machlint runs the repo's custom static-analysis suite
// (internal/lint) over the given package patterns and exits nonzero on
// findings. It is wired into `make lint` and scripts/check.sh; run it from
// the module root so package-scoped configuration paths resolve.
//
//	machlint ./...
//	machlint -checks maprange,floateq ./internal/...
package main

import (
	"os"

	"github.com/mach-fl/mach/internal/lint"
)

func main() {
	os.Exit(lint.Main(".", os.Args[1:], os.Stdout, os.Stderr))
}
