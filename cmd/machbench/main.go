// Command machbench regenerates the paper's evaluation — every figure and
// table — on the simulator. Results print as text tables; see EXPERIMENTS.md
// for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	machbench -exp fig3 -task mnist -scale ci
//	machbench -exp all -scale full          # paper-scale, slow
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/mach-fl/mach/internal/bench"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/telemetry"
)

// csvDir, when set by -out, receives per-strategy accuracy curves.
var csvDir string

// exportCurves writes one CSV per strategy of a comparison.
func exportCurves(prefix string, cmp *bench.Comparison) error {
	if csvDir == "" {
		return nil
	}
	for _, res := range cmp.Results {
		path := filepath.Join(csvDir, fmt.Sprintf("%s_%s.csv", prefix, res.Strategy))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		err = res.History.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
	}
	return nil
}

// writeLookupProfile dumps a runtime profile (block, mutex) at exit.
func writeLookupProfile(name, path string) {
	p := pprof.Lookup(name)
	if p == nil {
		fmt.Fprintf(os.Stderr, "machbench: no %s profile\n", name)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "machbench: create %s profile: %v\n", name, err)
		return
	}
	if err := p.WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "machbench: write %s profile: %v\n", name, err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "machbench: close %s profile: %v\n", name, err)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "machbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp   = flag.String("exp", "fig3", "experiment: fig3 | fig4 | fig5 | table1 | ablations | engine | comm | scale | telemetry | all")
		task  = flag.String("task", "", "task: mnist | fmnist | cifar10 (default: all tasks)")
		scale = flag.String("scale", "ci", "scale: ci | full")
		quick  = flag.Bool("quick", false, "use the seconds-scale smoke preset (scale/telemetry experiments only)")
		shards = flag.String("shards", "", "comma-separated shard counts for the scale experiment's sharded rows (empty = preset sweep)")

		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		blockProfile = flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
		mutexProfile = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		seed         = flag.Int64("seed", 1, "base random seed")
		runs         = flag.Int("runs", 0, "override number of averaged runs (0 = preset)")
		steps        = flag.Int("steps", 0, "override step budget (0 = preset)")

		devices = flag.Int("devices", 0, "override device count (0 = preset)")
		edges   = flag.Int("edges", 0, "override edge count (0 = preset)")
		batch   = flag.Int("batch", 0, "override batch size (0 = preset)")
		lr      = flag.Float64("lr", 0, "override learning rate (0 = preset)")
		part    = flag.Float64("participation", 0, "override participation (0 = preset)")
		tail    = flag.Float64("tail", 0, "override device tail ratio (0 = preset)")
		gtail   = flag.Float64("gtail", -1, "override global tail ratio (-1 = preset)")
		alpha   = flag.Float64("alpha", 0, "override MACH alpha (0 = preset)")
		beta    = flag.Float64("beta", 0, "override MACH beta (0 = preset)")
		target  = flag.Float64("target", 0, "override target accuracy (0 = preset)")
		agg     = flag.String("agg", "", "override aggregation: inverse | plain | literal")
	lane    = flag.String("lane", "", "override compute lane for local updates: f64 | f32 (default: preset)")
	fuse    = flag.Bool("fuse", false, "fuse each edge's sampled devices into one lockstep execution task")
		conf    = flag.String("config", "", "JSON experiment config layered over the preset")
		outDir  = flag.String("out", "", "directory for per-strategy CSV curves and the resolved config (optional)")
		ndev    = flag.Float64("noisydev", -1, "override noisy-device fraction (-1 = preset)")
		nlab    = flag.Float64("noisylab", -1, "override noisy-label fraction (-1 = preset)")
		speed   = flag.Float64("speed", 0, "override mobility speed multiplier (0 = preset)")
		explore = flag.Float64("explore", -1, "override MACH exploration coefficient (-1 = preset)")
		disc    = flag.Float64("discount", 0, "override MACH discount (0 = preset)")
		epochs  = flag.Int("epochs", 0, "override local epochs I (0 = preset)")
		tg      = flag.Int("tg", 0, "override cloud interval Tg (0 = preset)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "machbench: close cpu profile:", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "machbench: create mem profile:", err)
				return
			}
			runtime.GC() // material heap only
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "machbench: write mem profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "machbench: close mem profile:", err)
			}
		}()
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeLookupProfile("block", *blockProfile)
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeLookupProfile("mutex", *mutexProfile)
	}
	// profiles is recorded into the JSON-writing experiments' results, so a
	// committed number can be traced back to the profiles captured with it.
	var profiles *bench.ProfileMeta
	if *cpuProfile != "" || *memProfile != "" || *blockProfile != "" || *mutexProfile != "" {
		profiles = &bench.ProfileMeta{
			CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile,
		}
	}

	if *exp == "scale" {
		// The control-plane scale benchmark builds synthetic populations;
		// task/scale flags don't apply.
		return runScale(*outDir, *quick, *shards, profiles)
	}
	if *exp == "engine" {
		// The engine micro-benchmark runs a frozen configuration so its
		// numbers are comparable across commits; task/scale flags don't
		// apply.
		return runEngine(*outDir, profiles)
	}
	if *exp == "comm" {
		// Same deal for the wire-format benchmark: a frozen distributed
		// deployment measured per codec scheme.
		return runComm(*outDir, profiles)
	}
	if *exp == "telemetry" {
		// The telemetry overhead benchmark reruns one control-plane workload
		// per observability tier; task/scale flags don't apply.
		return runTelemetry(*outDir, *quick, profiles)
	}

	tasks := bench.AllTasks()
	if *task != "" {
		tasks = []bench.Task{bench.Task(*task)}
	}
	sc := bench.Scale(*scale)
	if sc != bench.ScaleCI && sc != bench.ScaleFull {
		return fmt.Errorf("unknown scale %q", *scale)
	}

	for _, tk := range tasks {
		cfg := bench.TaskPreset(tk, sc)
		if *conf != "" {
			loaded, err := bench.LoadConfig(*conf, cfg)
			if err != nil {
				return err
			}
			cfg = loaded
		}
		cfg.Seed = *seed
		if *runs > 0 {
			cfg.Runs = *runs
		}
		if *steps > 0 {
			cfg.Steps = *steps
		}
		if *devices > 0 {
			cfg.Devices = *devices
		}
		if *edges > 0 {
			cfg.Edges = *edges
		}
		if *batch > 0 {
			cfg.BatchSize = *batch
		}
		if *lr > 0 {
			cfg.LearningRate = *lr
		}
		if *part > 0 {
			cfg.Participation = *part
		}
		if *tail > 0 {
			cfg.TailRatio = *tail
		}
		if *gtail >= 0 {
			cfg.GlobalTailRatio = *gtail
		}
		if *alpha > 0 {
			cfg.MACH.Alpha = *alpha
		}
		//machlint:allow floateq flag sentinel: exact zero means "not set on the command line"
		if *beta != 0 {
			cfg.MACH.Beta = *beta
		}
		if *target > 0 {
			cfg.TargetAccuracy = *target
		}
		if *epochs > 0 {
			cfg.LocalEpochs = *epochs
		}
		if *ndev >= 0 {
			cfg.NoisyDevices = *ndev
		}
		if *nlab >= 0 {
			cfg.NoisyLabels = *nlab
		}
		if *speed > 0 {
			cfg.MobilitySpeed = *speed
		}
		if *explore >= 0 {
			cfg.MACH.ExplorationCoef = *explore
		}
		if *disc > 0 {
			cfg.MACH.Discount = *disc
		}
		if *tg > 0 {
			cfg.CloudInterval = *tg
		}
		if *lane != "" {
			if _, err := hfl.ParseLane(*lane); err != nil {
				return err
			}
			cfg.Lane = *lane
		}
		if *fuse {
			cfg.FuseBatch = true
		}
		switch *agg {
		case "":
		case "inverse":
			cfg.Aggregation = hfl.AggInverseUpdate
		case "plain":
			cfg.Aggregation = hfl.AggPlain
		case "literal":
			cfg.Aggregation = hfl.AggLiteralEq5
		default:
			return fmt.Errorf("unknown aggregation %q", *agg)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return fmt.Errorf("create output dir: %w", err)
			}
			if err := bench.SaveConfig(cfg, filepath.Join(*outDir, fmt.Sprintf("config_%s.json", tk))); err != nil {
				return err
			}
			csvDir = *outDir
		}
		switch *exp {
		case "fig3":
			if err := runFig3(cfg); err != nil {
				return err
			}
		case "fig4":
			if err := runFig4(cfg); err != nil {
				return err
			}
		case "fig5":
			if err := runFig5(cfg); err != nil {
				return err
			}
		case "table1":
			if err := runTable1(cfg); err != nil {
				return err
			}
		case "ablations":
			if err := runAblations(cfg); err != nil {
				return err
			}
		case "all":
			for _, f := range []func(bench.Config) error{runFig3, runFig4, runFig5, runTable1} {
				if err := f(cfg); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("unknown experiment %q", *exp)
		}
	}
	return nil
}

func runFig3(cfg bench.Config) error {
	start := telemetry.WallNow()
	r, err := bench.RunFig3(cfg)
	if err != nil {
		return err
	}
	if err := bench.RenderFig3(os.Stdout, r); err != nil {
		return err
	}
	if err := exportCurves(fmt.Sprintf("fig3_%s", cfg.Task), r.Comparison); err != nil {
		return err
	}
	fmt.Printf("[fig3 %s done in %v]\n\n", cfg.Task, telemetry.WallSince(start).Round(time.Millisecond))
	return nil
}

func runFig4(cfg bench.Config) error {
	start := telemetry.WallNow()
	edges := []int{2, 5, 10}
	if cfg.Devices < 50 {
		edges = []int{2, 3, 5} // CI topology has fewer devices per edge
	}
	r, err := bench.RunEdgeSweep(cfg, edges)
	if err != nil {
		return err
	}
	if err := bench.RenderSweep(os.Stdout, r, "Figure 4"); err != nil {
		return err
	}
	fmt.Printf("[fig4 %s done in %v]\n\n", cfg.Task, telemetry.WallSince(start).Round(time.Millisecond))
	return nil
}

func runFig5(cfg bench.Config) error {
	start := telemetry.WallNow()
	r, err := bench.RunParticipationSweep(cfg, []float64{0.4, 0.5, 0.6, 0.7})
	if err != nil {
		return err
	}
	if err := bench.RenderSweep(os.Stdout, r, "Figure 5"); err != nil {
		return err
	}
	fmt.Printf("[fig5 %s done in %v]\n\n", cfg.Task, telemetry.WallSince(start).Round(time.Millisecond))
	return nil
}

func runAblations(cfg bench.Config) error {
	start := telemetry.WallNow()
	results, err := bench.RunAblations(cfg)
	if err != nil {
		return err
	}
	if err := bench.RenderAblations(os.Stdout, results); err != nil {
		return err
	}
	fmt.Printf("[ablations %s done in %v]\n\n", cfg.Task, telemetry.WallSince(start).Round(time.Millisecond))
	return nil
}

// runEngine measures the training engine itself (wall time per step,
// allocations, devices-trained/sec across worker-pool sizes) and writes
// BENCH_engine.json next to the binary or into -out.
func runEngine(outDir string, profiles *bench.ProfileMeta) error {
	start := telemetry.WallNow()
	r, err := bench.RunEngineBench(bench.EngineBenchPreset())
	if err != nil {
		return err
	}
	r.Profiles = profiles
	if err := bench.RenderEngineBench(os.Stdout, r); err != nil {
		return err
	}
	path := "BENCH_engine.json"
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
		path = filepath.Join(outDir, path)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	err = r.WriteEngineBenchJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("\n[engine bench done in %v — wrote %s]\n\n", telemetry.WallSince(start).Round(time.Millisecond), path)
	return nil
}

// runScale measures the sampling control plane at synthetic populations up
// to 1M devices × 10k edges (naive, indexed and sharded rows per cell) and
// writes BENCH_scale.json next to the binary or into -out. -quick swaps in
// the seconds-scale smoke preset; -shards overrides the preset's shard-count
// sweep.
func runScale(outDir string, quick bool, shards string, profiles *bench.ProfileMeta) error {
	start := telemetry.WallNow()
	preset := bench.ScaleBenchPreset()
	if quick {
		preset = bench.ScaleBenchQuickPreset()
	}
	if shards != "" {
		sweep, err := parseShardSweep(shards)
		if err != nil {
			return err
		}
		preset.Shards = sweep
	}
	r, err := bench.RunScaleBench(preset)
	if err != nil {
		return err
	}
	r.Profiles = profiles
	if err := bench.RenderScaleBench(os.Stdout, r); err != nil {
		return err
	}
	path := "BENCH_scale.json"
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
		path = filepath.Join(outDir, path)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	err = r.WriteScaleBenchJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("\n[scale bench done in %v — wrote %s]\n\n", telemetry.WallSince(start).Round(time.Millisecond), path)
	return nil
}

// parseShardSweep parses the -shards flag: comma-separated positive shard
// counts, e.g. "1,4,16".
func parseShardSweep(s string) ([]int, error) {
	var sweep []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -shards entry %q (want positive integers, e.g. 1,4,16)", part)
		}
		sweep = append(sweep, n)
	}
	return sweep, nil
}

// runComm measures the distributed stack's wire traffic per codec scheme
// (real bytes counted on every connection) and writes BENCH_comm.json next
// to the binary or into -out.
func runComm(outDir string, profiles *bench.ProfileMeta) error {
	start := telemetry.WallNow()
	r, err := bench.RunCommBench(bench.CommBenchPreset())
	if err != nil {
		return err
	}
	r.Profiles = profiles
	if err := bench.RenderCommBench(os.Stdout, r); err != nil {
		return err
	}
	path := "BENCH_comm.json"
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
		path = filepath.Join(outDir, path)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	err = r.WriteCommBenchJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("\n[comm bench done in %v — wrote %s]\n\n", telemetry.WallSince(start).Round(time.Millisecond), path)
	return nil
}

// runTelemetry measures the observability overhead (off vs metrics vs spans
// vs full trace vs a live /metrics scrape load) on the control-plane workload
// and writes BENCH_telemetry.json next to the binary or into -out. -quick
// swaps in the seconds-scale smoke preset.
func runTelemetry(outDir string, quick bool, profiles *bench.ProfileMeta) error {
	start := telemetry.WallNow()
	preset := bench.TelemetryBenchPreset()
	if quick {
		preset = bench.TelemetryBenchQuickPreset()
	}
	r, err := bench.RunTelemetryBench(preset)
	if err != nil {
		return err
	}
	r.Profiles = profiles
	if err := bench.RenderTelemetryBench(os.Stdout, r); err != nil {
		return err
	}
	path := "BENCH_telemetry.json"
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
		path = filepath.Join(outDir, path)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	err = r.WriteTelemetryBenchJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("\n[telemetry bench done in %v — wrote %s]\n\n", telemetry.WallSince(start).Round(time.Millisecond), path)
	return nil
}

func runTable1(cfg bench.Config) error {
	start := telemetry.WallNow()
	r, err := bench.RunTable1(cfg)
	if err != nil {
		return err
	}
	if err := bench.RenderTable1(os.Stdout, r); err != nil {
		return err
	}
	fmt.Printf("[table1 %s done in %v]\n\n", cfg.Task, telemetry.WallSince(start).Round(time.Millisecond))
	return nil
}
