// Command machnode runs one node of a distributed MACH deployment: a device
// host, an edge server, or the cloud coordinator. All nodes derive the same
// synthetic task, partition and mobility schedule from the shared flags
// (-task/-seed/-devices/-edges/-steps), so a deployment needs no shared
// storage — start the device hosts, then the edges, then the cloud:
//
//	machnode -role device -listen 127.0.0.1:7001 -host-index 0 -num-hosts 2 &
//	machnode -role device -listen 127.0.0.1:7002 -host-index 1 -num-hosts 2 &
//	machnode -role edge   -listen 127.0.0.1:7101 -edge-index 0 \
//	         -device-hosts 127.0.0.1:7001,127.0.0.1:7002 &
//	machnode -role edge   -listen 127.0.0.1:7102 -edge-index 1 \
//	         -device-hosts 127.0.0.1:7001,127.0.0.1:7002 &
//	machnode -role cloud  -edge-addrs 127.0.0.1:7101,127.0.0.1:7102 \
//	         -device-hosts 127.0.0.1:7001,127.0.0.1:7002 -edges 2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/mach-fl/mach/internal/bench"
	"github.com/mach-fl/mach/internal/codec"
	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/fed"
	"github.com/mach-fl/mach/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "machnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role    = flag.String("role", "", "node role: device | edge | cloud")
		task    = flag.String("task", "mnist", "task: mnist | fmnist | cifar10")
		seed    = flag.Int64("seed", 1, "shared experiment seed")
		devices = flag.Int("devices", 20, "total logical devices")
		edges   = flag.Int("edges", 2, "number of edges")
		steps   = flag.Int("steps", 60, "time steps")

		listen    = flag.String("listen", "127.0.0.1:0", "device/edge: listen address")
		hostIndex = flag.Int("host-index", 0, "device: index of this host")
		numHosts  = flag.Int("num-hosts", 1, "device: total device hosts")
		edgeIndex = flag.Int("edge-index", 0, "edge: index of this edge")
		hostList  = flag.String("device-hosts", "", "edge/cloud: comma-separated device host addresses")
		edgeList  = flag.String("edge-addrs", "", "cloud: comma-separated edge addresses")
		codecName = flag.String("codec", codec.SchemeDelta.String(),
			"cloud: wire format for model transfers: delta | raw | float32 | int8")
		debugAddr = flag.String("debug-addr", "",
			"serve /debug/*, /metrics, /healthz and /readyz on this address (watch with machtop)")
	)
	flag.Parse()
	fmt.Fprintf(os.Stderr, "machnode: build %s\n", telemetry.BuildVersion())

	// Every role can expose its telemetry; without -debug-addr the servers
	// keep their zero-overhead nil sinks. Spans ride along with the debug
	// server: they feed /debug/spans and the span_*_ns percentile families,
	// and the RPC span context in every call stitches the cloud, edge and
	// device rings into one tree. /readyz stays 503 until the role's own
	// serving surface is actually up (markReady below).
	var tel *telemetry.Telemetry
	var dbg *telemetry.DebugServer
	if *debugAddr != "" {
		tel = telemetry.New()
		tel.EnableSpans(true)
		srv, err := telemetry.StartDebugServer(*debugAddr, tel)
		if err != nil {
			return err
		}
		dbg = srv
		defer srv.Close() //machlint:allow errdrop process is exiting; the listener dies with it
		fmt.Fprintf(os.Stderr, "machnode: debug server on http://%s/debug/\n", srv.Addr)
	}
	markReady := func() { dbg.SetReady(true) } // nil-safe
	scheme, err := codec.ParseScheme(*codecName)
	if err != nil {
		return err
	}

	cfg := bench.TaskPreset(bench.Task(*task), bench.ScaleCI)
	cfg.Seed = *seed
	cfg.Devices = *devices
	cfg.Edges = *edges
	cfg.Steps = *steps
	env, err := cfg.BuildEnvironment(0)
	if err != nil {
		return err
	}
	hyper := fed.Hyper{
		LocalEpochs:  cfg.LocalEpochs,
		BatchSize:    cfg.BatchSize,
		LearningRate: cfg.LearningRate,
	}

	switch *role {
	case "device":
		if *hostIndex < 0 || *numHosts < 1 || *hostIndex >= *numHosts {
			return fmt.Errorf("invalid host index %d of %d", *hostIndex, *numHosts)
		}
		data := map[int]*dataset.Dataset{}
		for m := 0; m < cfg.Devices; m++ {
			if hostOf(m, cfg.Devices, *numHosts) == *hostIndex {
				data[m] = env.DeviceData[m]
			}
		}
		srv, err := fed.NewDeviceServer(cfg.Arch(), data, cfg.MACH, *seed+int64(*hostIndex)*97)
		if err != nil {
			return err
		}
		srv.SetTelemetry(tel)
		addr, err := srv.Serve(*listen)
		if err != nil {
			return err
		}
		fmt.Printf("machnode: device host %d/%d serving %d devices on %s\n",
			*hostIndex, *numHosts, len(data), addr)
		markReady()
		waitForSignal()
		return srv.Close()

	case "edge":
		hosts := splitAddrs(*hostList)
		if len(hosts) == 0 {
			return fmt.Errorf("edge role needs -device-hosts")
		}
		table := map[int]string{}
		for m := 0; m < cfg.Devices; m++ {
			table[m] = hosts[hostOf(m, cfg.Devices, len(hosts))]
		}
		base, err := cfg.Arch()(rand.New(rand.NewSource(*seed)))
		if err != nil {
			return err
		}
		e, err := fed.NewEdgeServer(*edgeIndex, cfg.MACH, hyper, *seed+int64(*edgeIndex)*31, fed.StaticResolver(table), base.ParamVector())
		if err != nil {
			return err
		}
		e.SetTelemetry(tel)
		addr, err := e.Serve(*listen)
		if err != nil {
			return err
		}
		fmt.Printf("machnode: edge %d serving on %s\n", *edgeIndex, addr)
		markReady()
		waitForSignal()
		return e.Close()

	case "cloud":
		edgeAddrs := splitAddrs(*edgeList)
		hostAddrs := splitAddrs(*hostList)
		if len(edgeAddrs) != cfg.Edges {
			return fmt.Errorf("cloud needs %d edge addresses, got %d", cfg.Edges, len(edgeAddrs))
		}
		cloud, err := fed.NewCloud(fed.CloudConfig{
			Steps:         cfg.Steps,
			CloudInterval: cfg.CloudInterval,
			Participation: cfg.Participation,
			EvalEvery:     cfg.EvalEvery,
			Seed:          *seed,
			Codec:         scheme,
		}, cfg.Arch(), env.Schedule, env.Test, edgeAddrs, hostAddrs)
		if err != nil {
			return err
		}
		defer cloud.Close() //machlint:allow errdrop best-effort teardown at process exit; run errors already surfaced
		cloud.SetTelemetry(tel)
		markReady() // all edges and hosts dialed: the run is observable from here
		hist, err := cloud.Run()
		if err != nil {
			return err
		}
		if err := hist.WriteCSV(os.Stdout); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "machnode: cloud finished, final accuracy %.4f\n", hist.FinalAccuracy())
		if comm, err := cloud.CommStats(); err == nil {
			fmt.Fprintf(os.Stderr,
				"machnode: comm (%s, measured): device up %d B, down %d B, cloud %d B, total %d B\n",
				scheme, comm.DeviceUplinkBytes, comm.DeviceDownlinkBytes, comm.CloudBytes, comm.Total())
		}
		return nil

	default:
		return fmt.Errorf("unknown role %q (want device | edge | cloud)", *role)
	}
}

// hostOf maps devices to hosts in contiguous blocks, matching the device
// role's partitioning.
func hostOf(device, devices, hosts int) int {
	h := device * hosts / devices
	if h >= hosts {
		h = hosts - 1
	}
	return h
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
