// Command diag is a development diagnostic: it trains the global model for a
// while, then reports each device's true gradient norm against the rarity of
// its dominant class, and the per-strategy sampling tilt. It verifies the
// causal chain MACH relies on: rare-class devices ⇒ larger gradient norms ⇒
// larger sampling probabilities ⇒ faster convergence on a balanced test set.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"

	"github.com/mach-fl/mach/internal/bench"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/nn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "diag:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := bench.TaskPreset(bench.TaskMNIST, bench.ScaleCI)
	env, err := cfg.BuildEnvironment(0)
	if err != nil {
		return err
	}
	// Global class distribution across devices.
	classes := env.Test.Classes
	global := make([]float64, classes)
	for _, d := range env.DeviceData {
		for c, p := range d.ClassDistribution() {
			global[c] += p / float64(len(env.DeviceData))
		}
	}
	fmt.Println("global class distribution:")
	for c, p := range global {
		fmt.Printf("  class %d: %.3f\n", c, p)
	}

	strat, err := cfg.NewStrategy(bench.StratUniform)
	if err != nil {
		return err
	}
	for _, trainSteps := range []int{10, 40, 80} {
		c := cfg
		c.Steps = trainSteps
		eng, err := hfl.New(c.HFLConfig(0), c.Arch(), env.DeviceData, env.Test, env.Schedule, strat)
		if err != nil {
			return err
		}
		res, err := eng.Run()
		if err != nil {
			return err
		}
		// Probe every device's gradient norm under the trained global model.
		rng := rand.New(rand.NewSource(9))
		net, err := c.Arch()(rng)
		if err != nil {
			return err
		}
		if err := net.SetParamVector(eng.GlobalParams()); err != nil {
			return err
		}
		opt := nn.NewSGD(0)
		type devInfo struct {
			id       int
			domClass int
			rarity   float64 // global mass of dominant class (small = rare)
			norm     float64
		}
		infos := make([]devInfo, len(env.DeviceData))
		for m, d := range env.DeviceData {
			dist := d.ClassDistribution()
			dom := 0
			for cc, p := range dist {
				if p > dist[dom] {
					dom = cc
				}
			}
			avg := 0.0
			const probes = 8
			for p := 0; p < probes; p++ {
				x, y := d.RandomBatch(rng, c.BatchSize)
				_, gn := net.TrainStep(x, y, opt)
				avg += gn / probes
			}
			infos[m] = devInfo{id: m, domClass: dom, rarity: global[dom], norm: avg}
		}
		sort.Slice(infos, func(i, j int) bool { return infos[i].rarity < infos[j].rarity })
		fmt.Printf("\nafter %d steps (global acc %.3f): device gradient norms by dominant-class rarity\n",
			trainSteps, res.History.FinalAccuracy())
		for _, in := range infos {
			fmt.Printf("  dev %2d dom=%d globalmass=%.3f  ‖g‖²=%8.3f\n", in.id, in.domClass, in.rarity, in.norm)
		}
		// Correlation between rarity rank and norm.
		var rareMean, commonMean float64
		half := len(infos) / 2
		for i, in := range infos {
			if i < half {
				rareMean += in.norm / float64(half)
			} else {
				commonMean += in.norm / float64(len(infos)-half)
			}
		}
		fmt.Printf("  mean ‖g‖²: rare-half %.3f vs common-half %.3f (ratio %.2f)\n",
			rareMean, commonMean, rareMean/commonMean)
	}
	return nil
}
