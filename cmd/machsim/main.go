// Command machsim runs a single HFL training experiment: one task, one
// sampling strategy, one mobility source. It prints the accuracy history as
// CSV and a summary line, and can consume real-format mobility traces
// produced by cmd/tracegen (-trace/-coords), exercising the same pipeline
// the paper uses with the Shanghai Telecom dataset.
//
// Usage:
//
//	machsim -task mnist -strategy mach -steps 150
//	tracegen -trace t.csv -coords s.csv && \
//	machsim -task fmnist -strategy mach -trace t.csv -coords s.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"math/rand"

	"github.com/mach-fl/mach/internal/bench"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/telemetry"
)

// writeCSVTo streams write into the file at path ("" means stdout). The
// close error is part of the write: a failed flush must not report success.
func writeCSVTo(path string, write func(io.Writer) error) error {
	if path == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	err = write(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("close %s: %w", path, cerr)
	}
	return err
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "machsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		task     = flag.String("task", "mnist", "task: mnist | fmnist | cifar10")
		strategy = flag.String("strategy", "mach", "sampling strategy: uniform | class-balance | statistical | mach | mach-p")
		scale    = flag.String("scale", "ci", "preset scale: ci | full")
		steps    = flag.Int("steps", 0, "override step budget")
		seed     = flag.Int64("seed", 1, "random seed")
		target   = flag.Float64("target", 0, "stop at this accuracy (0 = run to completion)")
		tracePth = flag.String("trace", "", "mobility trace CSV (from tracegen); default synthetic waypoint")
		coords   = flag.String("coords", "", "station coordinates CSV (required with -trace)")
		edges    = flag.Int("edges", 0, "override edge count")
		devices  = flag.Int("devices", 0, "override device count")
		outPath  = flag.String("out", "", "write accuracy history CSV here (default stdout)")
		confPath = flag.String("config", "", "JSON experiment config layered over the preset")

		debugAddr  = flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof and /debug/telemetry on this address")
		traceOut   = flag.String("trace-out", "", "write a JSONL sampling-decision trace here (read with machtrace)")
		traceEvery = flag.Int("trace-every", 0, "record decision/phase events only every N steps (0 = all)")
		traceEdges = flag.Int("trace-edges", 0, "record decisions only for the first N edges (0 = all)")
	)
	flag.Parse()

	cfg := bench.TaskPreset(bench.Task(*task), bench.Scale(*scale))
	if *confPath != "" {
		loaded, err := bench.LoadConfig(*confPath, cfg)
		if err != nil {
			return err
		}
		cfg = loaded
	}
	cfg.Seed = *seed
	cfg.Runs = 1
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *edges > 0 {
		cfg.Edges = *edges
	}
	if *devices > 0 {
		cfg.Devices = *devices
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	env, err := cfg.BuildEnvironment(0)
	if err != nil {
		return err
	}
	if *tracePth != "" {
		sched, err := scheduleFromTrace(*tracePth, *coords, cfg.Edges, cfg.Devices, cfg.Steps, *seed)
		if err != nil {
			return err
		}
		env.Schedule = sched
	}

	strat, err := cfg.NewStrategy(*strategy)
	if err != nil {
		return err
	}
	eng, err := hfl.New(cfg.HFLConfig(0), cfg.Arch(), env.DeviceData, env.Test, env.Schedule, strat)
	if err != nil {
		return err
	}

	// Telemetry is attached whenever any observability surface is requested;
	// without them the engine keeps its zero-overhead nil sink.
	var tel *telemetry.Telemetry
	if *debugAddr != "" || *traceOut != "" {
		tel = telemetry.New()
		eng.SetTelemetry(tel)
	}
	if *debugAddr != "" {
		srv, err := telemetry.StartDebugServer(*debugAddr, tel)
		if err != nil {
			return err
		}
		defer srv.Close() //machlint:allow errdrop process is exiting; the listener dies with it
		fmt.Fprintf(os.Stderr, "machsim: debug server on http://%s/debug/\n", srv.Addr)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("create trace %s: %w", *traceOut, err)
		}
		trace := telemetry.NewTrace(f, telemetry.TraceConfig{Every: *traceEvery, MaxEdges: *traceEdges})
		tel.SetTrace(trace)
		defer func() {
			if err := trace.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "machsim: trace:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "machsim: trace:", err)
			}
		}()
	}

	var opts []hfl.RunOption
	if *target > 0 {
		opts = append(opts, hfl.WithTarget(*target))
	}
	opts = append(opts, hfl.WithEvalHook(func(step int, acc, loss float64) {
		fmt.Fprintf(os.Stderr, "step %4d  accuracy %.4f  loss %.4f\n", step, acc, loss)
	}))

	start := telemetry.WallNow()
	res, err := eng.Run(opts...)
	if err != nil {
		return err
	}

	if err := writeCSVTo(*outPath, res.History.WriteCSV); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"machsim: %s/%s  steps=%d  sampled=%d  final accuracy=%.4f  best=%.4f  elapsed=%v\n",
		*task, *strategy, res.StepsRun, res.TotalSampled,
		res.History.FinalAccuracy(), res.History.BestAccuracy(),
		telemetry.WallSince(start).Round(time.Millisecond))
	if res.ReachedTarget {
		fmt.Fprintf(os.Stderr, "machsim: reached target %.2f at step %d\n", *target, res.TargetStep)
	}
	confusion, err := eng.EvaluateConfusion()
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "machsim: final confusion matrix")
	if err := confusion.Write(os.Stderr); err != nil {
		return err
	}
	return nil
}

// scheduleFromTrace builds the B^t schedule from a tracegen trace: parse the
// records and station coordinates, cluster stations into edges, and map
// record intervals onto FL time steps.
func scheduleFromTrace(tracePath, coordsPath string, edges, devices, steps int, seed int64) (*mobility.Schedule, error) {
	if coordsPath == "" {
		return nil, fmt.Errorf("-trace requires -coords (station positions for edge clustering)")
	}
	tf, err := os.Open(tracePath)
	if err != nil {
		return nil, fmt.Errorf("open trace: %w", err)
	}
	defer tf.Close() //machlint:allow errdrop read-only file; a close failure cannot corrupt anything
	trace, err := mobility.ReadCSV(tf)
	if err != nil {
		return nil, err
	}
	cf, err := os.Open(coordsPath)
	if err != nil {
		return nil, fmt.Errorf("open coords: %w", err)
	}
	defer cf.Close() //machlint:allow errdrop read-only file; a close failure cannot corrupt anything
	stations, err := mobility.ReadStationsCSV(cf)
	if err != nil {
		return nil, err
	}
	rng := newSeededRand(seed)
	edgeOf, err := mobility.ClusterStations(rng, stations, edges)
	if err != nil {
		return nil, err
	}
	// Spread the trace horizon over the configured number of steps.
	stepDur := trace.Horizon() / int64(steps)
	if stepDur < 1 {
		stepDur = 1
	}
	return mobility.BuildSchedule(trace, edgeOf, edges, devices, steps, stepDur)
}

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
