// Command machsim runs a single HFL training experiment: one task, one
// sampling strategy, one mobility source. It prints the accuracy history as
// CSV and a summary line, and can consume real-format mobility traces
// produced by cmd/tracegen (-trace/-coords), exercising the same pipeline
// the paper uses with the Shanghai Telecom dataset.
//
// Usage:
//
//	machsim -task mnist -strategy mach -steps 150
//	tracegen -trace t.csv -coords s.csv && \
//	machsim -task fmnist -strategy mach -trace t.csv -coords s.csv
//
// With -stream the trace is consumed through the O(Devices) streaming
// mobility window (DESIGN.md §12) instead of being materialized into a dense
// Steps×Devices schedule; the trace must then be sorted by start time
// (tracegen -sort-time) and -step-dur must be given:
//
//	tracegen -sort-time -trace t.csv -coords s.csv && \
//	machsim -task mnist -trace t.csv -coords s.csv -stream -step-dur 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"math/rand"

	"github.com/mach-fl/mach/internal/bench"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/telemetry"
)

// writeCSVTo streams write into the file at path ("" means stdout). The
// close error is part of the write: a failed flush must not report success.
func writeCSVTo(path string, write func(io.Writer) error) error {
	if path == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	err = write(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("close %s: %w", path, cerr)
	}
	return err
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "machsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		task     = flag.String("task", "mnist", "task: mnist | fmnist | cifar10")
		strategy = flag.String("strategy", "mach", "sampling strategy: uniform | class-balance | statistical | mach | mach-p")
		scale    = flag.String("scale", "ci", "preset scale: ci | full")
		steps    = flag.Int("steps", 0, "override step budget")
		seed     = flag.Int64("seed", 1, "random seed")
		target   = flag.Float64("target", 0, "stop at this accuracy (0 = run to completion)")
		tracePth = flag.String("trace", "", "mobility trace CSV (from tracegen); default synthetic waypoint")
		coords   = flag.String("coords", "", "station coordinates CSV (required with -trace)")
		stream   = flag.Bool("stream", false, "stream -trace through an O(Devices) mobility window instead of materializing the dense Steps×Devices schedule; requires -step-dur and a trace sorted by start time (tracegen -sort-time)")
		stepDur  = flag.Int64("step-dur", 0, "trace-time units per FL step (0 = horizon/steps; required >0 with -stream, which cannot scan the horizon up front)")
		edges    = flag.Int("edges", 0, "override edge count")
		devices  = flag.Int("devices", 0, "override device count")
		outPath  = flag.String("out", "", "write accuracy history CSV here (default stdout)")
		confPath = flag.String("config", "", "JSON experiment config layered over the preset")

		debugAddr  = flag.String("debug-addr", "", "serve /debug/*, /metrics, /healthz and /readyz on this address (watch with machtop)")
		metricsOut = flag.String("metrics-out", "", "write the final telemetry snapshot JSON here (compare runs with machtop diff)")
		traceOut   = flag.String("trace-out", "", "write a JSONL sampling-decision trace here (read with machtrace)")
		traceEvery = flag.Int("trace-every", 0, "record decision/phase events only every N steps (0 = all)")
		traceEdges = flag.Int("trace-edges", 0, "record decisions only for the first N edges (0 = all)")
	)
	flag.Parse()

	cfg := bench.TaskPreset(bench.Task(*task), bench.Scale(*scale))
	if *confPath != "" {
		loaded, err := bench.LoadConfig(*confPath, cfg)
		if err != nil {
			return err
		}
		cfg = loaded
	}
	cfg.Seed = *seed
	cfg.Runs = 1
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *edges > 0 {
		cfg.Edges = *edges
	}
	if *devices > 0 {
		cfg.Devices = *devices
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	env, err := cfg.BuildEnvironment(0)
	if err != nil {
		return err
	}
	var src mobility.StepSource = env.Schedule
	if *tracePth != "" {
		if *stream {
			f, ts, err := streamFromTrace(*tracePth, *coords, cfg.Edges, cfg.Devices, cfg.Steps, *seed, *stepDur)
			if err != nil {
				return err
			}
			// The source scans the file lazily during the run; keep it
			// open until the engine finishes.
			defer f.Close() //machlint:allow errdrop read-only file; a close failure cannot corrupt anything
			src = ts
		} else {
			sched, err := scheduleFromTrace(*tracePth, *coords, cfg.Edges, cfg.Devices, cfg.Steps, *seed, *stepDur)
			if err != nil {
				return err
			}
			src = sched
		}
	} else if *stream {
		return fmt.Errorf("-stream requires -trace (synthetic presets already generate dense schedules)")
	}

	strat, err := cfg.NewStrategy(*strategy)
	if err != nil {
		return err
	}
	eng, err := hfl.New(cfg.HFLConfig(0), cfg.Arch(), env.DeviceData, env.Test, src, strat)
	if err != nil {
		return err
	}

	// Telemetry is attached whenever any observability surface is requested;
	// without them the engine keeps its zero-overhead nil sink. Spans ride
	// along with the debug server: they are what /debug/spans and the
	// span_*_ns percentile families serve.
	var tel *telemetry.Telemetry
	if *debugAddr != "" || *traceOut != "" || *metricsOut != "" {
		tel = telemetry.New()
		eng.SetTelemetry(tel)
	}
	if *debugAddr != "" {
		tel.EnableSpans(true)
		srv, err := telemetry.StartDebugServer(*debugAddr, tel)
		if err != nil {
			return err
		}
		defer srv.Close() //machlint:allow errdrop process is exiting; the listener dies with it
		fmt.Fprintf(os.Stderr, "machsim: build %s\n", telemetry.BuildVersion())
		fmt.Fprintf(os.Stderr, "machsim: debug server on http://%s/debug/\n", srv.Addr)
		// The engine exists and the run is about to start: ready to be scraped.
		srv.SetReady(true)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("create trace %s: %w", *traceOut, err)
		}
		trace := telemetry.NewTrace(f, telemetry.TraceConfig{Every: *traceEvery, MaxEdges: *traceEdges})
		tel.SetTrace(trace)
		defer func() {
			if err := trace.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "machsim: trace:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "machsim: trace:", err)
			}
		}()
	}

	var opts []hfl.RunOption
	if *target > 0 {
		opts = append(opts, hfl.WithTarget(*target))
	}
	opts = append(opts, hfl.WithEvalHook(func(step int, acc, loss float64) {
		fmt.Fprintf(os.Stderr, "step %4d  accuracy %.4f  loss %.4f\n", step, acc, loss)
	}))

	start := telemetry.WallNow()
	res, err := eng.Run(opts...)
	if err != nil {
		return err
	}

	if err := writeCSVTo(*outPath, res.History.WriteCSV); err != nil {
		return err
	}
	if *metricsOut != "" {
		if err := writeCSVTo(*metricsOut, tel.WriteSnapshot); err != nil {
			return fmt.Errorf("metrics snapshot: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr,
		"machsim: %s/%s  steps=%d  sampled=%d  final accuracy=%.4f  best=%.4f  elapsed=%v\n",
		*task, *strategy, res.StepsRun, res.TotalSampled,
		res.History.FinalAccuracy(), res.History.BestAccuracy(),
		telemetry.WallSince(start).Round(time.Millisecond))
	if res.ReachedTarget {
		fmt.Fprintf(os.Stderr, "machsim: reached target %.2f at step %d\n", *target, res.TargetStep)
	}
	confusion, err := eng.EvaluateConfusion()
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "machsim: final confusion matrix")
	if err := confusion.Write(os.Stderr); err != nil {
		return err
	}
	return nil
}

// clusterFromCoords reads the station coordinates file and clusters stations
// into edges, the shared front half of both trace-lowering paths.
func clusterFromCoords(coordsPath string, edges int, seed int64) ([]int, error) {
	if coordsPath == "" {
		return nil, fmt.Errorf("-trace requires -coords (station positions for edge clustering)")
	}
	cf, err := os.Open(coordsPath)
	if err != nil {
		return nil, fmt.Errorf("open coords: %w", err)
	}
	defer cf.Close() //machlint:allow errdrop read-only file; a close failure cannot corrupt anything
	stations, err := mobility.ReadStationsCSV(cf)
	if err != nil {
		return nil, err
	}
	return mobility.ClusterStations(newSeededRand(seed), stations, edges)
}

// scheduleFromTrace builds the B^t schedule from a tracegen trace: parse the
// records and station coordinates, cluster stations into edges, and map
// record intervals onto FL time steps. stepDur <= 0 spreads the trace
// horizon over the configured number of steps.
func scheduleFromTrace(tracePath, coordsPath string, edges, devices, steps int, seed, stepDur int64) (*mobility.Schedule, error) {
	edgeOf, err := clusterFromCoords(coordsPath, edges, seed)
	if err != nil {
		return nil, err
	}
	tf, err := os.Open(tracePath)
	if err != nil {
		return nil, fmt.Errorf("open trace: %w", err)
	}
	defer tf.Close() //machlint:allow errdrop read-only file; a close failure cannot corrupt anything
	trace, err := mobility.ReadCSV(tf)
	if err != nil {
		return nil, err
	}
	if stepDur <= 0 {
		stepDur = trace.Horizon() / int64(steps)
		if stepDur < 1 {
			stepDur = 1
		}
	}
	return mobility.BuildSchedule(trace, edgeOf, edges, devices, steps, stepDur)
}

// streamFromTrace opens the trace as a streaming StepSource: the engine pulls
// per-step move deltas from an O(Devices) window while the file is scanned
// exactly once. The caller owns the returned file for the engine's lifetime.
// Streaming cannot derive the step duration from the trace horizon — that
// would need the full scan the window exists to avoid — so -step-dur is
// mandatory here.
func streamFromTrace(tracePath, coordsPath string, edges, devices, steps int, seed, stepDur int64) (*os.File, *mobility.TraceSource, error) {
	if stepDur <= 0 {
		return nil, nil, fmt.Errorf("-stream requires -step-dur > 0 (the streaming window cannot pre-scan the trace horizon)")
	}
	edgeOf, err := clusterFromCoords(coordsPath, edges, seed)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return nil, nil, fmt.Errorf("open trace: %w", err)
	}
	src, err := mobility.NewTraceSource(f, mobility.TraceSourceConfig{
		Edges:         edges,
		Devices:       devices,
		Steps:         steps,
		StepDur:       stepDur,
		EdgeOfStation: edgeOf,
		Format:        mobility.TraceCSV,
	})
	if err != nil {
		f.Close() //machlint:allow errdrop read-only file; the open error is the one that matters
		return nil, nil, err
	}
	return f, src, nil
}

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
