// Command machtrace explains telemetry traces written by machsim/machbench
// (-trace-out): JSONL event streams recording every sampling decision of a
// run (internal/telemetry).
//
// Usage:
//
//	machtrace summary trace.jsonl
//	machtrace why -device 17 -step 42 trace.jsonl
//	machtrace diff a.jsonl b.jsonl
//
// summary digests the run: phase timings, exploration health, probability
// mass drift, evaluations. why reconstructs one device's sampling decision at
// one step — the estimate that fed its probability and the coin that decided
// it. diff compares the deterministic events of two traces; for
// identically-seeded runs it reports zero divergence.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mach-fl/mach/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "machtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: machtrace summary|why|diff [flags] FILE...")
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "summary":
		return summary(rest)
	case "why":
		return why(rest)
	case "diff":
		return diff(rest)
	default:
		return fmt.Errorf("unknown command %q (want summary, why or diff)", cmd)
	}
}

// readTrace loads every event of one trace file.
func readTrace(path string) ([]telemetry.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //machlint:allow errdrop read-only file; a close failure cannot corrupt anything
	events, err := telemetry.ReadEvents(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

func summary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: machtrace summary FILE")
	}
	events, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	return telemetry.Summarize(events).Write(os.Stdout)
}

func why(args []string) error {
	fs := flag.NewFlagSet("why", flag.ContinueOnError)
	device := fs.Int("device", -1, "device id to explain")
	step := fs.Int("step", -1, "time step of the decision")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *device < 0 || *step < 0 {
		return fmt.Errorf("usage: machtrace why -device N -step T FILE")
	}
	events, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	report, err := telemetry.Why(events, *device, *step)
	if err != nil {
		return err
	}
	return report.Write(os.Stdout)
}

func diff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	limit := fs.Int("limit", 10, "print at most this many divergences")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: machtrace diff A B")
	}
	ea, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	eb, err := readTrace(fs.Arg(1))
	if err != nil {
		return err
	}
	div := telemetry.Diff(ea, eb)
	if div == nil {
		fmt.Printf("traces agree: %d deterministic events, zero divergence\n", len(ea))
		return nil
	}
	fmt.Printf("%d divergences (first at deterministic event %d, step %d)\n", len(div), div[0].Index, div[0].Step)
	for i, d := range div {
		if i >= *limit {
			fmt.Printf("... %d more\n", len(div)-i)
			break
		}
		fmt.Printf("event %d (step %d, %s):\n  A: %s\n  B: %s\n", d.Index, d.Step, d.Type, orMissing(d.A), orMissing(d.B))
	}
	return fmt.Errorf("traces diverge")
}

func orMissing(s string) string {
	if s == "" {
		return "(missing)"
	}
	return s
}
