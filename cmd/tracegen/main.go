// Command tracegen generates a synthetic telecom-style mobility trace — the
// shape of the Shanghai Telecom dataset the paper drives its evaluation with
// (device, base station, access start, access end) — plus the base-station
// coordinates needed to cluster stations into edges.
//
// Usage:
//
//	tracegen -stations 60 -devices 100 -horizon 500 -model waypoint \
//	         -trace trace.csv -coords stations.csv
//
// The output feeds cmd/machsim's -trace/-coords flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"

	"github.com/mach-fl/mach/internal/mobility"
)

// writeCSVTo streams write into the file at path ("" means stdout). The
// close error is part of the write: a failed flush must not report success.
func writeCSVTo(path string, write func(io.Writer) error) error {
	if path == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	err = write(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("close %s: %w", path, cerr)
	}
	return err
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nStations = flag.Int("stations", 60, "number of base stations")
		devices   = flag.Int("devices", 100, "number of mobile devices")
		horizon   = flag.Int64("horizon", 500, "trace horizon in time units")
		model     = flag.String("model", "waypoint", "mobility model: waypoint | markov")
		seed      = flag.Int64("seed", 1, "random seed")
		width     = flag.Float64("width", 100, "region width")
		height    = flag.Float64("height", 100, "region height")
		clusters  = flag.Int("clusters", 8, "urban cores for station placement (0 = uniform)")
		speedMin  = flag.Float64("speed-min", 0.5, "waypoint: minimum speed")
		speedMax  = flag.Float64("speed-max", 3, "waypoint: maximum speed")
		pauseMax  = flag.Int64("pause-max", 5, "waypoint: maximum pause")
		stayProb  = flag.Float64("stay-prob", 0.95, "markov: per-step stay probability")
		neighbors = flag.Int("neighbors", 4, "markov: hop candidates")
		traceOut  = flag.String("trace", "", "trace CSV output path (default stdout)")
		coordsOut = flag.String("coords", "", "station coordinates CSV output path")
		sortTime  = flag.Bool("sort-time", false, "emit records in global start-time order, the layout machsim -stream requires")
		ndjson    = flag.Bool("ndjson", false, "emit the trace as NDJSON records instead of CSV")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	placement := mobility.PlacementConfig{
		Width: *width, Height: *height,
		Clusters: *clusters, ClusterStd: *width / 12,
	}
	stations, err := mobility.PlaceStations(rng, *nStations, placement)
	if err != nil {
		return err
	}

	var trace *mobility.Trace
	switch *model {
	case "waypoint":
		cfg := mobility.WaypointConfig{
			Width: *width, Height: *height,
			SpeedMin: *speedMin, SpeedMax: *speedMax, PauseMax: *pauseMax,
		}
		trace, err = mobility.GenerateWaypointTrace(rng, stations, *devices, *horizon, cfg)
	case "markov":
		cfg := mobility.MarkovConfig{StayProb: *stayProb, Neighbors: *neighbors}
		trace, err = mobility.GenerateMarkovTrace(rng, stations, *devices, *horizon, cfg)
	default:
		return fmt.Errorf("unknown mobility model %q", *model)
	}
	if err != nil {
		return err
	}

	if *sortTime {
		trace.SortByTime()
	}
	writeTrace := trace.WriteCSV
	if *ndjson {
		writeTrace = trace.WriteNDJSON
	}
	if err := writeCSVTo(*traceOut, writeTrace); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	if *coordsOut != "" {
		err := writeCSVTo(*coordsOut, func(w io.Writer) error {
			if _, err := io.WriteString(w, "station,x,y\n"); err != nil {
				return err
			}
			for _, s := range stations {
				line := strconv.Itoa(s.ID) + "," +
					strconv.FormatFloat(s.X, 'f', 4, 64) + "," +
					strconv.FormatFloat(s.Y, 'f', 4, 64) + "\n"
				if _, err := io.WriteString(w, line); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("write coords: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: %s\n", mobility.ComputeStats(trace))
	return nil
}
