// Package mach is the public facade of the MACH library — a from-scratch Go
// implementation of "Mobility-aware Device Sampling for Statistical
// Heterogeneity in Hierarchical Federated Learning" (ICDCS 2024).
//
// The library simulates hierarchical federated learning over mobile devices:
// a cloud coordinates edges, edges coordinate the time-varying set of mobile
// devices attached to them, and a device-sampling strategy decides, per edge
// and per time step, which devices train. The headline strategy is MACH —
// upper-confidence-bound experience updating plus smoothed edge sampling —
// alongside the uniform, class-balance, statistical, and perfect-information
// baselines of the paper's evaluation.
//
// Typical use:
//
//	task, _ := mach.NewTask(mach.MNISTLike(16, 16))
//	devices, _ := mach.Partition(task, mach.PartitionConfig{
//		Devices: 100, SamplesPerDevice: 80, TailRatio: 0.2, Seed: 1,
//	})
//	test, _ := task.Generate(rand.New(rand.NewSource(2)), 1000, nil)
//	schedule, _ := mach.GenerateSchedule(3, 10, 100, 400, 4)
//	strategy, _ := mach.NewMACH(100, mach.DefaultMACHConfig())
//	engine, _ := mach.NewEngine(mach.DefaultEngineConfig(), arch, devices, test, schedule, strategy)
//	result, _ := engine.Run(mach.WithTarget(0.75))
//
// The sub-systems are available directly for advanced use:
//
//   - internal/tensor, internal/nn — the neural-network substrate
//   - internal/dataset — synthetic tasks and non-IID partitioning
//   - internal/mobility — traces, mobility models, edge clustering
//   - internal/sampling — the Strategy interface and all strategies
//   - internal/hfl — the hierarchical FL engine (Algorithm 1)
//   - internal/bench — the evaluation harness (Figures 3-5, Table I)
package mach

import (
	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/metrics"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
)

// Datasets and partitioning.
type (
	// Task is an instantiated synthetic learning task.
	Task = dataset.Task
	// TaskSpec describes a synthetic class-conditional image task.
	TaskSpec = dataset.TaskSpec
	// Dataset is an in-memory labelled image dataset.
	Dataset = dataset.Dataset
	// PartitionConfig controls the non-IID device partition.
	PartitionConfig = dataset.PartitionConfig
)

// Mobility.
type (
	// Schedule is the realized mobility indicator B^t.
	Schedule = mobility.Schedule
	// StepSource streams per-step attachments from an O(Devices) window;
	// *Schedule satisfies it, so dense and streaming planes are
	// interchangeable wherever an engine takes mobility input.
	StepSource = mobility.StepSource
	// Move is one device reattachment in a StepSource's per-step stream.
	Move = mobility.Move
	// TraceSource streams attachments from a time-sorted trace file.
	TraceSource = mobility.TraceSource
	// TraceSourceConfig parameterizes a streaming trace reader.
	TraceSourceConfig = mobility.TraceSourceConfig
	// OnlineTransitionStats fits edge-transition statistics from a move
	// stream, O(moves) per step.
	OnlineTransitionStats = mobility.OnlineTransitionStats
	// Trace is a collection of base-station access records.
	Trace = mobility.Trace
	// Record is one base-station access interval.
	Record = mobility.Record
	// Station is a base station at a fixed position.
	Station = mobility.Station
	// WaypointConfig and MarkovConfig parameterize the mobility models.
	WaypointConfig = mobility.WaypointConfig
	MarkovConfig   = mobility.MarkovConfig
)

// Sampling.
type (
	// Strategy computes per-edge device sampling probabilities.
	Strategy = sampling.Strategy
	// EdgeContext is the information a strategy sees per edge per step.
	EdgeContext = sampling.EdgeContext
	// MACHConfig parameterizes the MACH strategy.
	MACHConfig = sampling.MACHConfig
)

// Training.
type (
	// Engine runs hierarchical federated learning (Algorithm 1).
	Engine = hfl.Engine
	// EngineConfig parameterizes one training run.
	EngineConfig = hfl.Config
	// ArchFunc constructs the model architecture.
	ArchFunc = hfl.ArchFunc
	// Result summarizes one training run.
	Result = hfl.Result
	// RunOption customizes a call to Engine.Run.
	RunOption = hfl.RunOption
	// History is a training curve with time-to-accuracy helpers.
	History = metrics.History
	// Network is a trainable neural network.
	Network = nn.Network
)

// Dataset constructors.
var (
	// NewTask realizes the class prototypes of a task spec.
	NewTask = dataset.NewTask
	// MNISTLike, FMNISTLike and CIFAR10Like are the evaluation's three
	// synthetic tasks in increasing difficulty.
	MNISTLike   = dataset.MNISTLike
	FMNISTLike  = dataset.FMNISTLike
	CIFAR10Like = dataset.CIFAR10Like
	// Partition draws one long-tailed non-IID local dataset per device.
	Partition = dataset.Partition
)

// Mobility constructors.
var (
	// GenerateSchedule builds a waypoint-mobility schedule in one call.
	GenerateSchedule = mobility.GenerateSchedule
	// GenerateWaypointTrace and GenerateMarkovTrace simulate telecom-style
	// access traces.
	GenerateWaypointTrace = mobility.GenerateWaypointTrace
	GenerateMarkovTrace   = mobility.GenerateMarkovTrace
	// ClusterStations groups base stations into edges with k-means.
	ClusterStations = mobility.ClusterStations
	// BuildSchedule converts a trace into the per-step edge schedule.
	BuildSchedule = mobility.BuildSchedule
	// DefaultWaypoint and DefaultMarkov are calibrated mobility-model
	// configurations.
	DefaultWaypoint = mobility.DefaultWaypoint
	DefaultMarkov   = mobility.DefaultMarkov
	// NewMarkovSource, NewWaypointSource and NewLevySource are the streaming
	// (O(Devices)-memory) counterparts of the dense schedule generators.
	NewMarkovSource   = mobility.NewMarkovSource
	NewWaypointSource = mobility.NewWaypointSource
	NewLevySource     = mobility.NewLevySource
	// NewTraceSource streams attachments from a time-sorted CSV/NDJSON trace.
	NewTraceSource = mobility.NewTraceSource
	// Materialize drains a StepSource into a dense Schedule.
	Materialize = mobility.Materialize
	// ApplyMoves replays one step's move stream onto an attachment row.
	ApplyMoves = mobility.ApplyMoves
	// NewOnlineTransitionStats builds an incremental transition estimator;
	// attach it with Engine.SetTransitionStats.
	NewOnlineTransitionStats = mobility.NewOnlineTransitionStats
)

// Strategy constructors.
var (
	// NewMACH returns the paper's mobility-aware sampling strategy.
	NewMACH = sampling.NewMACH
	// NewMACHP returns the perfect-information variant (probes true
	// gradient norms).
	NewMACHP = sampling.NewMACHP
	// NewUniform, NewClassBalance and NewStatistical are the baselines.
	NewUniform      = sampling.NewUniform
	NewClassBalance = sampling.NewClassBalance
	NewStatistical  = sampling.NewStatistical
	// NewOort is the Oort-style utility-selection extension.
	NewOort = sampling.NewOort
	// DefaultMACHConfig returns the benchmark MACH configuration.
	DefaultMACHConfig = sampling.DefaultMACHConfig
)

// Engine constructors and options.
var (
	// NewEngine assembles a training engine.
	NewEngine = hfl.New
	// DefaultEngineConfig mirrors the paper's MNIST setup at simulator
	// scale.
	DefaultEngineConfig = hfl.DefaultConfig
	// WithTarget stops a run at the first evaluation reaching the target.
	WithTarget = hfl.WithTarget
	// WithEvalHook and WithStepHook observe a run in progress.
	WithEvalHook = hfl.WithEvalHook
	WithStepHook = hfl.WithStepHook
)

// Aggregation modes (see hfl.Aggregation).
const (
	// AggInverseUpdate applies Eq. (5)'s inverse-probability weights to
	// model updates (unbiased, theory-faithful).
	AggInverseUpdate = hfl.AggInverseUpdate
	// AggPlain averages sampled models FedAvg-style (practical default).
	AggPlain = hfl.AggPlain
	// AggLiteralEq5 is the paper's Eq. (5) verbatim in model space.
	AggLiteralEq5 = hfl.AggLiteralEq5
)
