package mach_test

import (
	"fmt"
	"math/rand"

	mach "github.com/mach-fl/mach"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
)

// Example shows the smallest end-to-end training run: synthetic non-IID
// devices, waypoint mobility, MACH sampling, hierarchical training.
func Example() {
	task, _ := mach.NewTask(mach.MNISTLike(4, 4))
	devices, _ := mach.Partition(task, mach.PartitionConfig{
		Devices: 8, SamplesPerDevice: 30, TailRatio: 0.4, Seed: 1,
	})
	test, _ := task.Generate(rand.New(rand.NewSource(2)), 200, nil)
	schedule, _ := mach.GenerateSchedule(3, 2, 8, 20, 3)
	strategy, _ := mach.NewMACH(8, mach.DefaultMACHConfig())

	arch := func(rng *rand.Rand) (*mach.Network, error) {
		return nn.NewMLP("example", 16, []int{8}, 10, rng), nil
	}
	engine, _ := mach.NewEngine(mach.EngineConfig{
		Steps: 20, CloudInterval: 5, LocalEpochs: 2, BatchSize: 4,
		LearningRate: 0.05, LRDecay: 1, Participation: 0.5, Seed: 4,
	}, arch, devices, test, schedule, strategy)

	result, _ := engine.Run()
	fmt.Println(result.StepsRun, "steps,", result.History.Len(), "evaluations")
	// Output: 20 steps, 4 evaluations
}

// ExampleMACHConfig_Transfer shows the transfer function S(·) of Eq. (17):
// bounded near 1 so early noisy estimates cannot starve any device.
func ExampleMACHConfig_Transfer() {
	cfg := mach.DefaultMACHConfig()
	fmt.Printf("S(0)=%.2f S(1)=%.2f S(5)=%.2f\n",
		cfg.Transfer(0), cfg.Transfer(1), cfg.Transfer(5))
	// Output: S(0)=1.00 S(1)=1.72 S(5)=1.95
}

// ExampleNewUniform shows that any Strategy plugs into the same engine.
func ExampleNewUniform() {
	var s mach.Strategy = mach.NewUniform()
	q := s.Probabilities(&sampling.EdgeContext{
		Capacity: 2,
		Members:  []int{4, 7, 9, 11},
		RNG:      rand.New(rand.NewSource(1)),
	})
	fmt.Println(q)
	// Output: [0.5 0.5 0.5 0.5]
}

// ExampleGenerateSchedule shows the mobility schedule every experiment is
// built on: B^t, the edge each device touches at each step.
func ExampleGenerateSchedule() {
	schedule, _ := mach.GenerateSchedule(7, 3, 10, 25, 3)
	fmt.Println("edges:", schedule.Edges, "devices:", schedule.Devices, "steps:", schedule.Steps)
	fmt.Println("partition valid:", schedule.Validate() == nil)
	// Output:
	// edges: 3 devices: 10 steps: 25
	// partition valid: true
}
