package parallel

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	g := p.Group()
	for i := 0; i < 1000; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	if got := n.Load(); got != 1000 {
		t.Fatalf("ran %d tasks, want 1000", got)
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers = %d, want GOMAXPROCS = %d", p.Workers(), runtime.GOMAXPROCS(0))
	}
}

func TestMultipleGroupsShareOnePool(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	for e := 0; e < 8; e++ { // eight producers, as edges share the run pool
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := p.Group()
			for i := 0; i < 100; i++ {
				g.Go(func() { total.Add(1) })
			}
			g.Wait()
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 800 {
		t.Fatalf("ran %d tasks, want 800", got)
	}
}

func TestGroupWaitRepanics(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	g := p.Group()
	g.Go(func() { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Wait did not re-panic")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v does not carry the cause", r)
		}
	}()
	g.Wait()
}

func TestPoolSurvivesTaskPanic(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	g := p.Group()
	g.Go(func() { panic("first") })
	func() {
		defer func() { recover() }()
		g.Wait()
	}()
	// The single worker must still be alive to run the next group.
	g2 := p.Group()
	ran := false
	g2.Go(func() { ran = true })
	g2.Wait()
	if !ran {
		t.Fatal("worker died after a panicking task")
	}
}

func TestCloseIsIdempotentAndDrains(t *testing.T) {
	p := NewPool(2)
	var n atomic.Int64
	g := p.Group()
	for i := 0; i < 50; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	p.Close()
	p.Close()
	if n.Load() != 50 {
		t.Fatalf("drained %d tasks, want 50", n.Load())
	}
}

func TestForEachCoversRangeAtAnyWidth(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		seen := make([]atomic.Bool, 100)
		ForEach(workers, len(seen), func(i int) { seen[i].Store(true) })
		for i := range seen {
			if !seen[i].Load() {
				t.Fatalf("workers=%d: index %d not visited", workers, i)
			}
		}
	}
	ForEach(4, 0, func(int) { t.Fatal("n=0 must not invoke fn") })
}
