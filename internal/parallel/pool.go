// Package parallel provides the bounded worker pool that executes the
// simulator's per-device local updates. One pool is shared across all edges
// of a run so the hardware parallelism budget (GOMAXPROCS by default) is a
// global property of the process, not multiplied by the edge count.
//
// The pool is deliberately decoupled from determinism: callers are expected
// to make all random decisions *before* dispatching work and to reduce
// results back in a fixed order, so the pool only ever executes pure
// (per-task-state) computations whose outputs do not depend on scheduling.
// See DESIGN.md "Concurrency & determinism model".
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool. Tasks submitted through a Group run on
// one of the pool's goroutines; the pool never grows or shrinks.
type Pool struct {
	tasks   chan func()
	workers int
	wg      sync.WaitGroup
	closed  bool
}

// NewPool returns a pool with the given number of workers. workers <= 0
// selects runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		// A small buffer lets producers batch submissions without a
		// rendezvous per task; the bound keeps memory finite.
		tasks:   make(chan func(), 4*workers),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth returns the number of submitted tasks not yet picked up by a
// worker. It is an instantaneous reading of the submission buffer — a
// telemetry observation, not a synchronization primitive.
func (p *Pool) QueueDepth() int {
	if p == nil {
		return 0
	}
	return len(p.tasks)
}

// Close stops the workers after draining all submitted tasks. The pool must
// not be used afterwards; Close is idempotent.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	close(p.tasks)
	p.wg.Wait()
}

// Group collects a batch of tasks submitted to one pool so the producer can
// wait for exactly its own tasks. Multiple groups may use the same pool
// concurrently (each edge of a time step owns one group).
type Group struct {
	pool *Pool
	wg   sync.WaitGroup

	mu       sync.Mutex
	panicked any
	hasPanic bool
}

// Group returns a new task group on the pool.
func (p *Pool) Group() *Group { return &Group{pool: p} }

// Go submits one task. The call blocks only when the pool's submission
// buffer is full (i.e. all workers are busy and the backlog is at capacity),
// which bounds the number of in-flight closures.
func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	g.pool.tasks <- func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				g.mu.Lock()
				if !g.hasPanic {
					g.hasPanic, g.panicked = true, r
				}
				g.mu.Unlock()
			}
		}()
		fn()
	}
}

// Wait blocks until every task submitted via Go has finished. If any task
// panicked, Wait re-panics with the first recovered value so the failure
// surfaces on the producer goroutine instead of silently killing a worker.
func (g *Group) Wait() {
	g.wg.Wait()
	if g.hasPanic {
		panic(fmt.Sprintf("parallel: task panicked: %v", g.panicked))
	}
}

// ForEach executes fn(0), …, fn(n-1) on up to workers concurrent goroutines
// and returns when all calls have finished. workers <= 1 (or n <= 1) runs
// inline on the caller's goroutine, making the serial path trivially
// deterministic. ForEach spawns transient goroutines rather than using a
// Pool, so it is safe to call where no pool exists (public evaluation
// entry points) and from inside pool workers without risk of starvation.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next int
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := next
		next++
		return i
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
