// Package metrics records training curves and derives the evaluation's
// headline quantity: the time step at which the global model first reaches a
// target accuracy ("time-to-accuracy"). It also averages curves across
// repeated runs, mirroring the paper's three-run smoothing (§IV-A3).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"github.com/mach-fl/mach/internal/det"
)

// Point is one evaluation of the global model.
type Point struct {
	Step     int
	Accuracy float64
	Loss     float64
}

// History is the sequence of global-model evaluations of one training run,
// ordered by step.
type History struct {
	Points []Point
}

// Add appends an evaluation point.
func (h *History) Add(p Point) { h.Points = append(h.Points, p) }

// Len returns the number of recorded points.
func (h *History) Len() int { return len(h.Points) }

// FinalAccuracy returns the accuracy of the last point (0 when empty).
func (h *History) FinalAccuracy() float64 {
	if len(h.Points) == 0 {
		return 0
	}
	return h.Points[len(h.Points)-1].Accuracy
}

// BestAccuracy returns the maximum recorded accuracy.
func (h *History) BestAccuracy() float64 {
	best := 0.0
	for _, p := range h.Points {
		if p.Accuracy > best {
			best = p.Accuracy
		}
	}
	return best
}

// TimeToAccuracy returns the first step whose accuracy reaches target.
// ok is false when the run never reaches it.
func (h *History) TimeToAccuracy(target float64) (step int, ok bool) {
	for _, p := range h.Points {
		if p.Accuracy >= target {
			return p.Step, true
		}
	}
	return 0, false
}

// Smoothed returns a copy whose accuracy/loss are trailing moving averages
// over the given window (in points, not steps). window ≤ 1 returns a plain
// copy.
func (h *History) Smoothed(window int) *History {
	out := &History{Points: make([]Point, len(h.Points))}
	copy(out.Points, h.Points)
	if window <= 1 {
		return out
	}
	for i := range out.Points {
		lo := i - window + 1
		if lo < 0 {
			lo = 0
		}
		accSum, lossSum := 0.0, 0.0
		for j := lo; j <= i; j++ {
			accSum += h.Points[j].Accuracy
			lossSum += h.Points[j].Loss
		}
		n := float64(i - lo + 1)
		out.Points[i].Accuracy = accSum / n
		out.Points[i].Loss = lossSum / n
	}
	return out
}

// WriteCSV writes "step,accuracy,loss" rows with a header.
func (h *History) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "step,accuracy,loss\n"); err != nil {
		return fmt.Errorf("metrics: write header: %w", err)
	}
	for _, p := range h.Points {
		line := strconv.Itoa(p.Step) + "," +
			strconv.FormatFloat(p.Accuracy, 'f', 6, 64) + "," +
			strconv.FormatFloat(p.Loss, 'f', 6, 64) + "\n"
		if _, err := io.WriteString(w, line); err != nil {
			return fmt.Errorf("metrics: write point: %w", err)
		}
	}
	return nil
}

// AverageHistories averages several runs point-by-point at common steps.
// Runs evaluated at different steps are aligned on the union of steps with
// per-run linear interpolation; steps outside a run's range use its
// first/last value.
func AverageHistories(runs []*History) *History {
	if len(runs) == 0 {
		return &History{}
	}
	stepSet := map[int]bool{}
	for _, r := range runs {
		for _, p := range r.Points {
			stepSet[p.Step] = true
		}
	}
	steps := det.SortedKeys(stepSet)
	out := &History{}
	for _, s := range steps {
		acc, loss := 0.0, 0.0
		for _, r := range runs {
			a, l := r.valueAt(s)
			acc += a
			loss += l
		}
		n := float64(len(runs))
		out.Add(Point{Step: s, Accuracy: acc / n, Loss: loss / n})
	}
	return out
}

// valueAt linearly interpolates accuracy/loss at step s.
func (h *History) valueAt(s int) (acc, loss float64) {
	if len(h.Points) == 0 {
		return 0, math.Inf(1)
	}
	if s <= h.Points[0].Step {
		return h.Points[0].Accuracy, h.Points[0].Loss
	}
	last := h.Points[len(h.Points)-1]
	if s >= last.Step {
		return last.Accuracy, last.Loss
	}
	i := sort.Search(len(h.Points), func(i int) bool { return h.Points[i].Step >= s })
	a, b := h.Points[i-1], h.Points[i]
	frac := float64(s-a.Step) / float64(b.Step-a.Step)
	return a.Accuracy + frac*(b.Accuracy-a.Accuracy), a.Loss + frac*(b.Loss-a.Loss)
}

// SavedPercent is the headline metric of the evaluation: the percentage of
// time steps MACH saves relative to the best-performing baseline,
// (best − mach) / best × 100.
func SavedPercent(machStep int, baselineSteps []int) float64 {
	best := math.MaxInt
	for _, s := range baselineSteps {
		if s > 0 && s < best {
			best = s
		}
	}
	if best == math.MaxInt || best == 0 {
		return 0
	}
	return (float64(best) - float64(machStep)) / float64(best) * 100
}
