package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionBasics(t *testing.T) {
	// 3 classes; class 2 never predicted correctly.
	pred := []int{0, 0, 1, 1, 0, 1}
	labels := []int{0, 0, 1, 1, 2, 2}
	c, err := NewConfusion(3, pred, labels)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 6 {
		t.Fatalf("total %d", c.Total())
	}
	if math.Abs(c.Accuracy()-4.0/6) > 1e-12 {
		t.Fatalf("accuracy %v", c.Accuracy())
	}
	recall := c.Recall()
	want := []float64{1, 1, 0}
	for i := range want {
		if math.Abs(recall[i]-want[i]) > 1e-12 {
			t.Fatalf("recall[%d] = %v, want %v", i, recall[i], want[i])
		}
	}
	if math.Abs(c.MacroRecall()-2.0/3) > 1e-12 {
		t.Fatalf("macro recall %v", c.MacroRecall())
	}
	if c.Counts[2][0] != 1 || c.Counts[2][1] != 1 {
		t.Fatalf("counts wrong: %v", c.Counts)
	}
	var sb strings.Builder
	if err := c.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "macro recall") {
		t.Fatalf("render missing summary: %s", sb.String())
	}
}

func TestConfusionErrors(t *testing.T) {
	if _, err := NewConfusion(0, nil, nil); err == nil {
		t.Fatal("expected class-count error")
	}
	if _, err := NewConfusion(2, []int{0}, []int{0, 1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := NewConfusion(2, []int{5}, []int{0}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestConfusionMacroVsMicroOnImbalance(t *testing.T) {
	// 9 samples of class 0 all correct, 1 of class 1 wrong: micro accuracy
	// 0.9, macro recall 0.5 — macro exposes the rare-class failure.
	pred := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	labels := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	c, err := NewConfusion(2, pred, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Accuracy()-0.9) > 1e-12 {
		t.Fatalf("accuracy %v", c.Accuracy())
	}
	if math.Abs(c.MacroRecall()-0.5) > 1e-12 {
		t.Fatalf("macro recall %v", c.MacroRecall())
	}
}

func TestConfusionNoSamples(t *testing.T) {
	c, err := NewConfusion(3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 0 {
		t.Fatalf("total %d, want 0", c.Total())
	}
	if c.Accuracy() != 0 {
		t.Fatalf("empty accuracy %v, want 0", c.Accuracy())
	}
	if c.MacroRecall() != 0 {
		t.Fatalf("empty macro recall %v, want 0", c.MacroRecall())
	}
	for i, r := range c.Recall() {
		if r != 0 {
			t.Fatalf("empty recall[%d] = %v, want 0", i, r)
		}
	}
	var sb strings.Builder
	if err := c.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionSingleClass(t *testing.T) {
	// With one class, every in-range prediction is necessarily correct.
	c, err := NewConfusion(1, []int{0, 0, 0}, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Accuracy() != 1 {
		t.Fatalf("single-class accuracy %v, want 1", c.Accuracy())
	}
	if c.MacroRecall() != 1 {
		t.Fatalf("single-class macro recall %v, want 1", c.MacroRecall())
	}
	if got := c.Recall(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("single-class recall %v, want [1]", got)
	}
}

func TestConfusionAllWrong(t *testing.T) {
	// Every prediction misses; both views must hit exactly zero, and the
	// off-diagonal counts must hold the full mass.
	pred := []int{1, 0, 1, 0}
	labels := []int{0, 1, 0, 1}
	c, err := NewConfusion(2, pred, labels)
	if err != nil {
		t.Fatal(err)
	}
	if c.Accuracy() != 0 {
		t.Fatalf("all-wrong accuracy %v, want 0", c.Accuracy())
	}
	if c.MacroRecall() != 0 {
		t.Fatalf("all-wrong macro recall %v, want 0", c.MacroRecall())
	}
	for i, r := range c.Recall() {
		if r != 0 {
			t.Fatalf("all-wrong recall[%d] = %v, want 0", i, r)
		}
	}
	if c.Counts[0][1] != 2 || c.Counts[1][0] != 2 || c.Counts[0][0] != 0 || c.Counts[1][1] != 0 {
		t.Fatalf("counts wrong: %v", c.Counts)
	}
}

func TestConfusionEmptyClassesIgnoredInMacro(t *testing.T) {
	c, err := NewConfusion(5, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.MacroRecall() != 1 {
		t.Fatalf("macro recall with absent classes: %v", c.MacroRecall())
	}
	if (&Confusion{Classes: 2, Counts: [][]int{{0, 0}, {0, 0}}}).Accuracy() != 0 {
		t.Fatal("empty confusion accuracy must be 0")
	}
}
