package metrics

import (
	"fmt"
	"io"
)

// Confusion is a confusion matrix over a fixed class set: Counts[true][pred]
// is how many samples of class `true` were predicted as `pred`. It backs the
// per-class analysis of the evaluation (rare long-tail classes are where
// sampling strategies differ).
type Confusion struct {
	Classes int
	Counts  [][]int
}

// NewConfusion builds a confusion matrix from predictions and labels.
func NewConfusion(classes int, predictions, labels []int) (*Confusion, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("metrics: need ≥ 1 class, got %d", classes)
	}
	if len(predictions) != len(labels) {
		return nil, fmt.Errorf("metrics: %d predictions for %d labels", len(predictions), len(labels))
	}
	c := &Confusion{Classes: classes, Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	for i, p := range predictions {
		y := labels[i]
		if y < 0 || y >= classes || p < 0 || p >= classes {
			return nil, fmt.Errorf("metrics: sample %d outside class range: pred %d, label %d", i, p, y)
		}
		c.Counts[y][p]++
	}
	return c, nil
}

// Total returns the number of samples.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns overall accuracy.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(total)
}

// Recall returns the per-class recall (diagonal over row sums); classes with
// no samples report recall 0.
func (c *Confusion) Recall() []float64 {
	out := make([]float64, c.Classes)
	for i, row := range c.Counts {
		total := 0
		for _, v := range row {
			total += v
		}
		if total > 0 {
			out[i] = float64(row[i]) / float64(total)
		}
	}
	return out
}

// MacroRecall averages recall over classes that have samples — the
// balanced-accuracy view that exposes rare-class underfitting even when the
// test set is long-tailed.
func (c *Confusion) MacroRecall() float64 {
	total, classes := 0.0, 0
	for i, row := range c.Counts {
		n := 0
		for _, v := range row {
			n += v
		}
		if n == 0 {
			continue
		}
		total += float64(row[i]) / float64(n)
		classes++
	}
	if classes == 0 {
		return 0
	}
	return total / float64(classes)
}

// Write renders the matrix with per-class recall.
func (c *Confusion) Write(w io.Writer) error {
	recall := c.Recall()
	for i, row := range c.Counts {
		if _, err := fmt.Fprintf(w, "class %2d:", i); err != nil {
			return err
		}
		for _, v := range row {
			if _, err := fmt.Fprintf(w, " %5d", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  recall %.3f\n", recall[i]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "accuracy %.4f  macro recall %.4f\n", c.Accuracy(), c.MacroRecall())
	return err
}
