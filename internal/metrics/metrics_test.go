package metrics

import (
	"math"
	"strings"
	"testing"
)

func mkHistory(points ...Point) *History {
	h := &History{}
	for _, p := range points {
		h.Add(p)
	}
	return h
}

func TestTimeToAccuracy(t *testing.T) {
	h := mkHistory(
		Point{Step: 5, Accuracy: 0.3},
		Point{Step: 10, Accuracy: 0.6},
		Point{Step: 15, Accuracy: 0.55},
		Point{Step: 20, Accuracy: 0.8},
	)
	tests := []struct {
		target   float64
		wantStep int
		wantOK   bool
	}{
		{0.25, 5, true},
		{0.6, 10, true},
		{0.7, 20, true},
		{0.9, 0, false},
	}
	for _, tt := range tests {
		step, ok := h.TimeToAccuracy(tt.target)
		if step != tt.wantStep || ok != tt.wantOK {
			t.Fatalf("TimeToAccuracy(%v) = (%d,%v), want (%d,%v)", tt.target, step, ok, tt.wantStep, tt.wantOK)
		}
	}
}

func TestFinalAndBestAccuracy(t *testing.T) {
	var empty History
	if empty.FinalAccuracy() != 0 || empty.BestAccuracy() != 0 {
		t.Fatal("empty history should report zero accuracies")
	}
	h := mkHistory(Point{Step: 1, Accuracy: 0.9}, Point{Step: 2, Accuracy: 0.7})
	if h.FinalAccuracy() != 0.7 {
		t.Fatalf("FinalAccuracy = %v", h.FinalAccuracy())
	}
	if h.BestAccuracy() != 0.9 {
		t.Fatalf("BestAccuracy = %v", h.BestAccuracy())
	}
}

func TestSmoothed(t *testing.T) {
	h := mkHistory(
		Point{Step: 1, Accuracy: 0.0, Loss: 2},
		Point{Step: 2, Accuracy: 1.0, Loss: 0},
		Point{Step: 3, Accuracy: 0.5, Loss: 1},
	)
	s := h.Smoothed(2)
	want := []float64{0.0, 0.5, 0.75}
	for i, p := range s.Points {
		if math.Abs(p.Accuracy-want[i]) > 1e-12 {
			t.Fatalf("smoothed[%d] = %v, want %v", i, p.Accuracy, want[i])
		}
	}
	// Window 1 must be identical, and the original must be untouched.
	id := h.Smoothed(1)
	for i := range h.Points {
		if id.Points[i] != h.Points[i] {
			t.Fatal("window-1 smoothing changed values")
		}
	}
	if h.Points[1].Accuracy != 1.0 {
		t.Fatal("Smoothed mutated the original history")
	}
}

func TestWriteCSV(t *testing.T) {
	h := mkHistory(Point{Step: 3, Accuracy: 0.5, Loss: 1.25})
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "step,accuracy,loss\n") {
		t.Fatalf("missing header: %q", got)
	}
	if !strings.Contains(got, "3,0.500000,1.250000") {
		t.Fatalf("missing row: %q", got)
	}
}

func TestAverageHistoriesAlignedSteps(t *testing.T) {
	a := mkHistory(Point{Step: 10, Accuracy: 0.4}, Point{Step: 20, Accuracy: 0.8})
	b := mkHistory(Point{Step: 10, Accuracy: 0.6}, Point{Step: 20, Accuracy: 0.6})
	avg := AverageHistories([]*History{a, b})
	if avg.Len() != 2 {
		t.Fatalf("averaged %d points", avg.Len())
	}
	if math.Abs(avg.Points[0].Accuracy-0.5) > 1e-12 || math.Abs(avg.Points[1].Accuracy-0.7) > 1e-12 {
		t.Fatalf("averaged values wrong: %+v", avg.Points)
	}
}

func TestAverageHistoriesInterpolation(t *testing.T) {
	a := mkHistory(Point{Step: 0, Accuracy: 0}, Point{Step: 10, Accuracy: 1})
	b := mkHistory(Point{Step: 5, Accuracy: 0.5})
	avg := AverageHistories([]*History{a, b})
	// At step 5: a interpolates to 0.5, b is exactly 0.5 → average 0.5.
	for _, p := range avg.Points {
		if p.Step == 5 && math.Abs(p.Accuracy-0.5) > 1e-12 {
			t.Fatalf("interpolated average at 5 = %v", p.Accuracy)
		}
	}
	if AverageHistories(nil).Len() != 0 {
		t.Fatal("empty input should give empty history")
	}
}

func TestSavedPercent(t *testing.T) {
	tests := []struct {
		name      string
		mach      int
		baselines []int
		want      float64
	}{
		{"paper style", 110, []int{160, 245, 185}, 31.25},
		{"mach worse", 200, []int{100}, -100},
		{"no baselines", 50, nil, 0},
		{"zero baselines ignored", 50, []int{0, 100}, 50},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := SavedPercent(tt.mach, tt.baselines)
			if math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("SavedPercent = %v, want %v", got, tt.want)
			}
		})
	}
}
