package sampling

import (
	"math"
	"math/rand"
	"testing"
)

// inPlaceStrategies builds one instance of every InPlaceStrategy with enough
// seeded experience that the estimate paths are non-trivial.
func inPlaceStrategies(t *testing.T) map[string]InPlaceStrategy {
	t.Helper()
	const devices = 40
	mach, err := NewMACH(devices, DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	stat, err := NewStatistical(devices, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	machp, err := NewMACHP(DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for m := 0; m < devices; m += 2 { // half the devices have history
		norms := []float64{rng.Float64() * 3, rng.Float64() * 3}
		mach.Observe(1, m%3, m, norms)
		stat.Observe(1, m%3, m, norms)
	}
	mach.CloudRound(2)
	stat.CloudRound(2)
	return map[string]InPlaceStrategy{
		"uniform":     NewUniform(),
		"mach":        mach,
		"statistical": stat,
		"mach-p":      machp,
	}
}

// TestProbabilitiesIntoMatchesProbabilities pins the fast-path contract:
// ProbabilitiesInto returns bit-identical values to Probabilities for every
// in-place strategy, across member counts (including empty and
// capacity ≥ |members|) while reusing one context and one buffer.
func TestProbabilitiesIntoMatchesProbabilities(t *testing.T) {
	for name, s := range inPlaceStrategies(t) {
		t.Run(name, func(t *testing.T) {
			var dst []float64
			ctx := &EdgeContext{Capacity: 3}
			probe := func(m int) float64 { return float64(m%7) + 0.5 }
			for step := 0; step < 4; step++ {
				for _, members := range [][]int{nil, {4}, {0, 1, 2}, {1, 3, 5, 7, 9, 11, 13, 15}} {
					ctx.Step = step
					ctx.Edge = step % 3
					ctx.Members = members
					ctx.ProbeGradNorm = probe
					want := s.Probabilities(ctx)
					dst = s.ProbabilitiesInto(ctx, dst)
					if len(dst) != len(want) {
						t.Fatalf("step %d members %v: len %d, want %d", step, members, len(dst), len(want))
					}
					for i := range want {
						if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
							t.Fatalf("step %d members %v index %d: into %v, alloc %v", step, members, i, dst[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestProbabilitiesIntoSteadyStateAllocs verifies the point of the fast
// path: with a warm context and buffer, the MACH decide math allocates
// nothing per edge.
func TestProbabilitiesIntoSteadyStateAllocs(t *testing.T) {
	mach, err := NewMACH(64, DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	members := make([]int, 64)
	for i := range members {
		members[i] = i
	}
	ctx := &EdgeContext{Capacity: 5, Members: members}
	dst := make([]float64, 0, len(members))
	dst = mach.ProbabilitiesInto(ctx, dst) // warm scratch + dst
	allocs := testing.AllocsPerRun(100, func() {
		dst = mach.ProbabilitiesInto(ctx, dst)
	})
	if allocs != 0 {
		t.Fatalf("warm ProbabilitiesInto allocates %v objects per edge", allocs)
	}
}

// TestEdgeSamplingIntoAliasing checks the documented dst==estimates aliasing
// contract of EdgeSamplingInto and capProbabilitiesInto.
func TestEdgeSamplingIntoAliasing(t *testing.T) {
	cfg := DefaultMACHConfig()
	estimates := []float64{0.2, 1.7, 0.0, 3.1, 0.4}
	want := EdgeSampling(cfg, 2, estimates)
	buf := append([]float64(nil), estimates...)
	got := EdgeSamplingInto(cfg, 2, buf, buf)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("index %d: aliased %v, want %v", i, got[i], want[i])
		}
	}
}

// TestUCBEstimatesIntoMatchesUCBEstimate pins the batched estimate path
// against the single-device accessor.
func TestUCBEstimatesIntoMatchesUCBEstimate(t *testing.T) {
	b := NewExperienceBook(10, 1.3, 0.9)
	b.Observe(2, []float64{4, 6})
	b.Observe(7, []float64{1})
	b.CloudRound(3)
	members := []int{0, 2, 5, 7, 9}
	dst := make([]float64, len(members))
	for _, step := range []int{0, 3, 17} {
		b.UCBEstimatesInto(dst, members, step)
		for i, m := range members {
			want := b.UCBEstimate(m, step)
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("step %d device %d: batched %v, single %v", step, m, dst[i], want)
			}
		}
	}
}

func benchEstimates(n int) []float64 {
	rng := rand.New(rand.NewSource(9))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 4
	}
	return out
}

func BenchmarkEdgeSampling(b *testing.B) {
	cfg := DefaultMACHConfig()
	estimates := benchEstimates(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EdgeSampling(cfg, 10, estimates)
	}
}

func BenchmarkEdgeSamplingInto(b *testing.B) {
	cfg := DefaultMACHConfig()
	estimates := benchEstimates(100)
	dst := make([]float64, len(estimates))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EdgeSamplingInto(cfg, 10, estimates, dst)
	}
}

func BenchmarkUCBEstimate(b *testing.B) {
	book := NewExperienceBook(100, 1, 0.9)
	for m := 0; m < 100; m++ {
		book.Observe(m, []float64{float64(m)})
	}
	book.CloudRound(1)
	members := make([]int, 100)
	for i := range members {
		members[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range members {
			_ = book.UCBEstimate(m, i)
		}
	}
}

func BenchmarkUCBEstimatesInto(b *testing.B) {
	book := NewExperienceBook(100, 1, 0.9)
	for m := 0; m < 100; m++ {
		book.Observe(m, []float64{float64(m)})
	}
	book.CloudRound(1)
	members := make([]int, 100)
	for i := range members {
		members[i] = i
	}
	dst := make([]float64, len(members))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		book.UCBEstimatesInto(dst, members, i)
	}
}
