package sampling

import (
	"math"

	"github.com/mach-fl/mach/internal/dataset"
)

// ClassBalance is the class-balance sampling baseline (CS), modelled on
// Fed-CBS (Zhang et al., ICML 2023): the edge actively selects the group of
// ⌊K_n⌋ devices whose combined local label distribution is closest to
// uniform, greedily minimizing the class-imbalance objective
// ‖mix − uniform‖² (the QCID surrogate). The greedy selection is
// deterministic given the edge's members; round-to-round diversity comes
// from device mobility reshuffling edge membership, which reproduces the
// paper's observation that CS can trail even uniform sampling when the same
// balanced subset keeps being re-selected (Table I, MNIST).
//
// CS is an active-selection method: chosen devices participate with
// certainty, so aggregation uses a plain average over participants rather
// than inverse-probability weights (Unbiased returns false).
type ClassBalance struct{}

var _ Strategy = (*ClassBalance)(nil)

// NewClassBalance returns the class-balance sampling baseline.
func NewClassBalance() *ClassBalance { return &ClassBalance{} }

// Name implements Strategy.
func (*ClassBalance) Name() string { return "class-balance" }

// Unbiased implements Strategy.
func (*ClassBalance) Unbiased() bool { return false }

// Probabilities implements Strategy: 1 for the greedily selected balanced
// group, 0 for everyone else.
func (*ClassBalance) Probabilities(ctx *EdgeContext) []float64 {
	n := len(ctx.Members)
	out := make([]float64, n)
	k := int(math.Floor(ctx.Capacity + 1e-9))
	if k < 1 {
		k = 1
	}
	if k >= n {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	dists := make([][]float64, n)
	for i, m := range ctx.Members {
		if ctx.ClassDist != nil {
			dists[i] = ctx.ClassDist(m)
		}
	}
	if dists[0] == nil {
		// No label information available: degrade to choosing a random
		// group of k devices.
		for _, i := range ctx.RNG.Perm(n)[:k] {
			out[i] = 1
		}
		return out
	}
	classes := len(dists[0])
	mix := make([]float64, classes)
	chosen := make([]bool, n)
	picked := 0
	cand := make([]float64, classes)
	for picked < k {
		best, bestScore := -1, math.Inf(1)
		for i := range ctx.Members {
			if chosen[i] {
				continue
			}
			copy(cand, mix)
			for c, p := range dists[i] {
				cand[c] += p
			}
			// Normalize by the would-be group size and score imbalance.
			inv := 1.0 / float64(picked+1)
			score := 0.0
			u := 1.0 / float64(classes)
			for _, v := range cand {
				d := v*inv - u
				score += d * d
			}
			if score < bestScore {
				best, bestScore = i, score
			}
		}
		chosen[best] = true
		for c, p := range dists[best] {
			mix[c] += p
		}
		picked++
	}
	for i := range out {
		if chosen[i] {
			out[i] = 1
		}
	}
	return out
}

// GroupImbalance reports the class imbalance of the group a probability
// vector selects in expectation: the squared distance to uniform of the
// q-weighted mixture of member distributions. Exposed for tests and the
// ablation benches.
func GroupImbalance(probs []float64, dists [][]float64) float64 {
	return dataset.Imbalance(dataset.MixDistributions(dists, probs))
}
