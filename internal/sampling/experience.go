package sampling

import (
	"math"
	"sync"
)

// deviceExperience is the per-device state of Algorithm 2: the gradient
// experience buffer G^t_m accumulated since the last edge-to-cloud
// communication, plus the sufficient statistics of the UCB score.
type deviceExperience struct {
	buffer  []float64 // squared gradient norms of the current round window
	maxAvg  float64   // max over windows of Avg(buffer): exploitation term A
	lastAvg float64   // most recent window average (statistical sampling uses it)
	steps   int       // Σ_{t'} 1^{t'}_m — participated time steps
	seen    bool      // whether the device ever participated
}

// ExperienceBook tracks training experiences for every device and produces
// the UCB estimates G̃²_m of Eq. (15). It is shared by MACH (UCB estimates)
// and statistical sampling (last-window averages). It is safe for concurrent
// use: edges observe devices in parallel during a step.
type ExperienceBook struct {
	mu sync.Mutex
	// explorationCoef scales the confidence-radius term B of Eq. (15) so
	// exploration can be matched to the gradient-norm scale of the task.
	explorationCoef float64
	discount        float64
	devices         []deviceExperience
}

// NewExperienceBook tracks numDevices devices. explorationCoef scales the
// UCB confidence radius (1.0 reproduces Eq. (15) literally). discount ∈
// (0,1] geometrically decays the historical max at every cloud round so the
// exploitation term tracks the *current* gradient-norm scale as training
// drives norms down; 1 reproduces Eq. (15)'s all-time max literally (the
// ablation bench compares both).
func NewExperienceBook(numDevices int, explorationCoef, discount float64) *ExperienceBook {
	if discount <= 0 || discount > 1 {
		discount = 1
	}
	return &ExperienceBook{
		explorationCoef: explorationCoef,
		discount:        discount,
		devices:         make([]deviceExperience, numDevices),
	}
}

// Observe appends the squared norms of device m's local stochastic gradients
// from one time step to its experience buffer (Algorithm 2, line 1).
func (b *ExperienceBook) Observe(m int, sqNorms []float64) {
	if len(sqNorms) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	d := &b.devices[m]
	d.buffer = append(d.buffer, sqNorms...)
	d.steps++
	d.seen = true
}

// ObserveMany records one Observe(devices[i], norms[i]) per element under a
// single lock — the sharded engine's merge path, one lock per shard batch
// instead of one per observation. The per-device bookkeeping is identical to
// Observe, so the book's state after ObserveMany is bit-identical to the
// equivalent Observe sequence.
func (b *ExperienceBook) ObserveMany(devices []int, norms [][]float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, m := range devices {
		sqNorms := norms[i]
		if len(sqNorms) == 0 {
			continue
		}
		d := &b.devices[m]
		d.buffer = append(d.buffer, sqNorms...)
		d.steps++
		d.seen = true
	}
}

// CloudRound folds the current buffers into the UCB statistics and clears
// them (Algorithm 2, lines 2-4). t is the current time step, used by the
// confidence radius √(log t / Σ 1).
func (b *ExperienceBook) CloudRound(t int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for m := range b.devices {
		d := &b.devices[m]
		d.maxAvg *= b.discount
		if len(d.buffer) == 0 {
			continue
		}
		avg := mean(d.buffer)
		d.lastAvg = avg
		if avg > d.maxAvg {
			d.maxAvg = avg
		}
		d.buffer = d.buffer[:0]
	}
}

// UCBEstimate returns G̃²_m of Eq. (15): the max window-average (term A)
// plus the confidence radius √(log t / Σ 1^t_m) (term B). A device that has
// never participated receives a pure exploration score √(log t), which keeps
// it attractive until sampled at least once.
func (b *ExperienceBook) UCBEstimate(m, t int) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := &b.devices[m]
	logT := math.Log(float64(t) + 2) // +2 keeps the radius defined at t ∈ {0,1}
	steps := d.steps
	if steps < 1 {
		steps = 1
	}
	return d.maxAvg + b.explorationCoef*math.Sqrt(logT/float64(steps))
}

// UCBEstimatesInto writes UCBEstimate(m, t) for every member into dst
// (aligned with members, which must not be longer than dst) under a single
// lock — at scale, one lock per edge instead of one per member. The per-
// device arithmetic is identical to UCBEstimate, so the values match it
// bit for bit.
func (b *ExperienceBook) UCBEstimatesInto(dst []float64, members []int, t int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	logT := math.Log(float64(t) + 2)
	for i, m := range members {
		d := &b.devices[m]
		steps := d.steps
		if steps < 1 {
			steps = 1
		}
		dst[i] = d.maxAvg + b.explorationCoef*math.Sqrt(logT/float64(steps))
	}
}

// LastAverage returns the most recent window-average gradient norm of device
// m, or fallback when the device has no folded experience yet. Statistical
// sampling uses it as its (exploration-free) norm estimate.
func (b *ExperienceBook) LastAverage(m int, fallback float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := &b.devices[m]
	//machlint:allow floateq exact zero is the "no folded experience yet" sentinel, never a computed norm
	if !d.seen || d.lastAvg == 0 {
		return fallback
	}
	return d.lastAvg
}

// EstimatorStats summarizes an estimator's exploration state: how much of
// the population has ever been pulled and how concentrated participation is.
type EstimatorStats struct {
	Devices     int
	NeverPulled int
	TotalPulls  int
	MaxPulls    int
}

// Stats aggregates participation counts over every tracked device under a
// single lock.
func (b *ExperienceBook) Stats() EstimatorStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := EstimatorStats{Devices: len(b.devices)}
	for m := range b.devices {
		d := &b.devices[m]
		if !d.seen {
			s.NeverPulled++
		}
		s.TotalPulls += d.steps
		if d.steps > s.MaxPulls {
			s.MaxPulls = d.steps
		}
	}
	return s
}

// Participations returns how many time steps device m has participated in.
func (b *ExperienceBook) Participations(m int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.devices[m].steps
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
