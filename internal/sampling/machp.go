package sampling

import "sync"

// MACHP is the perfect-information variant of MACH used as an upper-bound
// benchmark in the evaluation ("we assume that the training experiences for
// each device in every time step are known, i.e., without online experience
// updating", §IV-A3). Instead of UCB estimates it probes the true squared
// stochastic-gradient norm of every attached device under the current model
// and feeds those exact values through the same edge-sampling pipeline
// (Eqs. 16-18).
type MACHP struct {
	cfg MACHConfig

	mu    sync.Mutex
	step  int
	cache map[int]float64 // device → probed norm, valid for the current step
}

var (
	_ InPlaceStrategy  = (*MACHP)(nil)
	_ ScratchEstimator = (*MACHP)(nil)
	_ FloorReporter    = (*MACHP)(nil)
)

// NewMACHP returns the perfect-information MACH variant.
func NewMACHP(cfg MACHConfig) (*MACHP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MACHP{cfg: cfg, cache: make(map[int]float64)}, nil
}

// Name implements Strategy.
func (*MACHP) Name() string { return "mach-p" }

// Unbiased implements Strategy.
func (*MACHP) Unbiased() bool { return true }

// ScratchEstimates implements ScratchEstimator: ProbabilitiesInto leaves the
// probed true squared gradient norms in ctx.Scratch.
func (*MACHP) ScratchEstimates() bool { return true }

// ProbFloor implements FloorReporter.
func (s *MACHP) ProbFloor() float64 { return s.cfg.QMin }

// Probabilities implements Strategy: the probed true norms fed through the
// Eq. (16)-(18) pipeline of EdgeSampling.
func (s *MACHP) Probabilities(ctx *EdgeContext) []float64 {
	return s.ProbabilitiesInto(ctx, make([]float64, len(ctx.Members)))
}

// ProbabilitiesInto implements InPlaceStrategy.
func (s *MACHP) ProbabilitiesInto(ctx *EdgeContext, dst []float64) []float64 {
	norms := ensureLen(ctx.Scratch, len(ctx.Members))
	ctx.Scratch = norms
	for i, m := range ctx.Members {
		norms[i] = s.probe(ctx, m)
	}
	return EdgeSamplingInto(s.cfg, ctx.Capacity, norms, dst)
}

// probe measures (or recalls) the device's true gradient norm for the
// current step. Edges run concurrently within a step, so the cache is
// guarded; it is invalidated whenever the step advances.
func (s *MACHP) probe(ctx *EdgeContext, m int) float64 {
	if ctx.ProbeGradNorm == nil {
		return 1 // engine without probing support: degrade to uniform
	}
	s.mu.Lock()
	if ctx.Step != s.step {
		s.step = ctx.Step
		clear(s.cache)
	}
	if v, ok := s.cache[m]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := ctx.ProbeGradNorm(m)
	s.mu.Lock()
	s.cache[m] = v
	s.mu.Unlock()
	return v
}
