package sampling

import "sync"

// MACHP is the perfect-information variant of MACH used as an upper-bound
// benchmark in the evaluation ("we assume that the training experiences for
// each device in every time step are known, i.e., without online experience
// updating", §IV-A3). Instead of UCB estimates it probes the true squared
// stochastic-gradient norm of every attached device under the current model
// and feeds those exact values through the same edge-sampling pipeline
// (Eqs. 16-18).
type MACHP struct {
	cfg MACHConfig

	mu    sync.Mutex
	step  int
	cache map[int]float64 // device → probed norm, valid for the current step
}

var _ Strategy = (*MACHP)(nil)

// NewMACHP returns the perfect-information MACH variant.
func NewMACHP(cfg MACHConfig) (*MACHP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MACHP{cfg: cfg, cache: make(map[int]float64)}, nil
}

// Name implements Strategy.
func (*MACHP) Name() string { return "mach-p" }

// Unbiased implements Strategy.
func (*MACHP) Unbiased() bool { return true }

// Probabilities implements Strategy.
func (s *MACHP) Probabilities(ctx *EdgeContext) []float64 {
	norms := make([]float64, len(ctx.Members))
	total := 0.0
	for i, m := range ctx.Members {
		norms[i] = s.probe(ctx, m)
		total += norms[i]
	}
	scores := make([]float64, len(ctx.Members))
	for i, g := range norms {
		qHat := 0.0
		if total > 0 {
			qHat = ctx.Capacity * g / total
		}
		scores[i] = s.cfg.Transfer(qHat)
	}
	return capProbabilities(scores, ctx.Capacity, s.cfg.QMin)
}

// probe measures (or recalls) the device's true gradient norm for the
// current step. Edges run concurrently within a step, so the cache is
// guarded; it is invalidated whenever the step advances.
func (s *MACHP) probe(ctx *EdgeContext, m int) float64 {
	if ctx.ProbeGradNorm == nil {
		return 1 // engine without probing support: degrade to uniform
	}
	s.mu.Lock()
	if ctx.Step != s.step {
		s.step = ctx.Step
		clear(s.cache)
	}
	if v, ok := s.cache[m]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := ctx.ProbeGradNorm(m)
	s.mu.Lock()
	s.cache[m] = v
	s.mu.Unlock()
	return v
}
