package sampling

import (
	"math/rand"
	"testing"
)

func TestOortConfigValidate(t *testing.T) {
	if err := DefaultOortConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*OortConfig)
	}{
		{"exploration above 1", func(c *OortConfig) { c.ExplorationFraction = 1.5 }},
		{"negative staleness", func(c *OortConfig) { c.StalenessCoef = -1 }},
		{"zero quantile", func(c *OortConfig) { c.OutlierQuantile = 0 }},
		{"qmin 1", func(c *OortConfig) { c.QMin = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultOortConfig()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestOortSelectsHighUtilityDevices(t *testing.T) {
	cfg := DefaultOortConfig()
	cfg.ExplorationFraction = 0 // pure exploitation for this test
	o, err := NewOort(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Devices 0..5 with rising utilities; all seen recently.
	for m := 0; m < 6; m++ {
		o.Observe(10, 0, m, []float64{float64(m + 1)})
	}
	q := o.Probabilities(&EdgeContext{
		Step: 11, Capacity: 2, Members: []int{0, 1, 2, 3, 4, 5},
		RNG: rand.New(rand.NewSource(1)),
	})
	chosen := 0
	for i, v := range q {
		if v == 1 {
			chosen++
			if i < 3 {
				t.Fatalf("low-utility device %d selected: %v", i, q)
			}
		} else if v != 0 {
			t.Fatalf("oort probability %v not in {0,1}", v)
		}
	}
	if chosen != 2 {
		t.Fatalf("selected %d devices, want 2", chosen)
	}
}

func TestOortExplorationBudget(t *testing.T) {
	cfg := DefaultOortConfig()
	cfg.ExplorationFraction = 0.5
	o, err := NewOort(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Half the members explored, half unseen; capacity 4 → 2 exploration
	// slots go to unseen devices.
	for m := 0; m < 4; m++ {
		o.Observe(5, 0, m, []float64{10})
	}
	q := o.Probabilities(&EdgeContext{
		Step: 6, Capacity: 4, Members: []int{0, 1, 2, 3, 4, 5, 6, 7},
		RNG: rand.New(rand.NewSource(2)),
	})
	unseenChosen := 0
	for i := 4; i < 8; i++ {
		if q[i] == 1 {
			unseenChosen++
		}
	}
	if unseenChosen != 2 {
		t.Fatalf("%d unseen devices chosen, want 2 (50%% of capacity 4)", unseenChosen)
	}
}

func TestOortOutlierClipping(t *testing.T) {
	cfg := DefaultOortConfig()
	cfg.ExplorationFraction = 0
	cfg.OutlierQuantile = 0.5 // clip hard for the test
	cfg.StalenessCoef = 0
	o, err := NewOort(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One pathological device with an enormous utility; clipping at the
	// median must prevent it from being the sole determinant: with equal
	// clipped utilities the selection is by order, not by the outlier.
	o.Observe(3, 0, 0, []float64{1e9})
	o.Observe(3, 0, 1, []float64{2})
	o.Observe(3, 0, 2, []float64{2})
	o.Observe(3, 0, 3, []float64{2})
	q := o.Probabilities(&EdgeContext{
		Step: 4, Capacity: 3, Members: []int{0, 1, 2, 3},
		RNG: rand.New(rand.NewSource(3)),
	})
	// After clipping to the median (2), the outlier's advantage is capped:
	// at least two of the normal devices must be selected.
	normal := 0
	for i := 1; i < 4; i++ {
		if q[i] == 1 {
			normal++
		}
	}
	if normal < 2 {
		t.Fatalf("outlier dominated selection despite clipping: %v", q)
	}
}

func TestOortCapacityCoversAll(t *testing.T) {
	o, err := NewOort(3, DefaultOortConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := o.Probabilities(&EdgeContext{
		Step: 1, Capacity: 5, Members: []int{0, 1, 2},
		RNG: rand.New(rand.NewSource(4)),
	})
	for _, v := range q {
		if v != 1 {
			t.Fatalf("capacity covers edge but q = %v", q)
		}
	}
	if o.Unbiased() {
		t.Fatal("oort must be a biased active-selection strategy")
	}
}
