package sampling

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mach-fl/mach/internal/dataset"
)

// oneHot returns a distribution fully concentrated on class c.
func oneHot(classes, c int) []float64 {
	d := make([]float64, classes)
	d[c] = 1
	return d
}

func TestClassBalanceSelectsComplementaryDevices(t *testing.T) {
	// 6 devices: three hold only class 0, three hold classes 0/1/2
	// one-hot each. Selecting 3 devices, the balanced group is {class0,
	// class1, class2} — never three copies of class 0.
	dists := [][]float64{
		oneHot(3, 0), oneHot(3, 0), oneHot(3, 0),
		oneHot(3, 0), oneHot(3, 1), oneHot(3, 2),
	}
	cb := NewClassBalance()
	ctx := &EdgeContext{
		Capacity:  3,
		Members:   []int{0, 1, 2, 3, 4, 5},
		RNG:       rand.New(rand.NewSource(1)),
		ClassDist: func(m int) []float64 { return dists[m] },
	}
	q := cb.Probabilities(ctx)
	// Devices 4 and 5 (the only holders of classes 1 and 2) must always be
	// chosen.
	if q[4] != 1 || q[5] != 1 {
		t.Fatalf("complementary devices not selected: %v", q)
	}
	chosen := 0
	for _, v := range q {
		if v == 1 {
			chosen++
		} else if v != 0 {
			t.Fatalf("class-balance probability %v not in {0,1}", v)
		}
	}
	if chosen != 3 {
		t.Fatalf("chose %d devices, want 3", chosen)
	}
}

func TestClassBalanceBeatsRandomGroupsOnImbalance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	classes := 5
	n := 12
	dists := make([][]float64, n)
	for i := range dists {
		law := dataset.LongTailed(classes, 0.3)
		perm := rng.Perm(classes)
		d := make([]float64, classes)
		for c, p := range perm {
			d[p] = law[c]
		}
		dists[i] = d
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	cb := NewClassBalance()
	ctx := &EdgeContext{
		Capacity:  4,
		Members:   members,
		RNG:       rng,
		ClassDist: func(m int) []float64 { return dists[m] },
	}
	q := cb.Probabilities(ctx)
	cbImb := GroupImbalance(q, dists)
	// Compare against the average imbalance of random 4-subsets.
	randTotal := 0.0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		sel := make([]float64, n)
		for _, i := range rng.Perm(n)[:4] {
			sel[i] = 1
		}
		randTotal += GroupImbalance(sel, dists)
	}
	if cbImb >= randTotal/trials {
		t.Fatalf("class-balance imbalance %.4f not better than random %.4f", cbImb, randTotal/trials)
	}
}

func TestClassBalanceAllFitWhenCapacityCoversEdge(t *testing.T) {
	cb := NewClassBalance()
	ctx := &EdgeContext{
		Capacity:  10,
		Members:   []int{0, 1, 2},
		RNG:       rand.New(rand.NewSource(3)),
		ClassDist: func(m int) []float64 { return oneHot(2, m%2) },
	}
	q := cb.Probabilities(ctx)
	for i, v := range q {
		if v != 1 {
			t.Fatalf("q[%d] = %v, want 1", i, v)
		}
	}
}

func TestClassBalanceWithoutClassInfoPicksRandomGroup(t *testing.T) {
	cb := NewClassBalance()
	ctx := &EdgeContext{
		Capacity: 2,
		Members:  []int{0, 1, 2, 3, 4},
		RNG:      rand.New(rand.NewSource(4)),
	}
	q := cb.Probabilities(ctx)
	chosen := 0
	for _, v := range q {
		if v == 1 {
			chosen++
		}
	}
	if chosen != 2 {
		t.Fatalf("chose %d devices, want 2", chosen)
	}
}

func TestClassBalanceIsBiasedStrategy(t *testing.T) {
	if NewClassBalance().Unbiased() {
		t.Fatal("class-balance must report biased (active selection) aggregation")
	}
}

func TestClassBalanceGreedyIsDeterministic(t *testing.T) {
	// Fed-CBS-style greedy selection depends only on the member set: with
	// identical members, identical groups are selected — diversity in the
	// simulator comes from mobility changing the member set.
	dists := make([][]float64, 8)
	for i := range dists {
		dists[i] = oneHot(4, i%4)
	}
	cb := NewClassBalance()
	members := []int{0, 1, 2, 3, 4, 5, 6, 7}
	var first []float64
	for seed := int64(0); seed < 5; seed++ {
		ctx := &EdgeContext{
			Capacity:  2,
			Members:   members,
			RNG:       rand.New(rand.NewSource(seed)),
			ClassDist: func(m int) []float64 { return dists[m] },
		}
		q := cb.Probabilities(ctx)
		if first == nil {
			first = q
			continue
		}
		for i := range q {
			if q[i] != first[i] {
				t.Fatalf("greedy selection varied with RNG seed: %v vs %v", q, first)
			}
		}
	}
	// A different member set must be able to produce a different group.
	ctx := &EdgeContext{
		Capacity:  2,
		Members:   []int{4, 5, 6, 7},
		RNG:       rand.New(rand.NewSource(1)),
		ClassDist: func(m int) []float64 { return dists[m] },
	}
	q := cb.Probabilities(ctx)
	chosen := 0
	for _, v := range q {
		if v == 1 {
			chosen++
		}
	}
	if chosen != 2 {
		t.Fatalf("chose %d devices from the smaller edge, want 2", chosen)
	}
}

func TestGroupImbalanceUniformGroupIsZero(t *testing.T) {
	dists := [][]float64{oneHot(2, 0), oneHot(2, 1)}
	if got := GroupImbalance([]float64{1, 1}, dists); math.Abs(got) > 1e-12 {
		t.Fatalf("balanced pair imbalance = %v, want 0", got)
	}
}
