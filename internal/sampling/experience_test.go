package sampling

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestExperienceBookWindowFolding(t *testing.T) {
	b := NewExperienceBook(2, 1, 1)
	// Window 1: norms {4, 6} → avg 5.
	b.Observe(0, []float64{4, 6})
	b.CloudRound(5)
	if got := b.LastAverage(0, -1); got != 5 {
		t.Fatalf("window average %v, want 5", got)
	}
	// Window 2: smaller average; exploitation term keeps the max (5).
	b.Observe(0, []float64{1})
	b.CloudRound(10)
	if got := b.LastAverage(0, -1); got != 1 {
		t.Fatalf("last average %v, want 1", got)
	}
	// UCB = maxAvg + √(log t / steps) with maxAvg = 5, steps = 2.
	want := 5 + math.Sqrt(math.Log(12)/2)
	if got := b.UCBEstimate(0, 10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("UCB %v, want %v", got, want)
	}
	// Device 1 never participated: fallback applies.
	if got := b.LastAverage(1, 7); got != 7 {
		t.Fatalf("fallback %v, want 7", got)
	}
}

func TestExperienceBookDiscountDecaysMax(t *testing.T) {
	lit := NewExperienceBook(1, 0, 1)
	disc := NewExperienceBook(1, 0, 0.5)
	for _, b := range []*ExperienceBook{lit, disc} {
		b.Observe(0, []float64{8})
		b.CloudRound(1)
	}
	// Three empty cloud rounds: literal max stays, discounted halves.
	for r := 2; r <= 4; r++ {
		lit.CloudRound(r)
		disc.CloudRound(r)
	}
	if got := lit.UCBEstimate(0, 10); math.Abs(got-8) > 1e-12 {
		t.Fatalf("literal max drifted: %v", got)
	}
	if got := disc.UCBEstimate(0, 10); math.Abs(got-1) > 1e-12 { // 8·0.5³
		t.Fatalf("discounted max %v, want 1", got)
	}
}

func TestExperienceBookInvalidDiscountDefaultsToOne(t *testing.T) {
	b := NewExperienceBook(1, 0, -3)
	b.Observe(0, []float64{4})
	b.CloudRound(1)
	b.CloudRound(2)
	if got := b.UCBEstimate(0, 5); math.Abs(got-4) > 1e-12 {
		t.Fatalf("invalid discount not defaulted: %v", got)
	}
}

func TestExperienceBookEmptyObservationIgnored(t *testing.T) {
	b := NewExperienceBook(1, 1, 1)
	b.Observe(0, nil)
	if got := b.Participations(0); got != 0 {
		t.Fatalf("empty observation counted: %d", got)
	}
}

func TestExperienceBookConcurrentObserve(t *testing.T) {
	b := NewExperienceBook(50, 1, 0.9)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Observe((g*200+i)%50, []float64{1, 2})
			}
		}(g)
	}
	wg.Wait()
	b.CloudRound(1)
	total := 0
	for m := 0; m < 50; m++ {
		total += b.Participations(m)
	}
	if total != 8*200 {
		t.Fatalf("lost observations under concurrency: %d", total)
	}
}

// Property: the UCB estimate is always at least the exploitation term and
// strictly decreases in the participation count for a fixed history.
func TestUCBMonotoneInParticipationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		few := NewExperienceBook(1, 1, 1)
		many := NewExperienceBook(1, 1, 1)
		norm := []float64{rng.Float64()*5 + 0.1}
		few.Observe(0, norm)
		for i := 0; i < 10; i++ {
			many.Observe(0, norm)
		}
		few.CloudRound(1)
		many.CloudRound(1)
		t1 := 20
		return few.UCBEstimate(0, t1) > many.UCBEstimate(0, t1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: EdgeSampling output always respects capacity and bounds for any
// non-negative estimates.
func TestEdgeSamplingProperty(t *testing.T) {
	cfg := DefaultMACHConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		est := make([]float64, n)
		for i := range est {
			est[i] = rng.Float64() * 50
		}
		capacity := 0.5 + rng.Float64()*float64(n)
		q := EdgeSampling(cfg, capacity, est)
		total := 0.0
		for _, v := range q {
			if v < 0 || v > 1 {
				return false
			}
			total += v
		}
		if capacity >= float64(n) {
			return total == float64(n) // everyone selected
		}
		return total <= capacity+cfg.QMin*float64(n)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
