package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func ctxWith(members []int, capacity float64, seed int64) *EdgeContext {
	return &EdgeContext{
		Step:     10,
		Edge:     0,
		Capacity: capacity,
		Members:  members,
		RNG:      rand.New(rand.NewSource(seed)),
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestUniformProbabilities(t *testing.T) {
	u := NewUniform()
	tests := []struct {
		name     string
		members  int
		capacity float64
		want     float64
	}{
		{"half", 10, 5, 0.5},
		{"all fit", 3, 5, 1},
		{"exactly fit", 4, 4, 1},
		{"tight", 8, 2, 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			members := make([]int, tt.members)
			for i := range members {
				members[i] = i
			}
			q := u.Probabilities(ctxWith(members, tt.capacity, 1))
			for i, v := range q {
				if math.Abs(v-tt.want) > 1e-12 {
					t.Fatalf("q[%d] = %v, want %v", i, v, tt.want)
				}
			}
		})
	}
	if !u.Unbiased() {
		t.Fatal("uniform must be unbiased")
	}
}

func TestOptimalProbabilitiesClosedForm(t *testing.T) {
	// True minimizer of Σ G²/q: q* = K·G/ΣG, so squared norms {1, 9}
	// (norms 1 and 3) split a budget of 2 as 0.5 / 1.5.
	q := OptimalProbabilities(2, []float64{1, 9})
	if math.Abs(q[0]-0.5) > 1e-12 || math.Abs(q[1]-1.5) > 1e-12 {
		t.Fatalf("q = %v", q)
	}
	// All-zero norms degrade to uniform.
	q = OptimalProbabilities(2, []float64{0, 0, 0, 0})
	for _, v := range q {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("zero-norm fallback: %v", q)
		}
	}
}

func TestPaperVirtualProbabilitiesEq13(t *testing.T) {
	// Eq. (13)/(16) literally: q̂ = K·G²/ΣG².
	q := PaperVirtualProbabilities(2, []float64{1, 3})
	if math.Abs(q[0]-0.5) > 1e-12 || math.Abs(q[1]-1.5) > 1e-12 {
		t.Fatalf("q̂ = %v", q)
	}
	q = PaperVirtualProbabilities(1, []float64{0, 0})
	if math.Abs(q[0]-0.5) > 1e-12 {
		t.Fatalf("zero-norm fallback: %v", q)
	}
}

// The exact minimizer must never produce a larger variance term than the
// paper's Eq. (13) plug-in — quantifying the (small) suboptimality of the
// published closed form.
func TestOptimalNoWorseThanPaperForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		norms := make([]float64, n)
		for i := range norms {
			norms[i] = 0.1 + rng.Float64()*9
		}
		capacity := 1 + rng.Float64()*float64(n-1)
		exact := VarianceTerm(norms, OptimalProbabilities(capacity, norms))
		paper := VarianceTerm(norms, PaperVirtualProbabilities(capacity, norms))
		return exact <= paper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property (Remark 2): among probability vectors with the same budget, the
// closed-form optimum minimizes the variance term Σ G²/q of the convergence
// bound. We verify against random perturbations with the same sum.
func TestOptimalMinimizesVarianceTerm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		norms := make([]float64, n)
		for i := range norms {
			norms[i] = 0.1 + rng.Float64()*5
		}
		capacity := 1 + rng.Float64()*float64(n-1)
		opt := OptimalProbabilities(capacity, norms)
		optVal := VarianceTerm(norms, opt)
		for trial := 0; trial < 10; trial++ {
			alt := make([]float64, n)
			for i := range alt {
				alt[i] = 0.01 + rng.Float64()
			}
			s := sum(alt)
			for i := range alt {
				alt[i] *= capacity / s
			}
			if VarianceTerm(norms, alt) < optVal-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceTermInfiniteOnZeroProb(t *testing.T) {
	if !math.IsInf(VarianceTerm([]float64{1}, []float64{0}), 1) {
		t.Fatal("zero probability must give infinite variance term")
	}
}

func TestCapProbabilitiesRespectsCapacityAndFloor(t *testing.T) {
	scores := []float64{10, 1, 1, 1e-9}
	q := capProbabilities(scores, 2, 0.05)
	if got := sum(q); got > 2+0.25 { // floor may lift the sum slightly
		t.Fatalf("Σq = %v exceeds capacity budget", got)
	}
	for i, v := range q {
		if v < 0.05 || v > 1 {
			t.Fatalf("q[%d] = %v outside [floor, 1]", i, v)
		}
	}
	if q[0] <= q[1] {
		t.Fatal("higher score must receive higher probability")
	}
}

func TestMACHConfigValidate(t *testing.T) {
	valid := DefaultMACHConfig()
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*MACHConfig)
	}{
		{"alpha zero", func(c *MACHConfig) { c.Alpha = 0 }},
		{"alpha two", func(c *MACHConfig) { c.Alpha = 2 }},
		{"beta positive", func(c *MACHConfig) { c.Beta = 1 }},
		{"beta zero", func(c *MACHConfig) { c.Beta = 0 }},
		{"negative exploration", func(c *MACHConfig) { c.ExplorationCoef = -1 }},
		{"qmin one", func(c *MACHConfig) { c.QMin = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestTransferFunctionShape(t *testing.T) {
	cfg := DefaultMACHConfig()
	// S(0) = 1 exactly.
	if got := cfg.Transfer(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("S(0) = %v, want 1", got)
	}
	// Monotone increasing and bounded in (1−α/2, 1+α/2).
	prev := math.Inf(-1)
	for q := 0.0; q <= 5; q += 0.1 {
		s := cfg.Transfer(q)
		if s <= prev {
			t.Fatalf("S not increasing at q̂=%v", q)
		}
		if s <= 1-cfg.Alpha/2 || s >= 1+cfg.Alpha/2 {
			t.Fatalf("S(%v) = %v outside bounds", q, s)
		}
		prev = s
	}
}

func TestMACHStartsNearUniform(t *testing.T) {
	s, err := NewMACH(10, DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	members := []int{0, 1, 2, 3, 4, 5}
	q := s.Probabilities(ctxWith(members, 3, 2))
	// With no experiences every estimate is the same exploration score, so
	// probabilities are equal.
	for i := 1; i < len(q); i++ {
		if math.Abs(q[i]-q[0]) > 1e-12 {
			t.Fatalf("initial probabilities not uniform: %v", q)
		}
	}
	if math.Abs(sum(q)-3) > 1e-9 {
		t.Fatalf("Σq = %v, want 3", sum(q))
	}
}

func TestMACHFavorsHighNormDevices(t *testing.T) {
	s, err := NewMACH(4, DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Device 0 reports large gradients; device 1 small; 2 and 3 medium.
	for step := 0; step < 5; step++ {
		s.Observe(step, 0, 0, []float64{9, 10, 11})
		s.Observe(step, 0, 1, []float64{0.1, 0.2})
		s.Observe(step, 0, 2, []float64{2})
		s.Observe(step, 0, 3, []float64{2})
	}
	s.CloudRound(5)
	q := s.Probabilities(ctxWith([]int{0, 1, 2, 3}, 2, 3))
	if !(q[0] > q[2] && q[2] > q[1]) {
		t.Fatalf("ordering violated: %v", q)
	}
	if math.Abs(q[2]-q[3]) > 1e-12 {
		t.Fatalf("equal-norm devices got different probabilities: %v", q)
	}
	if s.Book().Participations(0) != 5 {
		t.Fatalf("participations = %d, want 5", s.Book().Participations(0))
	}
}

func TestMACHExplorationBonusForUnseenDevices(t *testing.T) {
	s, err := NewMACH(3, MACHConfig{Alpha: 1.5, Beta: -3, ExplorationCoef: 1, QMin: 0.01, Discount: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Devices 0 and 1 participated often with small norms; device 2 never.
	for step := 0; step < 20; step++ {
		s.Observe(step, 0, 0, []float64{0.2})
		s.Observe(step, 0, 1, []float64{0.2})
	}
	s.CloudRound(20)
	book := s.Book()
	unseen := book.UCBEstimate(2, 100)
	seen := book.UCBEstimate(0, 100)
	if unseen <= seen {
		t.Fatalf("unseen device must carry the larger UCB score: %v vs %v", unseen, seen)
	}
	q := s.Probabilities(ctxWith([]int{0, 1, 2}, 1.5, 4))
	if q[2] <= q[0] {
		t.Fatalf("unseen device must be sampled more: %v", q)
	}
}

func TestMACHBufferClearedAtCloudRound(t *testing.T) {
	s, err := NewMACH(1, DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(0, 0, 0, []float64{8})
	s.CloudRound(1)
	first := s.Book().UCBEstimate(0, 10)
	// A later, smaller window must not lower the max-based estimate
	// (Eq. 15 takes the max over windows)...
	s.Observe(2, 0, 0, []float64{1})
	s.CloudRound(3)
	second := s.Book().UCBEstimate(0, 10)
	if second > first {
		t.Fatalf("estimate grew after smaller window with more steps: %v → %v", first, second)
	}
	// ...while the exploitation term A stays at the historical max.
	if la := s.Book().LastAverage(0, -1); la != 1 {
		t.Fatalf("last average = %v, want 1", la)
	}
}

func TestStatisticalTracksLastWindow(t *testing.T) {
	s, err := NewStatistical(2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Unbiased() {
		t.Fatal("statistical must be unbiased")
	}
	// Before any experience: uniform via prior.
	q := s.Probabilities(ctxWith([]int{0, 1}, 1, 5))
	if math.Abs(q[0]-q[1]) > 1e-12 {
		t.Fatalf("prior probabilities not uniform: %v", q)
	}
	s.Observe(0, 0, 0, []float64{4})
	s.Observe(0, 0, 1, []float64{1})
	s.CloudRound(1)
	q = s.Probabilities(ctxWith([]int{0, 1}, 1, 5))
	if q[0] <= q[1] {
		t.Fatalf("statistical must favor the larger last window: %v", q)
	}
	// Unlike MACH, a later smaller window *replaces* the estimate.
	s.Observe(2, 0, 0, []float64{0.1})
	s.CloudRound(3)
	q2 := s.Probabilities(ctxWith([]int{0, 1}, 1, 5))
	if q2[0] >= q2[1] {
		t.Fatalf("statistical must track the last window, not the max: %v", q2)
	}
}

func TestNewStatisticalRejectsBadQMin(t *testing.T) {
	if _, err := NewStatistical(1, -0.1); err == nil {
		t.Fatal("expected error")
	}
	if _, err := NewStatistical(1, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestMACHPUsesProbedNorms(t *testing.T) {
	s, err := NewMACHP(DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	probes := 0
	ctx := ctxWith([]int{0, 1, 2}, 1.5, 6)
	ctx.ProbeGradNorm = func(m int) float64 {
		probes++
		return float64(m*m + 1) // device 2 ≫ device 0
	}
	q := s.Probabilities(ctx)
	if !(q[2] > q[1] && q[1] > q[0]) {
		t.Fatalf("MACH-P ordering violated: %v", q)
	}
	if probes != 3 {
		t.Fatalf("probed %d times, want 3", probes)
	}
	// Same step again: cache must prevent re-probing.
	_ = s.Probabilities(ctx)
	if probes != 3 {
		t.Fatalf("cache miss: probed %d times", probes)
	}
	// New step: cache invalidated.
	ctx.Step++
	_ = s.Probabilities(ctx)
	if probes != 6 {
		t.Fatalf("stale cache: probed %d times, want 6", probes)
	}
}

func TestMACHPWithoutProbeDegradesToUniform(t *testing.T) {
	s, err := NewMACHP(DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := s.Probabilities(ctxWith([]int{0, 1}, 1, 7))
	if math.Abs(q[0]-q[1]) > 1e-12 {
		t.Fatalf("expected uniform fallback: %v", q)
	}
}

// Property: for every strategy and random context, probabilities stay in
// [0,1], and for unbiased strategies they are strictly positive.
func TestStrategyProbabilityRangeProperty(t *testing.T) {
	mach, err := NewMACH(32, DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewStatistical(32, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	machp, err := NewMACHP(DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	strategies := []Strategy{NewUniform(), mach, ss, machp, NewClassBalance()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		members := rng.Perm(32)[:n]
		capacity := 0.5 + rng.Float64()*float64(n)
		ctx := &EdgeContext{
			Step:     rng.Intn(100),
			Capacity: capacity,
			Members:  members,
			RNG:      rng,
			ClassDist: func(m int) []float64 {
				d := make([]float64, 5)
				d[m%5] = 1
				return d
			},
			ProbeGradNorm: func(m int) float64 { return float64(m) + 1 },
		}
		for _, s := range strategies {
			q := s.Probabilities(ctx)
			if len(q) != n {
				return false
			}
			total := 0.0
			for _, v := range q {
				if v < 0 || v > 1 {
					return false
				}
				if s.Unbiased() && v == 0 {
					return false
				}
				total += v
			}
			// Capacity respected up to the qMin floor allowance; the
			// class-balance baseline always selects at least one device,
			// so its budget floor is 1.
			budget := capacity
			if budget < 1 {
				budget = 1
			}
			if float64(n) > capacity && total > budget+0.02*float64(n)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
