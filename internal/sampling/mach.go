package sampling

import (
	"fmt"
	"math"
)

// MACHConfig parameterizes the MACH strategy.
type MACHConfig struct {
	// Alpha and Beta are the control coefficients of the transfer function
	// S(q̂) = 1 + α(1/(1+e^{β·q̂}) − 1/2) of Eq. (17). S must be positive
	// and increasing in q̂ so devices with larger estimated gradient norms
	// receive larger probabilities (Remark 2), which requires 0 < α < 2
	// and β < 0 (the paper writes the exponent as +β·q̂ and leaves the
	// signs task-specific).
	Alpha float64
	Beta  float64
	// ExplorationCoef scales the UCB confidence radius of Eq. (15).
	ExplorationCoef float64
	// QMin floors every sampling probability, preventing the q→0
	// aggregation blow-ups §III-B2 warns about.
	QMin float64
	// Discount geometrically decays the exploitation term's historical max
	// at every cloud round so the estimate tracks the current
	// gradient-norm scale; 1 reproduces Eq. (15)'s all-time max literally.
	Discount float64
	// RawEq13 disables the transfer-function smoothing (Eqs. 17-18) and
	// uses the virtual probabilities of Eq. (16) directly, clipped to
	// [QMin, 1]. §III-B2 warns this invites extreme probabilities; the
	// ablation bench quantifies the effect.
	RawEq13 bool
}

// DefaultMACHConfig returns the configuration used by the benchmarks.
func DefaultMACHConfig() MACHConfig {
	return MACHConfig{Alpha: 1.9, Beta: -2, ExplorationCoef: 1, QMin: 0.02, Discount: 0.9}
}

// Validate reports whether the configuration is usable.
func (c MACHConfig) Validate() error {
	switch {
	case c.Alpha <= 0 || c.Alpha >= 2:
		return fmt.Errorf("sampling: MACH alpha %v outside (0,2)", c.Alpha)
	case c.Beta >= 0:
		return fmt.Errorf("sampling: MACH beta %v must be negative for S to increase with q̂", c.Beta)
	case c.ExplorationCoef < 0:
		return fmt.Errorf("sampling: MACH exploration coefficient %v negative", c.ExplorationCoef)
	case c.QMin < 0 || c.QMin >= 1:
		return fmt.Errorf("sampling: MACH qmin %v outside [0,1)", c.QMin)
	case c.Discount <= 0 || c.Discount > 1:
		return fmt.Errorf("sampling: MACH discount %v outside (0,1]", c.Discount)
	}
	return nil
}

// Transfer is the smoothing transfer function S(·) of Eq. (17). It maps a
// virtual probability q̂ ∈ [0, K_n] to a score near 1, bounded in
// (1−α/2, 1+α/2), so that early, noisy estimates cannot push any device's
// probability toward 0 or dominate the edge.
func (c MACHConfig) Transfer(qHat float64) float64 {
	return 1 + c.Alpha*(1/(1+math.Exp(c.Beta*qHat))-0.5)
}

// MACH is the paper's mobility-aware device sampling strategy. Each edge
// independently computes, for the devices currently attached to it:
//
//  1. the UCB gradient-norm estimates G̃²_m (experience updating,
//     Algorithm 2),
//  2. virtual probabilities q̂_m = K_n·G̃²_m / Σ G̃²_{m'} (Eq. 16, the
//     closed-form optimum of Remark 2 under estimates),
//  3. smoothed scores S(q̂_m) (Eq. 17), and
//  4. final probabilities q_m = K_n·S(q̂_m)/Σ S(q̂_{m'}) (Eq. 18).
type MACH struct {
	cfg  MACHConfig
	book *ExperienceBook
}

var (
	_ InPlaceStrategy  = (*MACH)(nil)
	_ Observer         = (*MACH)(nil)
	_ BatchObserver    = (*MACH)(nil)
	_ Introspector     = (*MACH)(nil)
	_ ScratchEstimator = (*MACH)(nil)
	_ FloorReporter    = (*MACH)(nil)
)

// NewMACH returns a MACH strategy tracking numDevices devices.
func NewMACH(numDevices int, cfg MACHConfig) (*MACH, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MACH{cfg: cfg, book: NewExperienceBook(numDevices, cfg.ExplorationCoef, cfg.Discount)}, nil
}

// Name implements Strategy.
func (*MACH) Name() string { return "mach" }

// Unbiased implements Strategy.
func (*MACH) Unbiased() bool { return true }

// Book exposes the experience book for inspection in tests and analysis.
func (s *MACH) Book() *ExperienceBook { return s.book }

// EstimatorStats implements Introspector.
func (s *MACH) EstimatorStats() EstimatorStats { return s.book.Stats() }

// ScratchEstimates implements ScratchEstimator: ProbabilitiesInto leaves the
// UCB estimates of Eq. (15) in ctx.Scratch.
func (*MACH) ScratchEstimates() bool { return true }

// ProbFloor implements FloorReporter.
func (s *MACH) ProbFloor() float64 { return s.cfg.QMin }

// Observe implements Observer (Algorithm 2, line 1). The edge is ignored:
// MACH's experience buffer lives on the device, so experiences follow the
// device across edges.
func (s *MACH) Observe(_, _, m int, sqNorms []float64) { s.book.Observe(m, sqNorms) }

// ObserveBatch implements BatchObserver: one book lock per shard batch. The
// edges are ignored for the same reason Observe ignores its edge.
func (s *MACH) ObserveBatch(_ int, _, devices []int, norms [][]float64) {
	s.book.ObserveMany(devices, norms)
}

// CloudRound implements Observer (Algorithm 2, lines 2-4).
func (s *MACH) CloudRound(t int) { s.book.CloudRound(t) }

// Probabilities implements Strategy (Algorithm 3).
func (s *MACH) Probabilities(ctx *EdgeContext) []float64 {
	return s.ProbabilitiesInto(ctx, make([]float64, len(ctx.Members)))
}

// ProbabilitiesInto implements InPlaceStrategy: the same Algorithm 3
// pipeline with the UCB estimates batched into ctx.Scratch (one book lock
// per edge instead of one per member) and every result written into dst.
//
//machlint:allocfree
func (s *MACH) ProbabilitiesInto(ctx *EdgeContext, dst []float64) []float64 {
	estimates := ensureLen(ctx.Scratch, len(ctx.Members))
	ctx.Scratch = estimates
	s.book.UCBEstimatesInto(estimates, ctx.Members, ctx.Step)
	if s.cfg.RawEq13 {
		// Ablation path: Eq. (16) plugged in directly without smoothing.
		return capProbabilitiesInto(dst, estimates, ctx.Capacity, s.cfg.QMin)
	}
	return EdgeSamplingInto(s.cfg, ctx.Capacity, estimates, dst)
}

// EdgeSampling is the core of Algorithm 3: given the gradient-norm estimates
// of an edge's members, it computes the virtual probabilities of Eq. (16),
// smooths them with the transfer function of Eq. (17), and normalizes to the
// channel capacity (Eq. 18). It is shared by the in-process MACH strategy
// and the distributed edge server of internal/fed.
func EdgeSampling(cfg MACHConfig, capacity float64, estimates []float64) []float64 {
	return EdgeSamplingInto(cfg, capacity, estimates, make([]float64, len(estimates)))
}

// EdgeSamplingInto is EdgeSampling into a caller-owned buffer, growing it
// only when its capacity is insufficient. dst may alias estimates: the
// estimate total is accumulated before any write and each score depends only
// on its own estimate.
//
//machlint:aliasok the estimate total is accumulated before any write and dst[i] depends only on estimates[i]
//
//machlint:allocfree
func EdgeSamplingInto(cfg MACHConfig, capacity float64, estimates, dst []float64) []float64 {
	total := 0.0
	for _, g := range estimates {
		total += g
	}
	dst = ensureLen(dst, len(estimates))
	for i, g := range estimates {
		qHat := 0.0
		if total > 0 {
			qHat = capacity * g / total // Eq. (16)
		}
		dst[i] = cfg.Transfer(qHat) // Eq. (17)
	}
	return capProbabilitiesInto(dst, dst, capacity, cfg.QMin) // Eq. (18)
}
