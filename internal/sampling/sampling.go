// Package sampling implements the device-sampling strategies of the
// evaluation: the paper's MACH algorithm (upper-confidence-bound experience
// updating, Algorithm 2, plus smoothed edge sampling, Algorithm 3), its
// perfect-information variant MACH-P, and the three baselines — uniform
// sampling (US), class-balance sampling (CS, Fed-CBS style) and statistical
// sampling (SS, gradient-norm proportional).
//
// A Strategy computes, independently for every edge and time step, the
// sampling probability q^t_{m,n} of each device currently attached to the
// edge, subject to the expected channel capacity E[Σ_m 1^t_{m,n}] ≤ K_n
// (Eq. 3). Strategies that learn from training experiences additionally
// implement Observer and receive the squared norms of every local stochastic
// gradient computed by the devices they sampled.
package sampling

import (
	"math"
	"math/rand"
)

// EdgeContext carries everything a strategy may use when customizing the
// sampling strategy of one edge at one time step.
type EdgeContext struct {
	// Step is the current time step t.
	Step int
	// Edge is the edge index n.
	Edge int
	// Capacity is K_n, the expected number of devices the edge channel
	// supports per step (Eq. 3).
	Capacity float64
	// Members is M^t_n, the devices currently attached to the edge.
	Members []int
	// ClassDist returns the label distribution of a device's local data;
	// class-balance sampling uses it. May be nil for strategies that do
	// not need it.
	ClassDist func(m int) []float64
	// ProbeGradNorm measures the true squared stochastic-gradient norm
	// ‖g_m(w^t, ξ)‖² of device m under the current edge model. It is
	// expensive (a full forward/backward pass) and only oracle strategies
	// use it. Nil when the engine does not support probing.
	ProbeGradNorm func(m int) float64
	// RNG is the edge's deterministic randomness source for this step.
	RNG *rand.Rand
	// Scratch is an optional caller-owned float buffer strategies may use
	// for intermediate per-member values (estimates, scores). Strategies
	// that grow it store the grown slice back here, so a pooled context
	// amortizes the allocation across steps. Contexts must not be shared
	// across concurrently-deciding edges.
	Scratch []float64
}

// Strategy computes per-edge device sampling probabilities.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Probabilities returns q^t_{m,n} for each member, aligned with
	// ctx.Members. Probabilities are in [0, 1] and the vector respects
	// Σ q ≤ K_n whenever len(Members) ≥ K_n. Strategies for which Unbiased
	// returns true keep every probability strictly positive, since the
	// aggregation weights of Eq. (5) are 1/q.
	Probabilities(ctx *EdgeContext) []float64
	// Unbiased reports whether edge aggregation should use the
	// inverse-probability weights of Eq. (5) (true) or a plain average
	// over the sampled devices (false, used by the actively-selecting
	// class-balance baseline).
	Unbiased() bool
}

// InPlaceStrategy is the allocation-free fast path: ProbabilitiesInto
// computes the same vector as Probabilities — bit-identically — into a
// caller-owned buffer, growing it only when its capacity is insufficient,
// and may use ctx.Scratch for intermediates. The engine's per-step hot loop
// uses it when available and falls back to Probabilities otherwise.
type InPlaceStrategy interface {
	Strategy
	ProbabilitiesInto(ctx *EdgeContext, dst []float64) []float64
}

// Introspector is implemented by strategies whose estimator can report
// exploration health (never-pulled counts, pull concentration). The engine
// records the stats through its telemetry sink at cloud rounds; they are
// observations only and never feed back into sampling.
type Introspector interface {
	EstimatorStats() EstimatorStats
}

// ScratchEstimator marks strategies whose ProbabilitiesInto leaves the
// per-member estimates that produced the probabilities in ctx.Scratch,
// aligned with ctx.Members and valid until the context's next use. The
// engine's trace sink reads them to record complete sampling decisions
// without recomputing estimates.
type ScratchEstimator interface {
	ScratchEstimates() bool
}

// FloorReporter is implemented by strategies that clamp probabilities to a
// floor; telemetry uses it to count floor/ceiling clamp events without
// hard-coding strategy internals.
type FloorReporter interface {
	ProbFloor() float64
}

// ensureLen returns dst resized to n, reallocating only when cap(dst) < n.
// Contents are unspecified; callers overwrite every element.
func ensureLen(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// Observer is implemented by strategies that learn from training
// experiences (MACH's experience updating, and statistical sampling's
// last-observation estimates). The edge at which the experience was produced
// is reported so strategies can choose where knowledge lives: MACH keeps the
// buffer on the *device* (experiences travel with it across edges — the
// paper's answer to whether experiences can be shared across edges), while
// the naive statistical baseline keeps them on the *edge* and therefore
// forgets devices that move.
type Observer interface {
	// Observe records the squared norms of the I local stochastic
	// gradients device m computed during time step t while attached to
	// the given edge (Algorithm 2, line 1).
	Observe(t, edge, m int, sqNorms []float64)
	// CloudRound runs at every edge-to-cloud communication step
	// (t mod T_g == 0): estimates are refreshed and experience buffers
	// cleared (Algorithm 2, lines 2-4).
	CloudRound(t int)
}

// BatchObserver is an optional extension of Observer for sharded control
// planes: ObserveBatch records a whole run of one step's observations —
// edges[i], devices[i], norms[i] aligned — in one call, equivalent to the
// same sequence of Observe(t, edges[i], devices[i], norms[i]) calls but
// without per-observation lock traffic. The engine buffers each shard's
// observations during the step and merges them at the step's collect point
// in edge order, so a BatchObserver sees exactly the observation sequence
// the serial engine produced; strategies without it get the per-call replay.
type BatchObserver interface {
	Observer
	ObserveBatch(t int, edges, devices []int, norms [][]float64)
}

// capProbabilities scales raw non-negative scores to sampling probabilities
// with Σ q ≤ capacity and q ∈ [floor, 1]. Scores must not be all zero; a
// uniform fallback is used if they are.
func capProbabilities(scores []float64, capacity, floor float64) []float64 {
	return capProbabilitiesInto(make([]float64, len(scores)), scores, capacity, floor)
}

// capProbabilitiesInto is capProbabilities into a caller-owned buffer. dst
// may alias scores: the total is accumulated before any write, and out[i]
// depends only on scores[i] and the total.
//
//machlint:aliasok the score total is accumulated before any write and dst[i] depends only on scores[i]
//
//machlint:allocfree
func capProbabilitiesInto(dst, scores []float64, capacity, floor float64) []float64 {
	n := len(scores)
	dst = ensureLen(dst, n)
	if n == 0 {
		return dst
	}
	if capacity >= float64(n) {
		for i := range dst {
			dst[i] = 1
		}
		return dst
	}
	total := 0.0
	for _, s := range scores {
		total += s
	}
	if total <= 0 {
		q := capacity / float64(n)
		for i := range dst {
			dst[i] = clampProb(q, floor)
		}
		return dst
	}
	for i, s := range scores {
		dst[i] = clampProb(capacity*s/total, floor)
	}
	return dst
}

func clampProb(q, floor float64) float64 {
	if q < floor {
		q = floor
	}
	if q > 1 {
		q = 1
	}
	return q
}

// OptimalProbabilities is the closed-form minimizer of the convergence
// bound's Σ_m G²_m/q_m term under Σ q_m ≤ K_n, ignoring the [0,1] box
// constraints: the Lagrange condition −G²_m/q² + λ = 0 gives
// q*_m = K_n·G_m / Σ G_{m'} (proportional to the norm, not its square).
//
// Note the paper's Eq. (13) states q* ∝ G²_m; that expression does not
// minimize Σ G²/q (substitute both and compare), so we expose the true
// minimizer here for analysis while the MACH strategy itself implements the
// paper's Eq. (16) literally — see PaperVirtualProbabilities and DESIGN.md.
func OptimalProbabilities(capacity float64, sqNorms []float64) []float64 {
	out := make([]float64, len(sqNorms))
	total := 0.0
	for _, g := range sqNorms {
		total += math.Sqrt(g)
	}
	if total <= 0 {
		for i := range out {
			out[i] = capacity / float64(len(sqNorms))
		}
		return out
	}
	for i, g := range sqNorms {
		out[i] = capacity * math.Sqrt(g) / total
	}
	return out
}

// PaperVirtualProbabilities is the paper's Eq. (13)/(16) literally:
// q̂_m = K_n·G²_m / Σ G²_{m'}. MACH's edge sampling feeds this through the
// transfer function of Eq. (17); the ablation benches compare it against the
// exact minimizer OptimalProbabilities.
func PaperVirtualProbabilities(capacity float64, sqNorms []float64) []float64 {
	out := make([]float64, len(sqNorms))
	total := 0.0
	for _, g := range sqNorms {
		total += g
	}
	if total <= 0 {
		for i := range out {
			out[i] = capacity / float64(len(sqNorms))
		}
		return out
	}
	for i, g := range sqNorms {
		out[i] = capacity * g / total
	}
	return out
}

// VarianceTerm evaluates Σ_m G²_m/q_m, the sampling-dependent term of the
// convergence bound (Theorem 1) for one edge. It is the objective the
// optimal strategy of Eq. (13) minimizes; analysis code and tests use it to
// compare strategies.
func VarianceTerm(sqNorms, probs []float64) float64 {
	s := 0.0
	for i, g := range sqNorms {
		if probs[i] <= 0 {
			return math.Inf(1)
		}
		s += g / probs[i]
	}
	return s
}

// Uniform is the uniform-sampling baseline (US): every device in the edge is
// sampled with the same probability K_n/|M^t_n| [Li et al., ICLR 2020].
type Uniform struct{}

var _ InPlaceStrategy = (*Uniform)(nil)

// NewUniform returns the uniform sampling baseline.
func NewUniform() *Uniform { return &Uniform{} }

// Name implements Strategy.
func (*Uniform) Name() string { return "uniform" }

// Unbiased implements Strategy.
func (*Uniform) Unbiased() bool { return true }

// Probabilities implements Strategy.
func (u *Uniform) Probabilities(ctx *EdgeContext) []float64 {
	return u.ProbabilitiesInto(ctx, make([]float64, len(ctx.Members)))
}

// ProbabilitiesInto implements InPlaceStrategy.
func (*Uniform) ProbabilitiesInto(ctx *EdgeContext, dst []float64) []float64 {
	dst = ensureLen(dst, len(ctx.Members))
	for i := range dst {
		dst[i] = 1
	}
	return capProbabilitiesInto(dst, dst, ctx.Capacity, 0)
}
