package sampling

import (
	"fmt"
	"math"
	"sync"
)

// OortConfig parameterizes the Oort-style utility sampler.
type OortConfig struct {
	// ExplorationFraction is the share of the capacity reserved for
	// devices the sampler has never trained.
	ExplorationFraction float64
	// StalenessCoef scales the staleness bonus √(log t / last-seen age).
	StalenessCoef float64
	// OutlierQuantile caps utilities at this quantile of the currently
	// observed utilities (Oort's outlier-robustness mechanism).
	OutlierQuantile float64
	// QMin floors the probabilities like the other strategies.
	QMin float64
}

// DefaultOortConfig mirrors the reference system's defaults.
func DefaultOortConfig() OortConfig {
	return OortConfig{
		ExplorationFraction: 0.2,
		StalenessCoef:       1,
		OutlierQuantile:     0.95,
		QMin:                0.02,
	}
}

// Validate reports whether the config is usable.
func (c OortConfig) Validate() error {
	switch {
	case c.ExplorationFraction < 0 || c.ExplorationFraction > 1:
		return fmt.Errorf("sampling: oort exploration fraction %v outside [0,1]", c.ExplorationFraction)
	case c.StalenessCoef < 0:
		return fmt.Errorf("sampling: oort staleness coefficient %v negative", c.StalenessCoef)
	case c.OutlierQuantile <= 0 || c.OutlierQuantile > 1:
		return fmt.Errorf("sampling: oort outlier quantile %v outside (0,1]", c.OutlierQuantile)
	case c.QMin < 0 || c.QMin >= 1:
		return fmt.Errorf("sampling: oort qmin %v outside [0,1)", c.QMin)
	}
	return nil
}

// Oort is an extension strategy beyond the paper's benchmark set: the
// utility-based participant selection of Lai et al. (OSDI 2021) adapted to
// per-edge sampling. Utility is the observed gradient-norm signal with a
// staleness bonus, clipped at a quantile to resist outlier (noisy-label)
// devices — the robustness mechanism MACH achieves through its bounded
// transfer function. Like MACH, its state is device-side, so it survives
// mobility; it differs in the exploration budget and the outlier clipping.
type Oort struct {
	cfg OortConfig

	mu       sync.Mutex
	utility  []float64
	lastSeen []int
	seen     []bool
}

var (
	_ Strategy = (*Oort)(nil)
	_ Observer = (*Oort)(nil)
)

// NewOort returns the Oort-style extension strategy.
func NewOort(numDevices int, cfg OortConfig) (*Oort, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Oort{
		cfg:      cfg,
		utility:  make([]float64, numDevices),
		lastSeen: make([]int, numDevices),
		seen:     make([]bool, numDevices),
	}, nil
}

// Name implements Strategy.
func (*Oort) Name() string { return "oort" }

// Unbiased implements Strategy: Oort is an active-selection system with
// plain aggregation over participants.
func (*Oort) Unbiased() bool { return false }

// Observe implements Observer: utility is the mean observed squared norm,
// exponentially averaged.
func (o *Oort) Observe(t, _, m int, sqNorms []float64) {
	if len(sqNorms) == 0 {
		return
	}
	avg := 0.0
	for _, v := range sqNorms {
		avg += v
	}
	avg /= float64(len(sqNorms))
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.seen[m] {
		o.utility[m] = 0.7*o.utility[m] + 0.3*avg
	} else {
		o.utility[m] = avg
		o.seen[m] = true
	}
	o.lastSeen[m] = t
}

// CloudRound implements Observer (no round-boundary state).
func (*Oort) CloudRound(int) {}

// Probabilities implements Strategy.
func (o *Oort) Probabilities(ctx *EdgeContext) []float64 {
	o.mu.Lock()
	defer o.mu.Unlock()

	n := len(ctx.Members)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	k := int(ctx.Capacity + 0.5)
	if k < 1 {
		k = 1
	}
	if k >= n {
		for i := range out {
			out[i] = 1
		}
		return out
	}

	// Split members into explored and unexplored.
	var explored, unexplored []int // indices into ctx.Members
	for i, m := range ctx.Members {
		if o.seen[m] {
			explored = append(explored, i)
		} else {
			unexplored = append(unexplored, i)
		}
	}

	// Exploration budget: uniformly random unexplored devices.
	explCount := int(float64(k)*o.cfg.ExplorationFraction + 0.5)
	if explCount > len(unexplored) {
		explCount = len(unexplored)
	}
	for _, idx := range ctx.RNG.Perm(len(unexplored))[:explCount] {
		out[unexplored[idx]] = 1
	}

	// Exploitation: top-(k−explCount) explored devices by clipped utility
	// plus staleness bonus.
	exploit := k - explCount
	if exploit <= 0 || len(explored) == 0 {
		return out
	}
	cap95 := o.clipLevel(explored, ctx.Members)
	type scored struct {
		idx   int
		score float64
	}
	scores := make([]scored, 0, len(explored))
	for _, i := range explored {
		m := ctx.Members[i]
		u := o.utility[m]
		if u > cap95 {
			u = cap95
		}
		age := ctx.Step - o.lastSeen[m]
		if age < 1 {
			age = 1
		}
		u += o.cfg.StalenessCoef * math.Sqrt(math.Log(float64(ctx.Step+2))/float64(age))
		scores = append(scores, scored{idx: i, score: u})
	}
	// Partial selection of the top `exploit` scores.
	for sel := 0; sel < exploit && sel < len(scores); sel++ {
		best := sel
		for j := sel + 1; j < len(scores); j++ {
			if scores[j].score > scores[best].score {
				best = j
			}
		}
		scores[sel], scores[best] = scores[best], scores[sel]
		out[scores[sel].idx] = 1
	}
	return out
}

// clipLevel returns the configured quantile of the explored members'
// utilities.
func (o *Oort) clipLevel(explored []int, members []int) float64 {
	vals := make([]float64, 0, len(explored))
	for _, i := range explored {
		vals = append(vals, o.utility[members[i]])
	}
	// insertion sort: member lists are small
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	idx := int(o.cfg.OutlierQuantile * float64(len(vals)-1))
	return vals[idx]
}
