package sampling

import (
	"fmt"
	"sync"

	"github.com/mach-fl/mach/internal/det"
)

// Statistical is the statistical-sampling baseline (SS): device probabilities
// proportional to the most recently observed average gradient norm, the
// importance/utility sampling rule of Cho et al. (AISTATS 2022) and Oort
// (OSDI 2021) applied per edge. Two deliberate differences from MACH mirror
// how such samplers behave when dropped into HFL with mobile devices:
//
//   - estimates live on the *edge* that observed them (a server-side utility
//     table, as in Oort). When a device moves to another edge it arrives
//     with no record and is scored by the prior, so mobility continually
//     erodes the estimator — the cross-edge experience-sharing problem the
//     paper poses in §I;
//   - there is no confidence radius (no exploration) and no transfer-
//     function smoothing, so early noisy observations feed straight into
//     the probabilities.
type Statistical struct {
	mu    sync.Mutex
	books map[int]*ExperienceBook // per-edge experience tables

	numDevices int
	// priorNorm seeds devices the edge has never observed; with every
	// device at the prior the strategy starts uniform.
	priorNorm float64
	qMin      float64
}

var (
	_ InPlaceStrategy  = (*Statistical)(nil)
	_ Observer         = (*Statistical)(nil)
	_ ScratchEstimator = (*Statistical)(nil)
	_ FloorReporter    = (*Statistical)(nil)
)

// NewStatistical returns the statistical sampling baseline. qMin floors the
// probabilities exactly as in MACH so the comparison isolates the estimator
// and smoothing, not numerical guards.
func NewStatistical(numDevices int, qMin float64) (*Statistical, error) {
	if qMin < 0 || qMin >= 1 {
		return nil, fmt.Errorf("sampling: statistical qmin %v outside [0,1)", qMin)
	}
	return &Statistical{
		books:      make(map[int]*ExperienceBook),
		numDevices: numDevices,
		priorNorm:  1,
		qMin:       qMin,
	}, nil
}

// Name implements Strategy.
func (*Statistical) Name() string { return "statistical" }

// Unbiased implements Strategy.
func (*Statistical) Unbiased() bool { return true }

// ScratchEstimates implements ScratchEstimator: ProbabilitiesInto leaves the
// last-window-average norm estimates in ctx.Scratch.
func (*Statistical) ScratchEstimates() bool { return true }

// ProbFloor implements FloorReporter.
func (s *Statistical) ProbFloor() float64 { return s.qMin }

func (s *Statistical) book(edge int) *ExperienceBook {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.books[edge]
	if !ok {
		b = NewExperienceBook(s.numDevices, 0, 1)
		s.books[edge] = b
	}
	return b
}

// Observe implements Observer: the experience is recorded only on the edge
// that produced it.
func (s *Statistical) Observe(_, edge, m int, sqNorms []float64) {
	s.book(edge).Observe(m, sqNorms)
}

// CloudRound implements Observer.
func (s *Statistical) CloudRound(t int) {
	s.mu.Lock()
	books := make([]*ExperienceBook, 0, len(s.books))
	for _, edge := range det.SortedKeys(s.books) {
		books = append(books, s.books[edge])
	}
	s.mu.Unlock()
	for _, b := range books {
		b.CloudRound(t)
	}
}

// Probabilities implements Strategy: q ∝ last observed window-average norm
// at this edge (Eq. 13 with plug-in estimates), clipped to [qMin, 1] and
// scaled to the capacity. Devices the edge has never trained score the
// prior.
func (s *Statistical) Probabilities(ctx *EdgeContext) []float64 {
	return s.ProbabilitiesInto(ctx, make([]float64, len(ctx.Members)))
}

// ProbabilitiesInto implements InPlaceStrategy.
func (s *Statistical) ProbabilitiesInto(ctx *EdgeContext, dst []float64) []float64 {
	b := s.book(ctx.Edge)
	scores := ensureLen(ctx.Scratch, len(ctx.Members))
	ctx.Scratch = scores
	for i, m := range ctx.Members {
		scores[i] = b.LastAverage(m, s.priorNorm)
	}
	return capProbabilitiesInto(dst, scores, ctx.Capacity, s.qMin)
}
