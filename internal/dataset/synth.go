package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// TaskSpec describes a synthetic class-conditional image task. Each class c
// has a fixed prototype image P_c; a sample of class c is P_c + ε with
// ε ~ N(0, 1) i.i.d. per pixel. Prototypes are drawn once per task seed as
//
//	P_c = s·(√(1−Overlap)·U_c + √(Overlap)·S)
//
// where U_c is a class-unique random image, S a shared random image, and the
// scale s is chosen so that the expected pairwise discriminant z-score
// ‖P_a−P_b‖/2 equals Sep regardless of resolution or Overlap. Sep therefore
// controls the task's Bayes-achievable accuracy directly: larger Sep means an
// easier task. The MNIST→FMNIST→CIFAR-10 difficulty ordering of the paper is
// realised with decreasing Sep values.
type TaskSpec struct {
	Name    string
	InC     int
	InH     int
	InW     int
	Classes int
	// Sep is the expected pairwise class-separation z-score; the optimal
	// (nearest-prototype) classifier confuses a fixed pair of classes with
	// probability ≈ Φ(−Sep).
	Sep float64
	// Overlap in [0,1) mixes a component shared by all classes into every
	// prototype, shaping inter-class correlation without changing Sep.
	Overlap float64
	// ProtoSeed fixes the class prototypes so that train and test sets of
	// the same task agree on what each class looks like.
	ProtoSeed int64
}

// Validate reports whether the spec is usable.
func (s TaskSpec) Validate() error {
	switch {
	case s.InC <= 0 || s.InH <= 0 || s.InW <= 0:
		return fmt.Errorf("dataset: task %q has non-positive dims", s.Name)
	case s.Classes < 2:
		return fmt.Errorf("dataset: task %q needs ≥ 2 classes", s.Name)
	case s.Sep <= 0:
		return fmt.Errorf("dataset: task %q has non-positive separation", s.Name)
	case s.Overlap < 0 || s.Overlap >= 1:
		return fmt.Errorf("dataset: task %q overlap %v outside [0,1)", s.Name, s.Overlap)
	}
	return nil
}

// MNISTLike is the easiest task: single channel, well-separated classes. It
// plays the role of MNIST in the evaluation.
func MNISTLike(inH, inW int) TaskSpec {
	return TaskSpec{
		Name: "mnistlike", InC: 1, InH: inH, InW: inW, Classes: 10,
		Sep: 2.8, Overlap: 0.15, ProtoSeed: 101,
	}
}

// FMNISTLike is a harder single-channel task with more confusable classes,
// playing the role of Fashion-MNIST.
func FMNISTLike(inH, inW int) TaskSpec {
	return TaskSpec{
		Name: "fmnistlike", InC: 1, InH: inH, InW: inW, Classes: 10,
		Sep: 2.1, Overlap: 0.45, ProtoSeed: 202,
	}
}

// CIFAR10Like is the hardest task: three channels, strongly overlapping
// low-SNR classes, playing the role of CIFAR-10.
func CIFAR10Like(inH, inW int) TaskSpec {
	return TaskSpec{
		Name: "cifar10like", InC: 3, InH: inH, InW: inW, Classes: 10,
		Sep: 1.6, Overlap: 0.65, ProtoSeed: 303,
	}
}

// Task is an instantiated synthetic task: the spec plus its realized class
// prototypes. A single Task generates arbitrarily many train/test samples
// with consistent class semantics.
type Task struct {
	Spec       TaskSpec
	prototypes [][]float64 // [Classes][InC*InH*InW]
}

// NewTask realizes the class prototypes of a spec.
func NewTask(spec TaskSpec) (*Task, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.ProtoSeed))
	n := spec.InC * spec.InH * spec.InW
	shared := make([]float64, n)
	for i := range shared {
		shared[i] = rng.NormFloat64()
	}
	// E‖P_a−P_b‖² = 2(1−Overlap)·n·s², so s = 2·Sep / √(2(1−Overlap)·n)
	// yields E‖P_a−P_b‖/2 ≈ Sep under unit per-pixel noise.
	scale := 2 * spec.Sep / math.Sqrt(2*(1-spec.Overlap)*float64(n))
	wuniq := scale * math.Sqrt(1-spec.Overlap)
	wshared := scale * math.Sqrt(spec.Overlap)
	protos := make([][]float64, spec.Classes)
	for c := range protos {
		p := make([]float64, n)
		for i := range p {
			p[i] = wuniq*rng.NormFloat64() + wshared*shared[i]
		}
		protos[c] = p
	}
	return &Task{Spec: spec, prototypes: protos}, nil
}

// Prototype returns the prototype image of class c (shared storage).
func (t *Task) Prototype(c int) []float64 { return t.prototypes[c] }

// Sample draws one image of class c.
func (t *Task) Sample(rng *rand.Rand, c int) []float64 {
	p := t.prototypes[c]
	img := make([]float64, len(p))
	for i := range img {
		img[i] = p[i] + rng.NormFloat64()
	}
	return img
}

// Generate draws n samples whose labels follow the given class distribution
// (defaulting to uniform when classDist is nil).
func (t *Task) Generate(rng *rand.Rand, n int, classDist []float64) (*Dataset, error) {
	if classDist != nil && len(classDist) != t.Spec.Classes {
		return nil, fmt.Errorf("dataset: class distribution has %d entries, want %d", len(classDist), t.Spec.Classes)
	}
	d := NewDataset(t.Spec.Name, t.Spec.InC, t.Spec.InH, t.Spec.InW, t.Spec.Classes)
	for i := 0; i < n; i++ {
		var c int
		if classDist == nil {
			c = rng.Intn(t.Spec.Classes)
		} else {
			c = SampleClass(rng, classDist)
		}
		if err := d.Append(t.Sample(rng, c), c); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// SampleClass draws a class index from a (not necessarily normalized)
// non-negative weight vector.
func SampleClass(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	acc := 0.0
	for c, w := range weights {
		acc += w
		if u < acc {
			return c
		}
	}
	return len(weights) - 1
}
