// Package dataset provides the learning tasks of the evaluation: synthetic
// class-conditional image datasets standing in for MNIST, FMNIST and
// CIFAR-10, plus the long-tailed non-IID partitioning across mobile devices
// that the paper's experiment section describes.
//
// The real datasets are not required: device sampling interacts with the
// *label* heterogeneity of devices and with the gradient-norm spread it
// induces, not with pixel semantics. The three synthetic tasks are ordered in
// difficulty exactly as the paper's tasks are (MNIST < FMNIST < CIFAR-10),
// which preserves the relative shapes of every figure (see DESIGN.md §1).
package dataset

import (
	"fmt"
	"math/rand"

	"github.com/mach-fl/mach/internal/tensor"
)

// Dataset is an in-memory labelled image dataset. Images are stored as flat
// float64 slices of length InC·InH·InW.
type Dataset struct {
	Name    string
	InC     int
	InH     int
	InW     int
	Classes int

	images [][]float64
	labels []int
}

// NewDataset returns an empty dataset with the given geometry.
func NewDataset(name string, inC, inH, inW, classes int) *Dataset {
	return &Dataset{Name: name, InC: inC, InH: inH, InW: inW, Classes: classes}
}

// Append adds one sample. The image slice is retained, not copied.
func (d *Dataset) Append(image []float64, label int) error {
	if len(image) != d.SampleLen() {
		return fmt.Errorf("dataset: image length %d, want %d", len(image), d.SampleLen())
	}
	if label < 0 || label >= d.Classes {
		return fmt.Errorf("dataset: label %d out of range [0,%d)", label, d.Classes)
	}
	d.images = append(d.images, image)
	d.labels = append(d.labels, label)
	return nil
}

// SampleLen returns the flat length of one image.
func (d *Dataset) SampleLen() int { return d.InC * d.InH * d.InW }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.images) }

// Label returns the label of sample i.
func (d *Dataset) Label(i int) int { return d.labels[i] }

// Image returns the raw image of sample i (shared storage).
func (d *Dataset) Image(i int) []float64 { return d.images[i] }

// Batch assembles the samples at the given indices into a [B, InC, InH, InW]
// tensor and a label slice.
func (d *Dataset) Batch(indices []int) (*tensor.Tensor, []int) {
	b := len(indices)
	x := tensor.New(b, d.InC, d.InH, d.InW)
	labels := make([]int, b)
	sl := d.SampleLen()
	for i, idx := range indices {
		copy(x.Data()[i*sl:(i+1)*sl], d.images[idx])
		labels[i] = d.labels[idx]
	}
	return x, labels
}

// BatchInto assembles the samples at the given indices into caller-owned
// buffers. x must be [len(indices), InC, InH, InW] and labels must have
// length len(indices); both are fully overwritten. The hot path keeps one
// pair of buffers per device so every local step reuses the same storage.
//
//machlint:noalias labels,indices
func (d *Dataset) BatchInto(x *tensor.Tensor, labels []int, indices []int) {
	b := len(indices)
	sl := d.SampleLen()
	if x.Len() != b*sl || len(labels) != b {
		panic(fmt.Sprintf("dataset: BatchInto buffers (%d elems, %d labels) do not fit %d samples of length %d",
			x.Len(), len(labels), b, sl))
	}
	for i, idx := range indices {
		copy(x.Data()[i*sl:(i+1)*sl], d.images[idx])
		labels[i] = d.labels[idx]
	}
}

// RandomBatch draws a uniform random minibatch of the given size with
// replacement, matching the ξ sampling of the local update rule (Eq. 4).
func (d *Dataset) RandomBatch(rng *rand.Rand, size int) (*tensor.Tensor, []int) {
	x := tensor.New(size, d.InC, d.InH, d.InW)
	labels := make([]int, size)
	d.RandomBatchInto(rng, x, labels, make([]int, size))
	return x, labels
}

// RandomBatchInto is RandomBatch writing into caller-owned buffers. idx is
// index scratch of length equal to the batch size; the RNG draws exactly one
// Intn per sample in slot order, identical to RandomBatch.
//
//machlint:noalias labels,idx
func (d *Dataset) RandomBatchInto(rng *rand.Rand, x *tensor.Tensor, labels, idx []int) {
	for i := range idx {
		idx[i] = rng.Intn(len(d.images))
	}
	d.BatchInto(x, labels, idx)
}

// All returns the entire dataset as one batch.
func (d *Dataset) All() (*tensor.Tensor, []int) {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return d.Batch(idx)
}

// ClassHistogram returns the sample count of each class.
func (d *Dataset) ClassHistogram() []int {
	h := make([]int, d.Classes)
	for _, l := range d.labels {
		h[l]++
	}
	return h
}

// ClassDistribution returns the empirical label distribution.
func (d *Dataset) ClassDistribution() []float64 {
	h := d.ClassHistogram()
	out := make([]float64, d.Classes)
	if d.Len() == 0 {
		return out
	}
	inv := 1.0 / float64(d.Len())
	for c, n := range h {
		out[c] = float64(n) * inv
	}
	return out
}

// Subset returns a view over the samples at the given indices. Image storage
// is shared with the parent dataset.
func (d *Dataset) Subset(name string, indices []int) *Dataset {
	sub := NewDataset(name, d.InC, d.InH, d.InW, d.Classes)
	sub.images = make([][]float64, len(indices))
	sub.labels = make([]int, len(indices))
	for i, idx := range indices {
		sub.images[i] = d.images[idx]
		sub.labels[i] = d.labels[idx]
	}
	return sub
}
