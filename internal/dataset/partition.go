package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// LongTailed returns the long-tailed label law p(c) ∝ ratio^c over the given
// number of classes, the distribution family the paper uses for both the
// global data and the per-device data. ratio ∈ (0,1]; ratio = 1 degenerates
// to uniform, smaller ratios are more imbalanced.
func LongTailed(classes int, ratio float64) []float64 {
	p := make([]float64, classes)
	total := 0.0
	for c := range p {
		p[c] = math.Pow(ratio, float64(c))
		total += p[c]
	}
	for c := range p {
		p[c] /= total
	}
	return p
}

// PartitionConfig controls the non-IID device partition of a task.
type PartitionConfig struct {
	// Devices is the number of mobile devices.
	Devices int
	// SamplesPerDevice is the local dataset size |D_m| (the paper assumes
	// it equal across devices).
	SamplesPerDevice int
	// SizeSpread, when positive, draws each device's dataset size from a
	// log-normal around SamplesPerDevice with this σ — the general
	// weighted-average setting the paper simplifies away (§II-B). Engines
	// weight plain aggregation by |D_m| when sizes differ.
	SizeSpread float64
	// TailRatio is the long-tail decay of each device's local label law.
	TailRatio float64
	// NoisyDeviceFraction is the fraction of devices whose labels are
	// partially corrupted (label noise), modelling the unreliable clients
	// real federated populations contain. A corrupted device keeps
	// permanently large gradient norms while providing conflicting
	// updates, which is exactly the failure mode utility-based samplers
	// must be robust to (cf. Oort's outlier handling).
	NoisyDeviceFraction float64
	// NoisyLabelFraction is the fraction of a noisy device's samples whose
	// label is replaced with a uniformly random class.
	NoisyLabelFraction float64
	// GlobalTailRatio is the long-tail decay of the *global* label law:
	// each device's dominant class is drawn from LongTailed(classes,
	// GlobalTailRatio), so rare classes are held by few devices — the
	// paper's "both the global and the devices' data distribution follow a
	// long-tailed distribution". Zero or one means a uniform global law
	// (dominant classes spread evenly).
	GlobalTailRatio float64
	// Seed drives the random class permutations and the sampling.
	Seed int64
}

// Validate reports whether the partition config is usable.
func (c PartitionConfig) Validate() error {
	switch {
	case c.Devices <= 0:
		return fmt.Errorf("dataset: partition needs ≥ 1 device, got %d", c.Devices)
	case c.SamplesPerDevice <= 0:
		return fmt.Errorf("dataset: partition needs ≥ 1 sample per device, got %d", c.SamplesPerDevice)
	case c.TailRatio <= 0 || c.TailRatio > 1:
		return fmt.Errorf("dataset: tail ratio %v outside (0,1]", c.TailRatio)
	case c.GlobalTailRatio < 0 || c.GlobalTailRatio > 1:
		return fmt.Errorf("dataset: global tail ratio %v outside [0,1]", c.GlobalTailRatio)
	case c.NoisyDeviceFraction < 0 || c.NoisyDeviceFraction > 1:
		return fmt.Errorf("dataset: noisy device fraction %v outside [0,1]", c.NoisyDeviceFraction)
	case c.NoisyLabelFraction < 0 || c.NoisyLabelFraction > 1:
		return fmt.Errorf("dataset: noisy label fraction %v outside [0,1]", c.NoisyLabelFraction)
	case c.SizeSpread < 0:
		return fmt.Errorf("dataset: size spread %v negative", c.SizeSpread)
	}
	return nil
}

// Partition draws one local dataset per device. Each device's label law is
// the long-tailed distribution under a device-specific random permutation of
// the classes, so each device has a few dominant classes and a long tail of
// rare ones — the statistical-heterogeneity model of the evaluation
// ("both the global and the devices' data distribution follow a long-tailed
// distribution", §IV-A2). The initial edge distribution is whatever device
// mobility induces, i.e. random, also as in the paper.
//
// The returned slice additionally carries each device's realized label law
// via Dataset.ClassDistribution.
func Partition(task *Task, cfg PartitionConfig) ([]*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	classes := task.Spec.Classes
	base := LongTailed(classes, cfg.TailRatio)
	var globalLaw []float64
	if cfg.GlobalTailRatio > 0 && cfg.GlobalTailRatio < 1 {
		globalLaw = LongTailed(classes, cfg.GlobalTailRatio)
	}
	out := make([]*Dataset, cfg.Devices)
	for m := range out {
		// Device class ranking: the dominant class is drawn from the
		// global law (rare classes dominate few devices), the remaining
		// classes are shuffled behind it.
		perm := rng.Perm(classes)
		if globalLaw != nil {
			dominant := SampleClass(rng, globalLaw)
			for i, c := range perm {
				if c == dominant {
					perm[0], perm[i] = perm[i], perm[0]
					break
				}
			}
		}
		law := make([]float64, classes)
		for c, p := range perm {
			law[p] = base[c]
		}
		size := cfg.SamplesPerDevice
		if cfg.SizeSpread > 0 {
			size = int(float64(cfg.SamplesPerDevice) * math.Exp(rng.NormFloat64()*cfg.SizeSpread))
			if size < 1 {
				size = 1
			}
		}
		d, err := task.Generate(rng, size, law)
		if err != nil {
			return nil, fmt.Errorf("dataset: device %d: %w", m, err)
		}
		if cfg.NoisyDeviceFraction > 0 && rng.Float64() < cfg.NoisyDeviceFraction {
			corruptLabels(rng, d, cfg.NoisyLabelFraction)
		}
		d.Name = fmt.Sprintf("%s-dev%d", task.Spec.Name, m)
		out[m] = d
	}
	return out, nil
}

// corruptLabels replaces the given fraction of a dataset's labels with
// uniformly random classes.
func corruptLabels(rng *rand.Rand, d *Dataset, fraction float64) {
	for i := 0; i < d.Len(); i++ {
		if rng.Float64() < fraction {
			d.labels[i] = rng.Intn(d.Classes)
		}
	}
}

// DirichletPartition draws one local dataset per device with label laws
// sampled from a symmetric Dirichlet(α) distribution — the other standard
// non-IID partition in the FL literature (Hsu et al., 2019). Small α gives
// near-one-class devices; large α approaches IID. It complements the paper's
// long-tailed scheme for sensitivity studies.
func DirichletPartition(task *Task, devices, samplesPerDevice int, alpha float64, seed int64) ([]*Dataset, error) {
	if devices <= 0 || samplesPerDevice <= 0 {
		return nil, fmt.Errorf("dataset: dirichlet partition needs positive devices/samples")
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("dataset: dirichlet alpha %v must be positive", alpha)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Dataset, devices)
	for m := range out {
		law := dirichlet(rng, task.Spec.Classes, alpha)
		d, err := task.Generate(rng, samplesPerDevice, law)
		if err != nil {
			return nil, fmt.Errorf("dataset: dirichlet device %d: %w", m, err)
		}
		d.Name = fmt.Sprintf("%s-dir%d", task.Spec.Name, m)
		out[m] = d
	}
	return out, nil
}

// dirichlet samples a symmetric Dirichlet(α) vector via normalized Gamma
// draws (Marsaglia-Tsang for α ≥ 1, boosted for α < 1).
func dirichlet(rng *rand.Rand, k int, alpha float64) []float64 {
	out := make([]float64, k)
	total := 0.0
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		total += out[i]
	}
	//machlint:allow floateq degenerate-draw guard; only an exact all-zero sample needs the uniform fallback
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(k)
		}
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// gammaSample draws from Gamma(shape, 1).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1)·U^(1/a).
		u := rng.Float64()
		//machlint:allow floateq rejection sampling: only the exact zero makes math.Log diverge
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	// Marsaglia-Tsang squeeze method.
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Imbalance measures the class imbalance of a label distribution as the
// squared Euclidean distance to the uniform distribution. Zero means
// perfectly balanced; it is the quantity class-balance sampling minimizes
// over the selected group (the QCID objective of Fed-CBS).
func Imbalance(dist []float64) float64 {
	u := 1.0 / float64(len(dist))
	s := 0.0
	for _, p := range dist {
		d := p - u
		s += d * d
	}
	return s
}

// MixDistributions returns the weighted mixture Σ w_i·dist_i of label
// distributions, normalizing the weights. Used by class-balance sampling to
// score candidate device groups.
func MixDistributions(dists [][]float64, weights []float64) []float64 {
	if len(dists) == 0 {
		return nil
	}
	out := make([]float64, len(dists[0]))
	total := 0.0
	for _, w := range weights {
		total += w
	}
	//machlint:allow floateq all-zero weights is the exact degenerate case; any tolerance would misread tiny real weights
	if total == 0 {
		return out
	}
	for i, d := range dists {
		w := weights[i] / total
		for c, p := range d {
			out[c] += w * p
		}
	}
	return out
}
