package dataset

import (
	"math"
	"math/rand"
	"testing"
)

func TestTaskSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*TaskSpec)
		wantErr bool
	}{
		{"valid", func(s *TaskSpec) {}, false},
		{"zero channels", func(s *TaskSpec) { s.InC = 0 }, true},
		{"one class", func(s *TaskSpec) { s.Classes = 1 }, true},
		{"zero separation", func(s *TaskSpec) { s.Sep = 0 }, true},
		{"overlap 1", func(s *TaskSpec) { s.Overlap = 1 }, true},
		{"negative overlap", func(s *TaskSpec) { s.Overlap = -0.1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := MNISTLike(8, 8)
			tt.mutate(&s)
			err := s.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPresetDifficultyOrdering(t *testing.T) {
	m, f, c := MNISTLike(8, 8), FMNISTLike(8, 8), CIFAR10Like(8, 8)
	if !(m.Overlap < f.Overlap && f.Overlap < c.Overlap) {
		t.Fatalf("overlap ordering violated: %v %v %v", m.Overlap, f.Overlap, c.Overlap)
	}
	if !(m.Sep > f.Sep && f.Sep > c.Sep) {
		t.Fatalf("separation ordering violated: %v %v %v", m.Sep, f.Sep, c.Sep)
	}
	if c.InC != 3 {
		t.Fatalf("CIFAR10Like channels = %d, want 3", c.InC)
	}
}

func TestPrototypesDeterministicPerSeed(t *testing.T) {
	a, err := NewTask(MNISTLike(6, 6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTask(MNISTLike(6, 6))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < a.Spec.Classes; c++ {
		pa, pb := a.Prototype(c), b.Prototype(c)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("prototypes differ for class %d at %d", c, i)
			}
		}
	}
}

func TestOverlapControlsPrototypeCorrelation(t *testing.T) {
	corr := func(spec TaskSpec) float64 {
		task, err := NewTask(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Mean pairwise cosine similarity between class prototypes.
		total, pairs := 0.0, 0
		for a := 0; a < spec.Classes; a++ {
			for b := a + 1; b < spec.Classes; b++ {
				pa, pb := task.Prototype(a), task.Prototype(b)
				dot, na, nb := 0.0, 0.0, 0.0
				for i := range pa {
					dot += pa[i] * pb[i]
					na += pa[i] * pa[i]
					nb += pb[i] * pb[i]
				}
				total += dot / math.Sqrt(na*nb)
				pairs++
			}
		}
		return total / float64(pairs)
	}
	low := MNISTLike(8, 8)
	high := CIFAR10Like(8, 8)
	high.InC = 1 // same dimensionality for a fair comparison
	if cLow, cHigh := corr(low), corr(high); cLow >= cHigh {
		t.Fatalf("expected higher overlap to raise prototype similarity: %.3f vs %.3f", cLow, cHigh)
	}
}

func TestGenerateLabelsFollowDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	task, err := NewTask(MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	law := make([]float64, 10)
	law[2], law[7] = 0.7, 0.3
	d, err := task.Generate(rng, 5000, law)
	if err != nil {
		t.Fatal(err)
	}
	dist := d.ClassDistribution()
	if math.Abs(dist[2]-0.7) > 0.03 || math.Abs(dist[7]-0.3) > 0.03 {
		t.Fatalf("empirical distribution %v does not match law", dist)
	}
	for c, p := range dist {
		if c != 2 && c != 7 && p != 0 {
			t.Fatalf("class %d has mass %v, want 0", c, p)
		}
	}
}

func TestGenerateRejectsBadDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	task, err := NewTask(MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := task.Generate(rng, 10, []float64{1, 2}); err == nil {
		t.Fatal("expected error for wrong-length distribution")
	}
}

func TestSamplesAreLearnable(t *testing.T) {
	// A nearest-prototype classifier should beat chance comfortably on the
	// easiest task — this pins down that the synthetic data carries signal.
	rng := rand.New(rand.NewSource(6))
	task, err := NewTask(MNISTLike(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	d, err := task.Generate(rng, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < d.Len(); i++ {
		img := d.Image(i)
		best, bestDist := -1, math.Inf(1)
		for c := 0; c < task.Spec.Classes; c++ {
			p := task.Prototype(c)
			dist := 0.0
			for j := range img {
				diff := img[j] - p[j]
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == d.Label(i) {
			correct++
		}
	}
	acc := float64(correct) / float64(d.Len())
	if acc < 0.9 {
		t.Fatalf("nearest-prototype accuracy %.3f, want ≥ 0.9", acc)
	}
}

func TestDifficultyOrderingEmpirically(t *testing.T) {
	// Nearest-prototype accuracy must strictly decrease across the three
	// presets, mirroring MNIST < FMNIST < CIFAR-10 difficulty.
	acc := func(spec TaskSpec) float64 {
		rng := rand.New(rand.NewSource(7))
		task, err := NewTask(spec)
		if err != nil {
			t.Fatal(err)
		}
		d, err := task.Generate(rng, 400, nil)
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for i := 0; i < d.Len(); i++ {
			img := d.Image(i)
			best, bestDist := -1, math.Inf(1)
			for c := 0; c < task.Spec.Classes; c++ {
				p := task.Prototype(c)
				dist := 0.0
				for j := range img {
					diff := img[j] - p[j]
					dist += diff * diff
				}
				if dist < bestDist {
					best, bestDist = c, dist
				}
			}
			if best == d.Label(i) {
				correct++
			}
		}
		return float64(correct) / float64(d.Len())
	}
	am, af, ac := acc(MNISTLike(8, 8)), acc(FMNISTLike(8, 8)), acc(CIFAR10Like(8, 8))
	if !(am > af && af > ac) {
		t.Fatalf("difficulty ordering violated: mnist %.3f, fmnist %.3f, cifar %.3f", am, af, ac)
	}
}
