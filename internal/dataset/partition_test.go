package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLongTailedProperties(t *testing.T) {
	tests := []struct {
		name    string
		classes int
		ratio   float64
	}{
		{"uniform", 10, 1.0},
		{"mild tail", 10, 0.8},
		{"steep tail", 10, 0.3},
		{"two classes", 2, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := LongTailed(tt.classes, tt.ratio)
			sum := 0.0
			for c := 0; c < len(p); c++ {
				if p[c] < 0 {
					t.Fatalf("negative mass at %d", c)
				}
				if c > 0 && p[c] > p[c-1]+1e-15 {
					t.Fatalf("distribution not non-increasing at %d", c)
				}
				sum += p[c]
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("sum = %v", sum)
			}
			if tt.ratio == 1.0 {
				for _, v := range p {
					if math.Abs(v-1.0/float64(tt.classes)) > 1e-12 {
						t.Fatal("ratio 1 should be uniform")
					}
				}
			}
		})
	}
}

func TestPartitionConfigValidate(t *testing.T) {
	valid := PartitionConfig{Devices: 4, SamplesPerDevice: 10, TailRatio: 0.5}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*PartitionConfig)
	}{
		{"zero devices", func(c *PartitionConfig) { c.Devices = 0 }},
		{"zero samples", func(c *PartitionConfig) { c.SamplesPerDevice = 0 }},
		{"zero ratio", func(c *PartitionConfig) { c.TailRatio = 0 }},
		{"ratio above one", func(c *PartitionConfig) { c.TailRatio = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestPartitionShapesAndDeterminism(t *testing.T) {
	task, err := NewTask(MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PartitionConfig{Devices: 6, SamplesPerDevice: 30, TailRatio: 0.5, Seed: 11}
	a, err := Partition(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 6 {
		t.Fatalf("got %d devices", len(a))
	}
	for m, d := range a {
		if d.Len() != 30 {
			t.Fatalf("device %d has %d samples", m, d.Len())
		}
	}
	b, err := Partition(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for m := range a {
		for i := 0; i < a[m].Len(); i++ {
			if a[m].Label(i) != b[m].Label(i) {
				t.Fatalf("partition not deterministic for device %d sample %d", m, i)
			}
		}
	}
}

func TestPartitionIsHeterogeneous(t *testing.T) {
	task, err := NewTask(MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PartitionConfig{Devices: 20, SamplesPerDevice: 100, TailRatio: 0.4, Seed: 12}
	parts, err := Partition(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Devices should be individually imbalanced...
	for m, d := range parts {
		if Imbalance(d.ClassDistribution()) < 0.01 {
			t.Fatalf("device %d unexpectedly balanced", m)
		}
	}
	// ...and not all share the same dominant class (random permutations).
	dominant := make(map[int]bool)
	for _, d := range parts {
		hist := d.ClassHistogram()
		best := 0
		for c, n := range hist {
			if n > hist[best] {
				best = c
			}
		}
		dominant[best] = true
	}
	if len(dominant) < 3 {
		t.Fatalf("only %d distinct dominant classes across 20 devices", len(dominant))
	}
}

func TestImbalanceKnownValues(t *testing.T) {
	if got := Imbalance([]float64{0.25, 0.25, 0.25, 0.25}); got != 0 {
		t.Fatalf("uniform imbalance = %v", got)
	}
	// One-hot over 2 classes: (1-0.5)² + (0-0.5)² = 0.5
	if got := Imbalance([]float64{1, 0}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("one-hot imbalance = %v", got)
	}
}

func TestMixDistributions(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	mixed := MixDistributions([][]float64{a, b}, []float64{3, 1})
	if math.Abs(mixed[0]-0.75) > 1e-12 || math.Abs(mixed[1]-0.25) > 1e-12 {
		t.Fatalf("mix = %v", mixed)
	}
	if MixDistributions(nil, nil) != nil {
		t.Fatal("empty mix should be nil")
	}
	zero := MixDistributions([][]float64{a}, []float64{0})
	if zero[0] != 0 {
		t.Fatal("zero-weight mix should be zero")
	}
}

// Property: mixture of distributions is itself a distribution when inputs
// are distributions and at least one weight is positive.
func TestMixDistributionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rngDist := LongTailed(5, 0.6)
		n := 3
		dists := make([][]float64, n)
		weights := make([]float64, n)
		s := seed
		for i := range dists {
			// rotate a fixed distribution for variety
			rot := make([]float64, 5)
			for c := range rot {
				rot[c] = rngDist[(c+i+int(s%5+5))%5]
			}
			dists[i] = rot
			weights[i] = float64(i + 1)
		}
		mixed := MixDistributions(dists, weights)
		sum := 0.0
		for _, v := range mixed {
			if v < -1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletPartitionShapes(t *testing.T) {
	task, err := NewTask(MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := DirichletPartition(task, 10, 40, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 10 {
		t.Fatalf("%d devices", len(parts))
	}
	for m, d := range parts {
		if d.Len() != 40 {
			t.Fatalf("device %d has %d samples", m, d.Len())
		}
	}
}

func TestDirichletAlphaControlsHeterogeneity(t *testing.T) {
	task, err := NewTask(MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	meanImbalance := func(alpha float64) float64 {
		parts, err := DirichletPartition(task, 20, 100, alpha, 8)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, d := range parts {
			total += Imbalance(d.ClassDistribution())
		}
		return total / float64(len(parts))
	}
	concentrated := meanImbalance(0.1)
	spread := meanImbalance(10)
	if concentrated <= spread*2 {
		t.Fatalf("alpha=0.1 imbalance %.4f not well above alpha=10 imbalance %.4f", concentrated, spread)
	}
}

func TestDirichletPartitionErrors(t *testing.T) {
	task, err := NewTask(MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DirichletPartition(task, 0, 10, 1, 1); err == nil {
		t.Fatal("expected devices error")
	}
	if _, err := DirichletPartition(task, 2, 10, 0, 1); err == nil {
		t.Fatal("expected alpha error")
	}
}

// Property: dirichlet draws are valid distributions for any positive alpha.
func TestDirichletIsDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := 0.05 + rng.Float64()*5
		p := dirichlet(rng, 2+rng.Intn(8), alpha)
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSizeSpread(t *testing.T) {
	task, err := NewTask(MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PartitionConfig{
		Devices: 30, SamplesPerDevice: 50, TailRatio: 0.5,
		SizeSpread: 0.6, Seed: 13,
	}
	parts, err := Partition(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	for _, d := range parts {
		if d.Len() < 1 {
			t.Fatal("empty device dataset")
		}
		sizes[d.Len()] = true
	}
	if len(sizes) < 10 {
		t.Fatalf("size spread produced only %d distinct sizes", len(sizes))
	}
	cfg.SizeSpread = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected negative-spread error")
	}
}
