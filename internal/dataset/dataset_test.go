package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mach-fl/mach/internal/tensor"
)

func TestDatasetAppendAndBatch(t *testing.T) {
	d := NewDataset("toy", 1, 2, 2, 3)
	if err := d.Append([]float64{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]float64{5, 6, 7, 8}, 2); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	x, y := d.Batch([]int{1, 0})
	if x.Dim(0) != 2 || x.Dim(1) != 1 || x.Dim(2) != 2 || x.Dim(3) != 2 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if y[0] != 2 || y[1] != 0 {
		t.Fatalf("batch labels %v", y)
	}
	if x.At(0, 0, 0, 0) != 5 || x.At(1, 0, 1, 1) != 4 {
		t.Fatal("batch pixels misordered")
	}
}

func TestDatasetAppendErrors(t *testing.T) {
	d := NewDataset("toy", 1, 2, 2, 3)
	tests := []struct {
		name  string
		image []float64
		label int
	}{
		{"short image", []float64{1}, 0},
		{"long image", make([]float64, 5), 0},
		{"negative label", make([]float64, 4), -1},
		{"label too big", make([]float64, 4), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := d.Append(tt.image, tt.label); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestClassHistogramAndDistribution(t *testing.T) {
	d := NewDataset("toy", 1, 1, 1, 3)
	for _, l := range []int{0, 0, 1, 2, 2, 2} {
		if err := d.Append([]float64{0}, l); err != nil {
			t.Fatal(err)
		}
	}
	h := d.ClassHistogram()
	if h[0] != 2 || h[1] != 1 || h[2] != 3 {
		t.Fatalf("histogram %v", h)
	}
	dist := d.ClassDistribution()
	want := []float64{2.0 / 6, 1.0 / 6, 3.0 / 6}
	for c := range want {
		if math.Abs(dist[c]-want[c]) > 1e-12 {
			t.Fatalf("dist[%d] = %v, want %v", c, dist[c], want[c])
		}
	}
}

func TestSubsetSharesImagesButNotLabels(t *testing.T) {
	d := NewDataset("toy", 1, 1, 1, 2)
	for i := 0; i < 4; i++ {
		if err := d.Append([]float64{float64(i)}, i%2); err != nil {
			t.Fatal(err)
		}
	}
	sub := d.Subset("half", []int{0, 3})
	if sub.Len() != 2 || sub.Label(0) != 0 || sub.Label(1) != 1 {
		t.Fatalf("subset labels wrong")
	}
	if sub.Image(1)[0] != 3 {
		t.Fatalf("subset image wrong")
	}
}

func TestRandomBatchWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	task, err := NewTask(MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	d, err := task.Generate(rng, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, y := d.RandomBatch(rng, 32) // larger than the dataset: with replacement
	if x.Dim(0) != 32 || len(y) != 32 {
		t.Fatalf("random batch size %v/%d", x.Shape(), len(y))
	}
	for _, l := range y {
		if l < 0 || l >= 10 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestAllReturnsEverySample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	task, err := NewTask(MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	d, err := task.Generate(rng, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, y := d.All()
	if x.Dim(0) != 7 || len(y) != 7 {
		t.Fatalf("All returned %d samples", x.Dim(0))
	}
}

func TestSampleClassRespectsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	weights := []float64{0, 1, 0, 3}
	counts := make([]int, 4)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[SampleClass(rng, weights)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight classes sampled: %v", counts)
	}
	frac := float64(counts[3]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("class 3 frequency %v, want ≈ 0.75", frac)
	}
}

// Property: SampleClass always returns a valid index with positive weight
// whenever at least one weight is positive.
func TestSampleClassValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64()
		}
		w[rng.Intn(n)] = 1 // guarantee positive mass
		c := SampleClass(rng, w)
		return c >= 0 && c < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// RandomBatchInto must draw the identical RNG stream and fill the identical
// pixels/labels as RandomBatch — the simulator's determinism across worker
// counts depends on it.
func TestRandomBatchIntoMatchesRandomBatch(t *testing.T) {
	d := NewDataset("toy", 1, 2, 2, 3)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 9; i++ {
		img := make([]float64, 4)
		for j := range img {
			img[j] = rng.NormFloat64()
		}
		if err := d.Append(img, i%3); err != nil {
			t.Fatal(err)
		}
	}
	const size = 5
	r1 := rand.New(rand.NewSource(99))
	r2 := rand.New(rand.NewSource(99))
	wantX, wantY := d.RandomBatch(r1, size)

	x := tensor.New(size, 1, 2, 2)
	x.Fill(-1) // dirty scratch must be fully overwritten
	labels := make([]int, size)
	idx := make([]int, size)
	d.RandomBatchInto(r2, x, labels, idx)
	for i, v := range wantX.Data() {
		if x.Data()[i] != v {
			t.Fatalf("pixel %d differs: %v vs %v", i, x.Data()[i], v)
		}
	}
	for i, v := range wantY {
		if labels[i] != v {
			t.Fatalf("label %d differs", i)
		}
	}
	if r1.Int63() != r2.Int63() {
		t.Fatal("RNG streams diverged")
	}
}

func TestBatchIntoRejectsWrongSizes(t *testing.T) {
	d := NewDataset("toy", 1, 2, 2, 3)
	if err := d.Append([]float64{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for undersized buffers")
		}
	}()
	d.BatchInto(tensor.New(1, 1, 1, 1), make([]int, 1), []int{0})
}
