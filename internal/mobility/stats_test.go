package mobility

import (
	"math"
	"math/rand"
	"testing"
)

func TestComputeStatsHandmade(t *testing.T) {
	var tr Trace
	for _, r := range []Record{
		{Device: 0, Station: 0, Start: 0, End: 10},  // dwell 10
		{Device: 0, Station: 1, Start: 10, End: 14}, // dwell 4
		{Device: 1, Station: 1, Start: 0, End: 6},   // dwell 6
	} {
		if err := tr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s := ComputeStats(&tr)
	if s.Records != 3 || s.Devices != 2 || s.Stations != 2 || s.Horizon != 14 {
		t.Fatalf("basic stats wrong: %+v", s)
	}
	if math.Abs(s.MeanDwell-20.0/3) > 1e-12 {
		t.Fatalf("mean dwell %v", s.MeanDwell)
	}
	if s.MedianDwell != 6 {
		t.Fatalf("median dwell %v", s.MedianDwell)
	}
	// Device 0 had 1 handover, device 1 none → 0.5 per device.
	if math.Abs(s.HandoversPerDevice-0.5) > 1e-12 {
		t.Fatalf("handovers per device %v", s.HandoversPerDevice)
	}
	if s.StationLoad[0] != 1 || s.StationLoad[1] != 2 {
		t.Fatalf("station load %v", s.StationLoad)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(&Trace{})
	if s.Records != 0 || s.MeanDwell != 0 {
		t.Fatalf("empty trace stats: %+v", s)
	}
}

func TestEstimateTransitionsRecoversChain(t *testing.T) {
	// Generate a Markov trace with a known stay/hop structure and check
	// the fitted matrix concentrates on the true neighbors.
	rng := rand.New(rand.NewSource(1))
	stations, err := PlaceStations(rng, 6, PlacementConfig{Width: 100, Height: 100})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateMarkovTrace(rng, stations, 40, 400, MarkovConfig{StayProb: 0.8, Neighbors: 2})
	if err != nil {
		t.Fatal(err)
	}
	trans, err := EstimateTransitions(trace, 6)
	if err != nil {
		t.Fatal(err)
	}
	neighbors := nearestNeighbors(stations, 2)
	for i, row := range trans {
		sum := 0.0
		for _, p := range row {
			if p < 0 {
				t.Fatalf("negative probability in row %d", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
		// Mass should concentrate on the station's true hop candidates.
		nbMass := 0.0
		for _, j := range neighbors[i] {
			nbMass += row[j]
		}
		if nbMass < 0.9 {
			t.Fatalf("row %d: only %.2f mass on true neighbors", i, nbMass)
		}
	}
}

func TestEstimateTransitionsErrors(t *testing.T) {
	var tr Trace
	if err := tr.Append(Record{Device: 0, Station: 5, Start: 0, End: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateTransitions(&tr, 3); err == nil {
		t.Fatal("expected out-of-range station error")
	}
	if _, err := EstimateTransitions(&tr, 0); err == nil {
		t.Fatal("expected station-count error")
	}
}

func TestEstimateTransitionsUniformFallback(t *testing.T) {
	// A station never departed from gets a uniform row.
	var tr Trace
	if err := tr.Append(Record{Device: 0, Station: 0, Start: 0, End: 5}); err != nil {
		t.Fatal(err)
	}
	trans, err := EstimateTransitions(&tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if math.Abs(trans[1][j]-1.0/3) > 1e-12 {
			t.Fatalf("unvisited row not uniform: %v", trans[1])
		}
	}
}

func TestStationaryDistribution(t *testing.T) {
	// Two-state chain with known stationary distribution π = (2/3, 1/3):
	// P = [[0.9, 0.1], [0.2, 0.8]].
	trans := [][]float64{{0.9, 0.1}, {0.2, 0.8}}
	pi := StationaryDistribution(trans, 200)
	if math.Abs(pi[0]-2.0/3) > 1e-6 || math.Abs(pi[1]-1.0/3) > 1e-6 {
		t.Fatalf("stationary distribution %v", pi)
	}
	if StationaryDistribution(nil, 10) != nil {
		t.Fatal("empty chain should be nil")
	}
}
