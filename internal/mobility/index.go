package mobility

import "sort"

// MemberIndex is a per-step membership index over a Schedule: it materializes
// M^t_n for every edge at once, so per-step control logic reads edge members
// in O(1) per edge instead of rescanning all devices per edge. A full build
// is a counting pass over the step's device row — O(Devices + Edges) — into
// pooled per-edge buffers, so steady-state positioning allocates nothing.
//
// Consecutive steps take an incremental delta path exploiting the trace's
// spatial locality: only the devices whose edge actually changed are removed
// from their old edge list and inserted into their new one, keeping every
// list in ascending device order. Each repair shifts O(Devices/Edges)
// elements, so once a step moves more than about half the covered edge count
// the counting rebuild is cheaper and the index falls back to it, bounding
// the worst case at the full-build cost.
//
// An index may cover only a contiguous *range* of edges [lo, hi) — see
// NewMemberIndexRange. Range indexes are how the sharded control plane
// partitions membership: each shard builds and repairs exactly its own
// edges' lists, and the union of the shards' indexes is the full index.
// Whether a list was produced by a full index, a range index, a rebuild or a
// delta repair, its contents are identical — membership is a pure function
// of (schedule, step) — so range scoping never affects what callers read.
//
// Member lists are ascending in device ID — exactly the order
// Schedule.MembersAt returns — so decision logic that walks members in order
// draws its randomness at the same stream offsets as the naive scan.
//
// A MemberIndex is not safe for concurrent mutation: Advance must be called
// from one goroutine, but any number of goroutines may call Members/Count
// between Advances (the per-step parallel decide phase does exactly that).
type MemberIndex struct {
	s      *Schedule
	step   int // current step, -1 before the first Advance
	lo, hi int // covered edge range [lo, hi)

	members [][]int // members[n-lo]: devices on edge n at the current step, ascending
	counts  []int   // counting-pass scratch, one cell per covered edge
	moved   []int   // delta-pass scratch: devices whose edge change touches the range
}

// Delta advances rebuild from scratch once more than covered/deltaRebuildDen
// devices moved in one step (covered = hi-lo, the range width). A moved
// device costs an O(list length) sorted remove + insert — about
// 2·Devices/Edges element moves — while the counting rebuild costs
// O(Devices) flat, so repair wins only while
// moved · 2·Devices/Edges < Devices, i.e. moved < Edges/2.
const deltaRebuildDen = 2

// NewMemberIndex returns an index over every edge of s, positioned at no
// step. Call Advance before reading members.
func NewMemberIndex(s *Schedule) *MemberIndex {
	return NewMemberIndexRange(s, 0, s.Edges)
}

// NewMemberIndexRange returns an index covering only the edges [lo, hi) of
// s, positioned at no step. Build and repair cost scale with the range: the
// counting pass still scans the full device row (membership of a range is
// not locally decidable) but sizes, fills and repairs only the covered
// lists. Members/Count must only be asked about edges inside the range.
func NewMemberIndexRange(s *Schedule, lo, hi int) *MemberIndex {
	if lo < 0 || hi > s.Edges || lo > hi {
		panic("mobility: member index range out of bounds")
	}
	ix := NewMemberIndexWindow(lo, hi)
	ix.s = s
	return ix
}

// NewMemberIndexWindow returns an index covering the edges [lo, hi) with no
// schedule bound: the caller feeds it the per-step attachment row and move
// stream through AdvanceWith. This is the streaming-plane construction — the
// index holds only its covered member lists plus O(hi-lo) scratch, never a
// dense schedule. Advance (the schedule-bound entry point) must not be called
// on a window index.
func NewMemberIndexWindow(lo, hi int) *MemberIndex {
	if lo < 0 || lo > hi {
		panic("mobility: member index range out of bounds")
	}
	return &MemberIndex{
		step:    -1,
		lo:      lo,
		hi:      hi,
		members: make([][]int, hi-lo),
		counts:  make([]int, hi-lo),
	}
}

// Step returns the step the index is positioned at, or -1 before the first
// Advance.
func (ix *MemberIndex) Step() int { return ix.step }

// Lo returns the first covered edge.
func (ix *MemberIndex) Lo() int { return ix.lo }

// Hi returns one past the last covered edge.
func (ix *MemberIndex) Hi() int { return ix.hi }

// Members returns M^t_n for the current step, ascending in device ID. The
// slice is owned by the index and valid until the next Advance; callers must
// not mutate or retain it across Advances. n must lie in the covered range.
func (ix *MemberIndex) Members(n int) []int { return ix.members[n-ix.lo] }

// Count returns |M^t_n| for the current step. n must lie in the covered
// range.
func (ix *MemberIndex) Count(n int) int { return len(ix.members[n-ix.lo]) }

// Advance positions the index at step t. Advancing to the current step is a
// no-op; advancing by exactly one step takes the incremental delta path when
// few devices moved; any other jump rebuilds by counting sort.
//
//machlint:allocfree
func (ix *MemberIndex) Advance(t int) {
	switch {
	case t == ix.step:
		return
	case ix.step >= 0 && t == ix.step+1 && ix.advanceDelta(t):
		return
	default:
		ix.rebuild(t)
	}
}

// AdvanceWith positions the index at step t from an externally supplied
// attachment row and move stream — the StepSource protocol — instead of a
// bound schedule. row is the full device→edge row at step t; moves is the
// step's move stream when the caller advanced by exactly one step (rebuilt
// false). A single-step advance repairs only the moves that intersect the
// covered range — O(moves·log + shifts), no row-vs-row diff — and falls back
// to the counting rebuild over row when too many covered devices moved.
// Whether positioned by Advance or AdvanceWith, the member lists are
// identical: membership is a pure function of the attachment row.
//
//machlint:allocfree
func (ix *MemberIndex) AdvanceWith(t int, row []int, moves []Move, rebuilt bool) {
	switch {
	case t == ix.step:
		return
	case !rebuilt && ix.step >= 0 && t == ix.step+1 && ix.applyMovesDelta(t, moves):
		return
	default:
		ix.rebuildRow(t, row)
	}
}

// applyMovesDelta repairs the member lists with one step's move stream,
// touching only moves that intersect the covered range. It reports false —
// leaving the index unchanged — when the step moved too many covered devices
// for a repair to beat a rebuild (same budget as advanceDelta).
func (ix *MemberIndex) applyMovesDelta(t int, moves []Move) bool {
	limit := (ix.hi - ix.lo) / deltaRebuildDen
	covered := 0
	for _, mv := range moves {
		if ix.covers(mv.From) || ix.covers(mv.To) {
			covered++
			if covered > limit {
				return false
			}
		}
	}
	for _, mv := range moves {
		if ix.covers(mv.From) {
			ix.members[mv.From-ix.lo] = removeSorted(ix.members[mv.From-ix.lo], mv.Device)
		}
	}
	for _, mv := range moves {
		if ix.covers(mv.To) {
			ix.members[mv.To-ix.lo] = insertSorted(ix.members[mv.To-ix.lo], mv.Device)
		}
	}
	ix.step = t
	return true
}

// rebuild builds the member lists for step t from the bound schedule's row.
func (ix *MemberIndex) rebuild(t int) {
	ix.rebuildRow(t, ix.s.edgeOf[t])
}

// rebuildRow builds the member lists for step t from an explicit attachment
// row by counting sort: one pass sizes each covered edge's list, a second
// fills them in ascending device order.
func (ix *MemberIndex) rebuildRow(t int, row []int) {
	counts := ix.counts
	for n := range counts {
		counts[n] = 0
	}
	for _, e := range row {
		if e >= ix.lo && e < ix.hi {
			counts[e-ix.lo]++
		}
	}
	for n := range ix.members {
		if cap(ix.members[n]) < counts[n] {
			// Grow with slack: edge populations drift up and down, and
			// allocating to the exact count would realloc every time an edge
			// hits a new maximum.
			ix.members[n] = make([]int, 0, counts[n]+counts[n]/8+4)
		} else {
			ix.members[n] = ix.members[n][:0]
		}
	}
	for m, e := range row {
		if e >= ix.lo && e < ix.hi {
			ix.members[e-ix.lo] = append(ix.members[e-ix.lo], m)
		}
	}
	ix.step = t
}

// advanceDelta repairs the member lists from step t-1 to step t, touching
// only the devices whose edge change intersects the covered range (a move
// entirely outside the range costs nothing and does not count against the
// repair budget). It reports false — leaving the index unchanged — when the
// step moved too many covered devices for a repair to beat a rebuild.
func (ix *MemberIndex) advanceDelta(t int) bool {
	prev, cur := ix.s.edgeOf[t-1], ix.s.edgeOf[t]
	limit := (ix.hi - ix.lo) / deltaRebuildDen
	moved := ix.moved[:0]
	for m := range cur {
		if cur[m] != prev[m] && (ix.covers(cur[m]) || ix.covers(prev[m])) {
			if len(moved) >= limit {
				ix.moved = moved
				return false
			}
			moved = append(moved, m)
		}
	}
	ix.moved = moved
	for _, m := range moved {
		if ix.covers(prev[m]) {
			ix.members[prev[m]-ix.lo] = removeSorted(ix.members[prev[m]-ix.lo], m)
		}
	}
	for _, m := range moved {
		if ix.covers(cur[m]) {
			ix.members[cur[m]-ix.lo] = insertSorted(ix.members[cur[m]-ix.lo], m)
		}
	}
	ix.step = t
	return true
}

// covers reports whether edge n lies in the index's covered range.
func (ix *MemberIndex) covers(n int) bool { return n >= ix.lo && n < ix.hi }

// removeSorted deletes v from an ascending slice that contains it.
func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// insertSorted inserts v into an ascending slice that does not contain it.
func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
