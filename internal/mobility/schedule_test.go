package mobility

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWaypointTraceCoversAllDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stations, err := PlaceStations(rng, 20, DefaultPlacement())
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateWaypointTrace(rng, stations, 15, 50, DefaultWaypoint())
	if err != nil {
		t.Fatal(err)
	}
	if trace.Devices() != 15 {
		t.Fatalf("trace covers %d devices, want 15", trace.Devices())
	}
	// Per-device records must tile [0, horizon) without gaps or overlaps.
	trace.Sort()
	next := make(map[int]int64)
	for _, r := range trace.Records {
		if r.Start != next[r.Device] {
			t.Fatalf("device %d: record starts at %d, want %d", r.Device, r.Start, next[r.Device])
		}
		next[r.Device] = r.End
	}
	for m, end := range next {
		if end != 50 {
			t.Fatalf("device %d coverage ends at %d, want 50", m, end)
		}
	}
}

func TestMarkovTraceStayProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	stations, err := PlaceStations(rng, 10, PlacementConfig{Width: 100, Height: 100})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateMarkovTrace(rng, stations, 30, 200, MarkovConfig{StayProb: 0.9, Neighbors: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Expected hops per device ≈ (1-0.9)*199 ≈ 20, so records per device
	// ≈ 21; allow broad tolerance.
	perDevice := float64(len(trace.Records)) / 30
	if perDevice < 10 || perDevice > 35 {
		t.Fatalf("markov hop rate off: %.1f records per device", perDevice)
	}
}

func TestModelConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	stations := []Station{{ID: 0, X: 0, Y: 0}}
	if _, err := GenerateWaypointTrace(rng, stations, 1, 10, WaypointConfig{Width: -1}); err == nil {
		t.Fatal("expected invalid waypoint config error")
	}
	if _, err := GenerateWaypointTrace(rng, nil, 1, 10, DefaultWaypoint()); err == nil {
		t.Fatal("expected empty stations error")
	}
	if _, err := GenerateMarkovTrace(rng, stations, 1, 10, MarkovConfig{StayProb: 1.5, Neighbors: 1}); err == nil {
		t.Fatal("expected invalid markov config error")
	}
	if _, err := GenerateMarkovTrace(rng, stations, 0, 10, DefaultMarkov()); err == nil {
		t.Fatal("expected zero devices error")
	}
}

func TestClusterStationsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	stations, err := PlaceStations(rng, 50, DefaultPlacement())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 5, 10} {
		edgeOf, err := ClusterStations(rng, stations, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(edgeOf) != 50 {
			t.Fatalf("k=%d: %d assignments", k, len(edgeOf))
		}
		seen := make([]int, k)
		for _, e := range edgeOf {
			if e < 0 || e >= k {
				t.Fatalf("k=%d: invalid edge %d", k, e)
			}
			seen[e]++
		}
		for e, n := range seen {
			if n == 0 {
				t.Fatalf("k=%d: edge %d empty", k, e)
			}
		}
	}
	if _, err := ClusterStations(rng, stations[:3], 5); err == nil {
		t.Fatal("expected error for k > stations")
	}
	if _, err := ClusterStations(rng, stations, 0); err == nil {
		t.Fatal("expected error for k = 0")
	}
}

func TestClusterStationsIsSpatiallyCoherent(t *testing.T) {
	// Stations in two well-separated groups must be split into exactly
	// those groups by 2-means.
	var stations []Station
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		stations = append(stations, Station{ID: i, X: rng.Float64(), Y: rng.Float64()})
	}
	for i := 10; i < 20; i++ {
		stations = append(stations, Station{ID: i, X: 100 + rng.Float64(), Y: 100 + rng.Float64()})
	}
	edgeOf, err := ClusterStations(rng, stations, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if edgeOf[i] != edgeOf[0] {
			t.Fatalf("left group split: station %d", i)
		}
	}
	for i := 11; i < 20; i++ {
		if edgeOf[i] != edgeOf[10] {
			t.Fatalf("right group split: station %d", i)
		}
	}
	if edgeOf[0] == edgeOf[10] {
		t.Fatal("groups merged")
	}
}

func TestBuildScheduleFromHandmadeTrace(t *testing.T) {
	var tr Trace
	// Station 0,1 → edge 0; station 2 → edge 1.
	edgeOfStation := []int{0, 0, 1}
	// Device 0: station 0 for [0,3), station 2 for [3,6).
	// Device 1: station 1 for [2,6) (leading gap back-filled).
	for _, r := range []Record{
		{Device: 0, Station: 0, Start: 0, End: 3},
		{Device: 0, Station: 2, Start: 3, End: 6},
		{Device: 1, Station: 1, Start: 2, End: 6},
	} {
		if err := tr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s, err := BuildSchedule(&tr, edgeOfStation, 2, 2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantDev0 := []int{0, 0, 0, 1, 1, 1}
	for tt, want := range wantDev0 {
		if got := s.EdgeOf(tt, 0); got != want {
			t.Fatalf("device 0 step %d: edge %d, want %d", tt, got, want)
		}
	}
	for tt := 0; tt < 6; tt++ {
		if got := s.EdgeOf(tt, 1); got != 0 {
			t.Fatalf("device 1 step %d: edge %d, want 0", tt, got)
		}
	}
	members := s.MembersAt(4, 1)
	if len(members) != 1 || members[0] != 0 {
		t.Fatalf("MembersAt(4,1) = %v", members)
	}
}

func TestBuildScheduleErrors(t *testing.T) {
	var tr Trace
	if err := tr.Append(Record{Device: 0, Station: 0, Start: 0, End: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSchedule(&tr, []int{0}, 1, 2, 5, 1); err == nil {
		t.Fatal("expected error: device 1 has no records")
	}
	if _, err := BuildSchedule(&tr, []int{0}, 1, 1, 5, 0); err == nil {
		t.Fatal("expected error: zero step duration")
	}
	var tr2 Trace
	if err := tr2.Append(Record{Device: 0, Station: 9, Start: 0, End: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSchedule(&tr2, []int{0}, 1, 1, 5, 1); err == nil {
		t.Fatal("expected error: station outside clustering")
	}
}

func TestGenerateScheduleEndToEnd(t *testing.T) {
	s, err := GenerateSchedule(11, 5, 20, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Edges != 5 || s.Devices != 20 || s.Steps != 40 {
		t.Fatalf("schedule dims %d/%d/%d", s.Edges, s.Devices, s.Steps)
	}
	// Mobility must actually move devices across edges, but not teleport
	// them every step.
	rate := s.TransitionRate()
	if rate <= 0 || rate > 0.5 {
		t.Fatalf("transition rate %v outside (0, 0.5]", rate)
	}
	occ := s.EdgeOccupancy()
	total := 0.0
	for _, o := range occ {
		total += o
	}
	if total < 19.99 || total > 20.01 {
		t.Fatalf("occupancy sums to %v, want 20", total)
	}
}

func TestGenerateScheduleDeterministic(t *testing.T) {
	a, err := GenerateSchedule(99, 3, 10, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSchedule(99, 3, 10, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 20; tt++ {
		for m := 0; m < 10; m++ {
			if a.EdgeOf(tt, m) != b.EdgeOf(tt, m) {
				t.Fatalf("schedules differ at t=%d m=%d", tt, m)
			}
		}
	}
}

// Property: every schedule from the end-to-end generator satisfies the
// partition property of Eq. (1) — MembersAt over all edges partitions the
// device set at every step.
func TestSchedulePartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		edges := 2 + int(uint(seed)%4)
		s, err := GenerateSchedule(seed, edges, 8, 10, 2)
		if err != nil {
			return false
		}
		for tt := 0; tt < s.Steps; tt++ {
			seen := make(map[int]bool)
			for n := 0; n < s.Edges; n++ {
				for _, m := range s.MembersAt(tt, n) {
					if seen[m] {
						return false // device in two edges
					}
					seen[m] = true
				}
			}
			if len(seen) != s.Devices {
				return false // device missing
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
