package mobility

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadStationsCSV parses "station,x,y" lines (with optional header) written
// by cmd/tracegen's -coords output. Stations must appear in ID order
// starting at 0.
func ReadStationsCSV(r io.Reader) ([]Station, error) {
	sc := bufio.NewScanner(r)
	var out []Station
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if lineNo == 1 && strings.HasPrefix(line, "station") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("mobility: coords line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		id, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("mobility: coords line %d id: %w", lineNo, err)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: coords line %d x: %w", lineNo, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: coords line %d y: %w", lineNo, err)
		}
		if id != len(out) {
			return nil, fmt.Errorf("mobility: coords line %d: station %d out of order (want %d)", lineNo, id, len(out))
		}
		out = append(out, Station{ID: id, X: x, Y: y})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mobility: scan coords: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mobility: coords file holds no stations")
	}
	return out, nil
}
