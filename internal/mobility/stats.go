package mobility

import (
	"fmt"
	"sort"

	"github.com/mach-fl/mach/internal/det"
)

// TraceStats summarizes a mobility trace: the quantities one inspects to
// check a synthetic trace against the statistics real telecom datasets
// exhibit (dwell times, handover intensity, station load skew).
type TraceStats struct {
	Records            int
	Devices            int
	Stations           int
	Horizon            int64
	MeanDwell          float64
	MedianDwell        float64
	P90Dwell           float64
	HandoversPerDevice float64
	// StationLoad is the number of records per station.
	StationLoad []int
}

// ComputeStats derives summary statistics from a trace.
func ComputeStats(t *Trace) TraceStats {
	s := TraceStats{
		Records:  len(t.Records),
		Devices:  t.Devices(),
		Stations: t.Stations(),
		Horizon:  t.Horizon(),
	}
	if s.Records == 0 {
		return s
	}
	dwells := make([]float64, 0, s.Records)
	perDevice := map[int]int{}
	s.StationLoad = make([]int, s.Stations)
	total := 0.0
	for _, r := range t.Records {
		d := float64(r.End - r.Start)
		dwells = append(dwells, d)
		total += d
		perDevice[r.Device]++
		s.StationLoad[r.Station]++
	}
	sort.Float64s(dwells)
	s.MeanDwell = total / float64(len(dwells))
	s.MedianDwell = quantile(dwells, 0.5)
	s.P90Dwell = quantile(dwells, 0.9)
	handovers := 0
	for _, n := range perDevice {
		handovers += n - 1 // records per device minus one = station changes
	}
	s.HandoversPerDevice = float64(handovers) / float64(len(perDevice))
	return s
}

// quantile returns the q-quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// String renders the stats for CLI output.
func (s TraceStats) String() string {
	return fmt.Sprintf("records=%d devices=%d stations=%d horizon=%d dwell(mean/med/p90)=%.1f/%.1f/%.1f handovers/device=%.1f",
		s.Records, s.Devices, s.Stations, s.Horizon,
		s.MeanDwell, s.MedianDwell, s.P90Dwell, s.HandoversPerDevice)
}

// EstimateTransitions fits a station-level Markov mobility model from a
// trace (the "classical mobility model" route of §II-A): row i of the result
// is the empirical distribution of the next station given the device is
// leaving station i. Rows with no observed departures are uniform over all
// stations. The fitted matrix can seed GenerateMarkovTrace-style synthesis
// or location prediction.
func EstimateTransitions(t *Trace, stations int) ([][]float64, error) {
	if stations <= 0 {
		return nil, fmt.Errorf("mobility: need ≥ 1 station, got %d", stations)
	}
	counts := make([][]float64, stations)
	for i := range counts {
		counts[i] = make([]float64, stations)
	}
	// Order records per device by start time and count consecutive pairs.
	byDevice := map[int][]Record{}
	for _, r := range t.Records {
		if r.Station >= stations {
			return nil, fmt.Errorf("mobility: record references station %d ≥ %d", r.Station, stations)
		}
		byDevice[r.Device] = append(byDevice[r.Device], r)
	}
	// Walk devices in sorted-key order: the count accumulations below are
	// floating point, so the randomized map order must never reach them.
	for _, d := range det.SortedKeys(byDevice) {
		recs := byDevice[d]
		sort.Slice(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
		for i := 1; i < len(recs); i++ {
			counts[recs[i-1].Station][recs[i].Station]++
		}
	}
	for i := range counts {
		total := 0.0
		for _, c := range counts[i] {
			total += c
		}
		//machlint:allow floateq counts sum small integers exactly; zero is the precise "no departures observed" case
		if total == 0 {
			for j := range counts[i] {
				counts[i][j] = 1 / float64(stations)
			}
			continue
		}
		for j := range counts[i] {
			counts[i][j] /= total
		}
	}
	return counts, nil
}

// StationaryDistribution iterates the transition matrix to its stationary
// distribution (power iteration with uniform start), useful for comparing a
// fitted chain against observed station load.
func StationaryDistribution(transitions [][]float64, iterations int) []float64 {
	n := len(transitions)
	if n == 0 {
		return nil
	}
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for it := 0; it < iterations; it++ {
		for j := range next {
			next[j] = 0
		}
		for i, row := range transitions {
			for j, p := range row {
				next[j] += cur[i] * p
			}
		}
		cur, next = next, cur
	}
	return cur
}
