package mobility

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLevyConfigValidate(t *testing.T) {
	if err := DefaultLevy().Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*LevyConfig)
	}{
		{"zero width", func(c *LevyConfig) { c.Width = 0 }},
		{"zero alpha", func(c *LevyConfig) { c.Alpha = 0 }},
		{"flight range", func(c *LevyConfig) { c.MaxFlight = c.MinFlight }},
		{"zero speed", func(c *LevyConfig) { c.Speed = 0 }},
		{"negative pause", func(c *LevyConfig) { c.MaxPause = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultLevy()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestPowerLawRangeAndTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	vals := make([]float64, n)
	for i := range vals {
		v := powerLaw(rng, 1.5, 1, 100)
		if v < 1-1e-9 || v > 100+1e-9 {
			t.Fatalf("power-law draw %v outside [1,100]", v)
		}
		vals[i] = v
	}
	sort.Float64s(vals)
	// Heavy tail: median far below mean.
	median := vals[n/2]
	mean := 0.0
	for _, v := range vals {
		mean += v / n
	}
	if !(median < mean/1.3) {
		t.Fatalf("not heavy-tailed: median %v vs mean %v", median, mean)
	}
}

func TestLevyTraceCoversHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	stations, err := PlaceStations(rng, 20, DefaultPlacement())
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateLevyTrace(rng, stations, 12, 60, DefaultLevy())
	if err != nil {
		t.Fatal(err)
	}
	if trace.Devices() != 12 {
		t.Fatalf("%d devices", trace.Devices())
	}
	// Per-device coverage [0, horizon) without gaps.
	trace.Sort()
	next := map[int]int64{}
	for _, r := range trace.Records {
		if r.Start != next[r.Device] {
			t.Fatalf("device %d gap at %d", r.Device, r.Start)
		}
		next[r.Device] = r.End
	}
	for m, end := range next {
		if end != 60 {
			t.Fatalf("device %d ends at %d", m, end)
		}
	}
}

func TestLevyTraceFeedsSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stations, err := PlaceStations(rng, 15, DefaultPlacement())
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateLevyTrace(rng, stations, 10, 40, DefaultLevy())
	if err != nil {
		t.Fatal(err)
	}
	edgeOf, err := ClusterStations(rng, stations, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(trace, edgeOf, 3, 10, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if rate := sched.TransitionRate(); rate < 0 || rate > 1 || math.IsNaN(rate) {
		t.Fatalf("transition rate %v", rate)
	}
	// Devices must at least move between stations (edge crossings depend
	// on the clustering geometry and may be rare for short flights).
	if len(trace.Records) <= trace.Devices() {
		t.Fatalf("no station handovers in %d records", len(trace.Records))
	}
}

func TestLevyTraceErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := GenerateLevyTrace(rng, nil, 1, 10, DefaultLevy()); err == nil {
		t.Fatal("expected empty-stations error")
	}
	bad := DefaultLevy()
	bad.Speed = -1
	if _, err := GenerateLevyTrace(rng, []Station{{}}, 1, 10, bad); err == nil {
		t.Fatal("expected config error")
	}
}
