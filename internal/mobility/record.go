package mobility

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Record is one base-station access interval of one device, the schema of
// the Shanghai Telecom dataset: a device, the station it attached to, and
// the start/end timestamps of the attachment (here in abstract time units;
// the simulator maps them to FL time steps via Schedule).
type Record struct {
	Device  int   `json:"device"`
	Station int   `json:"station"`
	Start   int64 `json:"start"`
	End     int64 `json:"end"` // exclusive
}

// Check validates the record's invariants: non-negative device and station,
// end strictly after start. It is the single validation both Trace.Append
// and the streaming TraceSource apply.
func (r Record) Check() error {
	switch {
	case r.Device < 0:
		return fmt.Errorf("mobility: record has negative device %d", r.Device)
	case r.Station < 0:
		return fmt.Errorf("mobility: record has negative station %d", r.Station)
	case r.End <= r.Start:
		return fmt.Errorf("mobility: record for device %d has end %d ≤ start %d", r.Device, r.End, r.Start)
	}
	return nil
}

// Trace is an ordered collection of access records.
type Trace struct {
	Records []Record
}

// Append adds a record after basic validation.
func (t *Trace) Append(r Record) error {
	if err := r.Check(); err != nil {
		return err
	}
	t.Records = append(t.Records, r)
	return nil
}

// Sort orders records by (device, start), the canonical order for schedule
// construction.
func (t *Trace) Sort() {
	sort.Slice(t.Records, func(i, j int) bool {
		a, b := t.Records[i], t.Records[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.Start < b.Start
	})
}

// SortByTime orders records by (start, device, end) — the global time order
// the streaming TraceSource requires. Real access logs arrive in this order
// already; generated traces (Sort order, device-major) need one pass through
// here before they can be streamed.
func (t *Trace) SortByTime() {
	sort.Slice(t.Records, func(i, j int) bool {
		a, b := t.Records[i], t.Records[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.End < b.End
	})
}

// Devices returns the number of distinct devices (max ID + 1).
func (t *Trace) Devices() int {
	maxID := -1
	for _, r := range t.Records {
		if r.Device > maxID {
			maxID = r.Device
		}
	}
	return maxID + 1
}

// Stations returns the number of distinct stations (max ID + 1).
func (t *Trace) Stations() int {
	maxID := -1
	for _, r := range t.Records {
		if r.Station > maxID {
			maxID = r.Station
		}
	}
	return maxID + 1
}

// Horizon returns the largest End timestamp.
func (t *Trace) Horizon() int64 {
	var h int64
	for _, r := range t.Records {
		if r.End > h {
			h = r.End
		}
	}
	return h
}

// WriteCSV writes the trace as "device,station,start,end" lines with a
// header, the interchange format of cmd/tracegen.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("device,station,start,end\n"); err != nil {
		return fmt.Errorf("mobility: write header: %w", err)
	}
	for _, r := range t.Records {
		line := strconv.Itoa(r.Device) + "," + strconv.Itoa(r.Station) + "," +
			strconv.FormatInt(r.Start, 10) + "," + strconv.FormatInt(r.End, 10) + "\n"
		if _, err := bw.WriteString(line); err != nil {
			return fmt.Errorf("mobility: write record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("mobility: flush trace: %w", err)
	}
	return nil
}

// WriteNDJSON writes the trace as one JSON object per line, the streaming
// interchange format TraceSource accepts alongside CSV.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range t.Records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("mobility: write record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("mobility: flush trace: %w", err)
	}
	return nil
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	trace := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if lineNo == 1 && strings.HasPrefix(line, "device") {
			continue // header
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("mobility: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		dev, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d device: %w", lineNo, err)
		}
		st, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d station: %w", lineNo, err)
		}
		start, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d start: %w", lineNo, err)
		}
		end, err := strconv.ParseInt(strings.TrimSpace(fields[3]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d end: %w", lineNo, err)
		}
		if err := trace.Append(Record{Device: dev, Station: st, Start: start, End: end}); err != nil {
			return nil, fmt.Errorf("mobility: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mobility: scan trace: %w", err)
	}
	return trace, nil
}
