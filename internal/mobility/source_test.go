package mobility

import (
	"testing"
)

// walkSource drives src from step 0 to its horizon one step at a time,
// maintaining an attachment row from the move stream, and returns the row at
// every step. Along the way it enforces the StepSource contract: single-step
// advances never report rebuilt, moves are ascending in device ID with no
// null moves, each move's From matches the maintained row, and Snapshot
// always agrees with the move-replayed row.
func walkSource(t *testing.T, src StepSource) [][]int {
	t.Helper()
	_, devices, steps := src.Dims()
	row := make([]int, devices)
	snap := make([]int, 0, devices)
	out := make([][]int, 0, steps)
	for step := 0; step < steps; step++ {
		moves, rebuilt, err := src.AdvanceTo(step)
		if err != nil {
			t.Fatalf("AdvanceTo(%d): %v", step, err)
		}
		if step == 0 {
			row = src.Snapshot(row)
		} else {
			if rebuilt {
				t.Fatalf("single-step advance to %d reported rebuilt", step)
			}
			prev := -1
			for _, mv := range moves {
				if mv.Device <= prev {
					t.Fatalf("step %d: move devices not strictly ascending: %v", step, moves)
				}
				prev = mv.Device
				if mv.From == mv.To {
					t.Fatalf("step %d: null move %+v", step, mv)
				}
				if row[mv.Device] != mv.From {
					t.Fatalf("step %d: move %+v disagrees with row edge %d", step, mv, row[mv.Device])
				}
			}
			ApplyMoves(row, moves)
		}
		snap = src.Snapshot(snap)
		for m := range snap {
			if snap[m] != row[m] {
				t.Fatalf("step %d device %d: snapshot edge %d, move-replayed row %d", step, m, snap[m], row[m])
			}
		}
		out = append(out, append([]int(nil), row...))
	}
	return out
}

// TestScheduleAdapterEmitsRowDiffs: walking a dense schedule through its
// StepSource adapter reproduces exactly the schedule's rows, via moves that
// are the adjacent-row diffs.
func TestScheduleAdapterEmitsRowDiffs(t *testing.T) {
	sched, err := GenerateMarkovSchedule(3, 5, 60, 20, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	rows := walkSource(t, sched)
	for step := range rows {
		for m, e := range rows[step] {
			if want := sched.EdgeOf(step, m); e != want {
				t.Fatalf("step %d device %d: adapter row %d, schedule %d", step, m, e, want)
			}
		}
	}
}

// TestScheduleAdapterRandomAccess: unlike streaming sources, the dense
// adapter repositions anywhere — forward jumps and rewinds both succeed with
// rebuilt == true, and Snapshot lands on the requested row.
func TestScheduleAdapterRandomAccess(t *testing.T) {
	sched, err := GenerateMarkovSchedule(4, 4, 30, 12, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{7, 3, 11, 0} { // forward jump, rewind, jump, rewind
		moves, rebuilt, err := sched.AdvanceTo(step)
		if err != nil {
			t.Fatalf("AdvanceTo(%d): %v", step, err)
		}
		if !rebuilt || moves != nil {
			t.Fatalf("jump to %d: moves %v rebuilt %v, want nil/true", step, moves, rebuilt)
		}
		row := sched.Snapshot(nil)
		for m, e := range row {
			if want := sched.EdgeOf(step, m); e != want {
				t.Fatalf("step %d device %d: snapshot %d, schedule %d", step, m, e, want)
			}
		}
	}
	// A single-step advance after repositioning emits the row diff.
	moves, rebuilt, err := sched.AdvanceTo(1)
	if err != nil || rebuilt {
		t.Fatalf("single-step after reposition: rebuilt %v err %v", rebuilt, err)
	}
	for _, mv := range moves {
		if sched.EdgeOf(0, mv.Device) != mv.From || sched.EdgeOf(1, mv.Device) != mv.To {
			t.Fatalf("move %+v is not the row diff", mv)
		}
	}
	if _, _, err := sched.AdvanceTo(12); err == nil {
		t.Fatal("expected horizon error")
	}
	if _, _, err := sched.AdvanceTo(-1); err == nil {
		t.Fatal("expected negative step error")
	}
}

// TestMaterializeScheduleRoundTrip: materializing a schedule's own adapter
// reproduces the schedule bit for bit.
func TestMaterializeScheduleRoundTrip(t *testing.T) {
	sched, err := GenerateMarkovSchedule(9, 6, 50, 15, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := Materialize(sched)
	if err != nil {
		t.Fatal(err)
	}
	if twin.Edges != sched.Edges || twin.Devices != sched.Devices || twin.Steps != sched.Steps {
		t.Fatalf("twin dims %d/%d/%d", twin.Edges, twin.Devices, twin.Steps)
	}
	for step := 0; step < sched.Steps; step++ {
		for m := 0; m < sched.Devices; m++ {
			if twin.EdgeOf(step, m) != sched.EdgeOf(step, m) {
				t.Fatalf("step %d device %d diverged", step, m)
			}
		}
	}
}
