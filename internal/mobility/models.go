package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// WaypointConfig parameterizes random-waypoint mobility: each device walks
// toward a uniformly random destination at a uniformly random speed, pauses,
// then picks a new destination. It is the classical continuous-space model
// for human mobility in MEC studies.
type WaypointConfig struct {
	Width    float64
	Height   float64
	SpeedMin float64 // distance units per time unit
	SpeedMax float64
	PauseMax int64 // maximum pause at a waypoint, in time units
}

// DefaultWaypoint produces cross-edge transition rates of a few percent per
// time unit on the default 100×100 region, comparable to telecom traces.
func DefaultWaypoint() WaypointConfig {
	return WaypointConfig{Width: 100, Height: 100, SpeedMin: 0.5, SpeedMax: 3, PauseMax: 5}
}

// Validate reports whether the waypoint config is usable.
func (c WaypointConfig) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("mobility: waypoint region %vx%v invalid", c.Width, c.Height)
	case c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin:
		return fmt.Errorf("mobility: waypoint speeds [%v,%v] invalid", c.SpeedMin, c.SpeedMax)
	case c.PauseMax < 0:
		return fmt.Errorf("mobility: negative pause %d", c.PauseMax)
	}
	return nil
}

// waypointState is one device's random-waypoint kinematic state: position,
// destination, speed, remaining pause. Shared by the legacy trace generator
// and the streaming WaypointSource, so the model cannot drift between the
// dense and streaming paths.
type waypointState struct {
	x, y         float64
	destX, destY float64
	speed        float64
	pause        int64
}

// waypointInit draws a device's initial state — position, destination,
// speed — in exactly the order GenerateWaypointTrace always drew.
func waypointInit(rng uniformRNG, cfg WaypointConfig) waypointState {
	var st waypointState
	st.x, st.y = rng.Float64()*cfg.Width, rng.Float64()*cfg.Height
	st.destX, st.destY = rng.Float64()*cfg.Width, rng.Float64()*cfg.Height
	st.speed = cfg.SpeedMin + rng.Float64()*(cfg.SpeedMax-cfg.SpeedMin)
	return st
}

// waypointStep advances one device by one time unit: sit out a pause, or
// walk toward the destination, picking a new one (plus speed and pause) on
// arrival. Draw order is exactly the legacy generator's.
func waypointStep(rng uniformRNG, st *waypointState, cfg WaypointConfig) {
	if st.pause > 0 {
		st.pause--
		return
	}
	dx, dy := st.destX-st.x, st.destY-st.y
	dist := math.Hypot(dx, dy)
	if dist <= st.speed {
		st.x, st.y = st.destX, st.destY
		st.destX, st.destY = rng.Float64()*cfg.Width, rng.Float64()*cfg.Height
		st.speed = cfg.SpeedMin + rng.Float64()*(cfg.SpeedMax-cfg.SpeedMin)
		if cfg.PauseMax > 0 {
			st.pause = rng.Int63n(cfg.PauseMax + 1)
		}
	} else {
		st.x += dx / dist * st.speed
		st.y += dy / dist * st.speed
	}
}

// GenerateWaypointTrace simulates devices moving by random waypoint for the
// given number of time units, attaching to the nearest station at every unit,
// and emits one access record per dwell interval.
func GenerateWaypointTrace(rng *rand.Rand, stations []Station, devices int, horizon int64, cfg WaypointConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(stations) == 0 || devices <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("mobility: waypoint needs stations/devices/horizon > 0")
	}
	trace := &Trace{}
	for m := 0; m < devices; m++ {
		st := waypointInit(rng, cfg)
		cur := NearestStation(stations, st.x, st.y)
		var start int64
		for t := int64(1); t <= horizon; t++ {
			waypointStep(rng, &st, cfg)
			if t == horizon {
				if err := trace.Append(Record{Device: m, Station: cur, Start: start, End: horizon}); err != nil {
					return nil, err
				}
				break
			}
			next := NearestStation(stations, st.x, st.y)
			if next != cur {
				if err := trace.Append(Record{Device: m, Station: cur, Start: start, End: t}); err != nil {
					return nil, err
				}
				cur, start = next, t
			}
		}
	}
	trace.Sort()
	return trace, nil
}

// MarkovConfig parameterizes station-level Markov mobility: at every time
// unit a device stays on its station with probability StayProb and otherwise
// hops to one of its Neighbors nearest stations uniformly. This is the
// "classical mobility model such as Markov mobility" the paper cites for
// predicting device locations.
type MarkovConfig struct {
	StayProb  float64
	Neighbors int
}

// DefaultMarkov keeps devices on a station ~95% of time units.
func DefaultMarkov() MarkovConfig { return MarkovConfig{StayProb: 0.95, Neighbors: 4} }

// Validate reports whether the Markov config is usable.
func (c MarkovConfig) Validate() error {
	switch {
	case c.StayProb < 0 || c.StayProb > 1:
		return fmt.Errorf("mobility: stay probability %v outside [0,1]", c.StayProb)
	case c.Neighbors <= 0:
		return fmt.Errorf("mobility: need ≥ 1 neighbor, got %d", c.Neighbors)
	}
	return nil
}

// GenerateMarkovTrace simulates devices hopping between neighbouring
// stations with a stay/hop Markov chain and emits dwell-interval records.
func GenerateMarkovTrace(rng *rand.Rand, stations []Station, devices int, horizon int64, cfg MarkovConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(stations) == 0 || devices <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("mobility: markov needs stations/devices/horizon > 0")
	}
	neighbors := nearestNeighbors(stations, cfg.Neighbors)
	trace := &Trace{}
	for m := 0; m < devices; m++ {
		cur := rng.Intn(len(stations))
		var start int64
		for t := int64(1); t <= horizon; t++ {
			if t == horizon {
				if err := trace.Append(Record{Device: m, Station: cur, Start: start, End: horizon}); err != nil {
					return nil, err
				}
				break
			}
			next := cur
			if rng.Float64() >= cfg.StayProb {
				nb := neighbors[cur]
				next = nb[rng.Intn(len(nb))]
			}
			if next != cur {
				if err := trace.Append(Record{Device: m, Station: cur, Start: start, End: t}); err != nil {
					return nil, err
				}
				cur, start = next, t
			}
		}
	}
	trace.Sort()
	return trace, nil
}

// nearestNeighbors returns, for every station, the indices of its k nearest
// other stations (fewer when the deployment is smaller than k+1).
func nearestNeighbors(stations []Station, k int) [][]int {
	type distIdx struct {
		d   float64
		idx int
	}
	out := make([][]int, len(stations))
	for i, s := range stations {
		ds := make([]distIdx, 0, len(stations)-1)
		for j, o := range stations {
			if i == j {
				continue
			}
			dx, dy := s.X-o.X, s.Y-o.Y
			ds = append(ds, distIdx{d: dx*dx + dy*dy, idx: j})
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
		n := k
		if n > len(ds) {
			n = len(ds)
		}
		nb := make([]int, 0, n)
		for _, di := range ds[:n] {
			nb = append(nb, di.idx)
		}
		if len(nb) == 0 {
			nb = []int{i} // single-station deployment: hop to self
		}
		out[i] = nb
	}
	return out
}
