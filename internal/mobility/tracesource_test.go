package mobility

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// traceFixture builds a generated Markov trace (every device attached from
// time 0, the tracegen shape), its station clustering, the dense BuildSchedule
// lowering, and the same trace serialized in time order.
func traceFixture(t *testing.T, edges, devices, steps int, stepDur int64) (*Trace, []int, *Schedule) {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	stations, err := PlaceStations(rng, 12, PlacementConfig{Width: 100, Height: 100})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateMarkovTrace(rng, stations, devices, int64(steps)*stepDur, MarkovConfig{StayProb: 0.7, Neighbors: 3})
	if err != nil {
		t.Fatal(err)
	}
	edgeOf, err := ClusterStations(rng, stations, edges)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(trace, edgeOf, edges, devices, steps, stepDur)
	if err != nil {
		t.Fatal(err)
	}
	return trace, edgeOf, sched
}

// TestTraceSourceMatchesBuildSchedule: streaming a time-sorted trace file
// reproduces exactly the dense BuildSchedule lowering, in both CSV and NDJSON
// formats — the two paths share recordSteps, and this pins that they cannot
// drift.
func TestTraceSourceMatchesBuildSchedule(t *testing.T) {
	const edges, devices, steps, stepDur = 3, 25, 18, 4
	trace, edgeOf, sched := traceFixture(t, edges, devices, steps, stepDur)
	trace.SortByTime()
	for _, format := range []TraceFormat{TraceCSV, TraceNDJSON} {
		name := "csv"
		write := trace.WriteCSV
		if format == TraceNDJSON {
			name, write = "ndjson", trace.WriteNDJSON
		}
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := write(&buf); err != nil {
				t.Fatal(err)
			}
			src, err := NewTraceSource(&buf, TraceSourceConfig{
				Edges: edges, Devices: devices, Steps: steps, StepDur: stepDur,
				EdgeOfStation: edgeOf, Format: format,
			})
			if err != nil {
				t.Fatal(err)
			}
			rows := walkSource(t, src)
			for step := range rows {
				for m, e := range rows[step] {
					if want := sched.EdgeOf(step, m); e != want {
						t.Fatalf("step %d device %d: streamed %d, dense %d", step, m, e, want)
					}
				}
			}
		})
	}
}

// TestTraceSourceJumpAndRewind: a forward jump folds all due records and
// reports rebuilt; rewinding a consumed stream is an error.
func TestTraceSourceJumpAndRewind(t *testing.T) {
	const edges, devices, steps, stepDur = 3, 25, 18, 4
	trace, edgeOf, sched := traceFixture(t, edges, devices, steps, stepDur)
	trace.SortByTime()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	src, err := NewTraceSource(&buf, TraceSourceConfig{
		Edges: edges, Devices: devices, Steps: steps, StepDur: stepDur,
		EdgeOfStation: edgeOf, Format: TraceCSV,
	})
	if err != nil {
		t.Fatal(err)
	}
	moves, rebuilt, err := src.AdvanceTo(11)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt || moves != nil {
		t.Fatalf("jump: moves %v rebuilt %v, want nil/true", moves, rebuilt)
	}
	for m, e := range src.Snapshot(nil) {
		if want := sched.EdgeOf(11, m); e != want {
			t.Fatalf("device %d: jumped row %d, dense %d", m, e, want)
		}
	}
	if _, _, err := src.AdvanceTo(4); err == nil {
		t.Fatal("expected rewind error")
	}
	if _, _, err := src.AdvanceTo(steps); err == nil {
		t.Fatal("expected horizon error")
	}
}

// TestTraceSourceUnseenDevicesSitOnEdgeZero pins the documented divergence
// from BuildSchedule's leading-gap back-fill: a device with no record yet is
// on edge 0 until its first record arrives.
func TestTraceSourceUnseenDevicesSitOnEdgeZero(t *testing.T) {
	// Device 1 attaches to station 1 (edge 1) from time 4; device 0 has no
	// records at all.
	csv := "device,station,start,end\n1,1,4,12\n"
	src, err := NewTraceSource(strings.NewReader(csv), TraceSourceConfig{
		Edges: 2, Devices: 2, Steps: 6, StepDur: 2,
		EdgeOfStation: []int{0, 1}, Format: TraceCSV,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := walkSource(t, src)
	for step, want1 := range []int{0, 0, 1, 1, 1, 1} { // firstStep = ceil(4/2) = 2
		if rows[step][0] != 0 {
			t.Fatalf("step %d: recordless device left edge 0", step)
		}
		if rows[step][1] != want1 {
			t.Fatalf("step %d: device 1 on edge %d, want %d", step, rows[step][1], want1)
		}
	}
}

// TestTraceSourceRejectsBadInput: malformed lines, out-of-order starts,
// per-device overlaps and unknown stations all surface as errors with the
// offending line number; records for devices beyond the population are
// skipped, matching BuildSchedule.
func TestTraceSourceRejectsBadInput(t *testing.T) {
	cfg := TraceSourceConfig{
		Edges: 2, Devices: 2, Steps: 4, StepDur: 10,
		EdgeOfStation: []int{0, 1}, Format: TraceCSV,
	}
	build := func(body string) (*TraceSource, error) {
		return NewTraceSource(strings.NewReader(body), cfg)
	}

	bad := []struct {
		name string
		body string
	}{
		{"field count", "0,0,5\n"},
		{"bad number", "0,0,zero,5\n"},
		{"end before start", "0,0,5,3\n"},
		{"negative device", "-1,0,0,5\n"},
		{"unknown station", "0,9,0,5\n"},
		{"overlap", "0,0,0,20\n0,1,10,30\n"},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := build(tt.body); err == nil {
				t.Fatalf("accepted %q", tt.body)
			}
		})
	}

	// Out-of-order starts surface once the second record is scanned.
	src, err := build("0,0,10,12\n1,0,5,8\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.AdvanceTo(1); err == nil || !strings.Contains(err.Error(), "sorted by start") {
		t.Fatalf("out-of-order trace: err %v", err)
	}

	// NDJSON parse errors carry the line number too.
	ndCfg := cfg
	ndCfg.Format = TraceNDJSON
	if _, err := NewTraceSource(strings.NewReader("{not json}\n"), ndCfg); err == nil {
		t.Fatal("accepted malformed NDJSON")
	}

	// Devices beyond the configured population are skipped, not errors.
	src, err = build("9,1,0,40\n")
	if err != nil {
		t.Fatal(err)
	}
	for m, e := range src.Snapshot(nil) {
		if e != 0 {
			t.Fatalf("skipped-device record moved device %d to edge %d", m, e)
		}
	}
}

// TestTraceSourceConfigValidation covers the constructor's config checks.
func TestTraceSourceConfigValidation(t *testing.T) {
	good := TraceSourceConfig{
		Edges: 2, Devices: 2, Steps: 4, StepDur: 10,
		EdgeOfStation: []int{0, 1}, Format: TraceCSV,
	}
	mutate := []struct {
		name string
		f    func(*TraceSourceConfig)
	}{
		{"zero edges", func(c *TraceSourceConfig) { c.Edges = 0 }},
		{"zero devices", func(c *TraceSourceConfig) { c.Devices = 0 }},
		{"zero steps", func(c *TraceSourceConfig) { c.Steps = 0 }},
		{"zero step duration", func(c *TraceSourceConfig) { c.StepDur = 0 }},
		{"empty clustering", func(c *TraceSourceConfig) { c.EdgeOfStation = nil }},
		{"clustering out of range", func(c *TraceSourceConfig) { c.EdgeOfStation = []int{0, 5} }},
		{"unknown format", func(c *TraceSourceConfig) { c.Format = TraceFormat(9) }},
	}
	for _, tt := range mutate {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.f(&cfg)
			if _, err := NewTraceSource(strings.NewReader(""), cfg); err == nil {
				t.Fatal("expected config error")
			}
		})
	}
	if _, err := NewTraceSource(strings.NewReader(""), good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
