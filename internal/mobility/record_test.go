package mobility

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

// TestRecordCheck covers the single validation shared by Trace.Append and
// the streaming TraceSource.
func TestRecordCheck(t *testing.T) {
	if err := (Record{Device: 0, Station: 3, Start: 2, End: 9}).Check(); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		r    Record
	}{
		{"negative device", Record{Device: -1, Station: 0, Start: 0, End: 1}},
		{"negative station", Record{Device: 0, Station: -2, Start: 0, End: 1}},
		{"end equals start", Record{Device: 0, Station: 0, Start: 5, End: 5}},
		{"end before start", Record{Device: 0, Station: 0, Start: 5, End: 3}},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.r.Check(); err == nil {
				t.Fatalf("accepted %+v", tt.r)
			}
		})
	}
}

// TestSortByTimeOrder: SortByTime yields global (start, device, end) order —
// the layout the streaming TraceSource requires — from any input order,
// including the device-major order Sort produces.
func TestSortByTimeOrder(t *testing.T) {
	tr := &Trace{}
	records := []Record{
		{Device: 2, Station: 0, Start: 8, End: 12},
		{Device: 0, Station: 1, Start: 8, End: 10},
		{Device: 1, Station: 2, Start: 0, End: 8},
		{Device: 0, Station: 0, Start: 0, End: 8},
		{Device: 0, Station: 2, Start: 12, End: 20},
	}
	for _, r := range records {
		if err := tr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	tr.Sort() // device-major first, proving SortByTime re-orders
	tr.SortByTime()
	if !sort.SliceIsSorted(tr.Records, func(i, j int) bool {
		a, b := tr.Records[i], tr.Records[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.End < b.End
	}) {
		t.Fatalf("records not in time order: %+v", tr.Records)
	}
	if tr.Records[0].Device != 0 || tr.Records[0].Start != 0 {
		t.Fatalf("first record %+v, want device 0 start 0", tr.Records[0])
	}
}

// TestWriteNDJSONRoundTrip: the NDJSON encoding is one JSON object per line
// with the Record field names, decoding back to the same records.
func TestWriteNDJSONRoundTrip(t *testing.T) {
	tr := &Trace{}
	want := []Record{
		{Device: 0, Station: 4, Start: 0, End: 7},
		{Device: 3, Station: 1, Start: 7, End: 9},
	}
	for _, r := range want {
		if err := tr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(want) {
		t.Fatalf("%d lines, want %d", len(lines), len(want))
	}
	for i, line := range lines {
		if !strings.Contains(line, `"device"`) || !strings.Contains(line, `"start"`) {
			t.Fatalf("line %d lacks the record field names: %s", i, line)
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatal(err)
		}
		if r != want[i] {
			t.Fatalf("line %d decoded %+v, want %+v", i, r, want[i])
		}
	}
}
