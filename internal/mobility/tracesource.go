package mobility

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TraceFormat selects the wire format of a streaming trace reader.
type TraceFormat int

const (
	// TraceCSV is the "device,station,start,end" format of Trace.WriteCSV
	// and cmd/tracegen (header line optional).
	TraceCSV TraceFormat = iota
	// TraceNDJSON is one JSON object per line with the Record field names
	// ("device", "station", "start", "end"), the format of Trace.WriteNDJSON.
	TraceNDJSON
)

// TraceSourceConfig shapes a streaming trace source: the population and step
// horizon, the trace-time units per FL step, and the station→edge clustering
// that lowers station IDs to edges.
type TraceSourceConfig struct {
	Edges   int
	Devices int
	Steps   int
	// StepDur is the trace-time duration of one FL step; record timestamps
	// are lowered to steps through recordSteps, exactly as BuildSchedule does.
	StepDur int64
	// EdgeOfStation maps station IDs to edges (ClusterStations output).
	EdgeOfStation []int
	Format        TraceFormat
}

func (c TraceSourceConfig) validate() error {
	switch {
	case c.Edges <= 0 || c.Devices <= 0 || c.Steps <= 0:
		return fmt.Errorf("mobility: trace source dims %d/%d/%d must be positive", c.Edges, c.Devices, c.Steps)
	case c.StepDur <= 0:
		return fmt.Errorf("mobility: step duration %d must be positive", c.StepDur)
	case len(c.EdgeOfStation) == 0:
		return fmt.Errorf("mobility: trace source needs a station→edge clustering")
	case c.Format != TraceCSV && c.Format != TraceNDJSON:
		return fmt.Errorf("mobility: unknown trace format %d", c.Format)
	}
	for st, e := range c.EdgeOfStation {
		if e < 0 || e >= c.Edges {
			return fmt.Errorf("mobility: station %d clustered to invalid edge %d", st, e)
		}
	}
	return nil
}

// TraceSource streams a time-ordered access-record file (CSV or NDJSON) as a
// StepSource, holding only an O(Devices) window: the current attachment row,
// one timestamp per device for overlap rejection, and a single look-ahead
// record. It never materializes the schedule, so trace files far larger than
// memory drive runs at constant residency.
//
// Format contract: records must be globally ordered by non-decreasing Start
// (Trace.SortByTime order) — that is what makes a one-record look-ahead
// sufficient — and a device's records must not overlap in time. Record
// lowering shares recordSteps with BuildSchedule: a device attaches (at the
// record's station's edge) from the first step boundary inside the record and
// carries that edge forward until a later record moves it. The one divergence
// from the dense path is deliberate: BuildSchedule back-fills a device's
// leading gap from its first record (a whole-trace lookahead), while the
// streaming source keeps yet-unseen devices on edge 0. Traces that open every
// device at time 0 — tracegen's output does — lower identically on both
// paths.
type TraceSource struct {
	cfg TraceSourceConfig

	sc     *bufio.Scanner
	lineNo int
	eof    bool

	row       []int   // current edge per device
	lastEnd   []int64 // end of the last accepted record per device
	lastStart int64   // global Start-order enforcement

	pending    Record // parsed record not yet due (firstStep beyond position)
	hasPending bool

	moves []Move
	pos   int
}

// NewTraceSource builds a streaming source over r, positioned at step 0 with
// every device's step-0 record (if any) already applied; devices with no
// record yet sit on edge 0 until their first record arrives.
func NewTraceSource(r io.Reader, cfg TraceSourceConfig) (*TraceSource, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	s := &TraceSource{
		cfg:       cfg,
		sc:        sc,
		row:       make([]int, cfg.Devices),
		lastEnd:   make([]int64, cfg.Devices),
		lastStart: -1 << 62,
	}
	for m := range s.lastEnd {
		s.lastEnd[m] = -1 << 62
	}
	if err := s.applyDue(0, nil); err != nil {
		return nil, err
	}
	return s, nil
}

// Dims returns (edges, devices, steps).
func (s *TraceSource) Dims() (int, int, int) { return s.cfg.Edges, s.cfg.Devices, s.cfg.Steps }

// AdvanceTo positions the source at step t; see StepSource. A single-step
// advance consumes exactly the records whose first covered step boundary is
// t — O(records due + moves), independent of Devices — and emits the edge
// changes ascending in device ID.
func (s *TraceSource) AdvanceTo(t int) ([]Move, bool, error) {
	switch {
	case t < 0 || t >= s.cfg.Steps:
		return nil, false, fmt.Errorf("mobility: step %d outside source horizon [0,%d)", t, s.cfg.Steps)
	case t == s.pos:
		return nil, false, nil
	case t < s.pos:
		return nil, false, fmt.Errorf("mobility: streaming source cannot rewind from step %d to %d", s.pos, t)
	}
	if t != s.pos+1 {
		// Jump: fold every due record into the row; the caller resyncs
		// from Snapshot, so no move stream is needed.
		if err := s.applyDue(t, nil); err != nil {
			return nil, false, err
		}
		s.pos = t
		return nil, true, nil
	}
	s.moves = s.moves[:0]
	if err := s.applyDue(t, &s.moves); err != nil {
		return nil, false, err
	}
	// Records arrive in Start order, not device order; the move contract
	// is ascending device IDs. Each device moves at most once per step
	// (overlapping records are rejected), so a plain sort suffices.
	sort.Slice(s.moves, func(i, j int) bool { return s.moves[i].Device < s.moves[j].Device })
	s.pos = t
	return s.moves, false, nil
}

// Snapshot appends the current attachment row into dst[:0].
func (s *TraceSource) Snapshot(dst []int) []int { return append(dst[:0], s.row...) }

// applyDue consumes records whose first covered step boundary is ≤ t,
// updating the attachment row and, when moves is non-nil, recording each edge
// change. The first not-yet-due record is held as the look-ahead.
func (s *TraceSource) applyDue(t int, moves *[]Move) error {
	for {
		r, ok, err := s.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		first, last := recordSteps(r.Start, r.End, s.cfg.StepDur)
		if first > last || last < 0 {
			continue // spans no step boundary: attaches nothing on either path
		}
		if first < 0 {
			first = 0
		}
		if first > int64(t) {
			s.pending, s.hasPending = r, true
			return nil
		}
		e := s.cfg.EdgeOfStation[r.Station]
		if e != s.row[r.Device] {
			if moves != nil {
				*moves = append(*moves, Move{Device: r.Device, From: s.row[r.Device], To: e})
			}
			s.row[r.Device] = e
		}
	}
}

// next returns the next validated record, preferring the look-ahead. Records
// for devices beyond the configured population are skipped, matching
// BuildSchedule; everything else is validated strictly: well-formed fields,
// station inside the clustering, globally non-decreasing Start, and no
// per-device time overlap.
func (s *TraceSource) next() (Record, bool, error) {
	if s.hasPending {
		s.hasPending = false
		return s.pending, true, nil
	}
	for !s.eof {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				return Record{}, false, fmt.Errorf("mobility: scan trace: %w", err)
			}
			s.eof = true
			return Record{}, false, nil
		}
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		if s.cfg.Format == TraceCSV && s.lineNo == 1 && strings.HasPrefix(line, "device") {
			continue // header
		}
		r, err := s.parse(line)
		if err != nil {
			return Record{}, false, err
		}
		if err := r.Check(); err != nil {
			return Record{}, false, fmt.Errorf("mobility: line %d: %w", s.lineNo, err)
		}
		if r.Start < s.lastStart {
			return Record{}, false, fmt.Errorf("mobility: line %d: start %d out of order (previous %d); streaming traces must be sorted by start time", s.lineNo, r.Start, s.lastStart)
		}
		s.lastStart = r.Start
		if r.Device >= s.cfg.Devices {
			continue // trace may contain more devices than the experiment uses
		}
		if r.Station >= len(s.cfg.EdgeOfStation) {
			return Record{}, false, fmt.Errorf("mobility: line %d: station %d outside clustering (%d stations)", s.lineNo, r.Station, len(s.cfg.EdgeOfStation))
		}
		if r.Start < s.lastEnd[r.Device] {
			return Record{}, false, fmt.Errorf("mobility: line %d: device %d record [%d,%d) overlaps previous record ending at %d", s.lineNo, r.Device, r.Start, r.End, s.lastEnd[r.Device])
		}
		s.lastEnd[r.Device] = r.End
		return r, true, nil
	}
	return Record{}, false, nil
}

// parse decodes one line in the configured format.
func (s *TraceSource) parse(line string) (Record, error) {
	var r Record
	if s.cfg.Format == TraceNDJSON {
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return Record{}, fmt.Errorf("mobility: line %d: %w", s.lineNo, err)
		}
		return r, nil
	}
	fields := strings.Split(line, ",")
	if len(fields) != 4 {
		return Record{}, fmt.Errorf("mobility: line %d: want 4 fields, got %d", s.lineNo, len(fields))
	}
	dev, err := strconv.Atoi(strings.TrimSpace(fields[0]))
	if err != nil {
		return Record{}, fmt.Errorf("mobility: line %d device: %w", s.lineNo, err)
	}
	st, err := strconv.Atoi(strings.TrimSpace(fields[1]))
	if err != nil {
		return Record{}, fmt.Errorf("mobility: line %d station: %w", s.lineNo, err)
	}
	start, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("mobility: line %d start: %w", s.lineNo, err)
	}
	end, err := strconv.ParseInt(strings.TrimSpace(fields[3]), 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("mobility: line %d end: %w", s.lineNo, err)
	}
	return Record{Device: dev, Station: st, Start: start, End: end}, nil
}
