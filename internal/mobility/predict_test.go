package mobility

import (
	"math"
	"math/rand"
	"testing"
)

// twoStationChain: station 0 sticky, station 1 flighty.
func twoStationChain() [][]float64 {
	return [][]float64{{0.9, 0.1}, {0.4, 0.6}}
}

func TestNewPredictorValidation(t *testing.T) {
	ok := twoStationChain()
	if _, err := NewPredictor(ok, []int{0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		trans  [][]float64
		edgeOf []int
		edges  int
	}{
		{"empty chain", nil, nil, 1},
		{"clustering mismatch", ok, []int{0}, 2},
		{"zero edges", ok, []int{0, 1}, 0},
		{"ragged row", [][]float64{{1}, {0.5, 0.5}}, []int{0, 1}, 2},
		{"row not stochastic", [][]float64{{0.5, 0.4}, {0.5, 0.5}}, []int{0, 1}, 2},
		{"negative prob", [][]float64{{1.5, -0.5}, {0.5, 0.5}}, []int{0, 1}, 2},
		{"bad edge id", ok, []int{0, 5}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewPredictor(tt.trans, tt.edgeOf, tt.edges); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestStationDistributionSteps(t *testing.T) {
	p, err := NewPredictor(twoStationChain(), []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 0 steps: point mass on the current station.
	d0, err := p.StationDistribution(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d0[0] != 1 || d0[1] != 0 {
		t.Fatalf("0-step distribution %v", d0)
	}
	// 1 step: exactly the transition row.
	d1, err := p.StationDistribution(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1[0]-0.9) > 1e-12 || math.Abs(d1[1]-0.1) > 1e-12 {
		t.Fatalf("1-step distribution %v", d1)
	}
	// Long horizon: converges to the stationary distribution (0.8, 0.2).
	dInf, err := p.StationDistribution(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dInf[0]-0.8) > 1e-9 || math.Abs(dInf[1]-0.2) > 1e-9 {
		t.Fatalf("long-horizon distribution %v, want (0.8, 0.2)", dInf)
	}
	// Errors.
	if _, err := p.StationDistribution(5, 1); err == nil {
		t.Fatal("expected station range error")
	}
	if _, err := p.StationDistribution(0, -1); err == nil {
		t.Fatal("expected horizon error")
	}
}

func TestEdgeProbabilitiesAggregateStations(t *testing.T) {
	// Both stations cluster to edge 0 → edge probability is always 1.
	p, err := NewPredictor(twoStationChain(), []int{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := p.EdgeProbabilities(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[0]-1) > 1e-12 {
		t.Fatalf("edge probability %v, want 1", probs[0])
	}
}

func TestExpectedMembersSumsToDevices(t *testing.T) {
	p, err := NewPredictor(twoStationChain(), []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := p.ExpectedMembers([]int{0, 0, 1, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := exp[0] + exp[1]
	if math.Abs(total-5) > 1e-9 {
		t.Fatalf("expected members sum %v, want 5", total)
	}
}

// TestPredictorSingleObservationUniform: a trace with one record per device
// has no consecutive-record pairs, so the fitted chain is all uniform
// fallback rows — and the predictor built on it stays exactly uniform at
// every horizon instead of degenerating or erroring.
func TestPredictorSingleObservationUniform(t *testing.T) {
	tr := &Trace{}
	for m := 0; m < 4; m++ {
		if err := tr.Append(Record{Device: m, Station: m % 2, Start: 0, End: 10}); err != nil {
			t.Fatal(err)
		}
	}
	chain, err := EstimateTransitions(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range chain {
		for j, p := range row {
			if math.Abs(p-0.5) > 1e-15 {
				t.Fatalf("single-observation chain [%d][%d] = %v, want uniform 0.5", i, j, p)
			}
		}
	}
	p, err := NewPredictor(chain, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, horizon := range []int{1, 5, 50} {
		probs, err := p.EdgeProbabilities(0, horizon)
		if err != nil {
			t.Fatal(err)
		}
		for n, q := range probs {
			if math.Abs(q-0.5) > 1e-12 {
				t.Fatalf("horizon %d edge %d probability %v, want 0.5", horizon, n, q)
			}
		}
	}
}

// End-to-end: fit a chain from a generated trace and check the predictor's
// long-horizon edge occupancy roughly matches the realized schedule's.
func TestPredictorMatchesRealizedOccupancy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	stations, err := PlaceStations(rng, 8, PlacementConfig{Width: 100, Height: 100})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateMarkovTrace(rng, stations, 40, 600, MarkovConfig{StayProb: 0.85, Neighbors: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Self-transitions: records only capture hops, so rebuild a per-step
	// chain from the schedule instead of the dwell records.
	edgeOf, err := ClusterStations(rng, stations, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(trace, edgeOf, 3, 40, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	hopChain, err := EstimateTransitions(trace, len(stations))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(hopChain, edgeOf, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Hop-chain stationary edge mass vs realized occupancy share: both are
	// distributions over edges; they should agree coarsely (the hop chain
	// ignores dwell times, so only the support and rough shape match).
	occ := sched.EdgeOccupancy()
	occTotal := 0.0
	for _, o := range occ {
		occTotal += o
	}
	probs, err := p.EdgeProbabilities(0, 300)
	if err != nil {
		t.Fatal(err)
	}
	for n := range probs {
		if probs[n] < 0 || probs[n] > 1 {
			t.Fatalf("edge probability %v outside [0,1]", probs[n])
		}
		if occ[n]/occTotal > 0.15 && probs[n] < 0.01 {
			t.Fatalf("edge %d carries %.0f%% of occupancy but predictor gives %.3f",
				n, 100*occ[n]/occTotal, probs[n])
		}
	}
}
