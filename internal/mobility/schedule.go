package mobility

import (
	"fmt"
	"math/rand"
)

// Schedule is the realized mobility indicator B^t_{n,m} of §II-A: for every
// FL time step t it records which edge each device is attached to. Because a
// device attaches to exactly one (nearest) edge, the per-step edge device
// sets partition the device set (Eq. 1), which Validate checks.
type Schedule struct {
	Edges   int
	Devices int
	Steps   int
	// edgeOf[t][m] is the edge device m is attached to at time step t.
	edgeOf [][]int

	// StepSource adapter state (source.go): srcPos is the adapter cursor
	// encoded as current step + 1 so the zero value means "unpositioned",
	// and srcMoves is the pooled move buffer of the single-step row diff.
	srcPos   int
	srcMoves []Move
}

// NewSchedule allocates a schedule with every device on edge 0.
func NewSchedule(edges, devices, steps int) (*Schedule, error) {
	if edges <= 0 || devices <= 0 || steps <= 0 {
		return nil, fmt.Errorf("mobility: schedule dims %d/%d/%d must be positive", edges, devices, steps)
	}
	s := &Schedule{Edges: edges, Devices: devices, Steps: steps, edgeOf: make([][]int, steps)}
	for t := range s.edgeOf {
		s.edgeOf[t] = make([]int, devices)
	}
	return s, nil
}

// Set assigns device m to edge n at step t.
func (s *Schedule) Set(t, m, n int) {
	s.edgeOf[t][m] = n
}

// EdgeOf returns the edge device m is attached to at step t.
func (s *Schedule) EdgeOf(t, m int) int { return s.edgeOf[t][m] }

// MembersAt returns M^t_n, the devices attached to edge n at step t.
// It allocates a fresh slice per call and rescans every device; per-step
// control loops should use a MemberIndex (all edges in one O(Devices+Edges)
// pass) or MembersAtInto (caller-owned buffer) instead.
func (s *Schedule) MembersAt(t, n int) []int {
	return s.MembersAtInto(nil, t, n)
}

// MembersAtInto appends the devices attached to edge n at step t to dst[:0]
// and returns it, growing dst only when its capacity is insufficient. Device
// IDs are ascending, matching MembersAt.
func (s *Schedule) MembersAtInto(dst []int, t, n int) []int {
	dst = dst[:0]
	for m, e := range s.edgeOf[t] {
		if e == n {
			dst = append(dst, m)
		}
	}
	return dst
}

// Validate checks the partition property (Eq. 1): every device is attached
// to exactly one valid edge at every step.
func (s *Schedule) Validate() error {
	if len(s.edgeOf) != s.Steps {
		return fmt.Errorf("mobility: schedule has %d step rows, want %d", len(s.edgeOf), s.Steps)
	}
	for t, row := range s.edgeOf {
		if len(row) != s.Devices {
			return fmt.Errorf("mobility: step %d has %d devices, want %d", t, len(row), s.Devices)
		}
		for m, e := range row {
			if e < 0 || e >= s.Edges {
				return fmt.Errorf("mobility: step %d device %d on invalid edge %d", t, m, e)
			}
		}
	}
	return nil
}

// TransitionRate returns the fraction of device-steps at which the attached
// edge changed relative to the previous step — the cross-edge mobility
// intensity of the trace.
func (s *Schedule) TransitionRate() float64 {
	if s.Steps < 2 {
		return 0
	}
	changes := 0
	for t := 1; t < s.Steps; t++ {
		for m := 0; m < s.Devices; m++ {
			if s.edgeOf[t][m] != s.edgeOf[t-1][m] {
				changes++
			}
		}
	}
	return float64(changes) / float64((s.Steps-1)*s.Devices)
}

// EdgeOccupancy returns the mean number of devices per edge over all steps.
func (s *Schedule) EdgeOccupancy() []float64 {
	occ := make([]float64, s.Edges)
	for t := 0; t < s.Steps; t++ {
		for _, e := range s.edgeOf[t] {
			occ[e]++
		}
	}
	for n := range occ {
		occ[n] /= float64(s.Steps)
	}
	return occ
}

// BuildSchedule converts a trace into a per-step edge schedule. Time is
// discretized into steps of stepDur trace-time units; the station a device
// accesses at the start of a step determines its edge through edgeOf
// (the station→edge clustering). Gaps are filled by carrying the last known
// station forward (devices stay attached to the nearest edge while idle);
// leading gaps are back-filled from the device's first record.
func BuildSchedule(trace *Trace, edgeOfStation []int, edges, devices, steps int, stepDur int64) (*Schedule, error) {
	if stepDur <= 0 {
		return nil, fmt.Errorf("mobility: step duration %d must be positive", stepDur)
	}
	s, err := NewSchedule(edges, devices, steps)
	if err != nil {
		return nil, err
	}
	// stationAt[t][m], -1 = unknown.
	stationAt := make([][]int, steps)
	for t := range stationAt {
		stationAt[t] = make([]int, devices)
		for m := range stationAt[t] {
			stationAt[t][m] = -1
		}
	}
	for _, r := range trace.Records {
		if r.Device >= devices {
			continue // trace may contain more devices than the experiment uses
		}
		if r.Station >= len(edgeOfStation) {
			return nil, fmt.Errorf("mobility: record references station %d outside clustering (%d stations)", r.Station, len(edgeOfStation))
		}
		first, last := recordSteps(r.Start, r.End, stepDur)
		for t := first; t <= last && t < int64(steps); t++ {
			if t < 0 {
				continue
			}
			stationAt[t][r.Device] = r.Station
		}
	}
	for m := 0; m < devices; m++ {
		// Back-fill a leading gap from the first known station.
		firstKnown := -1
		for t := 0; t < steps; t++ {
			if stationAt[t][m] >= 0 {
				firstKnown = t
				break
			}
		}
		if firstKnown < 0 {
			return nil, fmt.Errorf("mobility: device %d has no records within the horizon", m)
		}
		for t := 0; t < firstKnown; t++ {
			stationAt[t][m] = stationAt[firstKnown][m]
		}
		// Carry forward across gaps.
		for t := 1; t < steps; t++ {
			if stationAt[t][m] < 0 {
				stationAt[t][m] = stationAt[t-1][m]
			}
		}
		for t := 0; t < steps; t++ {
			s.Set(t, m, edgeOfStation[stationAt[t][m]])
		}
	}
	return s, s.Validate()
}

// recordSteps maps one access record [start, end) onto the FL steps whose
// boundaries it covers: the first step whose boundary the station holds at
// (start rounded up to a step boundary) through the last boundary before
// end. A record that spans no step boundary yields first > last and covers
// nothing. This is the one trace→attachment lowering both the dense
// (BuildSchedule) and streaming (TraceSource) paths use, so the two cannot
// drift.
func recordSteps(start, end, stepDur int64) (first, last int64) {
	first = start / stepDur
	if start%stepDur != 0 {
		first++ // station must hold at the step boundary
	}
	last = (end - 1) / stepDur
	return first, last
}

// GenerateSchedule is the one-call path used by tests and benches: it places
// stations, simulates waypoint mobility, clusters stations into edges, and
// builds the schedule, all from a single seed.
func GenerateSchedule(seed int64, edges, devices, steps, stationsPerEdge int) (*Schedule, error) {
	return GenerateScheduleWaypoint(seed, edges, devices, steps, stationsPerEdge, DefaultWaypoint())
}

// GenerateMarkovSchedule builds a schedule directly from an edge-level
// stay/hop Markov chain: every device starts on a uniformly random edge and
// at each step stays with probability stayProb or hops to a uniformly random
// other edge. It skips the station/trace layer entirely — O(Devices·Steps)
// with no geometry — so it scales to the 100k-device populations of the
// scale benchmark, and stayProb directly controls the transition rate the
// MemberIndex delta path exploits.
func GenerateMarkovSchedule(seed int64, edges, devices, steps int, stayProb float64) (*Schedule, error) {
	if stayProb < 0 || stayProb > 1 {
		return nil, fmt.Errorf("mobility: stay probability %v outside [0,1]", stayProb)
	}
	s, err := NewSchedule(edges, devices, steps)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for m := 0; m < devices; m++ {
		e := rng.Intn(edges)
		s.edgeOf[0][m] = e
		for t := 1; t < steps; t++ {
			// markovNext draws exactly the legacy sequence (one Float64 when
			// edges > 1, one Intn on a hop), so recorded goldens are
			// untouched; MarkovSource advances the same chain per device.
			e = markovNext(rng, e, edges, stayProb)
			s.edgeOf[t][m] = e
		}
	}
	return s, nil
}

// GenerateScheduleWaypoint is GenerateSchedule with an explicit waypoint
// mobility configuration, letting experiments control how fast devices cross
// edges.
func GenerateScheduleWaypoint(seed int64, edges, devices, steps, stationsPerEdge int, wcfg WaypointConfig) (*Schedule, error) {
	rng := rand.New(rand.NewSource(seed))
	nStations := edges * stationsPerEdge
	if nStations < edges {
		nStations = edges
	}
	stations, err := PlaceStations(rng, nStations, DefaultPlacement())
	if err != nil {
		return nil, err
	}
	trace, err := GenerateWaypointTrace(rng, stations, devices, int64(steps), wcfg)
	if err != nil {
		return nil, err
	}
	edgeOfStation, err := ClusterStations(rng, stations, edges)
	if err != nil {
		return nil, err
	}
	return BuildSchedule(trace, edgeOfStation, edges, devices, steps, 1)
}
