package mobility

import "fmt"

// Predictor computes P^t_{n,m} — the probability that device m is attached
// to edge n, t steps ahead — from a fitted station-level Markov chain
// (§II-A: "we can set a variable P^t_{n,m} ∈ [0,1] as the probability that
// device m is accessed to edge n at time step t", using "classical mobility
// models such as Markov mobility"). Combine EstimateTransitions (fit from a
// trace) with a station→edge clustering to build one.
type Predictor struct {
	transitions [][]float64 // station-level chain
	edgeOf      []int       // station → edge
	edges       int
}

// NewPredictor validates and assembles a predictor.
func NewPredictor(transitions [][]float64, edgeOf []int, edges int) (*Predictor, error) {
	n := len(transitions)
	if n == 0 {
		return nil, fmt.Errorf("mobility: predictor needs a non-empty chain")
	}
	if len(edgeOf) != n {
		return nil, fmt.Errorf("mobility: clustering covers %d stations, chain has %d", len(edgeOf), n)
	}
	if edges <= 0 {
		return nil, fmt.Errorf("mobility: predictor needs ≥ 1 edge")
	}
	for i, row := range transitions {
		if len(row) != n {
			return nil, fmt.Errorf("mobility: chain row %d has %d entries, want %d", i, len(row), n)
		}
		sum := 0.0
		for _, p := range row {
			if p < 0 {
				return nil, fmt.Errorf("mobility: negative transition probability in row %d", i)
			}
			sum += p
		}
		if sum < 1-1e-6 || sum > 1+1e-6 {
			return nil, fmt.Errorf("mobility: chain row %d sums to %v", i, sum)
		}
	}
	for s, e := range edgeOf {
		if e < 0 || e >= edges {
			return nil, fmt.Errorf("mobility: station %d clustered to invalid edge %d", s, e)
		}
	}
	return &Predictor{transitions: transitions, edgeOf: edgeOf, edges: edges}, nil
}

// StationDistribution returns the station occupancy distribution `steps`
// transitions ahead of the given current station.
func (p *Predictor) StationDistribution(station, steps int) ([]float64, error) {
	n := len(p.transitions)
	if station < 0 || station >= n {
		return nil, fmt.Errorf("mobility: station %d outside chain of %d", station, n)
	}
	if steps < 0 {
		return nil, fmt.Errorf("mobility: negative horizon %d", steps)
	}
	cur := make([]float64, n)
	cur[station] = 1
	next := make([]float64, n)
	for s := 0; s < steps; s++ {
		for j := range next {
			next[j] = 0
		}
		for i, pi := range cur {
			//machlint:allow floateq sparsity fast path; exact zero rows contribute exactly nothing
			if pi == 0 {
				continue
			}
			for j, tij := range p.transitions[i] {
				next[j] += pi * tij
			}
		}
		cur, next = next, cur
	}
	return cur, nil
}

// EdgeProbabilities returns P^t_{n,·} for one device: the probability of
// being attached to each edge, `steps` transitions ahead of its current
// station.
func (p *Predictor) EdgeProbabilities(station, steps int) ([]float64, error) {
	stationDist, err := p.StationDistribution(station, steps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, p.edges)
	for s, mass := range stationDist {
		out[p.edgeOf[s]] += mass
	}
	return out, nil
}

// ExpectedMembers returns, for each edge, the expected number of the given
// devices attached `steps` ahead — the E[|M^t_n|] a capacity planner would
// use. currentStations[i] is device i's present station.
func (p *Predictor) ExpectedMembers(currentStations []int, steps int) ([]float64, error) {
	out := make([]float64, p.edges)
	for _, st := range currentStations {
		probs, err := p.EdgeProbabilities(st, steps)
		if err != nil {
			return nil, err
		}
		for n, q := range probs {
			out[n] += q
		}
	}
	return out, nil
}
