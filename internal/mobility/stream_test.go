package mobility

import (
	"testing"
)

// TestMarkovSourceMatchesMaterializedTwin is the streaming-vs-dense identity
// at the source level: walking a MarkovSource step by step through its move
// stream reproduces exactly the rows of a materialized twin built from the
// same parameters.
func TestMarkovSourceMatchesMaterializedTwin(t *testing.T) {
	mk := func() *MarkovSource {
		src, err := NewMarkovSource(7, 6, 80, 25, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	twin, err := Materialize(mk())
	if err != nil {
		t.Fatal(err)
	}
	rows := walkSource(t, mk())
	moved := 0
	for step := range rows {
		for m, e := range rows[step] {
			if want := twin.EdgeOf(step, m); e != want {
				t.Fatalf("step %d device %d: streamed %d, materialized %d", step, m, e, want)
			}
			if step > 0 && e != rows[step-1][m] {
				moved++
			}
		}
	}
	if moved == 0 {
		t.Fatal("chain never moved a device; test exercises nothing")
	}
}

// TestMarkovSourceDeterministic: two sources with identical parameters agree
// at every step, and a jump lands on the same row a stepwise walk reaches.
func TestMarkovSourceDeterministic(t *testing.T) {
	a, err := NewMarkovSource(11, 4, 50, 20, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	rows := walkSource(t, a)
	b, err := NewMarkovSource(11, 4, 50, 20, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	moves, rebuilt, err := b.AdvanceTo(13)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt || moves != nil {
		t.Fatalf("jump: moves %v rebuilt %v, want nil/true", moves, rebuilt)
	}
	for m, e := range b.Snapshot(nil) {
		if e != rows[13][m] {
			t.Fatalf("device %d: jumped row %d, stepwise row %d", m, e, rows[13][m])
		}
	}
}

// TestStreamingSourceRefusesRewind: streaming sources have no history to
// return to; repositioning backwards and leaving the horizon are errors, and
// advancing to the current position is a no-op.
func TestStreamingSourceRefusesRewind(t *testing.T) {
	src, err := NewMarkovSource(1, 3, 10, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.AdvanceTo(2); err == nil {
		t.Fatal("expected rewind error")
	}
	if _, _, err := src.AdvanceTo(8); err == nil {
		t.Fatal("expected horizon error")
	}
	if _, _, err := src.AdvanceTo(-1); err == nil {
		t.Fatal("expected negative step error")
	}
	moves, rebuilt, err := src.AdvanceTo(5)
	if err != nil || rebuilt || moves != nil {
		t.Fatalf("no-op advance: moves %v rebuilt %v err %v", moves, rebuilt, err)
	}
}

// TestMarkovSourceStayProbExtremes pins the chain's boundary behavior:
// stayProb 1 freezes every device, stayProb 0 moves every device every step,
// and a single edge can never produce a move regardless of stayProb.
func TestMarkovSourceStayProbExtremes(t *testing.T) {
	frozen, err := NewMarkovSource(2, 5, 30, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := frozen.Snapshot(nil)
	for step := 1; step < 10; step++ {
		moves, _, err := frozen.AdvanceTo(step)
		if err != nil {
			t.Fatal(err)
		}
		if len(moves) != 0 {
			t.Fatalf("stayProb 1 moved %d devices at step %d", len(moves), step)
		}
	}
	for m, e := range frozen.Snapshot(nil) {
		if e != first[m] {
			t.Fatalf("stayProb 1 changed device %d", m)
		}
	}

	churn, err := NewMarkovSource(2, 5, 30, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step < 10; step++ {
		moves, _, err := churn.AdvanceTo(step)
		if err != nil {
			t.Fatal(err)
		}
		if len(moves) != 30 {
			t.Fatalf("stayProb 0 moved %d of 30 devices at step %d", len(moves), step)
		}
	}

	lone, err := NewMarkovSource(2, 1, 30, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step < 10; step++ {
		moves, _, err := lone.AdvanceTo(step)
		if err != nil {
			t.Fatal(err)
		}
		if len(moves) != 0 {
			t.Fatalf("single edge produced moves at step %d", step)
		}
	}
}

// TestStreamingSourceConstructorValidation: bad dimensions and parameters are
// rejected at construction for all three generator sources.
func TestStreamingSourceConstructorValidation(t *testing.T) {
	if _, err := NewMarkovSource(1, 0, 10, 5, 0.5); err == nil {
		t.Fatal("expected dims error")
	}
	if _, err := NewMarkovSource(1, 3, 10, 5, 1.5); err == nil {
		t.Fatal("expected stay probability error")
	}
	if _, err := NewWaypointSource(1, 0, 10, 5, 2, DefaultWaypoint()); err == nil {
		t.Fatal("expected waypoint dims error")
	}
	if _, err := NewWaypointSource(1, 3, 10, 5, 2, WaypointConfig{}); err == nil {
		t.Fatal("expected waypoint config error")
	}
	if _, err := NewLevySource(1, 3, 10, 5, 2, LevyConfig{}); err == nil {
		t.Fatal("expected levy config error")
	}
}

// TestGeoSourcesMatchMaterializedTwin: the waypoint and Lévy streaming
// sources walk bit-identically to their materialized twins and satisfy the
// partition property (Materialize validates it).
func TestGeoSourcesMatchMaterializedTwin(t *testing.T) {
	build := []struct {
		name string
		mk   func() (StepSource, error)
	}{
		{"waypoint", func() (StepSource, error) { return NewWaypointSource(5, 4, 40, 15, 3, DefaultWaypoint()) }},
		{"levy", func() (StepSource, error) { return NewLevySource(5, 4, 40, 15, 3, DefaultLevy()) }},
	}
	for _, b := range build {
		t.Run(b.name, func(t *testing.T) {
			src, err := b.mk()
			if err != nil {
				t.Fatal(err)
			}
			twinSrc, err := b.mk()
			if err != nil {
				t.Fatal(err)
			}
			twin, err := Materialize(twinSrc)
			if err != nil {
				t.Fatal(err)
			}
			rows := walkSource(t, src)
			for step := range rows {
				for m, e := range rows[step] {
					if want := twin.EdgeOf(step, m); e != want {
						t.Fatalf("step %d device %d: streamed %d, materialized %d", step, m, e, want)
					}
				}
			}
		})
	}
}
