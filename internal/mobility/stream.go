package mobility

import (
	"fmt"
	"math/rand"
)

// This file holds the streaming generator sources: the Markov, waypoint and
// Lévy mobility models as StepSources that keep only an O(Devices) window
// (current row + per-device state) instead of materializing Steps rows.
//
// RNG draw-order preservation (DESIGN.md §12): the legacy dense generators
// draw device-major from ONE shared math/rand stream, so a device's draws
// sit at data-dependent offsets that only exist once every earlier device's
// whole trajectory has been drawn — a step-major streaming emitter would
// need a full per-device math/rand state (~4.9 KB each, gigabytes at 1M
// devices) to reproduce them. The streaming sources therefore give every
// device its own one-word splitmix64 substream and preserve the *per-device
// draw order* of the legacy models through the shared steppers (markovNext,
// waypointStep, levyStep): the chain logic cannot drift, the legacy
// generators and their recorded goldens stay byte-identical, and
// streaming-vs-dense bit-identity is enforced where it matters — between a
// source and its Materialize'd twin through the whole engine.

// uniformRNG is the draw interface of the per-device mobility steppers;
// *rand.Rand (legacy trace generators) and *splitmixRNG (streaming sources)
// both satisfy it.
type uniformRNG interface {
	Float64() float64
	Intn(n int) int
	Int63n(n int64) int64
}

// splitmixRNG is a one-word splitmix64 stream: 8 bytes of state per device
// is what makes per-device substreams affordable at millions of devices.
type splitmixRNG uint64

func (r *splitmixRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns the next draw in [0, 1).
func (r *splitmixRNG) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// Int63n returns a uniform draw in [0, n). Rejection-free modulo bias is
// negligible at mobility's tiny ranges, but reject anyway so the stream is
// exactly uniform.
func (r *splitmixRNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("mobility: Int63n on non-positive bound")
	}
	max := uint64(1)<<63 - 1
	limit := max - max%uint64(n)
	for {
		v := r.next() >> 1
		if v < limit {
			return int64(v % uint64(n))
		}
	}
}

// Intn returns a uniform draw in [0, n).
func (r *splitmixRNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// mixSeed reproduces the engine's FNV-style seed mixing so per-device
// substreams are well separated and deterministic in (seed, salt, device).
func mixSeed(parts ...int64) splitmixRNG {
	h := int64(1469598103934665603)
	for _, p := range parts {
		h ^= p
		h *= 1099511628211
	}
	return splitmixRNG(h)
}

// Per-model substream salts, keeping a device's streams disjoint across
// mobility models built from the same seed.
const (
	saltMarkov   = 0x4d41524b // "MARK"
	saltWaypoint = 0x57415950 // "WAYP"
	saltLevy     = 0x4c455659 // "LEVY"
)

// markovNext advances one device's edge-level stay/hop chain by one step:
// stay with probability stayProb, otherwise hop to a uniformly random other
// edge. The draw sequence (one Float64 when edges > 1, one Intn on a hop)
// is exactly GenerateMarkovSchedule's, which calls this same function.
func markovNext(rng uniformRNG, cur, edges int, stayProb float64) int {
	if edges <= 1 || rng.Float64() < stayProb {
		return cur
	}
	// Uniform over the other edges: draw from [0, edges-1) and skip past
	// the current edge.
	hop := rng.Intn(edges - 1)
	if hop >= cur {
		hop++
	}
	return hop
}

// MarkovSource streams the edge-level stay/hop Markov chain of
// GenerateMarkovSchedule from an O(Devices) window: one splitmix64 word and
// one current edge per device. Memory is independent of the step horizon,
// which is what lets the scale benchmark run 1M devices over hundreds of
// steps without a dense schedule.
type MarkovSource struct {
	edges, devices, steps int
	stayProb              float64

	rngs  []splitmixRNG
	row   []int
	moves []Move
	pos   int
}

// NewMarkovSource builds a streaming Markov source positioned at step 0.
func NewMarkovSource(seed int64, edges, devices, steps int, stayProb float64) (*MarkovSource, error) {
	if edges <= 0 || devices <= 0 || steps <= 0 {
		return nil, fmt.Errorf("mobility: markov source dims %d/%d/%d must be positive", edges, devices, steps)
	}
	if stayProb < 0 || stayProb > 1 {
		return nil, fmt.Errorf("mobility: stay probability %v outside [0,1]", stayProb)
	}
	s := &MarkovSource{
		edges:    edges,
		devices:  devices,
		steps:    steps,
		stayProb: stayProb,
		rngs:     make([]splitmixRNG, devices),
		row:      make([]int, devices),
	}
	for m := 0; m < devices; m++ {
		s.rngs[m] = mixSeed(seed, saltMarkov, int64(m))
		s.row[m] = s.rngs[m].Intn(edges)
	}
	return s, nil
}

// Dims returns (edges, devices, steps).
func (s *MarkovSource) Dims() (int, int, int) { return s.edges, s.devices, s.steps }

// AdvanceTo positions the source at step t; see StepSource. Per single-step
// advance it draws one stay coin per device and emits only the devices that
// hopped, ascending in device ID.
func (s *MarkovSource) AdvanceTo(t int) ([]Move, bool, error) {
	switch {
	case t < 0 || t >= s.steps:
		return nil, false, fmt.Errorf("mobility: step %d outside source horizon [0,%d)", t, s.steps)
	case t == s.pos:
		return nil, false, nil
	case t < s.pos:
		return nil, false, fmt.Errorf("mobility: streaming source cannot rewind from step %d to %d", s.pos, t)
	}
	rebuilt := t != s.pos+1
	for s.pos < t {
		s.pos++
		s.moves = s.moves[:0]
		for m := range s.row {
			next := markovNext(&s.rngs[m], s.row[m], s.edges, s.stayProb)
			if next != s.row[m] {
				s.moves = append(s.moves, Move{Device: m, From: s.row[m], To: next})
				s.row[m] = next
			}
		}
	}
	if rebuilt {
		return nil, true, nil
	}
	return s.moves, false, nil
}

// Snapshot appends the current attachment row into dst[:0].
func (s *MarkovSource) Snapshot(dst []int) []int { return append(dst[:0], s.row...) }

// mover is the kinematic half of a continuous-space source: advance one
// device by one time unit and report its new position.
type mover interface {
	step(m int) (x, y float64)
}

// geoSource is the shared station-geometry machinery of the waypoint and
// Lévy streaming sources: stations, the station→edge clustering, and the
// O(Devices) window (current station, current edge) a mover's kinematics
// drive. Step duration is one trace-time unit, matching
// GenerateScheduleWaypoint's BuildSchedule(..., stepDur=1) lowering.
type geoSource struct {
	edges, devices, steps int

	stations      []Station
	edgeOfStation []int
	mv            mover

	cur   []int // current station per device
	row   []int // current edge per device
	moves []Move
	pos   int
}

// initGeo places and clusters stations from the seed-level stream, then
// positions every device at step 0 via its mover.
func newGeoSource(seed int64, edges, devices, steps, stationsPerEdge int) (*geoSource, error) {
	if edges <= 0 || devices <= 0 || steps <= 0 {
		return nil, fmt.Errorf("mobility: geo source dims %d/%d/%d must be positive", edges, devices, steps)
	}
	rng := rand.New(rand.NewSource(seed))
	nStations := edges * stationsPerEdge
	if nStations < edges {
		nStations = edges
	}
	stations, err := PlaceStations(rng, nStations, DefaultPlacement())
	if err != nil {
		return nil, err
	}
	edgeOfStation, err := ClusterStations(rng, stations, edges)
	if err != nil {
		return nil, err
	}
	return &geoSource{
		edges:         edges,
		devices:       devices,
		steps:         steps,
		stations:      stations,
		edgeOfStation: edgeOfStation,
		cur:           make([]int, devices),
		row:           make([]int, devices),
	}, nil
}

// place records device m's initial position.
func (g *geoSource) place(m int, x, y float64) {
	g.cur[m] = NearestStation(g.stations, x, y)
	g.row[m] = g.edgeOfStation[g.cur[m]]
}

// Dims returns (edges, devices, steps).
func (g *geoSource) Dims() (int, int, int) { return g.edges, g.devices, g.steps }

// AdvanceTo positions the source at step t; see StepSource.
func (g *geoSource) AdvanceTo(t int) ([]Move, bool, error) {
	switch {
	case t < 0 || t >= g.steps:
		return nil, false, fmt.Errorf("mobility: step %d outside source horizon [0,%d)", t, g.steps)
	case t == g.pos:
		return nil, false, nil
	case t < g.pos:
		return nil, false, fmt.Errorf("mobility: streaming source cannot rewind from step %d to %d", g.pos, t)
	}
	rebuilt := t != g.pos+1
	for g.pos < t {
		g.pos++
		g.moves = g.moves[:0]
		for m := 0; m < g.devices; m++ {
			x, y := g.mv.step(m)
			st := NearestStation(g.stations, x, y)
			if st == g.cur[m] {
				continue
			}
			g.cur[m] = st
			if e := g.edgeOfStation[st]; e != g.row[m] {
				g.moves = append(g.moves, Move{Device: m, From: g.row[m], To: e})
				g.row[m] = e
			}
		}
	}
	if rebuilt {
		return nil, true, nil
	}
	return g.moves, false, nil
}

// Snapshot appends the current attachment row into dst[:0].
func (g *geoSource) Snapshot(dst []int) []int { return append(dst[:0], g.row...) }

// WaypointSource streams random-waypoint mobility: the same per-device
// kinematics as GenerateWaypointTrace (shared waypointStep), driven from
// per-device splitmix64 substreams over an O(Devices) window.
type WaypointSource struct {
	*geoSource
	cfg    WaypointConfig
	rngs   []splitmixRNG
	states []waypointState
}

// NewWaypointSource builds a streaming waypoint source positioned at step 0.
func NewWaypointSource(seed int64, edges, devices, steps, stationsPerEdge int, cfg WaypointConfig) (*WaypointSource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := newGeoSource(seed, edges, devices, steps, stationsPerEdge)
	if err != nil {
		return nil, err
	}
	w := &WaypointSource{
		geoSource: g,
		cfg:       cfg,
		rngs:      make([]splitmixRNG, devices),
		states:    make([]waypointState, devices),
	}
	g.mv = w
	for m := 0; m < devices; m++ {
		w.rngs[m] = mixSeed(seed, saltWaypoint, int64(m))
		w.states[m] = waypointInit(&w.rngs[m], cfg)
		g.place(m, w.states[m].x, w.states[m].y)
	}
	return w, nil
}

// step advances device m's waypoint kinematics by one time unit.
func (w *WaypointSource) step(m int) (float64, float64) {
	st := &w.states[m]
	waypointStep(&w.rngs[m], st, w.cfg)
	return st.x, st.y
}

// LevySource streams Lévy-walk mobility: the same per-device kinematics as
// GenerateLevyTrace (shared levyStep), driven from per-device splitmix64
// substreams over an O(Devices) window.
type LevySource struct {
	*geoSource
	cfg    LevyConfig
	rngs   []splitmixRNG
	states []levyState
}

// NewLevySource builds a streaming Lévy source positioned at step 0.
func NewLevySource(seed int64, edges, devices, steps, stationsPerEdge int, cfg LevyConfig) (*LevySource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := newGeoSource(seed, edges, devices, steps, stationsPerEdge)
	if err != nil {
		return nil, err
	}
	l := &LevySource{
		geoSource: g,
		cfg:       cfg,
		rngs:      make([]splitmixRNG, devices),
		states:    make([]levyState, devices),
	}
	g.mv = l
	for m := 0; m < devices; m++ {
		l.rngs[m] = mixSeed(seed, saltLevy, int64(m))
		l.states[m] = levyInit(&l.rngs[m], cfg)
		g.place(m, l.states[m].x, l.states[m].y)
	}
	return l, nil
}

// step advances device m's Lévy kinematics by one time unit.
func (l *LevySource) step(m int) (float64, float64) {
	st := &l.states[m]
	levyStep(&l.rngs[m], st, l.cfg)
	return st.x, st.y
}
