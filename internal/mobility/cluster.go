package mobility

import (
	"fmt"
	"math"
	"math/rand"
)

// ClusterStations groups base stations into k edges with Lloyd's k-means over
// station coordinates, mirroring the paper's clustering of neighbouring base
// stations into "main" base stations (§IV-A1). It returns edgeOf[station] =
// edge index in [0, k). Every edge is guaranteed at least one station: empty
// clusters are re-seeded on the station farthest from its centroid.
func ClusterStations(rng *rand.Rand, stations []Station, k int) ([]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mobility: need ≥ 1 edge, got %d", k)
	}
	if len(stations) < k {
		return nil, fmt.Errorf("mobility: %d stations cannot form %d edges", len(stations), k)
	}
	// k-means++ style seeding: first centroid uniform, the rest by
	// squared-distance weighting.
	centX := make([]float64, k)
	centY := make([]float64, k)
	first := rng.Intn(len(stations))
	centX[0], centY[0] = stations[first].X, stations[first].Y
	minDist := make([]float64, len(stations))
	for c := 1; c < k; c++ {
		total := 0.0
		for i, s := range stations {
			d := math.Inf(1)
			for j := 0; j < c; j++ {
				dx, dy := s.X-centX[j], s.Y-centY[j]
				if dd := dx*dx + dy*dy; dd < d {
					d = dd
				}
			}
			minDist[i] = d
			total += d
		}
		pick := 0
		if total > 0 {
			u := rng.Float64() * total
			acc := 0.0
			for i, d := range minDist {
				acc += d
				if u < acc {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(len(stations))
		}
		centX[c], centY[c] = stations[pick].X, stations[pick].Y
	}

	assign := make([]int, len(stations))
	counts := make([]int, k)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, s := range stations {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				dx, dy := s.X-centX[c], s.Y-centY[c]
				if d := dx*dx + dy*dy; d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				if assign[i] != best {
					changed = true
				}
				assign[i] = best
			}
		}
		// Re-seed empty clusters with a station donated by the largest
		// cluster so every edge stays non-empty.
		for c := range counts {
			counts[c] = 0
		}
		for i := range stations {
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				continue
			}
			big := 0
			for cc := range counts {
				if counts[cc] > counts[big] {
					big = cc
				}
			}
			for i := range stations {
				if assign[i] == big {
					assign[i] = c
					counts[big]--
					counts[c]++
					break
				}
			}
			changed = true
		}
		// Recompute centroids as cluster means.
		for c := range centX {
			centX[c], centY[c] = 0, 0
		}
		for i, s := range stations {
			c := assign[i]
			centX[c] += s.X
			centY[c] += s.Y
		}
		for c := 0; c < k; c++ {
			centX[c] /= float64(counts[c])
			centY[c] /= float64(counts[c])
		}
		if !changed && iter > 0 {
			break
		}
	}
	return assign, nil
}
