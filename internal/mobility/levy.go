package mobility

import (
	"fmt"
	"math"
	"math/rand"
)

// LevyConfig parameterizes Lévy-walk mobility: flight lengths follow a
// truncated power law with exponent Alpha, pause times a truncated power law
// with exponent Beta, and directions are uniform. Rhee et al. (TON 2011)
// showed human mobility is well-modelled by such walks, making this a
// realistic alternative to random waypoint for HFL studies.
type LevyConfig struct {
	Width  float64
	Height float64
	// Alpha is the flight-length power-law exponent (heavier tail for
	// smaller values); typical human traces fit α ∈ [1, 2].
	Alpha float64
	// MinFlight and MaxFlight truncate the flight-length distribution.
	MinFlight float64
	MaxFlight float64
	// Speed is the constant movement speed in distance per time unit.
	Speed float64
	// Beta is the pause-time power-law exponent and MaxPause its cap.
	Beta     float64
	MaxPause int64
}

// DefaultLevy resembles the parameters fitted to human walk traces, scaled
// to the default 100×100 region.
func DefaultLevy() LevyConfig {
	return LevyConfig{
		Width: 100, Height: 100,
		Alpha: 1.6, MinFlight: 1, MaxFlight: 60,
		Speed: 2, Beta: 1.8, MaxPause: 6,
	}
}

// Validate reports whether the config is usable.
func (c LevyConfig) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("mobility: levy region %vx%v invalid", c.Width, c.Height)
	case c.Alpha <= 0 || c.Beta <= 0:
		return fmt.Errorf("mobility: levy exponents %v/%v must be positive", c.Alpha, c.Beta)
	case c.MinFlight <= 0 || c.MaxFlight <= c.MinFlight:
		return fmt.Errorf("mobility: levy flight range [%v,%v] invalid", c.MinFlight, c.MaxFlight)
	case c.Speed <= 0:
		return fmt.Errorf("mobility: levy speed %v must be positive", c.Speed)
	case c.MaxPause < 0:
		return fmt.Errorf("mobility: negative pause cap %d", c.MaxPause)
	}
	return nil
}

// powerLaw draws from a truncated power law p(x) ∝ x^(−(α+1)) on [lo, hi]
// via inverse-transform sampling.
func powerLaw(rng uniformRNG, alpha, lo, hi float64) float64 {
	u := rng.Float64()
	la, ha := math.Pow(lo, -alpha), math.Pow(hi, -alpha)
	return math.Pow(la+u*(ha-la), -1/alpha)
}

// levyState is one device's Lévy-walk kinematic state: position, the
// current flight's direction and remaining length, and the remaining pause.
// Shared by the legacy trace generator and the streaming LevySource, so the
// model cannot drift between the dense and streaming paths.
type levyState struct {
	x, y      float64
	theta     float64
	remaining float64
	pause     int64
}

// levyInit draws a device's initial state — position plus the first
// flight — in exactly the order GenerateLevyTrace always drew.
func levyInit(rng uniformRNG, cfg LevyConfig) levyState {
	var st levyState
	st.x, st.y = rng.Float64()*cfg.Width, rng.Float64()*cfg.Height
	st.theta = rng.Float64() * 2 * math.Pi
	st.remaining = powerLaw(rng, cfg.Alpha, cfg.MinFlight, cfg.MaxFlight)
	return st
}

// levyStep advances one device by one time unit: sit out a pause, or fly at
// constant speed, drawing the next flight (and possibly a pause) when the
// current one is spent. Draw order is exactly the legacy generator's.
func levyStep(rng uniformRNG, st *levyState, cfg LevyConfig) {
	if st.pause > 0 {
		st.pause--
		return
	}
	step := cfg.Speed
	if step > st.remaining {
		step = st.remaining
	}
	st.x = clamp(st.x+step*math.Cos(st.theta), 0, cfg.Width)
	st.y = clamp(st.y+step*math.Sin(st.theta), 0, cfg.Height)
	st.remaining -= step
	if st.remaining <= 0 {
		st.theta = rng.Float64() * 2 * math.Pi
		st.remaining = powerLaw(rng, cfg.Alpha, cfg.MinFlight, cfg.MaxFlight)
		if cfg.MaxPause > 0 {
			p := powerLaw(rng, cfg.Beta, 1, float64(cfg.MaxPause)+1)
			st.pause = int64(p)
		}
	}
}

// GenerateLevyTrace simulates devices moving by Lévy walks, attaching to the
// nearest station at every time unit, and emits dwell-interval records.
func GenerateLevyTrace(rng *rand.Rand, stations []Station, devices int, horizon int64, cfg LevyConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(stations) == 0 || devices <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("mobility: levy needs stations/devices/horizon > 0")
	}
	trace := &Trace{}
	for m := 0; m < devices; m++ {
		st := levyInit(rng, cfg)
		cur := NearestStation(stations, st.x, st.y)
		var start int64
		for t := int64(1); t <= horizon; t++ {
			levyStep(rng, &st, cfg)
			if t == horizon {
				if err := trace.Append(Record{Device: m, Station: cur, Start: start, End: horizon}); err != nil {
					return nil, err
				}
				break
			}
			next := NearestStation(stations, st.x, st.y)
			if next != cur {
				if err := trace.Append(Record{Device: m, Station: cur, Start: start, End: t}); err != nil {
					return nil, err
				}
				cur, start = next, t
			}
		}
	}
	trace.Sort()
	return trace, nil
}
