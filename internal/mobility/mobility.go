// Package mobility provides the device-mobility substrate of the evaluation.
// The paper drives its experiments with the Shanghai Telecom dataset — access
// records of mobile devices attaching to base stations over six months, with
// neighbouring base stations clustered into a handful of "main" edges. That
// dataset is proprietary, so this package generates traces of the same shape:
//
//   - base stations are placed in a 2-D region by a uniform or clustered
//     point process (internal/mobility.PlaceStations),
//   - devices move by random-waypoint or Markov (stay/hop) mobility and
//     always attach to the nearest station (GenerateWaypointTrace,
//     GenerateMarkovTrace), producing timestamped access Records identical in
//     schema to the Telecom data,
//   - stations are clustered into |N| edges with k-means (ClusterStations),
//     mirroring the paper's main-base-station grouping, and
//   - a Schedule — the indicator B^t[n][m] of §II-A — is derived from the
//     records (BuildSchedule).
//
// The HFL simulator consumes only the Schedule, so any trace source with
// realistic dwell/transition statistics exercises the identical code path;
// see DESIGN.md §1 for the substitution argument.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
)

// Station is a base station at a fixed position.
type Station struct {
	ID int
	X  float64
	Y  float64
}

// PlacementConfig controls base-station placement.
type PlacementConfig struct {
	// Width and Height bound the region.
	Width  float64
	Height float64
	// Clusters > 0 places stations around that many urban cores with
	// Gaussian spread ClusterStd (a Matérn-like cluster process, which is
	// how real telecom deployments look); Clusters == 0 places uniformly.
	Clusters   int
	ClusterStd float64
}

// DefaultPlacement matches the aspect of a dense urban deployment.
func DefaultPlacement() PlacementConfig {
	return PlacementConfig{Width: 100, Height: 100, Clusters: 8, ClusterStd: 8}
}

// Validate reports whether the placement config is usable.
func (c PlacementConfig) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("mobility: placement region %vx%v invalid", c.Width, c.Height)
	case c.Clusters < 0:
		return fmt.Errorf("mobility: negative cluster count %d", c.Clusters)
	case c.Clusters > 0 && c.ClusterStd <= 0:
		return fmt.Errorf("mobility: clustered placement needs positive spread, got %v", c.ClusterStd)
	}
	return nil
}

// PlaceStations places n base stations in the region.
func PlaceStations(rng *rand.Rand, n int, cfg PlacementConfig) ([]Station, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("mobility: need ≥ 1 station, got %d", n)
	}
	stations := make([]Station, n)
	if cfg.Clusters == 0 {
		for i := range stations {
			stations[i] = Station{ID: i, X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
		}
		return stations, nil
	}
	cores := make([][2]float64, cfg.Clusters)
	for i := range cores {
		cores[i] = [2]float64{rng.Float64() * cfg.Width, rng.Float64() * cfg.Height}
	}
	for i := range stations {
		core := cores[rng.Intn(len(cores))]
		x := clamp(core[0]+rng.NormFloat64()*cfg.ClusterStd, 0, cfg.Width)
		y := clamp(core[1]+rng.NormFloat64()*cfg.ClusterStd, 0, cfg.Height)
		stations[i] = Station{ID: i, X: x, Y: y}
	}
	return stations, nil
}

// NearestStation returns the index of the station closest to (x, y).
// Devices attach to the nearest station to minimise communication latency
// (§II-A, footnote 3).
func NearestStation(stations []Station, x, y float64) int {
	best, bestDist := 0, math.Inf(1)
	for i, s := range stations {
		dx, dy := s.X-x, s.Y-y
		d := dx*dx + dy*dy
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
