package mobility

import (
	"fmt"

	"github.com/mach-fl/mach/internal/det"
)

// OnlineTransitionStats fits the edge-level Markov mobility model of §II-A
// incrementally from a StepSource's move stream, replacing the dense
// after-the-fact EstimateTransitions pass for streaming runs. Each observed
// single-step move stream is folded in at O(moves) — a device that stays put
// costs nothing — and the fitted matrix is available at any point of the run.
// Memory is O(distinct observed transitions): a sparse hop-count map plus one
// row-total per edge, never Edges² until a dense matrix is asked for.
type OnlineTransitionStats struct {
	edges   int
	devices int

	// counts holds observed hop counts keyed (from<<32)|to; self-loops are
	// never observed because sources emit only real edge changes, matching
	// EstimateTransitions' consecutive-record (departure-only) counting.
	counts    map[uint64]int64
	rowTotals []int64

	steps int   // observed single-step transitions
	jumps int   // gaps (AdvanceTo jumps) with no pair information
	moved int64 // total moves across observed steps
}

// NewOnlineTransitionStats returns empty statistics for an edges-wide,
// devices-deep population.
func NewOnlineTransitionStats(edges, devices int) (*OnlineTransitionStats, error) {
	if edges <= 0 || devices <= 0 {
		return nil, fmt.Errorf("mobility: transition stats dims %d/%d must be positive", edges, devices)
	}
	return &OnlineTransitionStats{
		edges:     edges,
		devices:   devices,
		counts:    make(map[uint64]int64),
		rowTotals: make([]int64, edges),
	}, nil
}

// ObserveStep folds one single-step move stream into the statistics.
//
//machlint:allocfree
func (o *OnlineTransitionStats) ObserveStep(moves []Move) {
	for _, mv := range moves {
		o.counts[uint64(mv.From)<<32|uint64(mv.To)]++
		o.rowTotals[mv.From]++
	}
	o.moved += int64(len(moves))
	o.steps++
}

// ObserveJump records a positioning gap: the source was repositioned by more
// than one step, so the intermediate transitions are unobservable and must
// not be guessed. Only the gap count advances.
func (o *OnlineTransitionStats) ObserveJump() { o.jumps++ }

// Steps returns the number of observed single-step transitions.
func (o *OnlineTransitionStats) Steps() int { return o.steps }

// Jumps returns the number of unobservable positioning gaps.
func (o *OnlineTransitionStats) Jumps() int { return o.jumps }

// TransitionRate returns the fraction of device-steps at which the attached
// edge changed, over the observed steps — the streaming counterpart of
// Schedule.TransitionRate.
func (o *OnlineTransitionStats) TransitionRate() float64 {
	if o.steps == 0 {
		return 0
	}
	return float64(o.moved) / (float64(o.devices) * float64(o.steps))
}

// Transitions densifies the fitted model: row i is the empirical distribution
// of the next edge given a device is leaving edge i, with rows that observed
// no departures uniform over all edges — exactly EstimateTransitions'
// convention, so downstream prediction code accepts either.
func (o *OnlineTransitionStats) Transitions() [][]float64 {
	out := make([][]float64, o.edges)
	for i := range out {
		out[i] = make([]float64, o.edges)
	}
	// Sorted-key order for determinism; each key writes a distinct cell, but
	// the lint contract is that no map range order ever reaches float math.
	for _, k := range det.SortedKeys(o.counts) {
		from, to := int(k>>32), int(k&0xffffffff)
		out[from][to] = float64(o.counts[k]) / float64(o.rowTotals[from])
	}
	for i, total := range o.rowTotals {
		if total == 0 {
			for j := range out[i] {
				out[i][j] = 1 / float64(o.edges)
			}
		}
	}
	return out
}
