package mobility

import "fmt"

// This file is the core of the streaming mobility plane (DESIGN.md §12): the
// StepSource interface produces each step's device→edge attachments on
// demand from an O(Devices) window — the current attachment row plus a
// pooled move buffer — instead of a dense Steps × Devices matrix. A dense
// *Schedule doubles as a StepSource (the backward-compatible adapter below),
// and Materialize turns any source back into a dense Schedule, which is how
// the bit-identity between the two planes is enforced: a source and its
// materialized twin describe the same attachments by construction.

// Move records one device's edge change between two consecutive steps:
// device Device was attached to edge From at step t-1 and to edge To at
// step t. Sources never emit null moves (From == To).
type Move struct {
	Device int
	From   int
	To     int
}

// StepSource yields per-step device→edge attachments as a move stream. It is
// the engine-facing contract of the streaming mobility plane:
//
//   - Dims reports the population shape (edges, devices, steps).
//   - AdvanceTo positions the source at step t. Advancing by exactly one
//     step returns the step's moves — only the devices whose edge changed,
//     ascending in device ID — with rebuilt == false; the caller applies
//     them to its attachment row (ApplyMoves) and repairs any derived
//     indexes incrementally. Advancing to the current step is a no-op
//     (nil, false, nil). Any other jump returns rebuilt == true and no
//     moves: the caller must resynchronize its row from Snapshot. Streaming
//     sources may refuse to rewind (t below the current position) with an
//     error; the dense adapter supports random access.
//   - Snapshot appends the current attachment row (edge of every device at
//     the positioned step) into dst[:0] and returns it, growing dst only
//     when needed.
//
// The returned move slice is owned by the source and valid until the next
// AdvanceTo. A source's mutating methods (AdvanceTo, Snapshot on sources
// that compute lazily) must be called from one goroutine; the driver shares
// the resulting row and moves with its workers between advances.
//
// Determinism contract: the attachment row after AdvanceTo(t) is a pure
// function of (source construction parameters, t). Moves are ascending in
// device ID, each device appears at most once per step, and applying a
// step's moves to the previous row yields exactly the next row — so every
// downstream consumer (member indexes, transition statistics, shard
// buckets) sees identical state whether it replays moves or rebuilds from
// Snapshot.
type StepSource interface {
	Dims() (edges, devices, steps int)
	AdvanceTo(t int) (moves []Move, rebuilt bool, err error)
	Snapshot(dst []int) []int
}

// ApplyMoves applies one step's move stream to an attachment row in place.
//
//machlint:allocfree
func ApplyMoves(row []int, moves []Move) {
	for _, mv := range moves {
		row[mv.Device] = mv.To
	}
}

// Dims makes *Schedule a StepSource over its pre-materialized rows.
func (s *Schedule) Dims() (edges, devices, steps int) {
	return s.Edges, s.Devices, s.Steps
}

// AdvanceTo positions the dense adapter at step t. A single-step advance
// diffs the two adjacent rows once — O(Devices) — and emits the changed
// devices as moves, so every derived index repairs from the same stream a
// true streaming source would produce (the sharded engine previously paid
// one row diff per shard; the adapter pays one per step total). Any other
// reposition is O(1): the adapter just points at the requested row and
// reports rebuilt.
func (s *Schedule) AdvanceTo(t int) ([]Move, bool, error) {
	if t < 0 || t >= s.Steps {
		return nil, false, fmt.Errorf("mobility: step %d outside schedule horizon [0,%d)", t, s.Steps)
	}
	cur := s.srcPos - 1
	switch {
	case t == cur:
		return nil, false, nil
	case cur >= 0 && t == cur+1:
		prev, row := s.edgeOf[cur], s.edgeOf[t]
		moves := s.srcMoves[:0]
		for m, e := range row {
			if e != prev[m] {
				moves = append(moves, Move{Device: m, From: prev[m], To: e})
			}
		}
		s.srcMoves = moves
		s.srcPos = t + 1
		return moves, false, nil
	default:
		s.srcPos = t + 1
		return nil, true, nil
	}
}

// Snapshot appends the adapter's current attachment row into dst[:0]. Only
// valid after an AdvanceTo.
func (s *Schedule) Snapshot(dst []int) []int {
	if s.srcPos == 0 {
		panic("mobility: Snapshot before AdvanceTo")
	}
	return append(dst[:0], s.edgeOf[s.srcPos-1]...)
}

// Materialize drains a StepSource into a dense Schedule, validating the
// partition property along the way. It is the bridge between the streaming
// and dense planes: a source and its materialized twin are bit-identical by
// construction, which is what the engine's streaming-vs-dense golden tests
// lean on. The source is left positioned at its final step; construct a
// fresh source (same parameters) to drive a run afterwards.
func Materialize(src StepSource) (*Schedule, error) {
	edges, devices, steps := src.Dims()
	s, err := NewSchedule(edges, devices, steps)
	if err != nil {
		return nil, err
	}
	row := make([]int, devices)
	for t := 0; t < steps; t++ {
		moves, rebuilt, err := src.AdvanceTo(t)
		if err != nil {
			return nil, fmt.Errorf("mobility: materialize step %d: %w", t, err)
		}
		if rebuilt || t == 0 {
			row = src.Snapshot(row)
		} else {
			ApplyMoves(row, moves)
		}
		copy(s.edgeOf[t], row)
	}
	return s, s.Validate()
}
