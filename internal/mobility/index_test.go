package mobility

import (
	"math/rand"
	"reflect"
	"testing"
)

// checkIndexMatchesNaive compares the index's view of every edge at the
// index's current step against the naive MembersAt rescan.
func checkIndexMatchesNaive(t *testing.T, ix *MemberIndex, s *Schedule) {
	t.Helper()
	step := ix.Step()
	for n := 0; n < s.Edges; n++ {
		want := s.MembersAt(step, n)
		got := ix.Members(n)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d edge %d: index %v, naive %v", step, n, got, want)
		}
		if ix.Count(n) != len(want) {
			t.Fatalf("step %d edge %d: count %d, want %d", step, n, ix.Count(n), len(want))
		}
	}
}

// indexSchedules builds the property-test corpus: Markov schedules across
// the mobility spectrum (high locality → delta path, churn → rebuild
// fallback), a waypoint schedule, and a shape with more edges than devices
// so some edges are always empty.
func indexSchedules(t *testing.T) map[string]*Schedule {
	t.Helper()
	out := map[string]*Schedule{}
	for name, cfg := range map[string]struct {
		edges, devices, steps int
		stay                  float64
	}{
		"markov-sticky": {5, 40, 60, 0.95},
		"markov-churn":  {4, 25, 50, 0.10},
		"markov-frozen": {3, 10, 20, 1.0},
		"empty-edges":   {12, 4, 30, 0.7},
		"single-edge":   {1, 8, 10, 0.5},
		// Many edges, few movers: moved < Edges/2 every step, so this is the
		// schedule that actually drives the sorted remove/insert repair path.
		"sparse-edges": {50, 30, 40, 0.8},
	} {
		s, err := GenerateMarkovSchedule(int64(len(name)), cfg.edges, cfg.devices, cfg.steps, cfg.stay)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = s
	}
	wp, err := GenerateSchedule(11, 6, 20, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["waypoint"] = wp
	return out
}

// TestMemberIndexMatchesNaiveSequential drives the index through every step
// in order — the delta path — and requires equality with MembersAt at each.
func TestMemberIndexMatchesNaiveSequential(t *testing.T) {
	for name, s := range indexSchedules(t) {
		t.Run(name, func(t *testing.T) {
			ix := NewMemberIndex(s)
			for step := 0; step < s.Steps; step++ {
				ix.Advance(step)
				checkIndexMatchesNaive(t, ix, s)
			}
		})
	}
}

// TestMemberIndexMatchesNaiveRandomJumps exercises the rebuild path: random
// seeks (including re-advancing to the current step and jumping backwards)
// must land on exactly the naive membership.
func TestMemberIndexMatchesNaiveRandomJumps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for name, s := range indexSchedules(t) {
		t.Run(name, func(t *testing.T) {
			ix := NewMemberIndex(s)
			for i := 0; i < 3*s.Steps; i++ {
				ix.Advance(rng.Intn(s.Steps))
				checkIndexMatchesNaive(t, ix, s)
			}
		})
	}
}

// TestMemberIndexSteadyStateZeroAllocs pins the pooling contract: once the
// per-edge buffers have grown to the schedule's occupancy, advancing the
// index allocates nothing on either path.
func TestMemberIndexSteadyStateZeroAllocs(t *testing.T) {
	s, err := GenerateMarkovSchedule(7, 8, 200, 120, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewMemberIndex(s)
	for step := 0; step < s.Steps; step++ { // warm-up grows every buffer
		ix.Advance(step)
	}
	step := 0
	allocs := testing.AllocsPerRun(100, func() {
		ix.Advance(step % s.Steps) // sequential wrap: delta steps + one rebuild jump
		step++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Advance allocates %v objects per step", allocs)
	}
}

// TestMembersAtIntoReusesBuffer checks the caller-owned-buffer contract and
// equality with MembersAt.
func TestMembersAtIntoReusesBuffer(t *testing.T) {
	s, err := GenerateMarkovSchedule(3, 4, 30, 25, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int, 0, s.Devices)
	for step := 0; step < s.Steps; step++ {
		for n := 0; n < s.Edges; n++ {
			buf = s.MembersAtInto(buf, step, n)
			want := s.MembersAt(step, n)
			if len(buf) != len(want) {
				t.Fatalf("step %d edge %d: into %v, want %v", step, n, buf, want)
			}
			for i, m := range want {
				if buf[i] != m {
					t.Fatalf("step %d edge %d: into %v, want %v", step, n, buf, want)
				}
			}
			if cap(buf) != s.Devices {
				t.Fatalf("MembersAtInto reallocated a sufficient buffer (cap %d)", cap(buf))
			}
		}
	}
}

// TestGenerateMarkovScheduleProperties validates the generator itself: the
// partition property, the stayProb endpoints, and determinism in the seed.
func TestGenerateMarkovScheduleProperties(t *testing.T) {
	if _, err := GenerateMarkovSchedule(1, 3, 5, 10, 1.5); err == nil {
		t.Fatal("accepted stayProb > 1")
	}
	frozen, err := GenerateMarkovSchedule(2, 4, 20, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := frozen.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := frozen.TransitionRate(); r != 0 {
		t.Fatalf("stayProb=1 schedule has transition rate %v", r)
	}
	churn, err := GenerateMarkovSchedule(2, 4, 200, 30, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if r := churn.TransitionRate(); r < 0.5 {
		t.Fatalf("stayProb=0.2 schedule has transition rate %v, want ≳ 0.8", r)
	}
	a, _ := GenerateMarkovSchedule(5, 3, 15, 20, 0.7)
	b, _ := GenerateMarkovSchedule(5, 3, 15, 20, 0.7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
}

// BenchmarkMemberIndexAdvance measures the per-step cost of positioning the
// index at bench scale: stay 0.95 moves ~5% of devices per step (above the
// Edges/2 repair threshold → counting rebuild), stay 0.999 moves ~10 (below
// it → sorted remove/insert repair).
func BenchmarkMemberIndexAdvance(b *testing.B) {
	for _, bc := range []struct {
		name string
		stay float64
	}{{"rebuild", 0.95}, {"delta", 0.999}} {
		b.Run(bc.name, func(b *testing.B) {
			s, err := GenerateMarkovSchedule(1, 100, 10000, 64, bc.stay)
			if err != nil {
				b.Fatal(err)
			}
			ix := NewMemberIndex(s)
			for step := 0; step < s.Steps; step++ {
				ix.Advance(step)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Advance(i % s.Steps)
			}
		})
	}
}

// BenchmarkMembersAtScan is the naive counterpart: one full MembersAt sweep
// over all edges, the per-step membership cost of the pre-index engine.
func BenchmarkMembersAtScan(b *testing.B) {
	s, err := GenerateMarkovSchedule(1, 100, 10000, 64, 0.95)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step := i % s.Steps
		for n := 0; n < s.Edges; n++ {
			_ = s.MembersAt(step, n)
		}
	}
}
