package mobility

import (
	"math/rand"
	"strings"
	"testing"
)

func TestPlacementValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     PlacementConfig
		wantErr bool
	}{
		{"default", DefaultPlacement(), false},
		{"uniform", PlacementConfig{Width: 10, Height: 10}, false},
		{"zero width", PlacementConfig{Width: 0, Height: 10}, true},
		{"negative clusters", PlacementConfig{Width: 10, Height: 10, Clusters: -1}, true},
		{"cluster no spread", PlacementConfig{Width: 10, Height: 10, Clusters: 3}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPlaceStationsBoundsAndIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []PlacementConfig{
		{Width: 50, Height: 30},
		{Width: 50, Height: 30, Clusters: 4, ClusterStd: 5},
	} {
		stations, err := PlaceStations(rng, 40, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(stations) != 40 {
			t.Fatalf("got %d stations", len(stations))
		}
		for i, s := range stations {
			if s.ID != i {
				t.Fatalf("station %d has ID %d", i, s.ID)
			}
			if s.X < 0 || s.X > cfg.Width || s.Y < 0 || s.Y > cfg.Height {
				t.Fatalf("station %d out of region: (%v,%v)", i, s.X, s.Y)
			}
		}
	}
	if _, err := PlaceStations(rng, 0, DefaultPlacement()); err == nil {
		t.Fatal("expected error for zero stations")
	}
}

func TestClusteredPlacementIsClumpier(t *testing.T) {
	// Mean nearest-neighbour distance should be smaller under clustered
	// placement than under uniform placement of the same intensity.
	meanNN := func(stations []Station) float64 {
		total := 0.0
		for i, s := range stations {
			best := -1.0
			for j, o := range stations {
				if i == j {
					continue
				}
				dx, dy := s.X-o.X, s.Y-o.Y
				d := dx*dx + dy*dy
				if best < 0 || d < best {
					best = d
				}
			}
			total += best
		}
		return total / float64(len(stations))
	}
	rng := rand.New(rand.NewSource(2))
	uniform, err := PlaceStations(rng, 100, PlacementConfig{Width: 100, Height: 100})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := PlaceStations(rng, 100, PlacementConfig{Width: 100, Height: 100, Clusters: 5, ClusterStd: 4})
	if err != nil {
		t.Fatal(err)
	}
	if meanNN(clustered) >= meanNN(uniform) {
		t.Fatalf("clustered placement not clumpier: %v vs %v", meanNN(clustered), meanNN(uniform))
	}
}

func TestNearestStation(t *testing.T) {
	stations := []Station{{ID: 0, X: 0, Y: 0}, {ID: 1, X: 10, Y: 0}, {ID: 2, X: 0, Y: 10}}
	tests := []struct {
		x, y float64
		want int
	}{
		{1, 1, 0},
		{9, 1, 1},
		{1, 9, 2},
		{100, 100, 1}, // ties broken by first-found; (10,0) vs (0,10) equidistant
	}
	for _, tt := range tests {
		if got := NearestStation(stations, tt.x, tt.y); got != tt.want {
			t.Fatalf("NearestStation(%v,%v) = %d, want %d", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestTraceAppendValidation(t *testing.T) {
	var tr Trace
	tests := []struct {
		name string
		r    Record
	}{
		{"negative device", Record{Device: -1, Station: 0, Start: 0, End: 1}},
		{"negative station", Record{Device: 0, Station: -1, Start: 0, End: 1}},
		{"empty interval", Record{Device: 0, Station: 0, Start: 5, End: 5}},
		{"inverted interval", Record{Device: 0, Station: 0, Start: 5, End: 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tr.Append(tt.r); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	if err := tr.Append(Record{Device: 0, Station: 1, Start: 0, End: 3}); err != nil {
		t.Fatal(err)
	}
	if tr.Devices() != 1 || tr.Stations() != 2 || tr.Horizon() != 3 {
		t.Fatalf("trace stats wrong: %d devices %d stations %d horizon", tr.Devices(), tr.Stations(), tr.Horizon())
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	var tr Trace
	records := []Record{
		{Device: 0, Station: 3, Start: 0, End: 10},
		{Device: 1, Station: 2, Start: 5, End: 7},
		{Device: 0, Station: 1, Start: 10, End: 20},
	}
	for _, r := range records {
		if err := tr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(records) {
		t.Fatalf("round-trip lost records: %d vs %d", len(got.Records), len(records))
	}
	for i, r := range got.Records {
		if r != records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, r, records[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"wrong fields", "device,station,start,end\n1,2,3\n"},
		{"bad device", "a,2,0,1\n"},
		{"bad station", "1,x,0,1\n"},
		{"bad start", "1,2,y,1\n"},
		{"bad end", "1,2,0,z\n"},
		{"invalid interval", "1,2,5,5\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestTraceSortOrder(t *testing.T) {
	var tr Trace
	for _, r := range []Record{
		{Device: 1, Station: 0, Start: 5, End: 6},
		{Device: 0, Station: 0, Start: 9, End: 10},
		{Device: 0, Station: 0, Start: 2, End: 3},
	} {
		if err := tr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	tr.Sort()
	if tr.Records[0].Device != 0 || tr.Records[0].Start != 2 {
		t.Fatalf("sort order wrong: %+v", tr.Records)
	}
	if tr.Records[2].Device != 1 {
		t.Fatalf("sort order wrong: %+v", tr.Records)
	}
}
