package mobility

import (
	"math"
	"testing"
)

// TestOnlineStatsMatchDenseHopCounts: feeding a source's move stream into
// OnlineTransitionStats yields exactly the hop-count matrix and transition
// rate a dense pass over the materialized twin computes.
func TestOnlineStatsMatchDenseHopCounts(t *testing.T) {
	const edges, devices, steps = 5, 60, 30
	mk := func() *MarkovSource {
		src, err := NewMarkovSource(13, edges, devices, steps, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	twin, err := Materialize(mk())
	if err != nil {
		t.Fatal(err)
	}

	stats, err := NewOnlineTransitionStats(edges, devices)
	if err != nil {
		t.Fatal(err)
	}
	src := mk()
	for step := 1; step < steps; step++ {
		moves, rebuilt, err := src.AdvanceTo(step)
		if err != nil || rebuilt {
			t.Fatalf("AdvanceTo(%d): rebuilt %v err %v", step, rebuilt, err)
		}
		stats.ObserveStep(moves)
	}

	// Dense reference: off-diagonal adjacent-row transitions, row-normalized,
	// uniform where a row saw no departures.
	counts := make([][]float64, edges)
	totals := make([]float64, edges)
	for i := range counts {
		counts[i] = make([]float64, edges)
	}
	for step := 1; step < steps; step++ {
		for m := 0; m < devices; m++ {
			from, to := twin.EdgeOf(step-1, m), twin.EdgeOf(step, m)
			if from != to {
				counts[from][to]++
				totals[from]++
			}
		}
	}
	want := make([][]float64, edges)
	for i := range want {
		want[i] = make([]float64, edges)
		for j := range want[i] {
			if totals[i] == 0 {
				want[i][j] = 1 / float64(edges)
			} else {
				want[i][j] = counts[i][j] / totals[i]
			}
		}
	}

	got := stats.Transitions()
	for i := range want {
		rowSum := 0.0
		for j := range want[i] {
			if math.Abs(got[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("transition [%d][%d] = %v, dense %v", i, j, got[i][j], want[i][j])
			}
			rowSum += got[i][j]
		}
		if math.Abs(rowSum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, rowSum)
		}
	}

	if got, want := stats.TransitionRate(), twin.TransitionRate(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("transition rate %v, dense %v", got, want)
	}
	if stats.Steps() != steps-1 {
		t.Fatalf("observed %d steps, want %d", stats.Steps(), steps-1)
	}
	// The fitted matrix must satisfy NewPredictor, closing the loop to the
	// prediction path EstimateTransitions feeds.
	edgeOf := make([]int, edges)
	for i := range edgeOf {
		edgeOf[i] = i
	}
	if _, err := NewPredictor(got, edgeOf, edges); err != nil {
		t.Fatalf("fitted matrix rejected by predictor: %v", err)
	}
}

// TestOnlineStatsJumpsAndEmpty: jumps advance only the gap counter, an
// observation-free statistic reports rate 0 and all-uniform rows, and the
// constructor rejects bad dimensions.
func TestOnlineStatsJumpsAndEmpty(t *testing.T) {
	stats, err := NewOnlineTransitionStats(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TransitionRate() != 0 {
		t.Fatalf("empty stats rate %v", stats.TransitionRate())
	}
	for i, row := range stats.Transitions() {
		for j, p := range row {
			if math.Abs(p-1.0/3) > 1e-15 {
				t.Fatalf("empty stats transition [%d][%d] = %v", i, j, p)
			}
		}
	}
	stats.ObserveJump()
	stats.ObserveJump()
	if stats.Jumps() != 2 || stats.Steps() != 0 {
		t.Fatalf("jumps %d steps %d, want 2/0", stats.Jumps(), stats.Steps())
	}

	if _, err := NewOnlineTransitionStats(0, 5); err == nil {
		t.Fatal("expected edges error")
	}
	if _, err := NewOnlineTransitionStats(3, 0); err == nil {
		t.Fatal("expected devices error")
	}
}
