package mobility

import (
	"math/rand"
	"testing"
)

// TestAdvanceWithMatchesAdvance: a window index fed the StepSource protocol
// (row + move stream) holds exactly the member lists of a schedule-bound
// index positioned by Advance — through single-step repairs, forced rebuilds
// (high-churn steps beyond the repair budget) and jumps, across full-range
// and partial-range coverage.
func TestAdvanceWithMatchesAdvance(t *testing.T) {
	// stayProb 0.3 makes many steps exceed the repair budget, so both the
	// applyMovesDelta and rebuildRow paths are exercised.
	sched, err := GenerateMarkovSchedule(17, 6, 90, 25, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ranges := [][2]int{{0, 6}, {2, 5}, {4, 4}}
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		bound := NewMemberIndexRange(sched, lo, hi)
		window := NewMemberIndexWindow(lo, hi)
		row := make([]int, sched.Devices)

		// Fresh adapter state: walk a materialized twin so the shared sched
		// adapter cursor can't leak between subtests.
		twin, err := Materialize(sched)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(lo)))
		step := 0
		for i := 0; i < 40; i++ {
			moves, rebuilt, err := twin.AdvanceTo(step)
			if err != nil {
				t.Fatal(err)
			}
			if rebuilt || i == 0 {
				row = twin.Snapshot(row)
				rebuilt = true
			} else {
				ApplyMoves(row, moves)
			}
			window.AdvanceWith(step, row, moves, rebuilt)
			bound.Advance(step)
			if window.Step() != step || bound.Step() != step {
				t.Fatalf("positions diverged: window %d bound %d want %d", window.Step(), bound.Step(), step)
			}
			for n := lo; n < hi; n++ {
				got, want := window.Members(n), bound.Members(n)
				if len(got) != len(want) {
					t.Fatalf("step %d edge %d: window %d members, bound %d", step, n, len(got), len(want))
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("step %d edge %d member %d: window %d, bound %d", step, n, k, got[k], want[k])
					}
				}
			}
			// Mix of single-step advances (delta/rebuild paths) and jumps.
			if rng.Intn(4) == 0 {
				step += 1 + rng.Intn(3)
			} else {
				step++
			}
			if step >= sched.Steps {
				break
			}
		}
	}
}
