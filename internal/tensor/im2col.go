package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution. It is shared between
// the im2col/col2im kernels here and the Conv2D layer in internal/nn.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	K             int // square kernel size
	Stride        int
	Pad           int
}

// OutH returns the output height of the convolution.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.K)/g.Stride + 1 }

// OutW returns the output width of the convolution.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.K)/g.Stride + 1 }

// Validate reports whether the geometry is internally consistent.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	case g.K <= 0 || g.Stride <= 0 || g.Pad < 0:
		return fmt.Errorf("tensor: conv geometry has invalid kernel/stride/pad %+v", g)
	case g.InH+2*g.Pad < g.K || g.InW+2*g.Pad < g.K:
		return fmt.Errorf("tensor: kernel %d exceeds padded input %dx%d", g.K, g.InH+2*g.Pad, g.InW+2*g.Pad)
	}
	return nil
}

// Im2Col lowers a single image x of shape [InC, InH, InW] into a matrix of
// shape [InC*K*K, OutH*OutW] so the convolution becomes a matrix product
// W (outC × InC*K*K) · cols. Out-of-bounds (padding) positions contribute
// zeros.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	out := New(g.InC*g.K*g.K, g.OutH()*g.OutW())
	Im2ColInto(out, x, g)
	return out
}

// Im2ColInto lowers x into dst, reusing dst's storage. dst must have shape
// [InC*K*K, OutH*OutW]; it is fully overwritten (padding positions with
// zeros), so a dirty scratch tensor may be passed.
//
//machlint:noalias dst,x
func Im2ColInto(dst, x *Tensor, g ConvGeom) {
	if x.Rank() != 3 || x.shape[0] != g.InC || x.shape[1] != g.InH || x.shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: Im2Col input %v does not match geometry %+v", x.shape, g))
	}
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.K * g.K
	cols := outH * outW
	if dst.Rank() != 2 || dst.shape[0] != rows || dst.shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2ColInto dst %v does not match geometry %+v", dst.shape, g))
	}
	out := dst
	out.Zero()
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				row := (c*g.K+ky)*g.K + kx
				dst := out.data[row*cols : (row+1)*cols]
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					srcRow := chOff + iy*g.InW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						dst[oy*outW+ox] = x.data[srcRow+ix]
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters a [InC*K*K, OutH*OutW] matrix
// of column gradients back into an image gradient of shape [InC, InH, InW],
// accumulating where patches overlap.
func Col2Im(cols *Tensor, g ConvGeom) *Tensor {
	img := New(g.InC, g.InH, g.InW)
	Col2ImInto(img, cols, g)
	return img
}

// Col2ImInto scatters cols into img, reusing img's storage. img must have
// shape [InC, InH, InW]; it is zeroed before accumulation, so a dirty
// scratch tensor may be passed.
//
//machlint:noalias img,cols
func Col2ImInto(img, cols *Tensor, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.K * g.K
	n := outH * outW
	if cols.Rank() != 2 || cols.shape[0] != rows || cols.shape[1] != n {
		panic(fmt.Sprintf("tensor: Col2Im input %v does not match geometry %+v", cols.shape, g))
	}
	if img.Rank() != 3 || img.shape[0] != g.InC || img.shape[1] != g.InH || img.shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: Col2ImInto dst %v does not match geometry %+v", img.shape, g))
	}
	img.Zero()
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				row := (c*g.K+ky)*g.K + kx
				src := cols.data[row*n : (row+1)*n]
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					dstRow := chOff + iy*g.InW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						img.data[dstRow+ix] += src[oy*outW+ox]
					}
				}
			}
		}
	}
}
