package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewShapesAndLen(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		want  int
	}{
		{"vector", []int{5}, 5},
		{"matrix", []int{3, 4}, 12},
		{"image", []int{3, 8, 8}, 192},
		{"batch", []int{2, 3, 4, 5}, 120},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if got := x.Len(); got != tt.want {
				t.Fatalf("Len() = %d, want %d", got, tt.want)
			}
			if x.Rank() != len(tt.shape) {
				t.Fatalf("Rank() = %d, want %d", x.Rank(), len(tt.shape))
			}
			for _, v := range x.Data() {
				if v != 0 {
					t.Fatalf("New tensor not zero-filled: %v", v)
				}
			}
		})
	}
}

func TestInvalidShapePanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"empty shape", func() { New() }},
		{"zero dim", func() { New(3, 0) }},
		{"negative dim", func() { New(-1) }},
		{"from slice mismatch", func() { FromSlice([]float64{1, 2}, 3) }},
		{"reshape mismatch", func() { New(4).Reshape(5) }},
		{"index out of range", func() { New(2, 2).At(2, 0) }},
		{"index wrong rank", func() { New(2, 2).At(1) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	k := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for l := 0; l < 4; l++ {
				x.Set(k, i, j, l)
				k++
			}
		}
	}
	// Row-major layout means the data slice should be 0..23 in order.
	for i, v := range x.Data() {
		if v != float64(i) {
			t.Fatalf("data[%d] = %v, want %d", i, v, i)
		}
	}
	if got := x.At(1, 2, 3); got != 23 {
		t.Fatalf("At(1,2,3) = %v, want 23", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := x.Clone()
	y.Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 4)
	y := x.Reshape(2, 2)
	y.Set(42, 0, 1)
	if x.At(1) != 42 {
		t.Fatal("Reshape must share storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)

	sum := a.Clone().AddInPlace(b)
	for i, want := range []float64{5, 7, 9} {
		if sum.Data()[i] != want {
			t.Fatalf("AddInPlace[%d] = %v, want %v", i, sum.Data()[i], want)
		}
	}
	diff := a.Clone().SubInPlace(b)
	for i, want := range []float64{-3, -3, -3} {
		if diff.Data()[i] != want {
			t.Fatalf("SubInPlace[%d] = %v, want %v", i, diff.Data()[i], want)
		}
	}
	prod := a.Clone().MulInPlace(b)
	for i, want := range []float64{4, 10, 18} {
		if prod.Data()[i] != want {
			t.Fatalf("MulInPlace[%d] = %v, want %v", i, prod.Data()[i], want)
		}
	}
	scaled := a.Clone().ScaleInPlace(2)
	for i, want := range []float64{2, 4, 6} {
		if scaled.Data()[i] != want {
			t.Fatalf("ScaleInPlace[%d] = %v, want %v", i, scaled.Data()[i], want)
		}
	}
	axpy := a.Clone().AxpyInPlace(10, b)
	for i, want := range []float64{41, 52, 63} {
		if axpy.Data()[i] != want {
			t.Fatalf("AxpyInPlace[%d] = %v, want %v", i, axpy.Data()[i], want)
		}
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{1, -2, 3, -4}, 2, 2)
	if got := x.Sum(); got != -2 {
		t.Fatalf("Sum = %v, want -2", got)
	}
	if got := x.Mean(); got != -0.5 {
		t.Fatalf("Mean = %v, want -0.5", got)
	}
	if got := x.Max(); got != 3 {
		t.Fatalf("Max = %v, want 3", got)
	}
	if got := x.SquaredNorm(); got != 30 {
		t.Fatalf("SquaredNorm = %v, want 30", got)
	}
	if got := x.Norm2(); !almostEqual(got, math.Sqrt(30), 1e-12) {
		t.Fatalf("Norm2 = %v, want sqrt(30)", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if got.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, got.Data()[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	got := MatMul(a, id)
	for i, v := range got.Data() {
		if !almostEqual(v, a.Data()[i], 1e-12) {
			t.Fatalf("A·I differs from A at %d: %v vs %v", i, v, a.Data()[i])
		}
	}
}

// naiveMatMul is an independent reference implementation used to cross-check
// the cache-friendly kernel.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		got, want := MatMul(a, b), naiveMatMul(a, b)
		for i := range got.Data() {
			if !almostEqual(got.Data()[i], want.Data()[i], 1e-10) {
				t.Fatalf("trial %d: MatMul differs from naive at %d", trial, i)
			}
		}
	}
}

func TestMatMulTransformsAgreeWithExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := Randn(rng, 1, k, m) // for TransA
		b := Randn(rng, 1, k, n)
		got := MatMulTransA(a, b)
		want := MatMul(Transpose2D(a), b)
		for i := range got.Data() {
			if !almostEqual(got.Data()[i], want.Data()[i], 1e-10) {
				t.Fatalf("TransA differs from explicit transpose at %d", i)
			}
		}
		c := Randn(rng, 1, m, k)
		d := Randn(rng, 1, n, k) // for TransB
		got2 := MatMulTransB(c, d)
		want2 := MatMul(c, Transpose2D(d))
		for i := range got2.Data() {
			if !almostEqual(got2.Data()[i], want2.Data()[i], 1e-10) {
				t.Fatalf("TransB differs from explicit transpose at %d", i)
			}
		}
	}
}

func TestMatMulInto(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	dst := Full(99, 2, 2) // pre-filled garbage must be overwritten
	MatMulInto(dst, a, b)
	want := MatMul(a, b)
	for i := range dst.Data() {
		if dst.Data()[i] != want.Data()[i] {
			t.Fatalf("MatMulInto[%d] = %v, want %v", i, dst.Data()[i], want.Data()[i])
		}
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("transpose shape = %v", at.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// Property: matrix multiplication distributes over addition,
// A·(B+C) == A·B + A·C.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c := Randn(rng, 1, k, n)
		left := MatMul(a, b.Clone().AddInPlace(c))
		right := MatMul(a, b).AddInPlace(MatMul(a, c))
		for i := range left.Data() {
			if !almostEqual(left.Data()[i], right.Data()[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the scale of a tensor's norm is absolutely homogeneous,
// ‖s·x‖ = |s|·‖x‖.
func TestNormHomogeneityProperty(t *testing.T) {
	f := func(seed int64, s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e6 {
			return true // skip pathological scales
		}
		rng := rand.New(rand.NewSource(seed))
		x := Randn(rng, 1, 3, 3)
		want := math.Abs(s) * x.Norm2()
		got := x.Clone().ScaleInPlace(s).Norm2()
		return almostEqual(got, want, 1e-6*(1+want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFillApplyAndString(t *testing.T) {
	x := Full(3, 2, 2)
	for _, v := range x.Data() {
		if v != 3 {
			t.Fatalf("Full value %v", v)
		}
	}
	x.Fill(1.5)
	if x.At(1, 1) != 1.5 {
		t.Fatal("Fill failed")
	}
	x.Apply(func(v float64) float64 { return v * 2 })
	if x.At(0, 0) != 3 {
		t.Fatal("Apply failed")
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero failed")
	}
	if s := x.String(); s == "" {
		t.Fatal("empty String")
	}
	big := New(100)
	if s := big.String(); s == "" {
		t.Fatal("large-tensor String should still print the shape")
	}
}

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := Uniform(rng, -2, 5, 1000)
	for _, v := range x.Data() {
		if v < -2 || v >= 5 {
			t.Fatalf("uniform draw %v outside [-2,5)", v)
		}
	}
	// Mean near the midpoint.
	if m := x.Mean(); m < 0.8 || m > 2.2 {
		t.Fatalf("uniform mean %v, want ≈ 1.5", m)
	}
}

func TestSameShapeAndDim(t *testing.T) {
	a, b, c := New(2, 3), New(2, 3), New(3, 2)
	if !a.SameShape(b) || a.SameShape(c) || a.SameShape(New(6)) {
		t.Fatal("SameShape wrong")
	}
	if a.Dim(0) != 2 || a.Dim(1) != 3 || a.Rank() != 2 {
		t.Fatal("Dim/Rank wrong")
	}
}
