package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvGeomOutputDims(t *testing.T) {
	tests := []struct {
		name       string
		g          ConvGeom
		outH, outW int
	}{
		{"same padding 3x3", ConvGeom{InC: 1, InH: 8, InW: 8, K: 3, Stride: 1, Pad: 1}, 8, 8},
		{"valid 3x3", ConvGeom{InC: 2, InH: 8, InW: 8, K: 3, Stride: 1, Pad: 0}, 6, 6},
		{"stride 2", ConvGeom{InC: 1, InH: 8, InW: 8, K: 2, Stride: 2, Pad: 0}, 4, 4},
		{"rectangular input", ConvGeom{InC: 1, InH: 5, InW: 7, K: 3, Stride: 1, Pad: 1}, 5, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := tt.g.OutH(); got != tt.outH {
				t.Fatalf("OutH = %d, want %d", got, tt.outH)
			}
			if got := tt.g.OutW(); got != tt.outW {
				t.Fatalf("OutW = %d, want %d", got, tt.outW)
			}
		})
	}
}

func TestConvGeomValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		g    ConvGeom
	}{
		{"zero channels", ConvGeom{InC: 0, InH: 4, InW: 4, K: 3, Stride: 1}},
		{"zero stride", ConvGeom{InC: 1, InH: 4, InW: 4, K: 3, Stride: 0}},
		{"negative pad", ConvGeom{InC: 1, InH: 4, InW: 4, K: 3, Stride: 1, Pad: -1}},
		{"kernel too large", ConvGeom{InC: 1, InH: 2, InW: 2, K: 5, Stride: 1, Pad: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

// naiveConv computes a direct convolution of x with a single kernel w of
// shape [InC, K, K], used to cross-check the im2col path.
func naiveConv(x *Tensor, w *Tensor, g ConvGeom) *Tensor {
	outH, outW := g.OutH(), g.OutW()
	out := New(outH, outW)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			s := 0.0
			for c := 0; c < g.InC; c++ {
				for ky := 0; ky < g.K; ky++ {
					for kx := 0; kx < g.K; kx++ {
						iy, ix := oy*g.Stride+ky-g.Pad, ox*g.Stride+kx-g.Pad
						if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
							continue
						}
						s += x.At(c, iy, ix) * w.At(c, ky, kx)
					}
				}
			}
			out.Set(s, oy, ox)
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	geoms := []ConvGeom{
		{InC: 1, InH: 6, InW: 6, K: 3, Stride: 1, Pad: 0},
		{InC: 2, InH: 6, InW: 6, K: 3, Stride: 1, Pad: 1},
		{InC: 3, InH: 8, InW: 8, K: 5, Stride: 2, Pad: 2},
		{InC: 1, InH: 5, InW: 7, K: 3, Stride: 2, Pad: 1},
	}
	for _, g := range geoms {
		x := Randn(rng, 1, g.InC, g.InH, g.InW)
		w := Randn(rng, 1, g.InC, g.K, g.K)
		cols := Im2Col(x, g)
		wRow := w.Reshape(1, g.InC*g.K*g.K)
		got := MatMul(wRow, cols).Reshape(g.OutH(), g.OutW())
		want := naiveConv(x, w, g)
		for i := range got.Data() {
			if !almostEqual(got.Data()[i], want.Data()[i], 1e-10) {
				t.Fatalf("geom %+v: im2col conv differs from naive at %d: %v vs %v",
					g, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. for all x, y:
// <Im2Col(x), y> == <x, Col2Im(y)>. This is exactly the identity the
// convolution backward pass relies on.
func TestCol2ImAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ConvGeom{
			InC:    1 + rng.Intn(3),
			InH:    3 + rng.Intn(5),
			InW:    3 + rng.Intn(5),
			K:      1 + rng.Intn(3),
			Stride: 1 + rng.Intn(2),
			Pad:    rng.Intn(2),
		}
		if g.Validate() != nil {
			return true
		}
		x := Randn(rng, 1, g.InC, g.InH, g.InW)
		cx := Im2Col(x, g)
		y := Randn(rng, 1, cx.Dim(0), cx.Dim(1))
		// <Im2Col(x), y>
		lhs := 0.0
		for i, v := range cx.Data() {
			lhs += v * y.Data()[i]
		}
		// <x, Col2Im(y)>
		cy := Col2Im(y, g)
		rhs := 0.0
		for i, v := range x.Data() {
			rhs += v * cy.Data()[i]
		}
		return almostEqual(lhs, rhs, 1e-8*(1+lhs*lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := ConvGeom{InC: 2, InH: 4, InW: 4, K: 3, Stride: 1, Pad: 1}
	Im2Col(New(1, 4, 4), g)
}
