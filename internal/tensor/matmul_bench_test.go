package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// refMatMulIKJ is the reference i-k-j kernel the blocked implementation must
// reproduce bit-for-bit (identical per-element accumulation order).
func refMatMulIKJ(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.data[i*k+p]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.data[i*n+j] += av * b.data[p*n+j]
			}
		}
	}
	return out
}

// TestBlockedMatMulBitIdenticalToNaive covers shapes around every block
// boundary so all partial-block paths run, plus sizes large enough to
// trigger the row-parallel dispatch.
func TestBlockedMatMulBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 2}, {8, 8, 8},
		{mmBlockI - 1, mmBlockK - 1, 17},
		{mmBlockI, mmBlockK, 16},
		{mmBlockI + 1, mmBlockK + 1, 9},
		{2*mmBlockI + 3, mmBlockK + 7, 33},
		{160, 160, 160}, // above mmParallelFlops: exercises rowParallel
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		a.data[rng.Intn(len(a.data))] = 0 // exercise the zero-skip
		want := refMatMulIKJ(a, b)
		got := MatMul(a, b)
		for i := range want.data {
			if got.data[i] != want.data[i] {
				t.Fatalf("%dx%dx%d: blocked result differs from naive at %d: %v vs %v",
					m, k, n, i, got.data[i], want.data[i])
			}
		}
		into := New(m, n)
		into.Fill(3.14) // dirty scratch must be fully overwritten
		MatMulInto(into, a, b)
		for i := range want.data {
			if into.data[i] != want.data[i] {
				t.Fatalf("%dx%dx%d: MatMulInto differs from naive at %d", m, k, n, i)
			}
		}
	}
}

func TestMatMulTransIntoMatchAllocatingForms(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, s := range [][3]int{{4, 6, 5}, {33, 65, 17}, {128, 64, 96}} {
		m, k, n := s[0], s[1], s[2]

		// aᵀ·b with a (k×m), b (k×n).
		at := Randn(rng, 1, k, m)
		b := Randn(rng, 1, k, n)
		wantA := MatMulTransA(at, b)
		gotA := New(m, n)
		gotA.Fill(-1)
		MatMulTransAInto(gotA, at, b)
		for i := range wantA.data {
			if gotA.data[i] != wantA.data[i] {
				t.Fatalf("TransAInto %v differs at %d", s, i)
			}
		}

		// a·bᵀ with a (m×k), b (n×k).
		a := Randn(rng, 1, m, k)
		bt := Randn(rng, 1, n, k)
		wantB := MatMulTransB(a, bt)
		gotB := New(m, n)
		gotB.Fill(-1)
		MatMulTransBInto(gotB, a, bt)
		for i := range wantB.data {
			if gotB.data[i] != wantB.data[i] {
				t.Fatalf("TransBInto %v differs at %d", s, i)
			}
		}
	}
}

func TestMatMulIntoShapeMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"into":   func() { MatMulInto(New(2, 2), New(2, 3), New(3, 3)) },
		"transA": func() { MatMulTransAInto(New(2, 2), New(3, 2), New(3, 3)) },
		"transB": func() { MatMulTransBInto(New(2, 2), New(2, 3), New(3, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected shape-mismatch panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestIm2ColColIntoReuseDirtyScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := ConvGeom{InC: 2, InH: 6, InW: 6, K: 3, Stride: 1, Pad: 1}
	x := Randn(rng, 1, 2, 6, 6)
	want := Im2Col(x, g)
	dst := New(want.Dim(0), want.Dim(1))
	dst.Fill(42)
	Im2ColInto(dst, x, g)
	for i := range want.data {
		if dst.data[i] != want.data[i] {
			t.Fatalf("Im2ColInto differs at %d", i)
		}
	}

	wantImg := Col2Im(want, g)
	img := New(2, 6, 6)
	img.Fill(-7)
	Col2ImInto(img, want, g)
	for i := range wantImg.data {
		if img.data[i] != wantImg.data[i] {
			t.Fatalf("Col2ImInto differs at %d", i)
		}
	}
}

func benchmarkMatMulSize(b *testing.B, size int) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, size, size)
	y := Randn(rng, 1, size, size)
	dst := New(size, size)
	b.ReportAllocs()
	b.SetBytes(int64(8 * size * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMul64(b *testing.B)  { benchmarkMatMulSize(b, 64) }
func BenchmarkMatMul128(b *testing.B) { benchmarkMatMulSize(b, 128) }
func BenchmarkMatMul256(b *testing.B) { benchmarkMatMulSize(b, 256) }
func BenchmarkMatMul512(b *testing.B) { benchmarkMatMulSize(b, 512) }

func BenchmarkMatMulNaive128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 128, 128)
	y := Randn(rng, 1, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refMatMulIKJ(x, y)
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	for _, size := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := Randn(rng, 1, size, size)
			y := Randn(rng, 1, size, size)
			dst := New(size, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTransBInto(dst, x, y)
			}
		})
	}
}
