package tensor

import "fmt"

// MatMul returns the matrix product a·b for 2-D tensors a (m×k) and b (k×n).
// The inner loops are ordered i-k-j so the innermost loop streams through
// contiguous rows of b, which is the standard cache-friendly layout for
// row-major storage.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions disagree: %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	dst.Zero()
	matMulInto(dst.data, a.data, b.data, m, k, n)
}

func matMulInto(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ·b for a (k×m) and b (k×n), producing m×n. This is
// the backward-pass form used when computing weight gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimensions disagree: %vᵀ × %v", a.shape, b.shape))
	}
	n := b.shape[1]
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a·bᵀ for a (m×k) and b (n×k), producing m×n. This is
// the backward-pass form used when propagating gradients through a dense
// layer.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimensions disagree: %v × %vᵀ", a.shape, b.shape))
	}
	n := b.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		drow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}
