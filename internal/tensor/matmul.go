package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Kernel blocking parameters. Blocks are chosen so one block of b
// (mmBlockK × n doubles for moderate n) and the active rows of dst stay
// resident in L1/L2 while the i loop sweeps over them. Blocking reorders
// only the *traversal* of (i, p) pairs, never the per-element accumulation
// order: for every output element dst[i,j] the partial products are still
// added in ascending p, so blocked results are bit-identical to the naive
// i-k-j kernel.
const (
	mmBlockI = 64  // rows of dst per block
	mmBlockK = 256 // inner-dimension slice per block

	// mmParallelFlops is the m·k·n threshold above which the row-parallel
	// path engages. Training-step matmuls in the simulator are far below
	// it, so worker-pool tasks never nest goroutines; only large
	// evaluation or standalone products fan out.
	mmParallelFlops = 1 << 21

	// mmMinRowsPerTask keeps per-goroutine work coarse enough to amortize
	// scheduling.
	mmMinRowsPerTask = 32
)

// MatMul returns the matrix product a·b for 2-D tensors a (m×k) and b (k×n).
// The kernel is cache-blocked over rows of dst and slices of the inner
// dimension, and partitions by output rows across goroutines for large
// products; both transformations preserve the per-element accumulation
// order, so the result is bit-identical for any block size or parallelism.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions disagree: %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulDispatch(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be m×n.
//
//machlint:noalias dst,a dst,b
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	dst.Zero()
	matMulDispatch(dst.data, a.data, b.data, m, k, n)
}

// matMulDispatch routes to the serial or row-parallel blocked kernel.
// dst must be zeroed. The serial path is taken without materializing a
// closure so the training hot path stays allocation-free.
func matMulDispatch(dst, a, b []float64, m, k, n int) {
	if !shouldRowParallel(m, m*k*n) {
		matMulBlocked(dst, a, b, 0, m, k, n)
		return
	}
	rowParallel(m, func(i0, i1 int) {
		matMulBlocked(dst, a, b, i0, i1, k, n)
	})
}

// matMulBlocked accumulates dst rows [i0, i1) of a·b with i/k blocking.
func matMulBlocked(dst, a, b []float64, i0, i1, k, n int) {
	for ib := i0; ib < i1; ib += mmBlockI {
		ie := ib + mmBlockI
		if ie > i1 {
			ie = i1
		}
		for pb := 0; pb < k; pb += mmBlockK {
			pe := pb + mmBlockK
			if pe > k {
				pe = k
			}
			for i := ib; i < ie; i++ {
				arow := a[i*k : (i+1)*k]
				drow := dst[i*n : (i+1)*n]
				for p := pb; p < pe; p++ {
					av := arow[p]
					//machlint:allow floateq sparsity fast path: exact zero rows multiply to exactly zero, skipping them is bit-identical
					if av == 0 {
						continue
					}
					brow := b[p*n : (p+1)*n]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulTransA returns aᵀ·b for a (k×m) and b (k×n), producing m×n. This is
// the backward-pass form used when computing weight gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := transAShape(a, b)
	out := New(m, n)
	matMulTransAInto(out.data, a.data, b.data, k, m, n)
	return out
}

// MatMulTransAInto computes dst = aᵀ·b, reusing dst's storage. dst must be
// m×n for a (k×m) and b (k×n).
//
//machlint:noalias dst,a dst,b
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m, n := transAShape(a, b)
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	dst.Zero()
	matMulTransAInto(dst.data, a.data, b.data, k, m, n)
}

func transAShape(a, b *Tensor) (k, m, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	k, m = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimensions disagree: %vᵀ × %v", a.shape, b.shape))
	}
	return k, m, b.shape[1]
}

// matMulTransAInto accumulates dst += aᵀ·b with the p-i-j loop order of the
// reference kernel. Row-parallelism would split the p loop, which *is* the
// accumulation order, so the transposed-A form stays serial; it is only used
// on small backward-pass weight gradients.
//
//machlint:noalias dst,a dst,b
func matMulTransAInto(dst, a, b []float64, k, m, n int) {
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			//machlint:allow floateq sparsity fast path: exact zero rows multiply to exactly zero, skipping them is bit-identical
			if av == 0 {
				continue
			}
			drow := dst[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a·bᵀ for a (m×k) and b (n×k), producing m×n. This is
// the backward-pass form used when propagating gradients through a dense
// layer.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := transBShape(a, b)
	out := New(m, n)
	matMulTransBDispatch(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulTransBInto computes dst = a·bᵀ, reusing dst's storage. dst must be
// m×n for a (m×k) and b (n×k).
//
//machlint:noalias dst,a dst,b
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := transBShape(a, b)
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	matMulTransBDispatch(dst.data, a.data, b.data, m, k, n)
}

func transBShape(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimensions disagree: %v × %vᵀ", a.shape, b.shape))
	}
	return m, k, b.shape[0]
}

func matMulTransBDispatch(dst, a, b []float64, m, k, n int) {
	if !shouldRowParallel(m, m*k*n) {
		matMulTransBRows(dst, a, b, 0, m, k, n)
		return
	}
	rowParallel(m, func(i0, i1 int) {
		matMulTransBRows(dst, a, b, i0, i1, k, n)
	})
}

// matMulTransBRows writes dst rows [i0, i1) of a·bᵀ. Every element is an
// independent dot product accumulated in ascending p, so row partitioning
// and j-blocking cannot change results. Each element is written exactly
// once, so dst needs no zeroing.
func matMulTransBRows(dst, a, b []float64, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// shouldRowParallel reports whether a product of m output rows and the given
// flop count is worth fanning out across cores.
func shouldRowParallel(m, flops int) bool {
	return flops >= mmParallelFlops && runtime.GOMAXPROCS(0) > 1 && m >= 2*mmMinRowsPerTask
}

// rowParallel invokes fn over a partition of [0, m) into contiguous row
// ranges, one goroutine per range. Row ranges touch disjoint slices of dst,
// so the result is identical to the serial call fn(0, m) regardless of
// scheduling.
func rowParallel(m int, fn func(i0, i1 int)) {
	tasks := runtime.GOMAXPROCS(0)
	if max := m / mmMinRowsPerTask; tasks > max {
		tasks = max
	}
	chunk := (m + tasks - 1) / tasks
	var wg sync.WaitGroup
	for i0 := 0; i0 < m; i0 += chunk {
		i1 := i0 + chunk
		if i1 > m {
			i1 = m
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			fn(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}
