package tensor

import "fmt"

// This file is the float32 compute lane's kernel set (DESIGN.md §10). The
// f64 kernels in matmul.go/im2col.go are the reference arithmetic of the
// simulator's default lane and are frozen by the bit-identity golden tests;
// the lane-32 kernels below mirror them over raw []float32 storage for the
// opt-in fast path. Two deliberate differences:
//
//   - They take flat slices plus explicit dimensions instead of *Tensor.
//     The lane-32 executor in internal/nn owns large pooled buffers and
//     carves per-device views out of them; a shape-carrying wrapper per view
//     would put allocation back on the hot path.
//
//   - They are register-tiled rather than singly-accumulated. The serial
//     f64 kernels are bound by one add-latency chain and by 2–3 memory
//     operations per multiply-add; the lane-32 kernels unroll the reduction
//     dimension four ways (and MatMulTransB32Into additionally tiles four
//     output columns) so each load feeds several independent partial sums.
//     Every split has a fixed shape and combination order, so the f32 lane
//     is deterministic — just not term-for-term identical to the f64
//     reduction order, which is fine because the lanes never mix inside a
//     forward/backward pass.
//
// All lane-32 kernels are serial: per-device products are far below the
// row-parallel threshold, and the worker pool above already provides the
// coarse parallelism, so nesting goroutines here would only hurt.

// check32 panics when a kernel operand's length disagrees with its declared
// dimensions. Slices may be larger (views into pooled buffers pass their
// exact window, but a tail-capacity slice is harmless).
func check32(name string, a []float32, n int) {
	if len(a) < n {
		panic(fmt.Sprintf("tensor: %s operand holds %d float32s, need %d", name, len(a), n))
	}
}

// MatMul32Into computes dst = a·b for row-major a (m×k) and b (k×n),
// overwriting dst (m×n). The reduction dimension is unrolled four ways:
// each pass over a dst row folds in four b rows, quartering the dst
// load/store traffic of the per-p reference form. Lane-32 products are
// per-device-layer sized (they fit in L1), so no cache blocking is needed.
//
//machlint:noalias dst,a dst,b
func MatMul32Into(dst, a, b []float32, m, k, n int) {
	check32("MatMul32Into dst", dst, m*n)
	check32("MatMul32Into a", a, m*k)
	check32("MatMul32Into b", b, k*n)
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := range drow[:n] {
			drow[j] = 0
		}
		p := 0
		for ; p+4 <= k; p += 4 {
			v0, v1, v2, v3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			b0 := b[p*n : (p+1)*n]
			b1 := b[(p+1)*n : (p+2)*n]
			b2 := b[(p+2)*n : (p+3)*n]
			b3 := b[(p+3)*n : (p+4)*n]
			for j := range drow[:n] {
				drow[j] += (v0*b0[j] + v1*b1[j]) + (v2*b2[j] + v3*b3[j])
			}
		}
		for ; p < k; p++ {
			av := arow[p]
			//machlint:allow floateq sparsity fast path: exact zero rows multiply to exactly zero, skipping them is bit-identical
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransA32Acc accumulates dst += aᵀ·b for a (k×m) and b (k×n) into dst
// (m×n) without zeroing it first. The backward pass writes weight gradients
// straight into the lane's flat (pre-zeroed) gradient buffer, so the
// separate scratch-then-add of the f64 layers disappears. The reduction
// dimension is unrolled four ways so each pass over a dst row folds in four
// a/b rows at once instead of reloading the row per p.
//
//machlint:noalias dst,a dst,b
func MatMulTransA32Acc(dst, a, b []float32, k, m, n int) {
	check32("MatMulTransA32Acc dst", dst, m*n)
	check32("MatMulTransA32Acc a", a, k*m)
	check32("MatMulTransA32Acc b", b, k*n)
	p := 0
	for ; p+4 <= k; p += 4 {
		a0 := a[p*m : (p+1)*m]
		a1 := a[(p+1)*m : (p+2)*m]
		a2 := a[(p+2)*m : (p+3)*m]
		a3 := a[(p+3)*m : (p+4)*m]
		b0 := b[p*n : (p+1)*n]
		b1 := b[(p+1)*n : (p+2)*n]
		b2 := b[(p+2)*n : (p+3)*n]
		b3 := b[(p+3)*n : (p+4)*n]
		for i := 0; i < m; i++ {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			drow := dst[i*n : (i+1)*n]
			for j := range drow[:n] {
				drow[j] += (v0*b0[j] + v1*b1[j]) + (v2*b2[j] + v3*b3[j])
			}
		}
	}
	for ; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			//machlint:allow floateq sparsity fast path: exact zero rows multiply to exactly zero, skipping them is bit-identical
			if av == 0 {
				continue
			}
			drow := dst[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransB32Into computes dst = a·bᵀ for a (m×k) and b (n×k), writing
// each element of dst (m×n) exactly once. Every element is an independent
// dot product. The kernel tiles four output columns per pass — each a load
// feeds four dots — and splits every dot into two partial sums, giving
// eight independent chains in the 4×2 body; leftover columns fall back to a
// four-way single-dot split. Both splits have fixed shapes, so results are
// deterministic (independent of anything but the operands).
//
//machlint:noalias dst,a dst,b
func MatMulTransB32Into(dst, a, b []float32, m, k, n int) {
	check32("MatMulTransB32Into dst", dst, m*n)
	check32("MatMulTransB32Into a", a, m*k)
	check32("MatMulTransB32Into b", b, n*k)
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var s00, s01, s10, s11, s20, s21, s30, s31 float32
			p := 0
			for ; p+2 <= k; p += 2 {
				a0, a1 := arow[p], arow[p+1]
				s00 += a0 * b0[p]
				s01 += a1 * b0[p+1]
				s10 += a0 * b1[p]
				s11 += a1 * b1[p+1]
				s20 += a0 * b2[p]
				s21 += a1 * b2[p+1]
				s30 += a0 * b3[p]
				s31 += a1 * b3[p+1]
			}
			if p < k {
				av := arow[p]
				s00 += av * b0[p]
				s10 += av * b1[p]
				s20 += av * b2[p]
				s30 += av * b3[p]
			}
			drow[j] = s00 + s01
			drow[j+1] = s10 + s11
			drow[j+2] = s20 + s21
			drow[j+3] = s30 + s31
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s0, s1, s2, s3, tail float32
			p := 0
			for ; p+4 <= k; p += 4 {
				s0 += arow[p] * brow[p]
				s1 += arow[p+1] * brow[p+1]
				s2 += arow[p+2] * brow[p+2]
				s3 += arow[p+3] * brow[p+3]
			}
			for ; p < k; p++ {
				tail += arow[p] * brow[p]
			}
			drow[j] = ((s0 + s1) + (s2 + s3)) + tail
		}
	}
}

// Im2Col32Into lowers one image x ([InC, InH, InW], flat) into dst
// ([InC·K·K, OutH·OutW], flat), zeroing padding positions — the float32 twin
// of Im2ColInto.
//
//machlint:noalias dst,x
func Im2Col32Into(dst, x []float32, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.K * g.K
	cols := outH * outW
	check32("Im2Col32Into dst", dst, rows*cols)
	check32("Im2Col32Into x", x, g.InC*g.InH*g.InW)
	for i := range dst[:rows*cols] {
		dst[i] = 0
	}
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				row := (c*g.K+ky)*g.K + kx
				drow := dst[row*cols : (row+1)*cols]
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					srcRow := chOff + iy*g.InW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						drow[oy*outW+ox] = x[srcRow+ix]
					}
				}
			}
		}
	}
}

// Col2Im32Into scatters a [InC·K·K, OutH·OutW] column-gradient matrix back
// into an image gradient ([InC, InH, InW], flat), accumulating overlapping
// patches — the float32 twin of Col2ImInto. img is zeroed first.
//
//machlint:noalias img,cols
func Col2Im32Into(img, cols []float32, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.K * g.K
	n := outH * outW
	check32("Col2Im32Into img", img, g.InC*g.InH*g.InW)
	check32("Col2Im32Into cols", cols, rows*n)
	for i := range img[:g.InC*g.InH*g.InW] {
		img[i] = 0
	}
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				row := (c*g.K+ky)*g.K + kx
				src := cols[row*n : (row+1)*n]
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					dstRow := chOff + iy*g.InW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						img[dstRow+ix] += src[oy*outW+ox]
					}
				}
			}
		}
	}
}
