package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randn32 draws a float32 slice whose values are exactly representable in
// both lanes, so lane comparisons see only accumulation-order error.
func randn32(rng *rand.Rand, n int) ([]float32, []float64) {
	f32 := make([]float32, n)
	f64 := make([]float64, n)
	for i := range f32 {
		v := float32(rng.NormFloat64())
		f32[i] = v
		f64[i] = float64(v)
	}
	return f32, f64
}

// close32 compares a lane-32 result against the f64 reference with a
// relative tolerance scaled to float32 precision and the reduction length.
func close32(t *testing.T, name string, got []float32, want []float64, k int) {
	t.Helper()
	tol := 1e-6 * math.Sqrt(float64(k)+1)
	for i := range got {
		g, w := float64(got[i]), want[i]
		scale := math.Max(1, math.Abs(w))
		if math.Abs(g-w)/scale > tol {
			t.Fatalf("%s[%d] = %v, want %v (tol %v)", name, i, g, w, tol)
		}
	}
}

func TestMatMul32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 4}, {8, 64, 32}, {70, 300, 17}} {
		m, k, n := dims[0], dims[1], dims[2]
		a32, a64 := randn32(rng, m*k)
		b32, b64 := randn32(rng, k*n)
		// Exercise the sparsity fast path on a few exact-zero rows.
		for p := 0; p < k; p += 7 {
			a32[p] = 0
			a64[p] = 0
		}
		dst32 := make([]float32, m*n)
		MatMul32Into(dst32, a32, b32, m, k, n)
		ref := New(m, n)
		MatMulInto(ref, FromSlice(a64, m, k), FromSlice(b64, k, n))
		close32(t, "MatMul32Into", dst32, ref.Data(), k)
	}
}

func TestMatMulTransA32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{1, 2, 3}, {8, 32, 10}, {40, 33, 9}} {
		k, m, n := dims[0], dims[1], dims[2]
		a32, a64 := randn32(rng, k*m)
		b32, b64 := randn32(rng, k*n)
		dst32 := make([]float32, m*n)
		MatMulTransA32Acc(dst32, a32, b32, k, m, n)
		ref := New(m, n)
		MatMulTransAInto(ref, FromSlice(a64, k, m), FromSlice(b64, k, n))
		close32(t, "MatMulTransA32Acc", dst32, ref.Data(), k)
	}
}

// TestMatMulTransA32Accumulates pins the += contract: the kernel adds onto
// whatever the destination already holds (the lane's flat gradient buffer).
func TestMatMulTransA32Accumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k, m, n := 4, 3, 2
	a32, _ := randn32(rng, k*m)
	b32, _ := randn32(rng, k*n)
	once := make([]float32, m*n)
	MatMulTransA32Acc(once, a32, b32, k, m, n)
	twice := make([]float32, m*n)
	MatMulTransA32Acc(twice, a32, b32, k, m, n)
	MatMulTransA32Acc(twice, a32, b32, k, m, n)
	for i := range twice {
		// Term-by-term rounding makes the second pass inexact; tolerance only.
		want := 2 * float64(once[i])
		if math.Abs(float64(twice[i])-want) > 1e-5*math.Max(1, math.Abs(want)) {
			t.Fatalf("accumulation broken at %d: %v vs 2×%v", i, twice[i], once[i])
		}
	}
}

func TestMatMulTransB32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Inner dims straddle the 4-lane unroll boundary (k = 1..5 covers every
	// tail length) plus training-shaped products.
	for _, dims := range [][3]int{{2, 1, 3}, {2, 2, 3}, {2, 3, 3}, {2, 4, 3}, {2, 5, 3}, {8, 64, 32}, {8, 32, 10}} {
		m, k, n := dims[0], dims[1], dims[2]
		a32, a64 := randn32(rng, m*k)
		b32, b64 := randn32(rng, n*k)
		dst32 := make([]float32, m*n)
		MatMulTransB32Into(dst32, a32, b32, m, k, n)
		ref := New(m, n)
		MatMulTransBInto(ref, FromSlice(a64, m, k), FromSlice(b64, n, k))
		close32(t, "MatMulTransB32Into", dst32, ref.Data(), k)
	}
}

// TestMatMul32Deterministic pins that repeated lane-32 products are
// bit-identical: the fixed accumulator split must not hide any
// run-to-run variance.
func TestMatMul32Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, k, n := 8, 67, 13
	a32, _ := randn32(rng, m*k)
	b32, _ := randn32(rng, n*k)
	first := make([]float32, m*n)
	MatMulTransB32Into(first, a32, b32, m, k, n)
	again := make([]float32, m*n)
	for rep := 0; rep < 3; rep++ {
		MatMulTransB32Into(again, a32, b32, m, k, n)
		for i := range again {
			if math.Float32bits(again[i]) != math.Float32bits(first[i]) {
				t.Fatalf("rep %d: element %d differs: %v vs %v", rep, i, again[i], first[i])
			}
		}
	}
}

// TestIm2Col32MatchesF64Exactly — im2col/col2im only move and add values;
// on float32-representable inputs the lanes agree except where col2im
// accumulates overlapping patches, which stays within lane tolerance.
func TestIm2Col32MatchesF64Exactly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := ConvGeom{InC: 2, InH: 6, InW: 5, K: 3, Stride: 1, Pad: 1}
	x32, x64 := randn32(rng, g.InC*g.InH*g.InW)
	rows, n := g.InC*g.K*g.K, g.OutH()*g.OutW()
	cols32 := make([]float32, rows*n)
	Im2Col32Into(cols32, x32, g)
	ref := Im2Col(FromSlice(x64, g.InC, g.InH, g.InW), g)
	for i, v := range cols32 {
		if float64(v) != ref.Data()[i] {
			t.Fatalf("Im2Col32[%d] = %v, want %v", i, v, ref.Data()[i])
		}
	}

	c32, c64 := randn32(rng, rows*n)
	img32 := make([]float32, g.InC*g.InH*g.InW)
	Col2Im32Into(img32, c32, g)
	refImg := Col2Im(FromSlice(c64, rows, n), g)
	close32(t, "Col2Im32Into", img32, refImg.Data(), g.K*g.K)
}
