// Package tensor implements a small dense float64 tensor library used as the
// numerical substrate of the HFL simulator. Tensors are stored contiguously in
// row-major order. The package is deliberately minimal: it provides exactly
// the operations required by the neural-network layers in internal/nn
// (element-wise arithmetic, 2-D matrix multiplication, im2col/col2im for
// convolutions, and reductions).
//
// Shape mismatches are programmer errors and panic with a descriptive
// message, mirroring the convention of mainstream numeric libraries.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense, row-major float64 tensor. The zero value is not usable;
// construct tensors with New, FromSlice, Zeros, or the random initializers.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. All dimensions must
// be positive.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Zeros is an alias of New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn returns a tensor with elements drawn i.i.d. from N(0, std²).
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * std
	}
	return t
}

// Uniform returns a tensor with elements drawn i.i.d. from U[lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float64, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of t with a new shape covering the same elements.
// The underlying data is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameShape(u *Tensor, op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}

// AddInPlace adds u to t element-wise, returning t.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	t.mustSameShape(u, "AddInPlace")
	for i := range t.data {
		t.data[i] += u.data[i]
	}
	return t
}

// SubInPlace subtracts u from t element-wise, returning t.
func (t *Tensor) SubInPlace(u *Tensor) *Tensor {
	t.mustSameShape(u, "SubInPlace")
	for i := range t.data {
		t.data[i] -= u.data[i]
	}
	return t
}

// MulInPlace multiplies t by u element-wise (Hadamard product), returning t.
func (t *Tensor) MulInPlace(u *Tensor) *Tensor {
	t.mustSameShape(u, "MulInPlace")
	for i := range t.data {
		t.data[i] *= u.data[i]
	}
	return t
}

// ScaleInPlace multiplies every element of t by s, returning t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AxpyInPlace computes t += a*u element-wise, returning t.
func (t *Tensor) AxpyInPlace(a float64, u *Tensor) *Tensor {
	t.mustSameShape(u, "AxpyInPlace")
	for i := range t.data {
		t.data[i] += a * u.data[i]
	}
	return t
}

// Zero sets every element of t to zero.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Apply replaces each element x with f(x), returning t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i := range t.data {
		t.data[i] = f(t.data[i])
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// Max returns the maximum element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Norm2 returns the Euclidean (L2) norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SquaredNorm returns the squared Euclidean norm of the flattened tensor.
func (t *Tensor) SquaredNorm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return s
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	}
	return b.String()
}
