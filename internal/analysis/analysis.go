// Package analysis estimates the constants of the paper's convergence bound
// (Theorem 1) empirically — the smoothness constant L of Assumption 1 and
// the per-device gradient-norm bounds G²_m of Assumption 3 — and evaluates
// the bound for a given device population and sampling strategy. It connects
// the theory sections of the paper to measurable quantities of the simulator
// (see examples/bound for the closed-form side).
package analysis

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
)

// EstimateSmoothness probes the L-smoothness constant of Assumption 1 by
// sampling random parameter pairs (w, w′ = w + δ) and maximizing
// ‖∇F(w) − ∇F(w′)‖ / ‖w − w′‖ over trials. The returned value is a lower
// bound on the true L (a probe, not a certificate), which is how such
// constants are estimated in practice.
func EstimateSmoothness(arch hfl.ArchFunc, data *dataset.Dataset, trials, batch int, radius float64, seed int64) (float64, error) {
	if trials <= 0 || batch <= 0 || radius <= 0 {
		return 0, fmt.Errorf("analysis: trials/batch/radius must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	net, err := arch(rng)
	if err != nil {
		return 0, fmt.Errorf("analysis: build model: %w", err)
	}
	probe := net.Clone()
	opt := nn.NewSGD(0) // gradients only
	best := 0.0
	base := net.ParamVector()
	for trial := 0; trial < trials; trial++ {
		// Fix the minibatch so both gradient evaluations see the same F.
		x, y := data.RandomBatch(rng, batch)

		w := make([]float64, len(base))
		for i := range w {
			w[i] = base[i] + rng.NormFloat64()*0.1
		}
		if err := probe.SetParamVector(w); err != nil {
			return 0, err
		}
		probe.TrainStep(x, y, opt)
		g1 := probe.GradVector()

		dist := 0.0
		w2 := make([]float64, len(w))
		for i := range w2 {
			d := rng.NormFloat64() * radius
			w2[i] = w[i] + d
			dist += d * d
		}
		dist = math.Sqrt(dist)
		if err := probe.SetParamVector(w2); err != nil {
			return 0, err
		}
		probe.TrainStep(x, y, opt)
		g2 := probe.GradVector()

		diff := 0.0
		for i := range g1 {
			d := g1[i] - g2[i]
			diff += d * d
		}
		if dist > 0 {
			if l := math.Sqrt(diff) / dist; l > best {
				best = l
			}
		}
	}
	return best, nil
}

// EstimateGradNorms probes each device's expected squared stochastic-
// gradient norm E‖g_m(w, ξ)‖² under the given parameters, averaging over
// several minibatches — the ground truth that MACH's experience updating
// estimates online.
func EstimateGradNorms(arch hfl.ArchFunc, devices []*dataset.Dataset, params []float64, probes, batch int, seed int64) ([]float64, error) {
	if probes <= 0 || batch <= 0 {
		return nil, fmt.Errorf("analysis: probes/batch must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	net, err := arch(rng)
	if err != nil {
		return nil, fmt.Errorf("analysis: build model: %w", err)
	}
	opt := nn.NewSGD(0)
	out := make([]float64, len(devices))
	for m, d := range devices {
		if d == nil || d.Len() == 0 {
			return nil, fmt.Errorf("analysis: device %d has no data", m)
		}
		total := 0.0
		for p := 0; p < probes; p++ {
			if err := net.SetParamVector(params); err != nil {
				return nil, err
			}
			x, y := d.RandomBatch(rng, batch)
			_, gn := net.TrainStep(x, y, opt)
			total += gn
		}
		out[m] = total / float64(probes)
	}
	return out, nil
}

// BoundReport compares the Theorem 1 bound under uniform sampling, the
// paper's Eq. (13) plug-in, and the exact optimum, for one device population
// split across edges.
type BoundReport struct {
	// PerEdgeNorms[n] holds the G²_m of edge n's members.
	PerEdgeNorms [][]float64
	Capacity     float64
	// Variance terms Σ G²/q per step under each strategy.
	UniformTerm float64
	PaperTerm   float64
	OptimalTerm float64
	// Theorem 1 bounds over the given horizon.
	UniformBound float64
	PaperBound   float64
	OptimalBound float64
}

// CompareBounds evaluates the three closed-form strategies on a fixed norm
// profile over a horizon of steps.
func CompareBounds(params hfl.BoundParams, perEdgeNorms [][]float64, capacity float64, steps int) (*BoundReport, error) {
	if steps <= 0 || capacity <= 0 {
		return nil, fmt.Errorf("analysis: steps/capacity must be positive")
	}
	r := &BoundReport{PerEdgeNorms: perEdgeNorms, Capacity: capacity}
	for _, norms := range perEdgeNorms {
		n := len(norms)
		if n == 0 {
			continue
		}
		uq := make([]float64, n)
		for i := range uq {
			uq[i] = clamp01(capacity / float64(n))
		}
		r.UniformTerm += sampling.VarianceTerm(norms, uq)
		r.PaperTerm += sampling.VarianceTerm(norms, clampAll(sampling.PaperVirtualProbabilities(capacity, norms)))
		r.OptimalTerm += sampling.VarianceTerm(norms, clampAll(sampling.OptimalProbabilities(capacity, norms)))
	}
	mk := func(v float64) []float64 {
		terms := make([]float64, steps)
		for i := range terms {
			terms[i] = v
		}
		return terms
	}
	var err error
	if r.UniformBound, err = hfl.Theorem1Bound(params, mk(r.UniformTerm)); err != nil {
		return nil, err
	}
	if r.PaperBound, err = hfl.Theorem1Bound(params, mk(r.PaperTerm)); err != nil {
		return nil, err
	}
	if r.OptimalBound, err = hfl.Theorem1Bound(params, mk(r.OptimalTerm)); err != nil {
		return nil, err
	}
	return r, nil
}

func clamp01(q float64) float64 {
	if q > 1 {
		return 1
	}
	if q < 1e-3 {
		return 1e-3
	}
	return q
}

func clampAll(qs []float64) []float64 {
	for i, q := range qs {
		qs[i] = clamp01(q)
	}
	return qs
}
