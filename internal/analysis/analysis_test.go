package analysis

import (
	"math/rand"
	"testing"

	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/nn"
)

func testArch(rng *rand.Rand) (*nn.Network, error) {
	return nn.NewMLP("analysis", 16, []int{8}, 10, rng), nil
}

func testData(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	d, err := task.Generate(rand.New(rand.NewSource(1)), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEstimateSmoothnessPositiveFinite(t *testing.T) {
	d := testData(t, 60)
	l, err := EstimateSmoothness(testArch, d, 10, 8, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l <= 0 || l > 1e4 {
		t.Fatalf("estimated L = %v implausible", l)
	}
	if _, err := EstimateSmoothness(testArch, d, 0, 8, 0.01, 2); err == nil {
		t.Fatal("expected error for zero trials")
	}
}

func TestEstimateGradNormsOrdering(t *testing.T) {
	// Train a model on class-0 data only; a class-0 device should then
	// have a smaller gradient norm than a device holding other classes.
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	law0 := make([]float64, 10)
	law0[0] = 1
	dev0, err := task.Generate(rng, 60, law0)
	if err != nil {
		t.Fatal(err)
	}
	law9 := make([]float64, 10)
	law9[9] = 1
	dev9, err := task.Generate(rng, 60, law9)
	if err != nil {
		t.Fatal(err)
	}

	net, err := testArch(rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewSGD(0.1)
	for i := 0; i < 80; i++ {
		x, y := dev0.RandomBatch(rng, 8)
		net.TrainStep(x, y, opt)
	}

	norms, err := EstimateGradNorms(testArch, []*dataset.Dataset{dev0, dev9}, net.ParamVector(), 6, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if norms[0] >= norms[1] {
		t.Fatalf("fitted device norm %v not below unfitted %v", norms[0], norms[1])
	}
}

func TestEstimateGradNormsErrors(t *testing.T) {
	d := testData(t, 10)
	net, err := testArch(rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateGradNorms(testArch, []*dataset.Dataset{d}, net.ParamVector(), 0, 4, 1); err == nil {
		t.Fatal("expected error for zero probes")
	}
	if _, err := EstimateGradNorms(testArch, []*dataset.Dataset{nil}, net.ParamVector(), 1, 4, 1); err == nil {
		t.Fatal("expected error for nil device")
	}
}

func TestCompareBoundsOrdering(t *testing.T) {
	params := hfl.BoundParams{
		InitialGap: 2, L: 1, Gamma: 0.01,
		LocalEpochs: 10, CloudInterval: 5, Devices: 16,
	}
	norms := [][]float64{
		{1, 2, 20, 3},
		{0.5, 8, 1, 1},
	}
	r, err := CompareBounds(params, norms, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	// The exact optimum never exceeds uniform; the paper's plug-in sits
	// in-between or slightly off but must stay finite and positive.
	if !(r.OptimalTerm <= r.UniformTerm+1e-9) {
		t.Fatalf("optimal term %v above uniform %v", r.OptimalTerm, r.UniformTerm)
	}
	if !(r.OptimalBound <= r.UniformBound+1e-9) {
		t.Fatalf("optimal bound %v above uniform %v", r.OptimalBound, r.UniformBound)
	}
	for _, v := range []float64{r.UniformBound, r.PaperBound, r.OptimalBound} {
		if v <= 0 {
			t.Fatalf("non-positive bound %v", v)
		}
	}
	if _, err := CompareBounds(params, norms, 0, 50); err == nil {
		t.Fatal("expected capacity error")
	}
	if _, err := CompareBounds(params, norms, 2, 0); err == nil {
		t.Fatal("expected steps error")
	}
}
