package hfl

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
)

// tinyArch is a small MLP over 4×4 single-channel images, fast enough for
// unit tests.
func tinyArch(rng *rand.Rand) (*nn.Network, error) {
	return nn.NewMLP("tiny", 16, []int{16}, 10, rng), nil
}

// tinySetup builds a full experiment: task, non-IID devices, test set and
// mobility schedule.
func tinySetup(t *testing.T, devices, edges, steps int, seed int64) ([]*dataset.Dataset, *dataset.Dataset, *mobility.Schedule) {
	t.Helper()
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.Partition(task, dataset.PartitionConfig{
		Devices: devices, SamplesPerDevice: 40, TailRatio: 0.4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	test, err := task.Generate(rand.New(rand.NewSource(seed+1)), 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := mobility.GenerateSchedule(seed+2, edges, devices, steps, 3)
	if err != nil {
		t.Fatal(err)
	}
	return parts, test, sched
}

func tinyConfig(steps int, seed int64) Config {
	return Config{
		Steps:         steps,
		CloudInterval: 5,
		LocalEpochs:   2,
		BatchSize:     4,
		LearningRate:  0.05,
		LRDecay:       1,
		Participation: 0.5,
		Seed:          seed,
	}
}

func TestConfigValidate(t *testing.T) {
	valid := DefaultConfig()
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero steps", func(c *Config) { c.Steps = 0 }},
		{"zero interval", func(c *Config) { c.CloudInterval = 0 }},
		{"zero epochs", func(c *Config) { c.LocalEpochs = 0 }},
		{"zero batch", func(c *Config) { c.BatchSize = 0 }},
		{"zero lr", func(c *Config) { c.LearningRate = 0 }},
		{"bad decay", func(c *Config) { c.LRDecay = 0 }},
		{"decay above one", func(c *Config) { c.LRDecay = 1.5 }},
		{"zero participation", func(c *Config) { c.Participation = 0 }},
		{"participation above one", func(c *Config) { c.Participation = 1.1 }},
		{"negative eval", func(c *Config) { c.EvalEvery = -1 }},
		{"negative eval batch", func(c *Config) { c.EvalBatch = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	parts, test, sched := tinySetup(t, 6, 2, 10, 1)
	cfg := tinyConfig(10, 1)
	uni := sampling.NewUniform()

	if _, err := New(cfg, tinyArch, parts[:3], test, sched, uni); err == nil {
		t.Fatal("expected device-count mismatch error")
	}
	if _, err := New(cfg, tinyArch, parts, nil, sched, uni); err == nil {
		t.Fatal("expected empty test set error")
	}
	if _, err := New(cfg, tinyArch, parts, test, nil, uni); err == nil {
		t.Fatal("expected nil schedule error")
	}
	if _, err := New(cfg, tinyArch, parts, test, sched, nil); err == nil {
		t.Fatal("expected nil strategy error")
	}
	short := tinyConfig(50, 1) // schedule only covers 10 steps
	if _, err := New(short, tinyArch, parts, test, sched, uni); err == nil {
		t.Fatal("expected short-schedule error")
	}
	bad := tinyConfig(10, 1)
	bad.Steps = 0
	if _, err := New(bad, tinyArch, parts, test, sched, uni); err == nil {
		t.Fatal("expected config error")
	}
}

func TestRunProducesHistoryAndLearns(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 40, 2)
	eng, err := New(tinyConfig(40, 2), tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsRun != 40 {
		t.Fatalf("ran %d steps", res.StepsRun)
	}
	if res.History.Len() == 0 {
		t.Fatal("no evaluations recorded")
	}
	if res.History.FinalAccuracy() < 0.35 {
		t.Fatalf("model failed to learn: final accuracy %.3f", res.History.FinalAccuracy())
	}
	if res.TotalSampled == 0 {
		t.Fatal("no devices ever sampled")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	run := func() []float64 {
		parts, test, sched := tinySetup(t, 8, 3, 20, 3)
		mach, err := sampling.NewMACH(8, sampling.DefaultMACHConfig())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(tinyConfig(20, 3), tinyArch, parts, test, sched, mach)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		var accs []float64
		for _, p := range res.History.Points {
			accs = append(accs, p.Accuracy)
		}
		accs = append(accs, eng.GlobalParams()[0])
		return accs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v (parallel edges must not break determinism)", i, a[i], b[i])
		}
	}
}

func TestExpectedParticipationMatchesCapacity(t *testing.T) {
	parts, test, sched := tinySetup(t, 12, 3, 60, 4)
	cfg := tinyConfig(60, 4)
	cfg.Participation = 0.5
	eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// E[participants per step] = participation × devices = 6.
	mean := float64(res.TotalSampled) / float64(res.StepsRun)
	if mean < 4.5 || mean > 7.5 {
		t.Fatalf("mean participation %.2f, want ≈ 6", mean)
	}
	if got := eng.Capacity(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("capacity = %v, want 2 (0.5×12/3)", got)
	}
}

func TestEarlyStopAtTarget(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 60, 5)
	eng, err := New(tinyConfig(60, 5), tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(WithTarget(0.2)) // trivially reachable
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget {
		t.Fatal("target never reached")
	}
	if res.TargetStep == 0 || res.StepsRun > 60 {
		t.Fatalf("bad early stop: step %d after %d steps", res.TargetStep, res.StepsRun)
	}
	if res.StepsRun != res.TargetStep {
		t.Fatalf("run continued past target: %d vs %d", res.StepsRun, res.TargetStep)
	}
}

func TestHooksAreInvoked(t *testing.T) {
	parts, test, sched := tinySetup(t, 6, 2, 10, 6)
	eng, err := New(tinyConfig(10, 6), tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	steps, evals := 0, 0
	_, err = eng.Run(
		WithStepHook(func(step, sampled int) { steps++ }),
		WithEvalHook(func(step int, acc, loss float64) { evals++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 10 {
		t.Fatalf("step hook fired %d times, want 10", steps)
	}
	if evals != 2 { // cloud rounds at steps 5 and 10
		t.Fatalf("eval hook fired %d times, want 2", evals)
	}
}

func TestAllStrategiesRunEndToEnd(t *testing.T) {
	mach, err := sampling.NewMACH(8, sampling.DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	machp, err := sampling.NewMACHP(sampling.DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sampling.NewStatistical(8, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	strategies := []sampling.Strategy{
		sampling.NewUniform(), sampling.NewClassBalance(), ss, mach, machp,
	}
	for _, s := range strategies {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			parts, test, sched := tinySetup(t, 8, 2, 15, 7)
			eng, err := New(tinyConfig(15, 7), tinyArch, parts, test, sched, s)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalSampled == 0 {
				t.Fatal("strategy never sampled a device")
			}
		})
	}
}

func TestLiteralEq5ModeRuns(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 15, 8)
	cfg := tinyConfig(15, 8)
	cfg.Aggregation = AggLiteralEq5
	eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.History.Points {
		if math.IsNaN(p.Loss) {
			t.Fatal("literal Eq. 5 run produced NaN loss")
		}
	}
}

func TestLRDecayApplied(t *testing.T) {
	parts, test, sched := tinySetup(t, 6, 2, 10, 9)
	cfg := tinyConfig(10, 9)
	cfg.LRDecay = 0.5
	eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 10 steps with Tg=5 → 2 cloud rounds → lr × 0.25.
	want := 0.05 * 0.25
	for _, d := range eng.devices {
		if math.Abs(d.opt.LearningRate()-want) > 1e-12 {
			t.Fatalf("device lr = %v, want %v", d.opt.LearningRate(), want)
		}
	}
}

// Lemma 1: with inverse-probability weights, the expected aggregated edge
// model equals the plain average of the member models, regardless of the
// sampling probabilities. Verified by Monte Carlo over the update-space
// aggregation rule.
func TestEdgeAggregationUnbiasedness(t *testing.T) {
	parts, test, sched := tinySetup(t, 4, 1, 5, 10)
	eng, err := New(tinyConfig(5, 10), tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	dim := len(eng.global)
	memberParams := make([][]float64, 4)
	rng := rand.New(rand.NewSource(42))
	for i := range memberParams {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		memberParams[i] = v
	}
	probs := []float64{0.9, 0.5, 0.3, 0.7} // deliberately non-uniform
	base := append([]float64(nil), eng.edge[0]...)
	const trials = 4000
	sum := make([]float64, dim)
	for trial := 0; trial < trials; trial++ {
		copy(eng.edge[0], base)
		var results []localResult
		for i, q := range probs {
			if rng.Float64() < q {
				results = append(results, localResult{
					params: memberParams[i],
					weight: 1 / (4 * q),
				})
			}
		}
		eng.aggregateEdge(0, results, true)
		for j := range sum {
			sum[j] += eng.edge[0][j]
		}
	}
	// E[w'] should equal mean of member params.
	for j := 0; j < 10; j++ { // spot-check the first coordinates
		want := (memberParams[0][j] + memberParams[1][j] + memberParams[2][j] + memberParams[3][j]) / 4
		got := sum[j] / trials
		if math.Abs(got-want) > 0.08 {
			t.Fatalf("coordinate %d: E[aggregate] = %v, want %v", j, got, want)
		}
	}
}

func TestEvaluateConfusion(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 30, 12)
	eng, err := New(tinyConfig(30, 12), tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	conf, err := eng.EvaluateConfusion()
	if err != nil {
		t.Fatal(err)
	}
	if conf.Total() != test.Len() {
		t.Fatalf("confusion covers %d samples, want %d", conf.Total(), test.Len())
	}
	// Confusion accuracy must match the engine's final evaluation.
	if diff := conf.Accuracy() - res.History.FinalAccuracy(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("confusion accuracy %.4f vs history %.4f", conf.Accuracy(), res.History.FinalAccuracy())
	}
}

func TestCloudAggregationSynchronizesEdges(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 3, 10, 11)
	cfg := tinyConfig(10, 11)
	cfg.CloudInterval = 10 // single cloud round at the very end
	eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for n := range eng.edge {
		for j := range eng.edge[n] {
			if eng.edge[n][j] != eng.global[j] {
				t.Fatalf("edge %d diverges from global after cloud round", n)
			}
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 20, 13)
	eng, err := New(tinyConfig(20, 13), tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	want := eng.GlobalParams()

	// A fresh engine restored from the checkpoint starts from the same
	// global model, on the cloud and on every edge.
	parts2, test2, sched2 := tinySetup(t, 8, 2, 20, 13)
	eng2, err := New(tinyConfig(20, 14), tinyArch, parts2, test2, sched2, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got := eng2.GlobalParams()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("checkpoint mismatch at %d", i)
		}
	}
	for n := range eng2.edge {
		for j := range eng2.edge[n] {
			if eng2.edge[n][j] != want[j] {
				t.Fatalf("edge %d not restored", n)
			}
		}
	}
	if err := eng2.LoadCheckpoint(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("expected error for corrupt checkpoint")
	}
}

func TestUploadFailuresReduceAggregation(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 20, 15)
	cfg := tinyConfig(20, 15)
	cfg.UploadFailureProb = 0.95
	eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	before := eng.GlobalParams()
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With 95% of uploads lost, very few contributions land.
	mean := float64(res.TotalSampled) / float64(res.StepsRun)
	if mean > 1.5 {
		t.Fatalf("mean successful uploads per step %.2f, want ≤ 1.5", mean)
	}
	after := eng.GlobalParams()
	moved := 0.0
	for i := range before {
		d := after[i] - before[i]
		moved += d * d
	}
	// The model still moves a little (some uploads survive).
	if moved == 0 {
		t.Fatal("no update ever landed despite surviving uploads")
	}
	bad := cfg
	bad.UploadFailureProb = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for probability 1")
	}
}

// errArch fails construction, exercising New's error path.
func errArch(rng *rand.Rand) (*nn.Network, error) {
	return nil, errBoom
}

var errBoom = errors.New("boom")

func TestNewSurfacesArchError(t *testing.T) {
	parts, test, sched := tinySetup(t, 6, 2, 10, 16)
	if _, err := New(tinyConfig(10, 16), errArch, parts, test, sched, sampling.NewUniform()); !errors.Is(err, errBoom) {
		t.Fatalf("arch error not surfaced: %v", err)
	}
}

// badStrategy returns a wrong-length probability vector.
type badStrategy struct{}

func (badStrategy) Name() string   { return "bad" }
func (badStrategy) Unbiased() bool { return true }
func (badStrategy) Probabilities(ctx *sampling.EdgeContext) []float64 {
	return []float64{0.5} // wrong length for any edge with ≠1 members
}

func TestRunSurfacesBadStrategy(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 1, 10, 17) // 1 edge → 8 members
	eng, err := New(tinyConfig(10, 17), tinyArch, parts, test, sched, badStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("expected error for wrong-length probabilities")
	}
}

// zeroProbStrategy claims to be unbiased but can sample at probability 0
// boundary — the engine must reject a sampled q ≤ 0.
type zeroProbStrategy struct{}

func (zeroProbStrategy) Name() string   { return "zerop" }
func (zeroProbStrategy) Unbiased() bool { return true }
func (zeroProbStrategy) Probabilities(ctx *sampling.EdgeContext) []float64 {
	out := make([]float64, len(ctx.Members))
	return out // all zeros: never sampled, so Run proceeds with no training
}

func TestRunToleratesNeverSamplingStrategy(t *testing.T) {
	parts, test, sched := tinySetup(t, 6, 2, 10, 18)
	eng, err := New(tinyConfig(10, 18), tinyArch, parts, test, sched, zeroProbStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSampled != 0 {
		t.Fatalf("zero-probability strategy sampled %d devices", res.TotalSampled)
	}
}

func TestCommStatsAccounting(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 10, 19)
	eng, err := New(tinyConfig(10, 19), tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	modelBytes := int64(len(eng.global)) * 8
	// Without upload failures, uplink = downlink = TotalSampled × model.
	wantDevice := int64(res.TotalSampled) * modelBytes
	if res.Comm.DeviceUplinkBytes != wantDevice || res.Comm.DeviceDownlinkBytes != wantDevice {
		t.Fatalf("device comm %d/%d, want %d", res.Comm.DeviceUplinkBytes, res.Comm.DeviceDownlinkBytes, wantDevice)
	}
	// 10 steps / Tg=5 → 2 cloud rounds × 2 edges × 2 directions.
	wantCloud := int64(2*2*2) * modelBytes
	if res.Comm.CloudBytes != wantCloud {
		t.Fatalf("cloud comm %d, want %d", res.Comm.CloudBytes, wantCloud)
	}
	if res.Comm.Total() != 2*wantDevice+wantCloud {
		t.Fatalf("total %d", res.Comm.Total())
	}
}

func TestCommStatsUploadFailuresSplitCounts(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 20, 20)
	cfg := tinyConfig(20, 20)
	cfg.UploadFailureProb = 0.5
	eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Roughly half the trained devices fail to upload: downlink must
	// exceed uplink.
	if res.Comm.DeviceDownlinkBytes <= res.Comm.DeviceUplinkBytes {
		t.Fatalf("downlink %d not above uplink %d under upload failures",
			res.Comm.DeviceDownlinkBytes, res.Comm.DeviceUplinkBytes)
	}
}

func TestCloudAggregateIsMemberWeightedMean(t *testing.T) {
	parts, test, sched := tinySetup(t, 9, 3, 10, 21)
	eng, err := New(tinyConfig(10, 21), tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite edge models with known constants.
	for n := range eng.edge {
		for j := range eng.edge[n] {
			eng.edge[n][j] = float64(n + 1)
		}
	}
	const step = 4
	counts := make([]int, 3)
	total := 0
	for n := 0; n < 3; n++ {
		counts[n] = len(sched.MembersAt(step, n))
		total += counts[n]
	}
	eng.cloudAggregate(step)
	want := 0.0
	for n, c := range counts {
		want += float64(n+1) * float64(c) / float64(total)
	}
	for j := range eng.global {
		if math.Abs(eng.global[j]-want) > 1e-12 {
			t.Fatalf("global[%d] = %v, want %v", j, eng.global[j], want)
		}
	}
}
