package hfl

import (
	"bytes"
	"math"
	"testing"

	"github.com/mach-fl/mach/internal/sampling"
	"github.com/mach-fl/mach/internal/telemetry"
)

// runTelemetryRun executes the golden-regression config (12 devices, 3
// edges, 12 steps, MACH, seed 21) with the given telemetry sink attached.
func runTelemetryRun(t *testing.T, tel *telemetry.Telemetry) (*Result, []float64) {
	t.Helper()
	parts, test, sched := tinySetup(t, 12, 3, 12, 21)
	cfg := tinyConfig(12, 21)
	cfg.Workers = 3
	cfg.UploadFailureProb = 0.2
	cfg.EvalBatch = 100
	s, err := sampling.NewMACH(12, sampling.DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, tinyArch, parts, test, sched, s)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetTelemetry(tel)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.GlobalParams()
}

// TestRunBitIdenticalWithTelemetry is the observability contract: attaching
// a full telemetry sink (metrics AND a complete decision trace) must not
// change a single bit of the run — sampling decisions, evaluation history
// and final parameters all match the telemetry-free run exactly.
func TestRunBitIdenticalWithTelemetry(t *testing.T) {
	refRes, refParams := runTelemetryRun(t, nil)

	var traceBuf bytes.Buffer
	tel := telemetry.New()
	tel.SetTrace(telemetry.NewTrace(&traceBuf, telemetry.TraceConfig{}))
	res, params := runTelemetryRun(t, tel)
	if err := tel.Trace().Close(); err != nil {
		t.Fatal(err)
	}

	if len(res.SampledPerStep) != len(refRes.SampledPerStep) {
		t.Fatalf("steps: %d vs %d", len(res.SampledPerStep), len(refRes.SampledPerStep))
	}
	for i, want := range refRes.SampledPerStep {
		if res.SampledPerStep[i] != want {
			t.Fatalf("SampledPerStep[%d] = %d with telemetry, %d without", i, res.SampledPerStep[i], want)
		}
	}
	if res.TotalSampled != refRes.TotalSampled || res.Comm != refRes.Comm {
		t.Fatalf("totals diverged under telemetry: %+v vs %+v", res, refRes)
	}
	refPts, pts := refRes.History.Points, res.History.Points
	if len(pts) != len(refPts) {
		t.Fatalf("history: %d points vs %d", len(pts), len(refPts))
	}
	for i := range refPts {
		if math.Float64bits(pts[i].Accuracy) != math.Float64bits(refPts[i].Accuracy) ||
			math.Float64bits(pts[i].Loss) != math.Float64bits(refPts[i].Loss) {
			t.Fatalf("history[%d] = %+v with telemetry, %+v without", i, pts[i], refPts[i])
		}
	}
	for j, want := range refParams {
		if math.Float64bits(params[j]) != math.Float64bits(want) {
			t.Fatalf("global param %d = %v with telemetry, %v without", j, params[j], want)
		}
	}

	// Metrics must agree with the run's own accounting.
	if got := tel.Count(telemetry.CounterSteps); got != int64(refRes.StepsRun) {
		t.Fatalf("steps counter = %d, want %d", got, refRes.StepsRun)
	}
	if got := tel.Count(telemetry.CounterDevicesUploaded); got != int64(refRes.TotalSampled) {
		t.Fatalf("uploaded counter = %d, want %d", got, refRes.TotalSampled)
	}
	if trained := tel.Count(telemetry.CounterDevicesTrained); trained < int64(refRes.TotalSampled) {
		t.Fatalf("trained counter %d below uploaded %d", trained, refRes.TotalSampled)
	}
	if got := tel.Count(telemetry.CounterDeviceUplinkBytes); got != refRes.Comm.DeviceUplinkBytes {
		t.Fatalf("uplink bytes counter = %d, want %d", got, refRes.Comm.DeviceUplinkBytes)
	}
	if got := tel.Count(telemetry.CounterCloudBytes); got != refRes.Comm.CloudBytes {
		t.Fatalf("cloud bytes counter = %d, want %d", got, refRes.Comm.CloudBytes)
	}
}

// TestTraceReconstructsDecisions drives the full trace pipeline end to end:
// two identically-seeded runs produce traces with zero divergence, and every
// recorded decision is internally consistent — the coin/probability
// comparison reproduces the sampled set, and Why reconstructs a device's
// fate from the raw events.
func TestTraceReconstructsDecisions(t *testing.T) {
	record := func() ([]telemetry.Event, *Result) {
		var buf bytes.Buffer
		tel := telemetry.New()
		tel.SetTrace(telemetry.NewTrace(&buf, telemetry.TraceConfig{}))
		res, _ := runTelemetryRun(t, tel)
		if err := tel.Trace().Close(); err != nil {
			t.Fatal(err)
		}
		events, err := telemetry.ReadEvents(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return events, res
	}
	ea, res := record()
	eb, _ := record()
	if div := telemetry.Diff(ea, eb); div != nil {
		t.Fatalf("identically-seeded traces diverge: %+v", div[0])
	}

	decisions := 0
	var probe *telemetry.DecisionEvent
	probeStep := 0
	for i := range ea {
		ev := &ea[i]
		if ev.Type != telemetry.EventDecision {
			continue
		}
		decisions++
		d := ev.Decision
		if len(d.Probs) != len(d.Members) || len(d.Coins) != len(d.Members) {
			t.Fatalf("step %d edge %d: %d members, %d probs, %d coins", ev.Step, d.Edge, len(d.Members), len(d.Probs), len(d.Coins))
		}
		if len(d.Estimates) != len(d.Members) {
			t.Fatalf("step %d edge %d: MACH decision lacks estimates", ev.Step, d.Edge)
		}
		// Replay the Bernoulli comparisons: they must reproduce Sampled.
		var sampled []int
		for i, m := range d.Members {
			if d.Coins[i] < d.Probs[i] {
				sampled = append(sampled, m)
			}
		}
		if len(sampled) != len(d.Sampled) {
			t.Fatalf("step %d edge %d: replayed %d sampled, recorded %d", ev.Step, d.Edge, len(sampled), len(d.Sampled))
		}
		for i, m := range d.Sampled {
			if sampled[i] != m {
				t.Fatalf("step %d edge %d: replayed sampled %v, recorded %v", ev.Step, d.Edge, sampled, d.Sampled)
			}
		}
		if probe == nil && len(d.Sampled) > 0 {
			probe, probeStep = d, ev.Step
		}
	}
	if decisions == 0 {
		t.Fatal("trace recorded no decisions")
	}
	if probe == nil {
		t.Fatal("no decision sampled any device")
	}

	// Why must reconstruct a sampled device's decision from the raw trace.
	r, err := telemetry.Why(ea, probe.Sampled[0], probeStep)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sampled || r.Edge != probe.Edge || !(r.Coin < r.Prob) {
		t.Fatalf("Why(%d, %d) = %+v, want a sampled reconstruction on edge %d", probe.Sampled[0], probeStep, r, probe.Edge)
	}
	if !r.HasEstimate {
		t.Fatalf("Why(%d, %d) lacks the UCB estimate", probe.Sampled[0], probeStep)
	}

	// The uploads dropped by failure coins must be visible in the trace.
	dropped := 0
	for i := range ea {
		if ea[i].Type == telemetry.EventDecision {
			dropped += len(ea[i].Decision.Dropped)
		}
	}
	trained := 0
	for i := range ea {
		if ea[i].Type == telemetry.EventDecision {
			trained += len(ea[i].Decision.Sampled)
		}
	}
	if trained-dropped != res.TotalSampled {
		t.Fatalf("trace sampled %d − dropped %d ≠ uploaded %d", trained, dropped, res.TotalSampled)
	}
}

// TestDecideWarmPathZeroAllocNilTelemetry pins the disabled-telemetry cost
// of the decision hot path at exactly zero allocations: with the decide
// state warm, a full edge decision (UCB estimates, probabilities, every
// coin) must not allocate when no sink is attached.
func TestDecideWarmPathZeroAllocNilTelemetry(t *testing.T) {
	parts, test, sched := tinySetup(t, 12, 3, 12, 21)
	cfg := tinyConfig(12, 21)
	s, err := sampling.NewMACH(12, sampling.DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, tinyArch, parts, test, sched, s)
	if err != nil {
		t.Fatal(err)
	}
	eng.positionMobility(0)
	if err := eng.edgeDecide(0, 0); err != nil { // warm-up installs the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := eng.edgeDecide(0, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm decide path allocates %.1f per edge with telemetry disabled, want 0", allocs)
	}
}
