package hfl

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mach-fl/mach/internal/sampling"
	"github.com/mach-fl/mach/internal/telemetry"
)

// shardStrategies are the strategy constructors the sharding contract is
// checked against: uniform (no observer), MACH (BatchObserver fast path) and
// MACH-P (probe path, no observer).
func shardStrategies(devices int) map[string]func(t *testing.T) sampling.Strategy {
	return map[string]func(t *testing.T) sampling.Strategy{
		"uniform": func(*testing.T) sampling.Strategy { return sampling.NewUniform() },
		"mach": func(t *testing.T) sampling.Strategy {
			s, err := sampling.NewMACH(devices, sampling.DefaultMACHConfig())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"machp": func(t *testing.T) sampling.Strategy {
			s, err := sampling.NewMACHP(sampling.DefaultMACHConfig())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

// runSharded executes one seeded run with the given shard count over a
// 5-edge schedule and returns everything that must be invariant across
// shard counts.
func runSharded(t *testing.T, strategy func(t *testing.T) sampling.Strategy, shards int) (*Result, []float64) {
	t.Helper()
	parts, test, sched := tinySetup(t, 12, 5, 12, 21)
	cfg := tinyConfig(12, 21)
	cfg.Workers = 3
	cfg.Shards = shards
	cfg.UploadFailureProb = 0.2
	cfg.EvalBatch = 100
	eng, err := New(cfg, tinyArch, parts, test, sched, strategy(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.GlobalParams()
}

// requireIdenticalRuns fails unless two runs agree bitwise on every
// shard-count-invariant output.
func requireIdenticalRuns(t *testing.T, label string, res, refRes *Result, params, refParams []float64) {
	t.Helper()
	if len(res.SampledPerStep) != len(refRes.SampledPerStep) {
		t.Fatalf("%s: %d steps vs %d", label, len(res.SampledPerStep), len(refRes.SampledPerStep))
	}
	for i, v := range refRes.SampledPerStep {
		if res.SampledPerStep[i] != v {
			t.Fatalf("%s: SampledPerStep[%d] = %d, want %d", label, i, res.SampledPerStep[i], v)
		}
	}
	if res.TotalSampled != refRes.TotalSampled || res.Comm != refRes.Comm {
		t.Fatalf("%s: totals diverged: %+v vs %+v", label, res, refRes)
	}
	refPts, pts := refRes.History.Points, res.History.Points
	if len(pts) != len(refPts) {
		t.Fatalf("%s: %d history points vs %d", label, len(pts), len(refPts))
	}
	for i := range refPts {
		if pts[i] != refPts[i] {
			t.Fatalf("%s: history[%d] = %+v, want %+v", label, i, pts[i], refPts[i])
		}
	}
	for j, v := range refParams {
		if params[j] != v {
			t.Fatalf("%s: global param %d = %v, want %v", label, j, params[j], v)
		}
	}
}

// TestRunBitIdenticalAcrossShardCounts is the sharding determinism contract
// (DESIGN.md §11): sampled counts, training history (accuracy AND loss,
// bitwise), communication totals and final global parameters must not
// depend on Config.Shards. The 5-edge schedule is deliberately not
// divisible by any tested shard count, so shard ranges are uneven; 7 > 5
// exercises the clamp to one group per shard.
func TestRunBitIdenticalAcrossShardCounts(t *testing.T) {
	for name, mk := range shardStrategies(12) {
		t.Run(name, func(t *testing.T) {
			refRes, refParams := runSharded(t, mk, 1)
			for _, shards := range []int{2, 3, 7} {
				res, params := runSharded(t, mk, shards)
				requireIdenticalRuns(t, name, res, refRes, params, refParams)
			}
		})
	}
}

// TestShardedMatchesSeedEngineGolden pins sharded runs to the same golden
// trace as TestRunRegressionFixedSeed: the pre-index serial engine's exact
// sampled-per-step sequence (commit 040083d) must survive any shard count,
// not just equality between sharded runs.
func TestShardedMatchesSeedEngineGolden(t *testing.T) {
	wantSampled := []int{7, 4, 6, 5, 6, 6, 9, 3, 4, 6, 6, 5}
	for _, shards := range []int{2, 3} {
		parts, test, sched := tinySetup(t, 12, 3, 12, 21)
		cfg := tinyConfig(12, 21)
		cfg.Workers = 3
		cfg.Shards = shards
		cfg.UploadFailureProb = 0.2
		cfg.EvalBatch = 100
		strat, err := sampling.NewMACH(12, sampling.DefaultMACHConfig())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(cfg, tinyArch, parts, test, sched, strat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range wantSampled {
			if res.SampledPerStep[i] != want {
				t.Fatalf("shards=%d: step %d sampled %d devices, want %d (full trace %v)",
					shards, i, res.SampledPerStep[i], want, res.SampledPerStep)
			}
		}
	}
}

// TestShardLayout checks the canonical shard geometry: ranges are contiguous,
// cover every edge exactly once, align to cloud-reduce group boundaries, and
// the configured count clamps to the group count.
func TestShardLayout(t *testing.T) {
	parts, test, sched := tinySetup(t, 12, 5, 12, 21)
	for _, tc := range []struct{ configured, want int }{
		{0, 1}, {1, 1}, {2, 2}, {5, 5}, {99, 5},
	} {
		cfg := tinyConfig(12, 21)
		cfg.Shards = tc.configured
		strat := sampling.NewUniform()
		eng, err := New(cfg, tinyArch, parts, test, sched, strat)
		if err != nil {
			t.Fatal(err)
		}
		if len(eng.shards) != tc.want {
			t.Fatalf("Shards=%d: %d shards, want %d", tc.configured, len(eng.shards), tc.want)
		}
		next := 0
		for i, s := range eng.shards {
			if s.lo != next {
				t.Fatalf("Shards=%d: shard %d starts at edge %d, want %d", tc.configured, i, s.lo, next)
			}
			if s.hi <= s.lo {
				t.Fatalf("Shards=%d: shard %d owns empty range [%d,%d)", tc.configured, i, s.lo, s.hi)
			}
			if got := groupEdgeLo(sched.Edges, eng.groups, s.gLo); got != s.lo {
				t.Fatalf("Shards=%d: shard %d range not group-aligned: lo %d vs group lo %d", tc.configured, i, s.lo, got)
			}
			for n := s.lo; n < s.hi; n++ {
				if eng.edgeShard[n] != i {
					t.Fatalf("Shards=%d: edgeShard[%d] = %d, want %d", tc.configured, n, eng.edgeShard[n], i)
				}
			}
			next = s.hi
		}
		if next != sched.Edges {
			t.Fatalf("Shards=%d: shards cover %d edges, want %d", tc.configured, next, sched.Edges)
		}
	}
}

// TestCheckpointRestoreAcrossShardCounts covers resharding at a checkpoint
// boundary: a run checkpointed under one shard count and resumed under
// another must continue exactly like a same-shard-count resume, because the
// checkpoint carries only the global model and the shard layout never
// reaches a value.
func TestCheckpointRestoreAcrossShardCounts(t *testing.T) {
	parts, test, sched := tinySetup(t, 12, 5, 12, 21)
	cfg := tinyConfig(6, 21)
	cfg.Workers = 3
	cfg.Shards = 2
	eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := eng.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	resume := func(shards int) (*Result, []float64) {
		cfg := tinyConfig(6, 77) // fresh stream: the resumed leg, not a replay
		cfg.Workers = 3
		cfg.Shards = shards
		eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, eng.GlobalParams()
	}

	refRes, refParams := resume(1)
	for _, shards := range []int{2, 3} {
		res, params := resume(shards)
		requireIdenticalRuns(t, "resume", res, refRes, params, refParams)
	}
}

// TestShardedTelemetryDoesNotPerturbRun is the observational-purity golden
// for the sharded plane: attaching telemetry (with a trace) to a multi-shard
// run must not change a single bit of its outputs, and the snapshot must
// carry one per-shard section per shard.
func TestShardedTelemetryDoesNotPerturbRun(t *testing.T) {
	run := func(tel *telemetry.Telemetry) (*Result, []float64) {
		parts, test, sched := tinySetup(t, 12, 5, 12, 21)
		cfg := tinyConfig(12, 21)
		cfg.Workers = 3
		cfg.Shards = 3
		strat, err := sampling.NewMACH(12, sampling.DefaultMACHConfig())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(cfg, tinyArch, parts, test, sched, strat)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetTelemetry(tel)
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, eng.GlobalParams()
	}

	refRes, refParams := run(nil)
	var traceBuf bytes.Buffer
	tel := telemetry.New()
	tel.SetTrace(telemetry.NewTrace(&traceBuf, telemetry.TraceConfig{}))
	tel.EnableSpans(true)
	res, params := run(tel)
	requireIdenticalRuns(t, "telemetry-on", res, refRes, params, refParams)

	// A second traced run, spans off, must produce the byte-identical trace:
	// span recording is purely additive.
	var traceBuf2 bytes.Buffer
	tel2 := telemetry.New()
	tel2.SetTrace(telemetry.NewTrace(&traceBuf2, telemetry.TraceConfig{}))
	res2, params2 := run(tel2)
	requireIdenticalRuns(t, "spans-off", res2, refRes, params2, refParams)

	snap := tel.Snapshot()
	if len(snap.Shards) != 3 {
		t.Fatalf("snapshot has %d shard sections, want 3", len(snap.Shards))
	}
	for i, sh := range snap.Shards {
		if sh.Shard != i {
			t.Fatalf("shard section %d labelled %d", i, sh.Shard)
		}
		for _, phase := range []string{"decide", "train", "finalize"} {
			h, ok := sh.Phases[phase]
			if !ok || h.Count == 0 {
				t.Fatalf("shard %d: phase %q has no observations", i, phase)
			}
		}
	}
	// Spans-on recorded the engine span kinds with matching step cadence.
	for _, kind := range []string{"span_step_ns", "span_decide_ns", "span_train_ns", "span_finalize_ns", "span_shard_cmd_ns", "span_cloud_reduce_ns"} {
		if h := snap.Histograms[kind]; h.Count == 0 {
			t.Fatalf("spans enabled but %s has no observations", kind)
		}
	}
	if got, steps := snap.Histograms["span_step_ns"].Count, snap.Counters["steps"]; got != steps {
		t.Fatalf("span_step_ns count = %d, want one per step (%d)", got, steps)
	}
	if len(tel.Spans()) == 0 {
		t.Fatal("span ring is empty after a spans-on run")
	}
	if err := tel.Trace().Close(); err != nil {
		t.Fatal(err)
	}
	if err := tel2.Trace().Close(); err != nil {
		t.Fatal(err)
	}
	if traceBuf.Len() == 0 {
		t.Fatal("trace produced no events")
	}
	// Phase events carry measured durations, which legitimately differ
	// between runs; every other event — decisions above all — must be
	// byte-identical whether or not spans were recorded.
	if a, b := dropPhaseEvents(traceBuf.String()), dropPhaseEvents(traceBuf2.String()); a != b {
		t.Fatalf("decision trace differs between spans-on and spans-off runs:\n%s\nvs\n%s", a, b)
	}
}

// dropPhaseEvents removes phase-event lines from a JSONL trace, keeping
// run/decision/eval/estimator/done events verbatim.
func dropPhaseEvents(trace string) string {
	var b strings.Builder
	for _, line := range strings.Split(trace, "\n") {
		if strings.HasPrefix(line, `{"type":"phase"`) {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}
