package hfl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mach-fl/mach/internal/sampling"
)

func validBoundParams() BoundParams {
	return BoundParams{
		InitialGap:    2.0,
		L:             1.0,
		Gamma:         0.01,
		LocalEpochs:   10,
		CloudInterval: 5,
		Devices:       100,
	}
}

func TestBoundParamsValidate(t *testing.T) {
	if err := validBoundParams().Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*BoundParams)
	}{
		{"negative gap", func(p *BoundParams) { p.InitialGap = -1 }},
		{"zero L", func(p *BoundParams) { p.L = 0 }},
		{"zero gamma", func(p *BoundParams) { p.Gamma = 0 }},
		{"zero epochs", func(p *BoundParams) { p.LocalEpochs = 0 }},
		{"zero interval", func(p *BoundParams) { p.CloudInterval = 0 }},
		{"zero devices", func(p *BoundParams) { p.Devices = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validBoundParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestVarianceCoefficientHandComputed(t *testing.T) {
	p := BoundParams{InitialGap: 1, L: 2, Gamma: 0.1, LocalEpochs: 5, CloudInterval: 3, Devices: 4}
	// γLI = 0.1·2·5 = 1; γLI(2+γLI) = 3.
	// 4(1+M)Tg²L²γ² = 4·5·9·4·0.01 = 7.2. Total = 10.2.
	// Coefficient = 10.2 / (2·4·T) with T = 10 → 0.1275.
	got := p.VarianceCoefficient(10)
	if math.Abs(got-0.1275) > 1e-12 {
		t.Fatalf("VarianceCoefficient = %v, want 0.1275", got)
	}
}

func TestTheorem1BoundBehaviour(t *testing.T) {
	p := validBoundParams()
	uniformTerms := make([]float64, 50)
	for i := range uniformTerms {
		uniformTerms[i] = 100
	}
	b1, err := Theorem1Bound(p, uniformTerms)
	if err != nil {
		t.Fatal(err)
	}
	if b1 <= 0 {
		t.Fatalf("bound %v not positive", b1)
	}
	// Smaller variance terms (better sampling) must tighten the bound.
	smaller := make([]float64, 50)
	for i := range smaller {
		smaller[i] = 50
	}
	b2, err := Theorem1Bound(p, smaller)
	if err != nil {
		t.Fatal(err)
	}
	if b2 >= b1 {
		t.Fatalf("smaller variance terms did not tighten the bound: %v vs %v", b2, b1)
	}
	// Errors.
	if _, err := Theorem1Bound(p, nil); err == nil {
		t.Fatal("expected error for empty terms")
	}
	if _, err := Theorem1Bound(p, []float64{-1}); err == nil {
		t.Fatal("expected error for negative term")
	}
	bad := p
	bad.L = 0
	if _, err := Theorem1Bound(bad, uniformTerms); err == nil {
		t.Fatal("expected error for invalid params")
	}
}

// Property: replacing any strategy's probabilities with the closed-form
// optimum never increases the Theorem 1 bound — the bound is monotone in the
// per-edge variance terms, so edge-by-edge minimization (Remark 2) is
// globally optimal.
func TestBoundMonotoneInVarianceTerms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := validBoundParams()
		n := 5 + rng.Intn(5)
		norms := make([]float64, n)
		for i := range norms {
			norms[i] = 0.5 + rng.Float64()*4
		}
		capacity := 1 + rng.Float64()*3
		// Uniform vs optimal per-step variance terms over T=20 steps.
		uq := make([]float64, n)
		for i := range uq {
			uq[i] = capacity / float64(n)
		}
		uniform := sampling.VarianceTerm(norms, uq)
		optimal := sampling.VarianceTerm(norms, sampling.OptimalProbabilities(capacity, norms))
		mk := func(v float64) []float64 {
			out := make([]float64, 20)
			for i := range out {
				out[i] = v
			}
			return out
		}
		bu, err1 := Theorem1Bound(p, mk(uniform))
		bo, err2 := Theorem1Bound(p, mk(optimal))
		return err1 == nil && err2 == nil && bo <= bu+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
