package hfl

import (
	"fmt"
	"math"
)

// BoundParams holds the problem constants of Theorem 1's convergence upper
// bound for HFL with mobile devices (Eq. 9).
type BoundParams struct {
	// InitialGap is f(w⁰) − f*, the initial suboptimality.
	InitialGap float64
	// L is the smoothness constant of Assumption 1.
	L float64
	// Gamma is the learning rate γ.
	Gamma float64
	// LocalEpochs is I.
	LocalEpochs int
	// CloudInterval is T_g.
	CloudInterval int
	// Devices is |M|.
	Devices int
}

// Validate reports whether the parameters are usable.
func (p BoundParams) Validate() error {
	switch {
	case p.InitialGap < 0:
		return fmt.Errorf("hfl: negative initial gap %v", p.InitialGap)
	case p.L <= 0:
		return fmt.Errorf("hfl: smoothness constant %v must be positive", p.L)
	case p.Gamma <= 0:
		return fmt.Errorf("hfl: learning rate %v must be positive", p.Gamma)
	case p.LocalEpochs <= 0 || p.CloudInterval <= 0 || p.Devices <= 0:
		return fmt.Errorf("hfl: I/Tg/M must be positive, got %d/%d/%d", p.LocalEpochs, p.CloudInterval, p.Devices)
	}
	return nil
}

// VarianceCoefficient returns the multiplier of the per-step sampling term
// Σ_n Σ_{m∈M^t_n} G²_m/q^t_{m,n} in Eq. (9):
//
//	[γLI(2+γLI) + 4(1+|M|)T_g²L²γ²] / (2|M|T).
func (p BoundParams) VarianceCoefficient(totalSteps int) float64 {
	gli := p.Gamma * p.L * float64(p.LocalEpochs)
	tg := float64(p.CloudInterval)
	m := float64(p.Devices)
	num := gli*(2+gli) + 4*(1+m)*tg*tg*p.L*p.L*p.Gamma*p.Gamma
	return num / (2 * m * float64(totalSteps))
}

// Theorem1Bound evaluates the right-hand side of Eq. (9) for a training run
// of T = len(varianceTerms) steps, where varianceTerms[t] is the realized
// Σ_n Σ_{m∈M^t_n} G²_m / q^t_{m,n} at step t under the chosen sampling
// strategy. Smaller is better; the sampling strategy only influences the
// bound through these per-step variance terms (Remark 1), which is exactly
// what MACH's edge sampling minimizes edge-by-edge.
func Theorem1Bound(p BoundParams, varianceTerms []float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	t := len(varianceTerms)
	if t == 0 {
		return 0, fmt.Errorf("hfl: bound needs at least one step")
	}
	bound := 2 * p.InitialGap / (p.Gamma * float64(p.LocalEpochs) * float64(t))
	coef := p.VarianceCoefficient(t)
	for _, v := range varianceTerms {
		if v < 0 || math.IsNaN(v) {
			return 0, fmt.Errorf("hfl: invalid variance term %v", v)
		}
		bound += coef * v
	}
	return bound, nil
}
