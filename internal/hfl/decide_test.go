package hfl

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mach-fl/mach/internal/sampling"
)

// TestReseededRNGMatchesFreshSource pins the pooled-RNG contract edgeDecide
// relies on: reseeding one rand.Rand with Seed(s) yields exactly the stream
// rand.New(rand.NewSource(s)) would, for the engine's actual per-edge seeds.
// If this ever broke, every sampling coin would shift and runs would diverge
// from the seed engine.
func TestReseededRNGMatchesFreshSource(t *testing.T) {
	reused := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ seed, t, n int64 }{
		{1, 0, 0}, {1, 0, 4}, {1, 57, 2}, {42, 13, 0}, {-9, 99, 999},
	} {
		s := mix(tc.seed, tc.t+1, tc.n+101)
		fresh := rand.New(rand.NewSource(s))
		reused.Seed(s)
		for i := 0; i < 200; i++ {
			f, r := fresh.Float64(), reused.Float64()
			if math.Float64bits(f) != math.Float64bits(r) {
				t.Fatalf("seed %d draw %d: fresh %v, reseeded %v", s, i, f, r)
			}
		}
		// Int draws share the source stream; check them too.
		if f, r := fresh.Intn(1<<20), reused.Intn(1<<20); f != r {
			t.Fatalf("seed %d: fresh Intn %d, reseeded Intn %d", s, f, r)
		}
	}
}

// TestRunRegressionFixedSeed locks the full pipeline to a golden trace: the
// exact sampled-per-step sequence and final accuracy of a small MACH run.
// The membership index, pooled decide state, in-place sampling path and
// parallel decide must all reproduce the seed engine's draws exactly for
// this to hold.
func TestRunRegressionFixedSeed(t *testing.T) {
	machStrategy := func(t *testing.T) sampling.Strategy {
		s, err := sampling.NewMACH(12, sampling.DefaultMACHConfig())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	res, _ := runWithWorkers(t, machStrategy, 3)
	// Golden values captured from the pre-index serial engine (commit
	// 040083d) on this exact config; they must never drift.
	wantSampled := []int{7, 4, 6, 5, 6, 6, 9, 3, 4, 6, 6, 5}
	if len(res.SampledPerStep) != len(wantSampled) {
		t.Fatalf("ran %d steps, want %d", len(res.SampledPerStep), len(wantSampled))
	}
	for i, want := range wantSampled {
		if res.SampledPerStep[i] != want {
			t.Fatalf("step %d sampled %d devices, want %d (full trace %v)", i, res.SampledPerStep[i], want, res.SampledPerStep)
		}
	}
}
