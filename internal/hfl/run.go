package hfl

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/mach-fl/mach/internal/metrics"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
)

// Result summarizes one training run.
type Result struct {
	// History holds the global-model evaluations.
	History *metrics.History
	// StepsRun is how many time steps executed (smaller than Config.Steps
	// when an accuracy target stopped the run early).
	StepsRun int
	// TotalSampled counts device participations over the whole run.
	TotalSampled int
	// SampledPerStep records how many devices trained at each step.
	SampledPerStep []int
	// ReachedTarget reports whether the early-stop accuracy target was hit,
	// and TargetStep the step at which it happened.
	ReachedTarget bool
	TargetStep    int
	// Comm tallies the communication volume of the run.
	Comm CommStats
}

// CommStats counts the model transfers of a run, valued at 8 bytes per
// parameter (float64). Device downlink counts one edge-model download per
// sampled device per step (Eq. 4's w^t_n distribution); device uplink one
// local-model upload per successful participation (Eq. 5); cloud volume one
// edge-model exchange per edge per cloud round, both directions (Eq. 6).
type CommStats struct {
	DeviceUplinkBytes   int64
	DeviceDownlinkBytes int64
	CloudBytes          int64
}

// Total returns the run's total transferred bytes.
func (c CommStats) Total() int64 {
	return c.DeviceUplinkBytes + c.DeviceDownlinkBytes + c.CloudBytes
}

// RunOption customizes a call to Run.
type RunOption func(*runOptions)

type runOptions struct {
	target float64
	hasTgt bool
	stepFn func(step, sampled int)
	evalFn func(step int, accuracy, loss float64)
}

// WithTarget stops the run at the first evaluation whose accuracy reaches
// target, the evaluation's time-to-accuracy protocol.
func WithTarget(target float64) RunOption {
	return func(o *runOptions) { o.target, o.hasTgt = target, true }
}

// WithStepHook invokes fn after every time step with the number of devices
// that trained.
func WithStepHook(fn func(step, sampled int)) RunOption {
	return func(o *runOptions) { o.stepFn = fn }
}

// WithEvalHook invokes fn after every global-model evaluation.
func WithEvalHook(fn func(step int, accuracy, loss float64)) RunOption {
	return func(o *runOptions) { o.evalFn = fn }
}

// localResult is one sampled device's contribution to edge aggregation.
type localResult struct {
	params []float64
	weight float64 // 1/(|M_n|·q) for unbiased strategies, 1 for biased
	size   int     // |D_m|: plain aggregation weights by dataset size
}

// Run executes Algorithm 1 and returns the training history.
func (e *Engine) Run(opts ...RunOption) (*Result, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	res := &Result{History: &metrics.History{}}
	probeNets := make([]*nn.Network, e.schedule.Edges)
	for n := range probeNets {
		probeNets[n] = e.evalNet.Clone()
	}
	probeOpt := nn.NewSGD(0) // zero step: probing measures gradients only

	modelBytes := int64(len(e.global)) * 8
	for t := 0; t < e.cfg.Steps; t++ {
		counts := make([]edgeStepCounts, e.schedule.Edges)
		var wg sync.WaitGroup
		errs := make([]error, e.schedule.Edges)
		for n := 0; n < e.schedule.Edges; n++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				counts[n], errs[n] = e.edgeStep(t, n, probeNets[n], probeOpt)
			}(n)
		}
		wg.Wait()
		for n, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("hfl: step %d edge %d: %w", t, n, err)
			}
		}
		stepSampled := 0
		for _, c := range counts {
			stepSampled += c.uploaded
			res.Comm.DeviceDownlinkBytes += int64(c.trained) * modelBytes
			res.Comm.DeviceUplinkBytes += int64(c.uploaded) * modelBytes
		}
		res.SampledPerStep = append(res.SampledPerStep, stepSampled)
		res.TotalSampled += stepSampled
		res.StepsRun = t + 1
		if o.stepFn != nil {
			o.stepFn(t, stepSampled)
		}

		cloudRound := (t+1)%e.cfg.CloudInterval == 0
		if cloudRound {
			e.cloudAggregate(t)
			// Every edge uploads its model and downloads the new global.
			res.Comm.CloudBytes += 2 * int64(e.schedule.Edges) * modelBytes
			if e.observer != nil {
				e.observer.CloudRound(t + 1)
			}
			if e.cfg.LRDecay < 1 {
				for _, d := range e.devices {
					d.opt.SetLearningRate(d.opt.LearningRate() * e.cfg.LRDecay)
				}
			}
		}
		evalDue := cloudRound
		if e.cfg.EvalEvery > 0 {
			evalDue = (t+1)%e.cfg.EvalEvery == 0
		}
		if evalDue || t == e.cfg.Steps-1 {
			acc, loss := e.evaluate(t)
			res.History.Add(metrics.Point{Step: t + 1, Accuracy: acc, Loss: loss})
			if o.evalFn != nil {
				o.evalFn(t+1, acc, loss)
			}
			if o.hasTgt && acc >= o.target {
				res.ReachedTarget = true
				res.TargetStep = t + 1
				return res, nil
			}
		}
	}
	return res, nil
}

// edgeStepCounts reports one edge's activity in one step: how many devices
// trained (downloaded the edge model and ran local SGD) and how many of
// those successfully uploaded.
type edgeStepCounts struct {
	trained  int
	uploaded int
}

// edgeStep performs device sampling, local updating and edge aggregation for
// one edge at one time step (Algorithm 1, lines 3-11).
func (e *Engine) edgeStep(t, n int, probeNet *nn.Network, probeOpt *nn.SGD) (edgeStepCounts, error) {
	var counts edgeStepCounts
	members := e.schedule.MembersAt(t, n)
	if len(members) == 0 {
		return counts, nil
	}
	edgeRNG := rand.New(rand.NewSource(mix(e.cfg.Seed, int64(t)+1, int64(n)+101)))
	ctx := &sampling.EdgeContext{
		Step:     t,
		Edge:     n,
		Capacity: e.capacity,
		Members:  members,
		RNG:      edgeRNG,
		ClassDist: func(m int) []float64 {
			return e.devices[m].dist
		},
		ProbeGradNorm: func(m int) float64 {
			return e.probeGradNorm(probeNet, probeOpt, t, n, m)
		},
	}
	probs := e.strategy.Probabilities(ctx)
	if len(probs) != len(members) {
		return counts, fmt.Errorf("strategy %q returned %d probabilities for %d members", e.strategy.Name(), len(probs), len(members))
	}

	var results []localResult
	unbiased := e.strategy.Unbiased()
	for i, m := range members {
		q := probs[i]
		if edgeRNG.Float64() >= q {
			continue // not sampled: 1^t_{m,n} = 0
		}
		if unbiased && q <= 0 {
			return counts, fmt.Errorf("strategy %q sampled device %d with probability %v", e.strategy.Name(), m, q)
		}
		dev := e.devices[m]
		sqNorms, err := e.localUpdate(dev, e.edge[n])
		if err != nil {
			return counts, fmt.Errorf("device %d: %w", m, err)
		}
		counts.trained++
		if e.observer != nil {
			e.observer.Observe(t, n, m, sqNorms)
		}
		if e.cfg.UploadFailureProb > 0 && edgeRNG.Float64() < e.cfg.UploadFailureProb {
			continue // device moved away before uploading (see Config)
		}
		weight := 1.0
		if unbiased {
			weight = 1 / (float64(len(members)) * q) // Eq. (5)
		}
		results = append(results, localResult{params: dev.model.ParamVector(), weight: weight, size: dev.data.Len()})
	}
	e.aggregateEdge(n, results, unbiased)
	counts.uploaded = len(results)
	return counts, nil
}

// localUpdate runs I local SGD steps from the edge model (Eq. 4) and returns
// the squared norms of the I stochastic gradients.
func (e *Engine) localUpdate(dev *device, edgeParams []float64) ([]float64, error) {
	if err := dev.model.SetParamVector(edgeParams); err != nil {
		return nil, err
	}
	sqNorms := make([]float64, e.cfg.LocalEpochs)
	for tau := 0; tau < e.cfg.LocalEpochs; tau++ {
		x, y := dev.data.RandomBatch(dev.rng, e.cfg.BatchSize)
		_, gn := dev.model.TrainStep(x, y, dev.opt)
		sqNorms[tau] = gn
	}
	return sqNorms, nil
}

// aggregateEdge merges sampled local models into the edge model. For
// unbiased strategies the inverse-probability weights of Eq. (5) are applied
// to the model updates (or, with AggLiteralEq5, to the models themselves); for
// biased active-selection strategies a plain average over participants is
// used.
func (e *Engine) aggregateEdge(n int, results []localResult, unbiased bool) {
	if len(results) == 0 {
		return // no participants: edge model carries over
	}
	cur := e.edge[n]
	mode := e.cfg.aggregation()
	if !unbiased {
		mode = AggPlain // active selection always plain-averages
	}
	switch mode {
	case AggPlain:
		// FedAvg over participants, weighted by local dataset size |D_m|
		// (equal sizes reduce to a plain mean, the paper's simplification).
		total := 0
		for _, r := range results {
			total += r.size
		}
		next := make([]float64, len(cur))
		for _, r := range results {
			w := float64(r.size) / float64(total)
			for j, v := range r.params {
				next[j] += w * v
			}
		}
		e.edge[n] = next
	case AggLiteralEq5:
		next := make([]float64, len(cur))
		for _, r := range results {
			for j, v := range r.params {
				next[j] += r.weight * v
			}
		}
		e.edge[n] = next
	default: // AggInverseUpdate: w_n ← w_n + Σ weight·(w_m − w_n)
		next := append([]float64(nil), cur...)
		for _, r := range results {
			for j, v := range r.params {
				next[j] += r.weight * (v - cur[j])
			}
		}
		e.edge[n] = next
	}
}

// cloudAggregate merges edge models into the global model with the
// member-count weights of Eq. (6) and redistributes it to every edge.
func (e *Engine) cloudAggregate(t int) {
	total := 0
	counts := make([]int, e.schedule.Edges)
	for n := range counts {
		counts[n] = len(e.schedule.MembersAt(t, n))
		total += counts[n]
	}
	next := make([]float64, len(e.global))
	for n, params := range e.edge {
		w := float64(counts[n]) / float64(total)
		if w == 0 {
			continue
		}
		for j, v := range params {
			next[j] += w * v
		}
	}
	e.global = next
	for n := range e.edge {
		copy(e.edge[n], e.global)
	}
}

// probeGradNorm measures the true squared stochastic-gradient norm of device
// m under edge n's current model, without updating any state (used by
// MACH-P).
func (e *Engine) probeGradNorm(probeNet *nn.Network, probeOpt *nn.SGD, t, n, m int) float64 {
	if err := probeNet.SetParamVector(e.edge[n]); err != nil {
		return 0
	}
	rng := rand.New(rand.NewSource(mix(e.cfg.Seed, int64(t)+7, int64(m)+301)))
	x, y := e.devices[m].data.RandomBatch(rng, e.cfg.BatchSize)
	_, gn := probeNet.TrainStep(x, y, probeOpt)
	return gn
}

// EvaluateConfusion classifies the full test set with the current global
// model and returns the confusion matrix, exposing the per-class (macro)
// view of the evaluation.
func (e *Engine) EvaluateConfusion() (*metrics.Confusion, error) {
	if err := e.evalNet.SetParamVector(e.global); err != nil {
		return nil, err
	}
	x, y := e.test.All()
	logits := e.evalNet.Forward(x, false)
	return metrics.NewConfusion(e.test.Classes, nn.Argmax(logits), y)
}

// evaluate computes the global model's accuracy and loss on the test set
// (optionally a deterministic subsample of EvalBatch samples).
func (e *Engine) evaluate(t int) (acc, loss float64) {
	if err := e.evalNet.SetParamVector(e.global); err != nil {
		return 0, 0
	}
	if e.cfg.EvalBatch > 0 && e.cfg.EvalBatch < e.test.Len() {
		rng := rand.New(rand.NewSource(mix(e.cfg.Seed, 0xE7A1, int64(t))))
		x, y := e.test.RandomBatch(rng, e.cfg.EvalBatch)
		return e.evalNet.Evaluate(x, y)
	}
	x, y := e.test.All()
	return e.evalNet.Evaluate(x, y)
}
