package hfl

import (
	"fmt"
	"math/rand"

	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/metrics"
	"github.com/mach-fl/mach/internal/parallel"
	"github.com/mach-fl/mach/internal/telemetry"
	"github.com/mach-fl/mach/internal/tensor"
)

// Result summarizes one training run.
type Result struct {
	// History holds the global-model evaluations.
	History *metrics.History
	// StepsRun is how many time steps executed (smaller than Config.Steps
	// when an accuracy target stopped the run early).
	StepsRun int
	// TotalSampled counts device participations over the whole run.
	TotalSampled int
	// SampledPerStep records how many devices trained at each step.
	SampledPerStep []int
	// ReachedTarget reports whether the early-stop accuracy target was hit,
	// and TargetStep the step at which it happened.
	ReachedTarget bool
	TargetStep    int
	// Comm tallies the communication volume of the run.
	Comm CommStats
}

// CommStats counts the model transfers of a run. The simulator fills it
// analytically, valued at 8 bytes per parameter (float64): device downlink
// counts one edge-model download per sampled device per step (Eq. 4's w^t_n
// distribution); device uplink one local-model upload per successful
// participation (Eq. 5); cloud volume one edge-model exchange per edge per
// cloud round, both directions (Eq. 6). The distributed stack
// (internal/fed) instead measures real wire bytes under net/rpc and sets
// Measured.
type CommStats struct {
	DeviceUplinkBytes   int64
	DeviceDownlinkBytes int64
	CloudBytes          int64
	// DeviceUploads/DeviceDownloads/CloudTransfers count the model-bearing
	// messages behind the byte totals.
	DeviceUploads   int64
	DeviceDownloads int64
	CloudTransfers  int64
	// Measured reports that the byte counts were read off real connections
	// rather than computed analytically.
	Measured bool
}

// Total returns the run's total transferred bytes.
func (c CommStats) Total() int64 {
	return c.DeviceUplinkBytes + c.DeviceDownlinkBytes + c.CloudBytes
}

// RunOption customizes a call to Run.
type RunOption func(*runOptions)

type runOptions struct {
	target float64
	hasTgt bool
	stepFn func(step, sampled int)
	evalFn func(step int, accuracy, loss float64)
}

// WithTarget stops the run at the first evaluation whose accuracy reaches
// target, the evaluation's time-to-accuracy protocol.
func WithTarget(target float64) RunOption {
	return func(o *runOptions) { o.target, o.hasTgt = target, true }
}

// WithStepHook invokes fn after every time step with the number of devices
// that trained.
func WithStepHook(fn func(step, sampled int)) RunOption {
	return func(o *runOptions) { o.stepFn = fn }
}

// WithEvalHook invokes fn after every global-model evaluation.
func WithEvalHook(fn func(step int, accuracy, loss float64)) RunOption {
	return func(o *runOptions) { o.evalFn = fn }
}

// localResult is one sampled device's contribution to edge aggregation.
type localResult struct {
	params []float64
	weight float64 // 1/(|M_n|·q) for unbiased strategies, 1 for biased
	size   int     // |D_m|: plain aggregation weights by dataset size
}

// plannedDevice is one sampled device's decision-phase outcome, later filled
// in with its execution-phase result.
type plannedDevice struct {
	m       int     // device id
	weight  float64 // 1/(|M_n|·q) for unbiased strategies, 1 for biased
	upload  bool    // false when the upload-failure coin dropped the result
	sqNorms []float64
	err     error
}

// edgePlan is one edge's decision-phase output for the current step.
type edgePlan struct {
	devs []plannedDevice
}

// Run executes Algorithm 1 and returns the training history.
//
// Every time step runs in three phases: a *decision* phase draws all of the
// step's randomness (strategy probabilities, sampling coins, upload-failure
// coins) from the per-edge RNG streams in member order — edges decide in
// parallel on the pool, which is safe because each edge's stream, context
// and plan are private to it and every draw within an edge stays serial; a
// parallel *execution* phase dispatches the sampled devices' local SGD to a
// bounded worker pool shared across edges; a sequential *finalize* phase
// observes experiences and aggregates uploads back in member order. Because
// no random decision depends on execution timing and every reduction is
// order-fixed, the result is bit-identical for every Config.Workers value.
func (e *Engine) Run(opts ...RunOption) (*Result, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	res := &Result{History: &metrics.History{}}

	e.pool = parallel.NewPool(e.cfg.workers())
	e.startActors()
	defer func() {
		e.stopActors()
		e.pool.Close()
		e.pool = nil
	}()
	if e.tel != nil {
		e.tel.SetShardCount(len(e.shards))
	}

	tr := e.tel.Trace()
	tr.Emit(&telemetry.Event{Type: telemetry.EventRun, Run: &telemetry.RunEvent{
		Strategy: e.strategy.Name(),
		Seed:     e.cfg.Seed,
		Devices:  e.nDevices,
		Edges:    e.nEdges,
		Steps:    e.cfg.Steps,
		Capacity: e.capacity,
		Every:    tr.Config().Every,
		MaxEdges: tr.Config().MaxEdges,
	}})
	lastAcc := 0.0
	emitDone := func() {
		tr.Emit(&telemetry.Event{Type: telemetry.EventDone, Step: res.StepsRun, Done: &telemetry.DoneEvent{
			StepsRun: res.StepsRun, TotalSampled: res.TotalSampled, FinalAccuracy: lastAcc,
		}})
	}

	modelBytes := int64(len(e.global)) * 8
	for t := 0; t < e.cfg.Steps; t++ {
		// Submit the step to every shard actor: each runs decide → execute →
		// finalize for its own edge range (decide and finalize serially, in
		// edge order, on its goroutine; device training on the shared pool)
		// and the barrier inside submitAll is the collect point. No RNG
		// stream, experience write or model reduction crosses a shard
		// boundary mid-step, so the cross-shard interleaving cannot reach a
		// value (DESIGN.md §11).
		stepStart := e.tel.Now()
		// stepSpan parents the step's phase spans. Deriving it is a pure hash
		// (no clock, no allocation), so it runs unconditionally and the span
		// machinery costs nothing until EnableSpans turns recording on.
		stepSpan := telemetry.DeriveSpanID(telemetry.SpanStep, t, -1, -1)
		// One mobility advance per step, on the engine goroutine: the shards
		// then repair their member indexes from the bucketed move stream
		// (read-only to them) inside the step command.
		if err := e.advanceMobility(t); err != nil {
			return nil, fmt.Errorf("hfl: step %d: %w", t, err)
		}
		e.submitAll(shardCmd{op: opStep, t: t})
		if err := e.collectStep(t); err != nil {
			return nil, err
		}

		// Serial accounting pass in edge order: communication and sampling
		// telemetry, plus the edge-ordered emission of decision events.
		var stepTel stepTelemetry
		stepSampled := 0
		for _, s := range e.shards {
			for n := s.lo; n < s.hi; n++ {
				counts := s.counts[n-s.lo]
				stepSampled += counts.uploaded
				res.Comm.DeviceDownlinkBytes += int64(counts.trained) * modelBytes
				res.Comm.DeviceUplinkBytes += int64(counts.uploaded) * modelBytes
				res.Comm.DeviceDownloads += int64(counts.trained)
				res.Comm.DeviceUploads += int64(counts.uploaded)
				if e.tel != nil {
					e.tel.Add(telemetry.CounterDevicesTrained, int64(counts.trained))
					e.tel.Add(telemetry.CounterDevicesUploaded, int64(counts.uploaded))
					e.tel.Add(telemetry.CounterUploadsDropped, int64(counts.trained-counts.uploaded))
					e.tel.Add(telemetry.CounterDeviceDownlinkBytes, int64(counts.trained)*modelBytes)
					e.tel.Add(telemetry.CounterDeviceUplinkBytes, int64(counts.uploaded)*modelBytes)
					e.observeEdge(t, n, counts, &stepTel)
				}
			}
		}
		if e.tel != nil {
			e.flushStepTelemetry(&stepTel)
		}
		res.SampledPerStep = append(res.SampledPerStep, stepSampled)
		res.TotalSampled += stepSampled
		res.StepsRun = t + 1
		if o.stepFn != nil {
			o.stepFn(t, stepSampled)
		}

		cloudRound := (t+1)%e.cfg.CloudInterval == 0
		if cloudRound {
			reduceSp := e.tel.StartSpan(telemetry.SpanCloudReduce, stepSpan, t, -1, -1)
			e.cloudAggregate(t)
			reduceSp.End()
			// Every edge uploads its model and downloads the new global.
			res.Comm.CloudBytes += 2 * int64(e.nEdges) * modelBytes
			res.Comm.CloudTransfers += 2 * int64(e.nEdges)
			if e.observer != nil {
				e.observer.CloudRound(t + 1)
			}
			if e.cfg.LRDecay < 1 {
				for _, d := range e.devices {
					d.opt.SetLearningRate(d.opt.LearningRate() * e.cfg.LRDecay)
				}
			}
			if e.tel != nil {
				e.tel.Add(telemetry.CounterCloudRounds, 1)
				e.tel.Add(telemetry.CounterCloudBytes, 2*int64(e.nEdges)*modelBytes)
				if e.inspector != nil {
					s := e.inspector.EstimatorStats()
					e.tel.SetGauge(telemetry.GaugeNeverPulled, float64(s.NeverPulled))
					e.tel.SetGauge(telemetry.GaugeMaxPulls, float64(s.MaxPulls))
					tr.Emit(&telemetry.Event{Type: telemetry.EventEstimator, Step: t + 1, Estimator: &telemetry.EstimatorEvent{
						Devices: s.Devices, NeverPulled: s.NeverPulled, TotalPulls: s.TotalPulls, MaxPulls: s.MaxPulls,
					}})
				}
			}
		}
		evalDue := cloudRound
		if e.cfg.EvalEvery > 0 {
			evalDue = (t+1)%e.cfg.EvalEvery == 0
		}
		if evalDue || t == e.cfg.Steps-1 {
			evalStart := e.tel.Now()
			acc, loss, err := e.evaluate(t)
			if err != nil {
				return nil, fmt.Errorf("hfl: step %d: %w", t, err)
			}
			e.observePhase(t, telemetry.HistEvalNS, "eval", telemetry.SpanEval, evalStart)
			lastAcc = acc
			if e.tel != nil {
				e.tel.Add(telemetry.CounterEvals, 1)
				e.tel.SetGauge(telemetry.GaugeAccuracy, acc)
				e.tel.SetGauge(telemetry.GaugeLoss, loss)
				tr.Emit(&telemetry.Event{Type: telemetry.EventEval, Step: t + 1, Eval: &telemetry.EvalEvent{Accuracy: acc, Loss: loss}})
			}
			res.History.Add(metrics.Point{Step: t + 1, Accuracy: acc, Loss: loss})
			if o.evalFn != nil {
				o.evalFn(t+1, acc, loss)
			}
			if o.hasTgt && acc >= o.target {
				res.ReachedTarget = true
				res.TargetStep = t + 1
				emitDone()
				return res, nil
			}
		}
		e.tel.Add(telemetry.CounterSteps, 1)
		stepEnd := e.tel.Now()
		e.tel.Observe(telemetry.HistStepNS, stepEnd-stepStart)
		e.tel.RecordSpan(telemetry.SpanStep, 0, t, -1, -1, stepStart, stepEnd)
	}
	emitDone()
	return res, nil
}

// observePhase records one phase's duration in its histogram, as a span of
// the given kind under the step span, and — when the trace records this
// step — as a phase event. With no telemetry attached it does nothing (and,
// via the nil clock, reads no time at all).
func (e *Engine) observePhase(t int, h telemetry.Hist, name string, kind telemetry.SpanKind, start int64) {
	if e.tel == nil {
		return
	}
	end := e.tel.Now()
	ns := end - start
	e.tel.Observe(h, ns)
	e.tel.RecordSpan(kind, telemetry.DeriveSpanID(telemetry.SpanStep, t, -1, -1), t, -1, -1, start, end)
	if tr := e.tel.Trace(); tr.StepActive(t) {
		tr.Emit(&telemetry.Event{Type: telemetry.EventPhase, Step: t, Phase: &telemetry.PhaseEvent{Name: name, NS: ns}})
	}
}

// stepTelemetry accumulates one step's cross-edge sampling observations,
// folded serially during the finalize loop and flushed once per step.
type stepTelemetry struct {
	ucbMin, ucbMax, ucbSum float64
	ucbCount               int
	probMass               float64
	floorClamps            int64
	ceilClamps             int64
}

// observeEdge folds one edge's decision into the step accumulator and, when
// the trace records this decision, emits the complete decision event. It
// runs on the sequential finalize path in edge order, which is what makes
// trace output deterministic; the decide-phase buffers it reads (probs,
// scratch estimates, coins) stay valid until the edge's next decide.
func (e *Engine) observeEdge(t, n int, counts edgeStepCounts, acc *stepTelemetry) {
	members := e.edgeMembers(n)
	e.tel.Observe(telemetry.HistEdgeMembers, int64(len(members)))
	e.tel.Observe(telemetry.HistEdgeSampled, int64(counts.trained))
	if len(members) == 0 {
		return // edgeDecide returned early; decide-state buffers are stale
	}
	st := &e.decide[n]
	if len(st.probs) < len(members) {
		return
	}
	probs := st.probs[:len(members)]
	for _, q := range probs {
		acc.probMass += q
		if e.hasProbFloor && q <= e.probFloor {
			acc.floorClamps++
		}
		if q >= 1 {
			acc.ceilClamps++
		}
	}
	estimates := st.ctx.Scratch
	if !e.estInScratch || len(estimates) < len(members) {
		estimates = nil
	} else {
		estimates = estimates[:len(members)]
	}
	for _, g := range estimates {
		if acc.ucbCount == 0 || g < acc.ucbMin {
			acc.ucbMin = g
		}
		if acc.ucbCount == 0 || g > acc.ucbMax {
			acc.ucbMax = g
		}
		acc.ucbSum += g
		acc.ucbCount++
	}
	tr := e.tel.Trace()
	if !tr.DecisionActive(t, n) {
		return
	}
	// Emit encodes synchronously, so handing it the engine's live buffers is
	// safe: they are not touched again until the next decide phase.
	tr.Emit(&telemetry.Event{Type: telemetry.EventDecision, Step: t, Decision: &telemetry.DecisionEvent{
		Edge:      n,
		Members:   members,
		Estimates: estimates,
		Probs:     probs,
		Coins:     st.coins,
		Sampled:   st.sampledIDs,
		Dropped:   st.droppedIDs,
	}})
}

// flushStepTelemetry publishes the step accumulator's gauges and counters.
func (e *Engine) flushStepTelemetry(acc *stepTelemetry) {
	e.tel.Add(telemetry.CounterProbFloorClamps, acc.floorClamps)
	e.tel.Add(telemetry.CounterProbCeilClamps, acc.ceilClamps)
	e.tel.SetGauge(telemetry.GaugeProbMass, acc.probMass)
	if acc.ucbCount > 0 {
		e.tel.SetGauge(telemetry.GaugeUCBMin, acc.ucbMin)
		e.tel.SetGauge(telemetry.GaugeUCBMean, acc.ucbSum/float64(acc.ucbCount))
		e.tel.SetGauge(telemetry.GaugeUCBMax, acc.ucbMax)
	}
}

// edgeStepCounts reports one edge's activity in one step: how many devices
// trained (downloaded the edge model and ran local SGD) and how many of
// those successfully uploaded.
type edgeStepCounts struct {
	trained  int
	uploaded int
}

// edgeDecide performs the sampling decisions for one edge at one time step
// (Algorithm 1, lines 3-5) and records them in e.plans[n]. It draws from the
// edge's deterministic RNG stream in member order: strategy probabilities
// first, then per member one sampling coin and — for sampled devices under a
// positive failure probability — one upload-failure coin. Local updates never
// touch this stream, so pulling the failure coin forward from the serial
// post-training position leaves every draw at the same stream offset.
//
// All per-step machinery is pooled in e.decide[n]: the RNG is reseeded to
// the same mix(seed, t, n) stream a fresh rand.New would start (Seed resets
// the source to exactly the NewSource state), the context and its closures
// are built once per edge, and probabilities land in a reused buffer when
// the strategy implements the in-place fast path. Distinct edges may decide
// concurrently; everything mutated here is private to edge n.
//
//machlint:allocfree
func (e *Engine) edgeDecide(t, n int) error {
	plan := &e.plans[n]
	plan.devs = plan.devs[:0]
	members := e.edgeMembers(n)
	if len(members) == 0 {
		return nil
	}
	st := &e.decide[n]
	seed := mix(e.cfg.Seed, int64(t)+1, int64(n)+101)
	if st.rng == nil {
		st.rng = rand.New(rand.NewSource(seed))
		st.ctx.Edge = n
		st.ctx.Capacity = e.capacity
		st.ctx.RNG = st.rng
		st.ctx.ClassDist = func(m int) []float64 {
			return e.devices[m].dist
		}
		st.ctx.ProbeGradNorm = func(m int) float64 {
			return e.probeGradNorm(st.ctx.Step, n, m)
		}
	} else {
		st.rng.Seed(seed)
	}
	st.ctx.Step = t
	st.ctx.Members = members
	var probs []float64
	if e.inplace != nil {
		st.probs = e.inplace.ProbabilitiesInto(&st.ctx, st.probs)
		probs = st.probs
	} else {
		probs = e.strategy.Probabilities(&st.ctx)
		st.probs = probs // finalize-phase telemetry reads the step's vector
	}
	if len(probs) != len(members) {
		return fmt.Errorf("strategy %q returned %d probabilities for %d members", e.strategy.Name(), len(probs), len(members))
	}
	// DecisionActive is a pure function of (step, edge), so this agrees with
	// the finalize phase's emission gate without any shared state.
	tracing := e.tel.Trace().DecisionActive(t, n)
	if tracing {
		st.coins = st.coins[:0]
		st.sampledIDs = st.sampledIDs[:0]
		st.droppedIDs = st.droppedIDs[:0]
	}
	unbiased := e.strategy.Unbiased()
	for i, m := range members {
		q := probs[i]
		coin := st.rng.Float64()
		if tracing {
			st.coins = append(st.coins, coin)
		}
		if coin >= q {
			continue // not sampled: 1^t_{m,n} = 0
		}
		if unbiased && q <= 0 {
			return fmt.Errorf("strategy %q sampled device %d with probability %v", e.strategy.Name(), m, q)
		}
		upload := true
		if e.cfg.UploadFailureProb > 0 && st.rng.Float64() < e.cfg.UploadFailureProb {
			upload = false // device moved away before uploading (see Config)
		}
		if tracing {
			st.sampledIDs = append(st.sampledIDs, m)
			if !upload {
				st.droppedIDs = append(st.droppedIDs, m)
			}
		}
		weight := 1.0
		if unbiased {
			weight = 1 / (float64(len(members)) * q) // Eq. (5)
		}
		plan.devs = append(plan.devs, plannedDevice{m: m, weight: weight, upload: upload})
	}
	return nil
}

// edgeFinalize walks one edge's executed plan in member order: it surfaces
// local-update errors, buffers training experience into the owning shard
// (merged into the strategy's observer at the step's collect point, in edge
// order), collects the surviving uploads and merges them into the edge model
// (Algorithm 1, lines 6-11). The buffered sqNorms slices are the devices'
// reusable windows, valid until each device's next training step — which is
// after the merge.
func (e *Engine) edgeFinalize(t, n int, s *shardState) (edgeStepCounts, error) {
	var counts edgeStepCounts
	plan := &e.plans[n]
	results := s.aggResults[:0]
	for i := range plan.devs {
		pd := &plan.devs[i]
		if pd.err != nil {
			return counts, fmt.Errorf("device %d: %w", pd.m, pd.err)
		}
		counts.trained++
		if e.observer != nil {
			s.obsEdges = append(s.obsEdges, n)
			s.obsDevs = append(s.obsDevs, pd.m)
			s.obsNorms = append(s.obsNorms, pd.sqNorms)
		}
		if !pd.upload {
			continue
		}
		dev := e.devices[pd.m]
		if e.cfg.Lane != LaneF32 {
			dev.upload = dev.model.ParamVectorInto(dev.upload)
		}
		// LaneF32: the execution phase already staged the float64 master
		// weights in dev.upload (see lane.go); dev.model was never trained.
		results = append(results, localResult{params: dev.upload, weight: pd.weight, size: dev.data.Len()})
	}
	e.aggregateEdge(n, results, e.strategy.Unbiased())
	counts.uploaded = len(results)
	s.aggResults = results[:0] // keep the grown capacity for the shard's next edge
	return counts, nil
}

// localUpdate runs I local SGD steps from the edge model (Eq. 4) and returns
// the squared norms of the I stochastic gradients. The returned slice is the
// device's reusable window buffer: observers copy what they keep, and the
// next step overwrites it. With Config.Lane == LaneF32 the same steps run on
// the device's float32 lane (see lane.go).
func (e *Engine) localUpdate(dev *device, edgeParams []float64) ([]float64, error) {
	if e.cfg.Lane == LaneF32 {
		return e.localUpdate32(dev, edgeParams)
	}
	if err := dev.model.SetParamVector(edgeParams); err != nil {
		return nil, err
	}
	e.ensureDeviceBatch(dev)
	for tau := 0; tau < e.cfg.LocalEpochs; tau++ {
		dev.data.RandomBatchInto(dev.rng, dev.batchX, dev.batchY, dev.batchIdx)
		_, gn := dev.model.TrainStep(dev.batchX, dev.batchY, dev.opt)
		dev.sqNorms[tau] = gn
	}
	return dev.sqNorms, nil
}

// aggregateEdge merges sampled local models into the edge model. For
// unbiased strategies the inverse-probability weights of Eq. (5) are applied
// to the model updates (or, with AggLiteralEq5, to the models themselves); for
// biased active-selection strategies a plain average over participants is
// used. The edge keeps a double buffer: the outgoing model becomes the next
// aggregation's scratch, so steady-state aggregation does not allocate.
//
//machlint:allocfree
func (e *Engine) aggregateEdge(n int, results []localResult, unbiased bool) {
	if len(results) == 0 {
		return // no participants: edge model carries over
	}
	cur := e.edge[n]
	next := e.aggNext[n]
	if len(next) != len(cur) {
		next = make([]float64, len(cur))
	}
	mode := e.cfg.aggregation()
	if !unbiased {
		mode = AggPlain // active selection always plain-averages
	}
	switch mode {
	case AggPlain:
		// FedAvg over participants, weighted by local dataset size |D_m|
		// (equal sizes reduce to a plain mean, the paper's simplification).
		total := 0
		for _, r := range results {
			total += r.size
		}
		for j := range next {
			next[j] = 0
		}
		for _, r := range results {
			// total == 0 can only mean every participant reported an empty
			// dataset; fall back to a plain mean instead of dividing by 0.
			w := 1.0 / float64(len(results))
			if total > 0 {
				w = float64(r.size) / float64(total)
			}
			for j, v := range r.params {
				next[j] += w * v
			}
		}
	case AggLiteralEq5:
		for j := range next {
			next[j] = 0
		}
		for _, r := range results {
			for j, v := range r.params {
				next[j] += r.weight * v
			}
		}
	default: // AggInverseUpdate: w_n ← w_n + Σ weight·(w_m − w_n)
		copy(next, cur)
		for _, r := range results {
			for j, v := range r.params {
				next[j] += r.weight * (v - cur[j])
			}
		}
	}
	e.edge[n], e.aggNext[n] = next, cur
}

// cloudAggregate merges edge models into the global model with the
// member-count weights of Eq. (6) as a two-tier reduce — every shard folds
// its cloud-reduce groups' partial sums in edge order, then the engine folds
// the group partials in group order — and redistributes the result to every
// edge. The grouping is a pure function of the edge count (cloudGroups),
// never of the shard count, so the summation order — and therefore every
// bit of the global model — is identical for every Config.Shards value.
// Like edge aggregation it double-buffers the global vector, so cloud
// rounds stop allocating after the first.
func (e *Engine) cloudAggregate(t int) {
	// Within Run the mobility window and every shard index are already
	// positioned at t (the step protocol advanced them), so this degenerates
	// to no-ops; direct callers (tests) get the same counts on demand.
	e.positionMobility(t)
	total := 0
	for _, s := range e.shards {
		for n := s.lo; n < s.hi; n++ {
			e.cloudCounts[n] = s.index.Count(n)
			total += e.cloudCounts[n]
		}
	}
	for g := 0; g < e.groups; g++ {
		sum := 0
		for n := groupEdgeLo(e.nEdges, e.groups, g); n < groupEdgeLo(e.nEdges, e.groups, g+1); n++ {
			sum += e.cloudCounts[n]
		}
		e.groupCounts[g] = sum
	}
	if e.actorsUp {
		e.submitAll(shardCmd{op: opCloudPartial, total: float64(total)})
		e.surfaceShardPanics()
	} else {
		for _, s := range e.shards {
			s.cloudPartials(float64(total))
		}
	}
	next := e.cloudNext
	if len(next) != len(e.global) {
		next = make([]float64, len(e.global))
	} else {
		for j := range next {
			next[j] = 0
		}
	}
	for _, s := range e.shards {
		for g := s.gLo; g < s.gHi; g++ {
			// A group whose edges all have zero members contributed exactly
			// zero weight; skipping it mirrors the per-edge zero-weight skip
			// inside the shard fold.
			if e.groupCounts[g] == 0 {
				continue
			}
			for j, v := range s.partials[g-s.gLo] {
				next[j] += v
			}
		}
	}
	e.global, e.cloudNext = next, e.global
	if e.actorsUp {
		e.submitAll(shardCmd{op: opInstallGlobal})
		e.surfaceShardPanics()
	} else {
		for _, s := range e.shards {
			s.installGlobal()
		}
	}
}

// probeGradNorm measures the true squared stochastic-gradient norm of device
// m under edge n's current model, without updating any state (used by
// MACH-P). The shared probe network is mutex-guarded because edges decide in
// parallel; the value is deterministic regardless of interleaving — the
// probed model, batch and optimizer depend only on (seed, t, n, m), and a
// device is attached to exactly one edge per step.
func (e *Engine) probeGradNorm(t, n, m int) float64 {
	e.tel.Add(telemetry.CounterProbes, 1)
	e.probeMu.Lock()
	defer e.probeMu.Unlock()
	if err := e.probeNet.SetParamVector(e.edge[n]); err != nil {
		// The strategy callback has no error channel, and a length mismatch
		// here means the engine's networks are wired wrong — fail loudly
		// instead of silently scoring the device as zero.
		panic(fmt.Sprintf("hfl: probe gradient of device %d (step %d, edge %d): %v", m, t, n, err))
	}
	rng := rand.New(rand.NewSource(mix(e.cfg.Seed, int64(t)+7, int64(m)+301)))
	x, y := e.devices[m].data.RandomBatch(rng, e.cfg.BatchSize)
	_, gn := e.probeNet.TrainStep(x, y, e.probeOpt)
	return gn
}

// EvaluateConfusion classifies the full test set with the current global
// model and returns the confusion matrix, exposing the per-class (macro)
// view of the evaluation.
func (e *Engine) EvaluateConfusion() (*metrics.Confusion, error) {
	n := e.test.Len()
	idx := make([]int, n)
	preds := make([]int, n)
	labels := make([]int, n)
	for i := range idx {
		idx[i] = i
		labels[i] = e.test.Label(i)
	}
	if _, _, err := e.evalSums(idx, preds); err != nil {
		return nil, fmt.Errorf("hfl: evaluate confusion: %w", err)
	}
	return metrics.NewConfusion(e.test.Classes, preds, labels)
}

// evaluate computes the global model's accuracy and loss on the test set
// (optionally a deterministic subsample of EvalBatch samples).
func (e *Engine) evaluate(t int) (acc, loss float64, err error) {
	if e.cfg.EvalBatch > 0 && e.cfg.EvalBatch < e.test.Len() {
		rng := rand.New(rand.NewSource(mix(e.cfg.Seed, 0xE7A1, int64(t))))
		e.evalIdx = resizeInts(e.evalIdx, e.cfg.EvalBatch)
		for i := range e.evalIdx {
			e.evalIdx[i] = rng.Intn(e.test.Len())
		}
	} else {
		e.evalIdx = resizeInts(e.evalIdx, e.test.Len())
		for i := range e.evalIdx {
			e.evalIdx[i] = i
		}
	}
	correct, lossSum, err := e.evalSums(e.evalIdx, nil)
	if err != nil {
		return 0, 0, err
	}
	total := float64(len(e.evalIdx))
	return float64(correct) / total, lossSum * (1 / total), nil
}

// evalSums loads the global model into per-shard evaluation networks and
// scores the test samples at the given indices. The index list splits into
// cfg.evalShards() contiguous shards — a fixed count independent of the core
// count — whose (correct, lossSum) pairs are reduced in shard order, so the
// result is the same on every machine and for every worker count. Sharding
// also bounds the per-forward im2col footprint to a shard's batch instead of
// the whole test set. When preds is non-nil the shards instead record each
// sample's predicted class at its position in the index list (losses are
// skipped).
func (e *Engine) evalSums(indices []int, preds []int) (correct int, lossSum float64, err error) {
	shards := e.cfg.evalShards()
	if shards > len(indices) {
		shards = len(indices)
	}
	for len(e.evalShard) < shards {
		e.evalShard = append(e.evalShard, evalShardState{net: e.evalNet.Clone()})
	}
	for s := 0; s < shards; s++ {
		if err := e.evalShard[s].net.SetParamVector(e.global); err != nil {
			return 0, 0, fmt.Errorf("load global model into evaluation shard %d: %w", s, err)
		}
	}
	type sums struct {
		correct int
		lossSum float64
	}
	out := make([]sums, shards)
	runShard := func(s int) {
		start, end := len(indices)*s/shards, len(indices)*(s+1)/shards
		st := &e.evalShard[s]
		st.x = ensureBatch(st.x, end-start, e.test)
		st.y = resizeInts(st.y, end-start)
		e.test.BatchInto(st.x, st.y, indices[start:end])
		if preds == nil {
			out[s].correct, out[s].lossSum = st.net.EvaluateSums(st.x, st.y)
			return
		}
		logits := st.net.Forward(st.x, false)
		classes := logits.Dim(1)
		ld := logits.Data()
		for i := 0; i < end-start; i++ {
			row := ld[i*classes : (i+1)*classes]
			best := 0
			for j, v := range row {
				if v > row[best] {
					best = j
				}
			}
			preds[start+i] = best
		}
	}
	if e.pool != nil {
		g := e.pool.Group()
		for s := 0; s < shards; s++ {
			g.Go(func() { runShard(s) })
		}
		g.Wait()
	} else {
		parallel.ForEach(e.cfg.workers(), shards, runShard)
	}
	for _, o := range out {
		correct += o.correct
		lossSum += o.lossSum
	}
	return correct, lossSum, nil
}

// ensureBatch returns a [b, InC, InH, InW] batch tensor for dataset d,
// reusing t when its batch dimension already matches.
func ensureBatch(t *tensor.Tensor, b int, d *dataset.Dataset) *tensor.Tensor {
	if t != nil && t.Dim(0) == b {
		return t
	}
	return tensor.New(b, d.InC, d.InH, d.InW)
}

// resizeInts returns s resized to n elements, reallocating only when the
// capacity is insufficient. Contents are unspecified; callers overwrite.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
