package hfl

import (
	"math"
	"testing"

	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/sampling"
)

// runLane runs the standard parallel-test experiment (12 devices, 3 edges,
// 12 steps, MACH sampling) under the given compute lane / fusion / worker
// knobs and returns the result and final global parameters.
func runLane(t *testing.T, lane Lane, fuse bool, workers int) (*Result, []float64) {
	t.Helper()
	parts, test, sched := tinySetup(t, 12, 3, 12, 21)
	cfg := tinyConfig(12, 21)
	cfg.Workers = workers
	cfg.UploadFailureProb = 0.2
	cfg.EvalBatch = 100
	cfg.Lane = lane
	cfg.FuseBatch = fuse
	strat, err := sampling.NewMACH(12, sampling.DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, tinyArch, parts, test, sched, strat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.GlobalParams()
}

// mustSameRun asserts two runs are indistinguishable: identical sampling
// decisions, bitwise-identical history and final global parameters.
func mustSameRun(t *testing.T, label string, refRes *Result, refParams []float64, res *Result, params []float64) {
	t.Helper()
	if len(res.SampledPerStep) != len(refRes.SampledPerStep) {
		t.Fatalf("%s: %d steps vs %d", label, len(res.SampledPerStep), len(refRes.SampledPerStep))
	}
	for i, v := range refRes.SampledPerStep {
		if res.SampledPerStep[i] != v {
			t.Fatalf("%s: SampledPerStep[%d] = %d, want %d", label, i, res.SampledPerStep[i], v)
		}
	}
	if res.TotalSampled != refRes.TotalSampled || res.Comm != refRes.Comm {
		t.Fatalf("%s: totals diverged: %+v vs %+v", label, res, refRes)
	}
	refPts, pts := refRes.History.Points, res.History.Points
	if len(pts) != len(refPts) {
		t.Fatalf("%s: %d history points vs %d", label, len(pts), len(refPts))
	}
	for i := range refPts {
		if pts[i] != refPts[i] {
			t.Fatalf("%s: history[%d] = %+v, want %+v", label, i, pts[i], refPts[i])
		}
	}
	if len(params) != len(refParams) {
		t.Fatalf("%s: %d params vs %d", label, len(params), len(refParams))
	}
	for j, v := range refParams {
		if math.Float64bits(params[j]) != math.Float64bits(v) {
			t.Fatalf("%s: global param %d = %v, want %v", label, j, params[j], v)
		}
	}
}

// TestRunF32BitIdenticalAcrossWorkerCounts extends the engine's determinism
// contract to the float32 lane: the f32 lane is NOT required to match the
// f64 lane bitwise (it rounds differently by design), but it must be
// bit-identical to itself at every worker count, fused or not.
func TestRunF32BitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, fuse := range []bool{false, true} {
		name := "unfused"
		if fuse {
			name = "fused"
		}
		t.Run(name, func(t *testing.T) {
			refRes, refParams := runLane(t, LaneF32, fuse, 1)
			for _, workers := range []int{3, 8} {
				res, params := runLane(t, LaneF32, fuse, workers)
				mustSameRun(t, name, refRes, refParams, res, params)
			}
		})
	}
}

// TestRunFusedMatchesUnfused is the fusion half of the determinism contract:
// for each lane, enabling Config.FuseBatch changes scheduling (one execution
// task per edge instead of per device) and memory layout, but every device
// still performs the same arithmetic on the same minibatch draws — so the
// fused run must be bit-identical to the unfused run, including the MACH
// sampling decisions fed back from gradient norms.
func TestRunFusedMatchesUnfused(t *testing.T) {
	for _, lane := range []Lane{LaneF64, LaneF32} {
		t.Run(lane.String(), func(t *testing.T) {
			refRes, refParams := runLane(t, lane, false, 4)
			res, params := runLane(t, lane, true, 4)
			mustSameRun(t, lane.String()+"/fused", refRes, refParams, res, params)
		})
	}
}

// TestRunFusedSingleDeviceEqualsUnfused is the degenerate-fusion property:
// with one device on one edge, the fused path has nothing to fuse and must
// reduce exactly to the unfused path in both lanes.
func TestRunFusedSingleDeviceEqualsUnfused(t *testing.T) {
	setup := func(t *testing.T) ([]*dataset.Dataset, *dataset.Dataset, *mobility.Schedule) {
		t.Helper()
		return tinySetup(t, 1, 1, 10, 33)
	}
	for _, lane := range []Lane{LaneF64, LaneF32} {
		t.Run(lane.String(), func(t *testing.T) {
			var refRes *Result
			var refParams []float64
			for _, fuse := range []bool{false, true} {
				parts, test, sched := setup(t)
				cfg := tinyConfig(10, 33)
				cfg.Participation = 1
				cfg.Lane = lane
				cfg.FuseBatch = fuse
				eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !fuse {
					refRes, refParams = res, eng.GlobalParams()
					continue
				}
				mustSameRun(t, lane.String()+"/single", refRes, refParams, res, eng.GlobalParams())
			}
		})
	}
}

// TestRunF32TracksF64 bounds the float32 lane's drift from the float64
// reference. Uniform sampling keeps the device selections identical across
// lanes (MACH feeds gradient norms back into decisions, which would let a
// one-ulp difference flip a sample), so the remaining divergence is pure
// float32 rounding in forward/backward. The float64 master weights must stay
// close elementwise and the final accuracy must agree within tolerance.
// scripts/check.sh runs this test as the f32-lane + fusion smoke.
func TestRunF32TracksF64(t *testing.T) {
	run := func(lane Lane, fuse bool) (*Result, []float64) {
		parts, test, sched := tinySetup(t, 12, 3, 12, 21)
		cfg := tinyConfig(12, 21)
		cfg.Lane = lane
		cfg.FuseBatch = fuse
		eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, eng.GlobalParams()
	}
	refRes, refParams := run(LaneF64, false)
	refAcc := refRes.History.Points[len(refRes.History.Points)-1].Accuracy
	for _, fuse := range []bool{false, true} {
		res, params := run(LaneF32, fuse)
		acc := res.History.Points[len(res.History.Points)-1].Accuracy
		if d := math.Abs(acc - refAcc); d > 0.05 {
			t.Fatalf("fuse=%v: f32 final accuracy %.4f drifted %.4f from f64 %.4f", fuse, acc, d, refAcc)
		}
		for j, v := range refParams {
			if d := math.Abs(params[j] - v); d > 1e-2*math.Max(1, math.Abs(v)) {
				t.Fatalf("fuse=%v: param %d = %v, f64 %v (diff %v)", fuse, j, params[j], v, d)
			}
		}
	}
}
