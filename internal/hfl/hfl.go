// Package hfl implements the paper's hierarchical federated learning system
// (Algorithm 1) over mobile devices: Bernoulli device sampling under edge
// channel capacities (Eq. 3), local SGD updating (Eq. 4), unbiased
// inverse-probability edge aggregation (Eq. 5), and periodic edge-to-cloud
// aggregation (Eq. 6). Device mobility enters through a mobility.Schedule —
// the realized indicator B^t_{n,m} — so every edge trains on a different,
// time-varying device set.
//
// Each time step splits into a decision phase — strategy probabilities and
// every Bernoulli coin drawn from per-edge RNG streams in member order, with
// independent edges deciding in parallel — and a parallel execution phase
// that dispatches the sampled devices' local SGD to a bounded worker pool
// shared across edges. Aggregation then reduces uploads back in member
// order, so runs are bit-identical for every worker count (see DESIGN.md,
// "Concurrency & determinism model" and "Scale model").
package hfl

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/parallel"
	"github.com/mach-fl/mach/internal/sampling"
	"github.com/mach-fl/mach/internal/telemetry"
	"github.com/mach-fl/mach/internal/tensor"
)

// ArchFunc constructs the model architecture. Every device, every edge and
// the cloud instantiate structurally identical networks from it; parameters
// flow between them as flat vectors.
type ArchFunc func(rng *rand.Rand) (*nn.Network, error)

// Config parameterizes one HFL training run.
type Config struct {
	// Steps is T, the number of FL time steps.
	Steps int
	// CloudInterval is T_g, the number of time steps between edge-to-cloud
	// communications.
	CloudInterval int
	// LocalEpochs is I, the number of local SGD steps per sampled device
	// per time step (Eq. 4).
	LocalEpochs int
	// BatchSize is the local minibatch size |ξ|.
	BatchSize int
	// LearningRate is the device learning rate γ.
	LearningRate float64
	// LRDecay multiplies the learning rate after every cloud round
	// (1 = constant, the paper reports only an initial rate).
	LRDecay float64
	// Participation is the expected fraction of all devices training per
	// step; the per-edge capacity is K_n = Participation·|M|/|N| (the
	// paper's "average of all edge channel capacity", §IV-A2).
	Participation float64
	// EvalEvery evaluates the global model every EvalEvery steps
	// (0 = every cloud round).
	EvalEvery int
	// EvalBatch caps how many test samples are used per evaluation
	// (0 = all).
	EvalBatch int
	// Seed drives every random choice of the run.
	Seed int64
	// Aggregation selects the edge aggregation rule applied to unbiased
	// strategies (active-selection strategies like class-balance always
	// use AggPlain). See the Aggregation constants.
	Aggregation Aggregation
	// UploadFailureProb drops a sampled device's model after local
	// training with this probability, modelling the mobility-induced
	// disconnections of Feng et al. (the paper's reliability reference
	// [42]): a device that moves away mid-step cannot upload to the edge
	// that sampled it. Training experience is still recorded on the device
	// (it trained); only the upload is lost. 0 disables failures.
	UploadFailureProb float64
	// Workers bounds the worker pool that executes per-device local
	// updates and evaluation shards (0 = runtime.GOMAXPROCS). All random
	// decisions are made before work is dispatched and results are reduced
	// in member order, so results are bit-identical for every value.
	Workers int
	// EvalShards splits test-set evaluation into this fixed number of
	// shards (0 = 8). The shard count — not the core count — determines
	// how losses are grouped in the reduction, so evaluation results do
	// not depend on the machine; sharding also bounds the peak im2col
	// footprint, which previously scaled with the whole test set.
	EvalShards int
	// Lane selects the numeric compute lane for local training (DESIGN.md
	// §10). LaneF64 (the default) is the reference engine, bit-identical
	// to the seed at every worker count. LaneF32 runs forward/backward in
	// float32 with float64 master weights and float64 accumulation at
	// every aggregation boundary (optimizer update, loss, gradient norms,
	// edge/cloud averaging, evaluation); it is bit-identical to itself
	// across worker counts and tracks the f64 trajectory within float32
	// tolerance. Probing, evaluation and aggregation always run f64.
	Lane Lane
	// FuseBatch fuses the local updates of an edge's sampled devices into
	// one per-edge lockstep pass (cross-device batch fusion, DESIGN.md
	// §10): the devices march through the shared architecture layer by
	// layer with pooled per-edge buffers instead of each walking it alone.
	// Per-device update semantics, RNG streams and gradients are
	// unchanged — fused results are bit-identical to unfused within the
	// same lane. Default off.
	FuseBatch bool
	// Shards partitions the control plane into this many in-process shard
	// actors (0 = 1), each owning a contiguous range of edges plus that
	// range's member index, experience-observation buffering and
	// aggregation scratch (DESIGN.md §11). Shards run decide → execute →
	// finalize for their edges concurrently; results are bit-identical for
	// every value, because the cloud reduce folds over a fixed edge
	// grouping independent of the shard count and every cross-shard merge
	// happens in edge order at a deterministic barrier. Values above the
	// reduce-group count (min(edges, 64)) are clamped.
	Shards int
}

// Lane selects the numeric compute lane for local training.
type Lane int

// Compute lanes.
const (
	// LaneF64 is the float64 reference lane (default).
	LaneF64 Lane = iota
	// LaneF32 is the float32 compute lane with float64 accumulation
	// boundaries.
	LaneF32
)

// String implements fmt.Stringer.
func (l Lane) String() string {
	switch l {
	case LaneF64:
		return "f64"
	case LaneF32:
		return "f32"
	default:
		return fmt.Sprintf("lane(%d)", int(l))
	}
}

// ParseLane parses the -lane flag values "f64" and "f32".
func ParseLane(s string) (Lane, error) {
	switch s {
	case "f64", "":
		return LaneF64, nil
	case "f32":
		return LaneF32, nil
	default:
		return LaneF64, fmt.Errorf("hfl: unknown lane %q (want f64 or f32)", s)
	}
}

// Aggregation selects how sampled local models merge into the edge model.
type Aggregation int

// Edge aggregation modes.
const (
	// AggInverseUpdate applies the inverse-probability weights of Eq. (5)
	// to the model *updates*: w_n ← w_n + Σ 1/(|M|q)·(w_m − w_n). It has
	// the same expectation as Eq. (5) (Lemma 1) without the multiplicative
	// norm noise of the literal model-space form, and keeps the gradient
	// estimate exactly unbiased. This is the theory-faithful mode.
	AggInverseUpdate Aggregation = iota + 1
	// AggPlain averages the sampled local models with equal weights, the
	// standard FedAvg-over-participants rule used by practical FL systems
	// (Oort, Fed-CBS, the biased-selection analysis of Cho et al.). Under
	// a tilted sampling strategy the expected update is biased toward
	// high-probability devices, which is precisely the boosting effect
	// that makes loss/norm-guided selection fast in practice. The
	// benchmark presets use this mode; DESIGN.md §1 records the choice.
	AggPlain
	// AggLiteralEq5 is the paper's Eq. (5) verbatim in model space:
	// w_n ← Σ 1/(|M|q)·w_m. When the realized Σ 1/(|M|q) deviates from 1
	// the whole edge model is rescaled — the instability §III-B2 warns
	// about. Exposed for the aggregation ablation bench.
	AggLiteralEq5
)

// String implements fmt.Stringer.
func (a Aggregation) String() string {
	switch a {
	case AggInverseUpdate:
		return "inverse-update"
	case AggPlain:
		return "plain"
	case AggLiteralEq5:
		return "literal-eq5"
	default:
		return fmt.Sprintf("aggregation(%d)", int(a))
	}
}

// DefaultConfig mirrors the paper's MNIST/FMNIST setup at simulator scale.
func DefaultConfig() Config {
	return Config{
		Steps:         100,
		CloudInterval: 5,
		LocalEpochs:   10,
		BatchSize:     8,
		LearningRate:  0.01,
		LRDecay:       1,
		Participation: 0.5,
		Seed:          1,
		Aggregation:   AggInverseUpdate,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Steps <= 0:
		return fmt.Errorf("hfl: steps %d must be positive", c.Steps)
	case c.CloudInterval <= 0:
		return fmt.Errorf("hfl: cloud interval %d must be positive", c.CloudInterval)
	case c.LocalEpochs <= 0:
		return fmt.Errorf("hfl: local epochs %d must be positive", c.LocalEpochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("hfl: batch size %d must be positive", c.BatchSize)
	case c.LearningRate <= 0:
		return fmt.Errorf("hfl: learning rate %v must be positive", c.LearningRate)
	case c.LRDecay <= 0 || c.LRDecay > 1:
		return fmt.Errorf("hfl: lr decay %v outside (0,1]", c.LRDecay)
	case c.Participation <= 0 || c.Participation > 1:
		return fmt.Errorf("hfl: participation %v outside (0,1]", c.Participation)
	case c.EvalEvery < 0:
		return fmt.Errorf("hfl: eval interval %d negative", c.EvalEvery)
	case c.EvalBatch < 0:
		return fmt.Errorf("hfl: eval batch %d negative", c.EvalBatch)
	case c.Aggregation != 0 && (c.Aggregation < AggInverseUpdate || c.Aggregation > AggLiteralEq5):
		return fmt.Errorf("hfl: unknown aggregation mode %d", c.Aggregation)
	case c.UploadFailureProb < 0 || c.UploadFailureProb >= 1:
		return fmt.Errorf("hfl: upload failure probability %v outside [0,1)", c.UploadFailureProb)
	case c.Workers < 0:
		return fmt.Errorf("hfl: workers %d negative", c.Workers)
	case c.EvalShards < 0:
		return fmt.Errorf("hfl: eval shards %d negative", c.EvalShards)
	case c.Lane != LaneF64 && c.Lane != LaneF32:
		return fmt.Errorf("hfl: unknown compute lane %d", int(c.Lane))
	case c.Shards < 0:
		return fmt.Errorf("hfl: shards %d negative", c.Shards)
	}
	return nil
}

// shardCount returns the effective control-plane shard count: Config.Shards
// (0 = 1) clamped to the cloud-reduce group count, so every shard owns at
// least one whole group (and therefore at least one edge) and shard ranges
// stay group-aligned.
func (c Config) shardCount(groups int) int {
	s := c.Shards
	if s < 1 {
		s = 1
	}
	if s > groups {
		s = groups
	}
	return s
}

// defaultEvalShards fixes how many shards full-test-set evaluation splits
// into when Config.EvalShards is zero. It is a constant, not a function of
// the core count, so evaluation losses reduce identically on every machine.
const defaultEvalShards = 8

// evalShards returns the configured shard count, defaulting to
// defaultEvalShards.
func (c Config) evalShards() int {
	if c.EvalShards == 0 {
		return defaultEvalShards
	}
	return c.EvalShards
}

// workers returns the configured worker count, defaulting to GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// aggregation returns the configured mode, defaulting to AggInverseUpdate.
func (c Config) aggregation() Aggregation {
	if c.Aggregation == 0 {
		return AggInverseUpdate
	}
	return c.Aggregation
}

// device is one mobile device: its local data and a reusable model instance.
// The scratch buffers at the bottom make steady-state local updates
// allocation-free; they are safe because a device belongs to exactly one
// edge per step (the schedule's partition property), so at most one worker
// touches a device at a time.
type device struct {
	id    int
	data  *dataset.Dataset
	model *nn.Network
	opt   *nn.SGD
	rng   *rand.Rand
	dist  []float64 // cached local label distribution

	sqNorms  []float64      // per-step gradient-norm window (observers copy)
	batchX   *tensor.Tensor // minibatch pixels [BatchSize, InC, InH, InW]
	batchY   []int          // minibatch labels
	batchIdx []int          // minibatch index scratch
	upload   []float64      // flat parameter upload, consumed by aggregation

	// Float32-lane state (Config.Lane == LaneF32, unfused): a lazily built
	// single-slot executor plus fixed-size per-call scratch, so the f32
	// steady state allocates nothing, matching the f64 guarantee.
	lane      *nn.Lane32
	laneLbls  [1][]int
	laneLoss  [1]float64
	laneNorms [1]float64
}

// Engine runs Algorithm 1.
type Engine struct {
	cfg      Config
	arch     ArchFunc
	strategy sampling.Strategy
	inplace  sampling.InPlaceStrategy // strategy's fast path, when implemented
	observer sampling.Observer        // strategy's Observer side, when implemented
	devices  []*device
	test     *dataset.Dataset

	// tel is the engine's observation sink; nil (the default) disables all
	// instrumentation at zero cost. Its optional companions are discovered
	// from the strategy in New: inspector reports estimator exploration
	// stats at cloud rounds, estInScratch marks that the strategy leaves its
	// per-member estimates in the decide context's scratch buffer, and
	// probFloor (valid when hasProbFloor) is the strategy's probability
	// floor, used to count clamp saturation. Telemetry reads simulation
	// state but never feeds back into it (DESIGN.md §8).
	tel          *telemetry.Telemetry
	inspector    sampling.Introspector
	estInScratch bool
	probFloor    float64
	hasProbFloor bool

	// Streaming mobility plane (DESIGN.md §12): the engine positions itself
	// from a StepSource — a dense *Schedule via its adapter, or a true
	// streaming source — keeping only an O(Devices + Shards) window: the
	// current attachment row, the per-shard move buckets of the step, and
	// the positioned step. nEdges/nDevices/nSteps cache the source's Dims.
	src         mobility.StepSource
	nEdges      int
	nDevices    int
	nSteps      int
	row         []int             // device→edge attachments at step srcPos
	srcPos      int               // positioned step, -1 before the first advance
	stepRebuilt bool              // last advance resynced from Snapshot
	shardMoves  [][]mobility.Move // per-shard buckets of the step's moves
	// transStats, when attached, folds the engine's move stream into an
	// incremental edge-transition model (observational only).
	transStats *mobility.OnlineTransitionStats

	global   []float64   // cloud model parameters w^t
	edge     [][]float64 // edge model parameters w^t_n
	evalNet  *nn.Network
	probeNet *nn.Network
	probeOpt *nn.SGD    // zero-step optimizer: probing measures gradients only
	probeMu  sync.Mutex // probeNet/probeOpt are shared across deciding edges
	capacity float64    // K_n, identical across edges as in the paper

	// Sharded control plane (DESIGN.md §11): shards[s] owns a contiguous
	// edge range with its slice of the member index; edgeShard maps each
	// edge to its owner. The actor goroutines (alive while actorsUp, i.e.
	// inside Run) synchronize with the engine exclusively through shardWG
	// barriers; actorDone tracks goroutine lifetime. groups is the
	// cloud-reduce group count cloudGroups(Edges) and groupCounts the
	// per-group member-count sums of the current cloud round. batchObs is
	// the strategy's batched observation path, when implemented.
	shards      []*shardState
	edgeShard   []int
	shardWG     sync.WaitGroup
	actorDone   sync.WaitGroup
	actorsUp    bool
	groups      int
	groupCounts []int
	batchObs    sampling.BatchObserver

	// pool executes per-device local updates and evaluation shards while a
	// Run is active; nil otherwise (standalone evaluation falls back to
	// transient goroutines).
	pool *parallel.Pool

	// Steady-state scratch. plans[n] and decide[n] are private to edge n's
	// owning shard while a step command is in flight and to the engine
	// goroutine between commands.
	plans       []edgePlan        // per-edge decision-phase output
	decide      []edgeDecideState // per-edge pooled RNG + context + buffers
	aggNext     [][]float64       // per-edge aggregation double-buffer
	cloudNext   []float64         // cloud aggregation double-buffer
	cloudCounts []int             // per-edge member counts of the cloud round
	evalIdx     []int             // evaluation sample indices
	evalShard   []evalShardState

	// fused holds the per-edge fusion state when Config.FuseBatch is set;
	// fused[n] is private to edge n's execution task within a step.
	fused []fusedEdgeState
}

// edgeDecideState is one edge's pooled decision-phase machinery: a reusable
// RNG reseeded to the edge's per-step stream, the strategy context (with its
// scratch buffer), and the probability output buffer. Pooling them removes
// the per-step rand.New/EdgeContext/probability allocations from the hot
// control path.
type edgeDecideState struct {
	rng   *rand.Rand
	ctx   sampling.EdgeContext
	probs []float64

	// Trace buffers, filled during the (parallel) decide phase only when the
	// step's decisions are being traced, and read by the sequential finalize
	// phase, which emits them in edge order so trace output is deterministic.
	coins      []float64
	sampledIDs []int
	droppedIDs []int
}

// evalShardState is one evaluation shard's private network and batch
// buffers. Shard boundaries are a pure function of the test-set size and the
// fixed shard count, so in steady state the buffers are reused as-is.
type evalShardState struct {
	net *nn.Network
	x   *tensor.Tensor
	y   []int
}

// New assembles an engine. deviceData holds one local dataset per device and
// must match the mobility source's device count; test is the held-out global
// test set. src may be a dense *mobility.Schedule (its StepSource adapter
// replays the matrix) or a true streaming source — runs are bit-identical
// between a source and its Materialize'd twin.
func New(cfg Config, arch ArchFunc, deviceData []*dataset.Dataset, test *dataset.Dataset, src mobility.StepSource, strategy sampling.Strategy) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("hfl: nil schedule")
	}
	if s, ok := src.(*mobility.Schedule); ok {
		if s == nil {
			return nil, fmt.Errorf("hfl: nil schedule")
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("hfl: invalid schedule: %w", err)
		}
	}
	nEdges, nDevices, nSteps := src.Dims()
	if nEdges <= 0 || nDevices <= 0 || nSteps <= 0 {
		return nil, fmt.Errorf("hfl: mobility source dims %d/%d/%d must be positive", nEdges, nDevices, nSteps)
	}
	if len(deviceData) != nDevices {
		return nil, fmt.Errorf("hfl: %d device datasets for %d scheduled devices", len(deviceData), nDevices)
	}
	if nSteps < cfg.Steps {
		return nil, fmt.Errorf("hfl: schedule covers %d steps, config needs %d", nSteps, cfg.Steps)
	}
	if test == nil || test.Len() == 0 {
		return nil, fmt.Errorf("hfl: empty test set")
	}
	if strategy == nil {
		return nil, fmt.Errorf("hfl: nil strategy")
	}

	initRNG := rand.New(rand.NewSource(cfg.Seed))
	base, err := arch(initRNG)
	if err != nil {
		return nil, fmt.Errorf("hfl: build architecture: %w", err)
	}
	if cfg.Lane == LaneF32 {
		// Fail at construction, not mid-run, when the architecture holds a
		// layer the float32 lane cannot execute.
		if _, err := nn.NewLane32(base, 1); err != nil {
			return nil, fmt.Errorf("hfl: float32 lane: %w", err)
		}
	}
	e := &Engine{
		cfg:      cfg,
		arch:     arch,
		src:      src,
		nEdges:   nEdges,
		nDevices: nDevices,
		nSteps:   nSteps,
		row:      make([]int, nDevices),
		srcPos:   -1,
		strategy: strategy,
		devices:  make([]*device, len(deviceData)),
		test:     test,
		global:   base.ParamVector(),
		evalNet:  base,
		probeNet: base.Clone(),
		probeOpt: nn.NewSGD(0),
		capacity: cfg.Participation * float64(nDevices) / float64(nEdges),
	}
	if obs, ok := strategy.(sampling.Observer); ok {
		e.observer = obs
	}
	if bo, ok := strategy.(sampling.BatchObserver); ok {
		e.batchObs = bo
	}
	if ip, ok := strategy.(sampling.InPlaceStrategy); ok {
		e.inplace = ip
	}
	if insp, ok := strategy.(sampling.Introspector); ok {
		e.inspector = insp
	}
	if se, ok := strategy.(sampling.ScratchEstimator); ok {
		e.estInScratch = se.ScratchEstimates()
	}
	if fr, ok := strategy.(sampling.FloorReporter); ok {
		e.probFloor, e.hasProbFloor = fr.ProbFloor(), true
	}
	for m, data := range deviceData {
		if data == nil || data.Len() == 0 {
			return nil, fmt.Errorf("hfl: device %d has no data", m)
		}
		e.devices[m] = &device{
			id:    m,
			data:  data,
			model: base.Clone(),
			opt:   nn.NewSGD(cfg.LearningRate),
			rng:   rand.New(rand.NewSource(mix(cfg.Seed, 0x9E3779B9, int64(m)))),
			dist:  data.ClassDistribution(),
		}
	}
	e.edge = make([][]float64, nEdges)
	for n := range e.edge {
		e.edge[n] = append([]float64(nil), e.global...)
	}
	e.plans = make([]edgePlan, nEdges)
	e.decide = make([]edgeDecideState, nEdges)
	e.aggNext = make([][]float64, nEdges)
	if cfg.FuseBatch {
		e.fused = make([]fusedEdgeState, nEdges)
	}
	e.groups = cloudGroups(nEdges)
	e.groupCounts = make([]int, e.groups)
	e.cloudCounts = make([]int, nEdges)
	shards := cfg.shardCount(e.groups)
	e.shards = make([]*shardState, shards)
	e.shardMoves = make([][]mobility.Move, shards)
	e.edgeShard = make([]int, nEdges)
	for s := range e.shards {
		e.shards[s] = newShardState(e, s, shards)
		for n := e.shards[s].lo; n < e.shards[s].hi; n++ {
			e.edgeShard[n] = s
		}
	}
	return e, nil
}

// Capacity returns K_n, the per-edge expected participation budget.
func (e *Engine) Capacity() float64 { return e.capacity }

// SetTelemetry attaches a telemetry sink (nil detaches). Call it before Run;
// attaching mid-run races with the step loop. Telemetry is observational
// only: the attached sink never changes what the engine computes, and
// identically-seeded runs are bit-identical with and without it.
func (e *Engine) SetTelemetry(t *telemetry.Telemetry) { e.tel = t }

// SaveCheckpoint writes the current global model so a run can be inspected
// or resumed in another process.
func (e *Engine) SaveCheckpoint(w io.Writer) error {
	if err := e.evalNet.SetParamVector(e.global); err != nil {
		return err
	}
	blob, err := e.evalNet.MarshalBinary()
	if err != nil {
		return fmt.Errorf("hfl: marshal checkpoint: %w", err)
	}
	if _, err := w.Write(blob); err != nil {
		return fmt.Errorf("hfl: write checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores a global model written by SaveCheckpoint into the
// cloud and every edge, so a subsequent Run continues from it.
func (e *Engine) LoadCheckpoint(r io.Reader) error {
	blob, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("hfl: read checkpoint: %w", err)
	}
	if err := e.evalNet.UnmarshalBinary(blob); err != nil {
		return fmt.Errorf("hfl: restore checkpoint: %w", err)
	}
	e.global = e.evalNet.ParamVector()
	for n := range e.edge {
		copy(e.edge[n], e.global)
	}
	return nil
}

// GlobalParams returns a copy of the current global model parameters.
func (e *Engine) GlobalParams() []float64 {
	return append([]float64(nil), e.global...)
}

// mix produces well-separated deterministic seeds from components.
func mix(parts ...int64) int64 {
	h := int64(1469598103934665603)
	for _, p := range parts {
		h ^= p
		h *= 1099511628211
	}
	return h
}
