package hfl

import (
	"math"
	"testing"

	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/sampling"
)

// streamSetup builds the tiny experiment over a streaming MarkovSource plus
// its materialized dense twin — identical attachments by construction, so a
// run over either plane must be bit-identical.
func streamSetup(t *testing.T) (mkSrc func() *mobility.MarkovSource, dense *mobility.Schedule) {
	t.Helper()
	const edges, devices, steps = 3, 12, 12
	mkSrc = func() *mobility.MarkovSource {
		src, err := mobility.NewMarkovSource(33, edges, devices, steps, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	dense, err := mobility.Materialize(mkSrc())
	if err != nil {
		t.Fatal(err)
	}
	if dense.TransitionRate() == 0 {
		t.Fatal("twin schedule never moves a device; test exercises nothing")
	}
	return mkSrc, dense
}

// runStreamConfig runs the tiny experiment over the given mobility source
// with the given worker and shard counts.
func runStreamConfig(t *testing.T, src mobility.StepSource, workers, shards int, stats *mobility.OnlineTransitionStats) (*Result, []float64) {
	t.Helper()
	parts, test, _ := tinySetup(t, 12, 3, 12, 21)
	cfg := tinyConfig(12, 21)
	cfg.Workers = workers
	cfg.Shards = shards
	s, err := sampling.NewMACH(12, sampling.DefaultMACHConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, tinyArch, parts, test, src, s)
	if err != nil {
		t.Fatal(err)
	}
	if stats != nil {
		eng.SetTransitionStats(stats)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.GlobalParams()
}

// requireRunsEqual asserts two runs are bit-identical: sampling decisions,
// evaluation history and final parameters.
func requireRunsEqual(t *testing.T, label string, res, ref *Result, params, refParams []float64) {
	t.Helper()
	if len(res.SampledPerStep) != len(ref.SampledPerStep) {
		t.Fatalf("%s: steps %d vs %d", label, len(res.SampledPerStep), len(ref.SampledPerStep))
	}
	for i, want := range ref.SampledPerStep {
		if res.SampledPerStep[i] != want {
			t.Fatalf("%s: SampledPerStep[%d] = %d, want %d", label, i, res.SampledPerStep[i], want)
		}
	}
	if res.TotalSampled != ref.TotalSampled || res.Comm != ref.Comm {
		t.Fatalf("%s: totals diverged: %+v vs %+v", label, res, ref)
	}
	refPts, pts := ref.History.Points, res.History.Points
	if len(pts) != len(refPts) {
		t.Fatalf("%s: history %d points vs %d", label, len(pts), len(refPts))
	}
	for i := range refPts {
		if math.Float64bits(pts[i].Accuracy) != math.Float64bits(refPts[i].Accuracy) ||
			math.Float64bits(pts[i].Loss) != math.Float64bits(refPts[i].Loss) {
			t.Fatalf("%s: history[%d] = %+v, want %+v", label, i, pts[i], refPts[i])
		}
	}
	for j, want := range refParams {
		if math.Float64bits(params[j]) != math.Float64bits(want) {
			t.Fatalf("%s: global param %d = %v, want %v", label, j, params[j], want)
		}
	}
}

// TestRunStreamingMatchesDenseBitIdentical is the tentpole determinism gate:
// a run driven by a streaming MarkovSource is bit-identical to the same run
// driven by the source's materialized dense schedule, at every worker and
// shard count. Sampling decisions, history and final parameters all match
// exactly — the O(Devices) window changes memory, never results.
func TestRunStreamingMatchesDenseBitIdentical(t *testing.T) {
	mkSrc, dense := streamSetup(t)
	ref, refParams := runStreamConfig(t, dense, 1, 0, nil)

	for _, workers := range []int{1, 3} {
		for _, shards := range []int{0, 1, 3} {
			res, params := runStreamConfig(t, mkSrc(), workers, shards, nil)
			requireRunsEqual(t, "stream", res, ref, params, refParams)
			// The dense adapter must agree too, at the same concurrency.
			res, params = runStreamConfig(t, dense, workers, shards, nil)
			requireRunsEqual(t, "dense", res, ref, params, refParams)
		}
	}
}

// TestTransitionStatsAreObservationOnly: attaching OnlineTransitionStats
// must not change a single bit of the run, while the statistics themselves
// come out fitted — every engine-visible single-step transition observed, no
// jumps, a transition rate matching the dense schedule's, and a
// predictor-ready matrix.
func TestTransitionStatsAreObservationOnly(t *testing.T) {
	mkSrc, dense := streamSetup(t)
	ref, refParams := runStreamConfig(t, dense, 1, 0, nil)

	stats, err := mobility.NewOnlineTransitionStats(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, params := runStreamConfig(t, mkSrc(), 3, 3, stats)
	requireRunsEqual(t, "with stats", res, ref, params, refParams)

	if stats.Steps() != 11 { // steps 1..11; step 0 is the initial snapshot
		t.Fatalf("observed %d single-step transitions, want 11", stats.Steps())
	}
	if stats.Jumps() != 0 {
		t.Fatalf("run recorded %d jumps, want 0", stats.Jumps())
	}
	if got, want := stats.TransitionRate(), dense.TransitionRate(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("online transition rate %v, dense %v", got, want)
	}
	for i, row := range stats.Transitions() {
		sum := 0.0
		for _, p := range row {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("fitted row %d sums to %v", i, sum)
		}
	}
}
