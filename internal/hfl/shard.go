package hfl

import (
	"fmt"

	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/telemetry"
)

// This file holds the sharded control plane (DESIGN.md §11): the engine's
// per-step work is partitioned into shard actors, each owning a contiguous
// range of edges plus that range's member index, decide/aggregation scratch
// and experience-observation buffer. Shards run decide → execute → finalize
// for their edges on their own goroutine and talk to the engine only through
// per-step submit/collect points, so a step's cross-shard interleaving can
// never reach a value: every RNG stream is per-edge and placement-
// independent, the experience book is frozen for the step (observations are
// buffered per shard and merged in edge order at the collect point), and
// every reduction the engine performs folds shard outputs in a fixed order.
//
// The cloud round is a two-tier reduce over a *fixed* grouping: edges fold
// into cloudGroups(E) canonical groups — a pure function of the edge count,
// never of the shard count — and the engine folds group partials in group
// order. With E ≤ cloudReduceGroups every group holds exactly one edge, so
// the grouped fold reproduces the monolithic engine's edge-order fold bit
// for bit; for any E the grouping is shard-count-invariant, so sharded(N)
// runs are bit-identical to Shards: 1 for every N.

// cloudReduceGroups caps the number of accumulation groups of the two-tier
// cloud reduce. It is a machine-independent constant (like
// defaultEvalShards): the grouping determines the floating-point summation
// order of Eq. (6), so it must be a pure function of the edge count — any
// dependence on shard or core count would break run reproducibility.
const cloudReduceGroups = 64

// cloudGroups returns the canonical group count for an edge count: one group
// per edge up to cloudReduceGroups, then a fixed fan-in so the engine-side
// serial fold stays O(cloudReduceGroups · |w|) no matter how many edges
// exist.
func cloudGroups(edges int) int {
	if edges < cloudReduceGroups {
		return edges
	}
	return cloudReduceGroups
}

// groupEdgeLo returns the first edge of group g under the canonical
// partition of edges into groups contiguous ranges: group g covers
// [edges·g/groups, edges·(g+1)/groups).
func groupEdgeLo(edges, groups, g int) int { return edges * g / groups }

// shardOp selects what a shardCmd asks the shard to do.
type shardOp int

const (
	// opStep runs decide → execute → finalize for the shard's edges at
	// step t.
	opStep shardOp = iota
	// opCloudPartial computes the shard's per-group cloud partial sums with
	// the member-count weights of Eq. (6); total carries Σ|M^t_n| over all
	// edges (the shard only knows its own counts).
	opCloudPartial
	// opInstallGlobal copies the freshly reduced global model into the
	// shard's edge models.
	opInstallGlobal
)

// shardCmd is one engine→shard command. The engine submits the same command
// to every shard and waits on the shared barrier; the channel is per-shard,
// so there is no cross-shard fan-in anywhere in the protocol.
type shardCmd struct {
	op    shardOp
	t     int
	total float64
}

// shardState is one control-plane shard: a contiguous edge range [lo, hi)
// aligned to cloud-reduce group boundaries [gLo, gHi), its range-scoped
// member index, and every per-step buffer the monolithic engine kept in one
// place. All fields are owned by the shard goroutine while a command is in
// flight and readable by the engine between commands (the barrier's
// WaitGroup provides the happens-before edge in both directions).
type shardState struct {
	e        *Engine
	id       int
	lo, hi   int // owned edge range [lo, hi)
	gLo, gHi int // owned cloud-reduce group range [gLo, gHi)

	index *mobility.MemberIndex
	cmd   chan shardCmd

	// Step outputs, read by the engine at the collect point.
	counts []edgeStepCounts // per owned edge, indexed n-lo

	// First decide and finalize errors, by edge order within the shard. The
	// engine checks all shards' decide errors before any finalize error,
	// mirroring the monolithic engine's decide-then-finalize error
	// precedence; shard ranges are ordered, so scanning shards in order
	// yields the lowest-edge error of each kind.
	decideErrEdge int
	decideErr     error
	finalErrEdge  int
	finalErr      error
	panicked      any
	hasPanic      bool

	// Observation buffer: the step's (edge, device, norms) records in edge
	// then member order, merged into the strategy's observer at the collect
	// point. The norms slices are the devices' reusable windows — valid
	// until each device's next training step, which is after the merge.
	obsEdges []int
	obsDevs  []int
	obsNorms [][]float64

	// aggResults is the shard's upload-collection scratch, reused across its
	// edges exactly as the monolithic engine reused one slice across the
	// serial finalize loop.
	aggResults []localResult

	// partials[g-gLo] is group g's cloud-reduce partial sum.
	partials [][]float64

	// Phase telemetry, observed by the engine at the collect point.
	decideNS, trainNS, finalNS int64
	queueDepth                 int
}

// newShardState builds shard id of S covering groups [G·id/S, G·(id+1)/S)
// and their edges.
func newShardState(e *Engine, id, shards int) *shardState {
	edges := e.nEdges
	groups := cloudGroups(edges)
	gLo, gHi := groups*id/shards, groups*(id+1)/shards
	lo, hi := groupEdgeLo(edges, groups, gLo), groupEdgeLo(edges, groups, gHi)
	s := &shardState{
		e:        e,
		id:       id,
		lo:       lo,
		hi:       hi,
		gLo:      gLo,
		gHi:      gHi,
		index:    mobility.NewMemberIndexWindow(lo, hi),
		counts:   make([]edgeStepCounts, hi-lo),
		partials: make([][]float64, gHi-gLo),
	}
	for g := range s.partials {
		s.partials[g] = make([]float64, len(e.global))
	}
	return s
}

// startActors spins up one goroutine per shard. Run calls it after the pool
// exists; stopActors tears the goroutines down when Run returns.
func (e *Engine) startActors() {
	e.actorDone.Add(len(e.shards))
	for _, s := range e.shards {
		s.cmd = make(chan shardCmd, 1)
		go s.loop()
	}
	e.actorsUp = true
}

// stopActors closes every shard's command channel and waits for the
// goroutines to exit.
func (e *Engine) stopActors() {
	for _, s := range e.shards {
		close(s.cmd)
	}
	e.actorDone.Wait()
	e.actorsUp = false
}

// submitAll is the engine's submit/collect point: it hands cmd to every
// shard and blocks until all of them finish it. The shared WaitGroup is the
// only cross-goroutine synchronization of the protocol; its Wait gives the
// engine a happens-before view of everything the shards wrote.
func (e *Engine) submitAll(cmd shardCmd) {
	e.shardWG.Add(len(e.shards))
	for _, s := range e.shards {
		s.cmd <- cmd
	}
	e.shardWG.Wait()
}

// loop is the shard actor: one command at a time, in submission order.
func (s *shardState) loop() {
	defer s.e.actorDone.Done()
	for cmd := range s.cmd {
		s.exec(cmd)
		s.e.shardWG.Done()
	}
}

// exec dispatches one command, converting a panic into a stored value so the
// barrier always completes; the engine re-panics at the collect point,
// preserving the monolithic engine's panic-on-producer behavior.
func (s *shardState) exec(cmd shardCmd) {
	defer func() {
		if r := recover(); r != nil && !s.hasPanic {
			s.hasPanic, s.panicked = true, r
		}
	}()
	// The span reuses the edge dimension for the shard id and the device
	// dimension for the opcode, which keeps command spans of the same step
	// distinguishable. Step commands nest under the step span; the cloud
	// commands carry no step and stay roots.
	parent := telemetry.SpanID(0)
	if cmd.op == opStep {
		parent = telemetry.DeriveSpanID(telemetry.SpanStep, cmd.t, -1, -1)
	}
	sp := s.e.tel.StartSpan(telemetry.SpanShardCmd, parent, cmd.t, s.id, int(cmd.op))
	defer sp.End()
	switch cmd.op {
	case opStep:
		s.step(cmd.t)
	case opCloudPartial:
		s.cloudPartials(cmd.total)
	case opInstallGlobal:
		s.installGlobal()
	}
}

// step runs the shard's share of one time step: position the range index,
// decide every owned edge in edge order, execute the sampled devices' local
// updates on the shared pool, and finalize (observe + aggregate) in edge
// order. Everything written here is either owned by the shard (its edges,
// their decide states and plans, its index and buffers) or private to a
// device the schedule assigns to exactly one of its edges this step, so
// shards never contend; the experience book is only read (estimates) during
// the step, never written.
func (s *shardState) step(t int) {
	e := s.e
	start := e.tel.Now()
	s.decideErr, s.finalErr = nil, nil
	s.obsEdges = s.obsEdges[:0]
	s.obsDevs = s.obsDevs[:0]
	s.obsNorms = s.obsNorms[:0]
	s.queueDepth = 0
	// Repair the range index from the engine's move stream: only the moves
	// bucketed for this shard (those touching [lo, hi)) are replayed, so the
	// per-shard positioning cost is O(own moves), not a row-vs-row diff. The
	// row, bucket and rebuilt flag were written before the step was
	// submitted and are read-only until the barrier.
	s.index.AdvanceWith(t, e.row, e.shardMoves[s.id], e.stepRebuilt)
	for n := s.lo; n < s.hi; n++ {
		if err := e.edgeDecide(t, n); err != nil && s.decideErr == nil {
			s.decideErrEdge, s.decideErr = n, err
		}
	}
	decideEnd := e.tel.Now()
	s.decideNS = decideEnd - start
	// Phase spans reuse the timestamps already taken for the phase
	// histograms — no extra clock reads — and nest under this shard's step
	// command span (edge dimension = shard id, as in exec).
	cmdSpan := telemetry.DeriveSpanID(telemetry.SpanShardCmd, t, s.id, int(opStep))
	e.tel.RecordSpan(telemetry.SpanDecide, cmdSpan, t, s.id, -1, start, decideEnd)
	if s.decideErr != nil {
		return // the engine aborts the run; skip execution like the monolith
	}
	g := e.pool.Group()
	if e.cfg.FuseBatch {
		for n := s.lo; n < s.hi; n++ {
			g.Go(func() { e.edgeLocalUpdates(n) })
		}
	} else {
		for n := s.lo; n < s.hi; n++ {
			edgeParams := e.edge[n]
			devs := e.plans[n].devs
			for i := range devs {
				pd := &devs[i]
				g.Go(func() {
					pd.sqNorms, pd.err = e.localUpdate(e.devices[pd.m], edgeParams)
				})
			}
		}
	}
	s.queueDepth = e.pool.QueueDepth()
	g.Wait()
	trainEnd := e.tel.Now()
	s.trainNS = trainEnd - decideEnd
	e.tel.RecordSpan(telemetry.SpanTrain, cmdSpan, t, s.id, -1, decideEnd, trainEnd)
	for n := s.lo; n < s.hi; n++ {
		counts, err := e.edgeFinalize(t, n, s)
		s.counts[n-s.lo] = counts
		if err != nil {
			s.finalErrEdge, s.finalErr = n, err
			break
		}
	}
	finalEnd := e.tel.Now()
	s.finalNS = finalEnd - trainEnd
	e.tel.RecordSpan(telemetry.SpanFinalize, cmdSpan, t, s.id, -1, trainEnd, finalEnd)
}

// cloudPartials computes the shard's per-group partial sums of Eq. (6):
// partials[g] = Σ_{n ∈ group g} (|M^t_n|/total)·w_n, accumulated in edge
// order within the group. Zero-count edges are skipped exactly as the
// monolithic fold skipped them.
func (s *shardState) cloudPartials(total float64) {
	edges, groups := s.e.nEdges, s.e.groups
	for g := s.gLo; g < s.gHi; g++ {
		dst := s.partials[g-s.gLo]
		for j := range dst {
			dst[j] = 0
		}
		for n := groupEdgeLo(edges, groups, g); n < groupEdgeLo(edges, groups, g+1); n++ {
			w := float64(s.index.Count(n)) / total
			//machlint:allow floateq zero weight is exact (0/total); skipping it avoids touching the partial with -0 terms
			if w == 0 {
				continue
			}
			weightedAccumInto(dst, s.e.edge[n], w)
		}
	}
}

// weightedAccumInto adds w·src to dst elementwise. dst is a shard's pooled
// group-partial buffer and src an edge model vector; they never share
// storage, and the accumulation corrupts dst if they do.
//
//machlint:noalias dst,src
//
//machlint:allocfree
func weightedAccumInto(dst, src []float64, w float64) {
	for j, v := range src {
		dst[j] += w * v
	}
}

// installGlobal redistributes the reduced global model to the shard's edges.
func (s *shardState) installGlobal() {
	for n := s.lo; n < s.hi; n++ {
		copy(s.e.edge[n], s.e.global)
	}
}

// surfaceShardPanics re-raises the first stored shard panic (in shard
// order) on the engine goroutine, preserving the monolithic engine's
// panic-on-producer behavior across the actor boundary.
func (e *Engine) surfaceShardPanics() {
	for _, s := range e.shards {
		if s.hasPanic {
			panic(s.panicked)
		}
	}
}

// stepEdgeError wraps a shard-reported per-edge failure exactly as the
// monolithic step loop did.
func stepEdgeError(t, n int, err error) error {
	return fmt.Errorf("hfl: step %d edge %d: %w", t, n, err)
}

// edgeMembers returns M^t_n from the owning shard's range index.
//
//machlint:allocfree
func (e *Engine) edgeMembers(n int) []int {
	s := e.shards[e.edgeShard[n]]
	return s.index.Members(n)
}

// collectStep is the engine side of a step's collect point: it surfaces
// shard panics and errors (decide before finalize, each in edge order),
// merges the shards' buffered observations into the strategy's observer in
// edge order, and publishes the shards' phase telemetry. It runs serially on
// the Run goroutine after the barrier, so everything it does is
// deterministic.
func (e *Engine) collectStep(t int) error {
	e.surfaceShardPanics()
	for _, s := range e.shards {
		if s.decideErr != nil {
			return stepEdgeError(t, s.decideErrEdge, s.decideErr)
		}
	}
	for _, s := range e.shards {
		if s.finalErr != nil {
			return stepEdgeError(t, s.finalErrEdge, s.finalErr)
		}
	}
	if e.observer != nil {
		for _, s := range e.shards {
			if len(s.obsDevs) == 0 {
				continue
			}
			if e.batchObs != nil {
				e.batchObs.ObserveBatch(t, s.obsEdges, s.obsDevs, s.obsNorms)
				continue
			}
			for i, m := range s.obsDevs {
				e.observer.Observe(t, s.obsEdges[i], m, s.obsNorms[i])
			}
		}
	}
	if e.tel != nil {
		e.collectShardTelemetry(t)
	}
	return nil
}

// collectShardTelemetry publishes the shards' phase durations and queue
// depths: into the engine-level phase histograms (one observation per shard
// per step — with one shard, exactly the monolithic engine's cadence), the
// per-shard telemetry slots, and — when the trace records this step — phase
// events in (phase, shard) order.
func (e *Engine) collectShardTelemetry(t int) {
	maxDepth := 0
	for _, s := range e.shards {
		e.tel.Observe(telemetry.HistDecideNS, s.decideNS)
		e.tel.Observe(telemetry.HistTrainNS, s.trainNS)
		e.tel.Observe(telemetry.HistAggregateNS, s.finalNS)
		e.tel.ObserveShardPhase(s.id, telemetry.ShardPhaseDecide, s.decideNS)
		e.tel.ObserveShardPhase(s.id, telemetry.ShardPhaseTrain, s.trainNS)
		e.tel.ObserveShardPhase(s.id, telemetry.ShardPhaseFinalize, s.finalNS)
		e.tel.SetShardQueueDepth(s.id, int64(s.queueDepth))
		if s.queueDepth > maxDepth {
			maxDepth = s.queueDepth
		}
	}
	e.tel.SetGauge(telemetry.GaugeQueueDepth, float64(maxDepth))
	tr := e.tel.Trace()
	if !tr.StepActive(t) {
		return
	}
	for _, name := range []struct {
		label string
		ns    func(*shardState) int64
	}{
		{"decide", func(s *shardState) int64 { return s.decideNS }},
		{"train", func(s *shardState) int64 { return s.trainNS }},
		{"finalize", func(s *shardState) int64 { return s.finalNS }},
	} {
		for _, s := range e.shards {
			tr.Emit(&telemetry.Event{Type: telemetry.EventPhase, Step: t, Phase: &telemetry.PhaseEvent{
				Name: name.label, NS: name.ns(s), Shard: s.id,
			}})
		}
	}
}
