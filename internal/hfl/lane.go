package hfl

import (
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/tensor"
)

// This file holds the execution-phase variants behind Config.Lane and
// Config.FuseBatch (DESIGN.md §10). The default path — float64, one pool
// task per sampled device — lives untouched in run.go; the variants here
// preserve its semantics exactly:
//
//   - Per-device RNG streams: every path draws each device's minibatches
//     from dev.rng in local-epoch order, so a device's draw sequence is
//     independent of lane, fusion and scheduling.
//   - Aggregation boundaries stay float64: the f32 lane trains on float32
//     compute copies of float64 master weights and uploads the masters.
//   - Determinism: fused execution is one task per edge, and a device
//     belongs to exactly one edge per step, so per-edge state needs no
//     locking and results are bit-identical for every worker count.

// fusedEdgeState is one edge's pooled batch-fusion machinery, private to the
// edge's execution task within a step. Buffers grow to the edge's high-water
// sampled count and are reused across steps.
type fusedEdgeState struct {
	lane *nn.Lane32  // f32 lane: multi-slot fused executor
	ls   nn.Lockstep // f64 lane: layer-lockstep walker

	nets   []*nn.Network
	xs     []*tensor.Tensor
	opts   []nn.Optimizer
	labels [][]int
	losses []float64
	norms  []float64
}

// ensureDeviceBatch installs the device's reusable minibatch buffers
// (shared by every lane and fusion mode).
func (e *Engine) ensureDeviceBatch(dev *device) {
	if dev.sqNorms == nil {
		dev.sqNorms = make([]float64, e.cfg.LocalEpochs)
		dev.batchX = tensor.New(e.cfg.BatchSize, dev.data.InC, dev.data.InH, dev.data.InW)
		dev.batchY = make([]int, e.cfg.BatchSize)
		dev.batchIdx = make([]int, e.cfg.BatchSize)
	}
}

// localUpdate32 is the float32-lane unfused local update: the same I SGD
// steps as localUpdate, executed on the device's single-slot Lane32. The
// float64 master weights become the device's upload directly, so the
// parameter vector that reaches edge aggregation never round-trips through
// float32.
func (e *Engine) localUpdate32(dev *device, edgeParams []float64) ([]float64, error) {
	if dev.lane == nil {
		lane, err := nn.NewLane32(e.evalNet, 1)
		if err != nil {
			return nil, err
		}
		dev.lane = lane
		dev.laneLbls[0] = nil
	}
	if err := dev.lane.LoadParams(0, edgeParams); err != nil {
		return nil, err
	}
	e.ensureDeviceBatch(dev)
	dev.laneLbls[0] = dev.batchY
	lr := dev.opt.LearningRate()
	for tau := 0; tau < e.cfg.LocalEpochs; tau++ {
		dev.data.RandomBatchInto(dev.rng, dev.batchX, dev.batchY, dev.batchIdx)
		dev.lane.SetInput(0, e.cfg.BatchSize, dev.batchX.Data())
		dev.lane.TrainStep(1, e.cfg.BatchSize, dev.laneLbls[:], lr, dev.laneLoss[:], dev.laneNorms[:])
		dev.sqNorms[tau] = dev.laneNorms[0]
	}
	dev.upload = dev.lane.ParamsInto(0, dev.upload)
	return dev.sqNorms, nil
}

// edgeLocalUpdates executes one edge's whole sampled-device plan as a single
// fused task (Config.FuseBatch). Per-device errors and gradient-norm windows
// land in the plan exactly where the per-device tasks would put them.
func (e *Engine) edgeLocalUpdates(n int) {
	plan := &e.plans[n]
	if len(plan.devs) == 0 {
		return
	}
	if e.cfg.Lane == LaneF32 {
		e.edgeLocalUpdates32(n)
		return
	}
	st := &e.fused[n]
	devs := plan.devs
	count := len(devs)
	st.grow(count)
	for i := range devs {
		dev := e.devices[devs[i].m]
		if err := dev.model.SetParamVector(e.edge[n]); err != nil {
			devs[i].err = err
			return
		}
		e.ensureDeviceBatch(dev)
		st.nets[i] = dev.model
		st.xs[i] = dev.batchX
		st.opts[i] = dev.opt
		st.labels[i] = dev.batchY
	}
	for tau := 0; tau < e.cfg.LocalEpochs; tau++ {
		for i := range devs {
			dev := e.devices[devs[i].m]
			dev.data.RandomBatchInto(dev.rng, dev.batchX, dev.batchY, dev.batchIdx)
		}
		st.ls.Step(st.nets[:count], st.xs[:count], st.labels[:count], st.opts[:count], st.losses, st.norms)
		for i := range devs {
			e.devices[devs[i].m].sqNorms[tau] = st.norms[i]
		}
	}
	for i := range devs {
		devs[i].sqNorms = e.devices[devs[i].m].sqNorms
	}
}

// edgeLocalUpdates32 is the fused float32 path: every sampled device of the
// edge occupies one slot of a pooled multi-slot Lane32, so each local epoch
// runs the whole edge through the network layer by layer over contiguous
// strided buffers — the cross-device batch fusion the f32 lane was built
// for. Slot order is plan order (member order), a pure function of the
// decision phase, so fused results do not depend on worker scheduling.
func (e *Engine) edgeLocalUpdates32(n int) {
	plan := &e.plans[n]
	devs := plan.devs
	count := len(devs)
	st := &e.fused[n]
	if st.lane == nil || st.lane.Slots() < count {
		lane, err := nn.NewLane32(e.evalNet, count)
		if err != nil {
			devs[0].err = err
			return
		}
		st.lane = lane
	}
	st.grow(count)
	for i := range devs {
		dev := e.devices[devs[i].m]
		if err := st.lane.LoadParams(i, e.edge[n]); err != nil {
			devs[i].err = err
			return
		}
		e.ensureDeviceBatch(dev)
		st.labels[i] = dev.batchY
	}
	// All devices share one learning rate: LR decay applies uniformly at
	// cloud rounds (see Run), so any sampled device's optimizer reports it.
	lr := e.devices[devs[0].m].opt.LearningRate()
	for tau := 0; tau < e.cfg.LocalEpochs; tau++ {
		for i := range devs {
			dev := e.devices[devs[i].m]
			dev.data.RandomBatchInto(dev.rng, dev.batchX, dev.batchY, dev.batchIdx)
			st.lane.SetInput(i, e.cfg.BatchSize, dev.batchX.Data())
		}
		st.lane.TrainStep(count, e.cfg.BatchSize, st.labels[:count], lr, st.losses, st.norms)
		for i := range devs {
			e.devices[devs[i].m].sqNorms[tau] = st.norms[i]
		}
	}
	for i := range devs {
		dev := e.devices[devs[i].m]
		dev.upload = st.lane.ParamsInto(i, dev.upload)
		devs[i].sqNorms = dev.sqNorms
	}
}

// grow sizes the per-device gather slices for count devices, keeping
// capacity across steps.
func (st *fusedEdgeState) grow(count int) {
	if cap(st.nets) < count {
		st.nets = make([]*nn.Network, count)
		st.xs = make([]*tensor.Tensor, count)
		st.opts = make([]nn.Optimizer, count)
		st.labels = make([][]int, count)
		st.losses = make([]float64, count)
		st.norms = make([]float64, count)
	}
	st.nets = st.nets[:count]
	st.xs = st.xs[:count]
	st.opts = st.opts[:count]
	st.labels = st.labels[:count]
	st.losses = st.losses[:count]
	st.norms = st.norms[:count]
}
