package hfl

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/sampling"
)

// runWithWorkers executes one seeded run with the given worker count and
// returns everything that must be invariant across worker counts.
func runWithWorkers(t *testing.T, strategy func(t *testing.T) sampling.Strategy, workers int) (*Result, []float64) {
	t.Helper()
	parts, test, sched := tinySetup(t, 12, 3, 12, 21)
	cfg := tinyConfig(12, 21)
	cfg.Workers = workers
	cfg.UploadFailureProb = 0.2 // exercise the failure coin's stream position
	cfg.EvalBatch = 100         // exercise the subsampled evaluation path
	eng, err := New(cfg, tinyArch, parts, test, sched, strategy(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.GlobalParams()
}

// TestRunBitIdenticalAcrossWorkerCounts is the determinism contract of the
// decision/execution phase split: the realized sampling decisions, training
// history (accuracy AND loss, bitwise), communication totals and final
// global parameters must not depend on Config.Workers.
func TestRunBitIdenticalAcrossWorkerCounts(t *testing.T) {
	strategies := map[string]func(t *testing.T) sampling.Strategy{
		"uniform": func(*testing.T) sampling.Strategy { return sampling.NewUniform() },
		"mach": func(t *testing.T) sampling.Strategy {
			s, err := sampling.NewMACH(12, sampling.DefaultMACHConfig())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"machp": func(t *testing.T) sampling.Strategy {
			s, err := sampling.NewMACHP(sampling.DefaultMACHConfig())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	for name, mk := range strategies {
		t.Run(name, func(t *testing.T) {
			refRes, refParams := runWithWorkers(t, mk, 1)
			for _, workers := range []int{3, 8} {
				res, params := runWithWorkers(t, mk, workers)
				if len(res.SampledPerStep) != len(refRes.SampledPerStep) {
					t.Fatalf("workers=%d: %d steps vs %d", workers, len(res.SampledPerStep), len(refRes.SampledPerStep))
				}
				for i, v := range refRes.SampledPerStep {
					if res.SampledPerStep[i] != v {
						t.Fatalf("workers=%d: SampledPerStep[%d] = %d, want %d", workers, i, res.SampledPerStep[i], v)
					}
				}
				if res.TotalSampled != refRes.TotalSampled || res.Comm != refRes.Comm {
					t.Fatalf("workers=%d: totals diverged: %+v vs %+v", workers, res, refRes)
				}
				refPts, pts := refRes.History.Points, res.History.Points
				if len(pts) != len(refPts) {
					t.Fatalf("workers=%d: %d history points vs %d", workers, len(pts), len(refPts))
				}
				for i := range refPts {
					if pts[i] != refPts[i] {
						t.Fatalf("workers=%d: history[%d] = %+v, want %+v", workers, i, pts[i], refPts[i])
					}
				}
				for j, v := range refParams {
					if params[j] != v {
						t.Fatalf("workers=%d: global param %d = %v, want %v", workers, j, params[j], v)
					}
				}
			}
		})
	}
}

// TestMobilityStatsDeterministic extends the determinism contract to the
// mobility-statistics path the engine's scheduler is seeded from: ComputeStats
// and EstimateTransitions accumulate floats over map-grouped records, so they
// must be bit-identical across repeated calls AND across record orderings —
// the grouping map must never leak its iteration order into the sums.
func TestMobilityStatsDeterministic(t *testing.T) {
	const devices, stations = 17, 5
	trace := &mobility.Trace{}
	rng := rand.New(rand.NewSource(7))
	for d := 0; d < devices; d++ {
		at := int64(0)
		for hop := 0; hop < 6; hop++ {
			dwell := int64(1 + rng.Intn(40))
			trace.Records = append(trace.Records, mobility.Record{
				Device:  d,
				Station: rng.Intn(stations),
				Start:   at,
				End:     at + dwell,
			})
			at += dwell
		}
	}

	refStats := mobility.ComputeStats(trace)
	refTrans, err := mobility.EstimateTransitions(trace, stations)
	if err != nil {
		t.Fatal(err)
	}
	refStationary := mobility.StationaryDistribution(refTrans, 50)

	for trial := 0; trial < 5; trial++ {
		// A fresh permutation of the records each trial: results must not
		// depend on input order, only on content.
		shuffled := &mobility.Trace{Records: append([]mobility.Record(nil), trace.Records...)}
		rng.Shuffle(len(shuffled.Records), func(i, j int) {
			shuffled.Records[i], shuffled.Records[j] = shuffled.Records[j], shuffled.Records[i]
		})
		if stats := mobility.ComputeStats(shuffled); !reflect.DeepEqual(stats, refStats) {
			t.Fatalf("trial %d: ComputeStats depends on record order:\n got %+v\nwant %+v", trial, stats, refStats)
		}
		trans, err := mobility.EstimateTransitions(shuffled, stations)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(trans, refTrans) {
			t.Fatalf("trial %d: EstimateTransitions is not bit-identical across record orders", trial)
		}
		if st := mobility.StationaryDistribution(trans, 50); !reflect.DeepEqual(st, refStationary) {
			t.Fatalf("trial %d: StationaryDistribution drifted: %v vs %v", trial, st, refStationary)
		}
	}
}

// TestEvalShardCountIsMachineProperty checks that the shard count — a config
// knob, not the core count — determines the evaluation reduction: accuracy
// is exact under any shard count, loss agrees to rounding.
func TestEvalShardCountIsMachineProperty(t *testing.T) {
	var got []struct{ acc, loss float64 }
	for _, shards := range []int{1, 4, 8} {
		parts, test, sched := tinySetup(t, 8, 2, 5, 9)
		cfg := tinyConfig(5, 9)
		cfg.EvalShards = shards
		eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
		if err != nil {
			t.Fatal(err)
		}
		acc, loss, err := eng.evaluate(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, struct{ acc, loss float64 }{acc, loss})
	}
	for _, g := range got[1:] {
		if g.acc != got[0].acc {
			t.Fatalf("accuracy depends on shard count: %v vs %v", g.acc, got[0].acc)
		}
		if math.Abs(g.loss-got[0].loss) > 1e-9 {
			t.Fatalf("loss grouping drifted beyond rounding: %v vs %v", g.loss, got[0].loss)
		}
	}
}

// TestAggregateEdgeSteadyStateZeroAllocs pins the double-buffer contract:
// after the first call installs the buffers, edge aggregation never
// allocates, in every mode.
func TestAggregateEdgeSteadyStateZeroAllocs(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 5, 3)
	for _, mode := range []Aggregation{AggInverseUpdate, AggPlain, AggLiteralEq5} {
		cfg := tinyConfig(5, 3)
		cfg.Aggregation = mode
		eng, err := New(cfg, tinyArch, parts, test, sched, sampling.NewUniform())
		if err != nil {
			t.Fatal(err)
		}
		results := []localResult{
			{params: eng.GlobalParams(), weight: 0.7, size: 40},
			{params: eng.GlobalParams(), weight: 1.3, size: 40},
		}
		eng.aggregateEdge(0, results, true) // warm-up installs the buffer
		allocs := testing.AllocsPerRun(50, func() {
			eng.aggregateEdge(0, results, true)
		})
		if allocs != 0 {
			t.Fatalf("mode %v: aggregateEdge allocates %v objects per call in steady state", mode, allocs)
		}
	}
}

// TestAggregatePlainZeroTotalFallsBackToMean covers the total == 0 guard:
// participants that all report empty datasets must produce a plain mean, not
// a division by zero.
func TestAggregatePlainZeroTotalFallsBackToMean(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 5, 3)
	eng, err := New(tinyConfig(5, 3), tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	p := len(eng.global)
	a, b := make([]float64, p), make([]float64, p)
	for j := range a {
		a[j], b[j] = 1, 3
	}
	eng.aggregateEdge(0, []localResult{
		{params: a, weight: 1, size: 0},
		{params: b, weight: 1, size: 0},
	}, false)
	for j, v := range eng.edge[0] {
		if math.IsNaN(v) {
			t.Fatal("zero-size aggregation produced NaN")
		}
		if v != 2 {
			t.Fatalf("edge[0][%d] = %v, want plain mean 2", j, v)
		}
	}
}

// TestEvaluateSurfacesModelMismatch covers the error-propagation fix: a
// global vector that no longer fits the architecture must fail loudly from
// every evaluation entry point instead of reporting zeros.
func TestEvaluateSurfacesModelMismatch(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 5, 3)
	eng, err := New(tinyConfig(5, 3), tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	eng.global = eng.global[:len(eng.global)-1]
	if _, _, err := eng.evaluate(0); err == nil {
		t.Fatal("evaluate accepted a truncated global vector")
	}
	if _, err := eng.EvaluateConfusion(); err == nil {
		t.Fatal("EvaluateConfusion accepted a truncated global vector")
	}
}

// TestProbeGradNormPanicsWithContext covers the probe-side fix: the strategy
// callback has no error channel, so a wiring bug must panic with enough
// context to locate it, not score the device as zero.
func TestProbeGradNormPanicsWithContext(t *testing.T) {
	parts, test, sched := tinySetup(t, 8, 2, 5, 3)
	eng, err := New(tinyConfig(5, 3), tinyArch, parts, test, sched, sampling.NewUniform())
	if err != nil {
		t.Fatal(err)
	}
	eng.edge[0] = eng.edge[0][:len(eng.edge[0])-1]
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("probeGradNorm returned instead of panicking on a truncated edge model")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "probe gradient of device") {
			t.Fatalf("panic lacks context: %v", r)
		}
	}()
	eng.probeGradNorm(0, 0, 0)
}
