package hfl

import (
	"fmt"

	"github.com/mach-fl/mach/internal/mobility"
)

// This file threads the streaming mobility plane (DESIGN.md §12) through the
// engine: the engine holds a mobility.StepSource plus an O(Devices) window —
// the current attachment row and per-shard move buckets — instead of reading
// a dense schedule. A single advance per step produces the move stream every
// consumer repairs from: each shard's member index receives exactly the moves
// intersecting its edge range, and the optional online transition statistics
// fold the same stream. Dense *Schedule runs go through the same code path
// via the schedule's StepSource adapter, which is what makes streaming and
// dense runs bit-identical: both planes position the engine from one move
// stream per step.

// SetTransitionStats attaches an online transition-statistics accumulator
// fed from the engine's move stream (nil detaches). Call it before Run. The
// statistics are observational only: attaching them never changes what the
// engine computes.
func (e *Engine) SetTransitionStats(s *mobility.OnlineTransitionStats) { e.transStats = s }

// advanceMobility positions the engine's mobility window at step t: it
// advances the source, maintains the attachment row (move application on a
// single-step advance, snapshot on a rebuild), feeds the transition
// statistics, and buckets the step's moves per shard so each shard repairs
// its member index from only the moves that touch its edge range. Advancing
// to the current position is a no-op. O(moves + shards) per single step.
//
//machlint:allocfree
func (e *Engine) advanceMobility(t int) error {
	if t == e.srcPos {
		return nil
	}
	moves, rebuilt, err := e.src.AdvanceTo(t)
	if err != nil {
		return fmt.Errorf("mobility source: %w", err)
	}
	if rebuilt || e.srcPos < 0 {
		e.row = e.src.Snapshot(e.row)
		rebuilt = true
	} else {
		mobility.ApplyMoves(e.row, moves)
	}
	e.stepRebuilt = rebuilt
	if e.transStats != nil {
		if !rebuilt {
			e.transStats.ObserveStep(moves)
		} else if e.srcPos >= 0 || t > 0 {
			// A reposition that skipped steps: the intermediate transitions
			// are unobservable. Initial positioning at step 0 skips nothing.
			e.transStats.ObserveJump()
		}
	}
	for s := range e.shardMoves {
		e.shardMoves[s] = e.shardMoves[s][:0]
	}
	if !rebuilt {
		for _, mv := range moves {
			sf, st := e.edgeShard[mv.From], e.edgeShard[mv.To]
			e.shardMoves[sf] = append(e.shardMoves[sf], mv)
			if st != sf {
				e.shardMoves[st] = append(e.shardMoves[st], mv)
			}
		}
	}
	e.srcPos = t
	return nil
}

// positionMobility advances the mobility window and every shard's member
// index to step t. Inside Run both are already positioned by the step
// protocol, so this degenerates to no-ops; direct callers (tests, cloud
// aggregation outside a run) get the same state on demand, which requires a
// source supporting random access — the dense adapter does. A source error
// here means the caller stepped outside the horizon, a programming error.
func (e *Engine) positionMobility(t int) {
	if err := e.advanceMobility(t); err != nil {
		panic(fmt.Sprintf("hfl: position mobility at step %d: %v", t, err))
	}
	for _, s := range e.shards {
		s.index.AdvanceWith(t, e.row, e.shardMoves[s.id], e.stepRebuilt)
	}
}
