package codec

import (
	"fmt"
	"math"
)

// This file is the float32-lane entry point to the wire format (DESIGN.md
// §10): senders holding float32 parameter vectors encode them under
// SchemeFloat32 directly, and receivers can decode back to float32, with no
// round-trip through float64 on either side.
//
// The payload is bit-for-bit the one Encode produces for SchemeFloat32 —
// Encode casts each float64 parameter to float32 before shuffling, so
// Encode32(v32) and Encode(widen(v32)) emit identical blobs. The two APIs
// therefore interoperate in both directions: a blob from either encoder
// decodes with either decoder, as long as the supplied baseline casts to the
// same float32 values.

// Encode32 packs a float32 parameter vector into a SchemeFloat32 Blob.
// baseline and baseID name the shared vector to delta against and must be
// given together (nil and 0 for none), mirroring Encode.
func Encode32(params, baseline []float32, baseID uint64) (Blob, error) {
	if (baseline == nil) != (baseID == 0) {
		return Blob{}, fmt.Errorf("codec: baseline vector and baseline id must be given together")
	}
	if baseline != nil && len(baseline) != len(params) {
		return Blob{}, fmt.Errorf("codec: baseline length %d != params length %d", len(baseline), len(params))
	}
	n := len(params)
	out := make([]byte, 4*n)
	for i, p := range params {
		u := math.Float32bits(p)
		if baseline != nil {
			u ^= math.Float32bits(baseline[i])
		}
		out[i] = byte(u)
		out[n+i] = byte(u >> 8)
		out[2*n+i] = byte(u >> 16)
		out[3*n+i] = byte(u >> 24)
	}
	data, err := deflateBytes(out)
	if err != nil {
		return Blob{}, err
	}
	return Blob{Scheme: SchemeFloat32, Baseline: baseID, Count: n, Data: data}, nil
}

// Decode32 unpacks a SchemeFloat32 Blob into float32 values — exactly the
// bits the sender shipped, with no widening. baseline must be the vector
// named by b.Baseline (nil when b.Baseline == 0).
func Decode32(b Blob, baseline []float32) ([]float32, error) {
	if b.Scheme != SchemeFloat32 {
		return nil, fmt.Errorf("codec: Decode32 requires %v blobs, got %v", SchemeFloat32, b.Scheme)
	}
	if (baseline == nil) != (b.Baseline == 0) {
		return nil, fmt.Errorf("codec: blob baseline %d mismatches supplied vector (have=%v): %w",
			b.Baseline, baseline != nil, ErrUnknownBaseline)
	}
	if baseline != nil && len(baseline) != b.Count {
		return nil, fmt.Errorf("codec: baseline length %d != blob count %d", len(baseline), b.Count)
	}
	if b.Count < 0 {
		return nil, fmt.Errorf("codec: negative parameter count %d", b.Count)
	}
	n := b.Count
	planes, err := inflateBytes(b.Data, 4*n)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		u := uint32(planes[i]) | uint32(planes[n+i])<<8 |
			uint32(planes[2*n+i])<<16 | uint32(planes[3*n+i])<<24
		if baseline != nil {
			u ^= math.Float32bits(baseline[i])
		}
		out[i] = math.Float32frombits(u)
	}
	return out, nil
}
