// Package codec implements the wire-efficiency layer of the distributed
// deployment (DESIGN.md §6): compact encodings of the model parameter
// vectors exchanged between device hosts, edge servers and the cloud.
//
// The observation the package exploits is that almost every transfer in
// hierarchical federated learning is *close to a vector the receiver
// already holds* — the edge base model a device just trained from, the
// previous step's base, the last global model the cloud distributed.
// SchemeDelta encodes against such a shared baseline: XORing the IEEE-754
// bit patterns zeroes the sign, the exponent and the agreeing mantissa
// prefix of every parameter, grouping the XORed words byte-plane by
// byte-plane turns those zeroed bits into long runs, and DEFLATE collapses
// the runs. The pipeline is exactly invertible, so the decoder recovers the
// original float64s bit for bit — NaN payloads, signed zeros and denormals
// included — and a run over the delta path follows the same learning
// trajectory as one over raw vectors.
//
// Baselines are negotiated by ID: the sender names the shared vector in
// Blob.Baseline and the receiver must hold the same bits under that ID
// (internal/fed installs them with the Device.SetBase RPC). Baseline 0 is
// the implicit all-zeros vector, so a fresh stream can always start without
// negotiation.
//
// Two lossy schemes trade fidelity for further reduction on finite-valued
// vectors: SchemeFloat32 casts to float32 before the delta (2× before
// compression), and SchemeInt8 range-quantizes the residual against the
// baseline to one byte per parameter, with sender-side error feedback so
// quantization errors cancel over successive transfers instead of
// accumulating. Both are opt-in; the default path is lossless.
package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrUnknownBaseline reports that a blob references a baseline vector the
// decoder does not hold. Callers detect it with errors.Is locally and by
// substring across net/rpc (which flattens errors to strings) and recover
// by resending without a baseline.
var ErrUnknownBaseline = errors.New("codec: unknown baseline")

// Scheme selects a wire encoding. The zero value is SchemeDelta, the
// lossless default path.
type Scheme uint8

const (
	// SchemeDelta XORs the parameters' float64 bit patterns against the
	// baseline (all zeros when Blob.Baseline == 0), byte-shuffles and
	// DEFLATE-compresses the result. Lossless: decodes bit-exactly.
	SchemeDelta Scheme = iota
	// SchemeRaw is the legacy wire format — eight little-endian bytes per
	// parameter, no baseline, no compression. It exists so the measured
	// cost of the pre-codec protocol stays reproducible.
	SchemeRaw
	// SchemeFloat32 casts each parameter to float32 and delta-encodes the
	// 32-bit patterns against the float32-cast baseline. Lossy: decoding
	// yields float64(float32(v)). Assumes finite values.
	SchemeFloat32
	// SchemeInt8 range-quantizes the residual params−baseline (the raw
	// values when there is no baseline) to one byte per parameter plus a
	// 16-byte range header. With an error-feedback buffer the quantization
	// error is carried into the next encode instead of being lost. Assumes
	// finite values.
	SchemeInt8

	schemeCount
)

// String names the scheme as accepted by ParseScheme.
func (s Scheme) String() string {
	switch s {
	case SchemeDelta:
		return "delta"
	case SchemeRaw:
		return "raw"
	case SchemeFloat32:
		return "float32"
	case SchemeInt8:
		return "int8"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// Validate reports whether the scheme is known.
func (s Scheme) Validate() error {
	if s >= schemeCount {
		return fmt.Errorf("codec: unknown scheme %d", uint8(s))
	}
	return nil
}

// Lossless reports whether the scheme decodes bit-exactly.
func (s Scheme) Lossless() bool { return s == SchemeDelta || s == SchemeRaw }

// ParseScheme maps a CLI/config name to a scheme.
func ParseScheme(name string) (Scheme, error) {
	for s := Scheme(0); s < schemeCount; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("codec: unknown scheme %q (want delta | raw | float32 | int8)", name)
}

// Schemes lists every wire scheme, lossless first.
func Schemes() []Scheme {
	return []Scheme{SchemeDelta, SchemeRaw, SchemeFloat32, SchemeInt8}
}

// Blob is one encoded parameter vector as it travels over the wire.
type Blob struct {
	// Scheme is the encoding of Data; decoders dispatch on this field.
	Scheme Scheme
	// Baseline identifies the shared vector the payload was encoded
	// against; 0 is the implicit all-zeros baseline.
	Baseline uint64
	// Count is the number of parameters in the vector.
	Count int
	// Data is the scheme-specific payload.
	Data []byte
}

// Encode packs params into a Blob under the given scheme. baseline and
// baseID name the shared vector to delta against and must be given together
// (nil and 0 for none); SchemeRaw ignores them. ef, when non-nil, is the
// sender-side error-feedback buffer of the stream — SchemeInt8 adds it to
// the residual before quantizing and overwrites it with the new quantization
// error; lossless schemes leave it untouched.
func Encode(scheme Scheme, params, baseline []float64, baseID uint64, ef []float64) (Blob, error) {
	if err := scheme.Validate(); err != nil {
		return Blob{}, err
	}
	if (baseline == nil) != (baseID == 0) {
		return Blob{}, fmt.Errorf("codec: baseline vector and baseline id must be given together")
	}
	if baseline != nil && len(baseline) != len(params) {
		return Blob{}, fmt.Errorf("codec: baseline length %d != params length %d", len(baseline), len(params))
	}
	if ef != nil && len(ef) != len(params) {
		return Blob{}, fmt.Errorf("codec: error-feedback length %d != params length %d", len(ef), len(params))
	}
	n := len(params)
	switch scheme {
	case SchemeRaw:
		data := make([]byte, 8*n)
		for i, p := range params {
			binary.LittleEndian.PutUint64(data[8*i:], math.Float64bits(p))
		}
		return Blob{Scheme: SchemeRaw, Count: n, Data: data}, nil

	case SchemeDelta:
		data, err := deflateBytes(xorShuffle64(params, baseline))
		if err != nil {
			return Blob{}, err
		}
		return Blob{Scheme: SchemeDelta, Baseline: baseID, Count: n, Data: data}, nil

	case SchemeFloat32:
		data, err := deflateBytes(xorShuffle32(params, baseline))
		if err != nil {
			return Blob{}, err
		}
		return Blob{Scheme: SchemeFloat32, Baseline: baseID, Count: n, Data: data}, nil

	default: // SchemeInt8
		return encodeInt8(params, baseline, baseID, ef)
	}
}

// Decode unpacks a Blob. baseline must be the vector named by b.Baseline
// (nil when b.Baseline == 0); passing a mismatched pair is an error.
func Decode(b Blob, baseline []float64) ([]float64, error) {
	if err := b.Scheme.Validate(); err != nil {
		return nil, err
	}
	if (baseline == nil) != (b.Baseline == 0) {
		return nil, fmt.Errorf("codec: blob baseline %d mismatches supplied vector (have=%v): %w",
			b.Baseline, baseline != nil, ErrUnknownBaseline)
	}
	if baseline != nil && len(baseline) != b.Count {
		return nil, fmt.Errorf("codec: baseline length %d != blob count %d", len(baseline), b.Count)
	}
	if b.Count < 0 {
		return nil, fmt.Errorf("codec: negative parameter count %d", b.Count)
	}
	n := b.Count
	switch b.Scheme {
	case SchemeRaw:
		if len(b.Data) != 8*n {
			return nil, fmt.Errorf("codec: raw blob has %d bytes for %d params", len(b.Data), n)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b.Data[8*i:]))
		}
		return out, nil

	case SchemeDelta:
		planes, err := inflateBytes(b.Data, 8*n)
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			var u uint64
			for p := 0; p < 8; p++ {
				u |= uint64(planes[p*n+i]) << (8 * p)
			}
			if baseline != nil {
				u ^= math.Float64bits(baseline[i])
			}
			out[i] = math.Float64frombits(u)
		}
		return out, nil

	case SchemeFloat32:
		planes, err := inflateBytes(b.Data, 4*n)
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			u := uint32(planes[i]) | uint32(planes[n+i])<<8 |
				uint32(planes[2*n+i])<<16 | uint32(planes[3*n+i])<<24
			if baseline != nil {
				u ^= math.Float32bits(float32(baseline[i]))
			}
			out[i] = float64(math.Float32frombits(u))
		}
		return out, nil

	default: // SchemeInt8
		return decodeInt8(b, baseline)
	}
}

// encodeInt8 quantizes the residual params−baseline(+ef) — or the raw
// values when baseline is nil — to the byte range of its own min/max. The
// 16-byte header stores the range; the quantization error of each parameter
// lands in ef for the stream's next encode.
func encodeInt8(params, baseline []float64, baseID uint64, ef []float64) (Blob, error) {
	n := len(params)
	res := make([]float64, n)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, p := range params {
		r := p
		if baseline != nil {
			r -= baseline[i]
		}
		if ef != nil {
			r += ef[i]
		}
		res[i] = r
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if n == 0 {
		lo, hi = 0, 0
	}
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		return Blob{}, fmt.Errorf("codec: int8 quantization needs finite residuals (range [%v, %v])", lo, hi)
	}
	span := hi - lo
	raw := make([]byte, 16+n)
	binary.LittleEndian.PutUint64(raw[0:], math.Float64bits(lo))
	binary.LittleEndian.PutUint64(raw[8:], math.Float64bits(hi))
	for i, r := range res {
		q := 0
		if span > 0 {
			q = int(math.Round((r - lo) / span * 255))
			if q < 0 {
				q = 0
			} else if q > 255 {
				q = 255
			}
		}
		raw[16+i] = byte(q)
		if ef != nil {
			dq := lo
			if span > 0 {
				dq = lo + span*float64(q)/255
			}
			ef[i] = r - dq
		}
	}
	data, err := deflateBytes(raw)
	if err != nil {
		return Blob{}, err
	}
	return Blob{Scheme: SchemeInt8, Baseline: baseID, Count: n, Data: data}, nil
}

func decodeInt8(b Blob, baseline []float64) ([]float64, error) {
	raw, err := inflateBytes(b.Data, 16+b.Count)
	if err != nil {
		return nil, err
	}
	lo := math.Float64frombits(binary.LittleEndian.Uint64(raw[0:]))
	hi := math.Float64frombits(binary.LittleEndian.Uint64(raw[8:]))
	span := hi - lo
	out := make([]float64, b.Count)
	for i := range out {
		v := lo
		if span > 0 {
			v = lo + span*float64(raw[16+i])/255
		}
		if baseline != nil {
			v += baseline[i]
		}
		out[i] = v
	}
	return out, nil
}

// xorShuffle64 XORs each parameter's float64 bits against the baseline's
// (zeros when baseline is nil) and transposes the n×8 little-endian byte
// matrix into eight planes — all lowest bytes first, all highest bytes
// last. Matching sign/exponent/mantissa-prefix bits become runs of zeros in
// the high planes, which is exactly what DEFLATE compresses best.
func xorShuffle64(params, baseline []float64) []byte {
	n := len(params)
	out := make([]byte, 8*n)
	for i, p := range params {
		u := math.Float64bits(p)
		if baseline != nil {
			u ^= math.Float64bits(baseline[i])
		}
		for b := 0; b < 8; b++ {
			out[b*n+i] = byte(u >> (8 * b))
		}
	}
	return out
}

// xorShuffle32 is xorShuffle64 for float32-cast values (four planes).
func xorShuffle32(params, baseline []float64) []byte {
	n := len(params)
	out := make([]byte, 4*n)
	for i, p := range params {
		u := math.Float32bits(float32(p))
		if baseline != nil {
			u ^= math.Float32bits(float32(baseline[i]))
		}
		out[i] = byte(u)
		out[n+i] = byte(u >> 8)
		out[2*n+i] = byte(u >> 16)
		out[3*n+i] = byte(u >> 24)
	}
	return out
}

func deflateBytes(p []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		return nil, fmt.Errorf("codec: deflate init: %w", err)
	}
	if _, err := w.Write(p); err != nil {
		return nil, fmt.Errorf("codec: deflate: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("codec: deflate close: %w", err)
	}
	return buf.Bytes(), nil
}

func inflateBytes(p []byte, want int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(p))
	out := make([]byte, want)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("codec: inflate %d bytes: %w", want, err)
	}
	var tail [1]byte
	if n, err := r.Read(tail[:]); n != 0 || (err != nil && err != io.EOF) {
		return nil, fmt.Errorf("codec: payload longer than declared %d bytes", want)
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("codec: inflate close: %w", err)
	}
	return out, nil
}
