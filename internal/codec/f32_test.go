package codec

import (
	"math"
	"math/rand"
	"testing"
)

// randVec32 draws float32 values as raw bit patterns, sampling NaN
// payloads, denormals and infinities like the float64 tests do.
func randVec32(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = math.Float32frombits(rng.Uint32())
	}
	return v
}

func bits32Equal(t *testing.T, got, want []float32, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: param %d = %x, want %x", label,
				i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

// TestFloat32DirectRoundtripBitExact: Encode32 → Decode32 preserves every
// float32 bit pattern, with and without a baseline. Unlike the float64
// entry point, the direct float32 path is lossless for float32 senders.
func TestFloat32DirectRoundtripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		params := randVec32(rng, n)
		blob, err := Encode32(params, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode32(blob, nil)
		if err != nil {
			t.Fatal(err)
		}
		bits32Equal(t, got, params, "no baseline")

		if n == 0 {
			continue
		}
		baseline := randVec32(rng, n)
		blob, err = Encode32(params, baseline, 42)
		if err != nil {
			t.Fatal(err)
		}
		got, err = Decode32(blob, baseline)
		if err != nil {
			t.Fatal(err)
		}
		bits32Equal(t, got, params, "with baseline")
	}
}

// TestFloat32DirectWireCompatible: the direct float32 API and the float64
// API produce and consume the same wire format. Encoding a vector through
// either entry point yields byte-identical blobs, and blobs decode across
// APIs (float64 Decode widens the same bits Decode32 returns).
func TestFloat32DirectWireCompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 150
	params64 := make([]float64, n)
	baseline64 := make([]float64, n)
	for i := range params64 {
		params64[i] = rng.NormFloat64()
		baseline64[i] = rng.NormFloat64()
	}
	params32 := make([]float32, n)
	baseline32 := make([]float32, n)
	for i := range params32 {
		params32[i] = float32(params64[i])
		baseline32[i] = float32(baseline64[i])
	}

	for _, withBase := range []bool{false, true} {
		var b64, b32 []float64
		var b32f []float32
		var id uint64
		if withBase {
			b64, b32f, id = baseline64, baseline32, 7
			b32 = baseline64
		}
		from64, err := Encode(SchemeFloat32, params64, b64, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		from32, err := Encode32(params32, b32f, id)
		if err != nil {
			t.Fatal(err)
		}
		if string(from64.Data) != string(from32.Data) || from64.Count != from32.Count {
			t.Fatalf("withBase=%v: Encode and Encode32 emit different payloads", withBase)
		}

		// f64-encoded blob → f32 decoder.
		narrow, err := Decode32(from64, b32f)
		if err != nil {
			t.Fatal(err)
		}
		bits32Equal(t, narrow, params32, "Decode32 of Encode blob")

		// f32-encoded blob → f64 decoder.
		wide, err := Decode(from32, b32)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range wide {
			if float32(w) != params32[i] || w != float64(params32[i]) {
				t.Fatalf("withBase=%v: Decode widened param %d to %v, want exact %v", withBase, i, w, params32[i])
			}
		}
	}
}

// TestFloat32DirectValidation mirrors the Encode/Decode validation contract
// for the float32 entry points.
func TestFloat32DirectValidation(t *testing.T) {
	params := []float32{1, 2, 3}
	if _, err := Encode32(params, []float32{1, 2, 3}, 0); err == nil {
		t.Fatal("baseline without id accepted")
	}
	if _, err := Encode32(params, nil, 9); err == nil {
		t.Fatal("id without baseline accepted")
	}
	if _, err := Encode32(params, []float32{1}, 9); err == nil {
		t.Fatal("short baseline accepted")
	}
	blob, err := Encode32(params, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode32(blob, []float32{1, 2, 3}); err == nil {
		t.Fatal("unsolicited baseline accepted")
	}
	blob.Scheme = SchemeDelta
	if _, err := Decode32(blob, nil); err == nil {
		t.Fatal("non-float32 scheme accepted")
	}
}
