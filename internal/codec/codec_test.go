package codec

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// adversarial holds the float64 special cases the lossless contract must
// preserve bit-for-bit.
var adversarial = []float64{
	0, math.Copysign(0, -1),
	math.Inf(1), math.Inf(-1),
	math.NaN(),
	math.Float64frombits(0x7FF8DEADBEEF0001), // quiet NaN with payload
	math.Float64frombits(0x7FF0000000000001), // signalling-NaN bit pattern
	math.Float64frombits(1),                  // smallest positive denormal
	math.Float64frombits(0x000FFFFFFFFFFFFF), // largest denormal
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	1.0, -1.0, math.Pi, 1e-300, -1e300,
}

func bitsEqual(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: param %d = %x, want %x", label,
				i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestLosslessRoundtripBitExact drives the lossless schemes over random and
// adversarial vectors, with and without a baseline, and demands bit
// identity. Random values are drawn as raw bit patterns, so the space of
// NaN payloads, denormals and infinities is sampled too.
func TestLosslessRoundtripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		params := make([]float64, n)
		baseline := make([]float64, n)
		for i := range params {
			if trial%2 == 0 {
				params[i] = math.Float64frombits(rng.Uint64())
				baseline[i] = math.Float64frombits(rng.Uint64())
			} else {
				params[i] = rng.NormFloat64()
				baseline[i] = params[i] + 1e-4*rng.NormFloat64()
			}
		}
		copy(params, adversarial[:min(n, len(adversarial))])
		for _, scheme := range []Scheme{SchemeDelta, SchemeRaw} {
			// Without baseline.
			blob, err := Encode(scheme, params, nil, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(blob, nil)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, got, params, scheme.String()+" no-baseline")
			// With baseline (raw ignores it by contract).
			if scheme == SchemeRaw {
				continue
			}
			blob, err = Encode(scheme, params, baseline, 42, nil)
			if err != nil {
				t.Fatal(err)
			}
			if blob.Baseline != 42 {
				t.Fatalf("blob baseline %d, want 42", blob.Baseline)
			}
			got, err = Decode(blob, baseline)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, got, params, scheme.String()+" baseline")
		}
	}
}

// TestDeltaCompressesSGDLikeVectors checks the delta path shrinks the
// payload on its target workloads. Low mantissa bits of SGD-perturbed
// float64s are incompressible noise, so a vector a relative ~1e-3 from its
// baseline only zeroes the sign/exponent/mantissa-prefix planes (measured
// ~1.1-1.25x on real MLP training vectors — the big wire savings in
// internal/fed are structural, not entropy); the ratio grows as vectors
// agree more and becomes extreme for identical ones.
func TestDeltaCompressesSGDLikeVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4096
	base := make([]float64, n)
	params := make([]float64, n)
	for i := range base {
		base[i] = 0.3 * rng.NormFloat64()
		params[i] = base[i] * (1 + 1e-3*rng.NormFloat64())
	}
	raw := 8 * n
	blob, err := Encode(SchemeDelta, params, base, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob.Data) >= raw*15/16 {
		t.Fatalf("delta blob %d bytes, want < %d (raw %d)", len(blob.Data), raw*15/16, raw)
	}
	t.Logf("sgd-like delta: %d -> %d bytes (%.2fx)", raw, len(blob.Data), float64(raw)/float64(len(blob.Data)))

	// An unchanged vector must collapse to almost nothing.
	same, err := Encode(SchemeDelta, base, base, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Data) >= raw/100 {
		t.Fatalf("identical-vector delta blob %d bytes, want < %d", len(same.Data), raw/100)
	}

	// A sparse change (1% of params touched) should compress hard too.
	sparse := append([]float64(nil), base...)
	for i := 0; i < n/100; i++ {
		sparse[rng.Intn(n)] += rng.NormFloat64()
	}
	sp, err := Encode(SchemeDelta, sparse, base, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Data) >= raw/10 {
		t.Fatalf("sparse-change delta blob %d bytes, want < %d", len(sp.Data), raw/10)
	}
}

func TestFloat32RoundtripIsCastExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 257
	params := make([]float64, n)
	base := make([]float64, n)
	for i := range params {
		params[i] = rng.NormFloat64() * 10
		base[i] = params[i] + 0.01*rng.NormFloat64()
	}
	for _, withBase := range []bool{false, true} {
		var blob Blob
		var err error
		if withBase {
			blob, err = Encode(SchemeFloat32, params, base, 9, nil)
		} else {
			blob, err = Encode(SchemeFloat32, params, nil, 0, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		bl := base
		if !withBase {
			bl = nil
		}
		got, err := Decode(blob, bl)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			want := float64(float32(params[i]))
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("withBase=%v param %d = %v, want float32 cast %v", withBase, i, got[i], want)
			}
		}
	}
}

func TestInt8QuantizationBoundAndErrorFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 512
	params := make([]float64, n)
	base := make([]float64, n)
	for i := range params {
		base[i] = rng.NormFloat64()
		params[i] = base[i] + 0.05*rng.NormFloat64()
	}
	ef := make([]float64, n)
	blob, err := Encode(SchemeInt8, params, base, 5, ef)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob, base)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range params {
		r := params[i] - base[i]
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	step := (hi - lo) / 255
	for i := range got {
		if diff := math.Abs(got[i] - params[i]); diff > step+1e-12 {
			t.Fatalf("param %d off by %v, quantization step %v", i, diff, step)
		}
		if math.Abs(ef[i]) > step+1e-12 {
			t.Fatalf("error feedback %d = %v exceeds step %v", i, ef[i], step)
		}
	}
}

// TestInt8ErrorFeedbackConverges repeatedly transfers the same target over
// one stream: with error feedback the mean of the decoded vectors converges
// to the target (the per-transfer quantization errors telescope).
func TestInt8ErrorFeedbackConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 64
	params := make([]float64, n)
	base := make([]float64, n)
	for i := range params {
		base[i] = rng.NormFloat64()
		params[i] = base[i] + 0.1*rng.NormFloat64()
	}
	ef := make([]float64, n)
	sum := make([]float64, n)
	const rounds = 200
	for k := 0; k < rounds; k++ {
		blob, err := Encode(SchemeInt8, params, base, 1, ef)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(blob, base)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sum {
			sum[i] += got[i]
		}
	}
	for i := range sum {
		mean := sum[i] / rounds
		if math.Abs(mean-params[i]) > 1e-3 {
			t.Fatalf("param %d mean %v, want %v (error feedback not cancelling)", i, mean, params[i])
		}
	}
}

// TestInt8WithoutBaselineQuantizesValues covers the baseline-free int8
// path: the raw values themselves are range-quantized, within one
// quantization step of the original.
func TestInt8WithoutBaselineQuantizesValues(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 256
	params := make([]float64, n)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	blob, err := Encode(SchemeInt8, params, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if blob.Scheme != SchemeInt8 || blob.Baseline != 0 {
		t.Fatalf("blob scheme %v baseline %d", blob.Scheme, blob.Baseline)
	}
	got, err := Decode(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range params {
		lo = math.Min(lo, p)
		hi = math.Max(hi, p)
	}
	step := (hi - lo) / 255
	for i := range got {
		if diff := math.Abs(got[i] - params[i]); diff > step+1e-12 {
			t.Fatalf("param %d off by %v, quantization step %v", i, diff, step)
		}
	}
}

func TestInt8RejectsNonFiniteResidual(t *testing.T) {
	params := []float64{1, math.Inf(1)}
	base := []float64{0, 0}
	if _, err := Encode(SchemeInt8, params, base, 1, nil); err == nil {
		t.Fatal("expected error for non-finite residual")
	}
}

func TestSchemeParseAndString(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Fatalf("ParseScheme(%q) = %v", s.String(), got)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseScheme("zstd"); err == nil {
		t.Fatal("expected error for unknown scheme name")
	}
	if err := Scheme(99).Validate(); err == nil {
		t.Fatal("expected error for unknown scheme value")
	}
}

func TestEncodeValidation(t *testing.T) {
	params := []float64{1, 2}
	if _, err := Encode(Scheme(99), params, nil, 0, nil); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := Encode(SchemeDelta, params, []float64{1}, 1, nil); err == nil {
		t.Fatal("baseline length mismatch accepted")
	}
	if _, err := Encode(SchemeDelta, params, []float64{1, 2}, 0, nil); err == nil {
		t.Fatal("baseline without id accepted")
	}
	if _, err := Encode(SchemeDelta, params, nil, 3, nil); err == nil {
		t.Fatal("id without baseline accepted")
	}
	if _, err := Encode(SchemeInt8, params, []float64{0, 0}, 1, []float64{0}); err == nil {
		t.Fatal("error-feedback length mismatch accepted")
	}
}

func TestDecodeValidation(t *testing.T) {
	params := []float64{1, 2, 3}
	blob, err := Encode(SchemeDelta, params, []float64{0, 0, 0}, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline required but absent: ErrUnknownBaseline.
	if _, err := Decode(blob, nil); !errors.Is(err, ErrUnknownBaseline) {
		t.Fatalf("err = %v, want ErrUnknownBaseline", err)
	}
	// Baseline of the wrong length.
	if _, err := Decode(blob, []float64{0}); err == nil {
		t.Fatal("wrong-length baseline accepted")
	}
	// Unexpected baseline for a baseline-free blob.
	raw, err := Encode(SchemeRaw, params, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(raw, []float64{0, 0, 0}); err == nil {
		t.Fatal("spurious baseline accepted")
	}
	// Truncated payloads.
	short := raw
	short.Data = short.Data[:8]
	if _, err := Decode(short, nil); err == nil {
		t.Fatal("truncated raw blob accepted")
	}
	trunc := blob
	trunc.Data = trunc.Data[:len(trunc.Data)/2]
	if _, err := Decode(trunc, []float64{0, 0, 0}); err == nil {
		t.Fatal("truncated delta blob accepted")
	}
	// Declared count shorter than the payload.
	lying := blob
	lying.Count = 2
	if _, err := Decode(lying, []float64{0, 0}); err == nil {
		t.Fatal("over-long payload accepted")
	}
	if _, err := Decode(Blob{Scheme: Scheme(88)}, nil); err == nil {
		t.Fatal("unknown blob scheme accepted")
	}
}

func TestEmptyVector(t *testing.T) {
	for _, scheme := range Schemes() {
		blob, err := Encode(scheme, nil, nil, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(blob, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("scheme %v: %d params from empty vector", scheme, len(got))
		}
	}
}
