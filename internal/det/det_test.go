package det

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"edge2": 2, "edge0": 0, "edge1": 1}
	want := []string{"edge0", "edge1", "edge2"}
	for i := 0; i < 10; i++ { // map order is randomized per iteration attempt
		if got := SortedKeys(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
	if got := SortedKeys(map[int]string{}); len(got) != 0 {
		t.Fatalf("SortedKeys on empty map = %v, want empty", got)
	}
	ints := map[int]bool{3: true, -1: true, 2: true}
	if got := SortedKeys(ints); !reflect.DeepEqual(got, []int{-1, 2, 3}) {
		t.Fatalf("SortedKeys(int keys) = %v", got)
	}
}
