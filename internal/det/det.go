// Package det holds tiny helpers for writing deterministic code over Go's
// intentionally order-randomized maps. It exists so that the one unordered
// map walk the codebase needs — collecting keys to sort them — lives in a
// single audited place instead of being re-spelled (and re-reviewed)
// wherever machlint's maprange check fires.
package det

import (
	"cmp"
	"slices"
)

// SortedKeys returns the keys of m in ascending order. Iterating
// `for _, k := range det.SortedKeys(m)` is the canonical remediation for a
// maprange finding: the walk below is order-blind because sorting erases
// the randomized iteration order before any caller observes it.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	//machlint:allow maprange keys are sorted before being returned; this helper is the remediation maprange prescribes
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
