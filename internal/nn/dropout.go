package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/mach-fl/mach/internal/tensor"
)

// Dropout randomly zeroes activations with probability p during training and
// scales survivors by 1/(1−p) (inverted dropout), so inference needs no
// rescaling. Evaluation passes (train=false) are identity.
type Dropout struct {
	name string
	p    float64
	rng  *rand.Rand
	mask []bool
}

var _ Layer = (*Dropout)(nil)

// NewDropout returns a dropout layer with drop probability p ∈ [0, 1).
func NewDropout(name string, p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: %s drop probability %v outside [0,1)", name, p))
	}
	return &Dropout{name: name, p: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	//machlint:allow floateq p is configured, not computed; exact zero means dropout disabled
	if !train || d.p == 0 {
		return x
	}
	out := x.Clone()
	if cap(d.mask) < out.Len() {
		d.mask = make([]bool, out.Len())
	}
	d.mask = d.mask[:out.Len()]
	scale := 1 / (1 - d.p)
	data := out.Data()
	for i := range data {
		if d.rng.Float64() < d.p {
			data[i] = 0
			d.mask[i] = false
		} else {
			data[i] *= scale
			d.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(d.mask) != grad.Len() {
		// Forward ran in eval mode or with p == 0: identity.
		return grad
	}
	out := grad.Clone()
	scale := 1 / (1 - d.p)
	data := out.Data()
	for i := range data {
		if d.mask[i] {
			data[i] *= scale
		} else {
			data[i] = 0
		}
	}
	return out
}

func (d *Dropout) clone() Layer {
	return &Dropout{name: d.name, p: d.p, rng: rand.New(rand.NewSource(d.rng.Int63()))}
}

// LRSchedule adjusts an optimizer's learning rate over training rounds.
type LRSchedule interface {
	// Rate returns the learning rate for the given round (0-based).
	Rate(round int) float64
}

// ConstantLR keeps the initial rate.
type ConstantLR struct{ LR float64 }

// Rate implements LRSchedule.
func (s ConstantLR) Rate(int) float64 { return s.LR }

// StepDecayLR multiplies the rate by Factor every Every rounds.
type StepDecayLR struct {
	LR     float64
	Factor float64
	Every  int
}

// Rate implements LRSchedule.
func (s StepDecayLR) Rate(round int) float64 {
	if s.Every <= 0 {
		return s.LR
	}
	r := s.LR
	for i := s.Every; i <= round; i += s.Every {
		r *= s.Factor
	}
	return r
}

// CosineLR anneals from LR to MinLR over Horizon rounds.
type CosineLR struct {
	LR      float64
	MinLR   float64
	Horizon int
}

// Rate implements LRSchedule.
func (s CosineLR) Rate(round int) float64 {
	if s.Horizon <= 0 || round >= s.Horizon {
		return s.MinLR
	}
	frac := float64(round) / float64(s.Horizon)
	return s.MinLR + 0.5*(s.LR-s.MinLR)*(1+math.Cos(math.Pi*frac))
}
