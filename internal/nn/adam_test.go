package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mach-fl/mach/internal/tensor"
)

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ½‖w − target‖² by feeding grad = w − target.
	target := []float64{3, -2, 0.5}
	p := newParam("w", tensor.New(3))
	opt := NewAdam(0.05)
	for step := 0; step < 500; step++ {
		for i := range target {
			p.Grad.Data()[i] = p.Value.Data()[i] - target[i]
		}
		opt.Step([]*Param{p})
	}
	for i, want := range target {
		if math.Abs(p.Value.Data()[i]-want) > 0.05 {
			t.Fatalf("w[%d] = %v, want %v", i, p.Value.Data()[i], want)
		}
	}
}

func TestAdamOptionsAndRate(t *testing.T) {
	a := NewAdam(0.1, WithBetas(0.8, 0.9), WithEpsilon(1e-6))
	if a.beta1 != 0.8 || a.beta2 != 0.9 || a.epsilon != 1e-6 {
		t.Fatal("options not applied")
	}
	if a.LearningRate() != 0.1 {
		t.Fatal("learning rate")
	}
	a.SetLearningRate(0.2)
	if a.LearningRate() != 0.2 {
		t.Fatal("SetLearningRate")
	}
}

func TestAdamFirstStepIsSignedLR(t *testing.T) {
	// With bias correction, the very first Adam update is ≈ −lr·sign(g).
	p := newParam("w", tensor.New(2))
	p.Grad.Data()[0] = 5
	p.Grad.Data()[1] = -0.001
	NewAdam(0.1).Step([]*Param{p})
	if math.Abs(p.Value.Data()[0]+0.1) > 1e-3 {
		t.Fatalf("first step for positive grad: %v, want ≈ -0.1", p.Value.Data()[0])
	}
	if math.Abs(p.Value.Data()[1]-0.1) > 1e-3 {
		t.Fatalf("first step for negative grad: %v, want ≈ 0.1", p.Value.Data()[1])
	}
}

func TestAdamTrainsMLPFasterThanTinySGD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func() (*Network, *tensor.Tensor, []int) {
		net := NewMLP("adam", 2, []int{8}, 2, rand.New(rand.NewSource(7)))
		x, y := twoBlobs(rng, 64)
		return net, x, y
	}
	netA, xA, yA := mk()
	adam := NewAdam(0.01)
	var lossAdam float64
	for i := 0; i < 60; i++ {
		lossAdam, _ = netA.TrainStep(xA, yA, adam)
	}
	netS, xS, yS := mk()
	sgd := NewSGD(0.0001) // deliberately tiny: Adam's invariance should win
	var lossSGD float64
	for i := 0; i < 60; i++ {
		lossSGD, _ = netS.TrainStep(xS, yS, sgd)
	}
	if lossAdam >= lossSGD {
		t.Fatalf("adam loss %v not below tiny-lr sgd loss %v", lossAdam, lossSGD)
	}
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDropout("drop", 0.5, rng)
	x := tensor.Full(2, 1, 100)

	// Eval mode: identity.
	out := d.Forward(x, false)
	for i, v := range out.Data() {
		if v != 2 {
			t.Fatalf("eval output[%d] = %v", i, v)
		}
	}

	// Train mode: some zeros, survivors scaled by 1/(1-p) = 2.
	out = d.Forward(x, true)
	zeros, scaled := 0, 0
	for _, v := range out.Data() {
		switch v {
		case 0:
			zeros++
		case 4:
			scaled++
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatalf("dropout degenerate: %d zeros, %d survivors", zeros, scaled)
	}

	// Backward masks gradients consistently with the forward mask.
	grad := tensor.Full(1, 1, 100)
	back := d.Backward(grad)
	for i, v := range out.Data() {
		want := 0.0
		if v != 0 {
			want = 2
		}
		if back.Data()[i] != want {
			t.Fatalf("backward[%d] = %v, want %v", i, back.Data()[i], want)
		}
	}
}

func TestDropoutZeroProbabilityIsIdentity(t *testing.T) {
	d := NewDropout("none", 0, rand.New(rand.NewSource(3)))
	x := tensor.Full(1.5, 1, 10)
	out := d.Forward(x, true)
	for _, v := range out.Data() {
		if v != 1.5 {
			t.Fatal("p=0 dropout must be identity")
		}
	}
}

func TestDropoutInvalidProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout("bad", 1, rand.New(rand.NewSource(4)))
}

func TestDropoutExpectationPreserved(t *testing.T) {
	// Inverted dropout preserves the activation expectation.
	rng := rand.New(rand.NewSource(5))
	d := NewDropout("exp", 0.3, rng)
	x := tensor.Full(1, 1, 20000)
	out := d.Forward(x, true)
	mean := out.Mean()
	if math.Abs(mean-1) > 0.03 {
		t.Fatalf("post-dropout mean %v, want ≈ 1", mean)
	}
}

func TestLRSchedules(t *testing.T) {
	if (ConstantLR{LR: 0.1}).Rate(100) != 0.1 {
		t.Fatal("constant schedule")
	}
	sd := StepDecayLR{LR: 1, Factor: 0.5, Every: 10}
	tests := []struct {
		round int
		want  float64
	}{
		{0, 1}, {9, 1}, {10, 0.5}, {19, 0.5}, {20, 0.25},
	}
	for _, tt := range tests {
		if got := sd.Rate(tt.round); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("step decay at %d = %v, want %v", tt.round, got, tt.want)
		}
	}
	if (StepDecayLR{LR: 1, Factor: 0.5}).Rate(100) != 1 {
		t.Fatal("Every=0 must keep rate")
	}
	cos := CosineLR{LR: 1, MinLR: 0.1, Horizon: 100}
	if got := cos.Rate(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine start %v", got)
	}
	if got := cos.Rate(100); got != 0.1 {
		t.Fatalf("cosine end %v", got)
	}
	mid := cos.Rate(50)
	if mid <= 0.1 || mid >= 1 {
		t.Fatalf("cosine mid %v outside (0.1, 1)", mid)
	}
	prev := cos.Rate(0)
	for r := 10; r <= 100; r += 10 {
		cur := cos.Rate(r)
		if cur > prev+1e-12 {
			t.Fatalf("cosine not monotone at %d", r)
		}
		prev = cur
	}
}

func TestDropoutInNetworkGradcheckEvalMode(t *testing.T) {
	// With train=false dropout is identity, so a network containing it
	// must still pass the numerical gradient check (Backward sees the
	// masks only in training mode; here we train-forward once with p=0).
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork("dropnet",
		NewDense("fc1", 4, 6, rng),
		NewDropout("drop", 0, rng), // p=0 keeps determinism for the check
		NewReLU("r"),
		NewDense("fc2", 6, 3, rng),
	)
	x := tensor.Randn(rng, 1, 3, 4)
	checkGradients(t, net, x, []int{0, 2, 1}, rng)
}
