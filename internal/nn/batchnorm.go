package nn

import (
	"fmt"
	"math"

	"github.com/mach-fl/mach/internal/tensor"
)

// BatchNorm1D normalizes each feature of a [B, F] batch to zero mean and
// unit variance, then applies a learned affine transform γ·x̂ + β. Running
// statistics accumulated during training are used at evaluation time.
//
// Note for FL use: batch-norm statistics are part of the model state but are
// not trainable parameters; in federated settings they are a known source of
// client drift (each device's running stats track its own distribution).
// This implementation keeps the running stats out of the parameter vector,
// matching the common FedAvg practice of aggregating only weights.
type BatchNorm1D struct {
	name     string
	features int
	momentum float64
	epsilon  float64

	gamma *Param
	beta  *Param

	runMean []float64
	runVar  []float64

	// cached training-forward intermediates
	lastXHat *tensor.Tensor
	lastStd  []float64
}

var _ Layer = (*BatchNorm1D)(nil)

// NewBatchNorm1D returns a batch-norm layer over the given feature width.
func NewBatchNorm1D(name string, features int) *BatchNorm1D {
	if features <= 0 {
		panic(fmt.Sprintf("nn: %s needs positive feature width", name))
	}
	b := &BatchNorm1D{
		name:     name,
		features: features,
		momentum: 0.9,
		epsilon:  1e-5,
		gamma:    newParam(name+".gamma", tensor.Full(1, features)),
		beta:     newParam(name+".beta", tensor.New(features)),
		runMean:  make([]float64, features),
		runVar:   make([]float64, features),
	}
	for i := range b.runVar {
		b.runVar[i] = 1
	}
	return b
}

// Name implements Layer.
func (b *BatchNorm1D) Name() string { return b.name }

// Params implements Layer.
func (b *BatchNorm1D) Params() []*Param { return []*Param{b.gamma, b.beta} }

// Forward implements Layer.
func (b *BatchNorm1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != b.features {
		panic(fmt.Sprintf("nn: %s expects [B, %d], got %v", b.name, b.features, x.Shape()))
	}
	batch := x.Dim(0)
	out := tensor.New(batch, b.features)
	xd, od := x.Data(), out.Data()
	g, bt := b.gamma.Value.Data(), b.beta.Value.Data()

	if !train {
		for i := 0; i < batch; i++ {
			for j := 0; j < b.features; j++ {
				xh := (xd[i*b.features+j] - b.runMean[j]) / math.Sqrt(b.runVar[j]+b.epsilon)
				od[i*b.features+j] = g[j]*xh + bt[j]
			}
		}
		return out
	}

	mean := make([]float64, b.features)
	for i := 0; i < batch; i++ {
		for j := 0; j < b.features; j++ {
			mean[j] += xd[i*b.features+j]
		}
	}
	for j := range mean {
		mean[j] /= float64(batch)
	}
	variance := make([]float64, b.features)
	for i := 0; i < batch; i++ {
		for j := 0; j < b.features; j++ {
			d := xd[i*b.features+j] - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= float64(batch)
	}

	b.lastXHat = tensor.New(batch, b.features)
	b.lastStd = make([]float64, b.features)
	xh := b.lastXHat.Data()
	for j := 0; j < b.features; j++ {
		b.lastStd[j] = math.Sqrt(variance[j] + b.epsilon)
		b.runMean[j] = b.momentum*b.runMean[j] + (1-b.momentum)*mean[j]
		b.runVar[j] = b.momentum*b.runVar[j] + (1-b.momentum)*variance[j]
	}
	for i := 0; i < batch; i++ {
		for j := 0; j < b.features; j++ {
			v := (xd[i*b.features+j] - mean[j]) / b.lastStd[j]
			xh[i*b.features+j] = v
			od[i*b.features+j] = g[j]*v + bt[j]
		}
	}
	return out
}

// Backward implements Layer using the standard batch-norm gradient:
//
//	dx̂ = dy·γ
//	dx = (1/N·σ)·(N·dx̂ − Σdx̂ − x̂·Σ(dx̂·x̂))
func (b *BatchNorm1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		panic("nn: BatchNorm1D.Backward called before Forward(train=true)")
	}
	batch := grad.Dim(0)
	n := float64(batch)
	gd := grad.Data()
	xh := b.lastXHat.Data()
	g := b.gamma.Value.Data()
	gGrad := b.gamma.Grad.Data()
	bGrad := b.beta.Grad.Data()

	sumDxhat := make([]float64, b.features)
	sumDxhatXhat := make([]float64, b.features)
	for i := 0; i < batch; i++ {
		for j := 0; j < b.features; j++ {
			dy := gd[i*b.features+j]
			x := xh[i*b.features+j]
			gGrad[j] += dy * x
			bGrad[j] += dy
			dxh := dy * g[j]
			sumDxhat[j] += dxh
			sumDxhatXhat[j] += dxh * x
		}
	}
	dx := tensor.New(batch, b.features)
	dd := dx.Data()
	for i := 0; i < batch; i++ {
		for j := 0; j < b.features; j++ {
			dxh := gd[i*b.features+j] * g[j]
			dd[i*b.features+j] = (n*dxh - sumDxhat[j] - xh[i*b.features+j]*sumDxhatXhat[j]) / (n * b.lastStd[j])
		}
	}
	return dx
}

func (b *BatchNorm1D) clone() Layer {
	c := NewBatchNorm1D(b.name, b.features)
	copy(c.gamma.Value.Data(), b.gamma.Value.Data())
	copy(c.beta.Value.Data(), b.beta.Value.Data())
	copy(c.runMean, b.runMean)
	copy(c.runVar, b.runVar)
	return c
}
