package nn

import (
	"math/rand"
	"testing"

	"github.com/mach-fl/mach/internal/tensor"
)

// TestTrainStepSteadyStateZeroAllocsMLP pins the layer-scratch contract on
// the dense path: after the first step installs every reusable buffer, a
// training step with a fixed batch size allocates nothing.
func TestTrainStepSteadyStateZeroAllocsMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewMLP("alloc", 16, []int{32, 16}, 10, rng)
	opt := NewSGD(0.05)
	x := tensor.Randn(rng, 1, 8, 16)
	y := make([]int, 8)
	for i := range y {
		y[i] = rng.Intn(10)
	}
	net.TrainStep(x, y, opt) // warm-up installs the buffers
	allocs := testing.AllocsPerRun(20, func() {
		net.TrainStep(x, y, opt)
	})
	if allocs != 0 {
		t.Fatalf("steady-state TrainStep allocates %v objects per call", allocs)
	}
}

// TestForwardReusedBufferStillCorrect guards the subtle half of buffer
// reuse: a second forward pass through the same network must produce the
// same values it would from fresh buffers.
func TestForwardReusedBufferStillCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewMLP("reuse", 16, []int{16}, 10, rng)
	x := tensor.Randn(rng, 1, 4, 16)
	first := net.Forward(x, false).Clone()
	again := net.Forward(x, false)
	for i, v := range first.Data() {
		if again.Data()[i] != v {
			t.Fatalf("reused forward differs at %d: %v vs %v", i, again.Data()[i], v)
		}
	}
}
