package nn

import (
	"math"

	"github.com/mach-fl/mach/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2015) with bias-corrected
// first and second moment estimates. The HFL evaluation uses plain SGD as in
// the paper, but device-side adaptive optimizers are a common extension and
// the engine accepts any Optimizer.
type Adam struct {
	lr      float64
	beta1   float64
	beta2   float64
	epsilon float64

	step int
	m    map[*Param]*tensor.Tensor
	v    map[*Param]*tensor.Tensor
}

var _ Optimizer = (*Adam)(nil)

// AdamOption customizes an Adam optimizer.
type AdamOption func(*Adam)

// WithBetas sets the moment decay rates (defaults 0.9, 0.999).
func WithBetas(beta1, beta2 float64) AdamOption {
	return func(a *Adam) { a.beta1, a.beta2 = beta1, beta2 }
}

// WithEpsilon sets the denominator stabilizer (default 1e-8).
func WithEpsilon(eps float64) AdamOption {
	return func(a *Adam) { a.epsilon = eps }
}

// NewAdam returns an Adam optimizer with learning rate lr.
func NewAdam(lr float64, opts ...AdamOption) *Adam {
	a := &Adam{
		lr:      lr,
		beta1:   0.9,
		beta2:   0.999,
		epsilon: 1e-8,
		m:       make(map[*Param]*tensor.Tensor),
		v:       make(map[*Param]*tensor.Tensor),
	}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// LearningRate implements Optimizer.
func (a *Adam) LearningRate() float64 { return a.lr }

// SetLearningRate implements Optimizer.
func (a *Adam) SetLearningRate(lr float64) { a.lr = lr }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.step++
	c1 := 1 - math.Pow(a.beta1, float64(a.step))
	c2 := 1 - math.Pow(a.beta2, float64(a.step))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := a.v[p]
		md, vd := m.Data(), v.Data()
		gd, wd := p.Grad.Data(), p.Value.Data()
		for i, g := range gd {
			md[i] = a.beta1*md[i] + (1-a.beta1)*g
			vd[i] = a.beta2*vd[i] + (1-a.beta2)*g*g
			mHat := md[i] / c1
			vHat := vd[i] / c2
			wd[i] -= a.lr * mHat / (math.Sqrt(vHat) + a.epsilon)
		}
	}
}
