package nn

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/mach-fl/mach/internal/tensor"
)

// Network is an ordered stack of layers trained with softmax cross-entropy.
// Networks are not safe for concurrent use; every device in the simulator
// owns its own instance and exchanges flat parameter vectors.
type Network struct {
	name   string
	layers []Layer

	params   []*Param       // cached Params() result (layer stacks are immutable)
	lossGrad *tensor.Tensor // reusable loss-gradient scratch for TrainStep
}

// NewNetwork assembles a network from layers.
func NewNetwork(name string, layers ...Layer) *Network {
	return &Network{name: name, layers: layers}
}

// Name returns the architecture name.
func (n *Network) Name() string { return n.name }

// Layers returns the layer stack (not a copy; do not mutate).
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs the batch input through all layers.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient through all layers in reverse,
// accumulating parameter gradients, and returns the input gradient.
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters in layer order. The slice is
// cached — the layer stack never changes after construction — so the
// per-step Param walks (ZeroGrad, optimizer steps, norm reductions) stop
// allocating.
func (n *Network) Params() []*Param {
	if n.params == nil {
		for _, l := range n.layers {
			n.params = append(n.params, l.Params()...)
		}
	}
	return n.params
}

// ZeroGrad clears all accumulated parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Len()
	}
	return total
}

// ParamVector flattens all parameters into a single vector in layer order.
func (n *Network) ParamVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		out = append(out, p.Value.Data()...)
	}
	return out
}

// ParamVectorInto appends the flat parameter vector to dst[:0] and returns
// the resulting slice, reusing dst's capacity when possible. Callers that
// hold one buffer per device avoid re-allocating an upload vector every
// round; the returned slice is only valid until the next call with the same
// buffer.
func (n *Network) ParamVectorInto(dst []float64) []float64 {
	dst = dst[:0]
	for _, p := range n.Params() {
		dst = append(dst, p.Value.Data()...)
	}
	return dst
}

// SetParamVector loads a flat vector produced by ParamVector (on this or a
// structurally identical network) back into the parameters.
func (n *Network) SetParamVector(v []float64) error {
	if len(v) != n.NumParams() {
		return fmt.Errorf("nn: parameter vector length %d does not match network %q (%d params)", len(v), n.name, n.NumParams())
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.Value.Data(), v[off:off+p.Value.Len()])
		off += p.Value.Len()
	}
	return nil
}

// GradVector flattens all accumulated gradients into a single vector.
func (n *Network) GradVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		out = append(out, p.Grad.Data()...)
	}
	return out
}

// GradSquaredNorm returns ‖∇‖² over all accumulated parameter gradients.
// This is the quantity whose per-device upper bound G²_m drives the MACH
// sampling strategy (Assumption 3 in the paper).
func (n *Network) GradSquaredNorm() float64 {
	s := 0.0
	for _, p := range n.Params() {
		s += p.Grad.SquaredNorm()
	}
	return s
}

// Clone returns a deep structural copy with the same parameter values and
// zeroed gradients. The clone shares no storage with the original.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		layers[i] = l.clone()
	}
	return &Network{name: n.name, layers: layers}
}

// TrainStep runs one SGD minibatch: forward, softmax cross-entropy, backward,
// optimizer step. It returns the batch loss and the squared L2 norm of the
// full stochastic gradient ‖g(w,ξ)‖² measured before the update, which feeds
// the experience-updating buffers of MACH.
func (n *Network) TrainStep(x *tensor.Tensor, labels []int, opt Optimizer) (loss, gradSqNorm float64) {
	n.ZeroGrad()
	logits := n.Forward(x, true)
	n.lossGrad = ensure2(n.lossGrad, logits.Dim(0), logits.Dim(1))
	loss = SoftmaxCrossEntropyInto(logits, labels, n.lossGrad)
	n.Backward(n.lossGrad)
	gradSqNorm = n.GradSquaredNorm()
	opt.Step(n.Params())
	return loss, gradSqNorm
}

// Evaluate returns classification accuracy and mean loss of the network on
// inputs x with integer labels, without touching cached training state.
func (n *Network) Evaluate(x *tensor.Tensor, labels []int) (accuracy, loss float64) {
	correct, lossSum := n.EvaluateSums(x, labels)
	// Mean via multiplication by 1/B to keep the value bit-identical to the
	// historical SoftmaxCrossEntropy mean (which scaled by invB).
	return float64(correct) / float64(len(labels)), lossSum * (1.0 / float64(len(labels)))
}

// EvaluateSums returns the raw correct-prediction count and summed
// cross-entropy loss for a batch, without materializing a loss gradient or
// prediction slice. Shard-based evaluation reduces these pairs exactly
// (integer count; loss sums combined in shard order).
func (n *Network) EvaluateSums(x *tensor.Tensor, labels []int) (correct int, lossSum float64) {
	logits := n.Forward(x, false)
	lossSum = CrossEntropyLossSum(logits, labels)
	batch, classes := logits.Dim(0), logits.Dim(1)
	ld := logits.Data()
	for i := 0; i < batch; i++ {
		row := ld[i*classes : (i+1)*classes]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return correct, lossSum
}

const paramMagic = uint32(0x4d414348) // "MACH"

// MarshalBinary serializes the parameter vector with a small header so
// checkpoints can be written to disk and exchanged between processes.
func (n *Network) MarshalBinary() ([]byte, error) {
	v := n.ParamVector()
	buf := make([]byte, 8+8*len(v))
	binary.LittleEndian.PutUint32(buf[0:], paramMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(v)))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(x))
	}
	return buf, nil
}

// UnmarshalBinary restores parameters serialized by MarshalBinary into a
// structurally identical network.
func (n *Network) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("nn: checkpoint too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != paramMagic {
		return fmt.Errorf("nn: bad checkpoint magic")
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	if len(data) != 8+8*count {
		return fmt.Errorf("nn: checkpoint declares %d params but holds %d bytes", count, len(data))
	}
	v := make([]float64, count)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+8*i:]))
	}
	return n.SetParamVector(v)
}
