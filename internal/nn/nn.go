// Package nn implements a small from-scratch neural-network library on top of
// internal/tensor. It provides exactly the pieces the paper's evaluation
// needs: dense and convolutional layers, ReLU, 2×2 max-pooling, softmax
// cross-entropy, plain SGD with optional momentum and weight decay, and the
// two CNN architectures used in the paper (2 conv + 2 fc for MNIST/FMNIST,
// 3 conv + 2 fc for CIFAR-10).
//
// All layers follow a simple contract: Forward caches whatever Backward
// needs, and Backward must be called with the gradient of the loss with
// respect to Forward's most recent output. Networks therefore are not safe
// for concurrent use; in the HFL simulator every device owns its own Network
// instance.
package nn

import (
	"github.com/mach-fl/mach/internal/tensor"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

func newParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// Layer is a differentiable network stage.
type Layer interface {
	// Name identifies the layer for debugging and serialization.
	Name() string
	// Forward computes the layer output for a batch input. When train is
	// true the layer caches intermediates for Backward.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the last Forward output,
	// accumulates parameter gradients, and returns the gradient w.r.t. the
	// layer input.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// clone returns a structural copy with freshly allocated parameters
	// holding the same values and no cached activations.
	clone() Layer
}
