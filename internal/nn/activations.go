package nn

import (
	"fmt"

	"github.com/mach-fl/mach/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	name string
	mask []bool // true where input > 0 on the last training forward

	fwdOut *tensor.Tensor // reusable output buffer; see ensureTensor
	bwdOut *tensor.Tensor
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.fwdOut = ensureTensor(r.fwdOut, x.Shape()...)
	out := r.fwdOut
	copy(out.Data(), x.Data())
	if train {
		if cap(r.mask) < out.Len() {
			r.mask = make([]bool, out.Len())
		}
		r.mask = r.mask[:out.Len()]
	}
	data := out.Data()
	for i, v := range data {
		pos := v > 0
		if !pos {
			data[i] = 0
		}
		if train {
			r.mask[i] = pos
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(r.mask) != grad.Len() {
		panic("nn: ReLU.Backward called before Forward(train=true)")
	}
	r.bwdOut = ensureTensor(r.bwdOut, grad.Shape()...)
	out := r.bwdOut
	copy(out.Data(), grad.Data())
	data := out.Data()
	for i := range data {
		if !r.mask[i] {
			data[i] = 0
		}
	}
	return out
}

func (r *ReLU) clone() Layer { return &ReLU{name: r.name} }

// Flatten reshapes [B, C, H, W] (or any rank ≥ 2) into [B, rest].
type Flatten struct {
	name      string
	lastShape []int

	fwdView *tensor.Tensor // cached reshape headers; see reshapeCached
	bwdView *tensor.Tensor
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a flattening layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: %s expects rank ≥ 2, got %v", f.name, x.Shape()))
	}
	if train {
		f.lastShape = append(f.lastShape[:0], x.Shape()...)
	}
	batch := x.Dim(0)
	cols := x.Len() / batch
	if x.Rank() == 2 && x.Dim(1) == cols {
		return x // already flat; layers never mutate their inputs
	}
	f.fwdView = reshape2Cached(f.fwdView, x, batch, cols)
	return f.fwdView
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(f.lastShape) == 0 {
		panic("nn: Flatten.Backward called before Forward(train=true)")
	}
	if shapeEqual(grad.Shape(), f.lastShape) {
		return grad
	}
	f.bwdView = reshapeCached(f.bwdView, grad, f.lastShape)
	return f.bwdView
}

func (f *Flatten) clone() Layer { return &Flatten{name: f.name} }

// MaxPool2 is a 2×2 max-pooling layer with stride 2 over [B, C, H, W]
// inputs. H and W must be even.
type MaxPool2 struct {
	name    string
	argmax  []int // flat input index of each output element
	inShape []int

	fwdOut *tensor.Tensor // reusable output buffer; see ensureTensor
	bwdOut *tensor.Tensor
}

var _ Layer = (*MaxPool2)(nil)

// NewMaxPool2 returns a 2×2/stride-2 max-pooling layer.
func NewMaxPool2(name string) *MaxPool2 { return &MaxPool2{name: name} }

// Name implements Layer.
func (p *MaxPool2) Name() string { return p.name }

// Params implements Layer.
func (p *MaxPool2) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MaxPool2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s expects [B, C, H, W], got %v", p.name, x.Shape()))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("nn: %s requires even H and W, got %dx%d", p.name, h, w))
	}
	oh, ow := h/2, w/2
	p.fwdOut = ensure4(p.fwdOut, b, c, oh, ow)
	out := p.fwdOut
	if train {
		if cap(p.argmax) < out.Len() {
			p.argmax = make([]int, out.Len())
		}
		p.argmax = p.argmax[:out.Len()]
		p.inShape = append(p.inShape[:0], x.Shape()...)
	}
	xd, od := x.Data(), out.Data()
	oi := 0
	for bc := 0; bc < b*c; bc++ {
		plane := bc * h * w
		for oy := 0; oy < oh; oy++ {
			rowTop := plane + 2*oy*w
			for ox := 0; ox < ow; ox++ {
				i0 := rowTop + 2*ox
				best, bestIdx := xd[i0], i0
				if v := xd[i0+1]; v > best {
					best, bestIdx = v, i0+1
				}
				if v := xd[i0+w]; v > best {
					best, bestIdx = v, i0+w
				}
				if v := xd[i0+w+1]; v > best {
					best, bestIdx = v, i0+w+1
				}
				od[oi] = best
				if train {
					p.argmax[oi] = bestIdx
				}
				oi++
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(p.inShape) == 0 || len(p.argmax) != grad.Len() {
		panic("nn: MaxPool2.Backward called before Forward(train=true)")
	}
	p.bwdOut = ensureTensor(p.bwdOut, p.inShape...)
	dx := p.bwdOut
	dx.Zero() // scatter-add below needs a clean buffer
	dd := dx.Data()
	for i, v := range grad.Data() {
		dd[p.argmax[i]] += v
	}
	return dx
}

func (p *MaxPool2) clone() Layer { return &MaxPool2{name: p.name} }
