package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/mach-fl/mach/internal/tensor"
)

// Dense is a fully connected layer computing y = x·Wᵀ + b for a batch input
// x of shape [B, in]. W has shape [out, in] and b has shape [out].
type Dense struct {
	name string
	in   int
	out  int
	w    *Param
	b    *Param

	lastX *tensor.Tensor // cached input for Backward

	// Reusable buffers; see ensureTensor. In steady state (fixed batch
	// size) Forward/Backward allocate nothing.
	fwdOut    *tensor.Tensor // [B, out]
	dwScratch *tensor.Tensor // [out, in]
	bwdOut    *tensor.Tensor // [B, in]
}

var _ Layer = (*Dense)(nil)

// NewDense returns a dense layer with He-initialized weights, which is the
// appropriate fan-in scaling for the ReLU networks used throughout.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	std := math.Sqrt(2.0 / float64(in))
	return &Dense{
		name: name,
		in:   in,
		out:  out,
		w:    newParam(name+".w", tensor.Randn(rng, std, out, in)),
		b:    newParam(name+".b", tensor.New(out)),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.in {
		panic(fmt.Sprintf("nn: %s expects input [B, %d], got %v", d.name, d.in, x.Shape()))
	}
	if train {
		d.lastX = x
	}
	batch := x.Dim(0)
	d.fwdOut = ensure2(d.fwdOut, batch, d.out)
	out := d.fwdOut
	tensor.MatMulTransBInto(out, x, d.w.Value) // [B, out]
	bdata := d.b.Value.Data()
	odata := out.Data()
	for i := 0; i < batch; i++ {
		row := odata[i*d.out : (i+1)*d.out]
		for j := range row {
			row[j] += bdata[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastX == nil {
		panic("nn: Dense.Backward called before Forward(train=true)")
	}
	// dW = gradᵀ·x, accumulated.
	d.dwScratch = ensure2(d.dwScratch, d.out, d.in)
	tensor.MatMulTransAInto(d.dwScratch, grad, d.lastX)
	d.w.Grad.AddInPlace(d.dwScratch)
	// db = column sums of grad.
	batch := grad.Dim(0)
	gdata := grad.Data()
	bgrad := d.b.Grad.Data()
	for i := 0; i < batch; i++ {
		row := gdata[i*d.out : (i+1)*d.out]
		for j, v := range row {
			bgrad[j] += v
		}
	}
	// dX = grad·W.
	d.bwdOut = ensure2(d.bwdOut, batch, d.in)
	tensor.MatMulInto(d.bwdOut, grad, d.w.Value)
	return d.bwdOut
}

func (d *Dense) clone() Layer {
	return &Dense{
		name: d.name,
		in:   d.in,
		out:  d.out,
		w:    &Param{Name: d.w.Name, Value: d.w.Value.Clone(), Grad: tensor.New(d.w.Value.Shape()...)},
		b:    &Param{Name: d.b.Name, Value: d.b.Value.Clone(), Grad: tensor.New(d.b.Value.Shape()...)},
	}
}
