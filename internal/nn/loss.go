package nn

import (
	"fmt"
	"math"

	"github.com/mach-fl/mach/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// [B, classes] against integer labels, together with the gradient of the
// loss w.r.t. the logits (softmax(logits) − onehot(labels)) / B. The softmax
// is computed with the usual max-subtraction for numerical stability.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy expects [B, classes], got %v", logits.Shape()))
	}
	grad = tensor.New(logits.Dim(0), logits.Dim(1))
	loss = SoftmaxCrossEntropyInto(logits, labels, grad)
	return loss, grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the gradient into a
// caller-owned [B, classes] tensor (fully overwritten), so the training hot
// path can reuse one gradient buffer across steps. The arithmetic is
// identical to the allocating form.
//
//machlint:noalias logits,grad
//
//machlint:allocfree
func SoftmaxCrossEntropyInto(logits *tensor.Tensor, labels []int, grad *tensor.Tensor) (loss float64) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy expects [B, classes], got %v", logits.Shape()))
	}
	batch, classes := logits.Dim(0), logits.Dim(1)
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy got %d labels for batch %d", len(labels), batch))
	}
	if grad.Rank() != 2 || grad.Dim(0) != batch || grad.Dim(1) != classes {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyInto grad shape %v, want [%d, %d]", grad.Shape(), batch, classes))
	}
	ld, gd := logits.Data(), grad.Data()
	invB := 1.0 / float64(batch)
	for i := 0; i < batch; i++ {
		row := ld[i*classes : (i+1)*classes]
		grow := gd[i*classes : (i+1)*classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			grow[j] = e
			sum += e
		}
		y := labels[i]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, classes))
		}
		p := grow[y] / sum
		loss += -math.Log(math.Max(p, 1e-300))
		for j := range grow {
			grow[j] = grow[j] / sum * invB
		}
		grow[y] -= invB
	}
	return loss * invB
}

// CrossEntropyLossSum returns the *sum* of per-sample cross-entropy losses
// of logits [B, classes] against labels, without materializing a gradient.
// Per-sample terms are accumulated in row order with the same arithmetic as
// SoftmaxCrossEntropy, so sum/batch equals that function's mean loss for the
// same rows. Evaluation shards use it so a shard-ordered reduction over
// (correct, lossSum) pairs is exact and allocation-free.
func CrossEntropyLossSum(logits *tensor.Tensor, labels []int) float64 {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: CrossEntropyLossSum expects [B, classes], got %v", logits.Shape()))
	}
	batch, classes := logits.Dim(0), logits.Dim(1)
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: CrossEntropyLossSum got %d labels for batch %d", len(labels), batch))
	}
	ld := logits.Data()
	sum := 0.0
	for i := 0; i < batch; i++ {
		row := ld[i*classes : (i+1)*classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		expSum := 0.0
		for _, v := range row {
			expSum += math.Exp(v - maxv)
		}
		y := labels[i]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, classes))
		}
		p := math.Exp(row[y]-maxv) / expSum
		sum += -math.Log(math.Max(p, 1e-300))
	}
	return sum
}

// Softmax returns the row-wise softmax probabilities of logits [B, classes].
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: Softmax expects [B, classes], got %v", logits.Shape()))
	}
	batch, classes := logits.Dim(0), logits.Dim(1)
	out := logits.Clone()
	od := out.Data()
	for i := 0; i < batch; i++ {
		row := od[i*classes : (i+1)*classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return out
}

// Argmax returns the index of the largest logit in each row of a
// [B, classes] tensor.
func Argmax(logits *tensor.Tensor) []int {
	batch, classes := logits.Dim(0), logits.Dim(1)
	out := make([]int, batch)
	ld := logits.Data()
	for i := 0; i < batch; i++ {
		row := ld[i*classes : (i+1)*classes]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
