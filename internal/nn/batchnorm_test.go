package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mach-fl/mach/internal/tensor"
)

func TestBatchNormNormalizesTrainingBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bn := NewBatchNorm1D("bn", 4)
	x := tensor.Randn(rng, 3, 32, 4) // std 3 so normalization is visible
	out := bn.Forward(x, true)
	// With γ=1, β=0 each output feature has ≈ zero mean and unit variance.
	for j := 0; j < 4; j++ {
		mean, varce := 0.0, 0.0
		for i := 0; i < 32; i++ {
			mean += out.At(i, j) / 32
		}
		for i := 0; i < 32; i++ {
			d := out.At(i, j) - mean
			varce += d * d / 32
		}
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("feature %d mean %v", j, mean)
		}
		if math.Abs(varce-1) > 1e-3 {
			t.Fatalf("feature %d variance %v", j, varce)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bn := NewBatchNorm1D("bn", 2)
	// Feed shifted batches in training mode to move the running stats.
	for i := 0; i < 50; i++ {
		x := tensor.Randn(rng, 1, 16, 2)
		for k := range x.Data() {
			x.Data()[k] += 5
		}
		bn.Forward(x, true)
	}
	// Eval on a batch at the same shift: outputs should be ≈ normalized.
	x := tensor.Randn(rng, 1, 16, 2)
	for k := range x.Data() {
		x.Data()[k] += 5
	}
	out := bn.Forward(x, false)
	mean := out.Mean()
	if math.Abs(mean) > 0.5 {
		t.Fatalf("eval-mode output mean %v, want ≈ 0 via running stats", mean)
	}
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork("bn-net",
		NewDense("fc1", 5, 6, rng),
		NewBatchNorm1D("bn", 6),
		NewReLU("r"),
		NewDense("fc2", 6, 3, rng),
	)
	x := tensor.Randn(rng, 1, 8, 5)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}
	// Gradient check against the training-mode forward (batch statistics
	// make the loss a function of the whole batch, which the analytic
	// backward accounts for; the numeric probe must also use train mode).
	net.ZeroGrad()
	logits := net.Forward(x, true)
	_, grad := SoftmaxCrossEntropy(logits, labels)
	net.Backward(grad)
	for _, p := range net.Params() {
		for s := 0; s < 5; s++ {
			i := rng.Intn(p.Value.Len())
			analytic := p.Grad.Data()[i]
			const h = 1e-5
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + h
			bnFreshForward := func() float64 {
				// train=true so batch stats are recomputed, but running
				// stats drift is negligible at h-scale probes.
				l, _ := SoftmaxCrossEntropy(net.Forward(x, true), labels)
				return l
			}
			lossPlus := bnFreshForward()
			p.Value.Data()[i] = orig - h
			lossMinus := bnFreshForward()
			p.Value.Data()[i] = orig
			numeric := (lossPlus - lossMinus) / (2 * h)
			scale := math.Max(1e-4, math.Abs(analytic)+math.Abs(numeric))
			if math.Abs(analytic-numeric)/scale > 1e-3 {
				t.Fatalf("%s[%d]: analytic %.8g vs numeric %.8g", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestBatchNormCloneIndependent(t *testing.T) {
	bn := NewBatchNorm1D("bn", 3)
	bn.runMean[0] = 7
	c := bn.clone().(*BatchNorm1D)
	if c.runMean[0] != 7 {
		t.Fatal("running stats not cloned")
	}
	c.runMean[0] = 9
	if bn.runMean[0] != 7 {
		t.Fatal("clone shares running stats")
	}
}

func TestBatchNormTrainsInNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork("bn-train",
		NewDense("fc1", 2, 8, rng),
		NewBatchNorm1D("bn", 8),
		NewReLU("r"),
		NewDense("fc2", 8, 2, rng),
	)
	opt := NewSGD(0.1)
	for step := 0; step < 150; step++ {
		x, y := twoBlobs(rng, 16)
		net.TrainStep(x, y, opt)
	}
	xt, yt := twoBlobs(rng, 200)
	acc, _ := net.Evaluate(xt, yt)
	if acc < 0.95 {
		t.Fatalf("batch-norm network failed to learn: accuracy %.3f", acc)
	}
}

func TestBatchNormPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatchNorm1D("bn", 2).Forward(tensor.New(2, 3), true)
}
