package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/mach-fl/mach/internal/tensor"
)

// Conv2D is a 2-D convolution over batched inputs of shape [B, InC, H, W],
// implemented via im2col lowering so that each image's convolution becomes a
// single matrix product W (outC × InC·K·K) · cols (InC·K·K × outH·outW).
type Conv2D struct {
	name string
	geom tensor.ConvGeom
	outC int
	w    *Param // [outC, InC*K*K]
	b    *Param // [outC]

	lastCols []*tensor.Tensor // cached per-image column matrices
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns a convolution layer with He-initialized kernels.
func NewConv2D(name string, geom tensor.ConvGeom, outC int, rng *rand.Rand) *Conv2D {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: %s: %v", name, err))
	}
	fanIn := geom.InC * geom.K * geom.K
	std := math.Sqrt(2.0 / float64(fanIn))
	return &Conv2D{
		name: name,
		geom: geom,
		outC: outC,
		w:    newParam(name+".w", tensor.Randn(rng, std, outC, fanIn)),
		b:    newParam(name+".b", tensor.New(outC)),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// OutShape returns the per-image output shape [outC, outH, outW].
func (c *Conv2D) OutShape() (outC, outH, outW int) {
	return c.outC, c.geom.OutH(), c.geom.OutW()
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.geom
	if x.Rank() != 4 || x.Dim(1) != g.InC || x.Dim(2) != g.InH || x.Dim(3) != g.InW {
		panic(fmt.Sprintf("nn: %s expects input [B, %d, %d, %d], got %v", c.name, g.InC, g.InH, g.InW, x.Shape()))
	}
	batch := x.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	n := outH * outW
	out := tensor.New(batch, c.outC, outH, outW)
	if train {
		c.lastCols = make([]*tensor.Tensor, batch)
	}
	imgLen := g.InC * g.InH * g.InW
	bdata := c.b.Value.Data()
	for i := 0; i < batch; i++ {
		img := tensor.FromSlice(x.Data()[i*imgLen:(i+1)*imgLen], g.InC, g.InH, g.InW)
		cols := tensor.Im2Col(img, g)
		if train {
			c.lastCols[i] = cols
		}
		res := tensor.MatMul(c.w.Value, cols) // [outC, n]
		dst := out.Data()[i*c.outC*n : (i+1)*c.outC*n]
		copy(dst, res.Data())
		for oc := 0; oc < c.outC; oc++ {
			row := dst[oc*n : (oc+1)*n]
			bv := bdata[oc]
			for j := range row {
				row[j] += bv
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastCols == nil {
		panic("nn: Conv2D.Backward called before Forward(train=true)")
	}
	g := c.geom
	batch := grad.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	n := outH * outW
	imgLen := g.InC * g.InH * g.InW
	dx := tensor.New(batch, g.InC, g.InH, g.InW)
	bgrad := c.b.Grad.Data()
	for i := 0; i < batch; i++ {
		gmat := tensor.FromSlice(grad.Data()[i*c.outC*n:(i+1)*c.outC*n], c.outC, n)
		// dW += gmat·colsᵀ
		dw := tensor.MatMulTransB(gmat, c.lastCols[i])
		c.w.Grad.AddInPlace(dw)
		// db += row sums of gmat
		for oc := 0; oc < c.outC; oc++ {
			row := gmat.Data()[oc*n : (oc+1)*n]
			s := 0.0
			for _, v := range row {
				s += v
			}
			bgrad[oc] += s
		}
		// dX = col2im(Wᵀ·gmat)
		dcols := tensor.MatMulTransA(c.w.Value, gmat)
		dimg := tensor.Col2Im(dcols, g)
		copy(dx.Data()[i*imgLen:(i+1)*imgLen], dimg.Data())
	}
	return dx
}

func (c *Conv2D) clone() Layer {
	return &Conv2D{
		name: c.name,
		geom: c.geom,
		outC: c.outC,
		w:    &Param{Name: c.w.Name, Value: c.w.Value.Clone(), Grad: tensor.New(c.w.Value.Shape()...)},
		b:    &Param{Name: c.b.Name, Value: c.b.Value.Clone(), Grad: tensor.New(c.b.Value.Shape()...)},
	}
}
