package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/mach-fl/mach/internal/tensor"
)

// Conv2D is a 2-D convolution over batched inputs of shape [B, InC, H, W],
// implemented via im2col lowering so that each image's convolution becomes a
// single matrix product W (outC × InC·K·K) · cols (InC·K·K × outH·outW).
type Conv2D struct {
	name string
	geom tensor.ConvGeom
	outC int
	w    *Param // [outC, InC*K*K]
	b    *Param // [outC]

	lastCols []*tensor.Tensor // cached per-image column matrices

	// Reusable buffers; see ensureTensor. In steady state (fixed batch
	// size) Forward/Backward allocate nothing beyond small tensor headers.
	fwdOut       *tensor.Tensor // [B, outC, outH, outW]
	colScratch   *tensor.Tensor // eval-path column matrix, [InC·K·K, n]
	resScratch   *tensor.Tensor // per-image product, [outC, n]
	dwScratch    *tensor.Tensor // [outC, InC·K·K]
	dcolsScratch *tensor.Tensor // [InC·K·K, n]
	dimgScratch  *tensor.Tensor // [InC, InH, InW]
	bwdOut       *tensor.Tensor // [B, InC, InH, InW]
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns a convolution layer with He-initialized kernels.
func NewConv2D(name string, geom tensor.ConvGeom, outC int, rng *rand.Rand) *Conv2D {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: %s: %v", name, err))
	}
	fanIn := geom.InC * geom.K * geom.K
	std := math.Sqrt(2.0 / float64(fanIn))
	return &Conv2D{
		name: name,
		geom: geom,
		outC: outC,
		w:    newParam(name+".w", tensor.Randn(rng, std, outC, fanIn)),
		b:    newParam(name+".b", tensor.New(outC)),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// OutShape returns the per-image output shape [outC, outH, outW].
func (c *Conv2D) OutShape() (outC, outH, outW int) {
	return c.outC, c.geom.OutH(), c.geom.OutW()
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.geom
	if x.Rank() != 4 || x.Dim(1) != g.InC || x.Dim(2) != g.InH || x.Dim(3) != g.InW {
		panic(fmt.Sprintf("nn: %s expects input [B, %d, %d, %d], got %v", c.name, g.InC, g.InH, g.InW, x.Shape()))
	}
	batch := x.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	n := outH * outW
	c.fwdOut = ensure4(c.fwdOut, batch, c.outC, outH, outW)
	out := c.fwdOut
	colRows := g.InC * g.K * g.K
	if train {
		if len(c.lastCols) != batch {
			c.lastCols = make([]*tensor.Tensor, batch)
		}
	}
	c.resScratch = ensure2(c.resScratch, c.outC, n)
	res := c.resScratch
	imgLen := g.InC * g.InH * g.InW
	bdata := c.b.Value.Data()
	for i := 0; i < batch; i++ {
		img := tensor.FromSlice(x.Data()[i*imgLen:(i+1)*imgLen], g.InC, g.InH, g.InW)
		var cols *tensor.Tensor
		if train {
			// Backward needs every image's columns, so each batch slot
			// keeps its own buffer.
			c.lastCols[i] = ensure2(c.lastCols[i], colRows, n)
			cols = c.lastCols[i]
		} else {
			c.colScratch = ensure2(c.colScratch, colRows, n)
			cols = c.colScratch
		}
		tensor.Im2ColInto(cols, img, g)
		tensor.MatMulInto(res, c.w.Value, cols) // [outC, n]
		dst := out.Data()[i*c.outC*n : (i+1)*c.outC*n]
		copy(dst, res.Data())
		for oc := 0; oc < c.outC; oc++ {
			row := dst[oc*n : (oc+1)*n]
			bv := bdata[oc]
			for j := range row {
				row[j] += bv
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastCols == nil {
		panic("nn: Conv2D.Backward called before Forward(train=true)")
	}
	g := c.geom
	batch := grad.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	n := outH * outW
	imgLen := g.InC * g.InH * g.InW
	c.bwdOut = ensure4(c.bwdOut, batch, g.InC, g.InH, g.InW)
	dx := c.bwdOut
	c.dwScratch = ensure2(c.dwScratch, c.outC, g.InC*g.K*g.K)
	c.dcolsScratch = ensure2(c.dcolsScratch, g.InC*g.K*g.K, n)
	c.dimgScratch = ensure3(c.dimgScratch, g.InC, g.InH, g.InW)
	bgrad := c.b.Grad.Data()
	for i := 0; i < batch; i++ {
		gmat := tensor.FromSlice(grad.Data()[i*c.outC*n:(i+1)*c.outC*n], c.outC, n)
		// dW += gmat·colsᵀ
		tensor.MatMulTransBInto(c.dwScratch, gmat, c.lastCols[i])
		c.w.Grad.AddInPlace(c.dwScratch)
		// db += row sums of gmat
		for oc := 0; oc < c.outC; oc++ {
			row := gmat.Data()[oc*n : (oc+1)*n]
			s := 0.0
			for _, v := range row {
				s += v
			}
			bgrad[oc] += s
		}
		// dX = col2im(Wᵀ·gmat)
		tensor.MatMulTransAInto(c.dcolsScratch, c.w.Value, gmat)
		tensor.Col2ImInto(c.dimgScratch, c.dcolsScratch, g)
		copy(dx.Data()[i*imgLen:(i+1)*imgLen], c.dimgScratch.Data())
	}
	return dx
}

func (c *Conv2D) clone() Layer {
	return &Conv2D{
		name: c.name,
		geom: c.geom,
		outC: c.outC,
		w:    &Param{Name: c.w.Name, Value: c.w.Value.Clone(), Grad: tensor.New(c.w.Value.Shape()...)},
		b:    &Param{Name: c.b.Name, Value: c.b.Value.Clone(), Grad: tensor.New(c.b.Value.Shape()...)},
	}
}
