package nn

import "github.com/mach-fl/mach/internal/tensor"

// ensureTensor returns t when it already has the wanted shape, else a fresh
// tensor. Layers use it to keep one reusable output/scratch buffer per call
// site: in steady state (fixed batch size) every training step reuses the
// same storage and the hot path stops allocating. Returned buffers are
// owned by the layer and are overwritten by the next call with the same
// shape — consistent with the package contract that networks are not safe
// for concurrent use and outputs are consumed before the next call.
func ensureTensor(t *tensor.Tensor, shape ...int) *tensor.Tensor {
	if t != nil && shapeEqual(t.Shape(), shape) {
		return t
	}
	return tensor.New(shape...)
}

// ensure2, ensure3 and ensure4 are arity-specific forms of ensureTensor.
// They avoid materializing a variadic shape slice on the reuse path, which
// otherwise costs one heap allocation per call in the training loop.
func ensure2(t *tensor.Tensor, d0, d1 int) *tensor.Tensor {
	if t != nil && t.Rank() == 2 && t.Dim(0) == d0 && t.Dim(1) == d1 {
		return t
	}
	return tensor.New(d0, d1)
}

func ensure3(t *tensor.Tensor, d0, d1, d2 int) *tensor.Tensor {
	if t != nil && t.Rank() == 3 && t.Dim(0) == d0 && t.Dim(1) == d1 && t.Dim(2) == d2 {
		return t
	}
	return tensor.New(d0, d1, d2)
}

func ensure4(t *tensor.Tensor, d0, d1, d2, d3 int) *tensor.Tensor {
	if t != nil && t.Rank() == 4 && t.Dim(0) == d0 && t.Dim(1) == d1 && t.Dim(2) == d2 && t.Dim(3) == d3 {
		return t
	}
	return tensor.New(d0, d1, d2, d3)
}

// reshape2Cached is reshapeCached for the common rank-2 target, avoiding a
// shape-slice literal on the reuse path.
func reshape2Cached(view, x *tensor.Tensor, d0, d1 int) *tensor.Tensor {
	if view != nil && view.Rank() == 2 && view.Dim(0) == d0 && view.Dim(1) == d1 && sameStorage(view, x) {
		return view
	}
	return x.Reshape(d0, d1)
}

// reshapeCached returns a view of x's storage with the given shape, reusing
// a previously built view header when it still aliases the same storage.
// Because upstream layers reuse their output buffers, the cached header
// stays valid across steady-state steps and reshaping stops allocating.
func reshapeCached(view, x *tensor.Tensor, shape []int) *tensor.Tensor {
	if view != nil && shapeEqual(view.Shape(), shape) && sameStorage(view, x) {
		return view
	}
	return x.Reshape(shape...)
}

func sameStorage(a, b *tensor.Tensor) bool {
	da, db := a.Data(), b.Data()
	return len(da) == len(db) && len(da) > 0 && &da[0] == &db[0]
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
