package nn

import (
	"fmt"
	"math"

	"github.com/mach-fl/mach/internal/tensor"
)

// Lane32 executes the float32 compute lane (DESIGN.md §10): forward/backward
// passes run entirely in float32 over pooled flat buffers, while every
// aggregation boundary stays float64 — per-slot master weights, the SGD
// update, the loss, and the gradient squared norm that feeds MACH sampling.
// One Lane32 serves S "slots", each a logical device sharing the same
// architecture: slot activations live side by side in one strided buffer per
// layer, so a fused per-edge step walks the network layer-by-layer across all
// slots with cache-hot, contiguous data (the cross-device batch fusion of
// ROADMAP item 5). With slots == 1 it is the unfused per-device f32 executor.
//
// Numeric contract:
//
//   - Master weights are float64. Each TrainStep applies w64 -= lr·float64(g32)
//     and re-rounds the float32 compute copy from the master, so optimizer
//     arithmetic and the parameter vectors exchanged with edge/cloud
//     aggregation never accumulate float32 rounding.
//   - Losses and squared gradient norms are accumulated in float64.
//   - Everything in between — matmuls, im2col, activations, batch-norm
//     normalization — is float32, with batch statistics reduced in float64.
//
// Lane32 is deterministic: given the same loaded params and inputs it
// produces bit-identical float32 results regardless of how many other slots
// are active or how work is scheduled around it (all execution is serial
// inside TrainStep). It is not safe for concurrent use.
type Lane32 struct {
	name      string
	ops       []lane32Op
	paramLen  int
	sampleLen int
	classes   int
	slots     int
	batch     int // batch size the pooled buffers are currently sized for

	master [][]float64 // per-slot f64 master weights, Params() layout
	params [][]float32 // per-slot f32 compute copy of master
	grads  [][]float32 // per-slot f32 gradient accumulator

	inBuf        []float32 // network input, strided [slot][batch][sampleLen]
	gradA, gradB []float32 // ping-pong gradient buffers, S·B·maxLen each

	// Shared serial scratch (TrainStep never runs ops concurrently).
	dw, dcols                          []float32
	statMean, statVar, sumDxh, sumDxhX []float64
	expRow                             []float64
}

type lane32Kind uint8

const (
	laneOpDense lane32Kind = iota
	laneOpConv
	laneOpReLU
	laneOpPool
	laneOpBN
)

// lane32Op is one compiled layer. Buffer fields are pooled across slots and
// strided slot-major; inRef aliases the previous op's outBuf (or the lane
// input buffer), which doubles as the cached forward input for backward.
type lane32Op struct {
	kind lane32Kind
	name string

	inLen, outLen int // per-sample element counts

	wOff, bOff int // flat param offsets (dense/conv: w,b; bn: gamma,beta)
	in, out    int // dense dims

	geom   tensor.ConvGeom
	outC   int
	cr, sp int // conv: im2col rows (InC·K·K) and spatial size (OutH·OutW)

	c, h, w int // pool input dims

	features int
	mom, eps float64 // bn hyperparameters copied from the layer

	outBuf []float32
	inRef  []float32
	cols   []float32 // conv: cached column matrices, [slot][image][cr·sp]
	argmax []int32   // pool: flat input index per output element
	xhat   []float32 // bn: cached normalized activations
	std    []float64 // bn: per-slot batch std, [slot][features]
	// bn per-slot running statistics (float64, excluded from the parameter
	// vector exactly like BatchNorm1D). They live with the slot: callers that
	// reassign slots across logical devices treat them as ephemeral, the
	// known federated batch-norm caveat documented on BatchNorm1D.
	runMean, runVar []float64
}

// NewLane32 compiles net's layer stack into a float32 executor with the given
// number of slots. It returns an error for layer types the lane does not
// support (e.g. Dropout, whose RNG stream is owned by the f64 layer).
func NewLane32(net *Network, slots int) (*Lane32, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("nn: Lane32 needs at least one slot, got %d", slots)
	}
	l := &Lane32{name: net.Name(), slots: slots}
	off := 0
	var shape []int // per-sample shape, nil until anchored by a Dense or Conv2D
	prod := func() int {
		n := 1
		for _, d := range shape {
			n *= d
		}
		return n
	}
	maxDW, maxDcols, maxF := 0, 0, 0
	for _, layer := range net.Layers() {
		lOff := off
		for _, p := range layer.Params() {
			off += p.Value.Len()
		}
		switch t := layer.(type) {
		case *Flatten:
			// Lane data is already flat and contiguous; flattening is the
			// identity and compiles to nothing.
			if shape != nil {
				shape = []int{prod()}
			}
		case *Dense:
			if shape != nil && prod() != t.in {
				return nil, fmt.Errorf("nn: Lane32: %s expects %d inputs, previous layer yields %d", t.name, t.in, prod())
			}
			l.ops = append(l.ops, lane32Op{
				kind: laneOpDense, name: t.name,
				in: t.in, out: t.out, wOff: lOff, bOff: lOff + t.out*t.in,
				inLen: t.in, outLen: t.out,
			})
			shape = []int{t.out}
		case *Conv2D:
			g := t.geom
			if shape == nil {
				shape = []int{g.InC, g.InH, g.InW}
			} else if len(shape) != 3 || shape[0] != g.InC || shape[1] != g.InH || shape[2] != g.InW {
				return nil, fmt.Errorf("nn: Lane32: %s expects input [%d %d %d], previous layer yields %v", t.name, g.InC, g.InH, g.InW, shape)
			}
			cr, sp := g.InC*g.K*g.K, g.OutH()*g.OutW()
			l.ops = append(l.ops, lane32Op{
				kind: laneOpConv, name: t.name,
				geom: g, outC: t.outC, cr: cr, sp: sp,
				wOff: lOff, bOff: lOff + t.outC*cr,
				inLen: g.InC * g.InH * g.InW, outLen: t.outC * sp,
			})
			shape = []int{t.outC, g.OutH(), g.OutW()}
			if t.outC*cr > maxDW {
				maxDW = t.outC * cr
			}
			if cr*sp > maxDcols {
				maxDcols = cr * sp
			}
		case *ReLU:
			if shape == nil {
				return nil, fmt.Errorf("nn: Lane32: %s before any shape-defining layer", t.name)
			}
			n := prod()
			l.ops = append(l.ops, lane32Op{kind: laneOpReLU, name: t.name, inLen: n, outLen: n})
		case *MaxPool2:
			if len(shape) != 3 {
				return nil, fmt.Errorf("nn: Lane32: %s needs a [C H W] input, have %v", t.name, shape)
			}
			c, h, w := shape[0], shape[1], shape[2]
			if h%2 != 0 || w%2 != 0 {
				return nil, fmt.Errorf("nn: Lane32: %s requires even H and W, got %dx%d", t.name, h, w)
			}
			l.ops = append(l.ops, lane32Op{
				kind: laneOpPool, name: t.name,
				c: c, h: h, w: w,
				inLen: c * h * w, outLen: c * (h / 2) * (w / 2),
			})
			shape = []int{c, h / 2, w / 2}
		case *BatchNorm1D:
			if shape == nil || prod() != t.features {
				return nil, fmt.Errorf("nn: Lane32: %s expects %d features, have %v", t.name, t.features, shape)
			}
			op := lane32Op{
				kind: laneOpBN, name: t.name,
				features: t.features, mom: t.momentum, eps: t.epsilon,
				wOff: lOff, bOff: lOff + t.features,
				inLen: t.features, outLen: t.features,
				std:     make([]float64, slots*t.features),
				runMean: make([]float64, slots*t.features),
				runVar:  make([]float64, slots*t.features),
			}
			for i := range op.runVar {
				op.runVar[i] = 1
			}
			l.ops = append(l.ops, op)
			if t.features > maxF {
				maxF = t.features
			}
		default:
			return nil, fmt.Errorf("nn: Lane32 does not support layer %T (%s); use the float64 lane", layer, layer.Name())
		}
	}
	if len(l.ops) == 0 {
		return nil, fmt.Errorf("nn: Lane32: network %q compiles to no ops", net.Name())
	}
	l.paramLen = off
	l.sampleLen = l.ops[0].inLen
	l.classes = l.ops[len(l.ops)-1].outLen
	l.master = make([][]float64, slots)
	l.params = make([][]float32, slots)
	l.grads = make([][]float32, slots)
	for s := 0; s < slots; s++ {
		l.master[s] = make([]float64, off)
		l.params[s] = make([]float32, off)
		l.grads[s] = make([]float32, off)
	}
	l.dw = make([]float32, maxDW)
	l.dcols = make([]float32, maxDcols)
	l.statMean = make([]float64, maxF)
	l.statVar = make([]float64, maxF)
	l.sumDxh = make([]float64, maxF)
	l.sumDxhX = make([]float64, maxF)
	l.expRow = make([]float64, l.classes)
	return l, nil
}

// Slots returns the number of device slots the lane was built with.
func (l *Lane32) Slots() int { return l.slots }

// NumParams returns the flat parameter count (same layout as Network.ParamVector).
func (l *Lane32) NumParams() int { return l.paramLen }

// SampleLen returns the per-sample input length the lane expects.
func (l *Lane32) SampleLen() int { return l.sampleLen }

// Classes returns the network's output width.
func (l *Lane32) Classes() int { return l.classes }

// LoadParams installs a flat float64 parameter vector (Network.ParamVector
// layout) as slot's master weights and rounds the float32 compute copy.
func (l *Lane32) LoadParams(slot int, v []float64) error {
	if len(v) != l.paramLen {
		return fmt.Errorf("nn: Lane32 parameter vector length %d does not match network %q (%d params)", len(v), l.name, l.paramLen)
	}
	m, p := l.master[slot], l.params[slot]
	copy(m, v)
	for i, x := range m {
		p[i] = float32(x)
	}
	return nil
}

// ParamsInto appends slot's float64 master weights to dst[:0] and returns
// the slice — the aggregation-boundary view of the slot, free of float32
// round-trips.
func (l *Lane32) ParamsInto(slot int, dst []float64) []float64 {
	return append(dst[:0], l.master[slot]...)
}

// SetInput converts a flat float64 batch ([batch][sampleLen]) into slot's
// strided float32 input window. All slots of one TrainStep must use the same
// batch size; changing it resizes the pooled buffers and invalidates inputs
// staged for other slots.
func (l *Lane32) SetInput(slot, batch int, src []float64) {
	if len(src) != batch*l.sampleLen {
		panic(fmt.Sprintf("nn: Lane32 input %d floats, want %d (batch %d × sample %d)", len(src), batch*l.sampleLen, batch, l.sampleLen))
	}
	l.ensure(batch)
	dst := l.inBuf[slot*batch*l.sampleLen : (slot+1)*batch*l.sampleLen]
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// TrainStep runs one fused SGD minibatch over slots 0..active-1: float32
// forward, softmax cross-entropy, float32 backward, float64 master update.
// labels[s], losses[s] and sqNorms[s] are per-slot; lr applies to all slots.
func (l *Lane32) TrainStep(active, batch int, labels [][]int, lr float64, losses, sqNorms []float64) {
	if active <= 0 {
		return
	}
	if active > l.slots {
		panic(fmt.Sprintf("nn: Lane32 asked for %d active slots, built with %d", active, l.slots))
	}
	if len(labels) < active || len(losses) < active || len(sqNorms) < active {
		panic("nn: Lane32.TrainStep per-slot slices shorter than active count")
	}
	l.ensure(batch)
	for s := 0; s < active; s++ {
		g := l.grads[s]
		for i := range g {
			g[i] = 0
		}
	}
	for i := range l.ops {
		op := &l.ops[i]
		for s := 0; s < active; s++ {
			l.forwardOp(op, s, batch)
		}
	}
	last := &l.ops[len(l.ops)-1]
	for s := 0; s < active; s++ {
		logits := last.outBuf[s*batch*l.classes : (s+1)*batch*l.classes]
		gseg := l.gradA[s*batch*l.classes : (s+1)*batch*l.classes]
		losses[s] = l.lossInto(logits, labels[s], gseg, batch)
	}
	gout, gin := l.gradA, l.gradB
	for i := len(l.ops) - 1; i >= 0; i-- {
		op := &l.ops[i]
		// The first op's input gradient has no consumer — nothing reads
		// gin below op 0 — so its (often largest) dX product is skipped.
		needGin := i > 0
		for s := 0; s < active; s++ {
			l.backwardOp(op, s, batch, gout, gin, needGin)
		}
		gout, gin = gin, gout
	}
	// Aggregation boundary: norms and the SGD update run in float64 against
	// the master weights, then the float32 copy is re-rounded. One pass:
	// the norm terms accumulate in ascending j exactly as a separate loop
	// would.
	for s := 0; s < active; s++ {
		g := l.grads[s]
		m, p := l.master[s], l.params[s]
		sum := 0.0
		for j, gv := range g {
			f := float64(gv)
			sum += f * f
			m[j] -= lr * f
			p[j] = float32(m[j])
		}
		sqNorms[s] = sum
	}
}

// ensure sizes the pooled buffers for the given batch, reusing capacity. In
// steady state (fixed batch) it is a comparison and a return.
func (l *Lane32) ensure(batch int) {
	if batch == l.batch {
		return
	}
	l.batch = batch
	S := l.slots
	l.inBuf = grow32(l.inBuf, S*batch*l.sampleLen)
	maxLen := 0
	for i := range l.ops {
		op := &l.ops[i]
		op.outBuf = grow32(op.outBuf, S*batch*op.outLen)
		switch op.kind {
		case laneOpConv:
			op.cols = grow32(op.cols, S*batch*op.cr*op.sp)
		case laneOpPool:
			op.argmax = growI32(op.argmax, S*batch*op.outLen)
		case laneOpBN:
			op.xhat = grow32(op.xhat, S*batch*op.features)
		}
		if op.inLen > maxLen {
			maxLen = op.inLen
		}
		if op.outLen > maxLen {
			maxLen = op.outLen
		}
	}
	l.gradA = grow32(l.gradA, S*batch*maxLen)
	l.gradB = grow32(l.gradB, S*batch*maxLen)
	prev := l.inBuf
	for i := range l.ops {
		l.ops[i].inRef = prev
		prev = l.ops[i].outBuf
	}
}

func (l *Lane32) forwardOp(op *lane32Op, s, batch int) {
	in := op.inRef[s*batch*op.inLen : (s+1)*batch*op.inLen]
	out := op.outBuf[s*batch*op.outLen : (s+1)*batch*op.outLen]
	switch op.kind {
	case laneOpDense:
		w := l.params[s][op.wOff : op.wOff+op.out*op.in]
		b := l.params[s][op.bOff : op.bOff+op.out]
		tensor.MatMulTransB32Into(out, in, w, batch, op.in, op.out)
		for i := 0; i < batch; i++ {
			row := out[i*op.out : (i+1)*op.out]
			for j := range row {
				row[j] += b[j]
			}
		}
	case laneOpConv:
		w := l.params[s][op.wOff : op.wOff+op.outC*op.cr]
		b := l.params[s][op.bOff : op.bOff+op.outC]
		for i := 0; i < batch; i++ {
			cols := op.cols[(s*batch+i)*op.cr*op.sp : (s*batch+i+1)*op.cr*op.sp]
			tensor.Im2Col32Into(cols, in[i*op.inLen:(i+1)*op.inLen], op.geom)
			seg := out[i*op.outLen : (i+1)*op.outLen]
			tensor.MatMul32Into(seg, w, cols, op.outC, op.cr, op.sp)
			for oc := 0; oc < op.outC; oc++ {
				row := seg[oc*op.sp : (oc+1)*op.sp]
				bv := b[oc]
				for j := range row {
					row[j] += bv
				}
			}
		}
	case laneOpReLU:
		for i, v := range in {
			if v > 0 {
				out[i] = v
			} else {
				out[i] = 0
			}
		}
	case laneOpPool:
		oh, ow := op.h/2, op.w/2
		am := op.argmax[s*batch*op.outLen : (s+1)*batch*op.outLen]
		oi := 0
		for bc := 0; bc < batch*op.c; bc++ {
			plane := bc * op.h * op.w
			for oy := 0; oy < oh; oy++ {
				rowTop := plane + 2*oy*op.w
				for ox := 0; ox < ow; ox++ {
					i0 := rowTop + 2*ox
					best, bestIdx := in[i0], i0
					if v := in[i0+1]; v > best {
						best, bestIdx = v, i0+1
					}
					if v := in[i0+op.w]; v > best {
						best, bestIdx = v, i0+op.w
					}
					if v := in[i0+op.w+1]; v > best {
						best, bestIdx = v, i0+op.w+1
					}
					out[oi] = best
					am[oi] = int32(bestIdx)
					oi++
				}
			}
		}
	case laneOpBN:
		l.forwardBN(op, s, batch, in, out)
	}
}

func (l *Lane32) backwardOp(op *lane32Op, s, batch int, goutBuf, ginBuf []float32, needGin bool) {
	gout := goutBuf[s*batch*op.outLen : (s+1)*batch*op.outLen]
	gin := ginBuf[s*batch*op.inLen : (s+1)*batch*op.inLen]
	in := op.inRef[s*batch*op.inLen : (s+1)*batch*op.inLen]
	switch op.kind {
	case laneOpDense:
		// dW accumulates straight into the flat gradient buffer — no scratch.
		dw := l.grads[s][op.wOff : op.wOff+op.out*op.in]
		tensor.MatMulTransA32Acc(dw, gout, in, batch, op.out, op.in)
		db := l.grads[s][op.bOff : op.bOff+op.out]
		for i := 0; i < batch; i++ {
			row := gout[i*op.out : (i+1)*op.out]
			for j, v := range row {
				db[j] += v
			}
		}
		if needGin {
			w := l.params[s][op.wOff : op.wOff+op.out*op.in]
			tensor.MatMul32Into(gin, gout, w, batch, op.out, op.in)
		}
	case laneOpConv:
		w := l.params[s][op.wOff : op.wOff+op.outC*op.cr]
		dwAcc := l.grads[s][op.wOff : op.wOff+op.outC*op.cr]
		db := l.grads[s][op.bOff : op.bOff+op.outC]
		dw := l.dw[:op.outC*op.cr]
		dcols := l.dcols[:op.cr*op.sp]
		for i := 0; i < batch; i++ {
			gmat := gout[i*op.outLen : (i+1)*op.outLen]
			cols := op.cols[(s*batch+i)*op.cr*op.sp : (s*batch+i+1)*op.cr*op.sp]
			tensor.MatMulTransB32Into(dw, gmat, cols, op.outC, op.sp, op.cr)
			for j, v := range dw {
				dwAcc[j] += v
			}
			for oc := 0; oc < op.outC; oc++ {
				row := gmat[oc*op.sp : (oc+1)*op.sp]
				var sum float32
				for _, v := range row {
					sum += v
				}
				db[oc] += sum
			}
			if !needGin {
				continue
			}
			for j := range dcols {
				dcols[j] = 0
			}
			tensor.MatMulTransA32Acc(dcols, w, gmat, op.outC, op.cr, op.sp)
			tensor.Col2Im32Into(gin[i*op.inLen:(i+1)*op.inLen], dcols, op.geom)
		}
	case laneOpReLU:
		// The forward output doubles as the mask: out > 0 ⟺ input > 0.
		out := op.outBuf[s*batch*op.outLen : (s+1)*batch*op.outLen]
		for i, v := range out {
			if v > 0 {
				gin[i] = gout[i]
			} else {
				gin[i] = 0
			}
		}
	case laneOpPool:
		am := op.argmax[s*batch*op.outLen : (s+1)*batch*op.outLen]
		for i := range gin {
			gin[i] = 0
		}
		for i, v := range gout {
			gin[am[i]] += v
		}
	case laneOpBN:
		l.backwardBN(op, s, batch, gout, gin)
	}
}

// forwardBN normalizes in float32 with float64 batch statistics — the same
// accumulation-boundary rule as the loss: reductions over the batch are f64.
func (l *Lane32) forwardBN(op *lane32Op, s, batch int, in, out []float32) {
	f := op.features
	mean, vari := l.statMean[:f], l.statVar[:f]
	for j := range mean {
		mean[j], vari[j] = 0, 0
	}
	for i := 0; i < batch; i++ {
		row := in[i*f : (i+1)*f]
		for j, v := range row {
			mean[j] += float64(v)
		}
	}
	inv := 1.0 / float64(batch)
	for j := range mean {
		mean[j] *= inv
	}
	for i := 0; i < batch; i++ {
		row := in[i*f : (i+1)*f]
		for j, v := range row {
			d := float64(v) - mean[j]
			vari[j] += d * d
		}
	}
	for j := range vari {
		vari[j] *= inv
	}
	std := op.std[s*f : (s+1)*f]
	rm := op.runMean[s*f : (s+1)*f]
	rv := op.runVar[s*f : (s+1)*f]
	for j := 0; j < f; j++ {
		std[j] = math.Sqrt(vari[j] + op.eps)
		rm[j] = op.mom*rm[j] + (1-op.mom)*mean[j]
		rv[j] = op.mom*rv[j] + (1-op.mom)*vari[j]
	}
	g := l.params[s][op.wOff : op.wOff+f]
	bt := l.params[s][op.bOff : op.bOff+f]
	xh := op.xhat[s*batch*f : (s+1)*batch*f]
	for i := 0; i < batch; i++ {
		for j := 0; j < f; j++ {
			v := float32((float64(in[i*f+j]) - mean[j]) / std[j])
			xh[i*f+j] = v
			out[i*f+j] = g[j]*v + bt[j]
		}
	}
}

func (l *Lane32) backwardBN(op *lane32Op, s, batch int, gout, gin []float32) {
	f := op.features
	n := float64(batch)
	xh := op.xhat[s*batch*f : (s+1)*batch*f]
	g := l.params[s][op.wOff : op.wOff+f]
	gGrad := l.grads[s][op.wOff : op.wOff+f]
	bGrad := l.grads[s][op.bOff : op.bOff+f]
	std := op.std[s*f : (s+1)*f]
	sd, sdx := l.sumDxh[:f], l.sumDxhX[:f]
	for j := range sd {
		sd[j], sdx[j] = 0, 0
	}
	for i := 0; i < batch; i++ {
		for j := 0; j < f; j++ {
			dy := float64(gout[i*f+j])
			x := float64(xh[i*f+j])
			gGrad[j] += float32(dy * x)
			bGrad[j] += float32(dy)
			dxh := dy * float64(g[j])
			sd[j] += dxh
			sdx[j] += dxh * x
		}
	}
	for i := 0; i < batch; i++ {
		for j := 0; j < f; j++ {
			dxh := float64(gout[i*f+j]) * float64(g[j])
			gin[i*f+j] = float32((n*dxh - sd[j] - float64(xh[i*f+j])*sdx[j]) / (n * std[j]))
		}
	}
}

// lossInto is the float32-lane softmax cross-entropy: float32 logits in,
// float32 gradient out, with the exp/log/sum arithmetic in float64 like
// SoftmaxCrossEntropyInto.
//
//machlint:noalias logits,grad
//
//machlint:allocfree
func (l *Lane32) lossInto(logits []float32, labels []int, grad []float32, batch int) float64 {
	classes := l.classes
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: Lane32 got %d labels for batch %d", len(labels), batch))
	}
	invB := 1.0 / float64(batch)
	loss := 0.0
	exps := l.expRow[:classes]
	for i := 0; i < batch; i++ {
		row := logits[i*classes : (i+1)*classes]
		grow := grad[i*classes : (i+1)*classes]
		maxv := float64(row[0])
		for _, v := range row[1:] {
			if fv := float64(v); fv > maxv {
				maxv = fv
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(float64(v) - maxv)
			exps[j] = e
			sum += e
		}
		y := labels[i]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, classes))
		}
		p := exps[y] / sum
		loss += -math.Log(math.Max(p, 1e-300))
		for j := range grow {
			grow[j] = float32(exps[j] / sum * invB)
		}
		grow[y] -= float32(invB)
	}
	return loss * invB
}

func grow32(b []float32, n int) []float32 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]float32, n)
}

func growI32(b []int32, n int) []int32 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int32, n)
}
