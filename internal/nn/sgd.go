package nn

import "github.com/mach-fl/mach/internal/tensor"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to params and leaves gradients untouched
	// (callers zero them at the start of the next step).
	Step(params []*Param)
	// LearningRate reports the current step size.
	LearningRate() float64
	// SetLearningRate changes the step size (used for LR decay schedules).
	SetLearningRate(lr float64)
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay. With zero momentum and decay it is exactly the local update
// rule of Eq. (4) in the paper: w ← w − γ·g(w, ξ).
type SGD struct {
	lr          float64
	momentum    float64
	weightDecay float64
	velocity    map[*Param]*tensor.Tensor
}

var _ Optimizer = (*SGD)(nil)

// SGDOption customizes an SGD optimizer.
type SGDOption func(*SGD)

// WithMomentum enables classical momentum with coefficient m ∈ [0, 1).
func WithMomentum(m float64) SGDOption {
	return func(s *SGD) { s.momentum = m }
}

// WithWeightDecay enables decoupled L2 weight decay with coefficient wd.
func WithWeightDecay(wd float64) SGDOption {
	return func(s *SGD) { s.weightDecay = wd }
}

// NewSGD returns an SGD optimizer with learning rate lr.
func NewSGD(lr float64, opts ...SGDOption) *SGD {
	s := &SGD{lr: lr}
	for _, opt := range opts {
		opt(s)
	}
	if s.momentum > 0 {
		s.velocity = make(map[*Param]*tensor.Tensor)
	}
	return s
}

// LearningRate implements Optimizer.
func (s *SGD) LearningRate() float64 { return s.lr }

// SetLearningRate implements Optimizer.
func (s *SGD) SetLearningRate(lr float64) { s.lr = lr }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.weightDecay > 0 {
			p.Value.ScaleInPlace(1 - s.lr*s.weightDecay)
		}
		if s.momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape()...)
				s.velocity[p] = v
			}
			v.ScaleInPlace(s.momentum).AxpyInPlace(1, p.Grad)
			p.Value.AxpyInPlace(-s.lr, v)
			continue
		}
		p.Value.AxpyInPlace(-s.lr, p.Grad)
	}
}
