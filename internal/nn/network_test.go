package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mach-fl/mach/internal/tensor"
)

// twoBlobs generates a linearly separable 2-class dataset in the plane.
func twoBlobs(rng *rand.Rand, n int) (*tensor.Tensor, []int) {
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(2)
		cx := -1.5
		if c == 1 {
			cx = 1.5
		}
		x.Set(cx+rng.NormFloat64()*0.4, i, 0)
		x.Set(rng.NormFloat64()*0.4, i, 1)
		labels[i] = c
	}
	return x, labels
}

func TestMLPLearnsSeparableBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := NewMLP("blobs", 2, []int{8}, 2, rng)
	opt := NewSGD(0.2)
	for step := 0; step < 200; step++ {
		x, y := twoBlobs(rng, 16)
		net.TrainStep(x, y, opt)
	}
	xt, yt := twoBlobs(rng, 200)
	acc, _ := net.Evaluate(xt, yt)
	if acc < 0.97 {
		t.Fatalf("MLP failed to learn separable blobs: accuracy %.3f", acc)
	}
}

func TestTrainStepDecreasesLossOnFixedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewMLP("fixed", 4, []int{8}, 3, rng)
	opt := NewSGD(0.1)
	x := tensor.Randn(rng, 1, 12, 4)
	y := make([]int, 12)
	for i := range y {
		y[i] = rng.Intn(3)
	}
	first, _ := net.TrainStep(x, y, opt)
	var last float64
	for i := 0; i < 50; i++ {
		last, _ = net.TrainStep(x, y, opt)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %.4f, last %.4f", first, last)
	}
}

func TestTrainStepReportsPositiveGradNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewMLP("gn", 3, []int{4}, 2, rng)
	x := tensor.Randn(rng, 1, 4, 3)
	_, gn := net.TrainStep(x, []int{0, 1, 0, 1}, NewSGD(0.01))
	if gn <= 0 {
		t.Fatalf("gradient squared norm %v, want > 0", gn)
	}
}

func TestParamVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewMLP("rt", 5, []int{6, 4}, 3, rng)
	v := net.ParamVector()
	if len(v) != net.NumParams() {
		t.Fatalf("vector length %d != NumParams %d", len(v), net.NumParams())
	}
	other := NewMLP("rt", 5, []int{6, 4}, 3, rand.New(rand.NewSource(999)))
	if err := other.SetParamVector(v); err != nil {
		t.Fatal(err)
	}
	got := other.ParamVector()
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("round-trip mismatch at %d", i)
		}
	}
	if err := other.SetParamVector(v[:len(v)-1]); err == nil {
		t.Fatal("expected error for short vector")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewMLP("orig", 3, []int{5}, 2, rng)
	clone := net.Clone()
	v1, v2 := net.ParamVector(), clone.ParamVector()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("clone parameter mismatch at %d", i)
		}
	}
	// Training the clone must not affect the original.
	x := tensor.Randn(rng, 1, 4, 3)
	clone.TrainStep(x, []int{0, 1, 1, 0}, NewSGD(0.5))
	v3 := net.ParamVector()
	for i := range v1 {
		if v1[i] != v3[i] {
			t.Fatal("training clone mutated original")
		}
	}
}

func TestCloneCNNStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net, err := NewCNN(MNISTCNNConfig(8, 8), rng)
	if err != nil {
		t.Fatal(err)
	}
	clone := net.Clone()
	if clone.NumParams() != net.NumParams() {
		t.Fatalf("clone has %d params, want %d", clone.NumParams(), net.NumParams())
	}
	x := tensor.Randn(rng, 1, 2, 1, 8, 8)
	a := net.Forward(x, false)
	b := clone.Forward(x, false)
	for i := range a.Data() {
		if math.Abs(a.Data()[i]-b.Data()[i]) > 1e-12 {
			t.Fatal("clone forward differs from original")
		}
	}
}

func TestMarshalBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewMLP("ckpt", 4, []int{5}, 3, rng)
	blob, err := net.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	other := NewMLP("ckpt", 4, []int{5}, 3, rand.New(rand.NewSource(13)))
	if err := other.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	a, b := net.ParamVector(), other.ParamVector()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("checkpoint round-trip mismatch at %d", i)
		}
	}
}

func TestUnmarshalBinaryErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewMLP("bad", 2, nil, 2, rng)
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte{1, 2, 3}},
		{"bad magic", make([]byte, 16)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := net.UnmarshalBinary(tt.data); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestSGDMomentumAndDecay(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float64{1}, 1))
	p.Grad.Data()[0] = 1
	s := NewSGD(0.1, WithMomentum(0.9))
	s.Step([]*Param{p}) // v=1, w = 1 - 0.1 = 0.9
	if math.Abs(p.Value.Data()[0]-0.9) > 1e-12 {
		t.Fatalf("after step 1: %v", p.Value.Data()[0])
	}
	s.Step([]*Param{p}) // v=1.9, w = 0.9 - 0.19 = 0.71
	if math.Abs(p.Value.Data()[0]-0.71) > 1e-12 {
		t.Fatalf("after step 2: %v", p.Value.Data()[0])
	}

	p2 := newParam("w2", tensor.FromSlice([]float64{2}, 1))
	d := NewSGD(0.1, WithWeightDecay(0.5))
	d.Step([]*Param{p2}) // zero grad: pure decay 2*(1-0.05) = 1.9
	if math.Abs(p2.Value.Data()[0]-1.9) > 1e-12 {
		t.Fatalf("weight decay: %v", p2.Value.Data()[0])
	}
	if d.LearningRate() != 0.1 {
		t.Fatalf("LearningRate = %v", d.LearningRate())
	}
	d.SetLearningRate(0.01)
	if d.LearningRate() != 0.01 {
		t.Fatalf("SetLearningRate not applied")
	}
}

// Property (Lemma 1 substrate): averaging parameter vectors is linear — the
// average of K identical networks equals the network itself, and averaging is
// permutation invariant.
func TestParamVectorAveragingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		vecs := make([][]float64, n)
		base := NewMLP("avg", 3, []int{4}, 2, rng)
		dim := base.NumParams()
		for i := range vecs {
			vecs[i] = make([]float64, dim)
			for j := range vecs[i] {
				vecs[i][j] = rng.NormFloat64()
			}
		}
		avg := make([]float64, dim)
		for _, v := range vecs {
			for j := range v {
				avg[j] += v[j] / float64(n)
			}
		}
		// permute and re-average
		perm := rng.Perm(n)
		avg2 := make([]float64, dim)
		for _, pi := range perm {
			for j := range vecs[pi] {
				avg2[j] += vecs[pi][j] / float64(n)
			}
		}
		for j := range avg {
			if math.Abs(avg[j]-avg2[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCNNConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     CNNConfig
		wantErr bool
	}{
		{"paper mnist arch", MNISTCNNConfig(16, 16), false},
		{"paper cifar arch", CIFARCNNConfig(16, 16), false},
		{"zero input", CNNConfig{Name: "z", InC: 0, InH: 4, InW: 4, Classes: 2}, true},
		{"one class", CNNConfig{Name: "o", InC: 1, InH: 4, InW: 4, Classes: 1}, true},
		{
			"odd pool",
			CNNConfig{Name: "p", InC: 1, InH: 5, InW: 5, Classes: 2,
				Convs: []ConvSpec{{OutC: 2, K: 3, Pad: 1, Pool: true}}},
			true,
		},
		{
			"kernel exceeds input",
			CNNConfig{Name: "k", InC: 1, InH: 2, InW: 2, Classes: 2,
				Convs: []ConvSpec{{OutC: 2, K: 5}}},
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPaperArchitecturesBuildAndRun(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, cfg := range []CNNConfig{MNISTCNNConfig(16, 16), CIFARCNNConfig(16, 16)} {
		net, err := NewCNN(cfg, rng)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		x := tensor.Randn(rng, 1, 2, cfg.InC, cfg.InH, cfg.InW)
		out := net.Forward(x, false)
		if out.Dim(0) != 2 || out.Dim(1) != 10 {
			t.Fatalf("%s: output shape %v", cfg.Name, out.Shape())
		}
	}
}
