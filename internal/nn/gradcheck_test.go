package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mach-fl/mach/internal/tensor"
)

// numericalGrad estimates d(loss)/d(param[i]) with central differences.
func numericalGrad(net *Network, x *tensor.Tensor, labels []int, p *Param, i int) float64 {
	const h = 1e-5
	orig := p.Value.Data()[i]
	p.Value.Data()[i] = orig + h
	lossPlus, _ := SoftmaxCrossEntropy(net.Forward(x, false), labels)
	p.Value.Data()[i] = orig - h
	lossMinus, _ := SoftmaxCrossEntropy(net.Forward(x, false), labels)
	p.Value.Data()[i] = orig
	return (lossPlus - lossMinus) / (2 * h)
}

// checkGradients verifies analytic vs numerical gradients on a sample of
// coordinates from every parameter of the network.
func checkGradients(t *testing.T, net *Network, x *tensor.Tensor, labels []int, rng *rand.Rand) {
	t.Helper()
	net.ZeroGrad()
	logits := net.Forward(x, true)
	_, grad := SoftmaxCrossEntropy(logits, labels)
	net.Backward(grad)
	for _, p := range net.Params() {
		n := p.Value.Len()
		samples := 8
		if n < samples {
			samples = n
		}
		for s := 0; s < samples; s++ {
			i := rng.Intn(n)
			analytic := p.Grad.Data()[i]
			numeric := numericalGrad(net, x, labels, p, i)
			scale := math.Max(1e-4, math.Abs(analytic)+math.Abs(numeric))
			if math.Abs(analytic-numeric)/scale > 1e-4 {
				t.Fatalf("%s[%d]: analytic %.8g vs numeric %.8g", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork("dense-test",
		NewDense("fc1", 6, 5, rng),
		NewReLU("r1"),
		NewDense("fc2", 5, 3, rng),
	)
	x := tensor.Randn(rng, 1, 4, 6)
	labels := []int{0, 1, 2, 1}
	checkGradients(t, net, x, labels, rng)
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, K: 3, Stride: 1, Pad: 1}
	net := NewNetwork("conv-test",
		NewConv2D("c1", g, 3, rng),
		NewReLU("r1"),
		NewFlatten("flat"),
		NewDense("fc", 3*6*6, 4, rng),
	)
	x := tensor.Randn(rng, 1, 3, 2, 6, 6)
	labels := []int{0, 3, 1}
	checkGradients(t, net, x, labels, rng)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, K: 3, Stride: 1, Pad: 1}
	net := NewNetwork("pool-test",
		NewConv2D("c1", g, 2, rng),
		NewMaxPool2("p1"),
		NewFlatten("flat"),
		NewDense("fc", 2*2*2, 3, rng),
	)
	x := tensor.Randn(rng, 1, 2, 1, 4, 4)
	labels := []int{2, 0}
	checkGradients(t, net, x, labels, rng)
}

func TestFullCNNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := CNNConfig{
		Name: "tiny-cnn",
		InC:  1, InH: 8, InW: 8,
		Convs: []ConvSpec{
			{OutC: 2, K: 3, Pad: 1, Pool: true},
			{OutC: 4, K: 3, Pad: 1, Pool: true},
		},
		Hidden:  []int{8},
		Classes: 4,
	}
	net, err := NewCNN(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 2, 1, 8, 8)
	labels := []int{1, 3}
	checkGradients(t, net, x, labels, rng)
}

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	// Uniform logits over C classes → loss = ln C, grad rows sum to 0.
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform-logit loss = %v, want ln 4 = %v", loss, math.Log(4))
	}
	for i := 0; i < 2; i++ {
		rowSum := 0.0
		for j := 0; j < 4; j++ {
			rowSum += grad.At(i, j)
		}
		if math.Abs(rowSum) > 1e-12 {
			t.Fatalf("grad row %d sums to %v, want 0", i, rowSum)
		}
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	// Huge logits must not overflow to NaN/Inf.
	logits := tensor.FromSlice([]float64{1e4, -1e4, 0, 1e4}, 1, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{1})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss not finite: %v", loss)
	}
	for _, v := range grad.Data() {
		if math.IsNaN(v) {
			t.Fatal("grad contains NaN")
		}
	}
}

func TestSoftmaxRowsAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Softmax(tensor.Randn(rng, 3, 5, 7))
	for i := 0; i < 5; i++ {
		sum := 0.0
		for j := 0; j < 7; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestArgmax(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		0.1, 0.9, 0.0,
		2.0, -1.0, 1.0,
		0.0, 0.0, 5.0,
	}, 3, 3)
	want := []int{1, 0, 2}
	got := Argmax(logits)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Argmax[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
