package nn

import (
	"fmt"
	"math/rand"

	"github.com/mach-fl/mach/internal/tensor"
)

// ConvSpec describes one convolution stage of a CNN: a 3×3 (or K×K)
// convolution followed by ReLU and, optionally, 2×2 max-pooling.
type ConvSpec struct {
	OutC int  // output channels
	K    int  // kernel size (default 3)
	Pad  int  // zero padding (default keeps size for K=3: pad 1)
	Pool bool // append a 2×2/stride-2 max-pool
}

// CNNConfig fully describes a convolutional classifier: input geometry,
// convolution stages, fully connected hidden widths, and the number of
// output classes.
type CNNConfig struct {
	Name    string
	InC     int
	InH     int
	InW     int
	Convs   []ConvSpec
	Hidden  []int
	Classes int
}

// Validate reports whether the configuration produces a consistent network.
func (c CNNConfig) Validate() error {
	if c.InC <= 0 || c.InH <= 0 || c.InW <= 0 {
		return fmt.Errorf("nn: CNNConfig %q has non-positive input dims", c.Name)
	}
	if c.Classes <= 1 {
		return fmt.Errorf("nn: CNNConfig %q needs ≥ 2 classes", c.Name)
	}
	h, w := c.InH, c.InW
	for i, cs := range c.Convs {
		k := cs.K
		if k == 0 {
			k = 3
		}
		g := tensor.ConvGeom{InC: 1, InH: h, InW: w, K: k, Stride: 1, Pad: cs.Pad}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("nn: CNNConfig %q conv %d: %w", c.Name, i, err)
		}
		h, w = g.OutH(), g.OutW()
		if cs.Pool {
			if h%2 != 0 || w%2 != 0 {
				return fmt.Errorf("nn: CNNConfig %q conv %d pools odd feature map %dx%d", c.Name, i, h, w)
			}
			h, w = h/2, w/2
		}
	}
	return nil
}

// NewCNN builds a CNN classifier from the configuration. Weights are
// He-initialized from rng so that two calls with identically seeded rngs
// produce identical networks.
func NewCNN(cfg CNNConfig, rng *rand.Rand) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var layers []Layer
	inC, h, w := cfg.InC, cfg.InH, cfg.InW
	for i, cs := range cfg.Convs {
		k := cs.K
		if k == 0 {
			k = 3
		}
		g := tensor.ConvGeom{InC: inC, InH: h, InW: w, K: k, Stride: 1, Pad: cs.Pad}
		conv := NewConv2D(fmt.Sprintf("conv%d", i+1), g, cs.OutC, rng)
		layers = append(layers, conv, NewReLU(fmt.Sprintf("relu_c%d", i+1)))
		inC, h, w = cs.OutC, g.OutH(), g.OutW()
		if cs.Pool {
			layers = append(layers, NewMaxPool2(fmt.Sprintf("pool%d", i+1)))
			h, w = h/2, w/2
		}
	}
	layers = append(layers, NewFlatten("flatten"))
	in := inC * h * w
	for i, width := range cfg.Hidden {
		layers = append(layers,
			NewDense(fmt.Sprintf("fc%d", i+1), in, width, rng),
			NewReLU(fmt.Sprintf("relu_f%d", i+1)))
		in = width
	}
	layers = append(layers, NewDense("out", in, cfg.Classes, rng))
	return NewNetwork(cfg.Name, layers...), nil
}

// MNISTCNNConfig is the paper's MNIST/FMNIST architecture — 2 convolutional
// layers and 2 fully connected layers — scaled to the given input geometry.
// Channel widths default to a laptop-scale variant (the paper does not report
// widths); pass wider values through the returned config if desired.
func MNISTCNNConfig(inH, inW int) CNNConfig {
	return CNNConfig{
		Name: "mnist-cnn",
		InC:  1, InH: inH, InW: inW,
		Convs: []ConvSpec{
			{OutC: 8, K: 3, Pad: 1, Pool: true},
			{OutC: 16, K: 3, Pad: 1, Pool: true},
		},
		Hidden:  []int{64},
		Classes: 10,
	}
}

// CIFARCNNConfig is the paper's CIFAR-10 architecture — 3 convolutional
// layers and 2 fully connected layers — scaled to the given input geometry.
func CIFARCNNConfig(inH, inW int) CNNConfig {
	return CNNConfig{
		Name: "cifar-cnn",
		InC:  3, InH: inH, InW: inW,
		Convs: []ConvSpec{
			{OutC: 8, K: 3, Pad: 1, Pool: true},
			{OutC: 16, K: 3, Pad: 1, Pool: true},
			{OutC: 16, K: 3, Pad: 1, Pool: true},
		},
		Hidden:  []int{64},
		Classes: 10,
	}
}

// NewMLP builds a plain multi-layer perceptron classifier over flat feature
// vectors; the test suite uses it as a fast stand-in for the CNNs.
func NewMLP(name string, in int, hidden []int, classes int, rng *rand.Rand) *Network {
	layers := []Layer{NewFlatten("flatten")} // accept [B, in] or [B, C, H, W]
	cur := in
	for i, width := range hidden {
		layers = append(layers,
			NewDense(fmt.Sprintf("fc%d", i+1), cur, width, rng),
			NewReLU(fmt.Sprintf("relu%d", i+1)))
		cur = width
	}
	layers = append(layers, NewDense("out", cur, classes, rng))
	return NewNetwork(name, layers...)
}
