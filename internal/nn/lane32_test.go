package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mach-fl/mach/internal/tensor"
)

// laneTestBatch draws one random batch as both the flat f64 slice Lane32
// consumes and the tensor the f64 network consumes (same storage layout).
func laneTestBatch(rng *rand.Rand, batch int, shape ...int) (*tensor.Tensor, []float64, []int) {
	dims := append([]int{batch}, shape...)
	x := tensor.Randn(rng, 1, dims...)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	return x, x.Data(), labels
}

// TestLane32TracksF64Trajectory trains the same seeded MLP in both lanes on
// identical batches and checks the f32 trajectory stays within float32
// tolerance of the f64 one — losses per step and final parameters.
func TestLane32TracksF64Trajectory(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewMLP("lane-mlp", 16, []int{16}, 10, rng)
	lane, err := NewLane32(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := lane.LoadParams(0, net.ParamVector()); err != nil {
		t.Fatal(err)
	}
	opt := NewSGD(0.05)
	losses := make([]float64, 1)
	norms := make([]float64, 1)
	batchRng := rand.New(rand.NewSource(12))
	for step := 0; step < 30; step++ {
		x, flat, labels := laneTestBatch(batchRng, 8, 16)
		loss64, norm64 := net.TrainStep(x, labels, opt)
		lane.SetInput(0, 8, flat)
		lane.TrainStep(1, 8, [][]int{labels}, 0.05, losses, norms)
		if math.Abs(losses[0]-loss64) > 1e-4*(1+math.Abs(loss64)) {
			t.Fatalf("step %d: f32 loss %v vs f64 loss %v", step, losses[0], loss64)
		}
		if math.Abs(norms[0]-norm64) > 1e-3*(1+norm64) {
			t.Fatalf("step %d: f32 ‖g‖² %v vs f64 %v", step, norms[0], norm64)
		}
	}
	p64 := net.ParamVector()
	p32 := lane.ParamsInto(0, nil)
	for i := range p64 {
		if math.Abs(p32[i]-p64[i]) > 1e-3*(1+math.Abs(p64[i])) {
			t.Fatalf("param %d diverged: f32 lane %v vs f64 %v", i, p32[i], p64[i])
		}
	}
}

// TestLane32TracksF64CNN runs the conv/pool pipeline through both lanes.
func TestLane32TracksF64CNN(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := CNNConfig{
		Name: "lane-cnn",
		InC:  1, InH: 8, InW: 8,
		Convs: []ConvSpec{
			{OutC: 2, K: 3, Pad: 1, Pool: true},
			{OutC: 4, K: 3, Pad: 1, Pool: true},
		},
		Hidden:  []int{8},
		Classes: 10,
	}
	net, err := NewCNN(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	lane, err := NewLane32(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := lane.LoadParams(0, net.ParamVector()); err != nil {
		t.Fatal(err)
	}
	opt := NewSGD(0.05)
	losses, norms := make([]float64, 1), make([]float64, 1)
	batchRng := rand.New(rand.NewSource(14))
	for step := 0; step < 5; step++ {
		x, flat, labels := laneTestBatch(batchRng, 4, 1, 8, 8)
		loss64, _ := net.TrainStep(x, labels, opt)
		lane.SetInput(0, 4, flat)
		lane.TrainStep(1, 4, [][]int{labels}, 0.05, losses, norms)
		if math.Abs(losses[0]-loss64) > 1e-4*(1+math.Abs(loss64)) {
			t.Fatalf("step %d: f32 loss %v vs f64 loss %v", step, losses[0], loss64)
		}
	}
	p64 := net.ParamVector()
	p32 := lane.ParamsInto(0, nil)
	for i := range p64 {
		if math.Abs(p32[i]-p64[i]) > 1e-3*(1+math.Abs(p64[i])) {
			t.Fatalf("param %d diverged: f32 lane %v vs f64 %v", i, p32[i], p64[i])
		}
	}
}

// TestLane32TracksF64BatchNorm covers the batch-norm op (f64 statistics,
// f32 normalize) against the reference layer.
func TestLane32TracksF64BatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := NewNetwork("lane-bn",
		NewDense("fc1", 12, 6, rng),
		NewBatchNorm1D("bn", 6),
		NewReLU("r"),
		NewDense("fc2", 6, 10, rng),
	)
	lane, err := NewLane32(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := lane.LoadParams(0, net.ParamVector()); err != nil {
		t.Fatal(err)
	}
	opt := NewSGD(0.05)
	losses, norms := make([]float64, 1), make([]float64, 1)
	batchRng := rand.New(rand.NewSource(16))
	for step := 0; step < 10; step++ {
		x, flat, labels := laneTestBatch(batchRng, 6, 12)
		loss64, _ := net.TrainStep(x, labels, opt)
		lane.SetInput(0, 6, flat)
		lane.TrainStep(1, 6, [][]int{labels}, 0.05, losses, norms)
		if math.Abs(losses[0]-loss64) > 1e-4*(1+math.Abs(loss64)) {
			t.Fatalf("step %d: f32 loss %v vs f64 loss %v", step, losses[0], loss64)
		}
	}
}

// TestLane32GradCheck verifies the f32 lane's analytic gradients against
// central differences on the float64 master weights, with the looser
// tolerance float32 arithmetic warrants.
func TestLane32GradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := NewNetwork("lane-gradcheck",
		NewDense("fc1", 6, 5, rng),
		NewReLU("r1"),
		NewDense("fc2", 5, 3, rng),
	)
	lane, err := NewLane32(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := net.ParamVector()
	x, flat, _ := laneTestBatch(rng, 4, 6)
	_ = x
	labels := []int{0, 1, 2, 1}
	losses, norms := make([]float64, 1), make([]float64, 1)
	lossAt := func(params []float64) float64 {
		if err := lane.LoadParams(0, params); err != nil {
			t.Fatal(err)
		}
		lane.SetInput(0, 4, flat)
		lane.TrainStep(1, 4, [][]int{labels}, 0, losses, norms) // lr=0: loss+grads only
		return losses[0]
	}
	lossAt(v)
	analytic := make([]float64, len(v))
	for i, g := range lane.grads[0] {
		analytic[i] = float64(g)
	}
	const h = 1e-3
	for s := 0; s < 40; s++ {
		i := rng.Intn(len(v))
		orig := v[i]
		v[i] = orig + h
		plus := lossAt(v)
		v[i] = orig - h
		minus := lossAt(v)
		v[i] = orig
		numeric := (plus - minus) / (2 * h)
		scale := math.Max(1e-2, math.Abs(analytic[i])+math.Abs(numeric))
		if math.Abs(analytic[i]-numeric)/scale > 2e-2 {
			t.Fatalf("param %d: analytic %.6g vs numeric %.6g", i, analytic[i], numeric)
		}
	}
}

// TestLane32FusedSlotsBitIdenticalToSolo is the f32 fusion contract: a
// multi-slot fused step must produce bit-identical per-slot results to
// independent single-slot lanes, regardless of which slot a device occupies.
func TestLane32FusedSlotsBitIdenticalToSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	net := NewMLP("lane-fused", 16, []int{16}, 10, rng)
	const slots = 3
	fused, err := NewLane32(net, slots)
	if err != nil {
		t.Fatal(err)
	}
	solos := make([]*Lane32, slots)
	params := make([][]float64, slots)
	inputs := make([][]float64, slots)
	labels := make([][]int, slots)
	for s := 0; s < slots; s++ {
		solo, err := NewLane32(net, 1)
		if err != nil {
			t.Fatal(err)
		}
		solos[s] = solo
		perturbed := net.ParamVector()
		for i := range perturbed {
			perturbed[i] += 0.01 * rng.NormFloat64()
		}
		params[s] = perturbed
		_, flat, lb := laneTestBatch(rng, 8, 16)
		inputs[s], labels[s] = flat, lb
	}
	fLoss, fNorm := make([]float64, slots), make([]float64, slots)
	sLoss, sNorm := make([]float64, 1), make([]float64, 1)
	for step := 0; step < 3; step++ {
		for s := 0; s < slots; s++ {
			if err := fused.LoadParams(s, params[s]); err != nil {
				t.Fatal(err)
			}
			fused.SetInput(s, 8, inputs[s])
		}
		fused.TrainStep(slots, 8, labels, 0.05, fLoss, fNorm)
		for s := 0; s < slots; s++ {
			if err := solos[s].LoadParams(0, params[s]); err != nil {
				t.Fatal(err)
			}
			solos[s].SetInput(0, 8, inputs[s])
			solos[s].TrainStep(1, 8, labels[s:s+1], 0.05, sLoss, sNorm)
			if fLoss[s] != sLoss[0] || fNorm[s] != sNorm[0] {
				t.Fatalf("step %d slot %d: fused (loss %v, norm %v) != solo (loss %v, norm %v)",
					step, s, fLoss[s], fNorm[s], sLoss[0], sNorm[0])
			}
			fp := fused.ParamsInto(s, nil)
			sp := solos[s].ParamsInto(0, nil)
			for i := range fp {
				if math.Float64bits(fp[i]) != math.Float64bits(sp[i]) {
					t.Fatalf("step %d slot %d param %d: fused %v != solo %v", step, s, i, fp[i], sp[i])
				}
			}
			params[s] = fp // continue both trajectories from the same point
		}
	}
}

// TestLane32SteadyStateZeroAllocs pins the lane-aware scratch contract: once
// the pooled buffers exist, SetInput+TrainStep allocates nothing.
func TestLane32SteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := NewMLP("lane-alloc", 16, []int{32, 16}, 10, rng)
	lane, err := NewLane32(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, flat, labelRow := laneTestBatch(rng, 8, 16)
	labels := [][]int{labelRow, labelRow}
	losses, norms := make([]float64, 2), make([]float64, 2)
	v := net.ParamVector()
	for s := 0; s < 2; s++ {
		if err := lane.LoadParams(s, v); err != nil {
			t.Fatal(err)
		}
		lane.SetInput(s, 8, flat)
	}
	lane.TrainStep(2, 8, labels, 0.05, losses, norms) // warm-up installs buffers
	allocs := testing.AllocsPerRun(20, func() {
		lane.SetInput(0, 8, flat)
		lane.SetInput(1, 8, flat)
		lane.TrainStep(2, 8, labels, 0.05, losses, norms)
	})
	if allocs != 0 {
		t.Fatalf("steady-state f32 TrainStep allocates %v objects per call", allocs)
	}
}

// TestLane32RejectsDropout: layers the lane cannot reproduce bit-for-bit
// (Dropout owns an RNG stream) must fail at construction, not at runtime.
func TestLane32RejectsDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	net := NewNetwork("lane-drop",
		NewDense("fc", 8, 8, rng),
		NewDropout("d", 0.5, rng),
		NewDense("out", 8, 4, rng),
	)
	if _, err := NewLane32(net, 1); err == nil {
		t.Fatal("NewLane32 accepted a Dropout layer")
	}
}

// TestLockstepBitIdenticalToTrainStep is the f64 fusion contract: lockstep
// execution across several networks must equal per-device TrainStep calls
// bit-for-bit (losses, gradient norms, updated parameters).
func TestLockstepBitIdenticalToTrainStep(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 3
	fusedNets := make([]*Network, n)
	soloNets := make([]*Network, n)
	xs := make([]*tensor.Tensor, n)
	labels := make([][]int, n)
	fusedOpts := make([]Optimizer, n)
	for d := 0; d < n; d++ {
		net := NewMLP("lockstep", 16, []int{16}, 10, rand.New(rand.NewSource(int64(30+d))))
		fusedNets[d] = net
		soloNets[d] = net.Clone()
		x, _, lb := laneTestBatch(rng, 8, 16)
		xs[d], labels[d] = x, lb
		fusedOpts[d] = NewSGD(0.05)
	}
	var ls Lockstep
	losses, norms := make([]float64, n), make([]float64, n)
	for step := 0; step < 3; step++ {
		ls.Step(fusedNets, xs, labels, fusedOpts, losses, norms)
		for d := 0; d < n; d++ {
			soloLoss, soloNorm := soloNets[d].TrainStep(xs[d], labels[d], NewSGD(0.05))
			if losses[d] != soloLoss || norms[d] != soloNorm {
				t.Fatalf("step %d net %d: lockstep (loss %v, norm %v) != solo (loss %v, norm %v)",
					step, d, losses[d], norms[d], soloLoss, soloNorm)
			}
			fp, sp := fusedNets[d].ParamVector(), soloNets[d].ParamVector()
			for i := range fp {
				if math.Float64bits(fp[i]) != math.Float64bits(sp[i]) {
					t.Fatalf("step %d net %d param %d: lockstep %v != solo %v", step, d, i, fp[i], sp[i])
				}
			}
		}
	}
}

// TestLockstepSingleEqualsTrainStep: the one-device property — fusing a
// single network is exactly the unfused step.
func TestLockstepSingleEqualsTrainStep(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	fused := NewMLP("single", 16, []int{16}, 10, rng)
	solo := fused.Clone()
	x, _, labels := laneTestBatch(rng, 8, 16)
	var ls Lockstep
	losses, norms := make([]float64, 1), make([]float64, 1)
	ls.Step([]*Network{fused}, []*tensor.Tensor{x}, [][]int{labels}, []Optimizer{NewSGD(0.05)}, losses, norms)
	soloLoss, soloNorm := solo.TrainStep(x, labels, NewSGD(0.05))
	if losses[0] != soloLoss || norms[0] != soloNorm {
		t.Fatalf("lockstep (loss %v, norm %v) != TrainStep (loss %v, norm %v)", losses[0], norms[0], soloLoss, soloNorm)
	}
	fp, sp := fused.ParamVector(), solo.ParamVector()
	for i := range fp {
		if fp[i] != sp[i] {
			t.Fatalf("param %d: lockstep %v != TrainStep %v", i, fp[i], sp[i])
		}
	}
}
