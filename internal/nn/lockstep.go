package nn

import (
	"fmt"

	"github.com/mach-fl/mach/internal/tensor"
)

// Lockstep fuses the local updates of several structurally identical
// float64 networks into one layer-lockstep pass: layer 0 runs for every
// network, then layer 1, and so on, so the devices of one edge march through
// the architecture together with each layer's code and weights hot in cache
// (the float64 half of cross-device batch fusion, DESIGN.md §10).
//
// Per-device weights diverge during local epochs, so the devices' products
// cannot collapse into a single GEMM without changing the paper's per-device
// update semantics; lockstep interleaving is the fusion that preserves them
// exactly. Every network executes precisely the operation sequence of
// Network.TrainStep on its own layers, scratch and optimizer state, so the
// fused result is bit-identical to running the unfused steps one device at a
// time — the fused-vs-unfused identity the determinism contract promises for
// the f64 lane. With one network, Step is Network.TrainStep verbatim.
//
// A Lockstep value only holds the activation cursor slice; it may be reused
// across rounds and edges. It is not safe for concurrent use.
type Lockstep struct {
	acts []*tensor.Tensor
}

// Step runs one fused minibatch: for each i, nets[i] trains on xs[i] with
// labels[i] and optimizer opts[i], writing the batch loss to losses[i] and
// the pre-update squared gradient norm to sqNorms[i].
func (ls *Lockstep) Step(nets []*Network, xs []*tensor.Tensor, labels [][]int, opts []Optimizer, losses, sqNorms []float64) {
	n := len(nets)
	if n == 0 {
		return
	}
	if len(xs) != n || len(labels) != n || len(opts) != n || len(losses) < n || len(sqNorms) < n {
		panic(fmt.Sprintf("nn: Lockstep.Step got %d nets but %d inputs, %d label sets, %d optimizers", n, len(xs), len(labels), len(opts)))
	}
	depth := len(nets[0].layers)
	for d := 1; d < n; d++ {
		if len(nets[d].layers) != depth {
			panic(fmt.Sprintf("nn: Lockstep networks differ in depth: %q has %d layers, %q has %d", nets[0].name, depth, nets[d].name, len(nets[d].layers)))
		}
	}
	if cap(ls.acts) < n {
		ls.acts = make([]*tensor.Tensor, n)
	}
	acts := ls.acts[:n]
	for d := 0; d < n; d++ {
		nets[d].ZeroGrad()
		acts[d] = xs[d]
	}
	for li := 0; li < depth; li++ {
		for d := 0; d < n; d++ {
			acts[d] = nets[d].layers[li].Forward(acts[d], true)
		}
	}
	for d := 0; d < n; d++ {
		net := nets[d]
		logits := acts[d]
		net.lossGrad = ensure2(net.lossGrad, logits.Dim(0), logits.Dim(1))
		losses[d] = SoftmaxCrossEntropyInto(logits, labels[d], net.lossGrad)
		acts[d] = net.lossGrad
	}
	for li := depth - 1; li >= 0; li-- {
		for d := 0; d < n; d++ {
			acts[d] = nets[d].layers[li].Backward(acts[d])
		}
	}
	for d := 0; d < n; d++ {
		sqNorms[d] = nets[d].GradSquaredNorm()
		opts[d].Step(nets[d].Params())
	}
}
