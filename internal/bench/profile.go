package bench

// ProfileMeta records the pprof profile files a machbench invocation wrote
// alongside its JSON result, so a recorded number can be traced back to the
// profiles captured with it. Nil means the invocation captured none.
type ProfileMeta struct {
	CPU   string `json:"cpu,omitempty"`
	Mem   string `json:"mem,omitempty"`
	Block string `json:"block,omitempty"`
	Mutex string `json:"mutex,omitempty"`
}
