package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/parallel"
	"github.com/mach-fl/mach/internal/sampling"
	"github.com/mach-fl/mach/internal/telemetry"
)

// ScaleCell is one population shape of the scale benchmark.
type ScaleCell struct {
	Devices int `json:"devices"`
	Edges   int `json:"edges"`
	// SkipNaive omits the cell's naive baseline row. The naive control
	// plane rescans every device per edge — O(Edges·Devices) per step —
	// which at the million-device cell would be ~10^10 membership probes
	// per step; the indexed and sharded rows still cross-check each other.
	SkipNaive bool `json:"skip_naive,omitempty"`
	// StreamOnly omits every dense-mobility row of the cell: only the
	// streaming StepSource rows run. This is how the long-horizon headline
	// cell stays feasible — a dense Schedule is Steps×Devices ints, which
	// at 1M devices × 200 steps is ~1.6 GB of resident attachment matrix,
	// while the streaming window holds O(Devices) regardless of horizon.
	StreamOnly bool `json:"stream_only,omitempty"`
	// Steps, when positive, overrides the config-level measured step count
	// for this cell (warm-up is unchanged). Used by the long-horizon
	// streaming cell, whose point is the horizon itself.
	Steps int `json:"steps,omitempty"`
}

// ScaleConfig parameterizes `machbench -exp scale`: a sampling-only workload
// that runs the per-step control plane — membership, MACH probabilities,
// sampling coins, experience updating — with gradient norms drawn from a
// seeded synthetic generator instead of NN training, so the numbers isolate
// control-plane throughput from the math kernels.
type ScaleConfig struct {
	// Cells are the (devices, edges) shapes measured; each gets a naive
	// baseline row (pre-index control plane: per-edge MembersAt rescans,
	// fresh RNGs and allocating sampling) and an indexed row (membership
	// index, pooled decide state, in-place sampling, parallel decide).
	Cells []ScaleCell `json:"cells"`
	// Steps is the measured step count; WarmupSteps run first so pooled
	// buffers reach steady state before allocation counters start.
	Steps       int `json:"steps"`
	WarmupSteps int `json:"warmup_steps"`
	// CloudInterval is T_g, the experience-folding period (Algorithm 2).
	CloudInterval int `json:"cloud_interval"`
	// StayProb is the per-step edge stay probability of the Markov mobility
	// model; 1-StayProb is the expected fraction of devices the index's
	// delta path must repair each step.
	StayProb float64 `json:"stay_prob"`
	// Participation sets the per-edge capacity K_n =
	// Participation·Devices/Edges, exactly as in the training engine.
	Participation float64 `json:"participation"`
	// Workers bounds the parallel decide of the indexed rows
	// (0 = GOMAXPROCS). The naive baseline is serial, as the pre-index
	// engine was.
	Workers int   `json:"workers"`
	Seed    int64 `json:"seed"`
	// Shards, when non-empty, adds one sharded-control-plane row per entry
	// and cell: the edge range splits into that many shard goroutines, each
	// owning a range-scoped member index and deciding its edges serially
	// with per-shard buffered observations, merged at a step barrier in
	// shard order (the in-process actor plane of DESIGN.md §11). Sampled
	// counts must match the indexed mode exactly; the harness enforces it.
	Shards []int `json:"shards,omitempty"`
}

// ScaleBenchPreset is the recorded sweep of BENCH_scale.json: device
// populations 1k/10k/100k with proportional edge counts, an edge-count sweep
// at 10k devices, and a city-scale headline cell (100k devices × 3k edges —
// the Shanghai-Telecom trace the paper evaluates on has ~3k base stations)
// where the naive control plane's O(Edges·Devices) rescan dominates.
func ScaleBenchPreset() ScaleConfig {
	return ScaleConfig{
		Cells: []ScaleCell{
			{Devices: 1_000, Edges: 10},
			{Devices: 10_000, Edges: 10},
			{Devices: 10_000, Edges: 100},
			{Devices: 10_000, Edges: 1_000},
			{Devices: 100_000, Edges: 1_000},
			{Devices: 100_000, Edges: 3_000},
			{Devices: 1_000_000, Edges: 10_000, SkipNaive: true},
			// The long-horizon headline: 200 measured steps at the
			// million-device shape. Dense mobility would need a
			// ~1.6 GB schedule matrix for this cell; only the streaming
			// O(Devices) window runs it.
			{Devices: 1_000_000, Edges: 10_000, SkipNaive: true, StreamOnly: true, Steps: 200},
		},
		Steps:         30,
		WarmupSteps:   5,
		CloudInterval: 5,
		StayProb:      0.9,
		Participation: 0.1,
		Seed:          1,
		Shards:        []int{1, 4, 16},
	}
}

// ScaleBenchQuickPreset is a seconds-scale smoke configuration for CI.
func ScaleBenchQuickPreset() ScaleConfig {
	cfg := ScaleBenchPreset()
	cfg.Cells = []ScaleCell{{Devices: 500, Edges: 5}, {Devices: 2_000, Edges: 20}}
	cfg.Steps = 10
	cfg.WarmupSteps = 2
	cfg.Shards = []int{1, 2}
	return cfg
}

// Validate reports whether the configuration is usable.
func (c ScaleConfig) Validate() error {
	switch {
	case len(c.Cells) == 0:
		return fmt.Errorf("bench: scale config has no cells")
	case c.Steps <= 0 || c.WarmupSteps < 0:
		return fmt.Errorf("bench: scale steps %d/%d invalid", c.Steps, c.WarmupSteps)
	case c.CloudInterval <= 0:
		return fmt.Errorf("bench: scale cloud interval %d must be positive", c.CloudInterval)
	case c.StayProb < 0 || c.StayProb > 1:
		return fmt.Errorf("bench: scale stay probability %v outside [0,1]", c.StayProb)
	case c.Participation <= 0 || c.Participation > 1:
		return fmt.Errorf("bench: scale participation %v outside (0,1]", c.Participation)
	case c.Workers < 0:
		return fmt.Errorf("bench: scale workers %d negative", c.Workers)
	}
	for _, cell := range c.Cells {
		if cell.Devices <= 0 || cell.Edges <= 0 {
			return fmt.Errorf("bench: scale cell %d devices × %d edges invalid", cell.Devices, cell.Edges)
		}
		if cell.Steps < 0 {
			return fmt.Errorf("bench: scale cell %d×%d step override %d negative", cell.Devices, cell.Edges, cell.Steps)
		}
	}
	for _, s := range c.Shards {
		if s <= 0 {
			return fmt.Errorf("bench: scale shard count %d must be positive", s)
		}
	}
	return nil
}

func (c ScaleConfig) workers() int {
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// ScaleBenchRow is one (cell, mode) measurement.
type ScaleBenchRow struct {
	Devices int `json:"devices"`
	Edges   int `json:"edges"`
	// Mode is "naive" (pre-index serial control plane), "indexed"
	// (membership index + pooled in-place sampling + parallel decide) or
	// "sharded" (shard actors over range-scoped indexes with batched
	// observation merge).
	Mode string `json:"mode"`
	// Mobility is "dense" (materialized Steps×Devices Schedule matrix) or
	// "stream" (O(Devices) StepSource window advanced by move deltas). Both
	// replay identical attachments — the harness enforces equal sampled
	// counts across all rows of a cell, making this the dense-vs-streaming
	// bit-identity gate.
	Mobility string `json:"mobility"`
	// MobilityResidentBytes is the heap held by the mobility plane alone —
	// a GC'd HeapAlloc delta bracketing schedule/source construction. Dense
	// rows grow with Steps×Devices; streaming rows stay O(Devices).
	MobilityResidentBytes int64 `json:"mobility_resident_bytes"`
	// Shards is the shard count of a "sharded" row (0 otherwise).
	Shards        int     `json:"shards,omitempty"`
	StepsMeasured int     `json:"steps_measured"`
	WallNs        int64   `json:"wall_ns"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	// NsPerDeviceDecision is WallNs / (steps × devices): the cost of
	// deciding one device's participation for one step, the headline
	// control-plane metric.
	NsPerDeviceDecision float64 `json:"ns_per_device_decision"`
	AllocsPerStep       float64 `json:"allocs_per_step"`
	BytesPerStep        float64 `json:"bytes_per_step"`
	// SampledPerStep is the mean number of devices sampled per step; naive
	// and indexed rows of a cell must agree exactly (checked by the
	// harness), since both replay the same RNG streams.
	SampledPerStep float64 `json:"sampled_per_step"`
	// SpeedupVsNaive is the cell's naive NsPerDeviceDecision over this
	// row's (1 for the naive row itself).
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
}

// ScaleBenchResult is the payload of BENCH_scale.json.
type ScaleBenchResult struct {
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Config     ScaleConfig     `json:"config"`
	Rows       []ScaleBenchRow `json:"rows"`
	// Profiles names the pprof files captured with this run, if any.
	Profiles *ProfileMeta `json:"profiles,omitempty"`
}

// scaleMix reproduces the engine's FNV-style seed mixing so the benchmark's
// per-edge RNG streams have the same structure as training runs.
func scaleMix(parts ...int64) int64 {
	h := int64(1469598103934665603)
	for _, p := range parts {
		h ^= p
		h *= 1099511628211
	}
	return h
}

// synthNorm is the seeded synthetic gradient-norm generator: a hash of
// (seed, step, device) mapped into [0.5, 1.5). It stands in for the squared
// norms NN training would produce, with per-device, per-step variation and
// no training cost.
func synthNorm(seed int64, t, m int) float64 {
	h := uint64(scaleMix(seed, int64(t)+17, int64(m)+1_000_003))
	return 0.5 + float64(h>>11)/float64(1<<53)
}

// coinRNG is the benchmark's sampling-coin stream: splitmix64 over a
// one-word state. Both modes seed it identically per edge per step, so the
// naive/indexed divergence check stays meaningful. A cheap stream is
// deliberate — math/rand's Seed re-expands a 607-word feedback register
// (~10µs), a per-edge constant both control planes would pay equally; at
// thousands of edges it would dominate the step and mask the rescan and
// allocation costs this benchmark isolates. The training engine keeps its
// math/rand streams for bit-identity with recorded runs; here only
// naive-vs-indexed equality matters.
type coinRNG uint64

// Float64 returns the next coin in [0, 1).
func (r *coinRNG) Float64() float64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// scaleDecideState is one edge's pooled control-plane machinery in the
// indexed mode, mirroring hfl's edgeDecideState.
type scaleDecideState struct {
	coin    coinRNG
	ctx     sampling.EdgeContext
	probs   []float64
	normBuf [1]float64
	sampled int64 // devices sampled by this edge in the current step
}

// scaleEngine runs the sampling-only control plane over a synthetic Markov
// mobility plane: per step it computes MACH probabilities for every edge,
// draws the sampling coins in member order from per-edge coinRNG streams, and
// feeds synthetic gradient norms of the sampled devices back into the
// experience book. No models exist; everything measured is control plane.
//
// The mobility plane is a mobility.StepSource either way: streaming rows use
// the MarkovSource window directly, dense rows Materialize the same source
// into a Steps×Devices Schedule and walk it through the adapter. Both
// trajectories are therefore identical, which is what lets the harness use
// cross-mode sampled-count equality as the dense-vs-streaming bit-identity
// gate.
type scaleEngine struct {
	cfg   ScaleConfig
	sched *mobility.Schedule // dense rows only; nil when streaming
	src   mobility.StepSource

	// Mobility window threaded into the member indexes, maintained by
	// advance() exactly as hfl.Engine.advanceMobility does.
	row         []int
	srcPos      int
	stepMoves   []mobility.Move
	stepRebuilt bool
	// mobilityBytes is the GC'd HeapAlloc delta around schedule/source
	// construction: what the mobility plane alone keeps resident.
	mobilityBytes int64

	index    *mobility.MemberIndex
	strat    *sampling.MACH
	capacity float64
	decide   []scaleDecideState
	shards   []*scaleShard // sharded mode only
}

// scaleShard is one control-plane shard of the sharded mode: a contiguous
// edge range with its range-scoped member index and the step's buffered
// observations, merged at the barrier in shard (= edge) order. It mirrors
// hfl's shardState at bench scale.
type scaleShard struct {
	lo, hi  int
	index   *mobility.MemberIndex
	sampled int64

	obsEdges  []int
	obsDevs   []int
	normStore []float64   // flat backing for obsNorms, one norm per record
	obsNorms  [][]float64 // subslices of normStore, built after all appends
}

func newScaleEngine(cfg ScaleConfig, cell ScaleCell, steps int, streaming bool) (*scaleEngine, error) {
	// Bracket mobility-plane construction with GC'd MemStats snapshots so
	// the row records what the schedule (dense) or window (streaming) alone
	// keeps resident. The second GC also collects the drained MarkovSource
	// in the dense case, leaving only the matrix in the delta.
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	var (
		sched *mobility.Schedule
		src   mobility.StepSource
	)
	ms, err := mobility.NewMarkovSource(cfg.Seed, cell.Edges, cell.Devices, steps, cfg.StayProb)
	if err != nil {
		return nil, err
	}
	if streaming {
		src = ms
	} else {
		sched, err = mobility.Materialize(ms)
		if err != nil {
			return nil, err
		}
		src = sched
		ms = nil
	}
	runtime.GC()
	runtime.ReadMemStats(&msAfter)
	mobilityBytes := int64(msAfter.HeapAlloc) - int64(msBefore.HeapAlloc)
	if mobilityBytes < 0 {
		mobilityBytes = 0
	}
	strat, err := sampling.NewMACH(cell.Devices, sampling.DefaultMACHConfig())
	if err != nil {
		return nil, err
	}
	// Pre-warm every device with one folded observation, as a long-running
	// training would have: the measured window then exercises the steady
	// state (estimates from history, experience buffers at capacity) instead
	// of the cold-start transient of first-time buffer growth. Both modes
	// pre-warm identically, so their RNG-replay equality is unaffected.
	warm := make([]float64, 4) // window-sized: caps cover repeat samples
	for m := 0; m < cell.Devices; m++ {
		for i := range warm {
			warm[i] = synthNorm(cfg.Seed, -1-i, m)
		}
		strat.Observe(0, 0, m, warm)
	}
	strat.CloudRound(0)
	eng := &scaleEngine{
		cfg:           cfg,
		sched:         sched,
		src:           src,
		row:           make([]int, cell.Devices),
		srcPos:        -1,
		mobilityBytes: mobilityBytes,
		index:         mobility.NewMemberIndexWindow(0, cell.Edges),
		strat:         strat,
		capacity:      cfg.Participation * float64(cell.Devices) / float64(cell.Edges),
		decide:        make([]scaleDecideState, cell.Edges),
	}
	// Pre-size per-edge buffers past any member count the drift will
	// plausibly reach (binomial mean + 8σ), so the measured window never
	// regrows them as edges hit new population maxima.
	mean := float64(cell.Devices) / float64(cell.Edges)
	capHint := int(mean+8*math.Sqrt(mean)) + 16
	for n := range eng.decide {
		st := &eng.decide[n]
		st.probs = make([]float64, 0, capHint)
		st.ctx.Scratch = make([]float64, 0, capHint)
	}
	return eng, nil
}

// advance positions the engine's mobility window at step t: it pulls the
// step's move stream from the StepSource, maintains the O(Devices)
// attachment row, and leaves (stepMoves, stepRebuilt) for the member
// indexes' AdvanceWith repair. Mirrors hfl.Engine.advanceMobility at bench
// scale. Called once per step from the driver goroutine, before any shard
// reads the window.
func (e *scaleEngine) advance(t int) {
	if t == e.srcPos {
		return
	}
	moves, rebuilt, err := e.src.AdvanceTo(t)
	if err != nil {
		// The harness always advances forward within the generated
		// horizon; an error here is a programming bug, not an input.
		panic(fmt.Sprintf("bench: scale mobility at step %d: %v", t, err))
	}
	if rebuilt || e.srcPos < 0 {
		e.row = e.src.Snapshot(e.row)
		rebuilt = true
	} else {
		mobility.ApplyMoves(e.row, moves)
	}
	e.stepMoves, e.stepRebuilt = moves, rebuilt
	e.srcPos = t
}

// buildShards splits the engine's edges into `shards` contiguous ranges,
// each with its own range-scoped window index. Called once per sharded
// measurement; the monolithic index stays unused in that mode.
func (e *scaleEngine) buildShards(shards int) {
	edges := len(e.decide)
	if shards > edges {
		shards = edges
	}
	e.shards = make([]*scaleShard, shards)
	for s := range e.shards {
		lo, hi := edges*s/shards, edges*(s+1)/shards
		e.shards[s] = &scaleShard{
			lo:    lo,
			hi:    hi,
			index: mobility.NewMemberIndexWindow(lo, hi),
		}
	}
}

// stepSharded runs one step of the sharded control plane: every shard
// advances its range index and decides its edges serially on its own
// goroutine, buffering (edge, device, norm) observations; at the barrier
// the shards' buffers merge into the experience book in shard order via the
// batched observer path (one book lock per shard). The coin streams are
// identical to the other modes, and a device is a member of exactly one
// edge per step, so deferring its observation to the barrier cannot change
// any same-step decision — sampled counts match the indexed mode exactly.
func (e *scaleEngine) stepSharded(t int) int64 {
	// The driver advances the shared mobility window once; the shard
	// goroutines then repair their range indexes from the read-only move
	// stream. Each shard scans the full stream but touches only members in
	// its own range — O(moves) scan, O(own moves) mutation.
	e.advance(t)
	var wg sync.WaitGroup
	wg.Add(len(e.shards))
	for _, sh := range e.shards {
		go func() {
			defer wg.Done()
			sh.sampled = 0
			sh.obsEdges = sh.obsEdges[:0]
			sh.obsDevs = sh.obsDevs[:0]
			sh.normStore = sh.normStore[:0]
			sh.index.AdvanceWith(t, e.row, e.stepMoves, e.stepRebuilt)
			for n := sh.lo; n < sh.hi; n++ {
				st := &e.decide[n]
				members := sh.index.Members(n)
				if len(members) == 0 {
					continue
				}
				st.ctx.Edge = n
				st.ctx.Capacity = e.capacity
				st.coin = coinRNG(scaleMix(e.cfg.Seed, int64(t)+1, int64(n)+101))
				st.ctx.Step = t
				st.ctx.Members = members
				st.probs = e.strat.ProbabilitiesInto(&st.ctx, st.probs)
				for i, m := range members {
					if st.coin.Float64() >= st.probs[i] {
						continue
					}
					sh.sampled++
					sh.obsEdges = append(sh.obsEdges, n)
					sh.obsDevs = append(sh.obsDevs, m)
					sh.normStore = append(sh.normStore, synthNorm(e.cfg.Seed, t, m))
				}
			}
		}()
	}
	wg.Wait()
	total := int64(0)
	for _, sh := range e.shards {
		total += sh.sampled
		if len(sh.obsDevs) == 0 {
			continue
		}
		sh.obsNorms = sh.obsNorms[:0]
		for i := range sh.normStore {
			sh.obsNorms = append(sh.obsNorms, sh.normStore[i:i+1])
		}
		e.strat.ObserveBatch(t, sh.obsEdges, sh.obsDevs, sh.obsNorms)
	}
	e.cloudRound(t)
	return total
}

// stepIndexed runs one step of the optimized control plane: one index
// advance, then a parallel decide over edges with pooled RNGs, contexts and
// in-place probabilities. Draw order within an edge is serial and identical
// to stepNaive, so the sampled sets match bit for bit.
func (e *scaleEngine) stepIndexed(t, workers int) int64 {
	e.advance(t)
	e.index.AdvanceWith(t, e.row, e.stepMoves, e.stepRebuilt)
	parallel.ForEach(workers, len(e.decide), func(n int) {
		st := &e.decide[n]
		st.sampled = 0
		members := e.index.Members(n)
		if len(members) == 0 {
			return
		}
		st.ctx.Edge = n
		st.ctx.Capacity = e.capacity
		st.coin = coinRNG(scaleMix(e.cfg.Seed, int64(t)+1, int64(n)+101))
		st.ctx.Step = t
		st.ctx.Members = members
		st.probs = e.strat.ProbabilitiesInto(&st.ctx, st.probs)
		for i, m := range members {
			if st.coin.Float64() >= st.probs[i] {
				continue
			}
			st.sampled++
			st.normBuf[0] = synthNorm(e.cfg.Seed, t, m)
			e.strat.Observe(t, n, m, st.normBuf[:])
		}
	})
	total := int64(0)
	for n := range e.decide {
		total += e.decide[n].sampled
	}
	e.cloudRound(t)
	return total
}

// stepNaive replays the pre-index control plane's structure: a serial loop
// over edges, a full MembersAt rescan per edge, a freshly allocated context,
// an allocating Probabilities call, and per-observation slice allocation. It
// is the baseline row of BENCH_scale.json and requires the dense schedule —
// MembersAt is exactly the random-access rescan streaming eliminates, so
// naive rows only exist in dense mobility mode. (The coin stream is the same
// cheap coinRNG the indexed mode uses — see its doc comment.)
func (e *scaleEngine) stepNaive(t int) int64 {
	total := int64(0)
	for n := 0; n < e.sched.Edges; n++ {
		members := e.sched.MembersAt(t, n)
		if len(members) == 0 {
			continue
		}
		coin := coinRNG(scaleMix(e.cfg.Seed, int64(t)+1, int64(n)+101))
		ctx := &sampling.EdgeContext{
			Step:     t,
			Edge:     n,
			Capacity: e.capacity,
			Members:  members,
		}
		probs := e.strat.Probabilities(ctx)
		for i, m := range members {
			if coin.Float64() >= probs[i] {
				continue
			}
			total++
			e.strat.Observe(t, n, m, []float64{synthNorm(e.cfg.Seed, t, m)})
		}
	}
	e.cloudRound(t)
	return total
}

func (e *scaleEngine) cloudRound(t int) {
	if (t+1)%e.cfg.CloudInterval == 0 {
		e.strat.CloudRound(t + 1)
	}
}

// measureScaleCell runs one (cell, mode, mobility) measurement: warm-up
// steps grow every pooled buffer, then the measured window is timed between
// two MemStats snapshots. shards is consulted only by the "sharded" mode;
// mob is "dense" or "stream" and selects the mobility plane.
func measureScaleCell(cfg ScaleConfig, cell ScaleCell, mode, mob string, shards int) (ScaleBenchRow, int64, error) {
	totalSteps := cfg.WarmupSteps + cfg.Steps
	eng, err := newScaleEngine(cfg, cell, totalSteps, mob == "stream")
	if err != nil {
		return ScaleBenchRow{}, 0, err
	}
	if mode == "sharded" {
		eng.buildShards(shards)
	}
	workers := cfg.workers()
	step := func(t int) int64 {
		switch mode {
		case "naive":
			return eng.stepNaive(t)
		case "sharded":
			return eng.stepSharded(t)
		default:
			return eng.stepIndexed(t, workers)
		}
	}
	for t := 0; t < cfg.WarmupSteps; t++ {
		step(t)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := telemetry.WallNow()
	sampled := int64(0)
	for t := cfg.WarmupSteps; t < totalSteps; t++ {
		sampled += step(t)
	}
	wall := telemetry.WallSince(start)
	runtime.ReadMemStats(&after)
	row := ScaleBenchRow{
		Devices:               cell.Devices,
		Edges:                 cell.Edges,
		Mode:                  mode,
		Mobility:              mob,
		MobilityResidentBytes: eng.mobilityBytes,
		Shards:                len(eng.shards),
		StepsMeasured:         cfg.Steps,
		WallNs:                wall.Nanoseconds(),
		StepsPerSec:           float64(cfg.Steps) / wall.Seconds(),
		NsPerDeviceDecision:   float64(wall.Nanoseconds()) / (float64(cfg.Steps) * float64(cell.Devices)),
		AllocsPerStep:         float64(after.Mallocs-before.Mallocs) / float64(cfg.Steps),
		BytesPerStep:          float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.Steps),
		SampledPerStep:        float64(sampled) / float64(cfg.Steps),
	}
	return row, sampled, nil
}

// RunScaleBench measures every cell in every mode: naive over the dense
// schedule (unless the cell skips it), indexed over dense and streaming
// mobility, and one streaming sharded row per configured shard count.
// Beyond timing, it is an end-to-end determinism check: all modes of a cell
// must sample exactly the same number of devices in the measured window,
// since they replay the same per-edge coin streams over the same
// attachments — the dense rows materialize the very MarkovSource the
// streaming rows consume, so the cross-mode equality doubles as the
// streaming-vs-dense bit-identity gate.
func RunScaleBench(cfg ScaleConfig) (*ScaleBenchResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &ScaleBenchResult{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	for _, cell := range cfg.Cells {
		// A cell-level step override changes only this cell's horizon.
		ccfg := cfg
		if cell.Steps > 0 {
			ccfg.Steps = cell.Steps
		}
		refSampled, haveRef := int64(0), false
		check := func(mode string, sampled int64) error {
			if !haveRef {
				refSampled, haveRef = sampled, true
				return nil
			}
			if sampled != refSampled {
				return fmt.Errorf("bench: scale %d×%d: %s sampled %d devices, want %d — control planes diverged",
					cell.Devices, cell.Edges, mode, sampled, refSampled)
			}
			return nil
		}
		naiveNs := 0.0
		if !cell.SkipNaive && !cell.StreamOnly {
			naive, sampled, err := measureScaleCell(ccfg, cell, "naive", "dense", 0)
			if err != nil {
				return nil, fmt.Errorf("bench: scale %d×%d naive: %w", cell.Devices, cell.Edges, err)
			}
			if err := check("naive/dense", sampled); err != nil {
				return nil, err
			}
			naive.SpeedupVsNaive = 1
			naiveNs = naive.NsPerDeviceDecision
			res.Rows = append(res.Rows, naive)
		}
		speedup := func(row *ScaleBenchRow) {
			if naiveNs > 0 && row.NsPerDeviceDecision > 0 {
				row.SpeedupVsNaive = naiveNs / row.NsPerDeviceDecision
			}
		}
		mobilities := []string{"dense", "stream"}
		if cell.StreamOnly {
			mobilities = []string{"stream"}
		}
		for _, mob := range mobilities {
			indexed, sampled, err := measureScaleCell(ccfg, cell, "indexed", mob, 0)
			if err != nil {
				return nil, fmt.Errorf("bench: scale %d×%d indexed/%s: %w", cell.Devices, cell.Edges, mob, err)
			}
			if err := check("indexed/"+mob, sampled); err != nil {
				return nil, err
			}
			speedup(&indexed)
			res.Rows = append(res.Rows, indexed)
		}
		for _, shards := range cfg.Shards {
			row, sampled, err := measureScaleCell(ccfg, cell, "sharded", "stream", shards)
			if err != nil {
				return nil, fmt.Errorf("bench: scale %d×%d sharded/%d: %w", cell.Devices, cell.Edges, shards, err)
			}
			if err := check(fmt.Sprintf("sharded/%d/stream", shards), sampled); err != nil {
				return nil, err
			}
			speedup(&row)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// WriteScaleBenchJSON writes the result as indented JSON.
func (r *ScaleBenchResult) WriteScaleBenchJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderScaleBench prints the result as a text table.
func RenderScaleBench(w io.Writer, r *ScaleBenchResult) error {
	if _, err := fmt.Fprintf(w, "Sampling control-plane scale benchmark — %s/%s, %d CPU (GOMAXPROCS=%d)\n",
		r.GOOS, r.GOARCH, r.NumCPU, r.GOMAXPROCS); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "config: steps=%d warmup=%d tg=%d stay=%.2f participation=%.2f workers=%d\n\n",
		r.Config.Steps, r.Config.WarmupSteps, r.Config.CloudInterval, r.Config.StayProb,
		r.Config.Participation, r.Config.workers()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%9s %6s %8s %7s %6s %10s %10s %12s %13s %14s %12s %9s\n",
		"devices", "edges", "mode", "mob", "steps", "mob-bytes", "steps/s", "ns/dev-dec", "allocs/step", "bytes/step", "sampled/step", "speedup"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		mode := row.Mode
		if row.Shards > 0 {
			mode = fmt.Sprintf("shard%d", row.Shards)
		}
		if _, err := fmt.Fprintf(w, "%9d %6d %8s %7s %6d %10s %10.1f %12.1f %13.1f %14.0f %12.1f %8.1fx\n",
			row.Devices, row.Edges, mode, row.Mobility, row.StepsMeasured,
			formatBytes(row.MobilityResidentBytes), row.StepsPerSec, row.NsPerDeviceDecision,
			row.AllocsPerStep, row.BytesPerStep, row.SampledPerStep, row.SpeedupVsNaive); err != nil {
			return err
		}
	}
	return nil
}

// formatBytes renders a byte count with a binary-prefix unit for the table.
func formatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
