package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"

	"github.com/mach-fl/mach/internal/parallel"
	"github.com/mach-fl/mach/internal/telemetry"
)

// TelemetryBenchConfig parameterizes `machbench -exp telemetry`: the
// sampling-only control plane of the scale benchmark run at one population
// shape once per observability tier — telemetry off, metrics only, metrics
// plus spans, metrics plus a full decision trace, and metrics plus spans
// under a live /metrics scrape load — so the overhead of each tier is
// measured against an identical workload. All modes replay the same coin
// streams, so their sampled counts must agree exactly.
type TelemetryBenchConfig struct {
	Devices       int     `json:"devices"`
	Edges         int     `json:"edges"`
	Steps         int     `json:"steps"`
	WarmupSteps   int     `json:"warmup_steps"`
	CloudInterval int     `json:"cloud_interval"`
	StayProb      float64 `json:"stay_prob"`
	Participation float64 `json:"participation"`
	Workers       int     `json:"workers"`
	Seed          int64   `json:"seed"`
}

// TelemetryBenchPreset is the recorded configuration of BENCH_telemetry.json:
// the 10k-device × 300-edge cell, sized so per-step work is large enough that
// per-event costs show up as a ratio rather than as noise.
func TelemetryBenchPreset() TelemetryBenchConfig {
	return TelemetryBenchConfig{
		Devices:       10_000,
		Edges:         300,
		Steps:         30,
		WarmupSteps:   5,
		CloudInterval: 5,
		StayProb:      0.9,
		Participation: 0.1,
		Seed:          1,
	}
}

// TelemetryBenchQuickPreset is a seconds-scale smoke configuration for CI.
func TelemetryBenchQuickPreset() TelemetryBenchConfig {
	cfg := TelemetryBenchPreset()
	cfg.Devices = 1_000
	cfg.Edges = 20
	cfg.Steps = 10
	cfg.WarmupSteps = 2
	return cfg
}

// scaleConfig reuses the scale benchmark's validation and engine plumbing.
func (c TelemetryBenchConfig) scaleConfig() ScaleConfig {
	return ScaleConfig{
		Cells:         []ScaleCell{{Devices: c.Devices, Edges: c.Edges}},
		Steps:         c.Steps,
		WarmupSteps:   c.WarmupSteps,
		CloudInterval: c.CloudInterval,
		StayProb:      c.StayProb,
		Participation: c.Participation,
		Workers:       c.Workers,
		Seed:          c.Seed,
	}
}

// Validate reports whether the configuration is usable.
func (c TelemetryBenchConfig) Validate() error { return c.scaleConfig().Validate() }

// TelemetryBenchRow is one mode's measurement.
type TelemetryBenchRow struct {
	// Mode is "off" (nil sink), "metrics" (counters, gauges, histograms),
	// "spans" (metrics plus span recording), "trace" (metrics plus a full
	// JSONL decision trace) or "scrape" (spans plus a goroutine hammering
	// the debug server's /metrics endpoint throughout the measured window).
	Mode          string `json:"mode"`
	StepsMeasured int    `json:"steps_measured"`
	WallNs        int64  `json:"wall_ns"`
	NsPerStep     int64  `json:"ns_per_step"`
	// NsPerDeviceDecision is WallNs / (steps × devices), comparable to the
	// scale benchmark's headline metric.
	NsPerDeviceDecision float64 `json:"ns_per_device_decision"`
	AllocsPerStep       float64 `json:"allocs_per_step"`
	BytesPerStep        float64 `json:"bytes_per_step"`
	SampledPerStep      float64 `json:"sampled_per_step"`
	// OverheadVsOff is (WallNs − off.WallNs) / off.WallNs as a percentage
	// (0 for the off row itself).
	OverheadVsOff float64 `json:"overhead_vs_off_pct"`
	// TraceEvents/TraceBytes size the trace the run emitted (trace mode).
	TraceEvents int64 `json:"trace_events,omitempty"`
	TraceBytes  int64 `json:"trace_bytes,omitempty"`
	// Scrapes counts the /metrics GETs completed during the measured window
	// (scrape mode).
	Scrapes int64 `json:"scrapes,omitempty"`
}

// TelemetryBenchResult is the payload of BENCH_telemetry.json.
type TelemetryBenchResult struct {
	GOOS       string               `json:"goos"`
	GOARCH     string               `json:"goarch"`
	NumCPU     int                  `json:"num_cpu"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Config     TelemetryBenchConfig `json:"config"`
	Rows       []TelemetryBenchRow  `json:"rows"`
	Profiles   *ProfileMeta         `json:"profiles,omitempty"`
}

// countingWriter discards the trace while counting its bytes, so the trace
// row pays encoding and buffering but not disk.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// telemetryTraceBuf is one edge's decision buffers in the trace mode,
// mirroring the engine's edgeDecideState trace fields: filled during the
// parallel decide, emitted serially in edge order afterwards.
type telemetryTraceBuf struct {
	members   []int
	estimates []float64
	coins     []float64
	sampled   []int
}

// stepTelemetry runs one control-plane step with the engine's instrumentation
// pattern: phase timings around decide and finalize, per-edge member/sampled
// histograms, counters, and — when the trace records this step — buffered
// decision events emitted in edge order. With tel == nil it must stay on the
// same zero-overhead path as stepIndexed.
func stepTelemetry(e *scaleEngine, bufs []telemetryTraceBuf, tel *telemetry.Telemetry, t, workers int) int64 {
	stepStart := tel.Now()
	e.advance(t)
	e.index.AdvanceWith(t, e.row, e.stepMoves, e.stepRebuilt)
	decideStart := tel.Now()
	tr := tel.Trace()
	parallel.ForEach(workers, len(e.decide), func(n int) {
		st := &e.decide[n]
		st.sampled = 0
		members := e.index.Members(n)
		if len(members) == 0 {
			return
		}
		tracing := tr.DecisionActive(t, n)
		var buf *telemetryTraceBuf
		if tracing {
			buf = &bufs[n]
			buf.members = append(buf.members[:0], members...)
			buf.coins = buf.coins[:0]
			buf.sampled = buf.sampled[:0]
		}
		st.ctx.Edge = n
		st.ctx.Capacity = e.capacity
		st.coin = coinRNG(scaleMix(e.cfg.Seed, int64(t)+1, int64(n)+101))
		st.ctx.Step = t
		st.ctx.Members = members
		st.probs = e.strat.ProbabilitiesInto(&st.ctx, st.probs)
		if tracing {
			buf.estimates = append(buf.estimates[:0], st.ctx.Scratch[:len(members)]...)
		}
		for i, m := range members {
			coin := st.coin.Float64()
			if tracing {
				buf.coins = append(buf.coins, coin)
			}
			if coin >= st.probs[i] {
				continue
			}
			if tracing {
				buf.sampled = append(buf.sampled, m)
			}
			st.sampled++
			st.normBuf[0] = synthNorm(e.cfg.Seed, t, m)
			e.strat.Observe(t, n, m, st.normBuf[:])
		}
	})
	decideEnd := tel.Now()
	if tel != nil && tr.StepActive(t) {
		tr.Emit(&telemetry.Event{Type: telemetry.EventPhase, Step: t,
			Phase: &telemetry.PhaseEvent{Name: "decide", NS: decideEnd - decideStart}})
	}
	tel.Observe(telemetry.HistDecideNS, decideEnd-decideStart)
	// Span parents re-derive the step root the way the engine does: pure
	// hashes, so the spans mode pays exactly the engine's recording cost.
	stepSpan := telemetry.DeriveSpanID(telemetry.SpanStep, t, -1, -1)
	tel.RecordSpan(telemetry.SpanDecide, stepSpan, t, -1, -1, decideStart, decideEnd)

	finStart := decideEnd
	total := int64(0)
	for n := range e.decide {
		st := &e.decide[n]
		total += st.sampled
		if tel == nil {
			continue
		}
		tel.Observe(telemetry.HistEdgeMembers, int64(len(e.index.Members(n))))
		tel.Observe(telemetry.HistEdgeSampled, st.sampled)
		tel.Add(telemetry.CounterDevicesTrained, st.sampled)
		if tr.DecisionActive(t, n) && len(bufs[n].members) > 0 {
			buf := &bufs[n]
			tr.Emit(&telemetry.Event{Type: telemetry.EventDecision, Step: t,
				Decision: &telemetry.DecisionEvent{
					Edge:      n,
					Members:   buf.members,
					Estimates: buf.estimates,
					Probs:     st.probs[:len(buf.members)],
					Coins:     buf.coins,
					Sampled:   buf.sampled,
				}})
			buf.members = buf.members[:0]
		}
	}
	finEnd := tel.Now()
	tel.Observe(telemetry.HistAggregateNS, finEnd-finStart)
	tel.RecordSpan(telemetry.SpanFinalize, stepSpan, t, -1, -1, finStart, finEnd)
	e.cloudRound(t)
	tel.Add(telemetry.CounterSteps, 1)
	stepEnd := tel.Now()
	tel.Observe(telemetry.HistStepNS, stepEnd-stepStart)
	tel.RecordSpan(telemetry.SpanStep, 0, t, -1, -1, stepStart, stepEnd)
	return total
}

// telemetryBenchReps is how many times each mode's workload is repeated;
// the fastest repetition is recorded. The measured window is only ~30 steps,
// short enough that scheduler noise on a shared core can swamp the mode
// deltas — the minimum over a few runs is the standard noise-rejecting
// estimator, and determinism makes every repetition the same workload.
const telemetryBenchReps = 3

// measureTelemetryMode runs the full workload telemetryBenchReps times in one
// mode and returns the fastest repetition's measurements.
func measureTelemetryMode(cfg TelemetryBenchConfig, mode string) (TelemetryBenchRow, int64, error) {
	var best TelemetryBenchRow
	var bestSampled int64
	for rep := 0; rep < telemetryBenchReps; rep++ {
		row, sampled, err := measureTelemetryOnce(cfg, mode)
		if err != nil {
			return TelemetryBenchRow{}, 0, err
		}
		if rep > 0 && sampled != bestSampled {
			return TelemetryBenchRow{}, 0, fmt.Errorf(
				"bench: telemetry %s rep %d sampled %d devices, rep 0 sampled %d — nondeterministic workload",
				mode, rep, sampled, bestSampled)
		}
		if rep == 0 || row.WallNs < best.WallNs {
			best = row
		}
		bestSampled = sampled
	}
	return best, bestSampled, nil
}

// measureTelemetryOnce runs the full workload in one mode and measures the
// timed window between two MemStats snapshots.
func measureTelemetryOnce(cfg TelemetryBenchConfig, mode string) (TelemetryBenchRow, int64, error) {
	scfg := cfg.scaleConfig()
	cell := scfg.Cells[0]
	totalSteps := cfg.WarmupSteps + cfg.Steps
	eng, err := newScaleEngine(scfg, cell, totalSteps, false)
	if err != nil {
		return TelemetryBenchRow{}, 0, err
	}
	var tel *telemetry.Telemetry
	var sink *countingWriter
	var trace *telemetry.Trace
	bufs := make([]telemetryTraceBuf, cell.Edges)
	switch mode {
	case "off":
	case "metrics":
		tel = telemetry.New()
	case "spans", "scrape":
		tel = telemetry.New()
		tel.EnableSpans(true)
	case "trace":
		tel = telemetry.New()
		sink = &countingWriter{}
		trace = telemetry.NewTrace(sink, telemetry.TraceConfig{})
		tel.SetTrace(trace)
	default:
		return TelemetryBenchRow{}, 0, fmt.Errorf("bench: unknown telemetry mode %q", mode)
	}
	workers := scfg.workers()
	for t := 0; t < cfg.WarmupSteps; t++ {
		stepTelemetry(eng, bufs, tel, t, workers)
	}
	var scraper *metricsScraper
	if mode == "scrape" {
		s, err := startMetricsScraper(tel)
		if err != nil {
			return TelemetryBenchRow{}, 0, err
		}
		scraper = s
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := telemetry.WallNow()
	sampled := int64(0)
	for t := cfg.WarmupSteps; t < totalSteps; t++ {
		sampled += stepTelemetry(eng, bufs, tel, t, workers)
	}
	wall := telemetry.WallSince(start)
	runtime.ReadMemStats(&after)
	row := TelemetryBenchRow{
		Mode:                mode,
		StepsMeasured:       cfg.Steps,
		WallNs:              wall.Nanoseconds(),
		NsPerStep:           wall.Nanoseconds() / int64(cfg.Steps),
		NsPerDeviceDecision: float64(wall.Nanoseconds()) / (float64(cfg.Steps) * float64(cell.Devices)),
		AllocsPerStep:       float64(after.Mallocs-before.Mallocs) / float64(cfg.Steps),
		BytesPerStep:        float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.Steps),
		SampledPerStep:      float64(sampled) / float64(cfg.Steps),
	}
	if trace != nil {
		if err := trace.Close(); err != nil {
			return TelemetryBenchRow{}, 0, fmt.Errorf("bench: telemetry trace: %w", err)
		}
		row.TraceEvents = trace.Events()
		row.TraceBytes = sink.n
	}
	if scraper != nil {
		row.Scrapes = scraper.stop()
		if row.Scrapes == 0 {
			return TelemetryBenchRow{}, 0, fmt.Errorf("bench: scrape mode completed no /metrics scrapes")
		}
	}
	return row, sampled, nil
}

// metricsScraper hammers a real debug server's /metrics endpoint from a
// background goroutine, so the scrape row prices serving the Prometheus
// exposition concurrently with the run — snapshot, encode and HTTP included.
type metricsScraper struct {
	srv    *telemetry.DebugServer
	done   chan struct{}
	closed chan struct{}
	n      atomic.Int64
	errs   atomic.Int64
}

func startMetricsScraper(tel *telemetry.Telemetry) (*metricsScraper, error) {
	srv, err := telemetry.StartDebugServer("127.0.0.1:0", tel)
	if err != nil {
		return nil, fmt.Errorf("bench: scrape server: %w", err)
	}
	s := &metricsScraper{srv: srv, done: make(chan struct{}), closed: make(chan struct{})}
	url := "http://" + srv.Addr + "/metrics"
	go func() {
		defer close(s.closed)
		client := &http.Client{}
		for {
			select {
			case <-s.done:
				return
			default:
			}
			resp, err := client.Get(url)
			if err != nil {
				s.errs.Add(1)
				continue
			}
			_, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close() //machlint:allow errdrop scrape loop: a close failure just ends this probe; the next GET reports it
			if err != nil || resp.StatusCode != http.StatusOK {
				s.errs.Add(1)
				continue
			}
			s.n.Add(1)
		}
	}()
	return s, nil
}

// stop halts the scrape loop and tears the server down, returning the number
// of successful scrapes.
func (s *metricsScraper) stop() int64 {
	close(s.done)
	<-s.closed
	s.srv.Close() //machlint:allow errdrop bench teardown; scrape counts were already collected
	return s.n.Load()
}

// RunTelemetryBench measures the workload once per observability tier.
// Beyond the overhead numbers it is a determinism check: every mode must
// sample exactly the same devices, since telemetry never feeds back into the
// simulation.
func RunTelemetryBench(cfg TelemetryBenchConfig) (*TelemetryBenchResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &TelemetryBenchResult{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	var offWall, offSampled int64
	for _, mode := range []string{"off", "metrics", "spans", "trace", "scrape"} {
		row, sampled, err := measureTelemetryMode(cfg, mode)
		if err != nil {
			return nil, fmt.Errorf("bench: telemetry %s: %w", mode, err)
		}
		if mode == "off" {
			offWall, offSampled = row.WallNs, sampled
		} else {
			if sampled != offSampled {
				return nil, fmt.Errorf("bench: telemetry %s sampled %d devices, off sampled %d — telemetry fed back into the run",
					mode, sampled, offSampled)
			}
			if offWall > 0 {
				row.OverheadVsOff = 100 * float64(row.WallNs-offWall) / float64(offWall)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTelemetryBenchJSON writes the result as indented JSON.
func (r *TelemetryBenchResult) WriteTelemetryBenchJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderTelemetryBench prints the result as a text table.
func RenderTelemetryBench(w io.Writer, r *TelemetryBenchResult) error {
	if _, err := fmt.Fprintf(w, "Telemetry overhead benchmark — %s/%s, %d CPU (GOMAXPROCS=%d)\n",
		r.GOOS, r.GOARCH, r.NumCPU, r.GOMAXPROCS); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "config: devices=%d edges=%d steps=%d warmup=%d participation=%.2f seed=%d\n\n",
		r.Config.Devices, r.Config.Edges, r.Config.Steps, r.Config.WarmupSteps,
		r.Config.Participation, r.Config.Seed); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s %12s %12s %13s %14s %12s %10s %12s %12s %9s\n",
		"mode", "ns/step", "ns/dev-dec", "allocs/step", "bytes/step", "sampled/step",
		"overhead", "events", "trace B", "scrapes"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%8s %12d %12.1f %13.1f %14.0f %12.1f %9.2f%% %12d %12d %9d\n",
			row.Mode, row.NsPerStep, row.NsPerDeviceDecision, row.AllocsPerStep,
			row.BytesPerStep, row.SampledPerStep, row.OverheadVsOff,
			row.TraceEvents, row.TraceBytes, row.Scrapes); err != nil {
			return err
		}
	}
	return nil
}
