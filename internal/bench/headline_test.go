package bench

import "testing"

// TestHeadlineClaimShape pins the qualitative shape of the paper's headline
// result on a micro-scale run (DESIGN.md §3): MACH must clearly beat the
// class-balance baseline, track uniform sampling within noise, and not beat
// its own perfect-information variant by more than noise. Magnitudes are
// substrate-dependent (EXPERIMENTS.md); the *ordering* is the invariant this
// test protects against regressions.
func TestHeadlineClaimShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: several seconds of training")
	}
	cfg := TaskPreset(TaskMNIST, ScaleCI)
	cfg.Devices = 16
	cfg.Edges = 3
	cfg.Steps = 80
	cfg.SamplesPerDevice = 40
	cfg.TestSamples = 400
	cfg.LocalEpochs = 3
	cfg.Runs = 2
	cfg.SmoothWindow = 5

	final := map[string]float64{}
	for _, name := range AllStrategies() {
		res, err := RunStrategy(cfg, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		final[name] = res.FinalAccuracy
	}

	// MACH clearly above the greedy class-balance baseline.
	if final[StratMACH] <= final[StratClassBalance] {
		t.Errorf("MACH %.3f not above class-balance %.3f", final[StratMACH], final[StratClassBalance])
	}
	// MACH within noise of uniform (the strong baseline on this substrate).
	if final[StratMACH] < final[StratUniform]-0.05 {
		t.Errorf("MACH %.3f more than 5pp below uniform %.3f", final[StratMACH], final[StratUniform])
	}
	// Perfect information is not substantially worse than the online
	// estimator it upper-bounds.
	if final[StratMACHP] < final[StratMACH]-0.05 {
		t.Errorf("MACH-P %.3f more than 5pp below MACH %.3f", final[StratMACHP], final[StratMACH])
	}
	t.Logf("final accuracies: %v", final)
}
