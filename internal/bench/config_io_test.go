package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := TaskPreset(TaskFMNIST, ScaleCI)
	cfg.Seed = 42
	cfg.MACH.Alpha = 1.7

	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := SaveConfig(cfg, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path, TaskPreset(TaskMNIST, ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != TaskFMNIST || got.Seed != 42 || got.MACH.Alpha != 1.7 {
		t.Fatalf("round-trip lost fields: %+v", got)
	}
	if got.Steps != cfg.Steps {
		t.Fatalf("steps %d, want %d", got.Steps, cfg.Steps)
	}
}

func TestReadConfigLayersOverBase(t *testing.T) {
	base := TaskPreset(TaskMNIST, ScaleCI)
	got, err := ReadConfig(strings.NewReader(`{"Seed": 9, "Devices": 12}`), base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 9 || got.Devices != 12 {
		t.Fatalf("overrides not applied: %+v", got)
	}
	if got.Edges != base.Edges || got.Task != base.Task {
		t.Fatal("base fields lost")
	}
}

func TestReadConfigRejectsUnknownAndInvalid(t *testing.T) {
	base := TaskPreset(TaskMNIST, ScaleCI)
	if _, err := ReadConfig(strings.NewReader(`{"NoSuchField": 1}`), base); err == nil {
		t.Fatal("expected unknown-field error")
	}
	if _, err := ReadConfig(strings.NewReader(`{"Edges": 0}`), base); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := ReadConfig(strings.NewReader(`not json`), base); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := LoadConfig("/nonexistent/cfg.json", base); err == nil {
		t.Fatal("expected open error")
	}
}
