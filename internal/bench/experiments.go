package bench

import (
	"fmt"
)

// Fig3Result holds the time-to-accuracy curves of one task (one subplot of
// Figure 3).
type Fig3Result struct {
	Task       Task
	Comparison *Comparison
}

// RunFig3 regenerates one subplot of Figure 3: the accuracy curves of all
// five strategies on one task.
func RunFig3(cfg Config) (*Fig3Result, error) {
	cmp, err := RunComparison(cfg, AllStrategies())
	if err != nil {
		return nil, fmt.Errorf("bench: fig3 %s: %w", cfg.Task, err)
	}
	return &Fig3Result{Task: cfg.Task, Comparison: cmp}, nil
}

// SweepPoint is one x-axis cell of Figures 4/5: the swept value, each
// strategy's time-to-target, and MACH's saved percentage vs the best basic
// baseline.
type SweepPoint struct {
	Value        float64 // edge count (Fig 4) or participation (Fig 5)
	TimeToTarget map[string]int
	Reached      map[string]bool
	SavedPercent float64
}

// SweepResult is one subplot of Figure 4 or 5.
type SweepResult struct {
	Task   Task
	Label  string // swept quantity
	Points []SweepPoint
}

// RunEdgeSweep regenerates one subplot of Figure 4: the time step at which
// each strategy reaches the target accuracy, as the number of edges varies.
// The per-edge capacity K_n scales automatically with the edge count so
// total participation stays at cfg.Participation, matching the paper's
// protocol ("the edge channel capacity is adjusted to ensure approximately
// 50% device participation").
func RunEdgeSweep(cfg Config, edgeCounts []int) (*SweepResult, error) {
	out := &SweepResult{Task: cfg.Task, Label: "edges"}
	for _, edges := range edgeCounts {
		c := cfg
		c.Edges = edges
		cmp, err := RunComparison(c, AllStrategies())
		if err != nil {
			return nil, fmt.Errorf("bench: fig4 %s edges=%d: %w", cfg.Task, edges, err)
		}
		out.Points = append(out.Points, sweepPoint(float64(edges), cmp))
	}
	return out, nil
}

// RunParticipationSweep regenerates one subplot of Figure 5: time-to-target
// as the proportion of participating devices varies.
func RunParticipationSweep(cfg Config, proportions []float64) (*SweepResult, error) {
	out := &SweepResult{Task: cfg.Task, Label: "participation"}
	for _, p := range proportions {
		c := cfg
		c.Participation = p
		cmp, err := RunComparison(c, AllStrategies())
		if err != nil {
			return nil, fmt.Errorf("bench: fig5 %s p=%.2f: %w", cfg.Task, p, err)
		}
		out.Points = append(out.Points, sweepPoint(p, cmp))
	}
	return out, nil
}

func sweepPoint(value float64, cmp *Comparison) SweepPoint {
	pt := SweepPoint{
		Value:        value,
		TimeToTarget: map[string]int{},
		Reached:      map[string]bool{},
		SavedPercent: cmp.SavedPercent(Baselines()),
	}
	for _, r := range cmp.Results {
		pt.TimeToTarget[r.Strategy] = r.TimeToTarget
		pt.Reached[r.Strategy] = r.Reached
	}
	return pt
}

// Table1Row is one row of Table I: a task, a target level, a local-epoch
// multiplier, the steps each strategy needed, and MACH's saved percentage
// against the best baseline (underlined in the paper).
type Table1Row struct {
	Task         Task
	TargetLabel  string // "70% Target" or "Target"
	Target       float64
	EpochsLabel  string // "0.8I", "I", "1.2I"
	LocalEpochs  int
	Steps        map[string]int
	Reached      map[string]bool
	SavedPercent float64
}

// Table1Result holds the rows of Table I for one task.
type Table1Result struct {
	Task Task
	Rows []Table1Row
}

// RunTable1 regenerates Table I for one task: the strategies' time steps to
// the 70% and full targets under local updating epochs {0.8I, I, 1.2I}. One
// full curve per (strategy, epoch) cell serves both target levels.
func RunTable1(cfg Config) (*Table1Result, error) {
	strategies := []string{StratMACH, StratUniform, StratClassBalance, StratStatistical}
	epochCells := []struct {
		label string
		mul   float64
	}{
		{"0.8I", 0.8},
		{"I", 1.0},
		{"1.2I", 1.2},
	}
	targets := []struct {
		label  string
		target float64
	}{
		{"70% Target", 0.7 * cfg.TargetAccuracy},
		{"Target", cfg.TargetAccuracy},
	}

	out := &Table1Result{Task: cfg.Task}
	// One full curve per (epoch cell, strategy) serves both target levels.
	type cellCurves map[string]*StrategyResult
	curves := make([]cellCurves, len(epochCells))
	for i, ec := range epochCells {
		c := cfg
		c.LocalEpochs = int(float64(cfg.LocalEpochs)*ec.mul + 0.5)
		if c.LocalEpochs < 1 {
			c.LocalEpochs = 1
		}
		curves[i] = cellCurves{}
		for _, name := range strategies {
			res, err := RunStrategy(c, name)
			if err != nil {
				return nil, fmt.Errorf("bench: table1 %s %s %s: %w", cfg.Task, ec.label, name, err)
			}
			curves[i][name] = res
		}
	}
	for _, tl := range targets {
		for i, ec := range epochCells {
			localEpochs := int(float64(cfg.LocalEpochs)*ec.mul + 0.5)
			if localEpochs < 1 {
				localEpochs = 1
			}
			row := Table1Row{
				Task:        cfg.Task,
				TargetLabel: tl.label,
				Target:      tl.target,
				EpochsLabel: ec.label,
				LocalEpochs: localEpochs,
				Steps:       map[string]int{},
				Reached:     map[string]bool{},
			}
			var machStep int
			var baselineSteps []int
			for _, name := range strategies {
				res := curves[i][name]
				step, ok := res.History.TimeToAccuracy(tl.target)
				if !ok {
					step = cfg.Steps
				}
				row.Steps[name] = step
				row.Reached[name] = ok
				if name == StratMACH {
					machStep = step
				} else if ok {
					baselineSteps = append(baselineSteps, step)
				}
			}
			row.SavedPercent = savedPercent(machStep, baselineSteps)
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func savedPercent(machStep int, baselineSteps []int) float64 {
	best := 0
	for _, s := range baselineSteps {
		if best == 0 || s < best {
			best = s
		}
	}
	if best == 0 {
		return 0
	}
	return (float64(best) - float64(machStep)) / float64(best) * 100
}
