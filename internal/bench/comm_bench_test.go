package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCommBenchContract runs the wire-format benchmark at a reduced step
// budget and checks the claims BENCH_comm.json makes: the lossless delta
// format reproduces the raw trajectory bit for bit while moving several
// times fewer measured bytes, and every row/micro entry is well-formed.
func TestCommBenchContract(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed deployments per scheme are not short")
	}
	cfg := CommBenchPreset()
	cfg.Steps = 10
	r, err := RunCommBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(r.Rows))
	}
	rows := map[string]CommBenchRow{}
	for _, row := range r.Rows {
		rows[row.Scheme] = row
		if row.TotalBytes <= 0 || row.BytesPerStep <= 0 {
			t.Fatalf("row %s has no measured traffic: %+v", row.Scheme, row)
		}
	}
	raw, delta := rows["raw"], rows["delta"]
	if !raw.BitIdenticalToRaw || raw.ReductionVsRaw != 1 {
		t.Fatalf("raw reference row malformed: %+v", raw)
	}
	if !delta.BitIdenticalToRaw {
		t.Fatal("lossless delta run is not bit-identical to raw")
	}
	if delta.ReductionVsRaw < 3 {
		t.Fatalf("delta reduction %.2fx below 3x at test scale", delta.ReductionVsRaw)
	}
	for _, name := range []string{"float32", "int8"} {
		if rows[name].Lossless {
			t.Fatalf("%s marked lossless", name)
		}
		if rows[name].FinalAccuracy <= 0 {
			t.Fatalf("%s run did not evaluate: %+v", name, rows[name])
		}
	}
	if len(r.Micro) != 4 {
		t.Fatalf("%d micro rows, want 4", len(r.Micro))
	}
	for _, m := range r.Micro {
		if m.EncodedBytes <= 0 || m.Ratio <= 0 {
			t.Fatalf("micro row %s malformed: %+v", m.Scheme, m)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteCommBenchJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back CommBenchResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_comm.json payload does not round-trip: %v", err)
	}
	if len(back.Rows) != len(r.Rows) {
		t.Fatalf("JSON round-trip lost rows: %d != %d", len(back.Rows), len(r.Rows))
	}
}
