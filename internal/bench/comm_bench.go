package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"

	"github.com/mach-fl/mach/internal/codec"
	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/fed"
	"github.com/mach-fl/mach/internal/metrics"
	"github.com/mach-fl/mach/internal/telemetry"
)

// CommBenchPreset is the fixed configuration of `machbench -exp comm`: the
// standard CI MNIST cell (30 devices, 5 edges) with a reduced step budget.
// Keeping the shape frozen makes BENCH_comm.json comparable across commits.
func CommBenchPreset() Config {
	cfg := TaskPreset(TaskMNIST, ScaleCI)
	cfg.Steps = 40
	cfg.Runs = 1
	cfg.EvalEvery = 5
	cfg.SmoothWindow = 1
	return cfg
}

// CommBenchRow measures one full distributed run under one wire format.
type CommBenchRow struct {
	// Scheme is the codec wire format of the run; Lossless whether it
	// preserves float64 bit patterns end to end.
	Scheme   string `json:"scheme"`
	Lossless bool   `json:"lossless"`
	// Measured wire bytes by segment: device-host→edge (uplink), the
	// reverse (downlink), and everything crossing the cloud's connections.
	DeviceUplinkBytes   int64 `json:"device_uplink_bytes"`
	DeviceDownlinkBytes int64 `json:"device_downlink_bytes"`
	CloudBytes          int64 `json:"cloud_bytes"`
	TotalBytes          int64 `json:"total_bytes"`
	// BytesPerStep is TotalBytes over the step budget; ReductionVsRaw is
	// the raw row's BytesPerStep divided by this row's.
	BytesPerStep   float64 `json:"bytes_per_step"`
	ReductionVsRaw float64 `json:"reduction_vs_raw"`
	// Model-bearing message counts behind the byte totals.
	Uploads        int64 `json:"uploads"`
	Downloads      int64 `json:"downloads"`
	CloudTransfers int64 `json:"cloud_transfers"`
	// FinalAccuracy of the run; BitIdenticalToRaw reports whether the
	// evaluation history and final global model match the raw run bit for
	// bit (the lossless contract).
	FinalAccuracy     float64 `json:"final_accuracy"`
	BitIdenticalToRaw bool    `json:"bit_identical_to_raw"`
	WallNs            int64   `json:"wall_ns"`
}

// CodecMicroRow times one codec scheme on a realistic global-model delta:
// the current model encoded against the previous one, the dominant blob
// shape of the protocol.
type CodecMicroRow struct {
	Scheme        string  `json:"scheme"`
	EncodeNsPerOp int64   `json:"encode_ns_per_op"`
	DecodeNsPerOp int64   `json:"decode_ns_per_op"`
	RawBytes      int     `json:"raw_bytes"`
	EncodedBytes  int     `json:"encoded_bytes"`
	Ratio         float64 `json:"compression_ratio"`
}

// CommBenchResult is the payload of BENCH_comm.json.
type CommBenchResult struct {
	GOOS    string          `json:"goos"`
	GOARCH  string          `json:"goarch"`
	NumCPU  int             `json:"num_cpu"`
	Task    string          `json:"task"`
	Model   string          `json:"model"`
	Devices int             `json:"devices"`
	Edges   int             `json:"edges"`
	Hosts   int             `json:"hosts"`
	Steps   int             `json:"steps"`
	Params  int             `json:"params"`
	Rows    []CommBenchRow  `json:"rows"`
	Micro   []CodecMicroRow `json:"micro"`
	// Profiles names the pprof files captured with this run, if any.
	Profiles *ProfileMeta `json:"profiles,omitempty"`
}

// commDeployment is an in-process loopback cluster for one measured run.
type commDeployment struct {
	cloud *fed.Cloud
	hosts []*fed.DeviceServer
	edges []*fed.EdgeServer
}

func (d *commDeployment) close() {
	if d.cloud != nil {
		d.cloud.Close() //machlint:allow errdrop best-effort teardown between measured runs
	}
	for _, e := range d.edges {
		e.Close() //machlint:allow errdrop best-effort teardown between measured runs
	}
	for _, s := range d.hosts {
		s.Close() //machlint:allow errdrop best-effort teardown between measured runs
	}
}

// buildCommDeployment wires the environment into a fed cluster: `hosts`
// device hosts splitting the population into contiguous ranges, one edge
// server per scheduled edge, and a cloud driving the run under scheme. All
// seeds derive from the config alone, so every scheme sees the same world.
func buildCommDeployment(cfg Config, env *Environment, hosts int, scheme codec.Scheme) (*commDeployment, error) {
	d := &commDeployment{}
	table := map[int]string{}
	for h := 0; h < hosts; h++ {
		data := map[int]*dataset.Dataset{}
		for m := h * cfg.Devices / hosts; m < (h+1)*cfg.Devices/hosts; m++ {
			data[m] = env.DeviceData[m]
		}
		srv, err := fed.NewDeviceServer(cfg.Arch(), data, cfg.MACH, cfg.Seed+int64(100+h))
		if err != nil {
			d.close()
			return nil, err
		}
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			d.close()
			return nil, err
		}
		d.hosts = append(d.hosts, srv)
		for m := range data {
			table[m] = addr
		}
	}
	var hostAddrs []string
	for h := 0; h < hosts; h++ {
		hostAddrs = append(hostAddrs, table[h*cfg.Devices/hosts])
	}

	hyper := fed.Hyper{
		LocalEpochs:  cfg.LocalEpochs,
		BatchSize:    cfg.BatchSize,
		LearningRate: cfg.LearningRate,
	}
	var edgeAddrs []string
	for n := 0; n < cfg.Edges; n++ {
		e, err := fed.NewEdgeServer(n, cfg.MACH, hyper, cfg.Seed+11, fed.StaticResolver(table), nil)
		if err != nil {
			d.close()
			return nil, err
		}
		addr, err := e.Serve("127.0.0.1:0")
		if err != nil {
			d.close()
			return nil, err
		}
		d.edges = append(d.edges, e)
		edgeAddrs = append(edgeAddrs, addr)
	}

	cloud, err := fed.NewCloud(fed.CloudConfig{
		Steps:         cfg.Steps,
		CloudInterval: cfg.CloudInterval,
		Participation: cfg.Participation,
		EvalEvery:     cfg.EvalEvery,
		Seed:          cfg.Seed,
		Codec:         scheme,
	}, cfg.Arch(), env.Schedule, env.Test, edgeAddrs, hostAddrs)
	if err != nil {
		d.close()
		return nil, err
	}
	d.cloud = cloud
	return d, nil
}

// RunCommBench runs the frozen configuration once per wire format on a
// single-host loopback cluster (the machnode default topology), measuring
// real bytes on every connection, and adds the codec micro-timings.
func RunCommBench(cfg Config) (*CommBenchResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	const hosts = 1
	res := &CommBenchResult{
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
		Task:    string(cfg.Task),
		Model:   cfg.Model,
		Devices: cfg.Devices,
		Edges:   cfg.Edges,
		Hosts:   hosts,
		Steps:   cfg.Steps,
	}

	var rawHist *metrics.History
	var rawGlobal []float64
	var rawPerStep float64
	// Raw runs first: it is the reference the other rows are compared to.
	schemes := []codec.Scheme{codec.SchemeRaw, codec.SchemeDelta, codec.SchemeFloat32, codec.SchemeInt8}
	for _, scheme := range schemes {
		// Fresh world per scheme with identical seeds: every run sees the
		// same datasets, schedule and model initialization, so lossless
		// schemes must reproduce the raw trajectory exactly.
		env, err := cfg.BuildEnvironment(0)
		if err != nil {
			return nil, err
		}
		d, err := buildCommDeployment(cfg, env, hosts, scheme)
		if err != nil {
			return nil, fmt.Errorf("bench: comm deployment (%v): %w", scheme, err)
		}
		start := telemetry.WallNow()
		hist, err := d.cloud.Run()
		wall := telemetry.WallSince(start)
		if err != nil {
			d.close()
			return nil, fmt.Errorf("bench: comm run (%v): %w", scheme, err)
		}
		stats, err := d.cloud.CommStats()
		if err != nil {
			d.close()
			return nil, fmt.Errorf("bench: comm stats (%v): %w", scheme, err)
		}
		global := d.cloud.GlobalParams()
		d.close()

		row := CommBenchRow{
			Scheme:              scheme.String(),
			Lossless:            scheme.Lossless(),
			DeviceUplinkBytes:   stats.DeviceUplinkBytes,
			DeviceDownlinkBytes: stats.DeviceDownlinkBytes,
			CloudBytes:          stats.CloudBytes,
			TotalBytes:          stats.Total(),
			BytesPerStep:        float64(stats.Total()) / float64(cfg.Steps),
			Uploads:             stats.DeviceUploads,
			Downloads:           stats.DeviceDownloads,
			CloudTransfers:      stats.CloudTransfers,
			FinalAccuracy:       hist.FinalAccuracy(),
			WallNs:              wall.Nanoseconds(),
		}
		if scheme == codec.SchemeRaw {
			rawHist, rawGlobal, rawPerStep = hist, global, row.BytesPerStep
			row.ReductionVsRaw = 1
			row.BitIdenticalToRaw = true
		} else {
			if row.BytesPerStep > 0 {
				row.ReductionVsRaw = rawPerStep / row.BytesPerStep
			}
			row.BitIdenticalToRaw = bitIdentical(rawHist, hist, rawGlobal, global)
		}
		res.Params = len(global)
		res.Rows = append(res.Rows, row)
	}

	micro, err := runCodecMicro(cfg)
	if err != nil {
		return nil, err
	}
	res.Micro = micro
	return res, nil
}

// bitIdentical reports whether two runs produced the same evaluation history
// and final global model down to the float64 bit patterns.
func bitIdentical(h1, h2 *metrics.History, g1, g2 []float64) bool {
	if h1 == nil || h2 == nil || h1.Len() != h2.Len() || len(g1) != len(g2) {
		return false
	}
	for i := range h1.Points {
		p1, p2 := h1.Points[i], h2.Points[i]
		if p1.Step != p2.Step ||
			math.Float64bits(p1.Accuracy) != math.Float64bits(p2.Accuracy) ||
			math.Float64bits(p1.Loss) != math.Float64bits(p2.Loss) {
			return false
		}
	}
	for j := range g1 {
		if math.Float64bits(g1[j]) != math.Float64bits(g2[j]) {
			return false
		}
	}
	return true
}

// runCodecMicro times encode/decode per scheme on the protocol's dominant
// blob shape: the current model encoded against the previous one after an
// SGD-like relative perturbation.
func runCodecMicro(cfg Config) ([]CodecMicroRow, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	net0, err := cfg.Arch()(rng)
	if err != nil {
		return nil, err
	}
	baseline := net0.ParamVector()
	params := make([]float64, len(baseline))
	for i, v := range baseline {
		params[i] = v * (1 + 1e-3*rng.NormFloat64())
	}
	rawBytes := 8 * len(params)

	var rows []CodecMicroRow
	for _, scheme := range codec.Schemes() {
		var ef []float64
		if scheme == codec.SchemeInt8 {
			ef = make([]float64, len(params))
		}
		var blob codec.Blob
		encNs := bestOf(3, func() {
			// Error feedback mutates ef; reset so every iteration encodes
			// the same input.
			for i := range ef {
				ef[i] = 0
			}
			b, encErr := codec.Encode(scheme, params, baseline, 1, ef)
			if encErr != nil {
				err = encErr
				return
			}
			blob = b
		})
		if err != nil {
			return nil, err
		}
		// SchemeRaw ignores the baseline and emits a baseline-free blob.
		decBaseline := baseline
		if blob.Baseline == 0 {
			decBaseline = nil
		}
		decNs := bestOf(3, func() {
			if _, decErr := codec.Decode(blob, decBaseline); decErr != nil {
				err = decErr
			}
		})
		if err != nil {
			return nil, err
		}
		row := CodecMicroRow{
			Scheme:        scheme.String(),
			EncodeNsPerOp: encNs,
			DecodeNsPerOp: decNs,
			RawBytes:      rawBytes,
			EncodedBytes:  len(blob.Data),
		}
		if len(blob.Data) > 0 {
			row.Ratio = float64(rawBytes) / float64(len(blob.Data))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteCommBenchJSON writes the result as indented JSON.
func (r *CommBenchResult) WriteCommBenchJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderCommBench prints the result as text tables.
func RenderCommBench(w io.Writer, r *CommBenchResult) error {
	if _, err := fmt.Fprintf(w, "Wire-format benchmark — %s/%s, measured bytes on loopback TCP\n", r.GOOS, r.GOARCH); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "config: task=%s model=%s (%d params) devices=%d edges=%d hosts=%d steps=%d\n\n",
		r.Task, r.Model, r.Params, r.Devices, r.Edges, r.Hosts, r.Steps); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s %12s %12s %12s %12s %10s %10s %8s %6s\n",
		"scheme", "up B", "down B", "cloud B", "B/step", "vs raw", "bit-ident", "acc", "ms"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%8s %12d %12d %12d %12.0f %9.1fx %10v %8.4f %6d\n",
			row.Scheme, row.DeviceUplinkBytes, row.DeviceDownlinkBytes, row.CloudBytes,
			row.BytesPerStep, row.ReductionVsRaw, row.BitIdenticalToRaw,
			row.FinalAccuracy, row.WallNs/1e6); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n%8s %14s %14s %12s %12s %8s\n",
		"codec", "encode ns/op", "decode ns/op", "raw B", "encoded B", "ratio"); err != nil {
		return err
	}
	for _, m := range r.Micro {
		if _, err := fmt.Fprintf(w, "%8s %14d %14d %12d %12d %7.2fx\n",
			m.Scheme, m.EncodeNsPerOp, m.DecodeNsPerOp, m.RawBytes, m.EncodedBytes, m.Ratio); err != nil {
			return err
		}
	}
	return nil
}
