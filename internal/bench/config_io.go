package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the config for experiment provenance; every
// machbench/machsim run can be reproduced from the saved file.
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("bench: encode config: %w", err)
	}
	return nil
}

// SaveConfig writes the config to a file. The close error is part of the
// write: a failed flush must not report success.
func SaveConfig(c Config, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: create config file: %w", err)
	}
	err = c.WriteJSON(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("bench: close config file: %w", cerr)
	}
	return err
}

// ReadConfig parses a config written by WriteJSON, layered on top of the
// given base (fields absent from the JSON keep the base's values) and
// validated.
func ReadConfig(r io.Reader, base Config) (Config, error) {
	cfg := base
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("bench: decode config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// LoadConfig reads a config file on top of a base preset.
func LoadConfig(path string, base Config) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("bench: open config file: %w", err)
	}
	defer f.Close() //machlint:allow errdrop read-only file; a close failure cannot corrupt anything
	return ReadConfig(f, base)
}
