package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/mach-fl/mach/internal/det"
)

// RenderFig3 writes the accuracy-vs-step series of one Figure 3 subplot as
// an aligned text table (one column per strategy), the textual equivalent of
// the paper's curves.
func RenderFig3(w io.Writer, r *Fig3Result) error {
	names := make([]string, 0, len(r.Comparison.Results))
	for _, res := range r.Comparison.Results {
		names = append(names, res.Strategy)
	}
	fmt.Fprintf(w, "Figure 3 (%s): time-to-accuracy, target %.2f\n", r.Task, r.Comparison.Config.TargetAccuracy)
	fmt.Fprintf(w, "%8s", "step")
	for _, n := range names {
		fmt.Fprintf(w, " %13s", n)
	}
	fmt.Fprintln(w)

	steps := map[int]bool{}
	for _, res := range r.Comparison.Results {
		for _, p := range res.History.Points {
			steps[p.Step] = true
		}
	}
	for _, s := range det.SortedKeys(steps) {
		fmt.Fprintf(w, "%8d", s)
		for _, res := range r.Comparison.Results {
			val := ""
			for _, p := range res.History.Points {
				if p.Step == s {
					val = fmt.Sprintf("%.4f", p.Accuracy)
					break
				}
			}
			fmt.Fprintf(w, " %13s", val)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "time to target:")
	for _, res := range r.Comparison.Results {
		mark := ""
		if !res.Reached {
			mark = " (not reached)"
		}
		fmt.Fprintf(w, "  %-14s %5d steps%s\n", res.Strategy, res.TimeToTarget, mark)
	}
	fmt.Fprintf(w, "MACH saved vs best baseline: %.2f%%\n", r.Comparison.SavedPercent(Baselines()))
	return nil
}

// RenderSweep writes one subplot of Figure 4 or 5 as a table: swept value
// per row, time-to-target per strategy per column, saved-% last.
func RenderSweep(w io.Writer, r *SweepResult, fig string) error {
	fmt.Fprintf(w, "%s (%s): time step to target accuracy vs %s\n", fig, r.Task, r.Label)
	names := AllStrategies()
	fmt.Fprintf(w, "%14s", r.Label)
	for _, n := range names {
		fmt.Fprintf(w, " %13s", n)
	}
	fmt.Fprintf(w, " %10s\n", "saved%")
	for _, pt := range r.Points {
		if r.Label == "edges" {
			fmt.Fprintf(w, "%14.0f", pt.Value)
		} else {
			fmt.Fprintf(w, "%14.2f", pt.Value)
		}
		for _, n := range names {
			cell := fmt.Sprintf("%d", pt.TimeToTarget[n])
			if !pt.Reached[n] {
				cell += "*"
			}
			fmt.Fprintf(w, " %13s", cell)
		}
		fmt.Fprintf(w, " %9.2f%%\n", pt.SavedPercent)
	}
	fmt.Fprintln(w, "(* = target not reached within the step budget)")
	return nil
}

// RenderTable1 writes Table I for one task in the paper's layout.
func RenderTable1(w io.Writer, r *Table1Result) error {
	fmt.Fprintf(w, "Table I (%s): time steps under different local updating epochs\n", r.Task)
	fmt.Fprintf(w, "%-12s %-8s %8s %8s %8s %8s %9s\n",
		"target", "epochs", "MACH", "US", "CS", "SS", "saved%")
	for _, row := range r.Rows {
		mark := func(name string) string {
			cell := fmt.Sprintf("%d", row.Steps[name])
			if !row.Reached[name] {
				cell += "*"
			}
			return cell
		}
		fmt.Fprintf(w, "%-12s %-8s %8s %8s %8s %8s %8.2f%%\n",
			row.TargetLabel, row.EpochsLabel,
			mark(StratMACH), mark(StratUniform), mark(StratClassBalance), mark(StratStatistical),
			row.SavedPercent)
	}
	fmt.Fprintln(w, "(* = target not reached within the step budget)")
	return nil
}

// RenderCurveASCII draws a coarse ASCII accuracy curve, used by the examples
// for quick visual inspection.
func RenderCurveASCII(w io.Writer, title string, steps []int, accs []float64, width, height int) {
	if len(steps) == 0 || width < 8 || height < 2 {
		return
	}
	fmt.Fprintln(w, title)
	maxStep := steps[len(steps)-1]
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for i, s := range steps {
		x := 0
		if maxStep > 0 {
			x = s * (width - 1) / maxStep
		}
		y := int(accs[i] * float64(height-1))
		if y > height-1 {
			y = height - 1
		}
		if y < 0 {
			y = 0
		}
		grid[height-1-y][x] = '*'
	}
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", string(row))
	}
	fmt.Fprintf(w, "0%saccuracy 0..1, steps 0..%d\n", strings.Repeat(" ", 4), maxStep)
}
