package bench

import (
	"strings"
	"testing"

	"github.com/mach-fl/mach/internal/metrics"
)

// microConfig is small enough for unit tests to run in well under a second.
func microConfig() Config {
	cfg := TaskPreset(TaskMNIST, ScaleCI)
	cfg.Devices = 8
	cfg.Edges = 2
	cfg.Steps = 12
	cfg.SamplesPerDevice = 20
	cfg.TestSamples = 60
	cfg.LocalEpochs = 2
	cfg.BatchSize = 4
	cfg.Runs = 1
	cfg.EvalEvery = 2
	cfg.SmoothWindow = 1
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := microConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad model", func(c *Config) { c.Model = "transformer" }},
		{"tiny image", func(c *Config) { c.ImageSize = 2 }},
		{"zero edges", func(c *Config) { c.Edges = 0 }},
		{"zero runs", func(c *Config) { c.Runs = 0 }},
		{"target 1", func(c *Config) { c.TargetAccuracy = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := microConfig()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestTaskPresetsMirrorPaperSetup(t *testing.T) {
	for _, task := range AllTasks() {
		full := TaskPreset(task, ScaleFull)
		if full.Edges != 10 || full.Devices != 100 {
			t.Fatalf("%s: full preset topology %d/%d, want 10 edges / 100 devices", task, full.Edges, full.Devices)
		}
		if full.Participation != 0.5 {
			t.Fatalf("%s: participation %v, want 0.5", task, full.Participation)
		}
		if full.LocalEpochs != 10 {
			t.Fatalf("%s: local epochs %d, want 10", task, full.LocalEpochs)
		}
		wantTg := 5
		if task == TaskCIFAR10 {
			wantTg = 10 // the paper uses T_g=10 for CIFAR-10
		}
		if full.CloudInterval != wantTg {
			t.Fatalf("%s: Tg %d, want %d", task, full.CloudInterval, wantTg)
		}
		if err := full.Validate(); err != nil {
			t.Fatalf("%s full preset invalid: %v", task, err)
		}
		ci := TaskPreset(task, ScaleCI)
		if err := ci.Validate(); err != nil {
			t.Fatalf("%s ci preset invalid: %v", task, err)
		}
		if ci.Devices >= full.Devices || ci.Steps >= full.Steps {
			t.Fatalf("%s: CI preset not smaller than full", task)
		}
	}
}

func TestNewStrategyNames(t *testing.T) {
	cfg := microConfig()
	for _, name := range AllStrategies() {
		s, err := cfg.NewStrategy(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("strategy %q reports name %q", name, s.Name())
		}
	}
	if _, err := cfg.NewStrategy("nope"); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}

func TestBuildEnvironmentShapes(t *testing.T) {
	cfg := microConfig()
	env, err := cfg.BuildEnvironment(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.DeviceData) != cfg.Devices {
		t.Fatalf("%d device datasets", len(env.DeviceData))
	}
	for m, d := range env.DeviceData {
		if d.Len() != cfg.SamplesPerDevice {
			t.Fatalf("device %d has %d samples", m, d.Len())
		}
	}
	if env.Test.Len() != cfg.TestSamples {
		t.Fatalf("test set has %d samples", env.Test.Len())
	}
	if env.Schedule.Edges != cfg.Edges || env.Schedule.Devices != cfg.Devices {
		t.Fatalf("schedule dims %d/%d", env.Schedule.Edges, env.Schedule.Devices)
	}
	// Different run indices produce different environments.
	env2, err := cfg.BuildEnvironment(1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for tt := 0; tt < env.Schedule.Steps && same; tt++ {
		for m := 0; m < cfg.Devices; m++ {
			if env.Schedule.EdgeOf(tt, m) != env2.Schedule.EdgeOf(tt, m) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("run 0 and run 1 share the same mobility schedule")
	}
}

func TestBuildEnvironmentGlobalTestLaw(t *testing.T) {
	cfg := microConfig()
	cfg.TestLaw = "global"
	cfg.TestSamples = 2000
	env, err := cfg.BuildEnvironment(0)
	if err != nil {
		t.Fatal(err)
	}
	// The global training mixture is long-tailed, so a "global" test set
	// must be visibly imbalanced, unlike the balanced default.
	dist := env.Test.ClassDistribution()
	spread := 0.0
	for _, p := range dist {
		if p > spread {
			spread = p
		}
	}
	if spread < 0.15 {
		t.Fatalf("global test law looks balanced: max class mass %.3f", spread)
	}
}

func TestRunStrategyProducesCurve(t *testing.T) {
	cfg := microConfig()
	res, err := RunStrategy(cfg, StratUniform)
	if err != nil {
		t.Fatal(err)
	}
	if res.History.Len() == 0 {
		t.Fatal("no evaluation points")
	}
	if res.TimeToTarget == 0 {
		t.Fatal("time-to-target not populated")
	}
	if !res.Reached && res.TimeToTarget != cfg.Steps {
		t.Fatalf("unreached target must report the step budget, got %d", res.TimeToTarget)
	}
}

func TestRunComparisonAndSavedPercent(t *testing.T) {
	cfg := microConfig()
	cmp, err := RunComparison(cfg, []string{StratUniform, StratMACH})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Result(StratUniform) == nil || cmp.Result(StratMACH) == nil {
		t.Fatal("missing results")
	}
	if cmp.Result("missing") != nil {
		t.Fatal("unknown strategy should be nil")
	}
	// SavedPercent must be finite and defined even on micro runs.
	_ = cmp.SavedPercent([]string{StratUniform})
}

func TestRenderFunctionsProduceOutput(t *testing.T) {
	cfg := microConfig()
	fig3, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderFig3(&sb, fig3); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 3", "uniform", "mach-p", "time to target"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig3 output missing %q:\n%s", want, out)
		}
	}

	sweep, err := RunEdgeSweep(cfg, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := RenderSweep(&sb, sweep, "Figure 4"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 4") || !strings.Contains(sb.String(), "edges") {
		t.Fatalf("sweep output malformed:\n%s", sb.String())
	}
}

func TestRunParticipationSweepPoints(t *testing.T) {
	cfg := microConfig()
	sweep, err := RunParticipationSweep(cfg, []float64{0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 2 {
		t.Fatalf("%d sweep points", len(sweep.Points))
	}
	for _, pt := range sweep.Points {
		for _, name := range AllStrategies() {
			if _, ok := pt.TimeToTarget[name]; !ok {
				t.Fatalf("sweep point %.1f missing strategy %s", pt.Value, name)
			}
		}
	}
}

func TestRunTable1RowsAndLayout(t *testing.T) {
	cfg := microConfig()
	table, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 { // 2 target levels × 3 epoch cells
		t.Fatalf("%d rows, want 6", len(table.Rows))
	}
	labels := map[string]int{}
	for _, row := range table.Rows {
		labels[row.EpochsLabel]++
		if row.Steps[StratMACH] == 0 {
			t.Fatal("missing MACH cell")
		}
	}
	for _, l := range []string{"0.8I", "I", "1.2I"} {
		if labels[l] != 2 {
			t.Fatalf("epoch label %s appears %d times, want 2", l, labels[l])
		}
	}
	var sb strings.Builder
	if err := RenderTable1(&sb, table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table I") || !strings.Contains(sb.String(), "0.8I") {
		t.Fatalf("table output malformed:\n%s", sb.String())
	}
}

func TestRenderCurveASCII(t *testing.T) {
	var sb strings.Builder
	RenderCurveASCII(&sb, "test", []int{0, 5, 10}, []float64{0, 0.5, 1}, 20, 5)
	out := sb.String()
	if !strings.Contains(out, "test") || !strings.Contains(out, "*") {
		t.Fatalf("ASCII curve malformed:\n%s", out)
	}
	// Degenerate inputs must not panic or emit anything.
	sb.Reset()
	RenderCurveASCII(&sb, "empty", nil, nil, 20, 5)
	if sb.Len() != 0 {
		t.Fatal("empty curve should render nothing")
	}
}

func TestSavedPercentAgainstKnownSteps(t *testing.T) {
	// Mirrors the paper's Table I arithmetic: MACH 110 vs best baseline
	// 155 → 29.03% saved.
	got := savedPercent(110, []int{155, 255, 180})
	if got < 29.0 || got > 29.1 {
		t.Fatalf("savedPercent = %v, want ≈ 29.03", got)
	}
	if savedPercent(100, nil) != 0 {
		t.Fatal("no baselines should yield 0")
	}
	_ = metrics.SavedPercent // keep the metrics linkage explicit
}

func TestRunAblationsSuite(t *testing.T) {
	cfg := microConfig()
	results, err := RunAblations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d ablation suites, want 5", len(results))
	}
	for _, r := range results {
		if len(r.Variants) < 2 {
			t.Fatalf("suite %q has %d variants", r.Name, len(r.Variants))
		}
		for _, v := range r.Variants {
			if v.FinalAccuracy <= 0 || v.FinalAccuracy > 1 {
				t.Fatalf("suite %q variant %q accuracy %v", r.Name, v.Label, v.FinalAccuracy)
			}
		}
	}
	var sb strings.Builder
	if err := RenderAblations(&sb, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Ablation: aggregation") {
		t.Fatalf("render missing suite header:\n%s", sb.String())
	}
}

func TestRunStrategyIsReproducible(t *testing.T) {
	cfg := microConfig()
	a, err := RunStrategy(cfg, StratMACH)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStrategy(cfg, StratMACH)
	if err != nil {
		t.Fatal(err)
	}
	if a.History.Len() != b.History.Len() {
		t.Fatalf("history lengths differ: %d vs %d", a.History.Len(), b.History.Len())
	}
	for i := range a.History.Points {
		if a.History.Points[i] != b.History.Points[i] {
			t.Fatalf("histories diverge at %d: %+v vs %+v — the whole pipeline must be seed-deterministic",
				i, a.History.Points[i], b.History.Points[i])
		}
	}
}
