package bench

import (
	"fmt"
	"io"

	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/sampling"
)

// AblationResult is one design-choice comparison: variant name → final
// accuracy (averaged over cfg.Runs) and time-to-target.
type AblationResult struct {
	Name     string
	Variants []AblationVariant
}

// AblationVariant is one cell of an ablation.
type AblationVariant struct {
	Label         string
	FinalAccuracy float64
	TimeToTarget  int
	Reached       bool
}

// RunAblations executes the DESIGN.md §4 ablation suite on one config:
// aggregation rule, transfer-function smoothing, UCB discount, estimator
// locality, and the Oort extension.
func RunAblations(cfg Config) ([]AblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	type variant struct {
		label string
		strat func() (sampling.Strategy, error)
		agg   hfl.Aggregation
	}
	machStrat := func(mutate func(*sampling.MACHConfig)) func() (sampling.Strategy, error) {
		return func() (sampling.Strategy, error) {
			mc := cfg.MACH
			if mutate != nil {
				mutate(&mc)
			}
			return sampling.NewMACH(cfg.Devices, mc)
		}
	}
	suites := []struct {
		name     string
		variants []variant
	}{
		{
			name: "aggregation (MACH sampling)",
			variants: []variant{
				{"plain FedAvg", machStrat(nil), hfl.AggPlain},
				{"inverse-update Eq.5", machStrat(nil), hfl.AggInverseUpdate},
				{"literal Eq.5", machStrat(nil), hfl.AggLiteralEq5},
			},
		},
		{
			name: "transfer function",
			variants: []variant{
				{"smoothed Eq.17", machStrat(nil), hfl.AggPlain},
				{"raw Eq.13", machStrat(func(m *sampling.MACHConfig) { m.RawEq13 = true }), hfl.AggPlain},
			},
		},
		{
			name: "UCB discount",
			variants: []variant{
				{"literal all-time max", machStrat(func(m *sampling.MACHConfig) { m.Discount = 1 }), hfl.AggPlain},
				{"discounted max", machStrat(func(m *sampling.MACHConfig) { m.Discount = 0.9 }), hfl.AggPlain},
			},
		},
		{
			name: "estimator locality",
			variants: []variant{
				{"device-side UCB (MACH)", machStrat(nil), hfl.AggPlain},
				{"edge-side last-obs (SS)", func() (sampling.Strategy, error) {
					return sampling.NewStatistical(cfg.Devices, cfg.MACH.QMin)
				}, hfl.AggPlain},
			},
		},
		{
			name: "extension: Oort utility selection",
			variants: []variant{
				{"MACH", machStrat(nil), hfl.AggPlain},
				{"Oort", func() (sampling.Strategy, error) {
					return sampling.NewOort(cfg.Devices, sampling.DefaultOortConfig())
				}, hfl.AggPlain},
			},
		},
	}

	var out []AblationResult
	for _, suite := range suites {
		res := AblationResult{Name: suite.name}
		for _, v := range suite.variants {
			av, err := runAblationVariant(cfg, v.strat, v.agg)
			if err != nil {
				return nil, fmt.Errorf("bench: ablation %q / %q: %w", suite.name, v.label, err)
			}
			av.Label = v.label
			res.Variants = append(res.Variants, av)
		}
		out = append(out, res)
	}
	return out, nil
}

func runAblationVariant(cfg Config, mkStrat func() (sampling.Strategy, error), agg hfl.Aggregation) (AblationVariant, error) {
	var results []*hfl.Result
	for run := 0; run < cfg.Runs; run++ {
		env, err := cfg.BuildEnvironment(run)
		if err != nil {
			return AblationVariant{}, err
		}
		strat, err := mkStrat()
		if err != nil {
			return AblationVariant{}, err
		}
		hcfg := cfg.HFLConfig(run)
		hcfg.Aggregation = agg
		eng, err := hfl.New(hcfg, cfg.Arch(), env.DeviceData, env.Test, env.Schedule, strat)
		if err != nil {
			return AblationVariant{}, err
		}
		res, err := eng.Run()
		if err != nil {
			return AblationVariant{}, err
		}
		results = append(results, res)
	}
	// Average the final accuracies and use the first run's target crossing
	// (ablation cells need a cheap summary, not a full averaged curve).
	av := AblationVariant{}
	for _, r := range results {
		av.FinalAccuracy += r.History.FinalAccuracy() / float64(len(results))
	}
	if step, ok := results[0].History.TimeToAccuracy(cfg.TargetAccuracy); ok {
		av.TimeToTarget, av.Reached = step, true
	} else {
		av.TimeToTarget = cfg.Steps
	}
	return av, nil
}

// RenderAblations writes the suite as text tables.
func RenderAblations(w io.Writer, results []AblationResult) error {
	for _, r := range results {
		if _, err := fmt.Fprintf(w, "Ablation: %s\n", r.Name); err != nil {
			return err
		}
		for _, v := range r.Variants {
			mark := ""
			if !v.Reached {
				mark = " (target not reached)"
			}
			if _, err := fmt.Fprintf(w, "  %-26s final acc %.4f  time-to-target %d%s\n",
				v.Label, v.FinalAccuracy, v.TimeToTarget, mark); err != nil {
				return err
			}
		}
	}
	return nil
}
