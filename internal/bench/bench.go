// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §3 for the index):
//
//   - Figure 3  — time-to-accuracy curves, 5 strategies × 3 tasks
//   - Figure 4  — time to target accuracy vs number of edges {2, 5, 10}
//   - Figure 5  — time to target accuracy vs participation {0.4…0.7}
//   - Table I   — time steps under local epochs {0.8I, I, 1.2I} at the 70%
//     and full targets, with MACH's saved-time percentage
//
// Experiments run at two scales: ScaleCI (tiny models, minutes on a laptop
// core, used by the Go benchmarks) and ScaleFull (the paper's topology with
// the CNN architectures, used by cmd/machbench).
package bench

import (
	"fmt"
	"math/rand"

	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/metrics"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
)

// Task names one of the three learning tasks of the evaluation.
type Task string

// The evaluation's learning tasks (synthetic stand-ins; DESIGN.md §1).
const (
	TaskMNIST   Task = "mnist"
	TaskFMNIST  Task = "fmnist"
	TaskCIFAR10 Task = "cifar10"
)

// AllTasks lists the evaluation's tasks in the paper's order.
func AllTasks() []Task { return []Task{TaskMNIST, TaskFMNIST, TaskCIFAR10} }

// Scale selects the experiment size.
type Scale string

// Experiment scales.
const (
	// ScaleCI shrinks devices/model/steps so each run takes seconds.
	ScaleCI Scale = "ci"
	// ScaleFull is the paper's topology (10 edges, 100 devices, CNNs).
	ScaleFull Scale = "full"
)

// Strategy names accepted by the harness.
const (
	StratUniform      = "uniform"
	StratClassBalance = "class-balance"
	StratStatistical  = "statistical"
	StratMACH         = "mach"
	StratMACHP        = "mach-p"
	// StratOort is an extension beyond the paper's benchmark set (Lai et
	// al., OSDI 2021), wired in for the extension benches.
	StratOort = "oort"
)

// AllStrategies lists every compared strategy, MACH last.
func AllStrategies() []string {
	return []string{StratUniform, StratClassBalance, StratStatistical, StratMACH, StratMACHP}
}

// Baselines lists the non-MACH strategies of Table I (US, CS, SS).
func Baselines() []string {
	return []string{StratUniform, StratClassBalance, StratStatistical}
}

// Config fully describes one experiment cell.
type Config struct {
	Task             Task
	Model            string // "mlp" or "cnn"
	ImageSize        int    // square input side
	Edges            int
	Devices          int
	StationsPerEdge  int
	Steps            int
	CloudInterval    int
	LocalEpochs      int
	BatchSize        int
	LearningRate     float64
	Participation    float64
	TailRatio        float64
	GlobalTailRatio  float64
	NoisyDevices     float64 // fraction of devices with corrupted labels
	NoisyLabels      float64 // corrupted-label fraction within a noisy device
	MobilitySpeed    float64 // multiplier on waypoint speeds (1 = default)
	SamplesPerDevice int
	TestSamples      int
	TargetAccuracy   float64
	EvalEvery        int    // evaluation cadence in steps (0 = every cloud round)
	TestLaw          string // "balanced" (paper's standard test sets) or "global" (matches the long-tailed train mixture)
	SmoothWindow     int    // moving-average window (in eval points) applied before reading time-to-target
	Runs             int    // independent repetitions to average
	Seed             int64
	Aggregation      hfl.Aggregation
	MACH             sampling.MACHConfig
	Lane             string // compute lane for local updates: "f64" (default) or "f32"
	FuseBatch        bool   // fuse each edge's sampled devices into one lockstep execution task
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	switch {
	case c.Model != "mlp" && c.Model != "cnn":
		return fmt.Errorf("bench: unknown model %q", c.Model)
	case c.ImageSize < 4:
		return fmt.Errorf("bench: image size %d too small", c.ImageSize)
	case c.Edges <= 0 || c.Devices <= 0 || c.Steps <= 0 || c.Runs <= 0:
		return fmt.Errorf("bench: edges/devices/steps/runs must be positive")
	case c.TargetAccuracy <= 0 || c.TargetAccuracy >= 1:
		return fmt.Errorf("bench: target accuracy %v outside (0,1)", c.TargetAccuracy)
	}
	return nil
}

// TaskPreset returns the experiment configuration of one task at one scale,
// mirroring §IV-A2: 10 edges, 100 mobile devices, 50% participation, T_g=5
// for MNIST/FMNIST and T_g=10 for CIFAR-10, I=10 local epochs, long-tailed
// non-IID device data. Step counts and model sizes are reduced at ScaleCI.
func TaskPreset(task Task, scale Scale) Config {
	cfg := Config{
		Task:             task,
		Model:            "cnn",
		ImageSize:        16,
		Edges:            10,
		Devices:          100,
		StationsPerEdge:  4,
		CloudInterval:    5,
		LocalEpochs:      10,
		BatchSize:        8,
		LearningRate:     0.05,
		Participation:    0.5,
		TailRatio:        0.2,
		GlobalTailRatio:  0.6,
		NoisyDevices:     0.1,
		NoisyLabels:      0.25,
		MobilitySpeed:    1,
		SamplesPerDevice: 80,
		TestSamples:      1000,
		Runs:             3,
		Seed:             1,
		Aggregation:      hfl.AggPlain,
		MACH:             sampling.DefaultMACHConfig(),
	}
	switch task {
	case TaskMNIST:
		cfg.Steps = 400
		cfg.TargetAccuracy = 0.75
	case TaskFMNIST:
		cfg.Steps = 500
		cfg.TargetAccuracy = 0.65
	case TaskCIFAR10:
		cfg.Steps = 800
		cfg.CloudInterval = 10
		cfg.TargetAccuracy = 0.60
	}
	if scale == ScaleCI {
		cfg.Model = "mlp"
		cfg.ImageSize = 8
		cfg.Edges = 5
		cfg.Devices = 30
		cfg.StationsPerEdge = 3
		cfg.SamplesPerDevice = 50
		cfg.TestSamples = 1000
		cfg.LocalEpochs = 5
		cfg.EvalEvery = 1
		cfg.SmoothWindow = 5
		cfg.Runs = 3
		switch task {
		case TaskMNIST:
			cfg.Steps = 250
			cfg.TargetAccuracy = 0.74
		case TaskFMNIST:
			cfg.Steps = 350
			cfg.TargetAccuracy = 0.62
		case TaskCIFAR10:
			cfg.Steps = 400
			cfg.TargetAccuracy = 0.38
		}
	}
	return cfg
}

// taskSpec maps a Task to its synthetic dataset spec at the config's size.
func (c Config) taskSpec() dataset.TaskSpec {
	switch c.Task {
	case TaskFMNIST:
		return dataset.FMNISTLike(c.ImageSize, c.ImageSize)
	case TaskCIFAR10:
		return dataset.CIFAR10Like(c.ImageSize, c.ImageSize)
	default:
		return dataset.MNISTLike(c.ImageSize, c.ImageSize)
	}
}

// Arch returns the model constructor for the config: the paper's 2-conv CNN
// for MNIST/FMNIST, the 3-conv CNN for CIFAR-10, or a small MLP at CI scale.
func (c Config) Arch() hfl.ArchFunc {
	spec := c.taskSpec()
	if c.Model == "mlp" {
		in := spec.InC * spec.InH * spec.InW
		return func(rng *rand.Rand) (*nn.Network, error) {
			return nn.NewMLP(string(c.Task)+"-mlp", in, []int{32}, spec.Classes, rng), nil
		}
	}
	var cnnCfg nn.CNNConfig
	if c.Task == TaskCIFAR10 {
		cnnCfg = nn.CIFARCNNConfig(spec.InH, spec.InW)
	} else {
		cnnCfg = nn.MNISTCNNConfig(spec.InH, spec.InW)
	}
	return func(rng *rand.Rand) (*nn.Network, error) {
		return nn.NewCNN(cnnCfg, rng)
	}
}

// NewStrategy instantiates a named strategy for the config.
func (c Config) NewStrategy(name string) (sampling.Strategy, error) {
	switch name {
	case StratUniform:
		return sampling.NewUniform(), nil
	case StratClassBalance:
		return sampling.NewClassBalance(), nil
	case StratStatistical:
		return sampling.NewStatistical(c.Devices, c.MACH.QMin)
	case StratMACH:
		return sampling.NewMACH(c.Devices, c.MACH)
	case StratMACHP:
		return sampling.NewMACHP(c.MACH)
	case StratOort:
		return sampling.NewOort(c.Devices, sampling.DefaultOortConfig())
	default:
		return nil, fmt.Errorf("bench: unknown strategy %q", name)
	}
}

// Environment is the realized experiment world of one run: the non-IID
// device datasets, the shared test set and the mobility schedule. Strategies
// being compared share the same environment so differences come from
// sampling alone.
type Environment struct {
	DeviceData []*dataset.Dataset
	Test       *dataset.Dataset
	Schedule   *mobility.Schedule
}

// BuildEnvironment realizes the experiment world for one run index.
func (c Config) BuildEnvironment(run int) (*Environment, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	seed := c.Seed + int64(run)*7919
	task, err := dataset.NewTask(c.taskSpec())
	if err != nil {
		return nil, fmt.Errorf("bench: build task: %w", err)
	}
	parts, err := dataset.Partition(task, dataset.PartitionConfig{
		Devices:             c.Devices,
		SamplesPerDevice:    c.SamplesPerDevice,
		TailRatio:           c.TailRatio,
		GlobalTailRatio:     c.GlobalTailRatio,
		NoisyDeviceFraction: c.NoisyDevices,
		NoisyLabelFraction:  c.NoisyLabels,
		Seed:                seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: partition devices: %w", err)
	}
	// The default test set is class-balanced, like the standard MNIST /
	// FMNIST / CIFAR-10 test sets the paper evaluates on; TestLaw "global"
	// instead matches the long-tailed training mixture (the literal
	// objective of Eq. 2) for the ablation benches.
	var testLaw []float64
	if c.TestLaw == "global" {
		testLaw = make([]float64, task.Spec.Classes)
		for _, d := range parts {
			for cls, p := range d.ClassDistribution() {
				testLaw[cls] += p / float64(len(parts))
			}
		}
	}
	test, err := task.Generate(rand.New(rand.NewSource(seed+1)), c.TestSamples, testLaw)
	if err != nil {
		return nil, fmt.Errorf("bench: build test set: %w", err)
	}
	wcfg := mobility.DefaultWaypoint()
	if c.MobilitySpeed > 0 {
		wcfg.SpeedMin *= c.MobilitySpeed
		wcfg.SpeedMax *= c.MobilitySpeed
	}
	sched, err := mobility.GenerateScheduleWaypoint(seed+2, c.Edges, c.Devices, c.Steps, c.StationsPerEdge, wcfg)
	if err != nil {
		return nil, fmt.Errorf("bench: build schedule: %w", err)
	}
	return &Environment{DeviceData: parts, Test: test, Schedule: sched}, nil
}

// HFLConfig converts the bench config to an engine config for one run.
// An unparseable Lane string is deferred to hfl.Config.Validate via an
// out-of-range value rather than swallowed here.
func (c Config) HFLConfig(run int) hfl.Config {
	lane, err := hfl.ParseLane(c.Lane)
	if err != nil {
		lane = hfl.Lane(-1)
	}
	return hfl.Config{
		Steps:         c.Steps,
		CloudInterval: c.CloudInterval,
		LocalEpochs:   c.LocalEpochs,
		BatchSize:     c.BatchSize,
		LearningRate:  c.LearningRate,
		LRDecay:       1,
		Participation: c.Participation,
		EvalEvery:     c.EvalEvery,
		Seed:          c.Seed + int64(run)*7919 + 3,
		Aggregation:   c.Aggregation,
		Lane:          lane,
		FuseBatch:     c.FuseBatch,
	}
}

// StrategyResult is the outcome of running one strategy on one config.
type StrategyResult struct {
	Strategy string
	// History is the run-averaged accuracy curve.
	History *metrics.History
	// TimeToTarget is the first step of the averaged curve reaching the
	// config's target accuracy; Reached is false if it never does (in
	// which case TimeToTarget holds the step budget).
	TimeToTarget int
	Reached      bool
	// FinalAccuracy of the averaged curve.
	FinalAccuracy float64
}

// RunStrategy executes cfg.Runs independent runs of one strategy (fresh
// strategy state per run, shared environments across strategies via the run
// seeds) and averages the curves.
func RunStrategy(cfg Config, name string) (*StrategyResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	histories := make([]*metrics.History, 0, cfg.Runs)
	for run := 0; run < cfg.Runs; run++ {
		env, err := cfg.BuildEnvironment(run)
		if err != nil {
			return nil, err
		}
		strat, err := cfg.NewStrategy(name)
		if err != nil {
			return nil, err
		}
		eng, err := hfl.New(cfg.HFLConfig(run), cfg.Arch(), env.DeviceData, env.Test, env.Schedule, strat)
		if err != nil {
			return nil, fmt.Errorf("bench: run %d: %w", run, err)
		}
		res, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("bench: run %d: %w", run, err)
		}
		histories = append(histories, res.History)
	}
	avg := metrics.AverageHistories(histories)
	if cfg.SmoothWindow > 1 {
		avg = avg.Smoothed(cfg.SmoothWindow)
	}
	out := &StrategyResult{
		Strategy:      name,
		History:       avg,
		FinalAccuracy: avg.FinalAccuracy(),
	}
	if step, ok := avg.TimeToAccuracy(cfg.TargetAccuracy); ok {
		out.TimeToTarget, out.Reached = step, true
	} else {
		out.TimeToTarget = cfg.Steps
	}
	return out, nil
}

// Comparison holds the results of all strategies on one config.
type Comparison struct {
	Config  Config
	Results []*StrategyResult
}

// RunComparison runs every strategy in names on the config.
func RunComparison(cfg Config, names []string) (*Comparison, error) {
	cmp := &Comparison{Config: cfg}
	for _, name := range names {
		res, err := RunStrategy(cfg, name)
		if err != nil {
			return nil, fmt.Errorf("bench: strategy %s: %w", name, err)
		}
		cmp.Results = append(cmp.Results, res)
	}
	return cmp, nil
}

// Result returns the named strategy's result, or nil.
func (c *Comparison) Result(name string) *StrategyResult {
	for _, r := range c.Results {
		if r.Strategy == name {
			return r
		}
	}
	return nil
}

// SavedPercent computes the headline metric: percentage of time steps MACH
// saves against the best of the given baselines (only counting baselines
// that reached the target).
func (c *Comparison) SavedPercent(baselines []string) float64 {
	mach := c.Result(StratMACH)
	if mach == nil || !mach.Reached {
		return 0
	}
	var steps []int
	for _, b := range baselines {
		if r := c.Result(b); r != nil && r.Reached {
			steps = append(steps, r.TimeToTarget)
		}
	}
	return metrics.SavedPercent(mach.TimeToTarget, steps)
}
