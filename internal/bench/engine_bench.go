package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"

	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/telemetry"
	"github.com/mach-fl/mach/internal/tensor"
)

// EngineBenchPreset is the fixed micro configuration of `machbench -exp
// engine`: a Figure-3-shaped MNIST cell at CI scale, single run, MACH
// sampling. Keeping the shape frozen makes BENCH_engine.json comparable
// across commits.
func EngineBenchPreset() Config {
	cfg := TaskPreset(TaskMNIST, ScaleCI)
	cfg.Steps = 60
	cfg.Runs = 1
	cfg.EvalEvery = 10
	cfg.SmoothWindow = 1
	return cfg
}

// EngineBenchRow measures one full engine run of one cell: a compute lane ×
// batch-fusion combination at one worker-pool size.
type EngineBenchRow struct {
	// Lane is the compute lane of the cell ("f64" or "f32").
	Lane string `json:"lane"`
	// Fused reports whether cross-device batch fusion was enabled.
	Fused bool `json:"fused"`
	// Workers is the resolved pool size passed to hfl.Config.Workers.
	Workers int `json:"workers"`
	// StepsRun is the number of simulated time steps executed.
	StepsRun int `json:"steps_run"`
	// DevicesTrained counts device participations (local update runs).
	DevicesTrained int `json:"devices_trained"`
	// WallNs is the wall-clock duration of Engine.Run.
	WallNs int64 `json:"wall_ns"`
	// NsPerStep is WallNs / StepsRun — the per-time-step cost including
	// sampling decisions, aggregation and periodic evaluation.
	NsPerStep int64 `json:"ns_per_step"`
	// NsPerDeviceUpdate is WallNs / DevicesTrained.
	NsPerDeviceUpdate int64 `json:"ns_per_device_update"`
	// DevicesTrainedPerSec is the training throughput of the run.
	DevicesTrainedPerSec float64 `json:"devices_trained_per_sec"`
	// AllocsPerStep and BytesPerStep are heap-allocation counts per time
	// step over the whole run, including warm-up of the reusable scratch
	// buffers (steady-state-only numbers live in the package tests).
	AllocsPerStep float64 `json:"allocs_per_step"`
	BytesPerStep  float64 `json:"bytes_per_step"`
	// SpeedupVsSerial is row 0's WallNs divided by this row's WallNs. Row 0
	// is always the f64 / unfused / serial cell — the engine's committed
	// baseline — so every other cell's speedup reads against it directly.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// FinalAccuracy is recorded so bit-identity across worker counts can be
	// eyeballed straight from the JSON.
	FinalAccuracy float64 `json:"final_accuracy"`
}

// MatMulBenchRow compares the blocked kernel against a naive triple loop at
// one square size, tracking the acceptance criterion that blocked ns/op
// stays below naive at 128³ and beyond.
type MatMulBenchRow struct {
	Size           int     `json:"size"`
	BlockedNsPerOp int64   `json:"blocked_ns_per_op"`
	NaiveNsPerOp   int64   `json:"naive_ns_per_op"`
	Speedup        float64 `json:"speedup"`
}

// EngineBenchResult is the payload of BENCH_engine.json.
type EngineBenchResult struct {
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Task       string           `json:"task"`
	Model      string           `json:"model"`
	Devices    int              `json:"devices"`
	Edges      int              `json:"edges"`
	Steps      int              `json:"steps"`
	Strategy   string           `json:"strategy"`
	Rows       []EngineBenchRow `json:"rows"`
	MatMul     []MatMulBenchRow `json:"matmul"`
	// Profiles names the pprof files captured with this run, if any.
	Profiles *ProfileMeta `json:"profiles,omitempty"`
}

// engineBenchWorkerCounts picks the pool sizes to measure: serial, two
// workers (pool overhead on small machines) and every core.
func engineBenchWorkerCounts() []int {
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	out := counts[:0]
	seen := map[int]bool{}
	for _, c := range counts {
		if c >= 1 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// engineBenchCells enumerates the lane × fusion grid in measurement order.
// The first cell is f64 / unfused — the committed baseline whose serial row
// anchors SpeedupVsSerial and the check-script headline — followed by each
// acceleration knob alone and then both together.
func engineBenchCells() []struct {
	Lane string
	Fuse bool
} {
	return []struct {
		Lane string
		Fuse bool
	}{
		{"f64", false},
		{"f64", true},
		{"f32", false},
		{"f32", true},
	}
}

// RunEngineBench runs the frozen micro configuration once per lane × fusion
// cell and worker count, recording wall time, throughput and allocation
// pressure per cell.
func RunEngineBench(cfg Config) (*EngineBenchResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &EngineBenchResult{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Task:       string(cfg.Task),
		Model:      cfg.Model,
		Devices:    cfg.Devices,
		Edges:      cfg.Edges,
		Steps:      cfg.Steps,
		Strategy:   StratMACH,
	}
	for _, cell := range engineBenchCells() {
		for _, workers := range engineBenchWorkerCounts() {
			// Fresh environment, strategy and engine per measurement so no
			// run warms another's caches; the seeds are identical, so the
			// simulated trajectory is too (bitwise within a lane).
			env, err := cfg.BuildEnvironment(0)
			if err != nil {
				return nil, err
			}
			strat, err := cfg.NewStrategy(StratMACH)
			if err != nil {
				return nil, err
			}
			hcfg := cfg.HFLConfig(0)
			hcfg.Workers = workers
			lane, err := hfl.ParseLane(cell.Lane)
			if err != nil {
				return nil, err
			}
			hcfg.Lane = lane
			hcfg.FuseBatch = cell.Fuse
			eng, err := hfl.New(hcfg, cfg.Arch(), env.DeviceData, env.Test, env.Schedule, strat)
			if err != nil {
				return nil, fmt.Errorf("bench: engine (lane=%s fused=%v workers=%d): %w", cell.Lane, cell.Fuse, workers, err)
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := telemetry.WallNow()
			run, err := eng.Run()
			wall := telemetry.WallSince(start)
			runtime.ReadMemStats(&after)
			if err != nil {
				return nil, fmt.Errorf("bench: engine run (lane=%s fused=%v workers=%d): %w", cell.Lane, cell.Fuse, workers, err)
			}
			row := EngineBenchRow{
				Lane:           cell.Lane,
				Fused:          cell.Fuse,
				Workers:        workers,
				StepsRun:       run.StepsRun,
				DevicesTrained: run.TotalSampled,
				WallNs:         wall.Nanoseconds(),
				FinalAccuracy:  run.History.FinalAccuracy(),
			}
			if run.StepsRun > 0 {
				row.NsPerStep = wall.Nanoseconds() / int64(run.StepsRun)
				row.AllocsPerStep = float64(after.Mallocs-before.Mallocs) / float64(run.StepsRun)
				row.BytesPerStep = float64(after.TotalAlloc-before.TotalAlloc) / float64(run.StepsRun)
			}
			if run.TotalSampled > 0 {
				row.NsPerDeviceUpdate = wall.Nanoseconds() / int64(run.TotalSampled)
				row.DevicesTrainedPerSec = float64(run.TotalSampled) / wall.Seconds()
			}
			if len(res.Rows) > 0 && row.WallNs > 0 {
				row.SpeedupVsSerial = float64(res.Rows[0].WallNs) / float64(row.WallNs)
			} else {
				row.SpeedupVsSerial = 1
			}
			res.Rows = append(res.Rows, row)
		}
	}
	for _, size := range []int{128, 256} {
		res.MatMul = append(res.MatMul, benchMatMul(size))
	}
	return res, nil
}

// benchMatMul times tensor.MatMulInto against a naive i-j-k triple loop on
// one n×n×n product, taking the best of three runs each.
func benchMatMul(n int) MatMulBenchRow {
	rng := rand.New(rand.NewSource(42))
	a := tensor.Randn(rng, 1, n, n)
	b := tensor.Randn(rng, 1, n, n)
	dst := tensor.New(n, n)
	blocked := bestOf(3, func() { tensor.MatMulInto(dst, a, b) })
	ad, bd, dd := a.Data(), b.Data(), dst.Data()
	naive := bestOf(3, func() {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += ad[i*n+k] * bd[k*n+j]
				}
				dd[i*n+j] = s
			}
		}
	})
	row := MatMulBenchRow{Size: n, BlockedNsPerOp: blocked, NaiveNsPerOp: naive}
	if blocked > 0 {
		row.Speedup = float64(naive) / float64(blocked)
	}
	return row
}

func bestOf(iters int, fn func()) int64 {
	best := int64(0)
	for i := 0; i < iters; i++ {
		start := telemetry.WallNow()
		fn()
		d := telemetry.WallSince(start).Nanoseconds()
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// WriteEngineBenchJSON writes the result as indented JSON.
func (r *EngineBenchResult) WriteEngineBenchJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderEngineBench prints the result as a text table.
func RenderEngineBench(w io.Writer, r *EngineBenchResult) error {
	if _, err := fmt.Fprintf(w, "Engine micro-benchmark — %s/%s, %d CPU (GOMAXPROCS=%d)\n", r.GOOS, r.GOARCH, r.NumCPU, r.GOMAXPROCS); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "config: task=%s model=%s devices=%d edges=%d steps=%d strategy=%s\n\n", r.Task, r.Model, r.Devices, r.Edges, r.Steps, r.Strategy); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%5s %6s %8s %10s %14s %12s %14s %14s %9s %8s\n",
		"lane", "fused", "workers", "ns/step", "ns/dev-update", "devices/s", "allocs/step", "bytes/step", "speedup", "acc"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%5s %6v %8d %10d %14d %12.1f %14.1f %14.0f %8.2fx %8.4f\n",
			row.Lane, row.Fused, row.Workers, row.NsPerStep, row.NsPerDeviceUpdate, row.DevicesTrainedPerSec,
			row.AllocsPerStep, row.BytesPerStep, row.SpeedupVsSerial, row.FinalAccuracy); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n%8s %14s %14s %9s\n", "matmul", "blocked ns/op", "naive ns/op", "speedup"); err != nil {
		return err
	}
	for _, m := range r.MatMul {
		if _, err := fmt.Fprintf(w, "%7d³ %14d %14d %8.2fx\n", m.Size, m.BlockedNsPerOp, m.NaiveNsPerOp, m.Speedup); err != nil {
			return err
		}
	}
	return nil
}
