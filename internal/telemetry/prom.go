package telemetry

import (
	"bytes"
	"io"
	"strconv"

	"github.com/mach-fl/mach/internal/det"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges map directly; every
// histogram becomes a summary with its log-bucket-estimated p50/p90/p99/
// p999 quantiles plus _sum and _count; per-shard phase histograms and
// queue depths are labelled {shard=...,phase=...}. All families carry the
// "mach_" prefix and are emitted in sorted order, so the output is
// deterministic for deterministic metric values.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	var b bytes.Buffer

	for _, name := range det.SortedKeys(s.Counters) {
		promHead(&b, name, "counter")
		promSample(&b, name, "", float64(s.Counters[name]))
	}
	for _, name := range det.SortedKeys(s.Gauges) {
		promHead(&b, name, "gauge")
		promSample(&b, name, "", s.Gauges[name])
	}
	for _, name := range det.SortedKeys(s.Histograms) {
		promHead(&b, name, "summary")
		promSummaryBody(&b, name, "", s.Histograms[name])
	}
	if len(s.Shards) > 0 {
		promHead(&b, "shard_phase_ns", "summary")
		for _, sh := range s.Shards {
			for _, phase := range det.SortedKeys(sh.Phases) {
				labels := `shard="` + strconv.Itoa(sh.Shard) + `",phase="` + phase + `"`
				promSummaryBody(&b, "shard_phase_ns", labels, sh.Phases[phase])
			}
		}
		promHead(&b, "shard_queue_depth", "gauge")
		for _, sh := range s.Shards {
			promSample(&b, "shard_queue_depth", `shard="`+strconv.Itoa(sh.Shard)+`"`, float64(sh.QueueDepth))
		}
	}

	_, err := w.Write(b.Bytes())
	return err
}

// promHead writes one metric family's TYPE line.
func promHead(b *bytes.Buffer, name, typ string) {
	b.WriteString("# TYPE mach_")
	b.WriteString(name)
	b.WriteString(" ")
	b.WriteString(typ)
	b.WriteString("\n")
}

// promSample writes one sample line: mach_<name>{<labels>} <value>.
func promSample(b *bytes.Buffer, name, labels string, v float64) {
	b.WriteString("mach_")
	b.WriteString(name)
	if labels != "" {
		b.WriteString("{")
		b.WriteString(labels)
		b.WriteString("}")
	}
	b.WriteString(" ")
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteString("\n")
}

// promSummaryBody writes one summary's quantile, _sum and _count samples.
func promSummaryBody(b *bytes.Buffer, name, labels string, h HistSnapshot) {
	quantile := func(q string, v int64) {
		l := `quantile="` + q + `"`
		if labels != "" {
			l = labels + "," + l
		}
		promSample(b, name, l, float64(v))
	}
	quantile("0.5", h.P50)
	quantile("0.9", h.P90)
	quantile("0.99", h.P99)
	quantile("0.999", h.P999)
	promSample(b, name+"_sum", labels, float64(h.Sum))
	promSample(b, name+"_count", labels, float64(h.Count))
}
