package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarTel is the telemetry sink published under the "mach" expvar. The
// expvar registry panics on duplicate names, so the variable is published
// once and reads through this pointer — the most recently started debug
// server's sink wins.
var (
	expvarTel  atomic.Pointer[Telemetry]
	expvarOnce sync.Once
)

func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("mach", expvar.Func(func() any {
			return expvarTel.Load().Snapshot() // Snapshot is nil-safe
		}))
	})
}

// DebugServer is the process's observability HTTP endpoint: the standard
// expvar dump at /debug/vars (with the telemetry snapshot published as the
// "mach" variable), the full pprof suite at /debug/pprof/, and the
// telemetry snapshot alone at /debug/telemetry.
type DebugServer struct {
	// Addr is the bound address, with any ":0" port resolved.
	Addr string
	srv  *http.Server
}

// StartDebugServer binds addr and serves the debug endpoints in a
// background goroutine until Close. t may be nil: pprof and expvar still
// work, and the telemetry snapshot is empty.
func StartDebugServer(addr string, t *Telemetry) (*DebugServer, error) {
	expvarTel.Store(t)
	publishExpvar()

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteSnapshot(w); err != nil {
			// The response is already partially written; nothing to recover.
			return
		}
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server listen %s: %w", addr, err)
	}
	s := &DebugServer{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}}
	go func() {
		// Serve returns http.ErrServerClosed on Close; any earlier failure
		// has no caller to report to, so the server just stops.
		_ = s.srv.Serve(ln) //machlint:allow errdrop Serve always returns non-nil; ErrServerClosed on Close is the expected exit
	}()
	return s, nil
}

// Close stops the server and releases the listener.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
