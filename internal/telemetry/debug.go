package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	rtdebug "runtime/debug"
	"sync"
	"sync/atomic"
)

// expvarTel is the telemetry sink published under the "mach" expvar. The
// expvar registry panics on duplicate names, so the variable is published
// once and reads through this pointer — the most recently started debug
// server's sink wins.
var (
	expvarTel  atomic.Pointer[Telemetry]
	expvarOnce sync.Once
)

func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("mach", expvar.Func(func() any {
			return expvarTel.Load().Snapshot() // Snapshot is nil-safe
		}))
	})
}

// DebugServer is the process's observability HTTP endpoint: the standard
// expvar dump at /debug/vars (with the telemetry snapshot published as the
// "mach" variable), the full pprof suite at /debug/pprof/, the telemetry
// snapshot alone at /debug/telemetry, the retained span ring at
// /debug/spans, the module's build identity at /debug/buildinfo, the
// Prometheus text exposition at /metrics, and the /healthz + /readyz
// probes. /healthz answers 200 whenever the process can serve HTTP at
// all; /readyz answers 503 until the host program calls SetReady(true) —
// machsim flips it once the engine is constructed, machnode once its RPC
// listener is up.
type DebugServer struct {
	// Addr is the bound address, with any ":0" port resolved.
	Addr  string
	srv   *http.Server
	ready atomic.Bool
}

// SetReady switches what /readyz reports: false (the initial state) serves
// 503 "starting", true serves 200 "ok". Nil-safe.
func (s *DebugServer) SetReady(ready bool) {
	if s == nil {
		return
	}
	s.ready.Store(ready)
}

// StartDebugServer binds addr and serves the debug endpoints in a
// background goroutine until Close. t may be nil: pprof, expvar and the
// health probes still work, and the telemetry surfaces are empty.
func StartDebugServer(addr string, t *Telemetry) (*DebugServer, error) {
	expvarTel.Store(t)
	publishExpvar()

	s := &DebugServer{}

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteSnapshot(w); err != nil {
			// The response is already partially written; nothing to recover.
			return
		}
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t.Spans()); err != nil {
			return
		}
	})
	mux.HandleFunc("/debug/buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		bi, ok := rtdebug.ReadBuildInfo()
		if !ok {
			http.Error(w, "no build info in this binary", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := io.WriteString(w, bi.String()); err != nil {
			return
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, t.Snapshot()); err != nil {
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := io.WriteString(w, "ok\n"); err != nil {
			return
		}
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			if _, err := io.WriteString(w, "starting\n"); err != nil {
				return
			}
			return
		}
		if _, err := io.WriteString(w, "ok\n"); err != nil {
			return
		}
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server listen %s: %w", addr, err)
	}
	s.Addr = ln.Addr().String()
	s.srv = &http.Server{Handler: mux}
	go func() {
		// Serve returns http.ErrServerClosed on Close; any earlier failure
		// has no caller to report to, so the server just stops.
		_ = s.srv.Serve(ln) //machlint:allow errdrop Serve always returns non-nil; ErrServerClosed on Close is the expected exit
	}()
	return s, nil
}

// Close stops the server and releases the listener.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// BuildVersion returns a short build-identity string for startup logs:
// the main module's version plus the VCS revision when the binary was
// stamped with one ("(devel)" under plain `go build` from a checkout,
// "unknown" when build info is absent entirely).
func BuildVersion() string {
	bi, ok := rtdebug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	ver := bi.Main.Version
	if ver == "" {
		ver = "(devel)"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		return ver + " " + rev + dirty
	}
	return ver
}
