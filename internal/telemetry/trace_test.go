package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTrace(t *testing.T, buf *bytes.Buffer, cfg TraceConfig) *Trace {
	t.Helper()
	tr := NewTrace(buf, cfg)
	tr.Emit(&Event{Type: EventRun, Run: &RunEvent{
		Strategy: "mach", Seed: 1, Devices: 6, Edges: 2, Steps: 4, Capacity: 1.5,
		Every: cfg.Every,
	}})
	for step := 0; step < 4; step++ {
		for edge := 0; edge < 2; edge++ {
			if !tr.DecisionActive(step, edge) {
				continue
			}
			base := edge * 3
			tr.Emit(&Event{Type: EventDecision, Step: step, Decision: &DecisionEvent{
				Edge:      edge,
				Members:   []int{base, base + 1, base + 2},
				Estimates: []float64{1.5, 0.5, 1.0},
				Probs:     []float64{0.9, 0.1, 0.5},
				Coins:     []float64{0.3, 0.7, 0.45},
				Sampled:   []int{base, base + 2},
				Dropped:   []int{base + 2},
			}})
		}
		if tr.StepActive(step) {
			tr.Emit(&Event{Type: EventPhase, Step: step, Phase: &PhaseEvent{Name: "decide", NS: int64(100 + step)}})
		}
	}
	tr.Emit(&Event{Type: EventEstimator, Step: 4, Estimator: &EstimatorEvent{Devices: 6, NeverPulled: 2, TotalPulls: 8, MaxPulls: 4}})
	tr.Emit(&Event{Type: EventEval, Step: 4, Eval: &EvalEvent{Accuracy: 0.5, Loss: 1.2}})
	tr.Emit(&Event{Type: EventDone, Step: 4, Done: &DoneEvent{StepsRun: 4, TotalSampled: 16, FinalAccuracy: 0.5}})
	if err := tr.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	return tr
}

func TestTraceRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	tr := sampleTrace(t, &buf, TraceConfig{})
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if int64(len(events)) != tr.Events() {
		t.Fatalf("read %d events, trace wrote %d", len(events), tr.Events())
	}
	// run + 8 decisions + 4 phases + estimator + eval + done
	if len(events) != 16 {
		t.Fatalf("event count = %d, want 16", len(events))
	}
	d := events[1]
	if d.Type != EventDecision || d.Decision == nil || d.Decision.Edge != 0 {
		t.Fatalf("second event = %+v, want edge-0 decision", d)
	}
	if got := d.Decision.Coins[1]; got != 0.7 {
		t.Fatalf("coin roundtrip = %v, want 0.7", got)
	}
}

// TestTraceRateControl pins the deterministic sampling gates: Every keeps
// only matching steps, MaxEdges only low-index edges.
func TestTraceRateControl(t *testing.T) {
	tr := NewTrace(&bytes.Buffer{}, TraceConfig{Every: 2, MaxEdges: 1})
	cases := []struct {
		step, edge int
		want       bool
	}{
		{0, 0, true},
		{0, 1, false}, // edge ≥ MaxEdges
		{1, 0, false}, // step % Every != 0
		{2, 0, true},
		{3, 1, false},
	}
	for _, c := range cases {
		if got := tr.DecisionActive(c.step, c.edge); got != c.want {
			t.Fatalf("DecisionActive(%d, %d) = %v, want %v", c.step, c.edge, got, c.want)
		}
	}
	var buf bytes.Buffer
	sampleTrace(t, &buf, TraceConfig{Every: 2})
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	for _, ev := range events {
		if (ev.Type == EventDecision || ev.Type == EventPhase) && ev.Step%2 != 0 {
			t.Fatalf("event at odd step recorded despite Every=2: %+v", ev)
		}
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	sampleTrace(t, &buf, TraceConfig{})
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	s := Summarize(events)
	if s.Run == nil || s.Run.Strategy != "mach" {
		t.Fatalf("summary run = %+v", s.Run)
	}
	if s.Decisions != 8 || s.Steps != 4 {
		t.Fatalf("decisions/steps = %d/%d, want 8/4", s.Decisions, s.Steps)
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != "decide" || s.Phases[0].Count != 4 {
		t.Fatalf("phases = %+v", s.Phases)
	}
	// Each decision's mass is 0.9+0.1+0.5 = 1.5; two edges per step.
	if got := s.Mass[0].Mass; got < 2.999 || got > 3.001 {
		t.Fatalf("step-0 mass = %v, want 3.0", got)
	}
	var out strings.Builder
	if err := s.Write(&out); err != nil {
		t.Fatalf("summary write: %v", err)
	}
	for _, want := range []string{"phase breakdown", "exploration health", "probability mass", "final accuracy 0.5"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary output missing %q:\n%s", want, out.String())
		}
	}
}

func TestWhy(t *testing.T) {
	var buf bytes.Buffer
	sampleTrace(t, &buf, TraceConfig{})
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	// Device 4 = edge 1 member index 1: prob 0.1, coin 0.7 → not sampled.
	r, err := Why(events, 4, 2)
	if err != nil {
		t.Fatalf("Why: %v", err)
	}
	if r.Edge != 1 || r.Prob != 0.1 || r.Coin != 0.7 || r.Sampled {
		t.Fatalf("why(4, 2) = %+v", r)
	}
	if !r.HasEstimate || r.Estimate != 0.5 {
		t.Fatalf("why(4, 2) estimate = %+v", r)
	}
	// Device 5 = edge 1 member index 2: sampled and dropped.
	r, err = Why(events, 5, 1)
	if err != nil {
		t.Fatalf("Why: %v", err)
	}
	if !r.Sampled || !r.Dropped {
		t.Fatalf("why(5, 1) = %+v, want sampled+dropped", r)
	}
	var out strings.Builder
	if err := r.Write(&out); err != nil {
		t.Fatalf("why write: %v", err)
	}
	if !strings.Contains(out.String(), "SAMPLED") || !strings.Contains(out.String(), "DROPPED") {
		t.Fatalf("why output: %s", out.String())
	}
	if _, err := Why(events, 99, 0); err == nil {
		t.Fatal("Why on unknown device should fail")
	}
}

func TestDiff(t *testing.T) {
	var a, b bytes.Buffer
	sampleTrace(t, &a, TraceConfig{})
	sampleTrace(t, &b, TraceConfig{})
	ea, err := ReadEvents(&a)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	eb, err := ReadEvents(&b)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	// Identical traces: zero divergence, even though phase timings differ
	// from run to run (here they don't, but Diff must not depend on them).
	if div := Diff(ea, eb); div != nil {
		t.Fatalf("identical traces diverge: %+v", div)
	}
	// Perturb one coin: exactly one divergence, at the right step.
	for i := range eb {
		if eb[i].Type == EventDecision && eb[i].Step == 2 && eb[i].Decision.Edge == 1 {
			eb[i].Decision.Coins[0] += 1e-9
		}
	}
	div := Diff(ea, eb)
	if len(div) != 1 || div[0].Step != 2 || div[0].Type != EventDecision {
		t.Fatalf("perturbed diff = %+v, want one decision divergence at step 2", div)
	}
	// Phase-only differences are ignored.
	for i := range eb {
		if eb[i].Type == EventDecision && eb[i].Step == 2 && eb[i].Decision.Edge == 1 {
			eb[i].Decision.Coins[0] -= 1e-9
		}
		if eb[i].Type == EventPhase {
			eb[i].Phase.NS += 12345
		}
	}
	if div := Diff(ea, eb); div != nil {
		t.Fatalf("phase timing change should not diverge: %+v", div)
	}
	// Truncated trace: missing events surface as divergences.
	if div := Diff(ea, eb[:len(eb)-1]); len(div) == 0 {
		t.Fatal("truncated trace should diverge")
	}
}
