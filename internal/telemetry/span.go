package telemetry

import (
	"sync"
)

// Span-based tracing: lightweight cross-process spans over the engine's
// phases, the shard actors' commands, and every fed RPC. Span identity is
// purely structural — an ID is a hash of (kind, step, edge, device), never
// of a clock or random draw — so the same logical operation gets the same
// ID in every process and in every identically-configured run. That is
// what lets a cloud-side RPC span and the edge-side handler span it invoked
// stitch into one tree after the fact: each process records spans into its
// own sink, the client span's ID travels in the RPC args as the server
// span's parent, and IDs agree by construction.
//
// Like the rest of the package, spans are observational only and free when
// disabled: StartSpan on a nil or spans-off sink returns an inert Span
// without reading the clock or allocating, and End on it is a no-op.

// SpanID identifies one span. The zero ID means "no span" (disabled
// tracing, or a root with no parent).
type SpanID uint64

// SpanKind classifies a span. Each kind has its own latency histogram,
// surfaced in Snapshot.Histograms under "span_<name>_ns".
type SpanKind int

// Span kinds: the engine's step phases, the control-plane shard commands,
// the cloud reduce, the client side of every fed RPC (rpc_*) and the server
// side of every fed RPC handler (handle_*).
const (
	SpanStep SpanKind = iota
	SpanDecide
	SpanTrain
	SpanFinalize
	SpanEval
	SpanCloudReduce
	SpanShardCmd
	SpanRPCEdgeStep
	SpanRPCTrainMany
	SpanRPCTrain
	SpanRPCSetBase
	SpanRPCGetBase
	SpanRPCEstimate
	SpanRPCCloudRound
	SpanHandleEdgeStep
	SpanHandleTrainMany
	SpanHandleTrain
	SpanHandleSetBase
	SpanHandleGetBase
	SpanHandleEstimate
	SpanHandleCloudRound

	spanKindCount
)

// spanKindNames align with the SpanKind constants.
var spanKindNames = [spanKindCount]string{
	"step",
	"decide",
	"train",
	"finalize",
	"eval",
	"cloud_reduce",
	"shard_cmd",
	"rpc_edge_step",
	"rpc_train_many",
	"rpc_train",
	"rpc_set_base",
	"rpc_get_base",
	"rpc_estimate",
	"rpc_cloud_round",
	"handle_edge_step",
	"handle_train_many",
	"handle_train",
	"handle_set_base",
	"handle_get_base",
	"handle_estimate",
	"handle_cloud_round",
}

// String returns the span kind's snake_case name.
func (k SpanKind) String() string {
	if k < 0 || k >= spanKindCount {
		return "unknown"
	}
	return spanKindNames[k]
}

// DeriveSpanID hashes (kind, step, edge, device) with the same FNV-style
// mix the engine uses for decision seeds. No clock, no randomness: the ID
// of a span is a pure function of what it measures, so identically-seeded
// runs — and the two processes on either end of an RPC — derive identical
// IDs. Dimensions that do not apply use -1.
//
//machlint:allocfree
func DeriveSpanID(kind SpanKind, step, edge, device int) SpanID {
	h := uint64(1469598103934665603)
	h ^= uint64(kind) + 0x517cc1b727220a95
	h *= 1099511628211
	h ^= uint64(int64(step))
	h *= 1099511628211
	h ^= uint64(int64(edge))
	h *= 1099511628211
	h ^= uint64(int64(device))
	h *= 1099511628211
	return SpanID(h)
}

// spanRingCap bounds the in-memory span ring: the newest spanRingCap
// completed spans are retained for /debug/spans; older ones age out. Only
// the per-kind latency histograms are unbounded-horizon.
const spanRingCap = 2048

// spanRecord is one completed span in the ring (internal form; kind is
// resolved to a name only at snapshot time).
type spanRecord struct {
	kind    SpanKind
	id      SpanID
	parent  SpanID
	step    int32
	edge    int32
	device  int32
	startNS int64
	durNS   int64
}

// spanState is everything span recording needs, allocated once when spans
// are enabled so a spans-off sink pays a single atomic pointer load.
type spanState struct {
	dur [spanKindCount]histogram

	mu   sync.Mutex
	next uint64
	ring [spanRingCap]spanRecord
}

// EnableSpans turns span recording on or off. Enabling allocates the
// per-kind latency histograms and the span ring; disabling discards them.
// Safe on a nil receiver and concurrent with recording.
func (t *Telemetry) EnableSpans(on bool) {
	if t == nil {
		return
	}
	if !on {
		t.spans.Store(nil)
		return
	}
	if t.spans.Load() == nil {
		t.spans.Store(new(spanState))
	}
}

// SpansEnabled reports whether spans are being recorded.
func (t *Telemetry) SpansEnabled() bool {
	return t != nil && t.spans.Load() != nil
}

// Span is an open span. The zero Span (from a nil or spans-off sink) is
// inert: End is a no-op and ID returns 0.
type Span struct {
	t      *Telemetry
	kind   SpanKind
	id     SpanID
	parent SpanID
	step   int
	edge   int
	device int
	start  int64
}

// StartSpan opens a span of the given kind with its ID derived from
// (kind, step, edge, device); parent links it into a tree (0 = root).
// Disabled spans cost one nil check plus one atomic load and never read
// the clock.
//
//machlint:allocfree
func (t *Telemetry) StartSpan(kind SpanKind, parent SpanID, step, edge, device int) Span {
	if t == nil || t.spans.Load() == nil {
		return Span{}
	}
	return Span{
		t:      t,
		kind:   kind,
		id:     DeriveSpanID(kind, step, edge, device),
		parent: parent,
		step:   step,
		edge:   edge,
		device: device,
		start:  t.clock(),
	}
}

// ID returns the span's deterministic ID, for propagation to child spans
// (e.g. in RPC args). 0 when the span is inert.
func (s Span) ID() SpanID { return s.id }

// End closes the span, recording its duration into the kind's latency
// histogram and the span ring. No-op on an inert span.
//
//machlint:allocfree
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.recordSpan(s.kind, s.id, s.parent, s.step, s.edge, s.device, s.start, s.t.clock())
}

// RecordSpan records an already-timed span from a pair of Now timestamps,
// for call sites that already measure a phase and should not read the
// clock twice. The ID is derived exactly as in StartSpan.
//
//machlint:allocfree
func (t *Telemetry) RecordSpan(kind SpanKind, parent SpanID, step, edge, device int, startNS, endNS int64) {
	if t == nil || t.spans.Load() == nil {
		return
	}
	t.recordSpan(kind, DeriveSpanID(kind, step, edge, device), parent, step, edge, device, startNS, endNS)
}

//machlint:allocfree
func (t *Telemetry) recordSpan(kind SpanKind, id, parent SpanID, step, edge, device int, startNS, endNS int64) {
	sp := t.spans.Load()
	if sp == nil {
		return
	}
	sp.dur[kind].observe(endNS - startNS)
	sp.mu.Lock()
	r := &sp.ring[sp.next%spanRingCap]
	sp.next++
	r.kind = kind
	r.id = id
	r.parent = parent
	r.step = int32(step)
	r.edge = int32(edge)
	r.device = int32(device)
	r.startNS = startNS
	r.durNS = endNS - startNS
	sp.mu.Unlock()
}

// SpanSnapshot is one completed span, as exposed by Spans and
// /debug/spans.
type SpanSnapshot struct {
	Kind    string `json:"kind"`
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Step    int    `json:"step"`
	Edge    int    `json:"edge"`
	Device  int    `json:"device"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Spans copies the retained span ring, oldest first. Empty when spans are
// disabled.
func (t *Telemetry) Spans() []SpanSnapshot {
	if t == nil {
		return nil
	}
	sp := t.spans.Load()
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	n := sp.next
	count := n
	if count > spanRingCap {
		count = spanRingCap
	}
	out := make([]SpanSnapshot, 0, count)
	for i := n - count; i < n; i++ {
		r := &sp.ring[i%spanRingCap]
		out = append(out, SpanSnapshot{
			Kind:    r.kind.String(),
			ID:      uint64(r.id),
			Parent:  uint64(r.parent),
			Step:    int(r.step),
			Edge:    int(r.edge),
			Device:  int(r.device),
			StartNS: r.startNS,
			DurNS:   r.durNS,
		})
	}
	return out
}
