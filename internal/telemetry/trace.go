package telemetry

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"
)

// Event types. Deterministic events depend only on the run's seed and
// configuration; timing events carry wall-clock measurements and are
// excluded from trace diffs (see Diff).
const (
	// EventRun opens a trace with the run's configuration.
	EventRun = "run"
	// EventDecision records one edge's complete sampling decision at one
	// step: estimates in, probabilities out, every coin draw, and the
	// resulting sampled/dropped device sets. Deterministic.
	EventDecision = "decision"
	// EventPhase records one phase's duration within a step. Timing-only,
	// nondeterministic.
	EventPhase = "phase"
	// EventEval records one global-model evaluation. Deterministic.
	EventEval = "eval"
	// EventEstimator records the experience estimator's exploration state
	// at a cloud round. Deterministic.
	EventEstimator = "estimator"
	// EventDone closes a trace with the run's outcome. Deterministic.
	EventDone = "done"
)

// Event is one JSONL trace record. Type selects which payload pointer is
// set; the others are omitted from the encoding.
type Event struct {
	Type      string          `json:"type"`
	Step      int             `json:"step"`
	Run       *RunEvent       `json:"run,omitempty"`
	Decision  *DecisionEvent  `json:"decision,omitempty"`
	Phase     *PhaseEvent     `json:"phase,omitempty"`
	Eval      *EvalEvent      `json:"eval,omitempty"`
	Estimator *EstimatorEvent `json:"estimator,omitempty"`
	Done      *DoneEvent      `json:"done,omitempty"`
}

// RunEvent is the trace header: enough configuration to interpret every
// later event without the run's config files.
type RunEvent struct {
	Strategy string  `json:"strategy"`
	Seed     int64   `json:"seed"`
	Devices  int     `json:"devices"`
	Edges    int     `json:"edges"`
	Steps    int     `json:"steps"`
	Capacity float64 `json:"capacity"`
	// Every/MaxEdges record the trace's own sampling-rate control so a
	// reader knows which decisions are absent by design.
	Every    int `json:"every"`
	MaxEdges int `json:"max_edges,omitempty"`
}

// DecisionEvent reconstructs one edge's sampling decision completely: for
// member Members[i], Estimates[i] (when the strategy exposes them) fed the
// probability Probs[i], and the Bernoulli coin Coins[i] sampled the device
// iff Coins[i] < Probs[i]. Sampled lists the drawn device ids in member
// order; Dropped the subset whose upload-failure coin discarded the
// result after training.
type DecisionEvent struct {
	Edge      int       `json:"edge"`
	Members   []int     `json:"members"`
	Estimates []float64 `json:"estimates,omitempty"`
	Probs     []float64 `json:"probs"`
	Coins     []float64 `json:"coins"`
	Sampled   []int     `json:"sampled"`
	Dropped   []int     `json:"dropped,omitempty"`
}

// PhaseEvent is one phase's wall-clock duration within a step. Shard
// identifies which control-plane shard ran the phase (0 for the engine-side
// eval phase and for single-shard runs).
type PhaseEvent struct {
	Name  string `json:"name"` // decide | train | finalize | eval
	NS    int64  `json:"ns"`
	Shard int    `json:"shard,omitempty"`
}

// EvalEvent is one global-model evaluation.
type EvalEvent struct {
	Accuracy float64 `json:"accuracy"`
	Loss     float64 `json:"loss"`
}

// EstimatorEvent summarizes the experience estimator's exploration state
// (emitted at cloud rounds): how many devices were never pulled, and how
// concentrated the pull counts are.
type EstimatorEvent struct {
	Devices     int `json:"devices"`
	NeverPulled int `json:"never_pulled"`
	TotalPulls  int `json:"total_pulls"`
	MaxPulls    int `json:"max_pulls"`
}

// DoneEvent closes the trace.
type DoneEvent struct {
	StepsRun      int     `json:"steps_run"`
	TotalSampled  int     `json:"total_sampled"`
	FinalAccuracy float64 `json:"final_accuracy"`
}

// TraceConfig bounds what a trace records, so traces of 100k-device runs
// stay manageable. Both controls are pure functions of (step, edge) — no
// randomness, no time — so identically-seeded runs record identical event
// sets.
type TraceConfig struct {
	// Every records decision and phase events only on steps divisible by
	// Every (0 or 1 = every step). Run, eval, estimator and done events are
	// sparse and always recorded.
	Every int
	// MaxEdges records decision events only for edges with index below
	// MaxEdges (0 = all edges).
	MaxEdges int
}

// Trace is a JSONL event sink. Emission is serialized by an internal
// mutex; the engine emits decision events from its sequential finalize
// phase in edge order, so event order is deterministic (DESIGN.md §8).
// All methods are safe on a nil receiver, which means "tracing disabled".
//
// Events are encoded by the pooled append encoder (encode.go), which
// reuses one scratch buffer under the emission mutex and writes bytes
// identical to encoding/json's output — the committed golden traces and
// the machtrace reader see no difference, but the steady-state trace path
// stops allocating per event.
type Trace struct {
	cfg    TraceConfig
	events atomic.Int64

	mu   sync.Mutex
	bw   *bufio.Writer
	buf  []byte
	memo *floatMemo // lazily allocated: formatted-float cache for decision events
	err  error
}

// NewTrace returns a trace writing JSONL events to w.
func NewTrace(w io.Writer, cfg TraceConfig) *Trace {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Trace{cfg: cfg, bw: bw, buf: make([]byte, 0, 4096)}
}

// Config returns the trace's sampling-rate control.
func (tr *Trace) Config() TraceConfig {
	if tr == nil {
		return TraceConfig{}
	}
	return tr.cfg
}

// StepActive reports whether per-step events (phases) are recorded at this
// step.
func (tr *Trace) StepActive(step int) bool {
	if tr == nil {
		return false
	}
	return tr.cfg.Every <= 1 || step%tr.cfg.Every == 0
}

// DecisionActive reports whether the edge's sampling decision is recorded
// at this step. It is deterministic, so the decide phase (which buffers
// coins) and the finalize phase (which emits) agree without shared state.
func (tr *Trace) DecisionActive(step, edge int) bool {
	if !tr.StepActive(step) {
		return false
	}
	return tr.cfg.MaxEdges <= 0 || edge < tr.cfg.MaxEdges
}

// Emit writes one event. The first write error is retained and surfaced by
// Close; later emissions become no-ops, so instrumented hot loops need no
// per-event error handling.
func (tr *Trace) Emit(ev *Event) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.err != nil {
		return
	}
	if ev.Decision != nil && tr.memo == nil {
		// First decision event: from here the float memo pays for itself
		// (estimates repeat across steps). Metric-only traces never allocate it.
		tr.memo = new(floatMemo)
	}
	b, err := appendEvent(tr.buf[:0], ev, tr.memo)
	if err != nil {
		tr.err = err
		return
	}
	b = append(b, '\n')
	tr.buf = b[:0] // keep the grown capacity for the next event
	if _, err := tr.bw.Write(b); err != nil {
		tr.err = err
		return
	}
	tr.events.Add(1)
}

// Events returns how many events have been written.
func (tr *Trace) Events() int64 {
	if tr == nil {
		return 0
	}
	return tr.events.Load()
}

// Close flushes the trace and returns the first error encountered over its
// lifetime. It does not close the underlying writer.
func (tr *Trace) Close() error {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if err := tr.bw.Flush(); err != nil && tr.err == nil {
		tr.err = err
	}
	return tr.err
}
