package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file is the analysis half of the trace format: cmd/machtrace is a
// thin CLI over ReadEvents, Summarize, Why and Diff, which live here so
// they are testable without a process boundary.

// ReadEvents decodes a JSONL trace stream.
func ReadEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: trace event %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

// PhaseSummary aggregates one phase's timing events.
type PhaseSummary struct {
	Name    string
	Count   int
	TotalNS int64
}

// MassPoint is one step's probability-mass aggregate over the recorded
// decision events: Mass = Σ q (the expected sampled count, Eq. 3),
// Members and Sampled the realized totals.
type MassPoint struct {
	Step    int
	Mass    float64
	Members int
	Sampled int
}

// EvalPoint is one recorded evaluation.
type EvalPoint struct {
	Step     int
	Accuracy float64
	Loss     float64
}

// EstimatorPoint is one recorded estimator snapshot.
type EstimatorPoint struct {
	Step int
	EstimatorEvent
}

// Summary is the digest of one trace.
type Summary struct {
	Run        *RunEvent
	Done       *DoneEvent
	Events     int
	Steps      int // steps with at least one recorded decision
	Decisions  int
	Phases     []PhaseSummary // ordered by first appearance
	Evals      []EvalPoint
	Estimators []EstimatorPoint
	Mass       []MassPoint // ordered by step
}

// Summarize digests a trace: per-phase time totals, the evaluation curve,
// exploration health over cloud rounds, and the probability-mass drift
// across steps.
func Summarize(events []Event) *Summary {
	s := &Summary{Events: len(events)}
	phaseIdx := map[string]int{}
	massIdx := map[int]int{}
	for i := range events {
		ev := &events[i]
		switch ev.Type {
		case EventRun:
			if s.Run == nil {
				s.Run = ev.Run
			}
		case EventDone:
			s.Done = ev.Done
		case EventPhase:
			if ev.Phase == nil {
				continue
			}
			j, ok := phaseIdx[ev.Phase.Name]
			if !ok {
				j = len(s.Phases)
				phaseIdx[ev.Phase.Name] = j
				s.Phases = append(s.Phases, PhaseSummary{Name: ev.Phase.Name})
			}
			s.Phases[j].Count++
			s.Phases[j].TotalNS += ev.Phase.NS
		case EventEval:
			if ev.Eval != nil {
				s.Evals = append(s.Evals, EvalPoint{Step: ev.Step, Accuracy: ev.Eval.Accuracy, Loss: ev.Eval.Loss})
			}
		case EventEstimator:
			if ev.Estimator != nil {
				s.Estimators = append(s.Estimators, EstimatorPoint{Step: ev.Step, EstimatorEvent: *ev.Estimator})
			}
		case EventDecision:
			d := ev.Decision
			if d == nil {
				continue
			}
			s.Decisions++
			j, ok := massIdx[ev.Step]
			if !ok {
				j = len(s.Mass)
				massIdx[ev.Step] = j
				s.Mass = append(s.Mass, MassPoint{Step: ev.Step})
				s.Steps++
			}
			mp := &s.Mass[j]
			for _, q := range d.Probs {
				mp.Mass += q
			}
			mp.Members += len(d.Members)
			mp.Sampled += len(d.Sampled)
		}
	}
	sort.Slice(s.Mass, func(i, j int) bool { return s.Mass[i].Step < s.Mass[j].Step })
	return s
}

// Write renders the summary as a text report.
func (s *Summary) Write(w io.Writer) error {
	if s.Run != nil {
		fmt.Fprintf(w, "run: strategy=%s seed=%d devices=%d edges=%d steps=%d capacity=%.3f (trace every=%d max-edges=%d)\n",
			s.Run.Strategy, s.Run.Seed, s.Run.Devices, s.Run.Edges, s.Run.Steps, s.Run.Capacity, s.Run.Every, s.Run.MaxEdges)
	}
	fmt.Fprintf(w, "events: %d total, %d decisions over %d recorded steps\n", s.Events, s.Decisions, s.Steps)

	if len(s.Phases) > 0 {
		total := int64(0)
		for _, p := range s.Phases {
			total += p.TotalNS
		}
		fmt.Fprintf(w, "\nphase breakdown:\n")
		for _, p := range s.Phases {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(p.TotalNS) / float64(total)
			}
			mean := int64(0)
			if p.Count > 0 {
				mean = p.TotalNS / int64(p.Count)
			}
			fmt.Fprintf(w, "  %-10s %12d ns total  %10d ns/step  %5.1f%%\n", p.Name, p.TotalNS, mean, pct)
		}
	}

	if len(s.Estimators) > 0 {
		fmt.Fprintf(w, "\nexploration health (cloud rounds):\n")
		for _, e := range s.Estimators {
			frac := 0.0
			if e.Devices > 0 {
				frac = 100 * float64(e.NeverPulled) / float64(e.Devices)
			}
			fmt.Fprintf(w, "  step %4d: never-pulled %d/%d (%.1f%%), total pulls %d, max pulls %d\n",
				e.Step, e.NeverPulled, e.Devices, frac, e.TotalPulls, e.MaxPulls)
		}
	}

	if len(s.Mass) > 0 {
		first, last := s.Mass[0], s.Mass[len(s.Mass)-1]
		min, max := first, first
		for _, m := range s.Mass {
			if m.Mass < min.Mass {
				min = m
			}
			if m.Mass > max.Mass {
				max = m
			}
		}
		fmt.Fprintf(w, "\nprobability mass (Σq per recorded step):\n")
		fmt.Fprintf(w, "  first step %4d: mass %.3f over %d members (%d sampled)\n", first.Step, first.Mass, first.Members, first.Sampled)
		fmt.Fprintf(w, "  last  step %4d: mass %.3f over %d members (%d sampled)\n", last.Step, last.Mass, last.Members, last.Sampled)
		fmt.Fprintf(w, "  min %.3f at step %d, max %.3f at step %d, drift %+.3f\n",
			min.Mass, min.Step, max.Mass, max.Step, last.Mass-first.Mass)
	}

	if len(s.Evals) > 0 {
		last := s.Evals[len(s.Evals)-1]
		fmt.Fprintf(w, "\nevaluations: %d, last at step %d: accuracy %.4f, loss %.4f\n",
			len(s.Evals), last.Step, last.Accuracy, last.Loss)
	}
	if s.Done != nil {
		fmt.Fprintf(w, "done: %d steps, %d participations, final accuracy %.4f\n",
			s.Done.StepsRun, s.Done.TotalSampled, s.Done.FinalAccuracy)
	}
	return nil
}

// WhyReport reconstructs one device's sampling decision from a trace.
type WhyReport struct {
	Device int
	Step   int
	Edge   int

	Members     int
	HasEstimate bool
	Estimate    float64
	Prob        float64
	Coin        float64
	Sampled     bool
	Dropped     bool

	// EdgeMass and EdgeMeanProb contextualize the device's probability
	// within its edge's decision.
	EdgeMass     float64
	EdgeMeanProb float64
	Capacity     float64
	HasCapacity  bool
}

// Why locates the decision event covering (device, step) and reconstructs
// the device's fate: the estimate that fed its probability, the coin that
// decided it, and whether a sampled result survived the upload.
func Why(events []Event, device, step int) (*WhyReport, error) {
	var run *RunEvent
	for i := range events {
		ev := &events[i]
		if ev.Type == EventRun && run == nil {
			run = ev.Run
		}
		if ev.Type != EventDecision || ev.Step != step || ev.Decision == nil {
			continue
		}
		d := ev.Decision
		for i, m := range d.Members {
			if m != device {
				continue
			}
			r := &WhyReport{
				Device:  device,
				Step:    step,
				Edge:    d.Edge,
				Members: len(d.Members),
			}
			if i < len(d.Probs) {
				r.Prob = d.Probs[i]
			}
			if i < len(d.Coins) {
				r.Coin = d.Coins[i]
			}
			if len(d.Estimates) == len(d.Members) {
				r.HasEstimate = true
				r.Estimate = d.Estimates[i]
			}
			r.Sampled = r.Coin < r.Prob
			for _, m := range d.Dropped {
				if m == device {
					r.Dropped = true
				}
			}
			for _, q := range d.Probs {
				r.EdgeMass += q
			}
			if len(d.Probs) > 0 {
				r.EdgeMeanProb = r.EdgeMass / float64(len(d.Probs))
			}
			if run != nil {
				r.Capacity = run.Capacity
				r.HasCapacity = true
			}
			return r, nil
		}
	}
	return nil, fmt.Errorf("telemetry: no recorded decision covers device %d at step %d (trace may subsample steps/edges)", device, step)
}

// Write renders the report as prose.
func (r *WhyReport) Write(w io.Writer) error {
	fmt.Fprintf(w, "device %d at step %d — edge %d (%d members", r.Device, r.Step, r.Edge, r.Members)
	if r.HasCapacity {
		fmt.Fprintf(w, ", capacity %.3f", r.Capacity)
	}
	fmt.Fprintf(w, ")\n")
	if r.HasEstimate {
		fmt.Fprintf(w, "  estimate   %.6g (UCB gradient-norm estimate fed to edge sampling)\n", r.Estimate)
	} else {
		fmt.Fprintf(w, "  estimate   (not recorded: strategy exposes no per-member estimates)\n")
	}
	fmt.Fprintf(w, "  probability %.6f (edge mean %.6f, edge mass %.3f)\n", r.Prob, r.EdgeMeanProb, r.EdgeMass)
	verdict := "NOT SAMPLED"
	if r.Sampled {
		verdict = "SAMPLED"
	}
	fmt.Fprintf(w, "  coin        %.6f %s q  →  %s\n", r.Coin, ltOrGe(r.Coin < r.Prob), verdict)
	if r.Sampled {
		if r.Dropped {
			fmt.Fprintf(w, "  upload      DROPPED (upload-failure coin: trained, but the result never reached the edge)\n")
		} else {
			fmt.Fprintf(w, "  upload      delivered\n")
		}
	}
	return nil
}

func ltOrGe(lt bool) string {
	if lt {
		return "<"
	}
	return "≥"
}

// Divergence is one mismatch between two traces.
type Divergence struct {
	Index int // index within the deterministic-event sequence
	Step  int
	Type  string
	A, B  string // JSON of the mismatching events ("" = missing)
}

// Diff compares the deterministic events of two traces in order. Phase
// events carry wall-clock timings and are skipped; everything else — run
// header, every recorded decision (estimates, probabilities, coins),
// evaluations, estimator snapshots, done — must match exactly between
// identically-seeded runs. It returns nil when the traces agree.
func Diff(a, b []Event) []Divergence {
	da, db := deterministic(a), deterministic(b)
	var out []Divergence
	n := len(da)
	if len(db) > n {
		n = len(db)
	}
	for i := 0; i < n; i++ {
		var ja, jb []byte
		var step int
		var typ string
		if i < len(da) {
			ja, _ = json.Marshal(da[i]) //machlint:allow errdrop Event marshals cannot fail: plain structs of ints, floats and slices
			step, typ = da[i].Step, da[i].Type
		}
		if i < len(db) {
			jb, _ = json.Marshal(db[i]) //machlint:allow errdrop Event marshals cannot fail: plain structs of ints, floats and slices
			if typ == "" {
				step, typ = db[i].Step, db[i].Type
			}
		}
		if bytes.Equal(ja, jb) {
			continue
		}
		out = append(out, Divergence{Index: i, Step: step, Type: typ, A: string(ja), B: string(jb)})
	}
	return out
}

// deterministic filters a trace down to its seed-reproducible events.
func deterministic(events []Event) []*Event {
	out := make([]*Event, 0, len(events))
	for i := range events {
		if events[i].Type == EventPhase {
			continue
		}
		out = append(out, &events[i])
	}
	return out
}
