package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"testing"
)

// TestHistPercentileEdgeCases pins the quantile semantics of the
// log-linear histogram: empty, single observation, exact-bucket values,
// bucket-boundary values, and the saturating top bucket.
func TestHistPercentileEdgeCases(t *testing.T) {
	quantiles := func(h *histogram) (p50, p90, p99, p999 int64) {
		hs := snapshotHist(h)
		return hs.P50, hs.P90, hs.P99, hs.P999
	}

	t.Run("empty", func(t *testing.T) {
		var h histogram
		p50, p90, p99, p999 := quantiles(&h)
		if p50 != 0 || p90 != 0 || p99 != 0 || p999 != 0 {
			t.Fatalf("empty histogram quantiles = %d/%d/%d/%d, want all 0", p50, p90, p99, p999)
		}
	})

	t.Run("single observation", func(t *testing.T) {
		var h histogram
		h.observe(17) // exact unit bucket: every quantile is the value itself
		p50, p90, p99, p999 := quantiles(&h)
		if p50 != 17 || p90 != 17 || p99 != 17 || p999 != 17 {
			t.Fatalf("single-observation quantiles = %d/%d/%d/%d, want all 17", p50, p90, p99, p999)
		}
	})

	t.Run("uniform 1..1000 within bucket resolution", func(t *testing.T) {
		var h histogram
		for v := int64(1); v <= 1000; v++ {
			h.observe(v)
		}
		p50, p90, p99, p999 := quantiles(&h)
		check := func(name string, got, want int64) {
			// Bucket resolution is 1/16 of an octave: 6.25% plus rounding up.
			if got < want || float64(got) > float64(want)*1.07 {
				t.Fatalf("%s = %d, want within [%d, %d·1.07]", name, got, want, want)
			}
		}
		check("p50", p50, 500)
		check("p90", p90, 900)
		check("p99", p99, 990)
		check("p999", p999, 999)
	})

	t.Run("bucket boundaries", func(t *testing.T) {
		// 31 is the last exact bucket; 32 opens the first sub-bucketed
		// octave; 2^k and 2^k-1 must land in different buckets.
		cases := []struct {
			v      int64
			lo, hi int64
		}{
			{0, 0, 0},
			{1, 1, 1},
			{31, 31, 31},
			{32, 32, 33},
			{63, 62, 63},
			{64, 64, 67},
			{1 << 20, 1 << 20, 1<<20 + (1<<16 - 1)},
		}
		for _, c := range cases {
			idx := histBucketIndex(c.v)
			lo, hi := histBucketBounds(idx)
			if lo != c.lo || hi != c.hi {
				t.Fatalf("bounds(bucket(%d)) = [%d,%d], want [%d,%d]", c.v, lo, hi, c.lo, c.hi)
			}
			if c.v < lo || c.v > hi {
				t.Fatalf("value %d outside its own bucket [%d,%d]", c.v, lo, hi)
			}
		}
	})

	t.Run("overflow saturates top bucket", func(t *testing.T) {
		var h histogram
		h.observe(math.MaxInt64)
		h.observe(math.MaxInt64 - 1)
		idx := histBucketIndex(math.MaxInt64)
		if idx != histBuckets-1 {
			t.Fatalf("bucket(MaxInt64) = %d, want top bucket %d", idx, histBuckets-1)
		}
		_, hi := histBucketBounds(idx)
		if hi != math.MaxInt64 {
			t.Fatalf("top bucket hi = %d, want MaxInt64", hi)
		}
		p50, _, _, p999 := quantiles(&h)
		if p50 <= 0 || p999 != math.MaxInt64 {
			t.Fatalf("saturated quantiles p50=%d p999=%d; p999 must clamp to MaxInt64 without overflow", p50, p999)
		}
	})
}

// TestHistBucketRoundTrip sweeps value magnitudes and checks that every
// value lands inside the bounds its bucket reports — the invariant the
// quantile interpolation rests on.
func TestHistBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		v := int64(1) << uint(rng.Intn(62))
		v += rng.Int63n(v + 1)
		idx := histBucketIndex(v)
		lo, hi := histBucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d in bucket %d with bounds [%d,%d]", v, idx, lo, hi)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucket index %d out of range for %d", idx, v)
		}
	}
}

// TestAppendEventMatchesEncodingJSON pins the pooled trace encoder to
// encoding/json byte for byte — the property that keeps committed golden
// traces valid across the encoder swap. It covers every event type,
// omitempty fields present and absent, nil vs empty slices, float
// exponent-format branches, and string escaping (quotes, control chars,
// HTML characters, invalid UTF-8, U+2028/U+2029).
func TestAppendEventMatchesEncodingJSON(t *testing.T) {
	events := []*Event{
		{Type: EventRun, Step: 0, Run: &RunEvent{Strategy: "mach", Seed: 21, Devices: 12, Edges: 3, Steps: 12, Capacity: 0.3, Every: 1}},
		{Type: EventRun, Step: 0, Run: &RunEvent{Strategy: `we<i&rd">`, Seed: -9, Devices: 1, Edges: 1, Steps: 1, Capacity: 1e-9, Every: 2, MaxEdges: 4}},
		{Type: EventRun, Step: 0, Run: &RunEvent{Strategy: "tab\tnl\nctl\x01\u2028\u2029bad\xff", Capacity: 12345678901234567890123.0, Every: 1}},
		{Type: EventDecision, Step: 3, Decision: &DecisionEvent{
			Edge:      2,
			Members:   []int{5, 9, 11},
			Estimates: []float64{0.5, 0.25, 1e-7},
			Probs:     []float64{0.1, 0.9999999999999999, 1},
			Coins:     []float64{0.6046602879796196, 0.9405090880450124, 0.6645600532184904},
			Sampled:   []int{9},
			Dropped:   []int{11},
		}},
		{Type: EventDecision, Step: 4, Decision: &DecisionEvent{
			Edge:    0,
			Members: []int{},
			Probs:   []float64{},
			Coins:   nil, // nil non-omitempty slice encodes as null
			Sampled: []int{},
		}},
		{Type: EventPhase, Step: 5, Phase: &PhaseEvent{Name: "decide", NS: 12345}},
		{Type: EventPhase, Step: 5, Phase: &PhaseEvent{Name: "train", NS: 0, Shard: 2}},
		{Type: EventEval, Step: 6, Eval: &EvalEvent{Accuracy: 0.9125, Loss: 0.287349587}},
		{Type: EventEval, Step: 7, Eval: &EvalEvent{Accuracy: 0, Loss: 1e21}},
		{Type: EventEstimator, Step: 8, Estimator: &EstimatorEvent{Devices: 100, NeverPulled: 3, TotalPulls: 970, MaxPulls: 40}},
		{Type: EventDone, Step: 9, Done: &DoneEvent{StepsRun: 12, TotalSampled: 120, FinalAccuracy: 0.75}},
	}
	// Fuzz the float paths with seeded values across magnitudes.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		scale := math.Pow(10, float64(rng.Intn(50)-25))
		events = append(events, &Event{Type: EventDecision, Step: i, Decision: &DecisionEvent{
			Edge:    i,
			Members: []int{i},
			Probs:   []float64{rng.Float64() * scale},
			Coins:   []float64{rng.NormFloat64() * scale},
			Sampled: []int{},
		}})
	}

	// Pass 1 with no memo, pass 2 and 3 sharing one memo, so repeated values
	// take the cache-hit path: the memo must replay identical bytes.
	var buf []byte
	memo := new(floatMemo)
	for pass, m := range []*floatMemo{nil, memo, memo} {
		for i, ev := range events {
			want, err := json.Marshal(ev)
			if err != nil {
				t.Fatalf("event %d: json.Marshal: %v", i, err)
			}
			buf, err = appendEvent(buf[:0], ev, m)
			if err != nil {
				t.Fatalf("pass %d event %d: appendEvent: %v", pass, i, err)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("pass %d event %d: encoder mismatch\n got: %s\nwant: %s", pass, i, buf, want)
			}
		}
	}

	// NaN/Inf must be rejected like encoding/json rejects them.
	bad := &Event{Type: EventEval, Step: 1, Eval: &EvalEvent{Accuracy: math.NaN()}}
	if _, err := appendEvent(buf[:0], bad, nil); err == nil {
		t.Fatal("appendEvent accepted NaN; encoding/json would have errored")
	}
}

// TestTraceEmitZeroAllocSteadyState verifies the satellite's allocation
// goal: once the scratch buffer has grown, emitting a decision event does
// not allocate.
func TestTraceEmitZeroAllocSteadyState(t *testing.T) {
	tr := NewTrace(io.Discard, TraceConfig{})
	ev := &Event{Type: EventDecision, Step: 1, Decision: &DecisionEvent{
		Edge:    1,
		Members: []int{1, 2, 3, 4},
		Probs:   []float64{0.25, 0.5, 0.75, 1},
		Coins:   []float64{0.1, 0.2, 0.3, 0.4},
		Sampled: []int{2, 3},
	}}
	tr.Emit(ev) // warm the buffer
	if allocs := testing.AllocsPerRun(100, func() { tr.Emit(ev) }); allocs > 0 {
		t.Fatalf("Trace.Emit steady state allocates %.1f times per event, want 0", allocs)
	}
}

// TestSpanRecording covers the span subsystem: deterministic IDs, ring
// contents, per-kind latency histograms in the snapshot, and parent
// propagation.
func TestSpanRecording(t *testing.T) {
	clock := int64(1000)
	tel := NewWithClock(func() int64 { clock += 10; return clock })
	if tel.SpansEnabled() {
		t.Fatal("spans enabled before EnableSpans")
	}
	tel.EnableSpans(true)
	if !tel.SpansEnabled() {
		t.Fatal("spans not enabled after EnableSpans(true)")
	}

	root := tel.StartSpan(SpanStep, 0, 7, -1, -1)
	if root.ID() != DeriveSpanID(SpanStep, 7, -1, -1) {
		t.Fatalf("span ID %d != DeriveSpanID %d", root.ID(), DeriveSpanID(SpanStep, 7, -1, -1))
	}
	child := tel.StartSpan(SpanRPCEdgeStep, root.ID(), 7, 2, -1)
	child.End()
	root.End()
	tel.RecordSpan(SpanEval, root.ID(), 7, -1, -1, 100, 250)

	spans := tel.Spans()
	if len(spans) != 3 {
		t.Fatalf("Spans() returned %d records, want 3", len(spans))
	}
	if spans[0].Kind != "rpc_edge_step" || spans[0].Parent != uint64(root.ID()) {
		t.Fatalf("child span = %+v, want kind rpc_edge_step with parent %d", spans[0], root.ID())
	}
	if spans[2].Kind != "eval" || spans[2].DurNS != 150 {
		t.Fatalf("recorded span = %+v, want eval with dur 150", spans[2])
	}

	s := tel.Snapshot()
	if hs, ok := s.Histograms["span_eval_ns"]; !ok || hs.Count != 1 || hs.Sum != 150 {
		t.Fatalf("span_eval_ns = %+v (present=%v), want count 1 sum 150", s.Histograms["span_eval_ns"], ok)
	}
	if _, ok := s.Histograms["span_train_ns"]; ok {
		t.Fatal("unobserved span kind leaked an empty histogram into the snapshot")
	}

	// Same dimensions, same ID — across sinks and processes.
	if DeriveSpanID(SpanRPCEdgeStep, 7, 2, -1) != child.ID() {
		t.Fatal("DeriveSpanID is not a pure function of its inputs")
	}

	tel.EnableSpans(false)
	if got := tel.Spans(); got != nil {
		t.Fatalf("Spans() after disable = %v, want nil", got)
	}
}

// TestSpanDisabledZeroAlloc extends the nil-sink contract to spans: with
// spans off (nil sink or enabled sink without EnableSpans), StartSpan/End/
// RecordSpan allocate nothing and never read the clock.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	var nilTel *Telemetry
	clockReads := 0
	tel := NewWithClock(func() int64 { clockReads++; return int64(clockReads) })

	allocs := testing.AllocsPerRun(1000, func() {
		sp := nilTel.StartSpan(SpanStep, 0, 1, 2, 3)
		sp.End()
		nilTel.RecordSpan(SpanEval, 0, 1, 2, 3, 0, 10)

		sp2 := tel.StartSpan(SpanStep, 0, 1, 2, 3)
		sp2.End()
		tel.RecordSpan(SpanEval, 0, 1, 2, 3, 0, 10)
	})
	if allocs > 0 {
		t.Fatalf("disabled span path allocates %.1f times per op, want 0", allocs)
	}
	if clockReads != 0 {
		t.Fatalf("disabled span path read the clock %d times, want 0", clockReads)
	}
}

// TestWritePrometheus checks the exposition format: family heads, counter
// and gauge samples, summary quantiles, shard labels, and determinism.
func TestWritePrometheus(t *testing.T) {
	tel := NewWithClock(func() int64 { return 0 })
	tel.Add(CounterSteps, 9)
	tel.SetGauge(GaugeAccuracy, 0.875)
	tel.Observe(HistStepNS, 100)
	tel.Observe(HistStepNS, 200)
	tel.SetShardCount(2)
	tel.ObserveShardPhase(1, ShardPhaseDecide, 50)
	tel.SetShardQueueDepth(1, 4)

	var a, b bytes.Buffer
	if err := WritePrometheus(&a, tel.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, tel.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WritePrometheus output is not deterministic across identical snapshots")
	}
	out := a.String()
	wants := []string{
		"# TYPE mach_steps counter\nmach_steps 9\n",
		"# TYPE mach_accuracy gauge\nmach_accuracy 0.875\n",
		"# TYPE mach_step_ns summary\n",
		`mach_step_ns{quantile="0.99"}`,
		"mach_step_ns_sum 300\n",
		"mach_step_ns_count 2\n",
		`mach_shard_phase_ns{shard="1",phase="decide",quantile="0.5"}`,
		`mach_shard_phase_ns_count{shard="1",phase="decide"} 1`,
		`mach_shard_queue_depth{shard="1"} 4`,
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
	}
}

// TestSnapshotDiffGolden pins the full text output of WriteSnapshotDiff —
// the surface `machtop diff` prints — for a crafted pair of snapshots with
// a latency regression, a byte-count regression, an accuracy drop, an
// improvement, and an unchanged metric.
func TestSnapshotDiffGolden(t *testing.T) {
	oldS := &Snapshot{
		Counters: map[string]int64{"steps": 30, "cloud_bytes": 1000000},
		Gauges:   map[string]float64{"accuracy": 0.90, "loss": 0.40},
		Histograms: map[string]HistSnapshot{
			"step_ns": {Count: 30, Sum: 3000, Mean: 100, P50: 90, P99: 200},
		},
	}
	newS := &Snapshot{
		Counters: map[string]int64{"steps": 30, "cloud_bytes": 1500000},
		Gauges:   map[string]float64{"accuracy": 0.72, "loss": 0.38},
		Histograms: map[string]HistSnapshot{
			"step_ns": {Count: 30, Sum: 9000, Mean: 300, P50: 280, P99: 500},
		},
	}

	deltas := DiffSnapshots(oldS, newS, DiffOptions{ThresholdPct: 10})
	if got := Regressions(deltas); got != 4 {
		t.Fatalf("Regressions = %d, want 4 (bytes, hist mean, hist p99, accuracy)", got)
	}

	var b bytes.Buffer
	if err := WriteSnapshotDiff(&b, deltas); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"metric                          old             new      delta",
		"counter/cloud_bytes         1000000         1500000     +50.0%  !! REGRESSION",
		"gauge/accuracy                  0.9            0.72     -20.0%  !! REGRESSION",
		"gauge/loss                      0.4            0.38      -5.0%",
		"hist/step_ns.mean               100             300    +200.0%  !! REGRESSION",
		"hist/step_ns.p99                200             500    +150.0%  !! REGRESSION",
		"5 metric(s) changed, 4 regression(s)",
		"",
	}, "\n")
	if b.String() != want {
		t.Fatalf("snapshot diff output mismatch\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestHealthAndBuildEndpoints exercises the new debug-server surface:
// /metrics well-formedness, /healthz always-ok, /readyz flipping with
// SetReady, /debug/buildinfo, and /debug/spans.
func TestHealthAndBuildEndpoints(t *testing.T) {
	tel := New()
	tel.Add(CounterSteps, 3)
	tel.EnableSpans(true)
	sp := tel.StartSpan(SpanStep, 0, 1, -1, -1)
	sp.End()

	srv, err := StartDebugServer("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //machlint:allow errdrop test teardown; the listener dies with the process

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close() //machlint:allow errdrop test teardown; body already read
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get("/readyz"); code != 503 || body != "starting\n" {
		t.Fatalf("/readyz before SetReady = %d %q, want 503 starting", code, body)
	}
	srv.SetReady(true)
	if code, body := get("/readyz"); code != 200 || body != "ok\n" {
		t.Fatalf("/readyz after SetReady = %d %q, want 200 ok", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "mach_steps 3") {
		t.Fatalf("/metrics = %d, missing mach_steps 3:\n%s", code, body)
	}
	if code, body := get("/debug/buildinfo"); code != 200 || !strings.Contains(body, "github.com/mach-fl/mach") {
		t.Fatalf("/debug/buildinfo = %d, missing module path:\n%s", code, body)
	}
	if code, body := get("/debug/spans"); code != 200 || !strings.Contains(body, `"kind": "step"`) {
		t.Fatalf("/debug/spans = %d, missing step span:\n%s", code, body)
	}
	if v := BuildVersion(); v == "" {
		t.Fatal("BuildVersion returned empty string")
	}
}
