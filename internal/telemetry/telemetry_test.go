package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestNilTelemetryZeroAlloc is the disabled-mode contract: every hot-path
// method on a nil *Telemetry (and nil *Trace) must be allocation-free.
func TestNilTelemetryZeroAlloc(t *testing.T) {
	var tel *Telemetry
	allocs := testing.AllocsPerRun(1000, func() {
		start := tel.Now()
		tel.Add(CounterSteps, 1)
		tel.SetGauge(GaugeProbMass, 1.5)
		tel.Observe(HistEdgeMembers, 12)
		tel.ObserveSince(HistDecideNS, start)
		tr := tel.Trace()
		if tr.DecisionActive(3, 0) {
			t.Fatal("nil trace claims active decisions")
		}
		tr.Emit(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil telemetry hot path allocates %.1f per run, want 0", allocs)
	}
	if got := tel.Now(); got != 0 {
		t.Fatalf("nil telemetry Now() = %d, want 0 (no clock read)", got)
	}
}

// TestEnabledCountersZeroAlloc keeps the enabled metrics path (counters,
// gauges, histograms — not tracing) allocation-free too.
func TestEnabledCountersZeroAlloc(t *testing.T) {
	clock := int64(0)
	tel := NewWithClock(func() int64 { clock += 10; return clock })
	allocs := testing.AllocsPerRun(1000, func() {
		start := tel.Now()
		tel.Add(CounterDevicesTrained, 3)
		tel.SetGauge(GaugeAccuracy, 0.7)
		tel.Observe(HistEdgeSampled, 5)
		tel.ObserveSince(HistStepNS, start)
	})
	if allocs != 0 {
		t.Fatalf("enabled metrics path allocates %.1f per run, want 0", allocs)
	}
}

func TestCountersGaugesHistograms(t *testing.T) {
	clock := int64(100)
	tel := NewWithClock(func() int64 { return clock })
	tel.Add(CounterSteps, 2)
	tel.Add(CounterSteps, 1)
	tel.SetGauge(GaugeLoss, 2.25)
	tel.Observe(HistEdgeMembers, 0)
	tel.Observe(HistEdgeMembers, 1)
	tel.Observe(HistEdgeMembers, 5)
	tel.Observe(HistEdgeMembers, 8)

	if got := tel.Count(CounterSteps); got != 3 {
		t.Fatalf("CounterSteps = %d, want 3", got)
	}
	if got := tel.GaugeValue(GaugeLoss); got != 2.25 {
		t.Fatalf("GaugeLoss = %v, want 2.25", got)
	}
	s := tel.Snapshot()
	h := s.Histograms["edge_members"]
	if h.Count != 4 || h.Sum != 14 {
		t.Fatalf("edge_members count/sum = %d/%d, want 4/14", h.Count, h.Sum)
	}
	// Small values get exact unit buckets in the log-linear layout:
	// 0 → [0,0]; 1 → [1,1]; 5 → [5,5]; 8 → [8,8].
	want := []HistBucket{{0, 0, 1}, {1, 1, 1}, {5, 5, 1}, {8, 8, 1}}
	if len(h.Buckets) != len(want) {
		t.Fatalf("edge_members buckets = %+v, want %+v", h.Buckets, want)
	}
	for i, b := range want {
		if h.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, h.Buckets[i], b)
		}
	}
}

// TestShardMetrics covers the per-shard surface: SetShardCount sizes the
// slots, phase observations and queue depths land on the right shard,
// out-of-range writes are dropped, and the snapshot lists shards in order
// with one named section per phase.
func TestShardMetrics(t *testing.T) {
	tel := New()
	if got := tel.ShardCount(); got != 0 {
		t.Fatalf("ShardCount before SetShardCount = %d, want 0", got)
	}
	// Out-of-range and disabled writes must be silent no-ops.
	tel.ObserveShardPhase(0, ShardPhaseDecide, 5)
	tel.SetShardQueueDepth(0, 9)

	tel.SetShardCount(3)
	tel.ObserveShardPhase(0, ShardPhaseDecide, 10)
	tel.ObserveShardPhase(0, ShardPhaseDecide, 30)
	tel.ObserveShardPhase(2, ShardPhaseTrain, 100)
	tel.ObserveShardPhase(2, ShardPhaseFinalize, 7)
	tel.ObserveShardPhase(3, ShardPhaseDecide, 999) // out of range: dropped
	tel.ObserveShardPhase(-1, ShardPhaseDecide, 999)
	tel.SetShardQueueDepth(1, 4)
	tel.SetShardQueueDepth(1, 2) // gauge: last value wins
	tel.SetShardQueueDepth(3, 8) // out of range: dropped

	if got := tel.ShardCount(); got != 3 {
		t.Fatalf("ShardCount = %d, want 3", got)
	}
	if got := tel.ShardQueueDepth(1); got != 2 {
		t.Fatalf("ShardQueueDepth(1) = %d, want 2", got)
	}
	if got := tel.ShardQueueDepth(3); got != 0 {
		t.Fatalf("ShardQueueDepth(3) = %d, want 0 (out of range)", got)
	}

	s := tel.Snapshot()
	if len(s.Shards) != 3 {
		t.Fatalf("snapshot has %d shard sections, want 3", len(s.Shards))
	}
	for i, sh := range s.Shards {
		if sh.Shard != i {
			t.Fatalf("shard section %d labelled %d", i, sh.Shard)
		}
	}
	d0 := s.Shards[0].Phases["decide"]
	if d0.Count != 2 || d0.Sum != 40 {
		t.Fatalf("shard 0 decide count/sum = %d/%d, want 2/40", d0.Count, d0.Sum)
	}
	if tr := s.Shards[2].Phases["train"]; tr.Count != 1 || tr.Sum != 100 {
		t.Fatalf("shard 2 train count/sum = %d/%d, want 1/100", tr.Count, tr.Sum)
	}
	if fn := s.Shards[2].Phases["finalize"]; fn.Count != 1 || fn.Sum != 7 {
		t.Fatalf("shard 2 finalize count/sum = %d/%d, want 1/7", fn.Count, fn.Sum)
	}
	if d1 := s.Shards[1].Phases["decide"]; d1.Count != 0 {
		t.Fatalf("shard 1 decide count = %d, want 0", d1.Count)
	}
	if s.Shards[1].QueueDepth != 2 {
		t.Fatalf("shard 1 queue depth = %d, want 2", s.Shards[1].QueueDepth)
	}

	// Same-count SetShardCount keeps observations; a different count resets.
	tel.SetShardCount(3)
	if d0 := tel.Snapshot().Shards[0].Phases["decide"]; d0.Count != 2 {
		t.Fatalf("same-count resize dropped observations: count = %d", d0.Count)
	}
	tel.SetShardCount(2)
	s = tel.Snapshot()
	if len(s.Shards) != 2 {
		t.Fatalf("after resize snapshot has %d shard sections, want 2", len(s.Shards))
	}
	if d0 := s.Shards[0].Phases["decide"]; d0.Count != 0 {
		t.Fatalf("resize kept stale observations: count = %d", d0.Count)
	}
}

// TestShardMetricsZeroAlloc keeps the per-shard hot path (phase observe,
// queue-depth gauge) allocation-free, enabled and disabled alike.
func TestShardMetricsZeroAlloc(t *testing.T) {
	var nilTel *Telemetry
	tel := New()
	tel.SetShardCount(4)
	allocs := testing.AllocsPerRun(1000, func() {
		tel.ObserveShardPhase(2, ShardPhaseTrain, 50)
		tel.SetShardQueueDepth(2, 3)
		nilTel.ObserveShardPhase(0, ShardPhaseDecide, 1)
		nilTel.SetShardQueueDepth(0, 1)
	})
	if allocs != 0 {
		t.Fatalf("shard metrics hot path allocates %.1f per run, want 0", allocs)
	}
}

// TestSnapshotDeterministicJSON pins that two identical sinks marshal to
// identical bytes — map keys sort, so the snapshot is diffable.
func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() []byte {
		tel := NewWithClock(func() int64 { return 7 })
		tel.Add(CounterEvals, 4)
		tel.SetGauge(GaugeUCBMax, 3.5)
		tel.Observe(HistStepNS, 1000)
		var buf bytes.Buffer
		if err := tel.WriteSnapshot(&buf); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
		return buf.Bytes()
	}
	if a, b := build(), build(); !bytes.Equal(a, b) {
		t.Fatalf("snapshots of identical sinks differ:\n%s\nvs\n%s", a, b)
	}
}

func TestDebugServer(t *testing.T) {
	tel := New()
	tel.Add(CounterSteps, 9)
	srv, err := StartDebugServer("127.0.0.1:0", tel)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(body)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/debug/telemetry")), &snap); err != nil {
		t.Fatalf("decode /debug/telemetry: %v", err)
	}
	if snap.Counters["steps"] != 9 {
		t.Fatalf("/debug/telemetry steps = %d, want 9", snap.Counters["steps"])
	}
	if body := get("/debug/vars"); !strings.Contains(body, `"mach"`) {
		t.Fatalf("/debug/vars missing mach variable: %s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected: %.120s", body)
	}
}
