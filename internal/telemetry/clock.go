package telemetry

import "time"

// This file is the repo's single sanctioned wall-clock site. The machlint
// walltime analyzer forbids time.Now/Since/Until everywhere outside
// internal/telemetry, so every harness and CLI that measures elapsed time
// does it through WallNow/WallSince — one audited place instead of clock
// reads scattered through code that is supposed to be deterministic.

// processStart anchors the monotonic telemetry clock. time.Since on a
// time.Time taken from time.Now uses the runtime's monotonic reading, so
// monotonicNS never jumps with wall-clock adjustments.
var processStart = time.Now()

// monotonicNS is the default Telemetry clock: nanoseconds of monotonic
// time since process start.
func monotonicNS() int64 {
	return int64(time.Since(processStart))
}

// WallNow returns the current time, for benchmark harnesses and CLI
// status output. Simulation state must never depend on it.
func WallNow() time.Time { return time.Now() }

// WallSince returns the elapsed (monotonic) time since a WallNow reading.
func WallSince(t time.Time) time.Duration { return time.Since(t) }
