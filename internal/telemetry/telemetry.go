// Package telemetry is the repo's observability layer: process-wide
// counters, gauges and fixed-bucket histograms for the training engine's
// phases, a structured JSONL trace of every sampling decision, and the
// debug HTTP surface (expvar + pprof) that exposes them.
//
// The package is built so that *disabled* telemetry is free: every method
// on *Telemetry is safe on a nil receiver and returns immediately, so the
// engine threads a possibly-nil pointer through its hot paths without
// branching on a separate "enabled" flag. The nil fast path performs zero
// allocations (enforced by AllocsPerRun tests) and never reads the clock,
// keeping disabled runs deterministic and syscall-free. Enabled telemetry
// records only *observations* — timings, counts, summaries — never inputs
// to the simulation, so seeded runs stay bit-identical whether telemetry
// is on or off (DESIGN.md §8).
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter identifies one monotonically increasing metric.
type Counter int

// Counters of the training engine and the distributed stack.
const (
	// CounterSteps counts completed time steps.
	CounterSteps Counter = iota
	// CounterDevicesTrained counts device participations (local SGD runs).
	CounterDevicesTrained
	// CounterDevicesUploaded counts successful model uploads.
	CounterDevicesUploaded
	// CounterUploadsDropped counts sampled devices whose upload-failure
	// coin dropped their result.
	CounterUploadsDropped
	// CounterCloudRounds counts edge-to-cloud aggregations (Eq. 6).
	CounterCloudRounds
	// CounterEvals counts global-model evaluations.
	CounterEvals
	// CounterProbes counts oracle gradient-norm probes (MACH-P).
	CounterProbes
	// CounterProbFloorClamps counts sampling probabilities saturated at the
	// strategy's floor (q_min) by the capacity normalization of Eq. (18);
	// CounterProbCeilClamps counts saturations at 1. Together they expose
	// how hard the single-pass cap is clipping the transfer-function output.
	CounterProbFloorClamps
	CounterProbCeilClamps
	// CounterDeviceDownlinkBytes/CounterDeviceUplinkBytes/CounterCloudBytes
	// fold the engine's CommStats into the metrics surface.
	CounterDeviceDownlinkBytes
	CounterDeviceUplinkBytes
	CounterCloudBytes
	// CounterRPCCalls counts RPC handler invocations in the distributed
	// stack (internal/fed).
	CounterRPCCalls

	counterCount
)

// counterNames align with the Counter constants.
var counterNames = [counterCount]string{
	"steps",
	"devices_trained",
	"devices_uploaded",
	"uploads_dropped",
	"cloud_rounds",
	"evals",
	"probes",
	"prob_floor_clamps",
	"prob_ceil_clamps",
	"device_downlink_bytes",
	"device_uplink_bytes",
	"cloud_bytes",
	"rpc_calls",
}

// Gauge identifies one last-value metric.
type Gauge int

// Gauges of the training engine.
const (
	// GaugeUCBMin/Mean/Max summarize the per-member UCB estimates of the
	// most recent step, across all edges (Eq. 15).
	GaugeUCBMin Gauge = iota
	GaugeUCBMean
	GaugeUCBMax
	// GaugeProbMass is Σ q over all members of all edges in the most recent
	// step — the expected number of sampled devices (Eq. 3 sums to ≤ ΣK_n).
	GaugeProbMass
	// GaugeNeverPulled is the number of devices the experience estimator has
	// never observed; GaugeMaxPulls the most-pulled device's participation
	// count. Both refresh at cloud rounds.
	GaugeNeverPulled
	GaugeMaxPulls
	// GaugeAccuracy/GaugeLoss are the most recent evaluation results.
	GaugeAccuracy
	GaugeLoss
	// GaugeQueueDepth samples the worker pool's submission backlog during
	// the execution phase.
	GaugeQueueDepth

	gaugeCount
)

// gaugeNames align with the Gauge constants.
var gaugeNames = [gaugeCount]string{
	"ucb_min",
	"ucb_mean",
	"ucb_max",
	"prob_mass",
	"never_pulled",
	"max_pulls",
	"accuracy",
	"loss",
	"queue_depth",
}

// Hist identifies one fixed-bucket histogram.
type Hist int

// Histograms of the training engine. The *NS histograms record phase
// durations in nanoseconds; the Edge* histograms record per-edge per-step
// population counts.
const (
	HistDecideNS Hist = iota
	HistTrainNS
	HistAggregateNS
	HistEvalNS
	HistStepNS
	HistEdgeMembers
	HistEdgeSampled

	histCount
)

// histNames align with the Hist constants.
var histNames = [histCount]string{
	"decide_ns",
	"train_ns",
	"aggregate_ns",
	"eval_ns",
	"step_ns",
	"edge_members",
	"edge_sampled",
}

// Histogram buckets are HDR-style log-linear: bucket 0 holds values ≤ 0,
// values 1..histExactMax land in exact unit buckets, and every power-of-two
// octave above that splits into histSubCount linear sub-buckets, so an
// observation is never more than one part in histSubCount (6.25%) from its
// bucket bounds — tight enough to report p50/p90/p99/p999 from bucket
// counts alone. The layout covers the full int64 range with no
// configuration, and bucketing stays a bits.Len64 plus a shift — cheap
// enough for per-edge observations.
const (
	histSubBits  = 4                         // 16 linear sub-buckets per octave
	histSubCount = 1 << histSubBits          //
	histExactMax = 1<<(histSubBits+1) - 1    // values 1..31 bucket exactly
	histBuckets  = histExactMax + 1 + (63-(histSubBits+1))*histSubCount
)

// histBucketIndex maps an observation to its bucket. The top bucket ends at
// MaxInt64, so arbitrarily large observations saturate there instead of
// overflowing.
func histBucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	if v <= histExactMax {
		return int(v)
	}
	o := bits.Len64(uint64(v)) // ≥ histSubBits+2 here
	sub := int(uint64(v)>>(o-1-histSubBits)) & (histSubCount - 1)
	return histExactMax + 1 + (o-(histSubBits+2))*histSubCount + sub
}

// histBucketBounds is the inverse of histBucketIndex: the closed value
// range [lo, hi] that bucket idx covers.
func histBucketBounds(idx int) (lo, hi int64) {
	if idx <= 0 {
		return 0, 0
	}
	if idx <= histExactMax {
		return int64(idx), int64(idx)
	}
	k := idx - histExactMax - 1
	o := k/histSubCount + histSubBits + 2
	sub := k % histSubCount
	width := int64(1) << (o - 1 - histSubBits)
	lo = int64(1)<<(o-1) + int64(sub)*width
	return lo, lo + width - 1
}

// histogram is a log-linear-bucket histogram over non-negative int64
// observations. All fields are atomics, so concurrent observers (parallel
// decide, pool workers) need no lock.
type histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func (h *histogram) observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[histBucketIndex(v)].Add(1)
}

// ShardPhase identifies one phase of a control-plane shard's step: the
// shard-indexed analogue of the HistDecideNS/HistTrainNS/HistAggregateNS
// histograms, so per-shard imbalance is visible where the aggregate
// histograms would average it away.
type ShardPhase int

// Shard phases of one step.
const (
	ShardPhaseDecide ShardPhase = iota
	ShardPhaseTrain
	ShardPhaseFinalize

	shardPhaseCount
)

// shardPhaseNames align with the ShardPhase constants.
var shardPhaseNames = [shardPhaseCount]string{"decide", "train", "finalize"}

// shardMetrics is one shard's slot: per-phase duration histograms and the
// worker-pool backlog observed when the shard submitted its execution tasks.
type shardMetrics struct {
	phases     [shardPhaseCount]histogram
	queueDepth atomic.Int64
}

// Telemetry is the metrics sink. The zero value is not useful — construct
// with New — but a nil *Telemetry is: every method no-ops, allocation-free,
// so "telemetry disabled" is simply a nil pointer.
type Telemetry struct {
	clock    func() int64
	counters [counterCount]atomic.Int64
	gauges   [gaugeCount]atomic.Uint64 // float64 bits
	hists    [histCount]histogram
	shards   atomic.Pointer[[]shardMetrics]
	spans    atomic.Pointer[spanState]
	trace    atomic.Pointer[Trace]
}

// New returns an enabled telemetry sink using the process monotonic clock.
func New() *Telemetry {
	return &Telemetry{clock: monotonicNS}
}

// NewWithClock returns a sink whose Now reads from clock instead of the
// monotonic wall clock; tests use it to make timings deterministic.
func NewWithClock(clock func() int64) *Telemetry {
	return &Telemetry{clock: clock}
}

// SetTrace attaches a structured trace sink; nil detaches it. Safe to call
// concurrently with readers.
func (t *Telemetry) SetTrace(tr *Trace) {
	if t == nil {
		return
	}
	t.trace.Store(tr)
}

// Trace returns the attached trace sink, or nil when telemetry or tracing
// is disabled. The returned *Trace is itself nil-safe.
func (t *Telemetry) Trace() *Trace {
	if t == nil {
		return nil
	}
	return t.trace.Load()
}

// Now reads the telemetry clock in nanoseconds. Disabled telemetry returns
// 0 without touching any clock, so the disabled hot path stays
// syscall-free; callers pair Now with ObserveSince and both degrade to
// no-ops together.
//
//machlint:allocfree
func (t *Telemetry) Now() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Add increments a counter by delta.
//
//machlint:allocfree
func (t *Telemetry) Add(c Counter, delta int64) {
	if t == nil {
		return
	}
	t.counters[c].Add(delta)
}

// Count returns a counter's current value (0 when disabled).
func (t *Telemetry) Count(c Counter) int64 {
	if t == nil {
		return 0
	}
	return t.counters[c].Load()
}

// SetGauge records a gauge's latest value.
//
//machlint:allocfree
func (t *Telemetry) SetGauge(g Gauge, v float64) {
	if t == nil {
		return
	}
	t.gauges[g].Store(math.Float64bits(v))
}

// GaugeValue returns a gauge's latest value (0 when disabled).
func (t *Telemetry) GaugeValue(g Gauge) float64 {
	if t == nil {
		return 0
	}
	return math.Float64frombits(t.gauges[g].Load())
}

// Observe records one histogram observation.
//
//machlint:allocfree
func (t *Telemetry) Observe(h Hist, v int64) {
	if t == nil {
		return
	}
	t.hists[h].observe(v)
}

// ObserveSince records the nanoseconds elapsed since start (a value from
// Now) into a duration histogram. On a nil receiver both Now and
// ObserveSince are no-ops, so instrumented code needs no enabled check.
//
//machlint:allocfree
func (t *Telemetry) ObserveSince(h Hist, start int64) {
	if t == nil {
		return
	}
	t.hists[h].observe(t.clock() - start)
}

// SetShardCount sizes the per-shard metric slots. The engine calls it once
// per Run with the effective shard count; observations to out-of-range
// shards are dropped. Re-sizing to the current count keeps existing
// observations; any other count resets them (the slots are replaced).
func (t *Telemetry) SetShardCount(n int) {
	if t == nil || n < 0 {
		return
	}
	if cur := t.shards.Load(); cur != nil && len(*cur) == n {
		return
	}
	s := make([]shardMetrics, n)
	t.shards.Store(&s)
}

// ShardCount returns how many per-shard metric slots are configured.
func (t *Telemetry) ShardCount() int {
	if t == nil {
		return 0
	}
	s := t.shards.Load()
	if s == nil {
		return 0
	}
	return len(*s)
}

// ObserveShardPhase records one shard's phase duration in nanoseconds.
//
//machlint:allocfree
func (t *Telemetry) ObserveShardPhase(shard int, p ShardPhase, ns int64) {
	if t == nil {
		return
	}
	s := t.shards.Load()
	if s == nil || shard < 0 || shard >= len(*s) {
		return
	}
	(*s)[shard].phases[p].observe(ns)
}

// SetShardQueueDepth records the worker-pool backlog a shard saw when it
// submitted its execution tasks — a per-shard gauge, last value wins.
//
//machlint:allocfree
func (t *Telemetry) SetShardQueueDepth(shard int, depth int64) {
	if t == nil {
		return
	}
	s := t.shards.Load()
	if s == nil || shard < 0 || shard >= len(*s) {
		return
	}
	(*s)[shard].queueDepth.Store(depth)
}

// ShardQueueDepth returns a shard's last recorded queue depth (0 when
// disabled or out of range).
func (t *Telemetry) ShardQueueDepth(shard int) int64 {
	if t == nil {
		return 0
	}
	s := t.shards.Load()
	if s == nil || shard < 0 || shard >= len(*s) {
		return 0
	}
	return (*s)[shard].queueDepth.Load()
}

// HistBucket is one non-empty histogram bucket of a snapshot: Count
// observations fell in [Lo, Hi].
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistSnapshot is one histogram's state at snapshot time. The percentile
// fields are estimated from the log-linear buckets (≤ 6.25% relative
// error), interpolating within a bucket and rounding toward the bucket's
// upper bound, so the estimate never understates a latency. An empty
// histogram reports zero for every percentile.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Mean    float64      `json:"mean"`
	P50     int64        `json:"p50"`
	P90     int64        `json:"p90"`
	P99     int64        `json:"p99"`
	P999    int64        `json:"p999"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// ShardSnapshot is one control-plane shard's state at snapshot time.
type ShardSnapshot struct {
	Shard      int                     `json:"shard"`
	Phases     map[string]HistSnapshot `json:"phases"`
	QueueDepth int64                   `json:"queue_depth"`
}

// Snapshot is a point-in-time copy of every metric, rendered with stable
// string keys. encoding/json serializes map keys in sorted order and shards
// are listed in shard order, so a marshalled snapshot is deterministic for
// deterministic metric values.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Shards     []ShardSnapshot         `json:"shards,omitempty"`
}

// Snapshot copies the current metric values. It returns an empty (non-nil)
// snapshot when telemetry is disabled, so renderers need no nil check.
func (t *Telemetry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if t == nil {
		return s
	}
	for c := Counter(0); c < counterCount; c++ {
		s.Counters[counterNames[c]] = t.counters[c].Load()
	}
	for g := Gauge(0); g < gaugeCount; g++ {
		s.Gauges[gaugeNames[g]] = math.Float64frombits(t.gauges[g].Load())
	}
	for h := Hist(0); h < histCount; h++ {
		s.Histograms[histNames[h]] = snapshotHist(&t.hists[h])
	}
	if sp := t.spans.Load(); sp != nil {
		// Span latency histograms join the main map under a "span_" prefix;
		// kinds with no observations are omitted to keep snapshots compact.
		for k := SpanKind(0); k < spanKindCount; k++ {
			hs := snapshotHist(&sp.dur[k])
			if hs.Count == 0 {
				continue
			}
			s.Histograms["span_"+spanKindNames[k]+"_ns"] = hs
		}
	}
	if shards := t.shards.Load(); shards != nil {
		for i := range *shards {
			sm := &(*shards)[i]
			ss := ShardSnapshot{
				Shard:      i,
				Phases:     map[string]HistSnapshot{},
				QueueDepth: sm.queueDepth.Load(),
			}
			for p := ShardPhase(0); p < shardPhaseCount; p++ {
				ss.Phases[shardPhaseNames[p]] = snapshotHist(&sm.phases[p])
			}
			s.Shards = append(s.Shards, ss)
		}
	}
	return s
}

// snapshotHist copies one histogram's state. Quantiles are computed from
// one consistent copy of the bucket counts, so a snapshot taken during
// concurrent observation is internally coherent even if it trails the live
// count/sum by a few observations.
func snapshotHist(hist *histogram) HistSnapshot {
	hs := HistSnapshot{Count: hist.count.Load(), Sum: hist.sum.Load()}
	if hs.Count > 0 {
		hs.Mean = float64(hs.Sum) / float64(hs.Count)
	}
	var counts [histBuckets]int64
	var total int64
	for i := 0; i < histBuckets; i++ {
		n := hist.buckets[i].Load()
		counts[i] = n
		total += n
		if n == 0 {
			continue
		}
		lo, hi := histBucketBounds(i)
		hs.Buckets = append(hs.Buckets, HistBucket{Lo: lo, Hi: hi, Count: n})
	}
	hs.P50 = histQuantile(&counts, total, 0.50)
	hs.P90 = histQuantile(&counts, total, 0.90)
	hs.P99 = histQuantile(&counts, total, 0.99)
	hs.P999 = histQuantile(&counts, total, 0.999)
	return hs
}

// histQuantile estimates the q-quantile from bucket counts: find the bucket
// holding the ceil(q·total)-th observation and interpolate linearly by rank
// position within the bucket's [lo, hi] range, rounding up. A single
// observation therefore reports its own (bucket-resolution) value at every
// quantile, and an empty histogram reports 0.
func histQuantile(counts *[histBuckets]int64, total int64, q float64) int64 {
	if total <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := counts[i]
		if n == 0 {
			continue
		}
		cum += n
		if cum >= rank {
			lo, hi := histBucketBounds(i)
			pos := rank - (cum - n) // 1..n within this bucket
			return lo + (hi-lo)*pos/n
		}
	}
	return 0
}

// WriteSnapshot renders the current metrics as indented JSON.
func (t *Telemetry) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}
