package telemetry

import (
	"errors"
	"math"
	"strconv"
	"unicode/utf8"
)

// Hand-rolled JSONL encoding for trace events. encoding/json walks every
// event through reflection and allocates per field; at 10k-device scale a
// decision event carries tens of thousands of floats and the engine emits
// hundreds of events per step, which made trace mode ~12× slower than the
// untraced run (620 allocs/step, see BENCH_telemetry.json history). The
// appendEvent family writes the same bytes — field order, omitempty
// semantics, HTML escaping, shortest-round-trip floats — into a caller-
// pooled buffer instead, so the steady-state trace path allocates nothing
// and the wall cost is the unavoidable digit formatting. Byte identity
// with encoding/json is pinned by TestAppendEventMatchesEncodingJSON; the
// committed golden traces depend on it.

// errUnsupportedFloat mirrors encoding/json's refusal to encode NaN and
// infinities; the first such value poisons the trace like a write error.
var errUnsupportedFloat = errors.New("telemetry: unsupported float value (NaN or Inf) in trace event")

// floatMemo caches the formatted bytes of recently seen float64 values,
// keyed by bit pattern. Shortest-round-trip digit generation is the single
// largest cost of a full decision trace (~85% of the residual overhead once
// encoding stopped allocating — see BENCH_telemetry.json history), and the
// estimate columns repeat heavily across steps: an experience estimate only
// changes when its device is sampled, so at 10% participation ~90% of the
// values in each event were already formatted in a recent one. A direct-
// mapped table turns those repeats into a copy. Coins are excluded by the
// caller: every coin is a fresh 53-bit draw, so they can only evict useful
// entries. The memo changes where bytes come from, never what they are —
// hits replay exactly what appendJSONFloat wrote when the entry was filled.
type floatMemo struct {
	bits [memoSlots]uint64
	n    [memoSlots]uint8
	buf  [memoSlots][memoMax]byte
}

const (
	memoSlotBits = 14
	memoSlots    = 1 << memoSlotBits
	// memoMax covers every fixed-notation shortest float: 17 significant
	// digits, a sign, a decimal point and up to five leading zeros. Longer
	// renderings (exponent form only appears outside [1e-6, 1e21)) bypass
	// the memo.
	memoMax = 24
)

// appendFloat formats f via the memo. Bit pattern zero doubles as the empty
// slot marker; +0 formats as the single byte '0' anyway, so it takes the
// direct path instead of occupying a slot.
func (m *floatMemo) appendFloat(b []byte, f float64) ([]byte, error) {
	bits := math.Float64bits(f)
	if m == nil || bits == 0 {
		return appendJSONFloat(b, f)
	}
	idx := (bits * 0x9E3779B97F4A7C15) >> (64 - memoSlotBits)
	if m.bits[idx] == bits {
		return append(b, m.buf[idx][:m.n[idx]]...), nil
	}
	start := len(b)
	b, err := appendJSONFloat(b, f)
	if err != nil {
		return b, err
	}
	if n := len(b) - start; n <= memoMax {
		m.bits[idx] = bits
		m.n[idx] = uint8(n)
		copy(m.buf[idx][:], b[start:])
	}
	return b, nil
}

// appendEvent appends ev's JSON object (no trailing newline) to b. The memo
// may be nil (no caching); it only accelerates the decision-event estimate
// column.
func appendEvent(b []byte, ev *Event, memo *floatMemo) ([]byte, error) {
	var err error
	b = append(b, `{"type":`...)
	b = appendJSONString(b, ev.Type)
	b = append(b, `,"step":`...)
	b = strconv.AppendInt(b, int64(ev.Step), 10)
	if ev.Run != nil {
		b = append(b, `,"run":`...)
		if b, err = appendRunEvent(b, ev.Run); err != nil {
			return b, err
		}
	}
	if ev.Decision != nil {
		b = append(b, `,"decision":`...)
		if b, err = appendDecisionEvent(b, ev.Decision, memo); err != nil {
			return b, err
		}
	}
	if ev.Phase != nil {
		b = append(b, `,"phase":`...)
		b = appendPhaseEvent(b, ev.Phase)
	}
	if ev.Eval != nil {
		b = append(b, `,"eval":`...)
		if b, err = appendEvalEvent(b, ev.Eval); err != nil {
			return b, err
		}
	}
	if ev.Estimator != nil {
		b = append(b, `,"estimator":`...)
		b = appendEstimatorEvent(b, ev.Estimator)
	}
	if ev.Done != nil {
		b = append(b, `,"done":`...)
		if b, err = appendDoneEvent(b, ev.Done); err != nil {
			return b, err
		}
	}
	return append(b, '}'), nil
}

func appendRunEvent(b []byte, e *RunEvent) ([]byte, error) {
	var err error
	b = append(b, `{"strategy":`...)
	b = appendJSONString(b, e.Strategy)
	b = append(b, `,"seed":`...)
	b = strconv.AppendInt(b, e.Seed, 10)
	b = append(b, `,"devices":`...)
	b = strconv.AppendInt(b, int64(e.Devices), 10)
	b = append(b, `,"edges":`...)
	b = strconv.AppendInt(b, int64(e.Edges), 10)
	b = append(b, `,"steps":`...)
	b = strconv.AppendInt(b, int64(e.Steps), 10)
	b = append(b, `,"capacity":`...)
	if b, err = appendJSONFloat(b, e.Capacity); err != nil {
		return b, err
	}
	b = append(b, `,"every":`...)
	b = strconv.AppendInt(b, int64(e.Every), 10)
	if e.MaxEdges != 0 {
		b = append(b, `,"max_edges":`...)
		b = strconv.AppendInt(b, int64(e.MaxEdges), 10)
	}
	return append(b, '}'), nil
}

func appendDecisionEvent(b []byte, e *DecisionEvent, memo *floatMemo) ([]byte, error) {
	var err error
	b = append(b, `{"edge":`...)
	b = strconv.AppendInt(b, int64(e.Edge), 10)
	b = append(b, `,"members":`...)
	b = appendIntSlice(b, e.Members)
	if len(e.Estimates) > 0 {
		b = append(b, `,"estimates":`...)
		if b, err = appendFloatSlice(b, e.Estimates, memo); err != nil {
			return b, err
		}
	}
	// Probs and coins bypass the memo: coins are fresh full-entropy draws,
	// and normalization makes most probabilities unique per step — caching
	// either would mostly evict the estimate entries that do repeat.
	b = append(b, `,"probs":`...)
	if b, err = appendFloatSlice(b, e.Probs, nil); err != nil {
		return b, err
	}
	b = append(b, `,"coins":`...)
	if b, err = appendFloatSlice(b, e.Coins, nil); err != nil {
		return b, err
	}
	b = append(b, `,"sampled":`...)
	b = appendIntSlice(b, e.Sampled)
	if len(e.Dropped) > 0 {
		b = append(b, `,"dropped":`...)
		b = appendIntSlice(b, e.Dropped)
	}
	return append(b, '}'), nil
}

func appendPhaseEvent(b []byte, e *PhaseEvent) []byte {
	b = append(b, `{"name":`...)
	b = appendJSONString(b, e.Name)
	b = append(b, `,"ns":`...)
	b = strconv.AppendInt(b, e.NS, 10)
	if e.Shard != 0 {
		b = append(b, `,"shard":`...)
		b = strconv.AppendInt(b, int64(e.Shard), 10)
	}
	return append(b, '}')
}

func appendEvalEvent(b []byte, e *EvalEvent) ([]byte, error) {
	var err error
	b = append(b, `{"accuracy":`...)
	if b, err = appendJSONFloat(b, e.Accuracy); err != nil {
		return b, err
	}
	b = append(b, `,"loss":`...)
	if b, err = appendJSONFloat(b, e.Loss); err != nil {
		return b, err
	}
	return append(b, '}'), nil
}

func appendEstimatorEvent(b []byte, e *EstimatorEvent) []byte {
	b = append(b, `{"devices":`...)
	b = strconv.AppendInt(b, int64(e.Devices), 10)
	b = append(b, `,"never_pulled":`...)
	b = strconv.AppendInt(b, int64(e.NeverPulled), 10)
	b = append(b, `,"total_pulls":`...)
	b = strconv.AppendInt(b, int64(e.TotalPulls), 10)
	b = append(b, `,"max_pulls":`...)
	b = strconv.AppendInt(b, int64(e.MaxPulls), 10)
	return append(b, '}')
}

func appendDoneEvent(b []byte, e *DoneEvent) ([]byte, error) {
	var err error
	b = append(b, `{"steps_run":`...)
	b = strconv.AppendInt(b, int64(e.StepsRun), 10)
	b = append(b, `,"total_sampled":`...)
	b = strconv.AppendInt(b, int64(e.TotalSampled), 10)
	b = append(b, `,"final_accuracy":`...)
	if b, err = appendJSONFloat(b, e.FinalAccuracy); err != nil {
		return b, err
	}
	return append(b, '}'), nil
}

// appendIntSlice writes s as a JSON array; a nil slice writes null, exactly
// as encoding/json does for a non-omitempty field.
func appendIntSlice(b []byte, s []int) []byte {
	if s == nil {
		return append(b, "null"...)
	}
	b = append(b, '[')
	for i, v := range s {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return append(b, ']')
}

func appendFloatSlice(b []byte, s []float64, memo *floatMemo) ([]byte, error) {
	if s == nil {
		return append(b, "null"...), nil
	}
	var err error
	b = append(b, '[')
	for i, v := range s {
		if i > 0 {
			b = append(b, ',')
		}
		if b, err = memo.appendFloat(b, v); err != nil {
			return b, err
		}
	}
	return append(b, ']'), nil
}

// appendJSONFloat formats f exactly as encoding/json does: shortest
// round-trip decimal, fixed notation inside [1e-6, 1e21), exponent
// notation outside it with the "e-09" → "e-9" cleanup.
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, errUnsupportedFloat
	}
	abs := math.Abs(f)
	format := byte('f')
	//machlint:allow floateq replicates encoding/json's floatEncoder exactly; zero must take the 'f' branch for byte identity
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

const hexDigits = "0123456789abcdef"

// appendJSONString writes s as a JSON string with encoding/json's default
// escaping: ", \ and control characters always; <, > and & as \u00XX
// (HTML-safe mode, which json.Encoder uses unless told otherwise); invalid
// UTF-8 as U+FFFD; U+2028/U+2029 escaped for JS embedding.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '"', '\\':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, `\u202`...)
			b = append(b, hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
