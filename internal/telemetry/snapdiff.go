package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/mach-fl/mach/internal/det"
)

// Snapshot diffing: the regression half of the observability plane. A run
// writes its final Snapshot to JSON (machsim -metrics-out); machtop's diff
// mode compares two such snapshots and flags metric movements beyond a
// threshold in the direction that is bad for that metric — latency and
// byte counters up, accuracy down. Everything else is reported as an
// informational delta, so a diff doubles as a quick "what changed"
// summary between two runs.

// SnapshotDelta is one metric's movement between two snapshots.
type SnapshotDelta struct {
	// Metric is the qualified name: "counter/steps", "gauge/accuracy",
	// "hist/step_ns.p99", "shard0/decide.p99".
	Metric string `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Pct is the relative change in percent ((new-old)/old·100); +Inf is
	// represented as 0-division guard: a metric appearing from zero reports
	// Pct 100 per doubling convention below.
	Pct float64 `json:"pct"`
	// Regression marks movement beyond the threshold in the metric's bad
	// direction (latency/bytes/loss up, accuracy down).
	Regression bool `json:"regression"`
}

// DiffOptions controls DiffSnapshots.
type DiffOptions struct {
	// ThresholdPct is the relative movement (percent) beyond which a
	// bad-direction change becomes a regression. 0 means the default 10%.
	ThresholdPct float64
}

// regressionDirection returns +1 when an increase is bad, -1 when a
// decrease is bad, and 0 when the metric has no bad direction.
func regressionDirection(metric string) int {
	switch {
	case strings.HasSuffix(metric, "_ns.mean"), strings.HasSuffix(metric, "_ns.p99"),
		strings.HasSuffix(metric, "_ns.p999"):
		return +1 // latency up is bad
	case strings.HasSuffix(metric, "_bytes"):
		return +1 // more traffic for the same run is bad
	case strings.HasSuffix(metric, "/loss"):
		return +1
	case strings.HasSuffix(metric, "/accuracy"):
		return -1
	}
	return 0
}

// pctChange is the relative movement in percent. A metric appearing from
// zero reports 100% per unit convention-free; both zero reports 0.
func pctChange(oldV, newV float64) float64 {
	//machlint:allow floateq snapshot values are loaded verbatim from JSON; bit-equal means genuinely unchanged
	if oldV == newV {
		return 0
	}
	//machlint:allow floateq exact zero means the metric was absent or never observed on the old side
	if oldV == 0 {
		return 100
	}
	return (newV - oldV) / math.Abs(oldV) * 100
}

// DiffSnapshots compares two snapshots metric by metric and returns every
// delta in deterministic (sorted) order. Counters and gauges compare their
// values; histograms compare mean and p99; shard phases compare p99.
// Metrics absent on one side compare against zero.
func DiffSnapshots(oldS, newS *Snapshot, opt DiffOptions) []SnapshotDelta {
	threshold := opt.ThresholdPct
	if threshold <= 0 {
		threshold = 10
	}

	merged := map[string][2]float64{}
	addOld := func(metric string, v float64) {
		e := merged[metric]
		e[0] = v
		merged[metric] = e
	}
	addNew := func(metric string, v float64) {
		e := merged[metric]
		e[1] = v
		merged[metric] = e
	}
	collect := func(s *Snapshot, add func(string, float64)) {
		if s == nil {
			return
		}
		for _, k := range det.SortedKeys(s.Counters) {
			add("counter/"+k, float64(s.Counters[k]))
		}
		for _, k := range det.SortedKeys(s.Gauges) {
			add("gauge/"+k, s.Gauges[k])
		}
		for _, k := range det.SortedKeys(s.Histograms) {
			h := s.Histograms[k]
			add("hist/"+k+".mean", h.Mean)
			add("hist/"+k+".p99", float64(h.P99))
		}
		for _, sh := range s.Shards {
			for _, p := range det.SortedKeys(sh.Phases) {
				add(fmt.Sprintf("shard%d/%s.p99", sh.Shard, p), float64(sh.Phases[p].P99))
			}
		}
	}
	collect(oldS, addOld)
	collect(newS, addNew)

	deltas := make([]SnapshotDelta, 0, len(merged))
	for _, metric := range det.SortedKeys(merged) {
		v := merged[metric]
		d := SnapshotDelta{Metric: metric, Old: v[0], New: v[1], Pct: pctChange(v[0], v[1])}
		if dir := regressionDirection(metric); dir != 0 {
			d.Regression = d.Pct*float64(dir) > threshold
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// Regressions counts the flagged deltas.
func Regressions(deltas []SnapshotDelta) int {
	n := 0
	for _, d := range deltas {
		if d.Regression {
			n++
		}
	}
	return n
}

// WriteSnapshotDiff renders deltas as an aligned text table: changed
// metrics only (unchanged rows are suppressed), regressions marked with
// "!! REGRESSION", and a trailing summary line. The output is the golden-
// tested surface behind `machtop diff`.
func WriteSnapshotDiff(w io.Writer, deltas []SnapshotDelta) error {
	var b bytes.Buffer
	width := len("metric")
	changed := 0
	for _, d := range deltas {
		//machlint:allow floateq pctChange returns exact 0 for unchanged metrics by construction
		if d.Pct == 0 && !d.Regression {
			continue
		}
		changed++
		if len(d.Metric) > width {
			width = len(d.Metric)
		}
	}
	fmt.Fprintf(&b, "%-*s  %14s  %14s  %9s\n", width, "metric", "old", "new", "delta")
	for _, d := range deltas {
		//machlint:allow floateq pctChange returns exact 0 for unchanged metrics by construction
		if d.Pct == 0 && !d.Regression {
			continue
		}
		mark := ""
		if d.Regression {
			mark = "  !! REGRESSION"
		}
		fmt.Fprintf(&b, "%-*s  %14s  %14s  %+8.1f%%%s\n",
			width, d.Metric, formatMetric(d.Old), formatMetric(d.New), d.Pct, mark)
	}
	fmt.Fprintf(&b, "%d metric(s) changed, %d regression(s)\n", changed, Regressions(deltas))
	_, err := w.Write(b.Bytes())
	return err
}

// formatMetric renders a metric value compactly: integers without a
// fraction, everything else with four significant decimals.
func formatMetric(v float64) string {
	//machlint:allow floateq Trunc equality is the standard integrality test; a near-integer float should still print its fraction
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}
