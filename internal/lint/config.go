package lint

import "strings"

// Rule is the package-scoped configuration of one check.
type Rule struct {
	// Enabled turns the check on at all.
	Enabled bool
	// SkipTests exempts _test.go files.
	SkipTests bool
	// Only restricts the check to packages under these slash-separated
	// path prefixes (relative to the lint root). Empty means everywhere.
	Only []string
	// Skip disables the check in packages under these prefixes. Skip wins
	// over Only.
	Skip []string
	// Allow lists callees whose results a check may ignore, keyed by
	// types.Func.FullName (e.g. "fmt.Printf" or
	// "(*strings.Builder).WriteString"). Used by errdrop.
	Allow []string
}

// appliesTo reports whether the rule is active for a package path.
func (r *Rule) appliesTo(path string) bool {
	if !r.Enabled {
		return false
	}
	if pathMatch(path, r.Skip) {
		return false
	}
	if len(r.Only) > 0 && !pathMatch(path, r.Only) {
		return false
	}
	return true
}

func (r *Rule) allows(callee string) bool {
	for _, a := range r.Allow {
		if a == callee {
			return true
		}
	}
	return false
}

// pathMatch reports whether path equals one of the prefixes or sits below
// one of them ("internal/fed/sub" matches prefix "internal/fed", but
// "internal/fedx" does not).
func pathMatch(path string, prefixes []string) bool {
	for _, p := range prefixes {
		p = strings.Trim(p, "/")
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Config maps check names to their package-scoped rules. Checks without an
// entry are disabled.
type Config struct {
	Rules map[string]*Rule
}

var disabledRule = &Rule{}

func (c *Config) rule(name string) *Rule {
	if r, ok := c.Rules[name]; ok && r != nil {
		return r
	}
	return disabledRule
}

// Keep restricts the configuration to the named checks (used by the
// -checks CLI flag). Unknown names are ignored; the CLI validates them.
func (c *Config) Keep(names []string) {
	keep := map[string]bool{}
	for _, n := range names {
		keep[strings.TrimSpace(n)] = true
	}
	for name := range c.Rules {
		if !keep[name] {
			delete(c.Rules, name)
		}
	}
}

// DefaultConfig is the repo's policy, mirroring DESIGN.md §5.5:
//
//   - maprange and mutexcopy guard everything, including tests — an
//     order-dependent accumulation in a test is a flaky test.
//   - globalrand guards the deterministic simulation core. The benchmark
//     harness and the CLIs legitimately read the wall clock, and tests may
//     time things, so those are exempt. internal/telemetry is the sanctioned
//     clock site (DESIGN.md §8) and is exempt too.
//   - walltime guards everything except internal/telemetry: even harness and
//     CLI code must read wall time through telemetry.WallNow/WallSince so the
//     repo has exactly one clock site to audit.
//   - floateq and errdrop guard non-test code everywhere; tests compare
//     floats exactly on purpose (bit-identity contracts) and may drop
//     errors for brevity.
//   - randshare and selectdet guard the deterministic simulation core, like
//     globalrand: CLIs and the bench harness may use ad-hoc goroutines, and
//     tests may share rands deliberately (e.g. to provoke races under
//     -race).
//   - intoalias guards non-test code everywhere: every *Into buffer
//     function must declare its aliasing contract and every call site is
//     checked against it. Tests are exempt — they routinely alias buffers
//     on purpose to pin in-place semantics.
//   - allocfree runs everywhere it finds annotations; scoping is by
//     annotation, not path.
func DefaultConfig() *Config {
	return &Config{Rules: map[string]*Rule{
		"maprange":  {Enabled: true},
		"mutexcopy": {Enabled: true},
		"globalrand": {
			Enabled:   true,
			SkipTests: true,
			Skip:      []string{"internal/bench", "internal/telemetry", "cmd", "examples"},
		},
		"walltime": {
			Enabled:   true,
			SkipTests: true,
			Skip:      []string{"internal/telemetry"},
		},
		"floateq": {Enabled: true, SkipTests: true},
		"errdrop": {
			Enabled:   true,
			SkipTests: true,
			Allow: []string{
				// fmt printing: the repo prints reports and usage text to
				// stdout/stderr and in-memory writers; a failed diagnostic
				// print has no recovery path (errcheck ships the same
				// default).
				"fmt.Print", "fmt.Printf", "fmt.Println",
				"fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln",
				// Documented to never return a non-nil error.
				"(*strings.Builder).Write",
				"(*strings.Builder).WriteByte",
				"(*strings.Builder).WriteRune",
				"(*strings.Builder).WriteString",
				"(*bytes.Buffer).Write",
				"(*bytes.Buffer).WriteByte",
				"(*bytes.Buffer).WriteRune",
				"(*bytes.Buffer).WriteString",
			},
		},
		"randshare": {
			Enabled:   true,
			SkipTests: true,
			Skip:      []string{"internal/bench", "cmd", "examples"},
		},
		"selectdet": {
			Enabled:   true,
			SkipTests: true,
			Skip:      []string{"cmd", "examples"},
		},
		"intoalias": {Enabled: true, SkipTests: true},
		"allocfree": {Enabled: true},
	}}
}
