package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RandShare enforces the two halves of the repo's RNG-ownership invariant
// (DESIGN.md §5 phase 1, §7 pooled decide state):
//
//  1. Seed provenance: every explicit source must be derived from the run
//     seed. rand.NewSource / (*rand.Rand).Seed with a compile-time
//     constant argument forks a stream the config's Seed does not control
//     — the exact bug class behind "identically seeded runs differ".
//     Derived expressions (mix(seed, t, n), seed+offset, rng.Int63())
//     taint from a seed value and pass.
//  2. Goroutine ownership: a *rand.Rand local must be owned by exactly one
//     goroutine-spawning scope. A rand captured by two spawned closures,
//     by a closure spawned in a loop, by a parallel.ForEach body (which
//     runs on many goroutines), or used by both a spawned closure and its
//     parent after the spawn, is drawn from concurrently — draw order, and
//     therefore every downstream decision, becomes scheduler-dependent.
//
// Struct-field rands (pooled edgeDecideState) are out of scope here: those
// are owned by index-partitioned state and guarded by the engine's
// serial-order contract, which the runtime determinism tests pin.
var RandShare = &Analyzer{
	Name: "randshare",
	Doc:  "constant-seeded or goroutine-shared *rand.Rand in the simulation core",
	Run:  runRandShare,
}

func runRandShare(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				p.checkConstSeed(n)
			case *ast.FuncDecl:
				if n.Body != nil {
					p.checkRandCaptures(n.Body)
				}
			}
			return true
		})
	}
}

// checkConstSeed flags rand.NewSource / rand.NewPCG / (*rand.Rand).Seed
// calls whose seed arguments are compile-time constants.
func (p *Pass) checkConstSeed(call *ast.CallExpr) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	name := fn.Name()
	seedTaking := false
	if sig.Recv() != nil {
		seedTaking = name == "Seed"
	} else {
		seedTaking = name == "NewSource" || name == "NewPCG"
	}
	if !seedTaking {
		return
	}
	for _, arg := range call.Args {
		if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil {
			p.Reportf(arg.Pos(), "%s seeded with constant %s; derive the seed from the run seed (mix(...)) so the stream is controlled by Config.Seed", name, tv.Value)
		}
	}
}

// spawnKind classifies how a function literal leaves its parent goroutine.
type spawnKind int

const (
	spawnNone   spawnKind = iota
	spawnSingle           // `go func(){...}()` or (*parallel.Group).Go outside a loop
	spawnMulti            // spawned inside a loop, or a parallel.ForEach body
)

// randUse records where a *rand.Rand variable was referenced.
type randUse struct {
	lit      *ast.FuncLit // innermost spawned literal, nil = parent scope
	pos      token.Pos
	spawnPos token.Pos // position of the spawn site (valid when lit != nil)
	multi    bool
}

// checkRandCaptures walks one function body tracking which spawned
// closures capture which locally-declared *rand.Rand variables.
func (p *Pass) checkRandCaptures(body *ast.BlockStmt) {
	// Pass 1: find locally declared *rand.Rand variables.
	rngVars := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			return true
		}
		if v, ok := obj.(*types.Var); ok && isRandRandPtr(v.Type()) {
			rngVars[obj] = true
		}
		return true
	})
	if len(rngVars) == 0 {
		return
	}

	// Pass 2: walk with an explicit stack so every identifier use knows
	// its innermost spawned literal and the loop depth at the spawn site.
	type frame struct {
		node     *ast.FuncLit // the literal this frame was pushed for
		owner    *ast.FuncLit // the spawned literal uses are attributed to
		kind     spawnKind
		spawnPos token.Pos
	}
	var (
		stack     []ast.Node
		frames    []frame
		loopDepth int
		spawned   = map[*ast.FuncLit]frame{}
		uses      = map[types.Object][]randUse{}
		order     []types.Object // first-use order, for deterministic reports
	)
	markSpawn := func(lit *ast.FuncLit, kind spawnKind, pos token.Pos) {
		if kind == spawnSingle && loopDepth > 0 {
			kind = spawnMulti
		}
		spawned[lit] = frame{node: lit, owner: lit, kind: kind, spawnPos: pos}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch top.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth--
			case *ast.FuncLit:
				if frames[len(frames)-1].node == top {
					frames = frames[:len(frames)-1]
				}
			}
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				markSpawn(lit, spawnSingle, n.Pos())
			}
		case *ast.CallExpr:
			if kind := spawnerKind(p, n); kind != spawnNone {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						markSpawn(lit, kind, n.Pos())
					}
				}
			}
		case *ast.FuncLit:
			if fr, ok := spawned[n]; ok {
				frames = append(frames, fr)
			} else {
				// Non-spawned literals run on whichever goroutine calls
				// them; inherit the enclosing frame's ownership (parent by
				// default) while still popping on this node.
				var fr frame
				if len(frames) > 0 {
					fr = frames[len(frames)-1]
				}
				fr.node = n
				frames = append(frames, fr)
			}
		case *ast.Ident:
			obj := p.Info.Uses[n]
			if obj == nil || !rngVars[obj] {
				return true
			}
			u := randUse{pos: n.Pos()}
			if len(frames) > 0 {
				if fr := frames[len(frames)-1]; fr.kind != spawnNone {
					u.lit = fr.owner
					u.spawnPos = fr.spawnPos
					u.multi = fr.kind == spawnMulti
				}
			}
			if len(uses[obj]) == 0 {
				order = append(order, obj)
			}
			uses[obj] = append(uses[obj], u)
		}
		return true
	})

	for _, obj := range order {
		p.reportRandSharing(obj, uses[obj])
	}
}

// reportRandSharing applies the ownership rules to one variable's uses.
func (p *Pass) reportRandSharing(obj types.Object, uses []randUse) {
	var (
		firstLit   *ast.FuncLit
		firstInLit randUse
	)
	for _, u := range uses {
		if u.lit == nil {
			continue
		}
		if u.multi {
			p.Reportf(u.pos, "*rand.Rand %s is captured by a closure that runs on multiple goroutines (spawned in a loop or a parallel fan-out); give each goroutine its own mix(...)-seeded stream", obj.Name())
			return
		}
		if firstLit == nil {
			firstLit, firstInLit = u.lit, u
			continue
		}
		if u.lit != firstLit {
			p.Reportf(u.pos, "*rand.Rand %s is captured by more than one goroutine-spawning closure; draws interleave nondeterministically — give each goroutine its own mix(...)-seeded stream", obj.Name())
			return
		}
	}
	if firstLit == nil {
		return
	}
	// One spawned capture: parent uses lexically after the spawn race the
	// goroutine's draws. Uses before the spawn are seed-and-hand-off
	// initialization and stay legal.
	for _, u := range uses {
		if u.lit == nil && u.pos > firstInLit.spawnPos {
			p.Reportf(firstInLit.pos, "*rand.Rand %s is used by this spawned goroutine and by its parent scope after the spawn; hand the stream off completely or derive a second one with mix(...)", obj.Name())
			return
		}
	}
}

// spawnerKind recognizes the repo's worker-pool entry points: a function
// literal passed to parallel.ForEach executes on many goroutines at once;
// one passed to (*parallel.Group).Go executes on exactly one pool worker.
func spawnerKind(p *Pass, call *ast.CallExpr) spawnKind {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || !isParallelPkg(fn.Pkg().Path()) {
		return spawnNone
	}
	switch fn.Name() {
	case "ForEach":
		return spawnMulti
	case "Go":
		return spawnSingle
	}
	return spawnNone
}

func isParallelPkg(path string) bool {
	return path == "parallel" || strings.HasSuffix(path, "/parallel")
}

// isRandRandPtr reports whether t is *math/rand.Rand (either rand version).
func isRandRandPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Rand" {
		return false
	}
	pkg := obj.Pkg().Path()
	return pkg == "math/rand" || pkg == "math/rand/v2"
}
