package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// Annotation directives recognized on function declarations. Unlike
// //machlint:allow (which waives one finding), these *declare contracts*
// that analyzers then enforce at every call site and build:
//
//	//machlint:noalias <p1,p2[,p3...]> [<q1,q2> ...]
//	    Each comma-joined group names parameters that must never alias each
//	    other at a call site. Multiple space-separated groups express
//	    independent constraints: "dst,a dst,b" forbids dst↔a and dst↔b but
//	    permits a↔b (the A·A product).
//	//machlint:aliasok <justification>
//	    The function tolerates argument aliasing by construction (e.g. it
//	    reads every input before the first write). The justification is
//	    mandatory, mirroring the allow-directive rule.
//	//machlint:allocfree
//	    The function is a steady-state hot path that must not gain heap
//	    allocations. The allocfree analyzer compares its `go build
//	    -gcflags=-m` escape sites against the committed budget file.
const (
	NoAliasDirective   = "machlint:noalias"
	AliasOKDirective   = "machlint:aliasok"
	AllocFreeDirective = "machlint:allocfree"
)

// FuncFacts is everything the cross-function analyzers know about one
// declared function: its identity, source extent, and annotation-declared
// contracts. Facts are collected from every loaded unit before analyzers
// run, so a call in internal/nn can be checked against a contract declared
// in internal/tensor.
type FuncFacts struct {
	// Key identifies the function for the alloc-budget file:
	// "<pkgdir>.<name>" with methods rendered as "(Recv).Name",
	// e.g. "internal/hfl.(*Engine).edgeDecide".
	Key string
	// Path is the unit's package directory (slash-separated, lint-root
	// relative).
	Path string
	// AbsFile, StartLine and EndLine delimit the declaration in the source
	// tree; escape diagnostics are attributed to functions by this range.
	AbsFile   string
	StartLine int
	EndLine   int
	// NamePos is the declaration identifier's position (diagnostics anchor).
	NamePos token.Pos

	// NoAliasGroups holds the parameter-name groups of a noalias directive
	// (nil when absent). Names are validated by the intoalias analyzer.
	NoAliasGroups [][]string
	// AliasOK marks an aliasok directive; AliasReason carries its
	// justification (empty = invalid, flagged by intoalias).
	AliasOK     bool
	AliasReason string
	// AllocFree marks an allocfree directive.
	AllocFree bool
}

// Annotated reports whether the function declares any aliasing contract.
func (f *FuncFacts) Annotated() bool {
	return f != nil && (len(f.NoAliasGroups) > 0 || f.AliasOK)
}

// Facts indexes every annotated (and *Into-named) function across all
// loaded units. The index key is the declaration identifier's resolved
// file position, which is stable between a unit's own parse and the source
// importer's parse of the same file — that is what lets a types.Func
// resolved through an import find the fact recorded from the defining
// unit.
type Facts struct {
	byPos map[string]*FuncFacts
	// All lists every recorded function in collection order (units are
	// loaded in sorted dir order, files in sorted name order), so
	// downstream output is deterministic without re-sorting.
	All []*FuncFacts
}

// posKey normalizes a declaration position to an absolute-path key.
func posKey(pos token.Position) string {
	return absPath(pos.Filename) + ":" + itoa(pos.Line) + ":" + itoa(pos.Column)
}

// absPath best-effort resolves a (possibly relative) filename against the
// process working directory; on failure the cleaned input is used, which
// still matches as long as both sides fail identically.
func absPath(name string) string {
	if abs, err := filepath.Abs(name); err == nil {
		return abs
	}
	return filepath.Clean(name)
}

// itoa avoids pulling strconv into the hot key path for no reason other
// than symmetry; small positive ints only.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ByFunc returns the facts recorded for the function declared at pos (a
// types.Func.Pos(), from either the unit's own parse or an import), or nil.
func (fs *Facts) ByFunc(fset *token.FileSet, pos token.Pos) *FuncFacts {
	if fs == nil || !pos.IsValid() {
		return nil
	}
	return fs.byPos[posKey(fset.Position(pos))]
}

// CollectFacts scans every unit's function declarations for machlint
// directives. It is a pure collection pass: validation (unknown parameter
// names, missing justifications) is the intoalias analyzer's job so the
// findings carry normal diagnostic positions and suppression semantics.
func CollectFacts(units []*Unit) *Facts {
	fs := &Facts{byPos: map[string]*FuncFacts{}}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				ff := collectFuncFacts(u, fd)
				key := posKey(u.Fset.Position(fd.Name.Pos()))
				if _, dup := fs.byPos[key]; dup {
					continue // impossible for well-formed loads; first wins
				}
				fs.byPos[key] = ff
				fs.All = append(fs.All, ff)
			}
		}
	}
	return fs
}

func collectFuncFacts(u *Unit, fd *ast.FuncDecl) *FuncFacts {
	pos := u.Fset.Position(fd.Name.Pos())
	ff := &FuncFacts{
		Key:       u.Path + "." + funcDisplayName(fd),
		Path:      u.Path,
		AbsFile:   absPath(pos.Filename),
		StartLine: u.Fset.Position(fd.Pos()).Line,
		EndLine:   u.Fset.Position(fd.End()).Line,
		NamePos:   fd.Name.Pos(),
	}
	if fd.Doc == nil {
		return ff
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		switch {
		case strings.HasPrefix(text, NoAliasDirective):
			rest := strings.TrimSpace(strings.TrimPrefix(text, NoAliasDirective))
			for _, group := range strings.Fields(rest) {
				ff.NoAliasGroups = append(ff.NoAliasGroups, strings.Split(group, ","))
			}
		case strings.HasPrefix(text, AliasOKDirective):
			ff.AliasOK = true
			ff.AliasReason = strings.TrimSpace(strings.TrimPrefix(text, AliasOKDirective))
		case strings.HasPrefix(text, AllocFreeDirective):
			ff.AllocFree = true
		}
	}
	return ff
}

// funcDisplayName renders "Name" for functions and "(Recv).Name" /
// "(*Recv).Name" for methods, matching the alloc-budget key format.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := typeExprString(fd.Recv.List[0].Type)
	return "(" + recv + ")." + fd.Name.Name
}

// typeExprString renders the small subset of type expressions receivers
// use (ident, pointer, generic instantiation) without importing go/printer.
func typeExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + typeExprString(e.X)
	case *ast.IndexExpr:
		return typeExprString(e.X) + "[" + typeExprString(e.Index) + "]"
	case *ast.SelectorExpr:
		return typeExprString(e.X) + "." + e.Sel.Name
	default:
		return "?"
	}
}
