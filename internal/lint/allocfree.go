package lint

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/mach-fl/mach/internal/det"
)

// The allocfree check is the suite's one build-integrated analyzer: it has
// no Run function over ASTs. Instead the driver compiles the linted
// packages with `go build -gcflags=-m`, parses the compiler's escape
// diagnostics, and attributes every heap-allocation site ("escapes to
// heap", "moved to heap") to the enclosing function. Functions annotated
// //machlint:allocfree — the steady-state hot paths pinned by AllocsPerRun
// tests — are then compared against the committed per-function budget file
// (lint_allocs.txt): more sites than budgeted means a hot path regressed;
// fewer means the budget is stale; a budget entry whose function lost its
// annotation means coverage silently shrank. All three are findings, so
// the budget file stays an exact, reviewed inventory, regenerated with
// `machlint -write-allocs`.
const (
	AllocFreeName = "allocfree"
	AllocFreeDoc  = "heap allocations in //machlint:allocfree hot paths beyond the committed budget (go build -gcflags=-m)"

	// DefaultAllocBudgetPath is the committed budget file, relative to the
	// lint root.
	DefaultAllocBudgetPath = "lint_allocs.txt"
)

// escapeSite is one heap-allocation diagnostic from the compiler.
type escapeSite struct {
	absFile string
	line    int
	msg     string
	pos     token.Position // as printed by the compiler, for reports
}

// runEscapeAnalysis compiles dirs (relative to root) with -gcflags=-m and
// returns the parsed heap-allocation sites.
func runEscapeAnalysis(root string, dirs []string) ([]escapeSite, error) {
	tmp, err := os.MkdirTemp("", "machlint-build")
	if err != nil {
		return nil, fmt.Errorf("lint: allocfree temp dir: %w", err)
	}
	defer os.RemoveAll(tmp) //machlint:allow errdrop best-effort temp-dir cleanup; a leak cannot affect lint results
	var pkgs []string
	for _, d := range dirs {
		pkgs = append(pkgs, "./"+filepath.ToSlash(d))
	}
	// -o soaks up executables so linting a main package never drops a
	// binary into the tree. go refuses -o when no main package is named;
	// in that case rebuilding without it writes nothing anyway.
	args := append([]string{"build", "-gcflags=-m", "-o", tmp + string(os.PathSeparator)}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil && strings.Contains(string(out), "no main packages") {
		args = append([]string{"build", "-gcflags=-m"}, pkgs...)
		cmd = exec.Command("go", args...)
		cmd.Dir = root
		out, err = cmd.CombinedOutput()
	}
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return parseEscapeOutput(root, string(out)), nil
}

// parseEscapeOutput extracts heap-allocation sites from -gcflags=-m
// output. Inlining reports, "does not escape" proofs and package headers
// are dropped.
func parseEscapeOutput(root, out string) []escapeSite {
	var sites []escapeSite
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		site, ok := parseEscapeLine(root, sc.Text())
		if ok {
			sites = append(sites, site)
		}
	}
	return sites
}

// parseEscapeLine parses one "file.go:line:col: message" compiler line,
// keeping only heap-allocation messages.
func parseEscapeLine(root, line string) (escapeSite, bool) {
	if !strings.HasSuffix(strings.SplitN(line, ":", 2)[0], ".go") {
		return escapeSite{}, false
	}
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 {
		return escapeSite{}, false
	}
	ln, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return escapeSite{}, false
	}
	msg := strings.TrimSpace(parts[3])
	heap := strings.HasPrefix(msg, "moved to heap:") ||
		(strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "does not escape"))
	if !heap {
		return escapeSite{}, false
	}
	file := parts[0]
	if !filepath.IsAbs(file) {
		file = filepath.Join(root, file)
	}
	return escapeSite{
		absFile: absPath(file),
		line:    ln,
		msg:     msg,
		pos:     token.Position{Filename: parts[0], Line: ln, Column: col},
	}, true
}

// allocBudgetEntry is one committed budget line.
type allocBudgetEntry struct {
	Count int
	Line  int // line in the budget file, for orphan diagnostics
}

// ReadAllocBudget parses the budget file: "<key> <count>" lines, '#'
// comments and blanks ignored. A missing file is an empty budget.
func ReadAllocBudget(path string) (map[string]allocBudgetEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]allocBudgetEntry{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: alloc budget: %w", err)
	}
	out := map[string]allocBudgetEntry{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("lint: alloc budget %s:%d: want \"<function> <count>\", got %q", path, i+1, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("lint: alloc budget %s:%d: bad count %q", path, i+1, fields[1])
		}
		out[fields[0]] = allocBudgetEntry{Count: n, Line: i + 1}
	}
	return out, nil
}

// countEscapes attributes escape sites to annotated functions by source
// range and returns per-function counts plus each function's first site.
func countEscapes(facts *Facts, sites []escapeSite) (counts map[string]int, first map[string]escapeSite) {
	counts = map[string]int{}
	first = map[string]escapeSite{}
	for _, ff := range facts.All {
		if ff.AllocFree {
			counts[ff.Key] = 0
		}
	}
	for _, site := range sites {
		for _, ff := range facts.All {
			if !ff.AllocFree || ff.AbsFile != site.absFile ||
				site.line < ff.StartLine || site.line > ff.EndLine {
				continue
			}
			counts[ff.Key]++
			if _, ok := first[ff.Key]; !ok {
				first[ff.Key] = site
			}
			break
		}
	}
	return counts, first
}

// checkAllocBudget compares measured counts against the committed budget.
// Over-budget findings anchor at the annotated function's declaration (so
// a //machlint:allow allocfree there can waive them); stale and orphan
// findings anchor in the budget file itself and are not suppressible.
// loadedDirs restricts orphan detection to packages that were actually
// linted, so `machlint ./internal/hfl` does not misreport every other
// package's budget entries as orphaned.
func checkAllocBudget(fset *token.FileSet, facts *Facts, counts map[string]int, first map[string]escapeSite,
	budget map[string]allocBudgetEntry, budgetPath string, loadedDirs []string) []Diagnostic {
	var diags []Diagnostic
	loaded := map[string]bool{}
	for _, d := range loadedDirs {
		loaded[d] = true
	}
	for _, ff := range facts.All {
		if !ff.AllocFree {
			continue
		}
		got := counts[ff.Key]
		want := budget[ff.Key].Count
		switch {
		case got > want:
			site := first[ff.Key]
			diags = append(diags, Diagnostic{
				Pos:   fset.Position(ff.NamePos),
				Check: AllocFreeName,
				Message: fmt.Sprintf("%s is //machlint:allocfree but has %d heap-allocation site(s), budget %d (%s:%d: %s) — remove the allocation or regenerate %s with machlint -write-allocs",
					ff.Key, got, want, site.pos.Filename, site.pos.Line, site.msg, budgetPath),
			})
		case got < want:
			diags = append(diags, Diagnostic{
				Pos:   token.Position{Filename: budgetPath, Line: budget[ff.Key].Line, Column: 1},
				Check: AllocFreeName,
				Message: fmt.Sprintf("stale budget: %s now has %d heap-allocation site(s), budget says %d; regenerate with machlint -write-allocs",
					ff.Key, got, want),
			})
		}
	}
	for _, k := range det.SortedKeys(budget) {
		dir := budgetKeyDir(k)
		if !loaded[dir] {
			continue
		}
		if _, ok := counts[k]; !ok {
			diags = append(diags, Diagnostic{
				Pos:   token.Position{Filename: budgetPath, Line: budget[k].Line, Column: 1},
				Check: AllocFreeName,
				Message: fmt.Sprintf("budget entry %s has no //machlint:allocfree function; restore the annotation or regenerate with machlint -write-allocs",
					k),
			})
		}
	}
	return diags
}

// budgetKeyDir strips the function part of a budget key, leaving the
// package directory ("internal/hfl.(*Engine).edgeDecide" → "internal/hfl").
func budgetKeyDir(key string) string {
	i := strings.IndexByte(key, '.')
	if i < 0 {
		return key
	}
	return key[:i]
}

// WriteAllocBudget regenerates the budget file from the measured counts of
// every annotated function, sorted by key.
func WriteAllocBudget(path string, counts map[string]int) error {
	var b strings.Builder
	b.WriteString("# machlint allocfree budget — heap-allocation sites (go build -gcflags=-m)\n")
	b.WriteString("# permitted per //machlint:allocfree function. Regenerate with\n")
	b.WriteString("# `machlint -write-allocs` (or `make lint-ledger`); make check fails on drift.\n")
	for _, k := range det.SortedKeys(counts) {
		fmt.Fprintf(&b, "%s %d\n", k, counts[k])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
