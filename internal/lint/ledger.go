package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/mach-fl/mach/internal/det"
)

// DefaultLedgerPath is the committed suppression ledger, relative to the
// lint root. `machlint -ledger` prints the current inventory to stdout;
// `make lint-ledger` redirects it here and `make check` fails when the
// committed copy is stale, so every new //machlint:allow shows up in
// review as a ledger diff, not just a comment buried in a source hunk.
const DefaultLedgerPath = "lint_ledger.txt"

// ledgerEntry aggregates identical suppressions: same file, same waived
// check, same justification.
type ledgerEntry struct {
	file   string
	check  string
	reason string
	count  int
}

// BuildLedger parses every .go file (tests included) under the matched
// packages and returns the sorted suppression inventory. Malformed
// directives — no check named, or no justification — are an error: the
// ledger is an audit artifact and must not silently absorb waivers that
// the linter itself would reject.
func BuildLedger(root string, patterns []string) (string, error) {
	dirs, err := ExpandPatterns(root, patterns)
	if err != nil {
		return "", err
	}
	fset := token.NewFileSet()
	agg := map[string]*ledgerEntry{}
	var bad []string
	for _, dir := range dirs {
		abs := filepath.Join(root, filepath.FromSlash(dir))
		entries, err := os.ReadDir(abs)
		if err != nil {
			return "", fmt.Errorf("lint: read %s: %w", abs, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return "", fmt.Errorf("lint: %w", err)
			}
			rel := dir + "/" + name
			if dir == "." {
				rel = name
			}
			for _, s := range parseSuppressions(fset, f) {
				if len(s.checks) == 0 || s.reason == "" {
					bad = append(bad, fmt.Sprintf("%s:%d: //machlint:allow needs a check name and a justification", rel, s.line))
					continue
				}
				for _, c := range s.checks {
					key := rel + "\x00" + c + "\x00" + s.reason
					if agg[key] == nil {
						agg[key] = &ledgerEntry{file: rel, check: c, reason: s.reason}
					}
					agg[key].count++
				}
			}
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return "", fmt.Errorf("lint: malformed suppression(s):\n  %s", strings.Join(bad, "\n  "))
	}

	// The aggregation key is file\x00check\x00reason; NUL sorts below every
	// printable byte, so sorted-key order is exactly (file, check, reason)
	// tuple order.
	list := make([]*ledgerEntry, 0, len(agg))
	for _, k := range det.SortedKeys(agg) {
		list = append(list, agg[k])
	}

	var sb strings.Builder
	sb.WriteString("# machlint suppression ledger — every //machlint:allow in the tree,\n")
	sb.WriteString("# aggregated by (file, check, justification). Regenerate with\n")
	sb.WriteString("# `make lint-ledger`; make check fails when this file is stale.\n")
	total := 0
	for _, e := range list {
		total += e.count
		fmt.Fprintf(&sb, "%s %s x%d — %s\n", e.file, e.check, e.count, e.reason)
	}
	fmt.Fprintf(&sb, "# total: %d suppression(s) across %d site group(s)\n", total, len(list))
	return sb.String(), nil
}
