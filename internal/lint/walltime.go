package lint

import (
	"go/ast"
	"go/types"
)

// WallTime forbids direct wall-clock reads (time.Now / time.Since /
// time.Until) everywhere outside internal/telemetry. Hot paths measure time
// through the telemetry clock (telemetry.Now on an injected sink, nil-safe
// and syscall-free when telemetry is off), and harness/CLI code stamps wall
// time via telemetry.WallNow/WallSince — keeping internal/telemetry/clock.go
// the repo's single sanctioned clock site, so determinism and disabled-mode
// overhead are auditable in one place.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "direct wall-clock read outside internal/telemetry",
	Run:  runWallTime,
}

func runWallTime(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.ObjectOf(pkgIdent).(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
			if !ok || !clockFuncs[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			p.Reportf(sel.Pos(), "wall-clock read %s.%s outside internal/telemetry; use the telemetry clock (telemetry.Now on a sink, or telemetry.WallNow/WallSince in harness code)", pkgIdent.Name, fn.Name())
			return true
		})
	}
}
