package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between floating-point operands outside test
// files. Exact float comparison is almost always a rounding-sensitive bug
// in simulation code; the few legitimate uses (exact-zero sentinels,
// sparsity fast paths) must carry a justified //machlint:allow floateq so
// the intent is auditable. Tests are exempt by DefaultConfig: bit-identity
// contracts compare floats exactly on purpose.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= comparison between float32/float64 operands",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(p.TypeOf(be.X)) || isFloat(p.TypeOf(be.Y)) {
				p.Reportf(be.OpPos, "exact floating-point %s comparison; use a tolerance (math.Abs(a-b) <= eps) or justify with //machlint:allow floateq", be.Op)
			}
			return true
		})
	}
}