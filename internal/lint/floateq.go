package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags exact equality on floating-point operands outside test
// files: == and != between float32/float64 values (including the float32
// compute lane's kernels), and switch statements whose tag is a float —
// every case arm of such a switch is an implicit exact ==. Exact float
// comparison is almost always a rounding-sensitive bug in simulation code;
// the few legitimate uses (exact-zero sentinels, sparsity fast paths) must
// carry a justified //machlint:allow floateq so the intent is auditable.
// Tests are exempt by DefaultConfig: bit-identity contracts compare floats
// exactly on purpose.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= comparison (or switch) on float32/float64 operands",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isFloat(p.TypeOf(n.X)) || isFloat(p.TypeOf(n.Y)) {
					p.Reportf(n.OpPos, "exact floating-point %s comparison; use a tolerance (math.Abs(a-b) <= eps) or justify with //machlint:allow floateq", n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(p.TypeOf(n.Tag)) {
					p.Reportf(n.Switch, "switch on a floating-point tag compares each case exactly; use tolerance comparisons or justify with //machlint:allow floateq")
				}
			}
			return true
		})
	}
}