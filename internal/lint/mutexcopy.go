package lint

import (
	"go/ast"
	"go/types"
)

// MutexCopy is a lite copylocks: it flags by-value copies of structs that
// (transitively) contain sync.Mutex, sync.RWMutex, sync.WaitGroup,
// sync.Once or sync.Cond at the three sites refactors actually introduce
// them — value parameters, value receivers, and range value variables. A
// copied lock guards nothing; go vet catches more sites, this keeps the
// contract visible inside the same gate as the determinism checks.
var MutexCopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "by-value copy of a struct containing a sync lock (params, receivers, range clauses)",
	Run:  runMutexCopy,
}

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

func runMutexCopy(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					p.checkLockFields(n.Recv, "receiver")
				}
				if n.Type.Params != nil {
					p.checkLockFields(n.Type.Params, "parameter")
				}
			case *ast.FuncLit:
				if n.Type.Params != nil {
					p.checkLockFields(n.Type.Params, "parameter")
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if lock := containsLock(p.TypeOf(n.Value), nil); lock != "" {
						p.Reportf(n.Value.Pos(), "range value copies a struct containing sync.%s; range over indices or store pointers", lock)
					}
				}
			}
			return true
		})
	}
}

func (p *Pass) checkLockFields(fields *ast.FieldList, kind string) {
	for _, field := range fields.List {
		if lock := containsLock(p.TypeOf(field.Type), nil); lock != "" {
			p.Reportf(field.Pos(), "%s passes a struct containing sync.%s by value; use a pointer", kind, lock)
		}
	}
}

// containsLock reports the name of the first sync lock type found by value
// inside t ("" when none). Pointers, maps, slices, channels and interfaces
// break the chain: the lock itself is not copied through them.
func containsLock(t types.Type, seen map[types.Type]bool) string {
	if t == nil {
		return ""
	}
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return obj.Name()
		}
		return containsLock(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lock := containsLock(t.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return ""
}
